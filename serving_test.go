package paralagg_test

// Serving-engine tests at the public API: point lookups answer from resident
// state in O(lookup) without touching the fixpoint, insert batches
// re-converge strictly cheaper than recomputing, and the deprecated Rank
// accessors stay equivalent to the typed Query surface they delegate to.

import (
	"context"
	"testing"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// chainGraph is a directed path 0 -w1-> 1 -w2-> 2 -w1-> 3 with a 0 -w5-> 3
// shortcut candidate left out, so every SSSP distance from source 0 is known
// by hand: dist(0,0)=0, dist(0,1)=1, dist(0,2)=3, dist(0,3)=4.
func chainGraph() *graph.Graph {
	return &graph.Graph{
		Name: "chain", Nodes: 4, MaxWeight: 5,
		Edges: []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 1}},
	}
}

func openSSSP(t testing.TB, g *graph.Graph, ranks int) *paralagg.Engine {
	t.Helper()
	eng, err := paralagg.Open(paralagg.Config{Ranks: ranks, Subs: 2}, queries.SSSPProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), paralagg.Mutation{
		Load: func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, []uint64{0}) },
	}); err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestEnginePointQueries pins the exact-lookup path: the full independent
// key of an aggregated relation answers from the accumulator probe.
func TestEnginePointQueries(t *testing.T) {
	eng := openSSSP(t, chainGraph(), 2)
	ctx := context.Background()

	want := map[uint64]uint64{0: 0, 1: 1, 2: 3, 3: 4}
	for dst, d := range want {
		qr, err := eng.Query(ctx, paralagg.QuerySpec{
			Relation: "spath", Key: []paralagg.Value{0, paralagg.Value(dst)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !qr.Found || len(qr.Value) != 1 || uint64(qr.Value[0]) != d {
			t.Errorf("dist(0,%d): got found=%v value=%v, want %d", dst, qr.Found, qr.Value, d)
		}
	}
	// A vertex the source cannot reach is absent, not zero.
	if qr, err := eng.Query(ctx, paralagg.QuerySpec{Relation: "spath", Key: []paralagg.Value{3, 0}}); err != nil {
		t.Fatal(err)
	} else if qr.Found {
		t.Errorf("dist(3,0): got %v, want not found", qr.Value)
	}

	// Count and top-k over the same resident state.
	if qr, err := eng.Query(ctx, paralagg.QuerySpec{Relation: "spath", CountOnly: true}); err != nil {
		t.Fatal(err)
	} else if qr.Count != 4 {
		t.Errorf("count(spath) = %d, want 4", qr.Count)
	}
	qr, err := eng.Query(ctx, paralagg.QuerySpec{Relation: "spath", Limit: 2, OrderBy: 2, Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Tuples) != 2 || uint64(qr.Tuples[0][2]) != 4 || uint64(qr.Tuples[1][2]) != 3 {
		t.Errorf("top-2 by distance = %v, want distances 4 then 3", qr.Tuples)
	}
}

// TestEngineQueryRunsNoFixpoint pins the O(lookup) bar: answering queries
// must not advance the engine's iteration counter — the query path holds no
// collectives and no fixpoint.
func TestEngineQueryRunsNoFixpoint(t *testing.T) {
	eng := openSSSP(t, chainGraph(), 2)
	ctx := context.Background()

	before := eng.Stats()
	for i := 0; i < 50; i++ {
		if _, err := eng.Query(ctx, paralagg.QuerySpec{
			Relation: "spath", Key: []paralagg.Value{0, paralagg.Value(i % 4)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	after := eng.Stats()
	if after.Iterations != before.Iterations {
		t.Errorf("queries advanced the fixpoint: %d -> %d iterations", before.Iterations, after.Iterations)
	}
	if after.Applies != before.Applies {
		t.Errorf("queries counted as applies: %d -> %d", before.Applies, after.Applies)
	}
	if got := after.Queries - before.Queries; got != 50 {
		t.Errorf("query counter advanced by %d, want 50", got)
	}
}

// TestEngineInsertCheaperThanScratch pins the tentpole saving on a smoke
// graph: continuing the fixpoint from a seeded Δ must re-converge in
// strictly fewer iterations than a fresh engine recomputing the post-insert
// graph from zero.
func TestEngineInsertCheaperThanScratch(t *testing.T) {
	g := graph.Grid("serve-grid", 4, 4, 8, 21)
	inserts := []paralagg.Tuple{{0, 15, 2}, {0, 10, 1}}

	eng := openSSSP(t, g, 2)
	st, err := eng.Apply(context.Background(), paralagg.Mutation{
		Insert: map[string][]paralagg.Tuple{"edge": inserts},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Incremental {
		t.Fatal("insert batch did not take the incremental path")
	}

	scratch := graph.Graph{Name: "serve-grid+ins", Nodes: g.Nodes, MaxWeight: g.MaxWeight, Edges: g.Edges}
	for _, tp := range inserts {
		scratch.Edges = append(scratch.Edges, graph.Edge{U: uint64(tp[0]), V: uint64(tp[1]), W: uint64(tp[2])})
	}
	res, err := paralagg.Exec(queries.SSSPProgram(), paralagg.Config{Ranks: 2, Subs: 2},
		func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, &scratch, []uint64{0}) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations >= res.Iterations {
		t.Errorf("incremental insert took %d iterations, from-scratch %d — not strictly cheaper",
			st.Iterations, res.Iterations)
	}
}

// TestDeprecatedAccessorsMatchQuery pins the migration contract: the
// deprecated Rank.Count and Rank.PerRankCounts shims must keep returning
// exactly what the typed Rank.Query surface they delegate to returns.
func TestDeprecatedAccessorsMatchQuery(t *testing.T) {
	g := chainGraph()
	_, err := paralagg.Exec(queries.SSSPProgram(), paralagg.Config{Ranks: 2, Subs: 2},
		func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, []uint64{0}) },
		func(rk *paralagg.Rank) error {
			n, err := rk.Count("spath")
			if err != nil {
				return err
			}
			qr, err := rk.Query(paralagg.QuerySpec{Relation: "spath", CountOnly: true})
			if err != nil {
				return err
			}
			if n != qr.Count {
				t.Errorf("rank %d: Count=%d, Query count=%d", rk.ID(), n, qr.Count)
			}
			per, err := rk.PerRankCounts("spath")
			if err != nil {
				return err
			}
			qp, err := rk.Query(paralagg.QuerySpec{Relation: "spath", CountOnly: true, PerRank: true})
			if err != nil {
				return err
			}
			if len(per) != len(qp.PerRank) {
				t.Errorf("rank %d: PerRankCounts len %d vs Query %d", rk.ID(), len(per), len(qp.PerRank))
				return nil
			}
			for i := range per {
				if per[i] != qp.PerRank[i] {
					t.Errorf("rank %d slot %d: PerRankCounts=%d Query=%d", rk.ID(), i, per[i], qp.PerRank[i])
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
