package paralagg_test

// Collective-schedule benchmarks: the flat-vs-tree-vs-ring comparison
// BENCH_collectives.json tracks (`make bench-collectives`). Every world is
// in-process with the collectives forced through the point-to-point
// composition, so all three schedules run over the identical substrate (the
// memTransport mailboxes, with per-peer byte metering) and the only variable
// is the routing shape:
//
//   - CollectivesAllreduce:    the scalar convergence Allreduce every
//     fixpoint iteration ends on — the latency the schedule refactor is
//     aimed at. root-bytes/op is the traffic through rank 0, the flat
//     star's serialization point: 2·(P−1)·8 bytes flat versus
//     2·⌈log2 P⌉·8 under the binomial tree.
//   - CollectivesAllreduceVec: a 4096-word reduction, the regime the ring
//     schedule's reduce-scatter/allgather exists for — its bandwidth term
//     is 2·(P−1)/P·n words per rank regardless of P, where the tree moves
//     whole vectors up every level.
//   - CollectivesAlltoallv:    the per-iteration tuple exchange (64 words
//     per lane), which stays pairwise under every schedule; the bench pins
//     down that schedule routing adds nothing to its cost.
//
// Each run re-checks the reduction results, so the benchmark doubles as a
// correctness pass over the schedule it measures.

import (
	"fmt"
	"testing"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
)

// collIters amortizes world construction (goroutine spawn) across enough
// collective calls that the per-op metrics measure the collectives.
const collIters = 64

var benchSchedules = []mpi.ScheduleKind{mpi.ScheduleFlat, mpi.ScheduleTree, mpi.ScheduleRing}

// runColl builds one in-process world with every collective routed through
// the p2p composition, runs body SPMD, and returns the per-rank meters.
func runColl(tb testing.TB, ranks int, sched mpi.ScheduleKind, body func(c *mpi.Comm) error) []mpi.RankStats {
	tb.Helper()
	w := mpi.NewWorld(ranks)
	w.SetSchedule(sched)
	w.ForceP2PCollectives()
	if err := w.Run(body); err != nil {
		tb.Fatal(err)
	}
	return w.Stats().PerRank()
}

// modeledCriticalNS prices every rank's traffic with the default cost model
// and returns the worst rank — the serialization point the schedule exists
// to relieve. In-process mailboxes have no per-message wire cost, so the
// wall-clock columns cannot show the flat root's O(P) bottleneck; this
// metric is the same critical-path model EXPERIMENTS.md derives, applied to
// the measured per-peer byte matrix (scalar collectives move one-word
// frames, so msgs = bytes/8 exactly).
func modeledCriticalNS(per []mpi.RankStats) float64 {
	var worst float64
	for _, r := range per {
		var bytes int64
		for _, b := range r.PeerBytesSent {
			bytes += b
		}
		for _, b := range r.PeerBytesRecv {
			bytes += b
		}
		s := metrics.Sample{Bytes: bytes, Msgs: bytes / mpi.WordBytes}
		if c := metrics.DefaultCostModel.Cost(s); c > worst {
			worst = c
		}
	}
	return worst
}

// rootBytes is the wire traffic through rank 0 — sent plus received.
func rootBytes(per []mpi.RankStats) int64 {
	var tot int64
	for _, b := range per[0].PeerBytesSent {
		tot += b
	}
	for _, b := range per[0].PeerBytesRecv {
		tot += b
	}
	return tot
}

func BenchmarkCollectivesAllreduce(b *testing.B) {
	for _, ranks := range []int{4, 8, 16} {
		for _, sched := range benchSchedules {
			b.Run(fmt.Sprintf("%s/%d", sched, ranks), func(b *testing.B) {
				b.ReportAllocs()
				var root int64
				var modeled float64
				for n := 0; n < b.N; n++ {
					per := runColl(b, ranks, sched, func(c *mpi.Comm) error {
						for i := 0; i < collIters; i++ {
							want := uint64(ranks*(ranks-1)/2 + ranks*i)
							if got := c.Allreduce(uint64(c.Rank()+i), mpi.OpSum); got != want {
								return fmt.Errorf("allreduce %d: got %d, want %d", i, got, want)
							}
						}
						return nil
					})
					root = rootBytes(per)
					modeled = modeledCriticalNS(per)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*collIters), "ns/allreduce")
				b.ReportMetric(float64(root)/collIters, "root-bytes/op")
				b.ReportMetric(modeled/collIters, "modeled-ns/op")
			})
		}
	}
}

func BenchmarkCollectivesAllreduceVec(b *testing.B) {
	const words = 4096
	for _, ranks := range []int{4, 8, 16} {
		for _, sched := range benchSchedules {
			b.Run(fmt.Sprintf("%s/%d", sched, ranks), func(b *testing.B) {
				b.ReportAllocs()
				var root int64
				for n := 0; n < b.N; n++ {
					per := runColl(b, ranks, sched, func(c *mpi.Comm) error {
						send := make([]mpi.Word, words)
						recv := make([]mpi.Word, words)
						for j := range send {
							send[j] = mpi.Word(c.Rank() + j)
						}
						for i := 0; i < collIters/8; i++ {
							out := c.AllreduceVec(send, recv, mpi.OpSum)
							if want := mpi.Word(ranks * (ranks - 1) / 2); out[0] != want {
								return fmt.Errorf("allreducevec[0]: got %d, want %d", out[0], want)
							}
						}
						return nil
					})
					root = rootBytes(per)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*collIters/8), "ns/allreduce")
				b.ReportMetric(float64(root)/(collIters/8), "root-bytes/op")
			})
		}
	}
}

func BenchmarkCollectivesAlltoallv(b *testing.B) {
	const lane = 64
	for _, ranks := range []int{4, 8, 16} {
		for _, sched := range benchSchedules {
			b.Run(fmt.Sprintf("%s/%d", sched, ranks), func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					runColl(b, ranks, sched, func(c *mpi.Comm) error {
						for i := 0; i < collIters/8; i++ {
							send := make([][]mpi.Word, ranks)
							for d := range send {
								send[d] = make([]mpi.Word, lane)
								for j := range send[d] {
									send[d][j] = mpi.Word(c.Rank()*1000 + d)
								}
							}
							got := c.Alltoallv(send)
							for src := range got {
								if len(got[src]) != lane || got[src][0] != mpi.Word(src*1000+c.Rank()) {
									return fmt.Errorf("alltoallv from %d: got %v...", src, got[src][:1])
								}
							}
						}
						return nil
					})
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*collIters/8), "ns/exchange")
			})
		}
	}
}

// TestConvergenceAllreduceRootBytes pins the headline number of the schedule
// refactor: the bytes serialized through rank 0 by one convergence Allreduce
// on 8 ranks. The flat star funnels every contribution through the root —
// 7 words up, 7 down, 112 bytes — where the binomial tree leaves the root
// just its ⌈log2 8⌉ = 3 children, 48 bytes: a 2.3× reduction that grows
// with P (2·(P−1) versus 2·⌈log2 P⌉).
func TestConvergenceAllreduceRootBytes(t *testing.T) {
	measure := func(sched mpi.ScheduleKind) int64 {
		per := runColl(t, 8, sched, func(c *mpi.Comm) error {
			if got := c.Allreduce(uint64(c.Rank()), mpi.OpSum); got != 28 {
				return fmt.Errorf("allreduce: got %d, want 28", got)
			}
			return nil
		})
		return rootBytes(per)
	}
	flat, tree := measure(mpi.ScheduleFlat), measure(mpi.ScheduleTree)
	if flat != 2*7*mpi.WordBytes {
		t.Errorf("flat root bytes = %d, want %d (7 words up + 7 down)", flat, 2*7*mpi.WordBytes)
	}
	if tree != 2*3*mpi.WordBytes {
		t.Errorf("tree root bytes = %d, want %d (3 children up + 3 down)", tree, 2*3*mpi.WordBytes)
	}
	if flat < 2*tree {
		t.Errorf("tree schedule must cut root traffic at least 2x: flat %d vs tree %d", flat, tree)
	}
}
