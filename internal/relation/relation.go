// Package relation implements distributed relations with the paper's
// bucket/sub-bucket double-hashed decomposition, semi-naïve FULL/Δ
// versioning, and — for aggregated relations — the fused
// deduplication/local-aggregation pass that is the core contribution of
// the paper (§III-A, §IV-A).
//
// A relation is an SPMD object: every rank constructs it with identical
// parameters and holds the shard of tuples the placement function assigns
// to it. Set-semantics relations store tuples in B-tree indexes; aggregated
// relations additionally keep a canonical accumulator map from independent
// columns to the lattice-joined dependent value, placed by hashing the
// independent columns only — which is what makes local aggregation
// communication-free (dependent columns never influence placement).
package relation

import (
	"fmt"

	"paralagg/internal/btree"
	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// Schema declares a relation's shape. For set-semantics relations Indep ==
// Arity and Agg is nil. For aggregated relations the first Indep columns are
// independent (they key the accumulator) and the remaining Agg.Width()
// columns hold the dependent value.
type Schema struct {
	Name  string
	Arity int
	// Indep is the number of leading independent columns.
	Indep int
	// Key is the number of leading columns forming the canonical index key
	// (the relation's default join columns). Key <= Indep.
	Key int
	// Agg is the recursive aggregator for the dependent columns, or nil for
	// set semantics.
	Agg lattice.Aggregator
}

// Dep returns the number of dependent columns.
func (s Schema) Dep() int { return s.Arity - s.Indep }

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if s.Arity <= 0 {
		return fmt.Errorf("relation %s: arity %d", s.Name, s.Arity)
	}
	if s.Key <= 0 || s.Key > s.Indep {
		return fmt.Errorf("relation %s: key %d out of range (indep %d)", s.Name, s.Key, s.Indep)
	}
	if s.Agg == nil {
		if s.Indep != s.Arity {
			return fmt.Errorf("relation %s: set relation with %d dependent columns", s.Name, s.Arity-s.Indep)
		}
		return nil
	}
	if s.Indep+s.Agg.Width() != s.Arity {
		return fmt.Errorf("relation %s: indep %d + agg width %d != arity %d",
			s.Name, s.Indep, s.Agg.Width(), s.Arity)
	}
	if s.Indep < 1 {
		return fmt.Errorf("relation %s: aggregated relation needs at least one independent column", s.Name)
	}
	return nil
}

// Config tunes a relation's distribution.
type Config struct {
	// Subs is the number of sub-buckets per bucket (spatial load balancing,
	// §IV-C). 1 disables balancing; the paper's default is 8.
	Subs int
	// Integrity enables online divergence detection: every Materialize
	// computes order-independent 64-bit digests over this rank's shard and
	// rides them on the convergence Allreduce; a global mismatch raises
	// mpi.ErrStateDiverged on every rank. Must be identical on all ranks.
	Integrity bool
	// Leaky puts a set-semantics relation into the "leaky partial
	// aggregation" mode of the systems the paper compares against
	// (RaSQL/BigDatalog/SociaLite, §III-A/§IV-A): tuples carry their value
	// columns through ordinary set dedup, each rank prunes candidates only
	// against its own partial best per independent key, and superseded
	// tuples are never purged. The relation converges to a superset of the
	// true aggregate; a final gather computes exact answers. PARALAGG
	// relations never set this — it exists for the baseline engines.
	Leaky *LeakySpec
}

// LeakySpec configures leaky-mode pruning: candidates whose dependent value
// does not improve this rank's partial best for their first Indep columns
// are dropped; improvements are kept alongside the now-stale tuples.
type LeakySpec struct {
	Agg   lattice.Aggregator
	Indep int
}

// Relation is one rank's handle on a distributed relation. All ranks must
// perform the same sequence of collective operations (AddIndex, LoadFacts,
// Materialize) on it.
type Relation struct {
	Schema
	comm *mpi.Comm
	mc   *metrics.Collector
	subs int

	// acc is the canonical aggregate accumulator: independent-column key →
	// current lattice value, stored word-keyed so the merge path never
	// touches the allocator. Only entries whose canonical placement maps to
	// this rank are present. Nil for set relations.
	acc *wordmap.Map

	// indexes hold the B-tree storage replicas used by joins. Index 0 is
	// the canonical index (identity permutation); it always exists and is
	// where set-semantics deduplication happens.
	indexes []*Index

	// changedLast caches the global changed-count from the most recent
	// Materialize, letting the fixpoint driver skip join variants whose Δ
	// side is globally empty.
	changedLast uint64

	// leaky and leakyBest implement the baseline engines' partial
	// aggregation: leakyBest maps an independent-column key to this rank's
	// partial best dependent value. See Config.Leaky.
	leaky     *LeakySpec
	leakyBest *wordmap.Map

	// ids materializes BPRA's bump-pointer tuple identity: canonical key →
	// globally unique id allocated on this rank (1-word values). Created
	// lazily on the first assignment. See ids.go.
	ids       *wordmap.Map
	idCounter uint64

	// dropSet records the independent keys dropped so far inside a
	// BeginDelete/EndDelete bracket (aggregated relations only): key → the
	// dependent value the key held when it was dropped. It deduplicates
	// repeated invalidation candidates and drives the accumulator rebuild in
	// EndDelete. See delete.go.
	dropSet *wordmap.Map

	// Reusable scratch for the materialization hot path. All of it is
	// rank-private and reset at each use; nothing here survives a call
	// except as capacity.
	partial     *wordmap.Map  // pre-aggregation table (materializeAgg)
	sendScratch [][]mpi.Word  // per-peer exchange build buffers
	freshBuf    *tuple.Buffer // changed canonical tuples of the pass
	staleBuf    *tuple.Buffer // superseded index entries pending deletion
	tupScratch  tuple.Tuple   // one canonical-order tuple
	permScratch tuple.Tuple   // one stored-order (permuted) tuple

	// Online integrity state (Config.Integrity). digVec/digVecOut are the
	// reusable AllreduceVec buffers; digPrev carries the previous
	// iteration's agreed global FULL digest for the set-semantics history
	// check, valid only while digPrevValid (restores and redistribution
	// invalidate it until the next agreed digest re-adopts a baseline).
	integrity    bool
	digVec       []mpi.Word
	digVecOut    []mpi.Word
	digPrev      uint64
	digPrevValid bool
	// accDig is the running accumulator digest, maintained incrementally by
	// the merge path (aggregated relations only): any arena mutation that
	// bypasses the merge shows up as drift against the recomputed digest.
	// accDigValid mirrors digPrevValid across restores.
	accDig      uint64
	accDigValid bool
}

// Index is one storage replica of a relation under a column permutation.
// The first JK permuted columns are the index's join key: tuples are
// bucketed by hashing them, so a join probe on those columns is rank-local.
type Index struct {
	rel *Relation
	// Perm maps storage position → source column: stored[i] = t[Perm[i]].
	Perm []int
	// JK is the number of leading join-key columns in permuted space.
	JK int
	// indepLen is the number of leading permuted columns that are
	// independent source columns (used to locate stale aggregate entries).
	indepLen int

	// homes caches HomeRanks per bucket; rebuilt whenever the placement
	// inputs (world size, sub-bucket count) change.
	homes [][]int

	// digInv is the inverse storage permutation the integrity digests walk
	// with (nil = identity), computed once on first use; see digestInv.
	digInv     []int
	digInvDone bool

	Full  *btree.Tree
	Delta *btree.Tree
}

// New constructs a rank's shard of a relation. Every rank of the world must
// call it with identical arguments.
func New(sch Schema, comm *mpi.Comm, mc *metrics.Collector, cfg Config) (*Relation, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	subs := cfg.Subs
	if subs < 1 {
		subs = 1
	}
	r := &Relation{Schema: sch, comm: comm, mc: mc, subs: subs, integrity: cfg.Integrity}
	if sch.Agg != nil {
		r.acc = wordmap.New(sch.Indep, sch.Dep())
	}
	if cfg.Leaky != nil {
		if sch.Agg != nil {
			return nil, fmt.Errorf("relation %s: leaky mode applies to set relations only", sch.Name)
		}
		if cfg.Leaky.Indep < 1 || cfg.Leaky.Indep >= sch.Arity || cfg.Leaky.Agg == nil {
			return nil, fmt.Errorf("relation %s: bad leaky spec", sch.Name)
		}
		r.leaky = cfg.Leaky
		r.leakyBest = wordmap.New(cfg.Leaky.Indep, sch.Arity-cfg.Leaky.Indep)
	}
	// Canonical index: identity permutation keyed on the schema's Key
	// columns.
	perm := make([]int, sch.Arity)
	for i := range perm {
		perm[i] = i
	}
	if _, err := r.AddIndex(perm, sch.Key); err != nil {
		return nil, err
	}
	return r, nil
}

// Comm returns the communicator the relation was built on.
func (r *Relation) Comm() *mpi.Comm { return r.comm }

// Subs returns the relation's sub-bucket count.
func (r *Relation) Subs() int { return r.subs }

// Canonical returns the canonical (identity-permutation) index.
func (r *Relation) Canonical() *Index { return r.indexes[0] }

// Indexes returns all registered indexes, canonical first.
func (r *Relation) Indexes() []*Index { return r.indexes }

// ChangedLast returns the global changed-tuple count from the most recent
// Materialize (identical on every rank).
func (r *Relation) ChangedLast() uint64 { return r.changedLast }

// AddIndex registers a storage replica with the given column permutation
// and join-key length. For aggregated relations every independent column
// must appear before every dependent column so that the independent prefix
// uniquely locates the (single) stored tuple per key. Indexes must be
// registered identically on every rank before any facts are loaded.
func (r *Relation) AddIndex(perm []int, jk int) (*Index, error) {
	if len(perm) != r.Arity {
		return nil, fmt.Errorf("relation %s: index perm %v has %d entries, arity %d", r.Name, perm, len(perm), r.Arity)
	}
	seen := make([]bool, r.Arity)
	for _, c := range perm {
		if c < 0 || c >= r.Arity || seen[c] {
			return nil, fmt.Errorf("relation %s: bad index perm %v", r.Name, perm)
		}
		seen[c] = true
	}
	if jk < 1 || jk > r.Arity {
		return nil, fmt.Errorf("relation %s: index jk %d out of range", r.Name, jk)
	}
	idx := &Index{
		rel:      r,
		Perm:     append([]int(nil), perm...),
		JK:       jk,
		indepLen: r.Indep,
		Full:     btree.New(),
		Delta:    btree.New(),
	}
	if r.Agg != nil {
		// Independent columns must be a prefix of the permutation.
		for i := 0; i < r.Indep; i++ {
			if perm[i] >= r.Indep {
				return nil, fmt.Errorf("relation %s: index perm %v places dependent column %d before independent ones",
					r.Name, perm, perm[i])
			}
		}
		if jk > r.Indep {
			return nil, fmt.Errorf("relation %s: index joins on dependent columns (jk %d > indep %d): "+
				"recursive aggregates may not be joined on their aggregated columns", r.Name, jk, r.Indep)
		}
	}
	idx.buildHomes()
	r.indexes = append(r.indexes, idx)
	return r.indexes[len(r.indexes)-1], nil
}

// FindIndex returns a registered index with exactly the given permutation
// prefix as join key: the first jk entries of perm must match. It returns
// nil if none exists.
func (r *Relation) FindIndex(perm []int, jk int) *Index {
	for _, idx := range r.indexes {
		if idx.JK != jk || len(idx.Perm) != len(perm) {
			continue
		}
		match := true
		for i, c := range perm {
			if idx.Perm[i] != c {
				match = false
				break
			}
		}
		if match {
			return idx
		}
	}
	return nil
}

// permute returns t rearranged into the index's storage order.
func (ix *Index) permute(t tuple.Tuple) tuple.Tuple {
	out := make(tuple.Tuple, len(ix.Perm))
	for i, c := range ix.Perm {
		out[i] = t[c]
	}
	return out
}

// permuteInto writes t rearranged into the index's storage order into out,
// which must have length Arity. The hot-path twin of permute.
func (ix *Index) permuteInto(t, out tuple.Tuple) {
	for i, c := range ix.Perm {
		out[i] = t[c]
	}
}

// Unpermute maps a stored tuple back to canonical column order.
func (ix *Index) Unpermute(stored tuple.Tuple) tuple.Tuple {
	out := make(tuple.Tuple, len(ix.Perm))
	for i, c := range ix.Perm {
		out[c] = stored[i]
	}
	return out
}

// bucketOf returns the bucket for a stored-order tuple: the hash of the
// index's join-key columns modulo the world size (one logical bucket per
// rank, as in BPRA).
func (ix *Index) bucketOf(stored tuple.Tuple) int {
	return int(stored.HashPrefix(ix.JK) % uint64(ix.rel.comm.Size()))
}

// subOf returns the sub-bucket for a stored-order tuple: the hash of the
// independent non-key columns. Dependent columns never contribute, so an
// aggregate update stays on one rank. When no independent columns remain
// beyond the key the index is single-sub (each key holds one tuple for
// aggregated relations, so there is nothing to balance).
func (ix *Index) subOf(stored tuple.Tuple) int {
	if ix.rel.subs == 1 || ix.JK >= ix.indepLen {
		return 0
	}
	h := tuple.Tuple(stored[ix.JK:ix.indepLen]).Hash()
	return int(h % uint64(ix.rel.subs))
}

// rankOf maps (bucket, sub) to a rank. Sub-buckets of one bucket spread
// across consecutive ranks so a skewed bucket's load lands on several
// hosts.
func (r *Relation) rankOf(bucket, sub int) int {
	return (bucket*r.subs + sub) % r.comm.Size()
}

// HomeRanks returns every rank holding a sub-bucket of the given bucket in
// this index, deduplicated. Outer-relation tuples of the bucket are
// replicated to exactly these ranks during intra-bucket communication. The
// returned slice is a cached precomputation shared across calls; callers
// must not mutate it.
func (ix *Index) HomeRanks(bucket int) []int {
	return ix.homes[bucket]
}

// buildHomes precomputes HomeRanks for every bucket under the current world
// size and sub-bucket count, so the join inner loop never rebuilds the
// dedup set per probe.
func (ix *Index) buildHomes() {
	r := ix.rel
	size := r.comm.Size()
	homes := make([][]int, size)
	if r.subs == 1 || ix.JK >= ix.indepLen {
		flat := make([]int, size)
		for b := 0; b < size; b++ {
			flat[b] = r.rankOf(b, 0)
			homes[b] = flat[b : b+1 : b+1]
		}
	} else {
		for b := 0; b < size; b++ {
			out := make([]int, 0, r.subs)
			for s := 0; s < r.subs; s++ {
				rk := r.rankOf(b, s)
				dup := false
				for _, have := range out {
					if have == rk {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, rk)
				}
			}
			homes[b] = out
		}
	}
	ix.homes = homes
}

// rebuildHomeCaches recomputes every index's HomeRanks cache after a
// placement input changed (SetSubs, snapshot restore).
func (r *Relation) rebuildHomeCaches() {
	for _, ix := range r.indexes {
		ix.buildHomes()
	}
}

// ownedHere reports whether a stored-order tuple belongs on this rank in
// this index.
func (ix *Index) ownedHere(stored tuple.Tuple) bool {
	return ix.rel.rankOf(ix.bucketOf(stored), ix.subOf(stored)) == ix.rel.comm.Rank()
}

// accPlacement returns the rank owning the canonical accumulator entry for
// a canonical-order tuple's independent columns.
func (r *Relation) accPlacement(indepKey tuple.Tuple) int {
	b := int(indepKey.HashPrefix(len(indepKey)) % uint64(r.comm.Size()))
	return r.rankOf(b, 0)
}

// sendBuf returns the relation's reusable per-peer exchange build buffers,
// truncated to zero length. The buffers feed Alltoallv, whose diagonal lane
// is handed to the receiver as an alias — so a fresh sendBuf call is only
// legal once the previous exchange's received data has been fully consumed
// (every Materialize phase does exactly that before building its next
// exchange).
func (r *Relation) sendBuf(size int) [][]mpi.Word {
	if cap(r.sendScratch) < size {
		r.sendScratch = make([][]mpi.Word, size)
	}
	r.sendScratch = r.sendScratch[:size]
	for i := range r.sendScratch {
		r.sendScratch[i] = r.sendScratch[i][:0]
	}
	return r.sendScratch
}

// mergeDep folds dep into m's entry for key through the lattice ⊔, writing
// the result into the table's arena in place. It reports whether the entry
// changed (was inserted or strictly improved).
func (r *Relation) mergeDep(agg lattice.Aggregator, m *wordmap.Map, key, dep []tuple.Value) bool {
	v, inserted := m.Upsert(key)
	if inserted {
		copy(v, dep)
		return true
	}
	merged := agg.Join(v, dep)
	if agg.Compare(merged, v) == lattice.Equal {
		return false
	}
	copy(v, merged)
	return true
}

// LocalFullCount returns the number of tuples this rank stores in the
// canonical index (set relations) or accumulator (aggregated relations).
func (r *Relation) LocalFullCount() int {
	if r.Agg != nil {
		return r.acc.Len()
	}
	return r.indexes[0].Full.Len()
}

// LocalDeltaCount returns the number of Δ tuples on this rank (canonical
// index).
func (r *Relation) LocalDeltaCount() int { return r.indexes[0].Delta.Len() }

// GlobalFullCount sums LocalFullCount across ranks (collective).
func (r *Relation) GlobalFullCount() uint64 {
	return r.comm.Allreduce(uint64(r.LocalFullCount()), mpi.OpSum)
}

// PerRankCounts gathers every rank's LocalFullCount (collective); the
// result feeds the paper's Figure 3 tuple-distribution CDF.
func (r *Relation) PerRankCounts() []int {
	all := r.comm.Allgather(uint64(r.LocalFullCount()))
	out := make([]int, len(all))
	for i, v := range all {
		out[i] = int(v)
	}
	return out
}

// Lookup returns the accumulator value for the given independent key if it
// lives on this rank (aggregated relations only). The returned slice
// aliases the accumulator arena and is valid until the next Materialize.
func (r *Relation) Lookup(indepKey tuple.Tuple) ([]tuple.Value, bool) {
	if r.Agg == nil {
		return nil, false
	}
	v := r.acc.Get(indepKey)
	return v, v != nil
}

// EachAcc iterates this rank's accumulator entries as canonical tuples in
// insertion order. Each tuple is freshly allocated; callers may retain it.
func (r *Relation) EachAcc(fn func(tuple.Tuple)) {
	if r.Agg == nil {
		return
	}
	r.acc.Each(func(indep, dep []tuple.Value) bool {
		t := make(tuple.Tuple, 0, r.Arity)
		t = append(t, indep...)
		t = append(t, dep...)
		fn(t)
		return true
	})
}

// SetChangedLast overrides the cached global changed count. The fixpoint
// driver uses it when re-seeding Δ at a stratum boundary; the value must be
// identical on every rank.
func (r *Relation) SetChangedLast(n uint64) { r.changedLast = n }

// MemWords reports this rank's accounted storage footprint for the
// relation, in words: the accumulator and identity arenas, every index's
// FULL and Δ trees, and the reusable exchange scratch. Each term is an O(1)
// capacity read, so the memory accountant can sample it every iteration
// without touching the hot path.
func (r *Relation) MemWords() int64 {
	var w int64
	for _, m := range []*wordmap.Map{r.acc, r.leakyBest, r.ids, r.partial} {
		if m != nil {
			w += m.MemWords()
		}
	}
	for _, ix := range r.indexes {
		w += ix.Full.MemWords() + ix.Delta.MemWords()
	}
	w += int64(cap(r.tupScratch)) + int64(cap(r.permScratch))
	for _, lane := range r.sendScratch {
		w += int64(cap(lane))
	}
	for _, b := range []*tuple.Buffer{r.freshBuf, r.staleBuf} {
		if b != nil {
			w += int64(cap(b.Words))
		}
	}
	return w
}

// ReleaseScratch drops the relation's reusable scratch capacity — the
// pre-aggregation table, per-peer exchange lanes, and tuple buffers — the
// soft response of the memory accountant's pressure ladder. Resident state
// (accumulator, indexes, ids) is untouched, so correctness is unaffected;
// the next Materialize simply re-grows its scratch, trading allocations for
// headroom.
func (r *Relation) ReleaseScratch() {
	r.partial = nil
	r.sendScratch = nil
	r.freshBuf = nil
	r.staleBuf = nil
}
