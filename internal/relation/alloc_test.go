package relation

// Allocation regression tests for the hot materialization path. The word-map
// accumulator, the per-relation exchange scratch, and the single-rank
// collective fast paths together make a steady-state materialization — every
// arriving key already resident with an equal-or-better value — completely
// allocation-free. These tests pin that property so a future change cannot
// silently reintroduce per-tuple garbage.

import (
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// TestAccInsertExistingAllocFree materializes batches whose every key is
// already resident with a better value: the pure probe/merge path must not
// allocate at all.
func TestAccInsertExistingAllocFree(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(Schema{Name: "sp", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}},
			c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		seed := accBenchBuffer(false)
		r.Materialize(0, seed, false)
		probe := accBenchBuffer(true)
		// Warm the reusable scratch (send lanes, partial table, tuple
		// buffers) once before measuring.
		r.Materialize(1, probe, false)
		allocs := testing.AllocsPerRun(100, func() {
			r.Materialize(2, probe, false)
		})
		if allocs != 0 {
			t.Errorf("existing-key accumulator materialization: %v allocs/op, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetDedupExistingAllocFree is the set-semantics twin: re-materializing
// already-stored tuples is pure dedup probing and must not allocate.
func TestSetDedupExistingAllocFree(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		buf := tuple.NewBuffer(2, accBenchKeys)
		for k := 0; k < accBenchKeys; k++ {
			buf.Append(tuple.Tuple{tuple.Value(k % 37), tuple.Value(k)})
		}
		r.Materialize(0, buf, false)
		r.Materialize(1, buf, false)
		allocs := testing.AllocsPerRun(100, func() {
			r.Materialize(2, buf, false)
		})
		if allocs != 0 {
			t.Errorf("existing-tuple set materialization: %v allocs/op, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
