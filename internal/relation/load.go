package relation

import (
	"paralagg/internal/btree"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// LoadFacts bulk-loads base facts through the normal materialization path:
// each rank contributes the slice of facts it "read" (canonical column
// order) and the pass routes, deduplicates/aggregates, and populates FULL
// and Δ so the first iteration sees the facts as freshly discovered.
// Loading is collective and unmetered (the paper's timings exclude input
// loading).
func (r *Relation) LoadFacts(facts *tuple.Buffer) uint64 {
	return r.Materialize(0, facts, false)
}

// LoadShare is a convenience for SPMD fact generation: emit is called with
// this rank's share of n facts — indices i with i % size == rank — and the
// produced tuples are loaded collectively. The generator must be
// deterministic so that every rank sees the same global fact set.
func (r *Relation) LoadShare(n int, gen func(i int, emit func(tuple.Tuple))) uint64 {
	buf := tuple.NewBuffer(r.Arity, n/r.comm.Size()+1)
	rank, size := r.comm.Rank(), r.comm.Size()
	for i := rank; i < n; i += size {
		gen(i, func(t tuple.Tuple) { buf.Append(t) })
	}
	return r.LoadFacts(buf)
}

// SetSubs changes the relation's sub-bucket count and redistributes every
// index shard and accumulator entry to its new home. This is the spatial
// rebalancing step (§IV-C, the "balancing" phase of Fig. 1); it is
// collective and must be called with the same value on every rank. The
// returned byte count is the total data this rank shipped.
//
// The word-keyed tables are tombstone-free, so redistribution rebuilds them:
// entries staying local seed a fresh table, leavers travel the exchange, and
// arrivals merge in. This is the one cold path that pays a table copy.
func (r *Relation) SetSubs(subs int) int {
	if subs < 1 {
		subs = 1
	}
	rank, size := r.comm.Rank(), r.comm.Size()
	shipped := 0
	r.subs = subs
	r.rebuildHomeCaches()

	// Redistribute accumulator entries (aggregated relations), carrying
	// each key's materialization id so identity survives rebalancing.
	if r.Agg != nil {
		rec := r.Arity + 1
		send := r.sendBuf(size)
		newAcc := wordmap.NewWithCapacity(r.Indep, r.Dep(), r.acc.Len())
		r.acc.Each(func(indep, dep []tuple.Value) bool {
			dest := r.accPlacement(indep)
			if dest == rank {
				v, _ := newAcc.Upsert(indep)
				copy(v, dep)
				return true
			}
			var id uint64
			if r.ids != nil {
				if iv := r.ids.Get(indep); iv != nil {
					id = iv[0]
				}
			}
			send[dest] = append(send[dest], indep...)
			send[dest] = append(send[dest], dep...)
			send[dest] = append(send[dest], id)
			shipped += rec * mpi.WordBytes
			return true
		})
		// Keep the ids of every entry that was not shipped away (ids and
		// accumulator entries are keyed identically).
		var newIDs *wordmap.Map
		if r.ids != nil {
			newIDs = wordmap.NewWithCapacity(r.idKeyWords(), 1, r.ids.Len())
			r.ids.Each(func(key, iv []tuple.Value) bool {
				if r.acc.Get(key) != nil && r.accPlacement(key) != rank {
					return true // travelled with its accumulator entry
				}
				v, _ := newIDs.Upsert(key)
				v[0] = iv[0]
				return true
			})
		}
		recv := r.comm.Alltoallv(send)
		for _, words := range recv {
			for off := 0; off+rec <= len(words); off += rec {
				t := tuple.Tuple(words[off : off+r.Arity])
				r.mergeDep(r.Agg, newAcc, t[:r.Indep], t[r.Indep:r.Arity])
				if newIDs == nil {
					newIDs = wordmap.New(r.idKeyWords(), 1)
				}
				if v, inserted := newIDs.Upsert(t[:r.Indep]); inserted {
					v[0] = words[off+r.Arity]
				}
			}
		}
		r.acc = newAcc
		r.ids = newIDs
	}

	// Set relations key their ids by the full canonical tuple; relocate
	// them to the tuple's new home. (The exchange runs on every rank even
	// with no local ids — Alltoallv is collective.)
	if r.Agg == nil {
		rec := r.Arity + 1
		canon := r.indexes[0]
		send := r.sendBuf(size)
		var newIDs *wordmap.Map
		if r.ids != nil {
			newIDs = wordmap.NewWithCapacity(r.idKeyWords(), 1, r.ids.Len())
			r.ids.Each(func(key, iv []tuple.Value) bool {
				t := tuple.Tuple(key)
				dest := r.rankOf(canon.bucketOf(t), canon.subOf(t))
				if dest == rank {
					v, _ := newIDs.Upsert(key)
					v[0] = iv[0]
					return true
				}
				send[dest] = append(send[dest], t...)
				send[dest] = append(send[dest], iv[0])
				shipped += rec * mpi.WordBytes
				return true
			})
		}
		recv := r.comm.Alltoallv(send)
		for _, words := range recv {
			for off := 0; off+rec <= len(words); off += rec {
				if newIDs == nil {
					newIDs = wordmap.New(r.idKeyWords(), 1)
				}
				v, _ := newIDs.Upsert(words[off : off+r.Arity])
				v[0] = words[off+r.Arity]
			}
		}
		r.ids = newIDs
	}

	// Redistribute each index's FULL and Δ trees.
	for _, ix := range r.indexes {
		shipped += ix.redistribute()
	}
	return shipped
}

// redistribute reshuffles one index's storage after a placement change.
func (ix *Index) redistribute() int {
	r := ix.rel
	size := r.comm.Size()
	shipped := 0
	for _, which := range []int{0, 1} {
		tree := ix.Full
		if which == 1 {
			tree = ix.Delta
		}
		send := r.sendBuf(size)
		var keep []tuple.Tuple
		tree.Ascend(func(t tuple.Tuple) bool {
			dest := r.rankOf(ix.bucketOf(t), ix.subOf(t))
			if dest == r.comm.Rank() {
				keep = append(keep, t.Clone())
			} else {
				send[dest] = append(send[dest], t...)
				shipped += len(t) * mpi.WordBytes
			}
			return true
		})
		recv := r.comm.Alltoallv(send)
		fresh := btree.New()
		for _, t := range keep {
			fresh.Insert(t)
		}
		for _, words := range recv {
			for off := 0; off+r.Arity <= len(words); off += r.Arity {
				fresh.Insert(tuple.Tuple(words[off : off+r.Arity]))
			}
		}
		if which == 0 {
			ix.Full = fresh
		} else {
			ix.Delta = fresh
		}
	}
	return shipped
}
