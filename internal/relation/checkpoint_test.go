package relation

import (
	"fmt"
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// dumpFull collects a rank's canonical FULL contents for comparison.
func dumpFull(r *Relation) []tuple.Tuple {
	var out []tuple.Tuple
	r.Canonical().Full.Ascend(func(t tuple.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

func sameTuples(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSnapshotRestoreSetRelation(t *testing.T) {
	const ranks = 3
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		if _, err := r.AddIndex([]int{1, 0}, 1); err != nil {
			return err
		}
		r.LoadShare(300, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i % 11), tuple.Value(i)})
		})
		want := dumpFull(r)
		wantChanged := r.ChangedLast()
		snap := r.SnapshotWords()

		// Mutate past the snapshot, then restore: the pre-mutation state must
		// come back wholesale.
		buf := tuple.NewBuffer(2, 50)
		for i := 0; i < 50; i++ {
			buf.Append(tuple.Tuple{tuple.Value(1000 + i), tuple.Value(i)})
		}
		r.Materialize(1, buf, false)
		if err := r.RestoreWords(snap); err != nil {
			return err
		}
		if got := dumpFull(r); !sameTuples(got, want) {
			return fmt.Errorf("rank %d: restored FULL diverges (%d vs %d tuples)", c.Rank(), len(got), len(want))
		}
		if r.ChangedLast() != wantChanged {
			return fmt.Errorf("changed count %d after restore, want %d", r.ChangedLast(), wantChanged)
		}
		if got := r.GlobalFullCount(); got != 300 {
			return fmt.Errorf("global count = %d after restore", got)
		}
		return r.CheckInvariants()
	})
}

func TestSnapshotRestoreAggRelation(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		if _, err := r.AddIndex([]int{1, 0, 2}, 1); err != nil {
			return err
		}
		// Two rounds of improvements so Δ, accumulator, and ids all carry
		// non-trivial state into the snapshot.
		for round := 0; round < 2; round++ {
			buf := tuple.NewBuffer(3, 32)
			for i := 0; i < 32; i++ {
				key := tuple.Value(i % 8)
				buf.Append(tuple.Tuple{key, key + 1, tuple.Value(100 - round*30 + i%3)})
			}
			r.Materialize(round, buf, false)
		}
		want := dumpFull(r)
		wantIDs := r.LocalIDCount()
		snap := r.SnapshotWords()

		buf := tuple.NewBuffer(3, 8)
		for i := 0; i < 8; i++ {
			buf.Append(tuple.Tuple{tuple.Value(i % 8), tuple.Value(i%8 + 1), 1})
		}
		r.Materialize(2, buf, false)
		if err := r.RestoreWords(snap); err != nil {
			return err
		}
		if got := dumpFull(r); !sameTuples(got, want) {
			return fmt.Errorf("rank %d: restored FULL diverges", c.Rank())
		}
		if r.LocalIDCount() != wantIDs {
			return fmt.Errorf("id count %d after restore, want %d", r.LocalIDCount(), wantIDs)
		}
		// Restored accumulators must still reject worse and accept better.
		buf.Reset()
		buf.Append(tuple.Tuple{0, 1, 9999})
		if ch := r.Materialize(3, buf, false); ch != 0 {
			return fmt.Errorf("worse value changed %d entries after restore", ch)
		}
		return r.CheckInvariants()
	})
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	runWorld(t, 1, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{})
		if err != nil {
			return err
		}
		r.LoadShare(20, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i), tuple.Value(i)})
		})
		snap := r.SnapshotWords()
		if err := r.RestoreWords(snap[:2]); err == nil {
			return fmt.Errorf("accepted truncated header")
		}
		if err := r.RestoreWords(snap[:len(snap)-1]); err == nil {
			return fmt.Errorf("accepted truncated payload")
		}
		if err := r.RestoreWords(append(append([]mpi.Word(nil), snap...), 0)); err == nil {
			return fmt.Errorf("accepted trailing words")
		}
		// The intact snapshot must still restore after the failed attempts.
		return r.RestoreWords(snap)
	})
}
