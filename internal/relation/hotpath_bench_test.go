package relation

// Hot-path microbenchmarks for the fused dedup/aggregation store. The
// accumulator-insert benchmarks are the allocation trajectory the bench
// target tracks (BENCH_hotpath.json): per the paper's §III-A the local
// aggregation pass is what must be cheap for communication avoidance to pay
// off, so the existing-key probe — the overwhelmingly common case once a
// fixpoint is past its first iterations — must not touch the allocator.
// Run with: go test ./internal/relation -bench BenchmarkAcc -benchmem

import (
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// benchWorld runs body on a single-rank world, failing b on error.
func benchWorld(b *testing.B, body func(c *mpi.Comm) error) {
	b.Helper()
	w := mpi.NewWorld(1)
	if err := w.Run(body); err != nil {
		b.Fatal(err)
	}
}

const accBenchKeys = 512

func accBenchBuffer(worse bool) *tuple.Buffer {
	buf := tuple.NewBuffer(3, accBenchKeys)
	for k := 0; k < accBenchKeys; k++ {
		v := tuple.Value(100)
		if worse {
			v = 500 // never improves the resident value
		}
		buf.Append(tuple.Tuple{tuple.Value(k), tuple.Value(k + 1), v})
	}
	return buf
}

// BenchmarkAccInsertExisting materializes a batch whose every key is already
// resident with an equal-or-better value: the pure probe/merge path with no
// Δ production. One op = accBenchKeys tuples.
func BenchmarkAccInsertExisting(b *testing.B) {
	benchWorld(b, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(Schema{Name: "sp", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}},
			c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		seed := accBenchBuffer(false)
		r.Materialize(0, seed, false)
		probe := accBenchBuffer(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Materialize(i+1, probe, false)
		}
		return nil
	})
}

// BenchmarkAccInsertImproving materializes batches that strictly improve
// every resident key, exercising the merge + Δ + index-maintenance path.
func BenchmarkAccInsertImproving(b *testing.B) {
	benchWorld(b, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(Schema{Name: "sp", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}},
			c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		start := tuple.Value(uint64(b.N) + 10)
		buf := tuple.NewBuffer(3, accBenchKeys)
		for k := 0; k < accBenchKeys; k++ {
			buf.Append(tuple.Tuple{tuple.Value(k), tuple.Value(k + 1), start})
		}
		r.Materialize(0, buf, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			v := start - tuple.Value(i) - 1
			for k := 0; k < accBenchKeys; k++ {
				buf.Append(tuple.Tuple{tuple.Value(k), tuple.Value(k + 1), v})
			}
			r.Materialize(i+1, buf, false)
		}
		return nil
	})
}

// BenchmarkSetDedupExisting is the set-semantics twin: every arriving tuple
// is already stored, so the pass is pure dedup probes.
func BenchmarkSetDedupExisting(b *testing.B) {
	benchWorld(b, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, err := New(Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		buf := tuple.NewBuffer(2, accBenchKeys)
		for k := 0; k < accBenchKeys; k++ {
			buf.Append(tuple.Tuple{tuple.Value(k % 37), tuple.Value(k)})
		}
		r.Materialize(0, buf, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Materialize(i+1, buf, false)
		}
		return nil
	})
}
