package relation

import (
	"fmt"
	"testing"
	"testing/quick"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

func setSchema(name string, arity, key int) Schema {
	return Schema{Name: name, Arity: arity, Indep: arity, Key: key}
}

func aggSchema(name string, indep int, agg lattice.Aggregator) Schema {
	return Schema{Name: name, Arity: indep + agg.Width(), Indep: indep, Key: indep, Agg: agg}
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		s  Schema
		ok bool
	}{
		{setSchema("e", 2, 1), true},
		{setSchema("e", 2, 2), true},
		{aggSchema("a", 2, lattice.Min{}), true},
		{Schema{Name: "z", Arity: 0, Indep: 0, Key: 0}, false},
		{Schema{Name: "z", Arity: 2, Indep: 2, Key: 3}, false},
		{Schema{Name: "z", Arity: 3, Indep: 2, Key: 1}, false},                     // dep cols without agg
		{Schema{Name: "z", Arity: 2, Indep: 2, Key: 1, Agg: lattice.Min{}}, false}, // indep+width != arity
		{Schema{Name: "z", Arity: 1, Indep: 0, Key: 0, Agg: lattice.Min{}}, false}, // no indep col
	}
	for i, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d (%+v): err = %v", i, c.s, err)
		}
	}
}

func TestHomeRanksCache(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(Schema{Name: "hr", Arity: 3, Indep: 2, Key: 1, Agg: lattice.Min{}},
			c, mc, Config{Subs: 3})
		if err != nil {
			return err
		}
		// The cache must agree with a direct recomputation for every bucket,
		// including after a SetSubs placement change.
		check := func() error {
			for _, ix := range r.Indexes() {
				for b := 0; b < c.Size(); b++ {
					got := ix.HomeRanks(b)
					want := map[int]bool{}
					if r.Subs() == 1 || ix.JK >= r.Indep {
						want[r.rankOf(b, 0)] = true
					} else {
						for s := 0; s < r.Subs(); s++ {
							want[r.rankOf(b, s)] = true
						}
					}
					if len(got) != len(want) {
						return fmt.Errorf("bucket %d: HomeRanks %v, want set %v", b, got, want)
					}
					for _, rk := range got {
						if !want[rk] {
							return fmt.Errorf("bucket %d: HomeRanks %v includes %d", b, got, rk)
						}
					}
				}
			}
			return nil
		}
		if err := check(); err != nil {
			return err
		}
		r.SetSubs(2)
		return check()
	})
}

// runWorld is a test helper running an SPMD body over n ranks.
func runWorld(t *testing.T, n int, body func(c *mpi.Comm) error) {
	t.Helper()
	w := mpi.NewWorld(n)
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestSetRelationLoadAndDedup(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		// All ranks contribute the SAME 100 tuples: global result must be
		// 100 distinct tuples, not 400.
		buf := tuple.NewBuffer(2, 100)
		for i := 0; i < 100; i++ {
			buf.Append(tuple.Tuple{tuple.Value(i % 10), tuple.Value(i)})
		}
		changed := r.Materialize(0, buf, false)
		if changed != 100 {
			return fmt.Errorf("changed = %d, want 100", changed)
		}
		if got := r.GlobalFullCount(); got != 100 {
			return fmt.Errorf("global count = %d", got)
		}
		// Second materialize of the same data: nothing changes and Δ flips
		// to empty.
		changed = r.Materialize(1, buf, false)
		if changed != 0 {
			return fmt.Errorf("re-materialize changed = %d", changed)
		}
		if d := c.Allreduce(uint64(r.LocalDeltaCount()), mpi.OpSum); d != 0 {
			return fmt.Errorf("delta after no-change = %d", d)
		}
		return nil
	})
}

func TestSetRelationPlacementInvariant(t *testing.T) {
	const ranks = 5
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 3})
		if err != nil {
			return err
		}
		r.LoadShare(500, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i % 7), tuple.Value(i)})
		})
		// Every locally stored tuple must map to this rank under the
		// placement function.
		bad := 0
		ix := r.Canonical()
		ix.Full.Ascend(func(tt tuple.Tuple) bool {
			if !ix.ownedHere(tt) {
				bad++
			}
			return true
		})
		if bad != 0 {
			return fmt.Errorf("rank %d stores %d misplaced tuples", c.Rank(), bad)
		}
		if got := r.GlobalFullCount(); got != 500 {
			return fmt.Errorf("global = %d", got)
		}
		return nil
	})
}

func TestSecondaryIndexConsistency(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		rev, err := r.AddIndex([]int{1, 0}, 1) // reversed index on column 2
		if err != nil {
			return err
		}
		r.LoadShare(300, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i), tuple.Value(i * 3 % 50)})
		})
		// The reversed index must globally hold the same 300 tuples.
		if got := c.Allreduce(uint64(rev.Full.Len()), mpi.OpSum); got != 300 {
			return fmt.Errorf("reversed index global = %d", got)
		}
		// And each stored tuple unpermutes to an original fact.
		bad := 0
		rev.Full.Ascend(func(stored tuple.Tuple) bool {
			orig := rev.Unpermute(stored)
			if orig[1] != orig[0]*3%50 {
				bad++
			}
			return true
		})
		if bad != 0 {
			return fmt.Errorf("%d corrupted tuples in reversed index", bad)
		}
		// Probing the reversed index by its join key must be rank-local:
		// all tuples with the same column-2 value live on one rank (the
		// index has no sub-splittable columns here, but the bucket must
		// still be unique). Iterate the deterministic key domain so every
		// rank performs the same collectives.
		for v := 0; v < 50; v++ {
			n := rev.Full.Count(tuple.Tuple{tuple.Value(v)})
			have := uint64(0)
			if n > 0 {
				have = 1
			}
			holders := c.Allreduce(have, mpi.OpSum)
			if holders > 1 && r.Subs() == 1 {
				return fmt.Errorf("key %d spread across %d ranks with 1 sub-bucket", v, holders)
			}
			if holders == 0 {
				return fmt.Errorf("key %d missing from reversed index", v)
			}
		}
		return nil
	})
}

func TestAggRelationMinAccumulation(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		// Every rank proposes a different value for key (1,2); min must win.
		buf := tuple.NewBuffer(3, 1)
		buf.Append(tuple.Tuple{1, 2, tuple.Value(10 + c.Rank())})
		changed := r.Materialize(0, buf, false)
		if changed != 1 {
			return fmt.Errorf("changed = %d, want 1 (single key)", changed)
		}
		// Exactly one rank owns the accumulator; its value must be 10.
		if v, ok := r.Lookup(tuple.Tuple{1, 2}); ok {
			if v[0] != 10 {
				return fmt.Errorf("acc = %d, want 10", v[0])
			}
		}
		if got := r.GlobalFullCount(); got != 1 {
			return fmt.Errorf("global = %d", got)
		}
		// Worse value: no change. Better value: change.
		buf.Reset()
		buf.Append(tuple.Tuple{1, 2, 50})
		if ch := r.Materialize(1, buf, false); ch != 0 {
			return fmt.Errorf("worse value changed = %d", ch)
		}
		buf.Reset()
		buf.Append(tuple.Tuple{1, 2, 3})
		if ch := r.Materialize(2, buf, false); ch != 1 {
			return fmt.Errorf("better value changed = %d", ch)
		}
		if v, ok := r.Lookup(tuple.Tuple{1, 2}); ok && v[0] != 3 {
			return fmt.Errorf("acc after improvement = %d", v[0])
		}
		return nil
	})
}

func TestAggIndexStalePurge(t *testing.T) {
	const ranks = 3
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		// Index on the second independent column (like SSSP's index on
		// "to" for the next join).
		rev, err := r.AddIndex([]int{1, 0, 2}, 1)
		if err != nil {
			return err
		}
		buf := tuple.NewBuffer(3, 1)
		buf.Append(tuple.Tuple{7, 8, 100})
		r.Materialize(0, buf, false)
		buf.Reset()
		buf.Append(tuple.Tuple{7, 8, 42})
		r.Materialize(1, buf, false)
		// Globally the reversed index must hold exactly one tuple for key
		// (8,7), with value 42 — the stale 100 purged.
		var local, staleCount uint64
		rev.Full.AscendPrefix(tuple.Tuple{8, 7}, func(tt tuple.Tuple) bool {
			local++
			if tt[2] != 42 {
				staleCount++
			}
			return true
		})
		if g := c.Allreduce(local, mpi.OpSum); g != 1 {
			return fmt.Errorf("global entries for key = %d, want 1", g)
		}
		if g := c.Allreduce(staleCount, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d stale entries survived", g)
		}
		// The canonical index too.
		var canon uint64
		r.Canonical().Full.AscendPrefix(tuple.Tuple{7, 8}, func(tt tuple.Tuple) bool {
			if tt[2] == 42 {
				canon++
			}
			return true
		})
		if g := c.Allreduce(canon, mpi.OpSum); g != 1 {
			return fmt.Errorf("canonical index entries = %d", g)
		}
		return nil
	})
}

func TestAggSubBucketedTwoPhase(t *testing.T) {
	// With Subs > 1 the aggregation runs scatter → pre-agg → gather; the
	// result must equal the Subs == 1 answer.
	const ranks = 4
	for _, subs := range []int{1, 4} {
		subs := subs
		runWorld(t, ranks, func(c *mpi.Comm) error {
			mc := metrics.NewCollector(ranks)
			r, err := New(aggSchema("sp", 1, lattice.Min{}), c, mc, Config{Subs: subs})
			if err != nil {
				return err
			}
			// 1000 proposals for 10 keys from each rank.
			buf := tuple.NewBuffer(2, 1000)
			for i := 0; i < 1000; i++ {
				key := tuple.Value(i % 10)
				val := tuple.Value((i*7+c.Rank()*13)%997 + 1)
				buf.Append(tuple.Tuple{key, val})
			}
			if ch := r.Materialize(0, buf, false); ch != 10 {
				return fmt.Errorf("subs=%d: changed = %d, want 10", subs, ch)
			}
			// Verify each key's min against a direct computation.
			for key := 0; key < 10; key++ {
				want := ^tuple.Value(0)
				for rk := 0; rk < ranks; rk++ {
					for i := key; i < 1000; i += 10 {
						v := tuple.Value((i*7+rk*13)%997 + 1)
						if v < want {
							want = v
						}
					}
				}
				var local uint64
				if v, ok := r.Lookup(tuple.Tuple{tuple.Value(key)}); ok {
					local = uint64(v[0])
				}
				got := c.Allreduce(local, mpi.OpMax)
				if got != uint64(want) {
					return fmt.Errorf("subs=%d key=%d: min = %d, want %d", subs, key, got, want)
				}
			}
			return nil
		})
	}
}

func TestMSumExactlyOnceAccumulation(t *testing.T) {
	const ranks = 3
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("cnt", 1, lattice.MCount{}), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		// Each rank contributes 50 count-1 tuples for key 9.
		buf := tuple.NewBuffer(2, 50)
		for i := 0; i < 50; i++ {
			buf.Append(tuple.Tuple{9, 1})
		}
		r.Materialize(0, buf, false)
		var local uint64
		if v, ok := r.Lookup(tuple.Tuple{9}); ok {
			local = uint64(v[0])
		}
		if got := c.Allreduce(local, mpi.OpMax); got != 150 {
			return fmt.Errorf("count = %d, want 150", got)
		}
		return nil
	})
}

func TestSetSubsRedistributionPreservesData(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		// Skewed: 90% of tuples share key 0.
		r.LoadShare(1000, func(i int, emit func(tuple.Tuple)) {
			k := tuple.Value(0)
			if i%10 == 9 {
				k = tuple.Value(i)
			}
			emit(tuple.Tuple{k, tuple.Value(i)})
		})
		before := r.GlobalFullCount()
		ratioBefore := metrics.ImbalanceRatio(r.PerRankCounts())
		r.SetSubs(8)
		after := r.GlobalFullCount()
		if before != after {
			return fmt.Errorf("rebalance lost tuples: %d -> %d", before, after)
		}
		ratioAfter := metrics.ImbalanceRatio(r.PerRankCounts())
		if ratioAfter > ratioBefore {
			return fmt.Errorf("rebalance worsened imbalance: %.1f -> %.1f", ratioBefore, ratioAfter)
		}
		// All tuples must sit on their new homes.
		bad := 0
		ix := r.Canonical()
		ix.Full.Ascend(func(tt tuple.Tuple) bool {
			if !ix.ownedHere(tt) {
				bad++
			}
			return true
		})
		if bad != 0 {
			return fmt.Errorf("%d misplaced tuples after rebalance", bad)
		}
		return nil
	})
}

func TestAddIndexValidation(t *testing.T) {
	runWorld(t, 1, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		r, _ := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{})
		if _, err := r.AddIndex([]int{0, 1}, 1); err == nil {
			return fmt.Errorf("accepted wrong-length perm")
		}
		if _, err := r.AddIndex([]int{0, 0, 2}, 1); err == nil {
			return fmt.Errorf("accepted duplicate perm entry")
		}
		if _, err := r.AddIndex([]int{2, 0, 1}, 1); err == nil {
			return fmt.Errorf("accepted dependent column before independent")
		}
		if _, err := r.AddIndex([]int{0, 1, 2}, 3); err == nil {
			return fmt.Errorf("accepted join on dependent column")
		}
		if _, err := r.AddIndex([]int{1, 0, 2}, 1); err != nil {
			return fmt.Errorf("rejected valid index: %v", err)
		}
		if r.FindIndex([]int{1, 0, 2}, 1) == nil {
			return fmt.Errorf("FindIndex missed registered index")
		}
		if r.FindIndex([]int{1, 0, 2}, 2) != nil {
			return fmt.Errorf("FindIndex matched wrong jk")
		}
		return nil
	})
}

func TestEachAccRebuildsCanonicalTuples(t *testing.T) {
	runWorld(t, 2, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(2)
		r, _ := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{})
		buf := tuple.NewBuffer(3, 2)
		if c.Rank() == 0 {
			buf.Append(tuple.Tuple{1, 2, 30})
			buf.Append(tuple.Tuple{4, 5, 60})
		}
		r.Materialize(0, buf, false)
		var local uint64
		r.EachAcc(func(t tuple.Tuple) {
			if (t[0] == 1 && t[1] == 2 && t[2] == 30) || (t[0] == 4 && t[1] == 5 && t[2] == 60) {
				local++
			} else {
				local += 1000 // corrupt tuple marker
			}
		})
		if g := c.Allreduce(local, mpi.OpSum); g != 2 {
			return fmt.Errorf("EachAcc saw wrong tuples (marker %d)", g)
		}
		return nil
	})
}

func TestCheckInvariantsAfterChurn(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		if _, err := r.AddIndex([]int{1, 0, 2}, 1); err != nil {
			return err
		}
		// Churn: repeated improvements across many keys.
		for round := 0; round < 5; round++ {
			buf := tuple.NewBuffer(3, 64)
			for i := 0; i < 64; i++ {
				key := tuple.Value(i % 16)
				buf.Append(tuple.Tuple{key, key + 1, tuple.Value(100 - round*10 + i%3)})
			}
			r.Materialize(round, buf, false)
			if err := r.CheckInvariants(); err != nil {
				return fmt.Errorf("round %d: %v", round, err)
			}
		}
		// Rebalance and re-check.
		r.SetSubs(8)
		return r.CheckInvariants()
	})
}

func TestCheckInvariantsSetRelation(t *testing.T) {
	const ranks = 3
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 2})
		if err != nil {
			return err
		}
		if _, err := r.AddIndex([]int{1, 0}, 1); err != nil {
			return err
		}
		r.LoadShare(400, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i % 13), tuple.Value(i)})
		})
		return r.CheckInvariants()
	})
}

func TestTupleIDsUniqueAndStable(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(aggSchema("sp", 2, lattice.Min{}), c, mc, Config{})
		if err != nil {
			return err
		}
		buf := tuple.NewBuffer(3, 8)
		for i := 0; i < 8; i++ {
			buf.Append(tuple.Tuple{tuple.Value(i), tuple.Value(i + 1), 50})
		}
		r.Materialize(0, buf, false)
		// Record ids, improve every key, and confirm ids survive.
		ids := map[[2]uint64]uint64{}
		r.EachAcc(func(tt tuple.Tuple) {
			id, ok := r.TupleID(tuple.Tuple{tt[0], tt[1]})
			if !ok {
				t.Errorf("no id for %v", tt)
				return
			}
			if IDOwner(id) != c.Rank() {
				t.Errorf("id %x owned by %d but stored on %d", id, IDOwner(id), c.Rank())
			}
			ids[[2]uint64{tt[0], tt[1]}] = id
		})
		buf.Reset()
		for i := 0; i < 8; i++ {
			buf.Append(tuple.Tuple{tuple.Value(i), tuple.Value(i + 1), 7})
		}
		r.Materialize(1, buf, false)
		r.EachAcc(func(tt tuple.Tuple) {
			if tt[2] != 7 {
				t.Errorf("value not improved: %v", tt)
			}
			id, _ := r.TupleID(tuple.Tuple{tt[0], tt[1]})
			if id != ids[[2]uint64{tt[0], tt[1]}] {
				t.Errorf("id changed on improvement for %v", tt)
			}
		})
		// Global id count equals global key count, and ids are globally
		// unique by construction (disjoint per-rank ranges).
		total := c.Allreduce(uint64(r.LocalIDCount()), mpi.OpSum)
		if total != r.GlobalFullCount() {
			return fmt.Errorf("ids %d, keys %d", total, r.GlobalFullCount())
		}
		return nil
	})
}

func TestTupleIDsSurviveRebalance(t *testing.T) {
	const ranks = 4
	runWorld(t, ranks, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		r, err := New(setSchema("edge", 2, 1), c, mc, Config{Subs: 1})
		if err != nil {
			return err
		}
		r.LoadShare(200, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{tuple.Value(i % 5), tuple.Value(i)})
		})
		// Record all (tuple → id) pairs globally via a canonical scan on
		// each rank.
		before := map[[2]uint64]uint64{}
		r.Canonical().Full.Ascend(func(tt tuple.Tuple) bool {
			id, ok := r.TupleID(tt)
			if !ok {
				t.Errorf("missing id for %v", tt)
				return false
			}
			before[[2]uint64{tt[0], tt[1]}] = id
			return true
		})
		r.SetSubs(8)
		// After rebalance every local tuple still has its id, and the id
		// count matches the tuple count globally.
		r.Canonical().Full.Ascend(func(tt tuple.Tuple) bool {
			if _, ok := r.TupleID(tt); !ok {
				t.Errorf("id lost after rebalance for %v", tt)
				return false
			}
			return true
		})
		ids := c.Allreduce(uint64(r.LocalIDCount()), mpi.OpSum)
		if ids != r.GlobalFullCount() {
			return fmt.Errorf("ids %d, tuples %d after rebalance", ids, r.GlobalFullCount())
		}
		return r.CheckInvariants()
	})
}

// TestQuickPlacementDeterministicAndInRange: every tuple maps to exactly
// one rank in range, stably.
func TestQuickPlacementDeterministicAndInRange(t *testing.T) {
	runWorld(t, 1, func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		// A single-rank world still exercises the placement arithmetic via
		// the index helpers (bucket/sub computations are world-size based;
		// use a fake larger size by checking the hash spread directly).
		r, err := New(setSchema("edge", 3, 1), c, mc, Config{Subs: 4})
		if err != nil {
			return err
		}
		ix := r.Canonical()
		f := func(a, b, w uint64) bool {
			t1 := tuple.Tuple{a, b, w}
			bkt := ix.bucketOf(t1)
			sub := ix.subOf(t1)
			if bkt != ix.bucketOf(t1) || sub != ix.subOf(t1) {
				return false // nondeterministic
			}
			if bkt < 0 || bkt >= c.Size() || sub < 0 || sub >= r.Subs() {
				return false
			}
			// Bucket depends only on the key prefix.
			t2 := tuple.Tuple{a, b + 1, w + 7}
			return ix.bucketOf(t2) == bkt
		}
		return quick.Check(f, &quick.Config{MaxCount: 500})
	})
}
