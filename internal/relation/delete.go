package relation

import (
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// This file implements the deletion side of incremental maintenance: the
// serving engine's over-approximate invalidation drops candidate tuples
// batch by batch, leaving exactly the dropped tuples in Δ so the next
// invalidation round can chase their dependents, and finally rebuilds the
// accumulator without the dropped keys. The wordmap arena is append-only,
// so dropped aggregate keys are tracked in a side set (dropSet) during the
// bracket and compacted out in one pass at EndDelete.

// ClearDelta empties every index's Δ tree and zeroes the cached changed
// count. It is rank-local but must be called uniformly (the changed count
// gates collective join variants).
func (r *Relation) ClearDelta() {
	for _, ix := range r.indexes {
		ix.Delta.Reset()
	}
	r.changedLast = 0
}

// Clear resets the relation to its freshly loaded-nothing state: the
// accumulator, every index's FULL and Δ trees, and the identity arena are
// dropped. The id counter is preserved so ids handed out after a Clear
// never collide with ids from before it. Rank-local; call uniformly. The
// serving engine uses it for the from-scratch fallback before replaying
// the base-fact journal.
func (r *Relation) Clear() {
	if r.Agg != nil {
		r.acc = wordmap.New(r.Indep, r.Dep())
	}
	if r.leakyBest != nil {
		r.leakyBest = wordmap.New(r.leaky.Indep, r.Arity-r.leaky.Indep)
	}
	r.ids = nil
	r.dropSet = nil
	for _, ix := range r.indexes {
		ix.Full.Reset()
		ix.Delta.Reset()
	}
	r.changedLast = 0
	r.invalidateDigestBaseline()
}

// BeginDelete opens a deletion bracket. Between BeginDelete and EndDelete
// any number of DeleteBatch calls may run (the invalidation loop issues one
// per relation per round); the bracket-wide dropSet deduplicates candidates
// across rounds and defers the accumulator compaction to EndDelete. Set
// relations need no bracket state (their canonical tree deletes in place),
// but calling it uniformly on every relation is harmless and keeps the
// driver simple.
func (r *Relation) BeginDelete() {
	if r.Agg == nil {
		return
	}
	if r.dropSet == nil {
		r.dropSet = wordmap.New(r.Indep, r.Dep())
		return
	}
	r.dropSet.Reset()
}

// EndDelete closes a deletion bracket: for aggregated relations the
// accumulator is rebuilt without the dropped keys (the arena is
// append-only, so compaction is a copy of the survivors) and the digest
// baselines are invalidated so the next Materialize re-adopts them.
func (r *Relation) EndDelete() {
	if r.Agg == nil {
		return
	}
	ds := r.dropSet
	r.dropSet = nil
	if ds == nil || ds.Len() == 0 {
		return
	}
	fresh := wordmap.NewWithCapacity(r.Indep, r.Dep(), r.acc.Len())
	r.acc.Each(func(indep, dep []tuple.Value) bool {
		if ds.Get(indep) == nil {
			v, _ := fresh.Upsert(indep)
			copy(v, dep)
		}
		return true
	})
	r.acc = fresh
	r.invalidateDigestBaseline()
}

// DeleteBatch removes a batch of candidate tuples from the relation and
// seeds Δ with exactly the tuples actually dropped, so invalidation rounds
// can chase their dependents through the stratum's rules. It is collective
// and must be called on every rank (candidates may differ per rank; they
// are routed to their owners first). Candidates are canonical-order tuples;
// for aggregated relations only the independent prefix matters — the key is
// dropped whatever dependent value it currently holds (over-approximate
// invalidation). Candidates already dropped in this bracket, or not present
// at all, are skipped. Returns the global number of tuples dropped this
// call (identical on every rank) and caches it as the relation's changed
// count.
//
// Aggregated relations must be inside a BeginDelete/EndDelete bracket: the
// accumulator still holds dropped keys until EndDelete compacts it, so
// reads between batches must consult Δ/FULL (which this call maintains),
// not Lookup.
func (r *Relation) DeleteBatch(cands *tuple.Buffer) uint64 {
	size := r.comm.Size()

	// Δ from the previous round has been consumed; this round's Δ holds
	// exactly what this call drops.
	for _, ix := range r.indexes {
		ix.Delta.Reset()
	}
	if r.Agg != nil && r.dropSet == nil {
		r.BeginDelete()
	}

	// Phase A: route candidates to their owners — the accumulator home for
	// aggregated relations, the canonical index home for sets.
	send := r.sendBuf(size)
	n := 0
	if cands != nil {
		n = cands.Len()
	}
	for i := 0; i < n; i++ {
		t := cands.At(i)
		var dest int
		if r.Agg != nil {
			dest = r.accPlacement(t[:r.Indep])
		} else {
			ix := r.indexes[0]
			dest = r.rankOf(ix.bucketOf(t), ix.subOf(t))
		}
		send[dest] = append(send[dest], t...)
	}
	recv := r.comm.Alltoallv(send)

	// Owner-side drop. The removed buffer collects the dropped tuples in
	// canonical order, carrying the dependent value each key held — the
	// next round's rules derive dependents from the dropped values.
	removed := r.freshTuples()
	if r.Agg != nil {
		scratch := r.tupleScratch()
		for _, words := range recv {
			for off := 0; off+r.Arity <= len(words); off += r.Arity {
				t := tuple.Tuple(words[off : off+r.Arity])
				key := t[:r.Indep]
				if r.dropSet.Get(key) != nil {
					continue // already dropped in this bracket
				}
				v := r.acc.Get(key)
				if v == nil {
					continue // over-approximation reached a key never derived
				}
				dv, _ := r.dropSet.Upsert(key)
				copy(dv, v)
				copy(scratch, key)
				copy(scratch[r.Indep:], v)
				removed.Append(scratch)
			}
		}
	} else {
		canon := r.indexes[0]
		for _, words := range recv {
			for off := 0; off+r.Arity <= len(words); off += r.Arity {
				t := tuple.Tuple(words[off : off+r.Arity])
				if canon.Full.Delete(t) {
					canon.Delta.Insert(t)
					removed.Append(t)
				}
			}
		}
	}

	// Phase B: purge every index replica of the dropped tuples and seed
	// their Δ trees, mirroring maintainIndexes' routing.
	r.purgeReplicas(removed)

	total := r.comm.Allreduce(uint64(removed.Len()), mpi.OpSum)
	r.changedLast = total
	r.invalidateDigestBaseline()
	return total
}

// purgeReplicas routes dropped tuples (canonical order) to every index home
// that stores them and deletes them there, inserting each into the home's Δ
// tree. For set relations the canonical index was already updated at the
// owner and is skipped — exactly the replica set maintainIndexes routes to.
func (r *Relation) purgeReplicas(removed *tuple.Buffer) {
	size := r.comm.Size()
	start := 0
	if r.Agg == nil {
		start = 1
	}
	if start >= len(r.indexes) {
		// No replicas; every rank skips uniformly (same index count
		// everywhere), so no collective is missed.
		return
	}
	send := r.sendBuf(size)
	stored := r.permuteScratch()
	for i, nr := 0, removed.Len(); i < nr; i++ {
		t := removed.At(i)
		for id := start; id < len(r.indexes); id++ {
			ix := r.indexes[id]
			ix.permuteInto(t, stored)
			dest := r.rankOf(ix.bucketOf(stored), ix.subOf(stored))
			send[dest] = append(send[dest], mpi.Word(id))
			send[dest] = append(send[dest], stored...)
		}
	}
	recv := r.comm.Alltoallv(send)
	rec := 1 + r.Arity
	for _, words := range recv {
		for off := 0; off+rec <= len(words); off += rec {
			id := int(words[off])
			arrived := tuple.Tuple(words[off+1 : off+rec])
			ix := r.indexes[id]
			if ix.Full.Delete(arrived) {
				ix.Delta.Insert(arrived)
			}
		}
	}
}
