package relation

import (
	"paralagg/internal/btree"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// Online divergence detection (Config.Integrity). Each Materialize
// fingerprints this rank's shard with order-independent 64-bit digests and
// rides them on the convergence Allreduce — the agreement every iteration
// already pays for — so detection costs zero extra collective rounds. The
// digests are sums of per-tuple hashes, which makes them independent of
// storage order AND of placement: the global sum over ranks is a property
// of the logical relation, so it survives sub-bucket rebalancing and
// elastic restarts.
//
// Three invariants are checked on the agreed global sums each iteration:
//
//   replica:  Σ over every index's FULL tree  ==  nIndexes × canonical
//             (every B-tree replica stores the same global relation the
//             canonical store does; a flipped word in any one copy breaks
//             the equality)
//   delta:    Σ over every index's Δ tree  ==  nIndexes × Σ fresh tuples
//             (each changed tuple reached every replica exactly once)
//   history:  full_t == full_{t-1} + Δ_t for set-semantics relations
//             (FULL only ever grows by exactly the deduplicated fresh
//             tuples — this is what catches corruption of the canonical
//             tree itself, which the replica check cannot see when the
//             corrupt copy is the reference)
//   drift:    Σ over ranks of (recomputed acc digest − running acc digest)
//             == 0 for aggregated relations. The running digest is
//             maintained ONLY by the merge path, so a word flipped directly
//             in the accumulator arena drifts — even when a later lattice
//             merge overwrites the flipped value in the same iteration and
//             leaves the replicas consistent-but-wrong. Both global sums
//             are placement-independent, so the invariant survives
//             sub-bucket redistribution without re-seeding.
//
// CRC32C on the wire (PR 2) protects tuples in flight; these digests
// protect them at rest. What none can catch is a wrong-but-consistent
// lattice value produced before the tuple was ever hashed.

// digestSeed starts every per-tuple hash stream.
const digestSeed = 0x9e3779b97f4a7c15

// digestWord folds one word into a running splitmix64-style stream.
func digestWord(h, v uint64) uint64 {
	h ^= v
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// digestWords folds ws into a running splitmix64-style stream; column
// order matters (tuple (1,2) ≠ tuple (2,1)) but the per-tuple results are
// summed, so the multiset digest is storage-order-independent.
func digestWords(h uint64, ws []tuple.Value) uint64 {
	for _, v := range ws {
		h = digestWord(h, uint64(v))
	}
	return h
}

// digestTuple hashes one canonical-order tuple.
func digestTuple(t tuple.Tuple) uint64 { return digestWords(digestSeed, t) }

// digestInv returns the inverse storage permutation for digesting (canonical
// column c lives at stored position inv[c]), or nil when the permutation is
// the identity and stored order IS canonical order. Computed once per index.
func (ix *Index) digestInv() []int {
	if !ix.digInvDone {
		ix.digInvDone = true
		identity := true
		for i, c := range ix.Perm {
			if i != c {
				identity = false
				break
			}
		}
		if !identity {
			inv := make([]int, len(ix.Perm))
			for i, c := range ix.Perm {
				inv[c] = i
			}
			ix.digInv = inv
		}
	}
	return ix.digInv
}

// digestTree sums per-tuple digests of tr's stored tuples mapped back to
// canonical column order through the inverse index permutation — no
// intermediate copy — so every replica of the same logical tuple contributes
// the same value regardless of its storage permutation. This walk is the
// integrity layer's hot loop: it re-reads every stored word each iteration,
// which is exactly what makes at-rest rot detectable.
func (ix *Index) digestTree(tr *btree.Tree) uint64 {
	var sum uint64
	inv := ix.digestInv()
	if inv == nil {
		tr.Ascend(func(stored tuple.Tuple) bool {
			sum += digestTuple(stored)
			return true
		})
		return sum
	}
	tr.Ascend(func(stored tuple.Tuple) bool {
		h := uint64(digestSeed)
		for _, p := range inv {
			h = digestWord(h, uint64(stored[p]))
		}
		sum += h
		return true
	})
	return sum
}

// digestAcc sums per-entry digests of the aggregate accumulator as
// canonical tuples (independent key followed by dependent value).
func (r *Relation) digestAcc() uint64 {
	var sum uint64
	r.acc.Each(func(indep, dep []tuple.Value) bool {
		sum += digestWords(digestWords(digestSeed, indep), dep)
		return true
	})
	return sum
}

// digestBuffer sums per-tuple digests of a canonical-order tuple buffer.
func digestBuffer(b *tuple.Buffer) uint64 {
	var sum uint64
	for i, n := 0, b.Len(); i < n; i++ {
		sum += digestTuple(b.At(i))
	}
	return sum
}

// integrityLocal fills vec[1:6] with this rank's digest contributions and
// returns the number of tuples hashed: [1] the canonical store (acc for
// aggregated relations, the canonical tree otherwise), [2] Σ over every
// index FULL tree, [3] Σ over every index Δ tree, [4] this pass's fresh
// tuples, [5] the accumulator drift (recomputed minus running digest;
// always 0 for set relations).
func (r *Relation) integrityLocal(fresh *tuple.Buffer, vec []mpi.Word) int64 {
	var canon, fullSum, deltaSum uint64
	work := int64(0)
	for i, ix := range r.indexes {
		fd := ix.digestTree(ix.Full)
		fullSum += fd
		deltaSum += ix.digestTree(ix.Delta)
		work += int64(ix.Full.Len() + ix.Delta.Len())
		if i == 0 {
			canon = fd
		}
	}
	vec[5] = 0
	if r.Agg != nil {
		canon = r.digestAcc()
		work += int64(r.acc.Len())
		if !r.accDigValid {
			// First iteration, or the accumulator was legitimately rebuilt
			// (restore): adopt the recomputed digest as the running baseline.
			r.accDig = canon
			r.accDigValid = true
		}
		vec[5] = canon - r.accDig
	}
	vec[1] = canon
	vec[2] = fullSum
	vec[3] = deltaSum
	if fresh != nil {
		vec[4] = digestBuffer(fresh)
		work += int64(fresh.Len())
	} else {
		vec[4] = 0
	}
	return work
}

// integrityAllreduce replaces the scalar convergence Allreduce with a
// 6-word OpSum vector carrying [changed, canonical, ΣFULL, ΣΔ, Σfresh,
// accDrift], verifies the agreed sums, and returns the global changed
// count. The fingerprint computation is metered as PhaseIntegrity; the
// collective itself is the same agreement round the scalar path pays.
func (r *Relation) integrityAllreduce(iter int, changedLocal uint64, record bool) uint64 {
	if r.digVec == nil {
		r.digVec = make([]mpi.Word, 6)
		r.digVecOut = make([]mpi.Word, 6)
	}
	timer := metrics.StartTimer()
	vec := r.digVec
	vec[0] = changedLocal
	work := r.integrityLocal(r.freshBuf, vec)
	if record {
		r.mc.Record(r.comm.Rank(), iter, metrics.PhaseIntegrity, timer.Done(work, 0, 0))
	}
	g := r.comm.AllreduceVec(vec, r.digVecOut, mpi.OpSum)
	r.verifyIntegrity(iter, g)
	return g[0]
}

// verifyIntegrity checks the invariants on the agreed global sums. Every
// rank holds the identical vector, so a violation raises the same
// divergence on every rank in the same iteration. Leaky (baseline-mode)
// relations skip the replica and delta equalities, mirroring the offline
// invariant checker: their never-purged stale tuples make replica counts
// intentionally loose.
func (r *Relation) verifyIntegrity(iter int, g []mpi.Word) {
	nIdx := uint64(len(r.indexes))
	canon, fullSum, deltaSum, freshDig := g[1], g[2], g[3], g[4]
	if r.leaky == nil {
		if fullSum != nIdx*canon {
			r.diverge(iter, "replica")
		}
		if deltaSum != nIdx*freshDig {
			r.diverge(iter, "delta")
		}
	}
	if g[5] != 0 {
		// The accumulator arena changed outside the merge path on some rank
		// (the per-rank drifts are placement-independent, so legitimate
		// redistribution cancels in the global sum).
		r.diverge(iter, "accumulator")
	}
	if r.Agg == nil {
		if r.digPrevValid && canon != r.digPrev+freshDig {
			r.diverge(iter, "history")
		}
		// Adopt (or re-adopt, after a restore invalidated it) the agreed
		// digest as the next iteration's baseline.
		r.digPrev = canon
		r.digPrevValid = true
	}
}

// diverge raises the structured divergence failure on this rank. All ranks
// verified the same agreed vector, so all raise it together and the world
// unwinds with every rank carrying mpi.ErrStateDiverged.
func (r *Relation) diverge(iter int, check string) {
	rank := r.comm.Rank()
	panic(&mpi.ErrRankFailed{
		Rank: rank, Op: "integrity", Iter: iter,
		Cause: &mpi.ErrStateDiverged{Iter: iter, Rel: r.Name, Rank: rank, Check: check},
	})
}

// invalidateDigestBaseline drops the running history and accumulator
// baselines. Called whenever the shard is rebuilt outside Materialize
// (checkpoint restore, elastic remap): the next agreed digest
// re-establishes them, so the first post-restore iteration checks replica
// and delta invariants only.
func (r *Relation) invalidateDigestBaseline() {
	r.digPrevValid = false
	r.accDigValid = false
}

// TamperState deterministically flips one stored word of this rank's shard
// — the chaos harness's in-memory corruption fault. Aggregated relations
// flip a dependent-value word of a middle accumulator entry (caught by the
// drift invariant even when a same-iteration merge overwrites it); when
// this rank owns no accumulator entries (sub-bucketed layouts concentrate
// ownership on bucket owners) they flip the leading stored word of a FULL
// replica tuple instead, which the purge path can never heal (it looks up
// the original key prefix), so the replica invariant catches it. Set
// relations flip the last word of the first canonical-tree tuple. Reports
// false when the shard is empty.
func (r *Relation) TamperState(mask mpi.Word) bool {
	if r.Agg != nil {
		if r.acc.TamperValueWord(mask) {
			return true
		}
		done := false
		r.indexes[0].Full.Ascend(func(t tuple.Tuple) bool {
			t[0] ^= mask
			done = true
			return false
		})
		return done
	}
	done := false
	r.indexes[0].Full.Ascend(func(t tuple.Tuple) bool {
		t[len(t)-1] ^= mask
		done = true
		return false
	})
	return done
}
