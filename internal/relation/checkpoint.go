package relation

import (
	"fmt"

	"paralagg/internal/btree"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// Relation snapshots. A snapshot captures one rank's complete shard of a
// relation — every index's FULL and Δ trees, the aggregate accumulator, the
// tuple-identity map, the sub-bucket count, and the cached global changed
// count — as a flat word buffer, the same representation the wire uses.
// Restoring the snapshot on a fresh (or poisoned-and-rebuilt) world
// reproduces the rank's state bit for bit, which is what lets the fixpoint
// driver resume mid-run after a rank failure and still reach the identical
// fixpoint.
//
// Snapshots are rank-local: each rank saves and restores its own shard, and
// the fixpoint layer coordinates that all ranks act on the same iteration's
// snapshots.

// SnapshotWords serializes this rank's shard. The layout is
//
//	subs, changedLast, idCounter,
//	nIndexes, { nFull, tuples..., nDelta, tuples... } per index,
//	nAcc, { indep..., dep... } per accumulator entry,
//	nIds, { key..., id } per identity entry,
//	nLeaky, { key..., best... } per leaky partial-best entry.
func (r *Relation) SnapshotWords() []mpi.Word {
	out := make([]mpi.Word, 0, 64)
	out = append(out, mpi.Word(r.subs), r.changedLast, r.idCounter)
	out = append(out, mpi.Word(len(r.indexes)))
	for _, ix := range r.indexes {
		for _, tree := range []*btree.Tree{ix.Full, ix.Delta} {
			out = append(out, mpi.Word(tree.Len()))
			tree.Ascend(func(t tuple.Tuple) bool {
				out = append(out, t...)
				return true
			})
		}
	}
	out = append(out, mpi.Word(len(r.acc)))
	for k, dep := range r.acc {
		out = append(out, keyValues(k)...)
		out = append(out, dep...)
	}
	out = append(out, mpi.Word(len(r.ids)))
	for k, id := range r.ids {
		out = append(out, keyValues(k)...)
		out = append(out, id)
	}
	out = append(out, mpi.Word(len(r.leakyBest)))
	for k, best := range r.leakyBest {
		out = append(out, keyValues(k)...)
		out = append(out, best...)
	}
	return out
}

// idKeyWords is the word length of a tuple-identity key: the independent
// columns for aggregated relations, the whole tuple for set relations.
func (r *Relation) idKeyWords() int {
	if r.Agg != nil {
		return r.Indep
	}
	return r.Arity
}

// RestoreWords replaces this rank's shard with a snapshot produced by
// SnapshotWords on a relation of the identical schema and index registry.
// Existing contents are discarded wholesale, so restoring over a partially
// mutated relation (e.g. after reloading base facts) is safe.
func (r *Relation) RestoreWords(words []mpi.Word) error {
	fail := func(what string) error {
		return fmt.Errorf("relation %s: corrupt snapshot: %s (at %d of %d words)", r.Name, what, 0, len(words))
	}
	next := func(n int) ([]mpi.Word, bool) {
		if len(words) < n {
			return nil, false
		}
		chunk := words[:n]
		words = words[n:]
		return chunk, true
	}
	head, ok := next(4)
	if !ok {
		return fail("truncated header")
	}
	subs, changed, idCounter, nIdx := int(head[0]), head[1], head[2], int(head[3])
	if subs < 1 || nIdx != len(r.indexes) {
		return fmt.Errorf("relation %s: snapshot has %d indexes / %d subs, relation has %d indexes",
			r.Name, nIdx, subs, len(r.indexes))
	}
	for _, ix := range r.indexes {
		for which := 0; which < 2; which++ {
			cnt, ok := next(1)
			if !ok {
				return fail("truncated tree count")
			}
			tree := btree.New()
			for i := 0; i < int(cnt[0]); i++ {
				tw, ok := next(r.Arity)
				if !ok {
					return fail("truncated tree tuple")
				}
				tree.Insert(tuple.Tuple(tw).Clone())
			}
			if which == 0 {
				ix.Full = tree
			} else {
				ix.Delta = tree
			}
		}
	}
	cnt, ok := next(1)
	if !ok {
		return fail("truncated accumulator count")
	}
	nAcc := int(cnt[0])
	if nAcc > 0 && r.Agg == nil {
		return fail("accumulator entries in a set-relation snapshot")
	}
	if r.Agg != nil {
		r.acc = make(map[string][]tuple.Value, nAcc)
	}
	for i := 0; i < nAcc; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return fail("truncated accumulator entry")
		}
		k := keyString(e[:r.Indep])
		r.acc[k] = append([]tuple.Value(nil), e[r.Indep:]...)
	}
	cnt, ok = next(1)
	if !ok {
		return fail("truncated id count")
	}
	nIds, kw := int(cnt[0]), r.idKeyWords()
	r.ids = nil
	if nIds > 0 {
		r.ids = make(map[string]uint64, nIds)
	}
	for i := 0; i < nIds; i++ {
		e, ok := next(kw + 1)
		if !ok {
			return fail("truncated id entry")
		}
		r.ids[keyString(e[:kw])] = e[kw]
	}
	cnt, ok = next(1)
	if !ok {
		return fail("truncated leaky count")
	}
	nLeaky := int(cnt[0])
	if nLeaky > 0 && r.leaky == nil {
		return fail("leaky entries in a non-leaky relation snapshot")
	}
	if r.leaky != nil {
		r.leakyBest = make(map[string][]tuple.Value, nLeaky)
	}
	for i := 0; i < nLeaky; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return fail("truncated leaky entry")
		}
		r.leakyBest[keyString(e[:r.leaky.Indep])] = append([]tuple.Value(nil), e[r.leaky.Indep:]...)
	}
	if len(words) != 0 {
		return fail(fmt.Sprintf("%d trailing words", len(words)))
	}
	r.subs = subs
	r.changedLast = changed
	r.idCounter = idCounter
	return nil
}
