package relation

import (
	"fmt"

	"paralagg/internal/btree"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// Relation snapshots. A snapshot captures one rank's complete shard of a
// relation — every index's FULL and Δ trees, the aggregate accumulator, the
// tuple-identity map, the sub-bucket count, and the cached global changed
// count — as a flat word buffer, the same representation the wire uses.
// Restoring the snapshot on a fresh (or poisoned-and-rebuilt) world
// reproduces the rank's state bit for bit, which is what lets the fixpoint
// driver resume mid-run after a rank failure and still reach the identical
// fixpoint.
//
// Snapshots are rank-local: each rank saves and restores its own shard, and
// the fixpoint layer coordinates that all ranks act on the same iteration's
// snapshots.

// SnapshotWords serializes this rank's shard. The layout is
//
//	subs, changedLast, idCounter,
//	nIndexes, { nFull, tuples..., nDelta, tuples... } per index,
//	nAcc, { indep..., dep... } per accumulator entry,
//	nIds, { key..., id } per identity entry,
//	nLeaky, { key..., best... } per leaky partial-best entry.
func (r *Relation) SnapshotWords() []mpi.Word {
	out := make([]mpi.Word, 0, 64)
	out = append(out, mpi.Word(r.subs), r.changedLast, r.idCounter)
	out = append(out, mpi.Word(len(r.indexes)))
	for _, ix := range r.indexes {
		for _, tree := range []*btree.Tree{ix.Full, ix.Delta} {
			out = append(out, mpi.Word(tree.Len()))
			tree.Ascend(func(t tuple.Tuple) bool {
				out = append(out, t...)
				return true
			})
		}
	}
	nAcc := 0
	if r.acc != nil {
		nAcc = r.acc.Len()
	}
	out = append(out, mpi.Word(nAcc))
	if r.acc != nil {
		r.acc.Each(func(indep, dep []tuple.Value) bool {
			out = append(out, indep...)
			out = append(out, dep...)
			return true
		})
	}
	out = append(out, mpi.Word(r.LocalIDCount()))
	if r.ids != nil {
		r.ids.Each(func(key, id []tuple.Value) bool {
			out = append(out, key...)
			out = append(out, id[0])
			return true
		})
	}
	nLeaky := 0
	if r.leakyBest != nil {
		nLeaky = r.leakyBest.Len()
	}
	out = append(out, mpi.Word(nLeaky))
	if r.leakyBest != nil {
		r.leakyBest.Each(func(key, best []tuple.Value) bool {
			out = append(out, key...)
			out = append(out, best...)
			return true
		})
	}
	return out
}

// idKeyWords is the word length of a tuple-identity key: the independent
// columns for aggregated relations, the whole tuple for set relations.
func (r *Relation) idKeyWords() int {
	if r.Agg != nil {
		return r.Indep
	}
	return r.Arity
}

// RestoreWords replaces this rank's shard with a snapshot produced by
// SnapshotWords on a relation of the identical schema and index registry.
// Existing contents are discarded wholesale, so restoring over a partially
// mutated relation (e.g. after reloading base facts) is safe.
func (r *Relation) RestoreWords(words []mpi.Word) error {
	fail := func(what string) error {
		return fmt.Errorf("relation %s: corrupt snapshot: %s (at %d of %d words)", r.Name, what, 0, len(words))
	}
	next := func(n int) ([]mpi.Word, bool) {
		if len(words) < n {
			return nil, false
		}
		chunk := words[:n]
		words = words[n:]
		return chunk, true
	}
	head, ok := next(4)
	if !ok {
		return fail("truncated header")
	}
	subs, changed, idCounter, nIdx := int(head[0]), head[1], head[2], int(head[3])
	if subs < 1 || nIdx != len(r.indexes) {
		return fmt.Errorf("relation %s: snapshot has %d indexes / %d subs, relation has %d indexes",
			r.Name, nIdx, subs, len(r.indexes))
	}
	for _, ix := range r.indexes {
		for which := 0; which < 2; which++ {
			cnt, ok := next(1)
			if !ok {
				return fail("truncated tree count")
			}
			tree := btree.New()
			for i := 0; i < int(cnt[0]); i++ {
				tw, ok := next(r.Arity)
				if !ok {
					return fail("truncated tree tuple")
				}
				tree.Insert(tuple.Tuple(tw).Clone())
			}
			if which == 0 {
				ix.Full = tree
			} else {
				ix.Delta = tree
			}
		}
	}
	cnt, ok := next(1)
	if !ok {
		return fail("truncated accumulator count")
	}
	nAcc := int(cnt[0])
	if nAcc > 0 && r.Agg == nil {
		return fail("accumulator entries in a set-relation snapshot")
	}
	if r.Agg != nil {
		r.acc = wordmap.NewWithCapacity(r.Indep, r.Dep(), nAcc)
	}
	for i := 0; i < nAcc; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return fail("truncated accumulator entry")
		}
		v, _ := r.acc.Upsert(e[:r.Indep])
		copy(v, e[r.Indep:])
	}
	cnt, ok = next(1)
	if !ok {
		return fail("truncated id count")
	}
	nIds, kw := int(cnt[0]), r.idKeyWords()
	r.ids = nil
	if nIds > 0 {
		r.ids = wordmap.NewWithCapacity(kw, 1, nIds)
	}
	for i := 0; i < nIds; i++ {
		e, ok := next(kw + 1)
		if !ok {
			return fail("truncated id entry")
		}
		v, _ := r.ids.Upsert(e[:kw])
		v[0] = e[kw]
	}
	cnt, ok = next(1)
	if !ok {
		return fail("truncated leaky count")
	}
	nLeaky := int(cnt[0])
	if nLeaky > 0 && r.leaky == nil {
		return fail("leaky entries in a non-leaky relation snapshot")
	}
	if r.leaky != nil {
		r.leakyBest = wordmap.NewWithCapacity(r.leaky.Indep, r.Arity-r.leaky.Indep, nLeaky)
	}
	for i := 0; i < nLeaky; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return fail("truncated leaky entry")
		}
		v, _ := r.leakyBest.Upsert(e[:r.leaky.Indep])
		copy(v, e[r.leaky.Indep:])
	}
	if len(words) != 0 {
		return fail(fmt.Sprintf("%d trailing words", len(words)))
	}
	r.subs = subs
	r.changedLast = changed
	r.idCounter = idCounter
	r.rebuildHomeCaches()
	// The restored state belongs to an earlier iteration; the history
	// baseline the integrity digests were tracking no longer applies.
	r.invalidateDigestBaseline()
	return nil
}

// Snapshot is one rank's shard decoded into neutral form: the tuples and
// map entries without any placement assumptions. It is the unit of
// world-size-independent restore — a set of Snapshots taken on an N-rank
// world can be re-hashed into any M-rank world because every tuple carries
// enough information to recompute its home under the new layout.
type Snapshot struct {
	Subs        int
	ChangedLast mpi.Word
	IDCounter   mpi.Word
	// Trees holds, per index, the FULL and Δ tuple lists in stored
	// (permuted) order.
	Trees [][2][]tuple.Tuple
	// Acc lists accumulator entries as canonical tuples (indep ++ dep).
	Acc []tuple.Tuple
	// IDs lists tuple-identity entries: the key columns plus the id.
	IDs []IDEntry
	// Leaky lists leaky partial-best entries as canonical-width tuples.
	Leaky []tuple.Tuple
}

// IDEntry is one tuple-identity record: the canonical key (independent
// columns for aggregated relations, the whole tuple for set relations) and
// the globally unique id allocated for it.
type IDEntry struct {
	Key []tuple.Value
	ID  uint64
}

// DecodeSnapshotWords parses a SnapshotWords payload produced by a relation
// of the identical schema — on any world size — into a neutral Snapshot.
// It shares RestoreWords' layout but binds nothing to this rank.
func (r *Relation) DecodeSnapshotWords(words []mpi.Word) (*Snapshot, error) {
	fail := func(what string) error {
		return fmt.Errorf("relation %s: corrupt snapshot: %s (%d words left)", r.Name, what, len(words))
	}
	next := func(n int) ([]mpi.Word, bool) {
		if len(words) < n {
			return nil, false
		}
		chunk := words[:n]
		words = words[n:]
		return chunk, true
	}
	head, ok := next(4)
	if !ok {
		return nil, fail("truncated header")
	}
	s := &Snapshot{Subs: int(head[0]), ChangedLast: head[1], IDCounter: head[2]}
	nIdx := int(head[3])
	if s.Subs < 1 || nIdx != len(r.indexes) {
		return nil, fmt.Errorf("relation %s: snapshot has %d indexes / %d subs, relation has %d indexes",
			r.Name, nIdx, s.Subs, len(r.indexes))
	}
	s.Trees = make([][2][]tuple.Tuple, nIdx)
	for i := 0; i < nIdx; i++ {
		for which := 0; which < 2; which++ {
			cnt, ok := next(1)
			if !ok {
				return nil, fail("truncated tree count")
			}
			for j := 0; j < int(cnt[0]); j++ {
				tw, ok := next(r.Arity)
				if !ok {
					return nil, fail("truncated tree tuple")
				}
				s.Trees[i][which] = append(s.Trees[i][which], tuple.Tuple(tw).Clone())
			}
		}
	}
	cnt, ok := next(1)
	if !ok {
		return nil, fail("truncated accumulator count")
	}
	nAcc := int(cnt[0])
	if nAcc > 0 && r.Agg == nil {
		return nil, fail("accumulator entries in a set-relation snapshot")
	}
	for i := 0; i < nAcc; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return nil, fail("truncated accumulator entry")
		}
		s.Acc = append(s.Acc, tuple.Tuple(e).Clone())
	}
	cnt, ok = next(1)
	if !ok {
		return nil, fail("truncated id count")
	}
	nIds, kw := int(cnt[0]), r.idKeyWords()
	for i := 0; i < nIds; i++ {
		e, ok := next(kw + 1)
		if !ok {
			return nil, fail("truncated id entry")
		}
		s.IDs = append(s.IDs, IDEntry{Key: append([]tuple.Value(nil), e[:kw]...), ID: e[kw]})
	}
	cnt, ok = next(1)
	if !ok {
		return nil, fail("truncated leaky count")
	}
	nLeaky := int(cnt[0])
	if nLeaky > 0 && r.leaky == nil {
		return nil, fail("leaky entries in a non-leaky relation snapshot")
	}
	for i := 0; i < nLeaky; i++ {
		e, ok := next(r.Arity)
		if !ok {
			return nil, fail("truncated leaky entry")
		}
		s.Leaky = append(s.Leaky, tuple.Tuple(e).Clone())
	}
	if len(words) != 0 {
		return nil, fail(fmt.Sprintf("%d trailing words", len(words)))
	}
	return s, nil
}

// RestoreRemapped replaces this rank's shard with the union of snapshots
// taken on a world of a different size, re-hashed through this world's
// bucket/sub-bucket layout. Every rank passes the complete snapshot set (one
// per original rank, in original rank order); each keeps exactly the tuples
// the new placement assigns to it, so the union across the new world equals
// the union across the old one:
//
//   - index tuples re-bucket by their join-key/independent columns — each
//     tuple has exactly one home, so the per-rank shards stay disjoint;
//   - accumulator entries re-place by independent key and re-merge through
//     the lattice ⊔ (order-independence makes the merge sound even if a key
//     somehow arrives from several old shards);
//   - tuple-identity entries follow their key's canonical home, keeping
//     their original ids; the bump counter advances past every id whose
//     owner bits name this rank, so future allocations stay globally unique;
//   - leaky partial-best entries (baseline engines only) re-place by key
//     hash and ⊔-merge — any placement preserves correctness because they
//     only gate pruning.
//
// The sub-bucket count and cached global changed count carry over unchanged:
// both are collectively agreed scalars, so every snapshot holds the same
// values (a mismatch means a torn checkpoint set and is an error).
func (r *Relation) RestoreRemapped(snaps []*Snapshot) error {
	if len(snaps) == 0 {
		return fmt.Errorf("relation %s: remap restore with no snapshots", r.Name)
	}
	for i, s := range snaps {
		if s.Subs != snaps[0].Subs || s.ChangedLast != snaps[0].ChangedLast {
			return fmt.Errorf("relation %s: snapshot %d disagrees on subs/changed (%d/%d vs %d/%d): torn checkpoint set",
				r.Name, i, s.Subs, s.ChangedLast, snaps[0].Subs, snaps[0].ChangedLast)
		}
		if len(s.Trees) != len(r.indexes) {
			return fmt.Errorf("relation %s: snapshot %d has %d indexes, relation has %d",
				r.Name, i, len(s.Trees), len(r.indexes))
		}
	}
	r.subs = snaps[0].Subs
	r.changedLast = snaps[0].ChangedLast
	r.rebuildHomeCaches()
	r.invalidateDigestBaseline()

	// Index trees: keep every stored tuple whose new (bucket, sub) home is
	// this rank. Placement depends only on join-key/independent columns, so
	// FULL and Δ membership re-partition without loss or duplication.
	for i, ix := range r.indexes {
		full, delta := btree.New(), btree.New()
		for _, s := range snaps {
			for _, t := range s.Trees[i][0] {
				if ix.ownedHere(t) {
					full.Insert(t)
				}
			}
			for _, t := range s.Trees[i][1] {
				if ix.ownedHere(t) {
					delta.Insert(t)
				}
			}
		}
		ix.Full = full
		ix.Delta = delta
	}

	// Accumulator: entries re-place by independent key; ⊔-merge defends
	// against duplicate keys across shards.
	if r.Agg != nil {
		r.acc = wordmap.New(r.Indep, r.Dep())
		for _, s := range snaps {
			for _, t := range s.Acc {
				if r.accPlacement(t[:r.Indep]) != r.comm.Rank() {
					continue
				}
				r.mergeDep(r.Agg, r.acc, t[:r.Indep], t[r.Indep:])
			}
		}
	}

	// Tuple identities: an entry follows its key's canonical home. The
	// bump counter must clear every id whose owner bits name this rank —
	// those ids exist somewhere in the new world regardless of which rank
	// now stores them, and a fresh allocation colliding with one would
	// break global uniqueness.
	r.ids = nil
	var nextCounter uint64
	for _, s := range snaps {
		for _, e := range s.IDs {
			if IDOwner(e.ID) == r.comm.Rank() {
				if c := (e.ID & (1<<idRankShift - 1)) + 1; c > nextCounter {
					nextCounter = c
				}
			}
			if !r.ownsIDKey(e.Key) {
				continue
			}
			if r.ids == nil {
				r.ids = wordmap.New(r.idKeyWords(), 1)
			}
			v, _ := r.ids.Upsert(e.Key)
			v[0] = e.ID
		}
	}
	if r.comm.Rank() < len(snaps) && snaps[r.comm.Rank()].IDCounter > nextCounter {
		nextCounter = snaps[r.comm.Rank()].IDCounter
	}
	r.idCounter = nextCounter

	// Leaky partial bests: rank-local pruning caches with no canonical
	// placement; distribute deterministically by key hash and ⊔-merge.
	if r.leaky != nil {
		r.leakyBest = wordmap.New(r.leaky.Indep, r.Arity-r.leaky.Indep)
		for _, s := range snaps {
			for _, t := range s.Leaky {
				key := t[:r.leaky.Indep]
				if int(tuple.Tuple(key).Hash()%uint64(r.comm.Size())) != r.comm.Rank() {
					continue
				}
				r.mergeDep(r.leaky.Agg, r.leakyBest, key, t[r.leaky.Indep:])
			}
		}
	}
	return nil
}

// ownsIDKey reports whether a tuple-identity key's canonical home is this
// rank under the current layout: the accumulator placement for aggregated
// relations, the canonical index placement for set relations.
func (r *Relation) ownsIDKey(key []tuple.Value) bool {
	if r.Agg != nil {
		return r.accPlacement(key) == r.comm.Rank()
	}
	return r.indexes[0].ownedHere(tuple.Tuple(key))
}
