package relation

import (
	"math/bits"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// treeWork estimates the work units of one B-tree operation on a tree of n
// tuples: the O(log n) descent the paper credits the inner relation with.
func treeWork(n int) int64 { return int64(bits.Len64(uint64(n)) + 1) }

// freshTuples returns the relation's reusable changed-tuple buffer, emptied.
func (r *Relation) freshTuples() *tuple.Buffer {
	if r.freshBuf == nil {
		r.freshBuf = tuple.NewBuffer(r.Arity, 64)
	}
	r.freshBuf.Reset()
	return r.freshBuf
}

// staleTuples returns the relation's reusable stale-entry buffer, emptied.
func (r *Relation) staleTuples() *tuple.Buffer {
	if r.staleBuf == nil {
		r.staleBuf = tuple.NewBuffer(r.Arity, 8)
	}
	r.staleBuf.Reset()
	return r.staleBuf
}

// tupleScratch returns a reusable canonical-order tuple.
func (r *Relation) tupleScratch() tuple.Tuple {
	if r.tupScratch == nil {
		r.tupScratch = make(tuple.Tuple, r.Arity)
	}
	return r.tupScratch
}

// permuteScratch returns a reusable stored-order tuple.
func (r *Relation) permuteScratch() tuple.Tuple {
	if r.permScratch == nil {
		r.permScratch = make(tuple.Tuple, r.Arity)
	}
	return r.permScratch
}

// Materialize is the fused deduplication/aggregation pass (§III-A): it
// routes this rank's newly generated tuples (canonical column order) to
// their canonical homes, merges them — set semantics deduplicate, aggregated
// relations lattice-join into the accumulator — computes the new Δ from the
// tuples whose merged value actually changed, and maintains every index
// replica. It returns the global number of changed tuples (identical on all
// ranks) and must be called collectively, after all rules of the iteration
// have run, for every relation of the stratum (even with empty pending, so
// that Δ versions flip).
//
// When record is true the pass meters PhaseAllToAll (tuple routing),
// PhaseLocalAgg (merging and tree insertion), and PhaseOther (the extra
// intra-bucket gather that balanced aggregation requires, §IV-C).
func (r *Relation) Materialize(iter int, pending *tuple.Buffer, record bool) uint64 {
	rank := r.comm.Rank()
	size := r.comm.Size()

	// Δ versions from the previous iteration have been consumed by now;
	// reuse their node storage for this iteration's Δ.
	for _, ix := range r.indexes {
		ix.Delta.Reset()
	}

	// Phase A: route new tuples to their canonical homes.
	timer := metrics.StartTimer()
	send := r.sendBuf(size)
	n := 0
	if pending != nil {
		n = pending.Len()
	}
	for i := 0; i < n; i++ {
		t := pending.At(i)
		var dest int
		if r.Agg != nil {
			b := int(t.HashPrefix(r.Indep) % uint64(size))
			if r.subs > 1 {
				// Scatter across the bucket's sub-buckets by dependent
				// value to balance merge work; a second intra-bucket hop
				// gathers partials to the owner below.
				s := int(tuple.Tuple(t[r.Indep:]).Hash() % uint64(r.subs))
				dest = r.rankOf(b, s)
			} else {
				dest = r.rankOf(b, 0)
			}
		} else {
			ix := r.indexes[0]
			dest = r.rankOf(ix.bucketOf(t), ix.subOf(t))
		}
		send[dest] = append(send[dest], t...)
	}
	pre := r.comm.Stats().Snapshot()
	recv := r.comm.Alltoallv(send)
	if record {
		d := r.comm.Stats().Snapshot().Sub(pre)
		s := timer.Done(int64(n), int64(d.Bytes()), int64(d.CollectiveCalls+d.P2PMessages))
		r.mc.Record(rank, iter, metrics.PhaseAllToAll, s)
	}

	changedLocal := uint64(0)
	if r.Agg != nil {
		changedLocal = r.materializeAgg(iter, recv, record)
	} else {
		changedLocal = r.materializeSet(iter, recv, record)
	}

	var total uint64
	if r.integrity {
		// Ride the state digests on the convergence agreement: same round,
		// four extra words, and every rank verifies the global invariants
		// before trusting the result.
		total = r.integrityAllreduce(iter, changedLocal, record)
	} else {
		total = r.comm.Allreduce(changedLocal, mpi.OpSum)
	}
	r.changedLast = total
	return total
}

// materializeSet deduplicates arrived tuples against the canonical index,
// inserts survivors into FULL and Δ locally, and routes them to secondary
// indexes.
func (r *Relation) materializeSet(iter int, recv [][]mpi.Word, record bool) uint64 {
	rank := r.comm.Rank()
	timer := metrics.StartTimer()
	canon := r.indexes[0]
	var work int64
	fresh := r.freshTuples()
	for _, words := range recv {
		for off := 0; off+r.Arity <= len(words); off += r.Arity {
			t := tuple.Tuple(words[off : off+r.Arity])
			if r.leaky != nil && !r.leakyImproves(t) {
				work++
				continue
			}
			work += treeWork(canon.Full.Len())
			if canon.Full.Insert(t) {
				canon.Delta.Insert(t)
				r.assignID(t)
				fresh.Append(t)
			}
		}
	}
	if record {
		r.mc.Record(rank, iter, metrics.PhaseLocalAgg, timer.Done(work, 0, 0))
	}
	r.maintainIndexes(iter, fresh, record)
	return uint64(fresh.Len())
}

// materializeAgg merges arrived tuples into the canonical accumulator. With
// sub-bucketing it first pre-aggregates at the scatter target and gathers
// partials to the bucket owner over a second intra-bucket exchange, which is
// the "Other" overhead the paper observes at high rank counts (Fig. 6).
func (r *Relation) materializeAgg(iter int, recv [][]mpi.Word, record bool) uint64 {
	rank := r.comm.Rank()
	size := r.comm.Size()
	timer := metrics.StartTimer()

	// Pre-aggregate what arrived here, keyed by independent columns. The
	// table and its arena persist across iterations; Reset keeps capacity.
	if r.partial == nil {
		r.partial = wordmap.New(r.Indep, r.Dep())
	}
	partial := r.partial
	partial.Reset()
	var work int64
	for _, words := range recv {
		for off := 0; off+r.Arity <= len(words); off += r.Arity {
			t := tuple.Tuple(words[off : off+r.Arity])
			r.mergeDep(r.Agg, partial, t[:r.Indep], t[r.Indep:])
			work++
		}
	}

	if r.subs > 1 {
		// Intra-bucket gather: partials travel to the bucket owner
		// (sub-bucket 0).
		if record {
			r.mc.Record(rank, iter, metrics.PhaseLocalAgg, timer.Done(work, 0, 0))
		}
		gatherTimer := metrics.StartTimer()
		send := r.sendBuf(size)
		for e := 0; e < partial.Len(); e++ {
			indep, dep := partial.At(e)
			dest := r.accPlacement(indep)
			send[dest] = append(send[dest], indep...)
			send[dest] = append(send[dest], dep...)
		}
		sent := partial.Len()
		pre := r.comm.Stats().Snapshot()
		recv2 := r.comm.Alltoallv(send)
		if record {
			d := r.comm.Stats().Snapshot().Sub(pre)
			s := gatherTimer.Done(int64(sent), int64(d.Bytes()), int64(d.CollectiveCalls+d.P2PMessages))
			r.mc.Record(rank, iter, metrics.PhaseOther, s)
		}
		timer = metrics.StartTimer()
		work = 0
		partial.Reset()
		for _, words := range recv2 {
			for off := 0; off+r.Arity <= len(words); off += r.Arity {
				t := tuple.Tuple(words[off : off+r.Arity])
				r.mergeDep(r.Agg, partial, t[:r.Indep], t[r.Indep:])
				work++
			}
		}
	}

	// Merge partials into the accumulator; a key whose value strictly
	// changes (or is new) enters Δ — the ascending-chain condition. The
	// merged value is written into the accumulator arena in place.
	fresh := r.freshTuples()
	scratch := r.tupleScratch()
	for e := 0; e < partial.Len(); e++ {
		indep, dep := partial.At(e)
		v, inserted := r.acc.Upsert(indep)
		if inserted {
			copy(v, dep)
			if r.integrity {
				r.accDig += digestWords(digestWords(digestSeed, indep), v)
			}
		} else {
			merged := r.Agg.Join(v, dep)
			if r.Agg.Compare(merged, v) == lattice.Equal {
				work++
				continue
			}
			// Keep the running digest in step with the arena: retire the old
			// value's contribution before it is overwritten.
			if r.integrity {
				r.accDig -= digestWords(digestWords(digestSeed, indep), v)
			}
			copy(v, merged)
			if r.integrity {
				r.accDig += digestWords(digestWords(digestSeed, indep), v)
			}
		}
		r.assignID(indep)
		copy(scratch, indep)
		copy(scratch[r.Indep:], v)
		fresh.Append(scratch)
		work += 2
	}
	if record {
		r.mc.Record(rank, iter, metrics.PhaseLocalAgg, timer.Done(work, 0, 0))
	}
	r.maintainIndexes(iter, fresh, record)
	return uint64(fresh.Len())
}

// maintainIndexes routes changed tuples (canonical order) to every index
// home that needs them and applies them: set relations insert, aggregated
// relations replace the stale entry for the key. For set relations the
// canonical index was already updated during deduplication and is skipped.
func (r *Relation) maintainIndexes(iter int, fresh *tuple.Buffer, record bool) {
	rank := r.comm.Rank()
	size := r.comm.Size()
	start := 0
	if r.Agg == nil {
		start = 1
	}
	if start >= len(r.indexes) {
		// No replicas to maintain, but Alltoallv is collective and other
		// relations... each relation materializes on all ranks in the same
		// sequence, so skipping uniformly here is safe.
		return
	}
	timer := metrics.StartTimer()
	send := r.sendBuf(size)
	stored := r.permuteScratch()
	for i, nf := 0, fresh.Len(); i < nf; i++ {
		t := fresh.At(i)
		for id := start; id < len(r.indexes); id++ {
			ix := r.indexes[id]
			ix.permuteInto(t, stored)
			dest := r.rankOf(ix.bucketOf(stored), ix.subOf(stored))
			send[dest] = append(send[dest], mpi.Word(id))
			send[dest] = append(send[dest], stored...)
		}
	}
	pre := r.comm.Stats().Snapshot()
	recv := r.comm.Alltoallv(send)
	commDelta := r.comm.Stats().Snapshot().Sub(pre)

	var work int64
	rec := 1 + r.Arity
	stale := r.staleTuples()
	for _, words := range recv {
		for off := 0; off+rec <= len(words); off += rec {
			id := int(words[off])
			arrived := tuple.Tuple(words[off+1 : off+rec])
			ix := r.indexes[id]
			if r.Agg != nil {
				// Purge the stale entry for this key: the independent
				// prefix uniquely identifies it.
				stale.Reset()
				ix.Full.AscendPrefix(arrived[:ix.indepLen], func(old tuple.Tuple) bool {
					stale.Append(old)
					return true
				})
				for j, ns := 0, stale.Len(); j < ns; j++ {
					ix.Full.Delete(stale.At(j))
					work += treeWork(ix.Full.Len())
				}
			}
			work += treeWork(ix.Full.Len())
			ix.Full.Insert(arrived)
			ix.Delta.Insert(arrived)
		}
	}
	if record {
		s := timer.Done(work, int64(commDelta.Bytes()), int64(commDelta.CollectiveCalls+commDelta.P2PMessages))
		r.mc.Record(rank, iter, metrics.PhaseAllToAll, s)
	}
}

// leakyImproves applies the baseline engines' per-rank partial pruning: a
// candidate survives only when its dependent value improves this rank's
// partial best for its independent key. Stale tuples kept earlier are not
// removed — that is the "leak" of §III-A.
func (r *Relation) leakyImproves(t tuple.Tuple) bool {
	return r.mergeDep(r.leaky.Agg, r.leakyBest, t[:r.leaky.Indep], t[r.leaky.Indep:])
}
