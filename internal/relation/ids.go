package relation

import (
	"paralagg/internal/tuple"
	"paralagg/internal/wordmap"
)

// Tuple identity. BPRA's deduplication "materializes" each distinct tuple
// by assigning it a unique id via bump-pointer allocation (§III,
// Deduplication); downstream systems use the ids for provenance and
// interning. This reproduction allocates ids the same way: each rank owns a
// disjoint id space (rank in the high bits, a bump counter in the low
// bits), so allocation is rank-local and ids are globally unique without
// communication. The key → id map is word-keyed (see internal/wordmap), so
// re-assigning an id to an already-known key never allocates.

// idRankShift positions the owning rank in the id's high bits, leaving 2^48
// ids per rank.
const idRankShift = 48

// nextID allocates the next id on this rank.
func (r *Relation) nextID() uint64 {
	id := uint64(r.comm.Rank())<<idRankShift | r.idCounter
	r.idCounter++
	return id
}

// assignID records an id for a newly materialized canonical tuple (set
// relations) or independent key (aggregated relations — the key keeps its
// id when the accumulator value improves, because it is the same logical
// fact).
func (r *Relation) assignID(key []tuple.Value) uint64 {
	if r.ids == nil {
		r.ids = wordmap.New(r.idKeyWords(), 1)
	}
	v, inserted := r.ids.Upsert(key)
	if !inserted {
		return v[0]
	}
	id := r.nextID()
	v[0] = id
	return id
}

// TupleID returns the unique id of a tuple materialized on this rank. For
// aggregated relations pass the independent columns only; for set relations
// pass the whole tuple. The id is only present on the tuple's canonical
// home rank.
func (r *Relation) TupleID(key tuple.Tuple) (uint64, bool) {
	if r.ids == nil {
		return 0, false
	}
	v := r.ids.Get(key)
	if v == nil {
		return 0, false
	}
	return v[0], true
}

// IDOwner extracts the rank that allocated an id.
func IDOwner(id uint64) int { return int(id >> idRankShift) }

// LocalIDCount returns how many ids this rank has allocated.
func (r *Relation) LocalIDCount() int {
	if r.ids == nil {
		return 0
	}
	return r.ids.Len()
}
