package relation

import (
	"fmt"

	"paralagg/internal/mpi"
	"paralagg/internal/tuple"
)

// CheckInvariants verifies the relation's distributed bookkeeping and
// returns the first violation. It is collective (every rank must call it)
// and intended for tests and debugging:
//
//   - every tuple stored in every index maps to this rank under the
//     placement function;
//   - each index's Δ is a subset of its FULL version;
//   - every index holds the same global tuple count as the canonical
//     storage (the accumulator for aggregated relations);
//   - for aggregated relations, each index holds at most one tuple per
//     independent key, and local accumulator entries agree with the
//     canonical index's stored tuples.
func (r *Relation) CheckInvariants() error {
	var localErr error
	fail := func(format string, args ...interface{}) {
		if localErr == nil {
			localErr = fmt.Errorf(format, args...)
		}
	}

	for id, ix := range r.indexes {
		ix.Full.Ascend(func(t tuple.Tuple) bool {
			if !ix.ownedHere(t) {
				fail("relation %s index %d: tuple %v stored on rank %d but placed elsewhere",
					r.Name, id, t, r.comm.Rank())
				return false
			}
			return true
		})
		ix.Delta.Ascend(func(t tuple.Tuple) bool {
			if !ix.Full.Has(t) {
				fail("relation %s index %d: Δ tuple %v missing from FULL", r.Name, id, t)
				return false
			}
			return true
		})
		if r.Agg != nil {
			// One stored tuple per independent key.
			var prev tuple.Tuple
			ix.Full.Ascend(func(t tuple.Tuple) bool {
				if prev != nil && prev.ComparePrefix(t, ix.indepLen) == 0 {
					fail("relation %s index %d: duplicate entries for key of %v", r.Name, id, t)
					return false
				}
				prev = t.Clone()
				return true
			})
		}
	}

	if r.Agg != nil && localErr == nil {
		// Canonical index entries must mirror accumulator values when both
		// live on this rank; otherwise the count check below catches drift.
		canon := r.indexes[0]
		canon.Full.Ascend(func(t tuple.Tuple) bool {
			if v := r.acc.Get(t[:r.Indep]); v != nil {
				for i, d := range v {
					if t[r.Indep+i] != d {
						fail("relation %s: canonical index %v disagrees with accumulator %v", r.Name, t, v)
						return false
					}
				}
			}
			return true
		})
	}

	// Collective checks: all indexes carry the same global count as the
	// canonical storage. Every rank must participate even if it already
	// found a local error.
	canonCount := r.GlobalFullCount()
	for id, ix := range r.indexes {
		global := r.comm.Allreduce(uint64(ix.Full.Len()), mpi.OpSum)
		if r.leaky == nil && global != canonCount && localErr == nil {
			localErr = fmt.Errorf("relation %s index %d: global count %d, canonical %d",
				r.Name, id, global, canonCount)
		}
	}

	// Agree on the outcome so every rank returns an error if any rank saw
	// one.
	bad := uint64(0)
	if localErr != nil {
		bad = 1
	}
	total := r.comm.Allreduce(bad, mpi.OpSum)
	if localErr != nil {
		return localErr
	}
	if total > 0 {
		return fmt.Errorf("relation %s: invariant violation on another rank", r.Name)
	}
	return nil
}
