package bench

import (
	"fmt"
	"io"

	"paralagg"
	"paralagg/internal/baseline"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// table1 reproduces Table I: SSSP and CC runtimes for PARALAGG, RaSQL-sim,
// and SociaLite-sim across thread counts on the four single-node graphs.
// The paper's fastest-at-full-width pattern — PARALAGG scaling while the
// comparators stay flat or regress — is the shape to look for.
func table1(w io.Writer, opts Options) error {
	threads := []int{8, 16, 32}
	if opts.Full {
		threads = []int{32, 64, 128}
	}
	graphs := graph.TableI()
	fmt.Fprintf(w, "Single-node comparison (simulated seconds; paper uses 32/64/128 threads).\n")
	fmt.Fprintf(w, "Thread counts here: %v%s\n\n", threads,
		map[bool]string{true: "", false: " (scaled down; -full uses the paper's)"}[opts.Full])

	for _, query := range []string{"SSSP", "CC"} {
		fmt.Fprintf(w, "--- %s ---\n", query)
		fmt.Fprintf(w, "%-16s %-14s", "graph", "tool")
		for _, th := range threads {
			fmt.Fprintf(w, " %9d", th)
		}
		fmt.Fprintln(w)
		for _, gname := range graphs {
			g, err := graph.Load(gname)
			if err != nil {
				return err
			}
			sources := g.Sources(5, 3)
			rows := [][]string{}
			for _, tool := range []string{"PARALAGG", "RaSQL-sim", "SociaLite-sim"} {
				row := []string{gname, tool}
				for _, th := range threads {
					sec, err := table1Cell(query, tool, g, sources, th)
					if err != nil {
						return err
					}
					row = append(row, mmss(sec))
				}
				rows = append(rows, row)
			}
			for _, row := range rows {
				fmt.Fprintf(w, "%-16s %-14s", row[0], row[1])
				for _, cell := range row[2:] {
					fmt.Fprintf(w, " %9s", cell)
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func table1Cell(query, tool string, g *graph.Graph, sources []uint64, threads int) (float64, error) {
	switch tool {
	case "PARALAGG":
		cfg := paralagg.Config{Ranks: threads, Subs: 8, Plan: paralagg.Dynamic}
		var res *paralagg.Result
		var err error
		if query == "SSSP" {
			res, err = queries.RunSSSP(g, sources, cfg)
		} else {
			res, err = queries.RunCC(g, cfg)
		}
		if err != nil {
			return 0, err
		}
		return res.SimSeconds, nil
	case "RaSQL-sim", "SociaLite-sim":
		sys := baseline.RaSQLSim
		if tool == "SociaLite-sim" {
			sys = baseline.SociaLiteSim
		}
		var res *baseline.Result
		var err error
		if query == "SSSP" {
			res, err = baseline.RunSSSP(sys, g, sources, threads)
		} else {
			res, err = baseline.RunCC(sys, g, threads)
		}
		if err != nil {
			return 0, err
		}
		return res.SimSeconds, nil
	}
	return 0, fmt.Errorf("unknown tool %s", tool)
}

// table2 reproduces Table II: the eight SuiteSparse stand-ins at two rank
// counts, with the paper's columns — Edges, Iters, Paths for SSSP and Comp
// for CC — and near-2× gains from doubling ranks on the larger graphs.
func table2(w io.Writer, opts Options) error {
	r1, r2 := 16, 32
	if opts.Full {
		r1, r2 = 64, 128
	}
	fmt.Fprintf(w, "Medium-scale runs at %d and %d ranks (paper: 256 and 512). SSSP uses 10 sources.\n", r1, r2)
	fmt.Fprintf(w, "Edges/Iters/Paths/Comp are measured; times are simulated seconds.\n\n")
	fmt.Fprintf(w, "%-15s %8s | %5s %8s %9s %9s | %6s %9s %9s\n",
		"graph", "edges", "iters", "paths", fmt.Sprintf("sssp@%d", r1), fmt.Sprintf("sssp@%d", r2),
		"comp", fmt.Sprintf("cc@%d", r1), fmt.Sprintf("cc@%d", r2))
	for _, gname := range graph.TableII() {
		g, err := graph.Load(gname)
		if err != nil {
			return err
		}
		sources := g.Sources(10, 4)
		_, paths := queries.RefSSSPMulti(g, sources)
		comp := queries.RefComponents(g)

		ss1, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: r1, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			return err
		}
		if int(ss1.Counts["spath"]) != paths {
			return fmt.Errorf("%s: sssp produced %d paths, reference %d", gname, ss1.Counts["spath"], paths)
		}
		ss2, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: r2, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			return err
		}
		cc1, err := queries.RunCC(g, paralagg.Config{Ranks: r1, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			return err
		}
		cc2, err := queries.RunCC(g, paralagg.Config{Ranks: r2, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s %8d | %5d %8d %9.3f %9.3f | %6d %9.3f %9.3f\n",
			gname, len(g.Edges), ss1.Iterations, paths, ss1.SimSeconds, ss2.SimSeconds,
			comp, cc1.SimSeconds, cc2.SimSeconds)
	}
	return nil
}

func init() {
	register(Experiment{Name: "table1", Title: "Table I — PARALAGG vs RaSQL-sim vs SociaLite-sim on single-node graphs", Run: table1})
	register(Experiment{Name: "table2", Title: "Table II — SuiteSparse stand-ins, SSSP and CC at two rank counts", Run: table2})
}
