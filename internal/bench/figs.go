package bench

import (
	"fmt"
	"io"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/queries"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// phaseOrder is the column order used by the figure tables.
var phaseOrder = []string{"planning", "intra-bucket", "local-join", "all-to-all", "local-agg", "other"}

func ranksGrid(opts Options, fast, full []int) []int {
	if opts.Full {
		return full
	}
	return fast
}

func sourceCount(opts Options, fast, full int) int {
	if opts.Full {
		return full
	}
	return fast
}

// fig2 reproduces Figure 2: strong-scaling SSSP on the Twitter stand-in,
// Baseline (no balancing, static join order) vs Optimized (8 sub-buckets,
// dynamic join planning), broken down by phase.
func fig2(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	sources := g.Sources(sourceCount(opts, 5, 10), 1)
	grid := ranksGrid(opts, []int{16, 32, 64, 128}, []int{16, 32, 64, 128, 256})

	fmt.Fprintf(w, "SSSP on %s, %d sources. B = baseline (1 sub-bucket, static join order),\n", g.Name, len(sources))
	fmt.Fprintf(w, "O = optimized (8 sub-buckets, dynamic join planning). Simulated seconds.\n\n")
	fmt.Fprintf(w, "%6s %4s %9s", "ranks", "cfg", "total")
	for _, p := range phaseOrder {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)

	var baseTotals, optTotals []float64
	for _, ranks := range grid {
		for _, cfg := range []struct {
			label string
			conf  paralagg.Config
		}{
			{"B", paralagg.Config{Ranks: ranks, Subs: 1, Plan: paralagg.StaticRight}},
			{"O", paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic}},
		} {
			res, err := queries.RunSSSP(g, sources, cfg.conf)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%6d %4s %9.3f", ranks, cfg.label, res.SimSeconds)
			for _, p := range phaseOrder {
				fmt.Fprintf(w, " %12.4f", res.PhaseSeconds[p])
			}
			fmt.Fprintln(w)
			if cfg.label == "B" {
				baseTotals = append(baseTotals, res.SimSeconds)
			} else {
				optTotals = append(optTotals, res.SimSeconds)
			}
		}
	}
	fmt.Fprintf(w, "\nspeedup O vs B per rank count:")
	for i := range baseTotals {
		fmt.Fprintf(w, " %.2fx", baseTotals[i]/optTotals[i])
	}
	fmt.Fprintln(w)
	return nil
}

// fig3 reproduces Figure 3: the cumulative distribution of edge tuples per
// rank with one vs eight sub-buckets, showing sub-bucketing flattening the
// skew-induced imbalance.
func fig3(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	ranks := 64
	if opts.Full {
		ranks = 256
	}
	fmt.Fprintf(w, "Edge-tuple distribution across %d ranks on %s (paper: 4096 ranks).\n", ranks, g.Name)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %8s\n",
		"sub-buckets", "min", "p25", "p50", "p75", "max", "max/min")
	for _, subs := range []int{1, 8} {
		counts, err := edgeDistribution(g, ranks, subs)
		if err != nil {
			return err
		}
		cdf := metrics.CDF(counts)
		q := func(f float64) int { return cdf[int(f*float64(len(cdf)-1))] }
		fmt.Fprintf(w, "%-12d %10d %10d %10d %10d %10d %8.1f\n",
			subs, cdf[0], q(0.25), q(0.5), q(0.75), cdf[len(cdf)-1],
			metrics.ImbalanceRatio(counts))
	}
	return nil
}

// edgeDistribution loads the graph's edge relation on a world and returns
// the per-rank tuple counts.
func edgeDistribution(g *graph.Graph, ranks, subs int) ([]int, error) {
	world := mpi.NewWorld(ranks)
	mc := metrics.NewCollector(ranks)
	var counts []int
	err := world.Run(func(c *mpi.Comm) error {
		edge, err := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1},
			c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		edge.LoadShare(len(g.Edges), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{g.Edges[i].U, g.Edges[i].V, g.Edges[i].W})
		})
		per := edge.PerRankCounts()
		if c.Rank() == 0 {
			counts = per
		}
		return nil
	})
	return counts, err
}

// fig4 reproduces Figure 4: CC local-join critical time with one vs eight
// sub-buckets across rank counts; imbalance halts the 1-sub-bucket
// configuration's scaling while the balanced one keeps improving.
func fig4(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	grid := ranksGrid(opts, []int{16, 32, 64, 128, 256}, []int{16, 32, 64, 128, 256})
	fmt.Fprintf(w, "CC on %s: local-join simulated seconds per rank count.\n\n", g.Name)
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s\n", "ranks", "join(1 sub)", "join(8 subs)", "total(1 sub)", "total(8 subs)")
	for _, ranks := range grid {
		row := make(map[int][2]float64)
		for _, subs := range []int{1, 8} {
			res, err := queries.RunCC(g, paralagg.Config{Ranks: ranks, Subs: subs, Plan: paralagg.Dynamic})
			if err != nil {
				return err
			}
			row[subs] = [2]float64{res.PhaseSeconds["local-join"], res.SimSeconds}
		}
		fmt.Fprintf(w, "%6d %14.4f %14.4f %14.4f %14.4f\n",
			ranks, row[1][0], row[8][0], row[1][1], row[8][1])
	}
	return nil
}

// fig5 reproduces Figure 5: SSSP strong scaling on the Twitter stand-in
// with simultaneous sources (paper: 30 sources, 256→16,384 ranks).
func fig5(w io.Writer, opts Options) error {
	return scalingFigure(w, opts, "SSSP", func(g *graph.Graph, sources []uint64, cfg paralagg.Config) (*paralagg.Result, error) {
		return queries.RunSSSP(g, sources, cfg)
	})
}

// fig6 reproduces Figure 6: CC strong scaling; at the top of the range the
// "other" phase (sub-bucket gather traffic) eats the gains.
func fig6(w io.Writer, opts Options) error {
	return scalingFigure(w, opts, "CC", func(g *graph.Graph, _ []uint64, cfg paralagg.Config) (*paralagg.Result, error) {
		return queries.RunCC(g, cfg)
	})
}

func scalingFigure(w io.Writer, opts Options, label string,
	run func(*graph.Graph, []uint64, paralagg.Config) (*paralagg.Result, error)) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	sources := g.Sources(sourceCount(opts, 10, 30), 2)
	grid := ranksGrid(opts, []int{8, 16, 32, 64, 128}, []int{8, 16, 32, 64, 128, 256})
	fmt.Fprintf(w, "%s on %s (optimized: 8 sub-buckets, dynamic planning).\n\n", label, g.Name)
	fmt.Fprintf(w, "%6s %10s %9s %14s %12s %12s\n",
		"ranks", "total", "vs-first", "local-join", "comm", "other")
	var first float64
	for i, ranks := range grid {
		res, err := run(g, sources, paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			return err
		}
		if i == 0 {
			first = res.SimSeconds
		}
		comm := res.PhaseSeconds["intra-bucket"] + res.PhaseSeconds["all-to-all"]
		fmt.Fprintf(w, "%6d %10.4f %8.1f%% %14.4f %12.4f %12.4f\n",
			ranks, res.SimSeconds, 100*(1-res.SimSeconds/first),
			res.PhaseSeconds["local-join"], comm, res.PhaseSeconds["other"])
	}
	fmt.Fprintf(w, "\n(vs-first = runtime reduction relative to the smallest rank count;\n")
	fmt.Fprintf(w, " the paper reports 96%% from 256 to 16,384 ranks)\n")
	return nil
}

// fig7 reproduces Figure 7: the per-iteration phase profile of SSSP — most
// time in the first iterations, a long tail dominated by local join.
func fig7(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	ranks := 32
	if opts.Full {
		ranks = 128
	}
	sources := g.Sources(sourceCount(opts, 10, 30), 2)
	res, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SSSP on %s at %d ranks (paper: 1,024), per-iteration simulated ms.\n\n", g.Name, ranks)
	fmt.Fprintf(w, "%5s %10s", "iter", "total")
	for _, p := range phaseOrder {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)
	for i, row := range res.IterPhaseSeconds {
		total := 0.0
		for _, v := range row {
			total += v
		}
		fmt.Fprintf(w, "%5d %10.3f", i, total*1e3)
		for _, p := range phaseOrder {
			fmt.Fprintf(w, " %12.3f", row[p]*1e3)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func init() {
	register(Experiment{Name: "fig2", Title: "Fig. 2 — SSSP baseline vs optimized, phase breakdown (Theta/Twitter)", Run: fig2})
	register(Experiment{Name: "fig3", Title: "Fig. 3 — tuple distribution CDF, 1 vs 8 sub-buckets", Run: fig3})
	register(Experiment{Name: "fig4", Title: "Fig. 4 — CC local-join time, 1 vs 8 sub-buckets", Run: fig4})
	register(Experiment{Name: "fig5", Title: "Fig. 5 — SSSP strong scaling (Twitter)", Run: fig5})
	register(Experiment{Name: "fig6", Title: "Fig. 6 — CC strong scaling (Twitter)", Run: fig6})
	register(Experiment{Name: "fig7", Title: "Fig. 7 — SSSP per-iteration profile", Run: fig7})
}
