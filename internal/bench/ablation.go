package bench

import (
	"fmt"
	"io"

	"paralagg"
	"paralagg/internal/baseline"
	"paralagg/internal/graph"
	"paralagg/internal/metrics"
	"paralagg/internal/queries"
)

// ablationJoin isolates the dynamic join-planning claim (§IV-D, Fig. 2's
// "2×"): the same SSSP workload under every planning mode. Static-right
// serializes the edge relation every iteration — the mistake the paper
// describes as "reducing the join to a billion linear comparisons".
func ablationJoin(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	ranks := 32
	if opts.Full {
		ranks = 128
	}
	sources := g.Sources(sourceCount(opts, 5, 10), 1)
	fmt.Fprintf(w, "SSSP on %s at %d ranks under each join-layout policy.\n\n", g.Name, ranks)
	fmt.Fprintf(w, "%-14s %10s %14s %14s %12s\n",
		"plan", "total", "intra-bucket", "local-join", "comm MB")
	modes := []struct {
		name string
		plan paralagg.PlanPolicy
	}{
		{"dynamic", paralagg.Dynamic},
		{"static-left", paralagg.StaticLeft},
		{"static-right", paralagg.StaticRight},
		{"anti-dynamic", paralagg.AntiDynamic},
	}
	var dyn, worst float64
	for _, m := range modes {
		res, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: ranks, Subs: 8, Plan: m.plan})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %10.4f %14.4f %14.4f %12.2f\n",
			m.name, res.SimSeconds, res.PhaseSeconds["intra-bucket"],
			res.PhaseSeconds["local-join"], float64(res.CommBytes)/1e6)
		switch m.name {
		case "dynamic":
			dyn = res.SimSeconds
		case "static-right":
			worst = res.SimSeconds
		}
	}
	fmt.Fprintf(w, "\ndynamic vs static-right speedup: %.2fx (paper reports ~2x end-to-end)\n", worst/dyn)
	return nil
}

// ablationAgg isolates the communication-avoiding aggregation claim
// (§III-A/§IV-A): PARALAGG's fused local aggregation vs the leaky
// architecture on identical workloads — same answers, very different tuple
// and byte counts.
func ablationAgg(w io.Writer, opts Options) error {
	g, err := graph.Load("flickr-sim")
	if err != nil {
		return err
	}
	ranks := 16
	if opts.Full {
		ranks = 64
	}
	sources := g.Sources(sourceCount(opts, 5, 10), 1)

	pl, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: ranks, Subs: 1, Plan: paralagg.Dynamic})
	if err != nil {
		return err
	}
	_, wantPairs := queries.RefSSSPMulti(g, sources)
	if int(pl.Counts["spath"]) != wantPairs {
		return fmt.Errorf("paralagg produced %d pairs, reference %d", pl.Counts["spath"], wantPairs)
	}
	bl, err := baseline.RunSSSP(baseline.RaSQLSim, g, sources, ranks)
	if err != nil {
		return err
	}
	if err := bl.Validate(uint64(wantPairs)); err != nil {
		return err
	}
	fmt.Fprintf(w, "SSSP on %s at %d ranks, %d sources; both engines produce the exact %d answers.\n\n",
		g.Name, ranks, len(sources), wantPairs)
	fmt.Fprintf(w, "%-22s %14s %12s %10s %8s\n", "engine", "materialized", "comm MB", "time", "iters")
	fmt.Fprintf(w, "%-22s %14d %12.2f %10.4f %8d\n", "PARALAGG (fused agg)",
		pl.Counts["spath"], float64(pl.CommBytes)/1e6, pl.SimSeconds, pl.Iterations)
	fmt.Fprintf(w, "%-22s %14d %12.2f %10.4f %8d\n", "leaky (RaSQL-style)",
		bl.Materialized, float64(bl.CommBytes)/1e6, bl.SimSeconds, bl.Iterations)
	fmt.Fprintf(w, "\nleak factor %.2fx tuples, %.2fx bytes\n",
		float64(bl.Materialized)/float64(pl.Counts["spath"]),
		float64(bl.CommBytes)/float64(pl.CommBytes))
	return nil
}

func init() {
	register(Experiment{Name: "ablation-join", Title: "Ablation — dynamic join planning (§IV-D)", Run: ablationJoin})
	register(Experiment{Name: "ablation-agg", Title: "Ablation — fused local aggregation vs leaky partials (§III-A)", Run: ablationAgg})
}

// ablationCost re-runs the Fig. 2 comparison under perturbed cost models to
// show the reproduction's conclusions are not an artifact of one parameter
// choice: the optimized configuration must keep winning when compute,
// bandwidth, or latency costs shift by 4x either way.
func ablationCost(w io.Writer, opts Options) error {
	g, err := graph.Load("twitter-sim")
	if err != nil {
		return err
	}
	ranks := 64
	if opts.Full {
		ranks = 128
	}
	sources := g.Sources(sourceCount(opts, 5, 10), 1)
	models := []struct {
		name string
		m    metrics.CostModel
	}{
		{"default (40ns/0.25ns/2us)", metrics.DefaultCostModel},
		{"compute-heavy (4x work)", metrics.CostModel{WorkUnitNS: 160, ByteNS: 0.25, MsgNS: 2000}},
		{"bandwidth-bound (4x bytes)", metrics.CostModel{WorkUnitNS: 40, ByteNS: 1, MsgNS: 2000}},
		{"latency-bound (4x msgs)", metrics.CostModel{WorkUnitNS: 40, ByteNS: 0.25, MsgNS: 8000}},
		{"cheap-compute (work/4)", metrics.CostModel{WorkUnitNS: 10, ByteNS: 0.25, MsgNS: 2000}},
	}
	fmt.Fprintf(w, "SSSP on %s at %d ranks: baseline vs optimized under perturbed cost models.\n\n", g.Name, ranks)
	fmt.Fprintf(w, "%-28s %12s %12s %9s\n", "cost model", "baseline", "optimized", "speedup")
	for _, mod := range models {
		base, err := queries.RunSSSP(g, sources,
			paralagg.Config{Ranks: ranks, Subs: 1, Plan: paralagg.StaticRight, Cost: mod.m})
		if err != nil {
			return err
		}
		opt, err := queries.RunSSSP(g, sources,
			paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic, Cost: mod.m})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %12.4f %12.4f %8.2fx\n",
			mod.name, base.SimSeconds, opt.SimSeconds, base.SimSeconds/opt.SimSeconds)
	}
	return nil
}

func init() {
	register(Experiment{Name: "ablation-cost", Title: "Ablation — cost-model sensitivity of the Fig. 2 comparison", Run: ablationCost})
}
