// Package bench regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrate: Table I (single-node
// comparison against RaSQL-sim and SociaLite-sim), Table II (medium-scale
// SuiteSparse stand-ins), Figure 2 (baseline-vs-optimized phase breakdown),
// Figure 3 (tuple-distribution CDF), Figure 4 (local-join scaling with
// sub-buckets), Figures 5–6 (strong scaling of SSSP and CC), Figure 7
// (per-iteration profile), plus the two ablations DESIGN.md calls out.
//
// Times are simulated parallel seconds from the shared cost model
// (max-over-ranks critical path; see internal/metrics). Absolute values are
// not comparable to the paper's wall-clock numbers — the shapes are what
// reproduce: who wins, by what factor, and where scaling saturates.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Options sizes an experiment run.
type Options struct {
	// Full widens rank grids and uses more sources; the default grid keeps
	// every experiment in the minutes range on one host.
	Full bool
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(w io.Writer, opts Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment { return registry }

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists experiment names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opts Options) error {
	for _, e := range registry {
		if err := RunOne(w, e, opts); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment with its banner.
func RunOne(w io.Writer, e Experiment, opts Options) error {
	fmt.Fprintf(w, "==== %s: %s ====\n", e.Name, e.Title)
	if err := e.Run(w, opts); err != nil {
		return fmt.Errorf("%s: %v", e.Name, err)
	}
	fmt.Fprintln(w)
	return nil
}

// mmss renders simulated seconds in the paper's M:SS format, with enough
// sub-second detail for fast runs.
func mmss(sec float64) string {
	switch {
	case sec < 1:
		return fmt.Sprintf("%5.0fms", sec*1e3)
	case sec < 60:
		return fmt.Sprintf("%6.2fs", sec)
	}
	m := int(sec) / 60
	s := sec - float64(m*60)
	return fmt.Sprintf("%3d:%04.1f", m, s)
}
