package bench

import (
	"bytes"
	"strings"
	"testing"

	"paralagg/internal/graph"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"ablation-join", "ablation-agg", "ablation-cost"}
	for _, name := range want {
		if _, ok := Find(name); !ok {
			t.Errorf("experiment %s not registered", name)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if len(Names()) != len(want) {
		t.Errorf("Names() returned %d", len(Names()))
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find matched an unknown name")
	}
}

func TestMMSS(t *testing.T) {
	if got := mmss(12.34); !strings.Contains(got, "12.34s") {
		t.Errorf("mmss(12.34) = %q", got)
	}
	if got := mmss(125); !strings.Contains(got, "2:05.0") {
		t.Errorf("mmss(125) = %q", got)
	}
	if got := mmss(0.004); !strings.Contains(got, "4ms") {
		t.Errorf("mmss(0.004) = %q", got)
	}
}

// TestFig3Runs executes the cheapest full experiment end to end and checks
// the balancing claim holds in its output.
func TestFig3Runs(t *testing.T) {
	e, _ := Find("fig3")
	var buf bytes.Buffer
	if err := RunOne(&buf, e, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sub-buckets") {
		t.Fatalf("unexpected output: %s", out)
	}
}

// TestEdgeDistributionBalances asserts Fig. 3's claim numerically on a
// smaller world so the test stays fast.
func TestEdgeDistributionBalances(t *testing.T) {
	gload := mustGraph(t, "twitter-sim")
	c1, err := edgeDistribution(gload, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := edgeDistribution(gload, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	r1 := ratio(c1)
	r8 := ratio(c8)
	if r8 >= r1 {
		t.Fatalf("sub-bucketing did not reduce imbalance: %.1f -> %.1f", r1, r8)
	}
}

func ratio(counts []int) float64 {
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min < 1 {
		min = 1
	}
	return float64(max) / float64(min)
}

// TestAblationAggRuns executes the fused-vs-leaky ablation (it validates
// both engines against the reference internally).
func TestAblationAggRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in short mode")
	}
	e, _ := Find("ablation-agg")
	var buf bytes.Buffer
	if err := RunOne(&buf, e, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leak factor") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
}

func mustGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := graph.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
