// Package supervisor implements bounded-restart supervision for the
// simulated MPI runtime: run a world, and when it dies of a rank failure,
// tear it down, pick the next world size (same size, or degraded to the
// survivors), back off with jitter, and re-enter the body with resume set so
// it can restore the latest agreed checkpoint. Non-fault errors (a bad
// program, a failed assertion) are terminal immediately — restarting cannot
// fix them.
//
// The package is deliberately runtime-agnostic: the body is any function
// that runs one world attempt. The paralagg surface (paralagg.Supervise)
// binds it to Exec.
package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"paralagg/internal/mpi"
)

// Config tunes a supervised run.
type Config struct {
	// MaxRestarts bounds how many times a failed world is rebuilt before the
	// supervisor gives up (default 3). The first run is not a restart.
	MaxRestarts int
	// Degrade restarts with the surviving rank count (previous size minus
	// the ranks lost in the incident) instead of the same size. The restore
	// remaps the checkpoint through the smaller layout.
	Degrade bool
	// MinRanks floors degradation (default 1). A restart that would drop
	// below it is clamped.
	MinRanks int
	// Backoff is the first restart's delay (default 10ms); each further
	// restart doubles it, capped at BackoffMax (default 2s), with ±50%
	// deterministic jitter derived from Seed.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Seed drives the jitter (deterministic, so chaos differentials replay).
	Seed int64
	// NextRanks, when set, overrides the restart world size entirely: it
	// receives the restart ordinal (1 = first restart), the failed world's
	// size, and the lost ranks, and returns the new size. Degrade is ignored
	// when set. Chaos tests use it to pin N/2 restarts deterministically.
	NextRanks func(restart, prev int, lost []int) int
	// Notify, when set, receives one call per lifecycle decision: action is
	// "restart" (same-size rebuild), "rollback" (divergence-triggered
	// rebuild), "degrade" (rebuild at a smaller world size), or "gave-up"
	// (budget exhausted, terminal); restart is the restart ordinal (1 = the
	// first recovery), nextRanks the size the next attempt runs at, lost the
	// ranks the incident killed. The paralagg surface binds it to the
	// Observer stream and /metrics gauges.
	Notify func(action string, restart, nextRanks int, lost []int)
	// Logf receives one structured line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)
	// Sleep replaces time.Sleep in tests (nil = real sleep).
	Sleep func(time.Duration)
}

func (c Config) maxRestarts() int {
	if c.MaxRestarts < 0 {
		return 0
	}
	if c.MaxRestarts == 0 {
		return 3
	}
	return c.MaxRestarts
}

func (c Config) minRanks() int {
	if c.MinRanks < 1 {
		return 1
	}
	return c.MinRanks
}

func (c Config) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 10 * time.Millisecond
	}
	return c.Backoff
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 2 * time.Second
	}
	return c.BackoffMax
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Attempt records one world's lifetime under supervision.
type Attempt struct {
	Ranks   int           // world size this attempt ran with
	Err     error         // how it ended (nil = success)
	Lost    []int         // ranks the incident killed (empty on success)
	Backoff time.Duration // delay slept before the NEXT attempt
}

// Report summarizes a supervised run for metrics and logs.
type Report struct {
	// Attempts lists every world in order; the last one either succeeded or
	// carries the terminal error.
	Attempts []Attempt
	// RecoveryAttempts counts the restarts performed (len(Attempts)-1).
	RecoveryAttempts int
	// RanksLost counts the total rank deaths across all incidents.
	RanksLost int
	// FinalRanks is the world size of the last attempt.
	FinalRanks int
	// DivergenceRollbacks counts incidents whose cause was detected state
	// divergence (silent corruption caught by the integrity fingerprints)
	// rather than a crash or timeout; each triggered a rollback to the last
	// verified checkpoint.
	DivergenceRollbacks int
}

// ErrGaveUp wraps the last failure when MaxRestarts is exhausted.
var ErrGaveUp = errors.New("supervisor: restart budget exhausted")

// Run executes body under supervision. body runs one complete world attempt:
// attempt is the ordinal (0 = initial run), ranks the world size to build,
// and resume whether a previous attempt's checkpoint should be restored
// (always true after the first attempt; the body decides whether a
// checkpoint actually exists). Run returns the report alongside the terminal
// error, if any; the report is never nil.
func Run(ranks int, cfg Config, body func(attempt, ranks int, resume bool) error) (*Report, error) {
	rep := &Report{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := cfg.backoff()
	for attempt := 0; ; attempt++ {
		cfg.logf("supervisor: attempt=%d ranks=%d resume=%v", attempt, ranks, attempt > 0)
		err := body(attempt, ranks, attempt > 0)
		at := Attempt{Ranks: ranks, Err: err}
		rep.FinalRanks = ranks
		if err == nil {
			rep.Attempts = append(rep.Attempts, at)
			cfg.logf("supervisor: attempt=%d succeeded after %d recoveries", attempt, rep.RecoveryAttempts)
			return rep, nil
		}
		failures := mpi.RankFailures(err)
		if len(failures) == 0 {
			// Not a rank failure: restarting replays the same deterministic
			// error. Terminal.
			rep.Attempts = append(rep.Attempts, at)
			cfg.logf("supervisor: attempt=%d terminal (non-fault error): %v", attempt, err)
			return rep, err
		}
		for _, f := range failures {
			at.Lost = append(at.Lost, f.Rank)
		}
		rep.RanksLost += len(at.Lost)
		if div, ok := mpi.AsStateDivergence(err); ok {
			// Silent corruption, not a dead rank: the world was torn down
			// because replicas disagreed. Roll back to the last verified
			// checkpoint and replay.
			rep.DivergenceRollbacks++
			cfg.logf("supervisor: attempt=%d state diverged (rel=%s iter=%d rank=%d) — rolling back to last verified checkpoint",
				attempt, div.Rel, div.Iter, div.Rank)
		}
		cfg.logf("supervisor: attempt=%d lost ranks %v: %v", attempt, at.Lost, err)
		if attempt >= cfg.maxRestarts() {
			rep.Attempts = append(rep.Attempts, at)
			if cfg.Notify != nil {
				cfg.Notify("gave-up", attempt, ranks, at.Lost)
			}
			return rep, fmt.Errorf("%w after %d restarts: %w", ErrGaveUp, attempt, err)
		}

		next := ranks
		switch {
		case cfg.NextRanks != nil:
			next = cfg.NextRanks(attempt+1, ranks, at.Lost)
		case cfg.Degrade:
			next = ranks - len(at.Lost)
		}
		if next < cfg.minRanks() {
			next = cfg.minRanks()
		}
		if cfg.Notify != nil {
			action := "restart"
			if _, diverged := mpi.AsStateDivergence(err); diverged {
				action = "rollback"
			} else if next < ranks {
				action = "degrade"
			}
			cfg.Notify(action, attempt+1, next, at.Lost)
		}

		// Exponential backoff with ±50% deterministic jitter.
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		at.Backoff = delay
		rep.Attempts = append(rep.Attempts, at)
		rep.RecoveryAttempts++
		cfg.logf("supervisor: restart=%d next_ranks=%d backoff=%v", attempt+1, next, delay)
		sleep(delay)
		if backoff < cfg.backoffMax() {
			backoff *= 2
			if backoff > cfg.backoffMax() {
				backoff = cfg.backoffMax()
			}
		}
		ranks = next
	}
}
