package supervisor

import (
	"errors"
	"fmt"
)

// Gang supervision: hot rank replacement. Where Run tears down a whole
// world per incident, RunGang keeps the survivors alive — one member per
// rank, and when a member dies it alone is respawned at the next
// membership epoch while the rest of the gang parks at the transport's
// recovery barrier. The member abstraction covers both real processes (the
// launcher's per-rank children) and in-process goroutine gangs (the chaos
// harness), so the replacement policy is tested without forking.

// Member is one rank's running body: Wait blocks until it exits. Members
// that can be torn down early (a child process) additionally implement
// Killer so a failed gang does not linger for the full replace timeout.
type Member interface {
	Wait() error
}

// Killer is an optional Member extension for forcible teardown.
type Killer interface {
	Kill()
}

// GangConfig tunes RunGang.
type GangConfig struct {
	// Ranks is the gang size.
	Ranks int
	// Spawn launches rank's member for the given membership epoch (0 = the
	// initial gang, >0 = a hot replacement). Required.
	Spawn func(rank, epoch int) (Member, error)
	// MaxReplacements bounds hot replacements across the gang's lifetime
	// (default 3). A death beyond the budget fails the gang so the caller's
	// full-restart path takes over.
	MaxReplacements int
	// Notify, when set, receives one call per lifecycle decision: action is
	// "replace" (member died, replacement spawning) or "replace-failed"
	// (spawn error or budget exhausted — the gang is being torn down).
	Notify func(action string, rank, epoch int, cause error)
	// Logf receives one line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)
}

func (c GangConfig) maxReplacements() int {
	if c.MaxReplacements < 0 {
		return 0
	}
	if c.MaxReplacements == 0 {
		return 3
	}
	return c.MaxReplacements
}

func (c GangConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c GangConfig) notify(action string, rank, epoch int, cause error) {
	if c.Notify != nil {
		c.Notify(action, rank, epoch, cause)
	}
}

// GangReport summarizes a gang's lifetime.
type GangReport struct {
	// Replacements counts hot replacements performed.
	Replacements int
	// Replaced lists the ranks replaced, in incident order.
	Replaced []int
}

// ErrReplaceFailed marks a gang failure where hot replacement was
// attempted but could not complete (spawn error, or budget exhausted).
// Callers match it to fall back to the whole-world restart path.
var ErrReplaceFailed = errors.New("supervisor: hot replacement failed")

// memberExit is one member's termination.
type memberExit struct {
	rank int
	err  error
}

// RunGang runs one member per rank and supervises them with hot
// replacement: a member that exits with an error is respawned at the next
// membership epoch (its peers keep running, parked at the transport's
// recovery barrier) up to MaxReplacements times. The gang succeeds when
// every rank's current member has exited cleanly. A spawn failure or an
// exhausted budget turns terminal: remaining members are killed (when they
// support it) and drained, and the error wraps ErrReplaceFailed so the
// caller can fall back to a full restart. The report is never nil.
func RunGang(cfg GangConfig) (*GangReport, error) {
	rep := &GangReport{}
	if cfg.Ranks < 1 {
		return rep, fmt.Errorf("supervisor: gang size %d < 1", cfg.Ranks)
	}
	if cfg.Spawn == nil {
		return rep, errors.New("supervisor: GangConfig.Spawn is required")
	}

	exits := make(chan memberExit, cfg.Ranks)
	members := make([]Member, cfg.Ranks)
	epochs := make([]int, cfg.Ranks)
	watch := func(rank int, m Member) {
		go func() { exits <- memberExit{rank: rank, err: m.Wait()} }()
	}
	for r := 0; r < cfg.Ranks; r++ {
		m, err := cfg.Spawn(r, 0)
		if err != nil {
			// The gang never fully formed; kill what exists and drain.
			cfg.notify("replace-failed", r, 0, err)
			return rep, drainGang(cfg, members, exits, r,
				fmt.Errorf("%w: spawning rank %d: %w", ErrReplaceFailed, r, err))
		}
		members[r] = m
		watch(r, m)
	}

	running := cfg.Ranks
	for running > 0 {
		ex := <-exits
		running--
		if ex.err == nil {
			cfg.logf("gang: rank %d (epoch %d) exited cleanly", ex.rank, epochs[ex.rank])
			continue
		}
		if rep.Replacements >= cfg.maxReplacements() {
			cfg.notify("replace-failed", ex.rank, epochs[ex.rank], ex.err)
			cfg.logf("gang: rank %d died with replacement budget exhausted (%d used): %v",
				ex.rank, rep.Replacements, ex.err)
			return rep, drainGang(cfg, members, exits, running,
				fmt.Errorf("%w: rank %d died after %d replacements: %w",
					ErrReplaceFailed, ex.rank, rep.Replacements, ex.err))
		}
		epoch := epochs[ex.rank] + 1
		cfg.notify("replace", ex.rank, epoch, ex.err)
		cfg.logf("gang: rank %d died (%v) — spawning replacement at epoch %d", ex.rank, ex.err, epoch)
		m, err := cfg.Spawn(ex.rank, epoch)
		if err != nil {
			cfg.notify("replace-failed", ex.rank, epoch, err)
			cfg.logf("gang: replacement spawn for rank %d failed: %v", ex.rank, err)
			return rep, drainGang(cfg, members, exits, running,
				fmt.Errorf("%w: spawning rank %d replacement: %w", ErrReplaceFailed, ex.rank, err))
		}
		epochs[ex.rank] = epoch
		members[ex.rank] = m
		rep.Replacements++
		rep.Replaced = append(rep.Replaced, ex.rank)
		running++
		watch(ex.rank, m)
	}
	return rep, nil
}

// drainGang tears the gang down after a terminal failure: kill every
// spawned member that supports it, wait for the outstanding exits, and
// join their errors behind the terminal one. Members without Kill exit on
// their own once the transport's replace timeout declares the dead rank
// failed, so the drain is bounded either way.
func drainGang(cfg GangConfig, members []Member, exits chan memberExit, running int, terminal error) error {
	for _, m := range members {
		if k, ok := m.(Killer); ok {
			k.Kill()
		}
	}
	for i := 0; i < running; i++ {
		ex := <-exits
		if ex.err != nil {
			cfg.logf("gang: rank %d exited during teardown: %v", ex.rank, ex.err)
		}
	}
	return terminal
}
