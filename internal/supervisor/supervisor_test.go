package supervisor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"paralagg/internal/mpi"
)

func rankFail(rank int) error {
	return &mpi.ErrRankFailed{Rank: rank, Op: "alltoallv", Iter: 3, Cause: mpi.ErrInjectedCrash}
}

// noSleep keeps tests instant while recording the backoffs chosen.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestRunSucceedsFirstTry(t *testing.T) {
	rep, err := Run(4, Config{}, func(attempt, ranks int, resume bool) error {
		if attempt != 0 || ranks != 4 || resume {
			t.Errorf("unexpected call: attempt=%d ranks=%d resume=%v", attempt, ranks, resume)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryAttempts != 0 || rep.RanksLost != 0 || rep.FinalRanks != 4 || len(rep.Attempts) != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestRunRestartsSameSizeAndResumes(t *testing.T) {
	var delays []time.Duration
	calls := 0
	rep, err := Run(4, Config{Sleep: noSleep(&delays)}, func(attempt, ranks int, resume bool) error {
		calls++
		if attempt == 0 {
			if resume {
				t.Error("first attempt must not resume")
			}
			return fmt.Errorf("world died: %w", rankFail(3))
		}
		if ranks != 4 || !resume {
			t.Errorf("restart: ranks=%d resume=%v, want 4/true", ranks, resume)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || rep.RecoveryAttempts != 1 || rep.RanksLost != 1 {
		t.Errorf("calls=%d report=%+v", calls, rep)
	}
	if got := rep.Attempts[0].Lost; len(got) != 1 || got[0] != 3 {
		t.Errorf("lost ranks: %v", got)
	}
	if len(delays) != 1 || delays[0] <= 0 {
		t.Errorf("backoff delays: %v", delays)
	}
}

func TestRunDegradesToSurvivors(t *testing.T) {
	var sizes []int
	var delays []time.Duration
	rep, err := Run(4, Config{Degrade: true, Sleep: noSleep(&delays)}, func(attempt, ranks int, resume bool) error {
		sizes = append(sizes, ranks)
		if attempt == 0 {
			return rankFail(3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[1] != 3 {
		t.Errorf("world sizes: %v, want degrade 4 -> 3", sizes)
	}
	if rep.FinalRanks != 3 {
		t.Errorf("FinalRanks = %d", rep.FinalRanks)
	}
}

func TestRunNextRanksOverridesDegrade(t *testing.T) {
	var sizes []int
	var delays []time.Duration
	cfg := Config{
		Degrade: true, // must be ignored
		Sleep:   noSleep(&delays),
		NextRanks: func(restart, prev int, lost []int) int {
			if restart != 1 || prev != 4 || len(lost) != 1 {
				t.Errorf("NextRanks(%d, %d, %v)", restart, prev, lost)
			}
			return prev / 2
		},
	}
	_, err := Run(4, cfg, func(attempt, ranks int, resume bool) error {
		sizes = append(sizes, ranks)
		if attempt == 0 {
			return rankFail(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[1] != 2 {
		t.Errorf("world sizes: %v, want pinned 4 -> 2", sizes)
	}
}

func TestRunMinRanksFloorsDegradation(t *testing.T) {
	var sizes []int
	var delays []time.Duration
	_, err := Run(2, Config{Degrade: true, MinRanks: 2, MaxRestarts: 2, Sleep: noSleep(&delays)},
		func(attempt, ranks int, resume bool) error {
			sizes = append(sizes, ranks)
			if attempt == 0 {
				return rankFail(1)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sizes[1] != 2 {
		t.Errorf("world sizes: %v, want floor at 2", sizes)
	}
}

func TestRunGivesUpAfterMaxRestarts(t *testing.T) {
	var delays []time.Duration
	calls := 0
	rep, err := Run(4, Config{MaxRestarts: 2, Sleep: noSleep(&delays)}, func(attempt, ranks int, resume bool) error {
		calls++
		return rankFail(attempt % 4)
	})
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	if calls != 3 { // initial + 2 restarts
		t.Errorf("calls = %d, want 3", calls)
	}
	if rep.RecoveryAttempts != 2 || rep.RanksLost != 3 {
		t.Errorf("report: %+v", rep)
	}
	// The terminal error must still expose the structured failure.
	if _, ok := mpi.AsRankFailure(err); !ok {
		t.Error("terminal error lost the rank-failure detail")
	}
}

func TestRunNonFaultErrorIsTerminal(t *testing.T) {
	boom := errors.New("assertion failed")
	calls := 0
	rep, err := Run(4, Config{}, func(attempt, ranks int, resume bool) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 || rep.RecoveryAttempts != 0 {
		t.Errorf("non-fault error retried: calls=%d report=%+v", calls, rep)
	}
}

func TestRunBackoffGrowsAndIsCapped(t *testing.T) {
	var delays []time.Duration
	base := 8 * time.Millisecond
	_, err := Run(4, Config{
		MaxRestarts: 4, Backoff: base, BackoffMax: 16 * time.Millisecond,
		Seed: 7, Sleep: noSleep(&delays),
	}, func(attempt, ranks int, resume bool) error {
		if attempt < 4 {
			return rankFail(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 4 {
		t.Fatalf("delays: %v", delays)
	}
	for i, d := range delays {
		// Jitter keeps each delay within [backoff/2, backoff*1.5); the cap
		// bounds every delay by 1.5 * BackoffMax.
		if d < base/2 || d >= 24*time.Millisecond {
			t.Errorf("delay[%d] = %v out of jitter bounds", i, d)
		}
	}
	// Deterministic: same seed, same delays.
	var again []time.Duration
	Run(4, Config{
		MaxRestarts: 4, Backoff: base, BackoffMax: 16 * time.Millisecond,
		Seed: 7, Sleep: noSleep(&again),
	}, func(attempt, ranks int, resume bool) error {
		if attempt < 4 {
			return rankFail(0)
		}
		return nil
	})
	for i := range delays {
		if delays[i] != again[i] {
			t.Errorf("jitter not deterministic: %v vs %v", delays, again)
		}
	}
}

func TestRankFailuresCollectsAndDedupes(t *testing.T) {
	a := rankFail(2)
	b := &mpi.ErrRankFailed{Rank: 0, Op: "barrier", Iter: 5, Cause: mpi.ErrWatchdogTimeout}
	dup := rankFail(2)
	joined := errors.Join(fmt.Errorf("wrap: %w", a), b, dup)
	got := mpi.RankFailures(joined)
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 2 {
		t.Errorf("RankFailures = %v", got)
	}
	if mpi.RankFailures(errors.New("plain")) != nil {
		t.Error("plain error yielded failures")
	}
	if mpi.RankFailures(nil) != nil {
		t.Error("nil error yielded failures")
	}
}

// TestRunBackoffJitterVariesAcrossSeeds: each seed's schedule is
// deterministic (pinned above), and distinct seeds must desynchronize —
// gangs restarted under different seeds do not thunder in lockstep.
func TestRunBackoffJitterVariesAcrossSeeds(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var delays []time.Duration
		_, err := Run(4, Config{
			MaxRestarts: 4, Backoff: 8 * time.Millisecond, BackoffMax: 64 * time.Millisecond,
			Seed: seed, Sleep: noSleep(&delays),
		}, func(attempt, ranks int, resume bool) error {
			if attempt < 4 {
				return rankFail(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return delays
	}
	a, b, c := schedule(1), schedule(2), schedule(3)
	same := func(x, y []time.Duration) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) && same(b, c) {
		t.Errorf("three seeds produced identical backoff schedules: %v", a)
	}
	if again := schedule(2); !same(b, again) {
		t.Errorf("seed 2 not reproducible: %v vs %v", b, again)
	}
}
