package supervisor

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// chanMember is a Member whose exit the test scripts through a channel.
type chanMember struct {
	done   chan error
	killed atomic.Bool
}

func newChanMember() *chanMember { return &chanMember{done: make(chan error, 1)} }

func (m *chanMember) Wait() error { return <-m.done }
func (m *chanMember) Kill() {
	m.killed.Store(true)
	select {
	case m.done <- errors.New("killed"):
	default:
	}
}

func TestRunGangCleanExit(t *testing.T) {
	rep, err := RunGang(GangConfig{Ranks: 3, Spawn: func(rank, epoch int) (Member, error) {
		m := newChanMember()
		m.done <- nil
		return m, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 0 || len(rep.Replaced) != 0 {
		t.Errorf("clean gang reported replacements: %+v", rep)
	}
}

func TestRunGangReplacesDeadMemberAtNextEpoch(t *testing.T) {
	var sawEpoch atomic.Int64
	sawEpoch.Store(-1)
	rep, err := RunGang(GangConfig{Ranks: 3, Spawn: func(rank, epoch int) (Member, error) {
		m := newChanMember()
		if rank == 1 && epoch == 0 {
			m.done <- errors.New("rank 1 crashed")
		} else {
			if rank == 1 {
				sawEpoch.Store(int64(epoch))
			}
			m.done <- nil
		}
		return m, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 1 || len(rep.Replaced) != 1 || rep.Replaced[0] != 1 {
		t.Errorf("report: %+v, want exactly rank 1 replaced once", rep)
	}
	if sawEpoch.Load() != 1 {
		t.Errorf("replacement spawned at epoch %d, want 1", sawEpoch.Load())
	}
}

// TestRunGangSpawnFailureKillsSurvivorsAndFallsBack: a replacement spawn
// error is terminal for the gang — survivors are killed, the error wraps
// ErrReplaceFailed — and the caller's full-restart supervisor can take over.
func TestRunGangSpawnFailureKillsSurvivorsAndFallsBack(t *testing.T) {
	survivors := make([]*chanMember, 0, 2)
	var notified []string
	_, err := RunGang(GangConfig{
		Ranks: 3,
		Spawn: func(rank, epoch int) (Member, error) {
			if epoch > 0 {
				return nil, errors.New("scheduler rejected the respawn")
			}
			m := newChanMember()
			if rank == 2 {
				m.done <- errors.New("rank 2 crashed")
			} else {
				survivors = append(survivors, m)
			}
			return m, nil
		},
		Notify: func(action string, rank, epoch int, cause error) {
			notified = append(notified, fmt.Sprintf("%s:%d@%d", action, rank, epoch))
		},
	})
	if !errors.Is(err, ErrReplaceFailed) {
		t.Fatalf("err = %v, want ErrReplaceFailed", err)
	}
	for i, m := range survivors {
		if !m.killed.Load() {
			t.Errorf("survivor %d not killed during teardown", i)
		}
	}
	wantSeq := []string{"replace:2@1", "replace-failed:2@1"}
	if len(notified) != 2 || notified[0] != wantSeq[0] || notified[1] != wantSeq[1] {
		t.Errorf("notifications %v, want %v", notified, wantSeq)
	}

	// The composition the launcher relies on: ErrReplaceFailed matched, the
	// whole-world restart path runs and succeeds.
	attempts := 0
	if errors.Is(err, ErrReplaceFailed) {
		_, rerr := Run(3, Config{Sleep: func(d time.Duration) {}}, func(attempt, ranks int, resume bool) error {
			attempts++
			return nil
		})
		if rerr != nil {
			t.Fatalf("full-restart fallback failed: %v", rerr)
		}
	}
	if attempts != 1 {
		t.Errorf("fallback ran %d attempts, want 1", attempts)
	}
}

func TestRunGangBudgetExhaustionIsTerminal(t *testing.T) {
	var spawned atomic.Int64
	_, err := RunGang(GangConfig{
		Ranks:           2,
		MaxReplacements: 2,
		Spawn: func(rank, epoch int) (Member, error) {
			spawned.Add(1)
			m := newChanMember()
			if rank == 0 {
				m.done <- errors.New("rank 0 keeps dying")
			}
			return m, nil
		},
	})
	if !errors.Is(err, ErrReplaceFailed) {
		t.Fatalf("err = %v, want ErrReplaceFailed", err)
	}
	// Initial gang (2) + two replacements within budget; the third death is
	// terminal without another spawn.
	if spawned.Load() != 4 {
		t.Errorf("%d spawns, want 4 (2 initial + 2 replacements)", spawned.Load())
	}
}
