package mpi

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseScheduleKind(t *testing.T) {
	cases := []struct {
		in   string
		want ScheduleKind
	}{
		{"", ScheduleFlat},
		{"flat", ScheduleFlat},
		{"tree", ScheduleTree},
		{"ring", ScheduleRing},
		{"auto", ScheduleAuto},
	}
	for _, c := range cases {
		got, err := ParseScheduleKind(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseScheduleKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if got.String() == "" {
			t.Fatalf("kind %v has no name", got)
		}
	}
	if _, err := ParseScheduleKind("star"); err == nil {
		t.Fatal("ParseScheduleKind should reject unknown spellings")
	}
}

// checkTree verifies ft is a valid tree over size ranks rooted at root:
// every non-root has a parent, parent/children agree, and all ranks are
// reachable from the root (no cycles, no orphans).
func checkTree(t *testing.T, ft *fullTree, size, root int) {
	t.Helper()
	if ft.parent[root] != -1 {
		t.Fatalf("root %d has parent %d", root, ft.parent[root])
	}
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		p := ft.parent[r]
		if p < 0 || p >= size {
			t.Fatalf("rank %d has no parent (got %d)", r, p)
		}
		found := false
		for _, ch := range ft.children[p] {
			if ch == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d not listed among parent %d's children %v", r, p, ft.children[p])
		}
	}
	seen := make([]bool, size)
	var walk func(r int)
	var visited int
	walk = func(r int) {
		if seen[r] {
			t.Fatalf("cycle: rank %d visited twice", r)
		}
		seen[r] = true
		visited++
		for _, ch := range ft.children[r] {
			walk(ch)
		}
	}
	walk(root)
	if visited != size {
		t.Fatalf("tree reaches %d of %d ranks", visited, size)
	}
}

func TestBinomialPositions(t *testing.T) {
	for n := 1; n <= 17; n++ {
		parent, children := binomialPositions(n)
		ft := &fullTree{parent: parent, children: children}
		checkTree(t, ft, n, 0)
		for p := 1; p < n; p++ {
			if want := p &^ (p & -p); parent[p] != want {
				t.Fatalf("n=%d: parent[%d] = %d, want %d", n, p, parent[p], want)
			}
		}
	}
	// Binomial height is ceil(log2 n): 8 ranks -> 3 hops, not 7.
	parent, children := binomialPositions(8)
	ft := &fullTree{parent: parent, children: children}
	if h := ft.height(); h != 3 {
		t.Fatalf("binomial height over 8 = %d, want 3", h)
	}
}

func TestTopoTreeUniformIsBinomial(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8, 16} {
		for root := 0; root < size; root++ {
			ft := topoTree(NewUniformTopology(size), size, root)
			checkTree(t, ft, size, root)
		}
		// Rooted at 0 the uniform tree is the plain binomial shape.
		ft := topoTree(nil, size, 0)
		parent, _ := binomialPositions(size)
		for p := 1; p < size; p++ {
			if ft.parent[p] != parent[p] {
				t.Fatalf("size %d: uniform topo parent[%d] = %d, binomial says %d",
					size, p, ft.parent[p], parent[p])
			}
		}
	}
}

func TestTopoTreeOneCrossEdgePerHost(t *testing.T) {
	// 8 ranks on 3 hosts: a={0,1,2}, b={3,4,5}, c={6,7}.
	topo := TopologyFromHosts([]string{"a", "a", "a", "b", "b", "b", "c", "c"})
	for root := 0; root < 8; root++ {
		ft := topoTree(topo, 8, root)
		checkTree(t, ft, 8, root)
		cross := 0
		for r := 0; r < 8; r++ {
			if p := ft.parent[r]; p >= 0 && !topo.SameHost(r, p) {
				cross++
			}
		}
		// Exactly one tree edge crosses into each foreign host.
		if cross != topo.NumHosts()-1 {
			t.Fatalf("root %d: %d cross-host edges, want %d", root, cross, topo.NumHosts()-1)
		}
	}
}

func TestSimilarityTreePrefersHeavyPairs(t *testing.T) {
	// Traffic says 0<->3 and 1<->2 talk heavily; the MST must keep those
	// pairs adjacent.
	w := make([][]int64, 4)
	for i := range w {
		w[i] = make([]int64, 4)
	}
	w[0][3], w[3][0] = 1000, 1000
	w[1][2], w[2][1] = 900, 900
	w[0][1] = 10 // weak link to connect the components
	ft := similarityTree(w, 4, 0)
	checkTree(t, ft, 4, 0)
	if ft.parent[3] != 0 {
		t.Fatalf("heavy pair 0<->3 not a tree edge: parent[3] = %d", ft.parent[3])
	}
	if ft.parent[2] != 1 && ft.parent[1] != 2 {
		t.Fatalf("heavy pair 1<->2 not a tree edge: parents %v", ft.parent)
	}
	// Deterministic: same matrix, same tree.
	ft2 := similarityTree(w, 4, 0)
	for r := range ft.parent {
		if ft.parent[r] != ft2.parent[r] {
			t.Fatal("similarityTree is not deterministic")
		}
	}
}

func TestRingOrderGroupsHosts(t *testing.T) {
	topo := TopologyFromHosts([]string{"a", "b", "a", "b", "a", "b"})
	order := ringOrder(topo, 6)
	want := []int{0, 2, 4, 1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ringOrder = %v, want %v", order, want)
		}
	}
	// Uniform topology keeps rank order.
	order = ringOrder(nil, 4)
	for i := range order {
		if order[i] != i {
			t.Fatalf("uniform ringOrder = %v, want identity", order)
		}
	}
}

func TestParseTopology(t *testing.T) {
	const good = `
# two hosts, slow link
host 0 nodeA
host 1 nodeA
host 2 nodeB
cost nodeA nodeB 8
`
	topo, err := ParseTopology(strings.NewReader(good), 3)
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	if topo.NumHosts() != 2 || !topo.SameHost(0, 1) || topo.SameHost(0, 2) {
		t.Fatalf("grouping wrong: hosts=%d", topo.NumHosts())
	}
	if c := topo.LinkCost(0, 2); c != 8 {
		t.Fatalf("LinkCost(0,2) = %v, want 8", c)
	}
	if c := topo.LinkCost(0, 1); c != 1 {
		t.Fatalf("LinkCost(0,1) = %v, want 1", c)
	}
	if c := topo.LinkCost(1, 1); c != 0 {
		t.Fatalf("LinkCost(1,1) = %v, want 0", c)
	}
	if err := topo.Validate(3); err != nil {
		t.Fatalf("Validate(3): %v", err)
	}
	if err := topo.Validate(4); err == nil {
		t.Fatal("Validate(4) should fail for a 3-rank topology")
	}

	bad := []string{
		"host 0 a",                        // rank 1 unplaced
		"host 0 a\nhost 0 b\nhost 1 c",    // rank 0 placed twice
		"host 0 a\nhost 2 b",              // rank 2 out of range
		"host 0 a\nhost 1 b\ncost a x 2",  // unknown host in cost
		"host 0 a\nhost 1 b\ncost a b -1", // non-positive cost
		"host 0 a\nhost 1 b\nroute a b",   // unknown directive
		"host 0 a\nhost 1 b\ncost a b",    // short cost line
	}
	for i, src := range bad {
		if _, err := ParseTopology(strings.NewReader(src), 2); err == nil {
			t.Fatalf("bad topology %d accepted: %q", i, src)
		}
	}
}

func TestTopologyFromAddrs(t *testing.T) {
	topo := TopologyFromAddrs([]string{"10.0.0.1:9000", "10.0.0.1:9001", "10.0.0.2:9000"})
	if topo.NumHosts() != 2 || !topo.SameHost(0, 1) || topo.SameHost(0, 2) {
		t.Fatalf("address-derived grouping wrong: %d hosts", topo.NumHosts())
	}
	// Malformed entries land in their own group.
	topo = TopologyFromAddrs([]string{"bogus", "bogus"})
	if topo.SameHost(0, 1) {
		t.Fatal("malformed addresses must not be grouped together")
	}
}

func TestScheduleDepthAndVote(t *testing.T) {
	w := NewWorld(8)
	w.SetSchedule(ScheduleAuto)
	err := w.Run(func(c *Comm) error {
		if !c.ScheduleAuto() || c.Schedule() != ScheduleTree {
			return fmt.Errorf("auto should start on the tree, got %v", c.Schedule())
		}
		if d := c.ScheduleDepth(); d != 3 {
			return fmt.Errorf("tree depth over 8 = %d, want 3", d)
		}
		if c.ScheduleVote() != 0 {
			return fmt.Errorf("no large payload seen, vote should be 0")
		}
		// A large AllreduceVec flips this rank's vote to the ring.
		vec := make([]Word, ringMinWords)
		vec[0] = Word(c.Rank())
		out := make([]Word, len(vec))
		c.AllreduceVec(vec, out, OpSum)
		if out[0] != 28 {
			return fmt.Errorf("allreducevec sum = %d, want 28", out[0])
		}
		if c.ScheduleVote() != 1 {
			return fmt.Errorf("large payload seen, vote should be 1")
		}
		// Majority ring votes switch the schedule; minority keeps the tree.
		c.ApplyScheduleVote(8)
		if c.Schedule() != ScheduleRing {
			return fmt.Errorf("unanimous ring vote ignored")
		}
		if d := c.ScheduleDepth(); d != 7 {
			return fmt.Errorf("ring depth over 8 = %d, want 7", d)
		}
		c.ApplyScheduleVote(2)
		if c.Schedule() != ScheduleTree {
			return fmt.Errorf("minority ring vote should fall back to tree")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fixed (non-auto) schedules ignore the vote.
	w2 := NewWorld(4)
	w2.SetSchedule(ScheduleRing)
	err = w2.Run(func(c *Comm) error {
		c.ApplyScheduleVote(0)
		if c.Schedule() != ScheduleRing {
			return fmt.Errorf("fixed ring schedule changed by vote")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityScheduleFromTraffic(t *testing.T) {
	// A world fed a traffic matrix must build its trees from it.
	w := NewWorld(4)
	w.SetSchedule(ScheduleTree)
	traffic := make([][]int64, 4)
	for i := range traffic {
		traffic[i] = make([]int64, 4)
	}
	traffic[0][3], traffic[3][0] = 500, 500
	traffic[0][1], traffic[1][2] = 400, 300
	w.SetTraffic(traffic)
	err := w.Run(func(c *Comm) error {
		tr := c.treeFor(0)
		if c.Rank() == 3 && tr.parent != 0 {
			return fmt.Errorf("similarity tree ignored the heavy 0<->3 pair: parent=%d", tr.parent)
		}
		// And the collectives still work over it.
		if got := c.Allreduce(Word(c.Rank()+1), OpSum); got != 10 {
			return fmt.Errorf("allreduce over similarity tree = %d, want 10", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
