package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// joinedErrors unwraps the error World.Run returns into its per-rank parts.
func joinedErrors(t *testing.T, err error) []error {
	t.Helper()
	if err == nil {
		return nil
	}
	u, ok := err.(interface{ Unwrap() []error })
	if !ok {
		return []error{err}
	}
	return u.Unwrap()
}

func TestPanicBecomesRankFailure(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		c.SetEpoch(3)
		if c.Rank() == 1 {
			panic("kaboom")
		}
		c.Barrier() // peers block here; the abort must wake them
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want an ErrRankFailed inside", err)
	}
	if rf.Rank != 1 || rf.Iter != 3 {
		t.Errorf("failure = %+v, want rank 1 at iter 3", rf)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err %q does not carry the panic value", err)
	}
	// Every rank must report: the failed one with the failure itself, the
	// three survivors with wrapped aborts.
	if parts := joinedErrors(t, err); len(parts) != 4 {
		t.Errorf("got %d rank errors, want 4: %v", len(parts), err)
	}
}

func TestRunJoinsAllRankErrors(t *testing.T) {
	w := NewWorld(4)
	e1, e3 := errors.New("one"), errors.New("three")
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return e1
		case 3:
			return e3
		}
		return nil
	})
	if !errors.Is(err, e1) || !errors.Is(err, e3) {
		t.Fatalf("err = %v, want both rank errors joined", err)
	}
}

func TestInjectedCrashPropagatesToAllRanks(t *testing.T) {
	w := NewWorld(4)
	w.SetFaultPlan(&FaultPlan{
		Seed:    1,
		Crashes: []Crash{{Rank: 2, Iter: AnyIter, Op: "allreduce", After: 1}},
	})
	rounds := 0
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 5; i++ {
			c.SetEpoch(i)
			c.Allreduce(1, OpSum)
			if c.Rank() == 0 {
				rounds = i + 1
			}
		}
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
	if rf.Rank != 2 || rf.Op != "allreduce" || rf.Iter != 1 || !errors.Is(rf, ErrInjectedCrash) {
		t.Errorf("failure = %+v, want injected allreduce crash of rank 2 at iter 1", rf)
	}
	if parts := joinedErrors(t, err); len(parts) != 4 {
		t.Errorf("got %d rank errors, want 4", len(parts))
	}
	if rounds != 1 {
		t.Errorf("rank 0 completed %d rounds before the abort, want 1", rounds)
	}
}

func TestWatchdogConvertsStuckCollective(t *testing.T) {
	w := NewWorld(4)
	w.SetFaultPlan(&FaultPlan{
		Seed:  1,
		Hangs: []Hang{{Rank: 1, Iter: 2, Op: "alltoallv"}},
	})
	w.SetWatchdog(100 * time.Millisecond)
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 4; i++ {
			c.SetEpoch(i)
			c.Alltoallv(make([][]Word, c.Size()))
		}
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want ErrRankFailed (not a deadlock!)", err)
	}
	if rf.Rank != 1 || rf.Op != "alltoallv" || rf.Iter != 2 || !errors.Is(rf, ErrWatchdogTimeout) {
		t.Errorf("failure = %+v, want watchdog death of rank 1 in alltoallv at iter 2", rf)
	}
	if parts := joinedErrors(t, err); len(parts) != 4 {
		t.Errorf("got %d rank errors, want 4 (every rank must observe the failure)", len(parts))
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("run took %v, the watchdog should fire near its 100ms timeout", waited)
	}
}

func TestWatchdogCatchesEarlyExit(t *testing.T) {
	// A rank that returns early (never reaching a collective its peers are
	// blocked in) used to deadlock the world; the watchdog must declare it.
	w := NewWorld(3)
	w.SetWatchdog(100 * time.Millisecond)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return nil // skips the barrier
		}
		c.Barrier()
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
	if rf.Rank != 2 || rf.Op != "barrier" {
		t.Errorf("failure = %+v, want rank 2 absent from barrier", rf)
	}
}

func TestDropIsDeterministicAndPartial(t *testing.T) {
	const msgs = 100
	run := func() int {
		w := NewWorld(2)
		w.SetFaultPlan(&FaultPlan{Seed: 7, Drops: []Drop{{From: 0, To: 1, Frac: 0.5}}})
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					c.Send(1, i, []Word{Word(i)})
				}
			}
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats().PerRank()[0].P2PMessages
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("delivered %d then %d messages under the same seed, want identical", a, b)
	}
	if a == 0 || a == msgs {
		t.Errorf("delivered %d of %d messages with Frac 0.5, want a strict subset", a, msgs)
	}
}

func TestDelayStillDelivers(t *testing.T) {
	w := NewWorld(2)
	w.SetFaultPlan(&FaultPlan{Seed: 3, Delays: []Delay{{From: 0, To: 1, Frac: 1, Max: 2 * time.Millisecond}}})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []Word{42})
			return nil
		}
		words, _ := c.Recv(0, 0)
		if words[0] != 42 {
			t.Errorf("got %v", words)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionFailsCRCWithStructuredError(t *testing.T) {
	// A corrupted payload must never be accepted: the receiver's CRC32C
	// check converts the bit flip into an ErrRankFailed naming the sender,
	// instead of the silently wrong answer the pre-CRC runtime produced.
	payload := []Word{1, 2, 3, 4, 5}
	w := NewWorld(2)
	w.SetFaultPlan(&FaultPlan{Seed: 9, Corrupts: []Corrupt{{Rank: 0, Iter: AnyIter, After: 0}}})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, payload)
			return nil
		}
		words, _ := c.Recv(0, 0)
		t.Errorf("corrupted message was accepted: %v", words)
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
	if rf.Rank != 0 || rf.Op != "recv" || !errors.Is(rf, ErrCorruptMessage) {
		t.Errorf("failure = %+v, want CRC failure attributed to sending rank 0", rf)
	}
}

func TestRecvTimeoutOnDroppedMessage(t *testing.T) {
	// With every message from 0 to 1 dropped, rank 1's Recv must error out
	// after the watchdog timeout instead of wedging the rank forever.
	w := NewWorld(2)
	w.SetFaultPlan(&FaultPlan{Seed: 5, Drops: []Drop{{From: 0, To: 1, Frac: 1}}})
	w.SetWatchdog(50 * time.Millisecond)
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []Word{42})
			return nil
		}
		c.Recv(0, 0)
		t.Error("Recv returned despite the dropped message")
		return nil
	})
	rf, ok := AsRankFailure(err)
	if !ok {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
	if rf.Rank != 1 || rf.Op != "recv" || !errors.Is(rf, ErrRecvTimeout) {
		t.Errorf("failure = %+v, want recv timeout on rank 1", rf)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("run took %v, the recv deadline should fire near 50ms", waited)
	}
}

func TestPeerArgumentValidation(t *testing.T) {
	cases := []struct {
		name string
		body func(c *Comm) error
	}{
		{"send-high", func(c *Comm) error { c.Send(c.Size(), 0, nil); return nil }},
		{"send-negative", func(c *Comm) error { c.Send(-2, 0, nil); return nil }},
		{"recv-high", func(c *Comm) error { c.Recv(c.Size()+3, 0); return nil }},
		{"bcast-root", func(c *Comm) error { c.Bcast(c.Size(), nil); return nil }},
		{"gather-root", func(c *Comm) error { c.Gather(-1, 0); return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(2)
			err := w.Run(func(c *Comm) error {
				if c.Rank() == 0 {
					return tc.body(c)
				}
				return nil
			})
			if err == nil {
				t.Fatal("bad peer argument did not error")
			}
			if !strings.Contains(err.Error(), "out of range") {
				t.Errorf("err %q does not describe the range violation", err)
			}
			if !strings.Contains(err.Error(), "rank 0") {
				t.Errorf("err %q does not name the calling rank", err)
			}
		})
	}
}

func TestWorldPoisonedAfterFailure(t *testing.T) {
	w := NewWorld(2)
	_ = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("die")
		}
		c.Barrier()
		return nil
	})
	err := w.Run(func(c *Comm) error { return nil })
	if err == nil {
		t.Fatal("poisoned world accepted another Run")
	}
}
