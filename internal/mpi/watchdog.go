package mpi

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Adaptive watchdog: instead of one fixed deadline for "a rank is absent
// from a collective" / "a receive stays unmatched", the world tracks an
// exponentially weighted moving average of the observed iteration time and
// derives the deadline from it, clamped to a configurable [Floor, Ceil]
// band. A workload whose iterations take milliseconds converts a genuinely
// stuck collective in a few hundred milliseconds; the same binary pointed
// at a slow network or a straggling rank stretches its patience
// automatically instead of false-positive-killing the laggard. Chasing
// Similarity (PAPERS.md) motivates exactly this: non-uniform link costs
// make any single static timeout either trigger-happy or uselessly slow.

// AdaptiveWatchdog configures the EWMA-of-iteration-time deadline.
type AdaptiveWatchdog struct {
	// Floor is the lower clamp of the derived deadline (default 100ms). Set
	// it above any injected or expected per-message delay: one slow link
	// must not be declared a death.
	Floor time.Duration
	// Ceil is the upper clamp and the deadline in force until the first
	// iteration-time sample exists. Required (> 0) — it bounds how long a
	// genuinely stuck collective can wedge the world.
	Ceil time.Duration
	// Mult scales the EWMA into a deadline: deadline = clamp(Mult × EWMA).
	// Default 8 — an iteration would have to run 8× slower than the recent
	// average before the watchdog suspects it.
	Mult float64
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.25).
	Alpha float64
}

func (cfg AdaptiveWatchdog) withDefaults() AdaptiveWatchdog {
	if cfg.Floor <= 0 {
		cfg.Floor = 100 * time.Millisecond
	}
	if cfg.Floor > cfg.Ceil {
		cfg.Floor = cfg.Ceil
	}
	if cfg.Mult <= 0 {
		cfg.Mult = 8
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.25
	}
	return cfg
}

// adaptiveWatchdog is the world's live deadline state. The deadline is read
// lock-free on every receive and watchdog tick; it is written only by the
// timekeeper rank's SetEpoch transitions.
type adaptiveWatchdog struct {
	cfg      AdaptiveWatchdog
	deadline atomic.Int64 // current deadline, nanoseconds
	ewma     atomic.Int64 // smoothed iteration time, nanoseconds (0 = no sample)
	lastMark atomic.Int64 // monotonic-ish mark of the previous epoch transition
}

// observe folds one iteration-time sample (the gap between two epoch
// transitions) into the EWMA and republishes the clamped deadline.
func (ad *adaptiveWatchdog) observe(now int64) {
	last := ad.lastMark.Swap(now)
	if last == 0 {
		return
	}
	d := now - last
	if d <= 0 {
		return
	}
	e := ad.ewma.Load()
	if e == 0 {
		e = d
	} else {
		e = int64(ad.cfg.Alpha*float64(d) + (1-ad.cfg.Alpha)*float64(e))
	}
	ad.ewma.Store(e)
	dl := time.Duration(ad.cfg.Mult * float64(e))
	if dl < ad.cfg.Floor {
		dl = ad.cfg.Floor
	}
	if dl > ad.cfg.Ceil {
		dl = ad.cfg.Ceil
	}
	ad.deadline.Store(int64(dl))
}

// SetAdaptiveWatchdog enables stuck-collective and silent-sender detection
// with an EWMA-derived deadline instead of SetWatchdog's fixed one. The
// deadline starts at cfg.Ceil (pessimistic until the first sample) and
// tracks clamp(Mult × EWMA(iteration time), Floor, Ceil) as the fixpoint
// driver publishes epoch transitions. It must be called before Run and
// overrides any SetWatchdog value.
func (w *World) SetAdaptiveWatchdog(cfg AdaptiveWatchdog) {
	if cfg.Ceil <= 0 {
		panic(fmt.Sprintf("mpi: adaptive watchdog needs a positive ceiling, got %v", cfg.Ceil))
	}
	ad := &adaptiveWatchdog{cfg: cfg.withDefaults()}
	ad.deadline.Store(int64(ad.cfg.Ceil))
	w.wd = ad
}

// curWatchdog returns the deadline currently in force: the adaptive one
// when SetAdaptiveWatchdog was called, the fixed SetWatchdog value (0 = no
// watchdog) otherwise. Both the collective watchdog and the p2p receive
// timeout read it, so one knob governs every "is that rank dead?" decision.
func (w *World) curWatchdog() time.Duration {
	if w.wd != nil {
		return time.Duration(w.wd.deadline.Load())
	}
	return w.watchdog
}

// WatchdogDeadline exposes the deadline currently in force (0 = disabled) —
// observability and tests.
func (w *World) WatchdogDeadline() time.Duration { return w.curWatchdog() }

// watchdogEnabled reports whether Run should start the poller.
func (w *World) watchdogEnabled() bool { return w.watchdog > 0 || w.wd != nil }

// watchdogFloor is the smallest deadline the current configuration can
// produce; the poller derives its tick from it.
func (w *World) watchdogFloor() time.Duration {
	if w.wd != nil {
		return w.wd.cfg.Floor
	}
	return w.watchdog
}

// timekeeper is the rank whose epoch transitions feed the EWMA: rank 0
// in-process (all ranks advance in lockstep anyway), the locally hosted
// rank in distributed mode (each process times its own iterations).
func (w *World) timekeeper() int {
	if w.dist != nil {
		return w.dist.self
	}
	return 0
}
