package mpi

// Checkpoint wire-mark rendezvous: the collective that makes hot rank
// replacement sound. A replacement process restores its shard from a
// checkpoint and re-executes deterministically; survivors absorb the
// replayed frames through receive-side dedup and retransmit the lost tail
// from send-side history. For that to work, every checkpoint must record a
// *consistent cut* of per-pair frame counters: for every ordered pair
// (S, D), S's recorded sent-to-D count must equal D's recorded
// received-from-S count, with no frame in flight across the cut.
//
// Capturing the counters at checkpoint entry is racy — a fast peer's next-
// iteration frames can arrive before a slow rank captures, inflating its
// receive counter past what its restored state consumed, so a replacement
// seeded from it would dedup frames it actually needs and hang. The
// rendezvous below produces the cut without any global freeze:
//
//	non-root: send gather → recv fanout → capture → recv[root] -= 1
//	root:     recv all gathers → capture → send fanouts
//
// Pairwise: root captures after consuming every gather (gathers counted on
// both sides) and before sending any fanout; a non-root captures right
// after consuming the fanout, then excludes it, matching root. Non-root
// pairs exchange nothing during the rendezvous, and the caller's trailing
// barrier keeps any rank from starting next-iteration sends before every
// rank has captured — so no third-party frame can cross anyone's cut.
//
// Both the rendezvous and that trailing barrier are deliberately star
// shaped regardless of the world's collective schedule. "Non-root pairs
// exchange nothing" is load-bearing: frame counters count at delivery, so
// under a tree barrier a fast rank's post-capture reduce-up frame could
// land on a not-yet-captured interior parent and inflate its receive
// counter past the cut. The star confines the window's traffic to pairs
// with rank 0, whose capture order the rendezvous already fixes — hence
// CheckpointBarrier below, which callers must use in place of Barrier
// between the capture and WireMarkCheckpoint.

// CheckpointMarks runs the rendezvous and returns the consistent per-rank
// (sent, received) frame counters for this rank. ok is false — and no
// messages move — when the world is not distributed or the transport does
// not run the hot-replacement protocol; callers then skip mark recording
// entirely, keeping non-replaceable runs byte-identical to before. Every
// rank of a hot-replace world must call it at the same point (it is a
// collective), and must follow the subsequent checkpoint save with a
// Barrier before releasing history via WireMarkCheckpoint.
func (c *Comm) CheckpointMarks() (send, recv []uint64, ok bool) {
	wr := c.wireRecovery()
	if wr == nil {
		return nil, nil, false
	}
	if c.rank != 0 {
		c.collSend("ckptmarks", 0, tagCkptMarks, nil)
		c.collRecv("ckptmarks", 0, tagCkptMarks)
		send, recv = wr.WireMarks()
		recv[0]-- // exclude the fanout frame consumed just above
		return send, recv, true
	}
	for r := 1; r < c.world.size; r++ {
		c.collRecv("ckptmarks", r, tagCkptMarks)
	}
	send, recv = wr.WireMarks()
	for r := 1; r < c.world.size; r++ {
		c.collSend("ckptmarks", r, tagCkptMarks, nil)
	}
	return send, recv, true
}

// RejoinMarks re-enters the rendezvous at the post-capture point on a
// replacement rank whose transport was seeded with a checkpoint's counters.
// The seeded positions sit exactly at the capture cut: a non-root has
// logically sent its gather but not received the fanout (the recorded
// receive count excluded it), so it receives the fanout here — survivors'
// retained history retransmits it. Root captured before sending fanouts,
// so it sends them here — survivors that already consumed the originals
// drop the replays as duplicates. The caller then mirrors the original
// post-save sequence (Barrier, WireMarkCheckpoint) before resuming the
// fixpoint, so the replacement's frame stream stays byte-for-byte aligned
// with the incarnation it replaces.
func (c *Comm) RejoinMarks() {
	if c.wireRecovery() == nil {
		return
	}
	if c.rank != 0 {
		c.collRecv("ckptmarks", 0, tagCkptMarks)
		return
	}
	for r := 1; r < c.world.size; r++ {
		c.collSend("ckptmarks", r, tagCkptMarks, nil)
	}
}

// CheckpointBarrier is the barrier the checkpoint path runs between the
// marks capture (or rejoin) and WireMarkCheckpoint: a full barrier like
// Barrier, but always over the flat star — under any collective schedule —
// because the consistent-cut argument above depends on no frames moving
// between non-root pairs until every rank has captured.
func (c *Comm) CheckpointBarrier() { c.barrierVia(ScheduleFlat) }

// WireMarkCheckpoint records the current send positions as the newest
// generation's history mark and releases retained history below the
// previous generation's mark (the one-generation hold-back that keeps a
// torn newest checkpoint recoverable). No-op without hot replacement.
func (c *Comm) WireMarkCheckpoint() {
	if wr := c.wireRecovery(); wr != nil {
		wr.MarkCheckpoint()
	}
}

// wireRecovery returns the transport's recovery extension when the world is
// distributed over a transport running the hot-replacement protocol.
func (c *Comm) wireRecovery() WireRecovery {
	d := c.world.dist
	if d == nil {
		return nil
	}
	wr, ok := d.tr.(WireRecovery)
	if !ok || !wr.HotReplace() {
		return nil
	}
	return wr
}
