package mpi

// Transport is the wire a world runs over. Two implementations exist: the
// in-process memTransport (rank goroutines exchanging buffers through
// mailboxes — the original simulated runtime) and the TCP transport in
// internal/transport/tcp (one OS process per rank, length-prefixed CRC32C
// frames over real sockets). The mpi layer above is transport-agnostic:
// point-to-point sends route through Send, incoming messages and peer
// failures come back through the Handler, and collectives are either
// shared-memory (mem) or composed from point-to-point messages (distributed).
type Transport interface {
	// Self is the rank this transport endpoint speaks for.
	Self() int
	// Size is the number of ranks in the world the transport connects.
	Size() int
	// Send transmits words to dest with the given tag. It is buffered (like
	// MPI_Isend) and may retry/reconnect internally; a flow-controlled
	// transport may block the caller while the peer's send window is
	// exhausted (credit-based backpressure), but never indefinitely — a
	// stalled window past the transport's stall deadline fails structurally.
	// A non-nil error means the message can never be delivered (transport
	// closed, peer declared dead, or window stalled past the deadline).
	Send(dest, tag int, words []Word) error
	// Start begins delivery: incoming messages invoke h.Deliver and peer
	// deaths invoke h.PeerFailed, each from transport-owned goroutines. For
	// networked transports Start blocks until the full mesh is established
	// (with retry/backoff) and returns an error if any peer stays
	// unreachable past the connect deadline.
	Start(h Handler) error
	// Close shuts the transport down gracefully: pending sends are flushed,
	// peers are told this rank departed (so they do not mistake the closed
	// connections for a crash), and delivery stops.
	Close() error
	// Net reports the transport's robustness counters (dial retries,
	// reconnects, retransmits, heartbeat misses, CRC errors). The in-process
	// transport reports zeros.
	Net() NetStats
}

// Handler receives a transport's inbound events. The distributed world
// implements it: messages land in the local rank's mailbox, failures poison
// the world with a structured ErrRankFailed.
type Handler interface {
	// Deliver hands over one received, integrity-verified message.
	Deliver(src, tag int, words []Word)
	// PeerFailed reports that rank is dead or unreachable (heartbeat lost,
	// reconnect budget exhausted). It is called at most once per rank.
	PeerFailed(rank int, cause error)
}

// RecoveryHandler is an optional Handler extension a transport consults
// when hot rank replacement is enabled: instead of going straight to
// PeerFailed, a silent peer first becomes recovering — survivors park
// (receive deadlines are suspended, senders hold) while a replacement
// incarnation is admitted — and PeerRecovered lifts the park. PeerFailed
// still follows PeerRecovering when no replacement appears in time.
type RecoveryHandler interface {
	// PeerRecovering reports that rank went silent but a replacement is
	// being awaited. Called at most once per outage.
	PeerRecovering(rank int, cause error)
	// PeerRecovered reports that a replacement (or the original peer,
	// merely slow) was re-admitted.
	PeerRecovered(rank int)
}

// WireRecovery is an optional Transport extension for hot rank
// replacement: globally consistent per-peer frame counters captured at
// checkpoints (the wire position a replacement resumes from) and the
// send-history hold-back that keeps the post-checkpoint tail replayable.
type WireRecovery interface {
	// HotReplace reports whether the replacement protocol is enabled on
	// this endpoint.
	HotReplace() bool
	// WireMarks snapshots the per-rank (sent, received) data-frame
	// counters. Only meaningful inside the checkpoint rendezvous, where
	// no frames are in flight.
	WireMarks() (send, recv []uint64)
	// MarkCheckpoint records the current send positions as this
	// generation's history mark and releases history below the previous
	// generation's mark.
	MarkCheckpoint()
}

// NetStats counts the robustness events of a networked transport: how hard
// the wire fought back and how hard the transport fought to stay correct.
// All fields are monotonic totals.
type NetStats struct {
	// FramesSent and FramesRecv count data frames that crossed the wire
	// (including retransmissions on the send side).
	FramesSent int64
	FramesRecv int64
	// DialRetries counts failed connection attempts that were retried with
	// backoff (initial establishment and reconnects).
	DialRetries int64
	// Reconnects counts connections re-established after a loss.
	Reconnects int64
	// Retransmits counts data frames resent after a reconnect because the
	// peer had not acknowledged them.
	Retransmits int64
	// DupsDropped counts received data frames discarded as already-delivered
	// duplicates (the receive side of retransmission).
	DupsDropped int64
	// HeartbeatMisses counts monitor ticks that found a peer silent for more
	// than a heartbeat interval.
	HeartbeatMisses int64
	// CRCErrors counts frames rejected for a checksum mismatch.
	CRCErrors int64
	// ThrottleStalls counts sends that blocked on an exhausted send window
	// (credit-based flow control engaging). One stall per blocked entry,
	// however long the wait.
	ThrottleStalls int64
	// OutboxPeakFrames is the high-water mark of unacknowledged frames
	// buffered for any single peer — the proof the retransmission outbox
	// stayed within the configured window. A gauge, not a total: Add takes
	// the max, Sub passes n's value through.
	OutboxPeakFrames int64
	// PeerBytesSent/PeerBytesRecv are per-peer payload byte totals, indexed
	// by rank (the self entry stays zero). They show how a collective
	// schedule concentrates or spreads wire traffic, and are the
	// observation the similarity schedule consumes. Nil on transports that
	// do not track them; Add/Sub treat nil as zeros.
	PeerBytesSent []int64
	PeerBytesRecv []int64
}

// addPeerBytes returns the elementwise a+b (nil-safe; nil when both nil).
func addPeerBytes(a, b []int64) []int64 {
	if a == nil && b == nil {
		return nil
	}
	out := make([]int64, max(len(a), len(b)))
	copy(out, a)
	for i := range b {
		out[i] += b[i]
	}
	return out
}

// subPeerBytes returns the elementwise a-b (nil-safe; nil when both nil).
func subPeerBytes(a, b []int64) []int64 {
	if a == nil && b == nil {
		return nil
	}
	out := make([]int64, max(len(a), len(b)))
	copy(out, a)
	for i := range b {
		out[i] -= b[i]
	}
	return out
}

// Add returns n + m fieldwise (max for the peak gauge).
func (n NetStats) Add(m NetStats) NetStats {
	return NetStats{
		FramesSent:       n.FramesSent + m.FramesSent,
		FramesRecv:       n.FramesRecv + m.FramesRecv,
		DialRetries:      n.DialRetries + m.DialRetries,
		Reconnects:       n.Reconnects + m.Reconnects,
		Retransmits:      n.Retransmits + m.Retransmits,
		DupsDropped:      n.DupsDropped + m.DupsDropped,
		HeartbeatMisses:  n.HeartbeatMisses + m.HeartbeatMisses,
		CRCErrors:        n.CRCErrors + m.CRCErrors,
		ThrottleStalls:   n.ThrottleStalls + m.ThrottleStalls,
		OutboxPeakFrames: max(n.OutboxPeakFrames, m.OutboxPeakFrames),
		PeerBytesSent:    addPeerBytes(n.PeerBytesSent, m.PeerBytesSent),
		PeerBytesRecv:    addPeerBytes(n.PeerBytesRecv, m.PeerBytesRecv),
	}
}

// Sub returns n - m fieldwise; the peak gauge is not a total, so n's value
// passes through (a window delta inherits the current high-water mark).
func (n NetStats) Sub(m NetStats) NetStats {
	return NetStats{
		FramesSent:       n.FramesSent - m.FramesSent,
		FramesRecv:       n.FramesRecv - m.FramesRecv,
		DialRetries:      n.DialRetries - m.DialRetries,
		Reconnects:       n.Reconnects - m.Reconnects,
		Retransmits:      n.Retransmits - m.Retransmits,
		DupsDropped:      n.DupsDropped - m.DupsDropped,
		HeartbeatMisses:  n.HeartbeatMisses - m.HeartbeatMisses,
		CRCErrors:        n.CRCErrors - m.CRCErrors,
		ThrottleStalls:   n.ThrottleStalls - m.ThrottleStalls,
		OutboxPeakFrames: n.OutboxPeakFrames,
		PeerBytesSent:    subPeerBytes(n.PeerBytesSent, m.PeerBytesSent),
		PeerBytesRecv:    subPeerBytes(n.PeerBytesRecv, m.PeerBytesRecv),
	}
}
