package mpi

import (
	"fmt"
	"sort"
)

// Collective schedules: the shape a collective's point-to-point messages
// take. The flat schedule is the original gather-to-root + broadcast star;
// the tree schedule is a topology-aware binomial tree (binomial across host
// leaders, binomial within each host, so at most one message per collective
// crosses each host boundary); the ring schedule adds a bandwidth-optimal
// ring reduce-scatter/allgather for large AllreduceVec payloads; auto starts
// on the tree and lets the ranks vote ring in when observed payloads cross
// the bandwidth/latency crossover (see the schedule vote in the join
// planner). Every schedule is a pure function of (kind, topology, world
// size, root), so all ranks materialize the same shape without coordination.

// ScheduleKind selects how collectives route their messages.
type ScheduleKind uint8

const (
	// ScheduleFlat composes every collective as gather-to-root + broadcast:
	// O(P) serialized hops through rank 0, minimal latency at tiny P.
	ScheduleFlat ScheduleKind = iota
	// ScheduleTree routes through a topology-aware binomial tree: O(log P)
	// critical-path hops, root traffic cut from O(P) to O(log P) messages.
	ScheduleTree
	// ScheduleRing runs large AllreduceVec payloads through a ring
	// reduce-scatter + allgather (2(P-1)/P of the vector per link, no root
	// hotspot); every other collective falls back to the tree.
	ScheduleRing
	// ScheduleAuto starts on the tree and re-votes tree vs ring each
	// planning round from the payload sizes the ranks observed.
	ScheduleAuto
)

// ParseScheduleKind maps the CLI/config spelling to a kind. The empty
// string is the flat default.
func ParseScheduleKind(s string) (ScheduleKind, error) {
	switch s {
	case "", "flat":
		return ScheduleFlat, nil
	case "tree":
		return ScheduleTree, nil
	case "ring":
		return ScheduleRing, nil
	case "auto":
		return ScheduleAuto, nil
	}
	return 0, fmt.Errorf("unknown collective schedule %q (want flat, tree, ring, or auto)", s)
}

func (k ScheduleKind) String() string {
	switch k {
	case ScheduleFlat:
		return "flat"
	case ScheduleTree:
		return "tree"
	case ScheduleRing:
		return "ring"
	case ScheduleAuto:
		return "auto"
	}
	return fmt.Sprintf("ScheduleKind(%d)", int(k))
}

// ringMinWords is the AllreduceVec payload (in words) past which the ring's
// bandwidth advantage beats the tree's latency advantage: with the default
// cost model (2000ns/message, 0.25ns/byte) a tree moves depth*n words in
// depth rounds while the ring moves ~2n/P words per rank over 2(P-1)
// rounds; around 8 KiB the byte term dominates the round count.
const ringMinWords = 1024

// rankTree is one rank's view of a reduction tree: who it receives from /
// forwards to during the reduce-up and fan-down phases, plus the whole
// tree's height (the critical-path hop count one way — each hop is bounded
// by the receive watchdog, so a depth-d collective is bounded by d
// deadlines).
type rankTree struct {
	root     int
	parent   int   // -1 when this rank is the tree root
	children []int // fan order: larger subtrees first
	depth    int
}

// binomialPositions builds the classic binomial tree over positions
// 0..n-1 (position 0 is the root): position p's parent clears p's lowest
// set bit, and p's children are p | 2^k for 2^k below p's lowest set bit.
// Children are ordered largest-subtree-first so the fan-down starts the
// deepest subtree earliest.
func binomialPositions(n int) (parent []int, children [][]int) {
	parent = make([]int, n)
	children = make([][]int, n)
	parent[0] = -1
	for p := 1; p < n; p++ {
		low := p & -p
		parent[p] = p &^ low
	}
	for p := 0; p < n; p++ {
		// Bits strictly below p's lowest set bit; for the root, every bit up
		// to the highest power of two below n.
		start := (p & -p) >> 1
		if p == 0 {
			start = 1
			for start<<1 < n {
				start <<= 1
			}
		}
		for bit := start; bit >= 1; bit >>= 1 {
			if ch := p | bit; ch < n {
				children[p] = append(children[p], ch)
			}
		}
	}
	return parent, children
}

// fullTree holds a whole tree in rank space.
type fullTree struct {
	parent   []int
	children [][]int
}

func (t *fullTree) height() int {
	h := 0
	for r := range t.parent {
		d := 0
		for p := r; t.parent[p] >= 0; p = t.parent[p] {
			d++
		}
		if d > h {
			h = d
		}
	}
	return h
}

// graft attaches the binomial tree over order (order[0] is the subtree
// root) into ft, leaving order[0]'s parent untouched.
func (ft *fullTree) graft(order []int) {
	parent, children := binomialPositions(len(order))
	for p := 1; p < len(order); p++ {
		ft.parent[order[p]] = order[parent[p]]
	}
	for p := 0; p < len(order); p++ {
		for _, ch := range children[p] {
			ft.children[order[p]] = append(ft.children[order[p]], order[ch])
		}
	}
}

// topoTree builds the two-level topology-aware tree rooted at root: a
// binomial tree across host leaders (the root leads its own host; every
// other host is led by its lowest rank) and a binomial tree within each
// host rooted at its leader. Exactly one edge per foreign host crosses a
// host boundary, so one collective costs one cross-host message per host
// rather than one per rank. Under a uniform (single-host) topology this is
// a plain binomial tree.
func topoTree(topo *Topology, size, root int) *fullTree {
	if topo == nil || topo.Ranks() != size {
		topo = NewUniformTopology(size)
	}
	ft := &fullTree{parent: make([]int, size), children: make([][]int, size)}
	for r := range ft.parent {
		ft.parent[r] = -1
	}
	// Group members per host, ascending by rank.
	members := make([][]int, topo.NumHosts())
	for r := 0; r < size; r++ {
		members[topo.Host(r)] = append(members[topo.Host(r)], r)
	}
	// Leaders: root for its own host, lowest rank elsewhere; the root's
	// leader goes first, the rest in host-id order.
	rootHost := topo.Host(root)
	leaders := []int{root}
	for h, m := range members {
		if h != rootHost && len(m) > 0 {
			leaders = append(leaders, m[0])
		}
	}
	ft.graft(leaders)
	// Within each host: leader first, remaining members ascending.
	for h, m := range members {
		if len(m) == 0 {
			continue
		}
		leader := m[0]
		if h == rootHost {
			leader = root
		}
		order := []int{leader}
		for _, r := range m {
			if r != leader {
				order = append(order, r)
			}
		}
		ft.graft(order)
	}
	return ft
}

// similarityTree builds a reduction tree from an observed traffic matrix:
// a deterministic maximum-spanning-tree (Prim, ties to the lower rank) over
// symmetrized per-peer byte counts, so the heaviest-talking pairs become
// tree edges. The matrix must be installed before Run (World.SetTraffic) —
// typically the per-peer counters a previous run or iteration exposed
// through NetStats — never sampled mid-run: rank-local sampling points are
// not synchronized, so live refreshes would build divergent trees.
func similarityTree(w [][]int64, size, root int) *fullTree {
	ft := &fullTree{parent: make([]int, size), children: make([][]int, size)}
	for r := range ft.parent {
		ft.parent[r] = -1
	}
	weight := func(a, b int) int64 { return w[a][b] + w[b][a] }
	placed := make([]bool, size)
	placed[root] = true
	for n := 1; n < size; n++ {
		bestRank, bestParent, bestW := -1, -1, int64(-1)
		for r := 0; r < size; r++ {
			if placed[r] {
				continue
			}
			for p := 0; p < size; p++ {
				if !placed[p] {
					continue
				}
				if cw := weight(r, p); cw > bestW ||
					(cw == bestW && (r < bestRank || (r == bestRank && p < bestParent))) {
					bestRank, bestParent, bestW = r, p, cw
				}
			}
		}
		placed[bestRank] = true
		ft.parent[bestRank] = bestParent
		ft.children[bestParent] = append(ft.children[bestParent], bestRank)
	}
	return ft
}

// ringOrder is the cycle the ring schedule sends along: ranks grouped by
// host (so at most NumHosts links cross a host boundary per round), rank
// order within a host.
func ringOrder(topo *Topology, size int) []int {
	order := make([]int, size)
	for i := range order {
		order[i] = i
	}
	if topo == nil || topo.Ranks() != size {
		return order
	}
	sort.SliceStable(order, func(i, j int) bool {
		hi, hj := topo.Host(order[i]), topo.Host(order[j])
		if hi != hj {
			return hi < hj
		}
		return order[i] < order[j]
	})
	return order
}

// treeFor returns this rank's cached view of the active reduction tree
// rooted at root, materializing it on first use. The cache is keyed by root
// only: the tree's other inputs (kind, topology, world size) are fixed for
// the comm's lifetime, except a similarity refresh, which clears the cache.
func (c *Comm) treeFor(root int) *rankTree {
	if t, ok := c.trees[root]; ok {
		return t
	}
	size := c.world.size
	var ft *fullTree
	if c.simMatrix != nil {
		ft = similarityTree(c.simMatrix, size, root)
	} else {
		ft = topoTree(c.world.topo, size, root)
	}
	t := &rankTree{
		root:     root,
		parent:   ft.parent[c.rank],
		children: ft.children[c.rank],
		depth:    ft.height(),
	}
	if c.trees == nil {
		c.trees = make(map[int]*rankTree)
	}
	c.trees[root] = t
	return t
}

// ringNeighbors returns this rank's position in the ring order plus its
// successor and predecessor ranks, cached after first use.
func (c *Comm) ringNeighbors() (pos, succ, pred int) {
	if c.ringOrd == nil {
		c.ringOrd = ringOrder(c.world.topo, c.world.size)
		for i, r := range c.ringOrd {
			if r == c.rank {
				c.ringPos = i
				break
			}
		}
	}
	n := len(c.ringOrd)
	return c.ringPos, c.ringOrd[(c.ringPos+1)%n], c.ringOrd[(c.ringPos+n-1)%n]
}

// Schedule returns the schedule kind this rank's collectives currently
// route through (auto resolves to the concrete kind last voted).
func (c *Comm) Schedule() ScheduleKind { return c.sched }

// Topology returns the world's rank placement, or nil when none was
// configured (callers treat nil as a uniform single-host topology).
func (c *Comm) Topology() *Topology { return c.world.topo }

// ScheduleAuto reports whether the world runs the auto schedule, i.e. the
// planner should piggyback a schedule vote on its planning round.
func (c *Comm) ScheduleAuto() bool { return c.schedAuto }

// ScheduleVote returns this rank's vote for next round's schedule: 1 for
// the ring when the payloads it has observed are large enough that
// bandwidth dominates latency, 0 for the tree. Rank-local observations —
// agreement comes from summing the votes in the planning Allreduce.
func (c *Comm) ScheduleVote() uint64 {
	if c.lastVecWords >= ringMinWords {
		return 1
	}
	return 0
}

// ApplyScheduleVote switches this rank's schedule to the kind a majority
// voted for. Every rank must apply the same tally at the same point (after
// the same Allreduce returned), which keeps the next collective's shape
// agreed without an extra round.
func (c *Comm) ApplyScheduleVote(ringVotes int) {
	if !c.schedAuto {
		return
	}
	next := ScheduleTree
	if 2*ringVotes > c.world.size {
		next = ScheduleRing
	}
	c.sched = next
}

// ScheduleDepth is the critical-path hop count of one collective under the
// active schedule: the serialized O(P) star for flat, the tree height for
// tree (doubled for the fan-down), P-1 for the ring. The planner charges
// its voting round this many message latencies.
func (c *Comm) ScheduleDepth() int {
	size := c.world.size
	if size <= 1 {
		return 0
	}
	switch c.sched {
	case ScheduleFlat, ScheduleRing:
		return size - 1
	default:
		return c.treeFor(0).depth
	}
}
