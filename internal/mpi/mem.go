package mpi

// memTransport is the in-process wire: one rank goroutine's view of the
// mailbox fabric the simulated runtime has always used. Send copies the
// payload, stamps it with a CRC32C checksum, applies the fault plan's wire
// faults (corruption — drops and delays are injected above the transport,
// identically for every transport), and appends to the destination's
// mailbox. There is no real network underneath, so Start and Close are
// no-ops and the robustness counters stay zero.
type memTransport struct {
	world *World
	rank  int
}

func (m memTransport) Self() int { return m.rank }
func (m memTransport) Size() int { return m.world.size }

func (m memTransport) Send(dest, tag int, words []Word) error {
	cp := make([]Word, len(words))
	copy(cp, words)
	// The checksum covers the payload as sent; wire corruption is injected
	// after, exactly like a bit flip between two real NICs, so the receiver's
	// verification catches it.
	crc := ChecksumWords(cp)
	if fs := m.world.fstate; fs != nil {
		if i, mask, ok := fs.corruptNow(m.rank, int(m.world.epochs[m.rank].Load()), len(cp)); ok {
			cp[i] ^= mask
		}
	}
	m.world.boxes[dest].put(message{src: m.rank, tag: tag, words: cp, crc: crc})
	return nil
}

func (m memTransport) Start(Handler) error { return nil }
func (m memTransport) Close() error        { return nil }
func (m memTransport) Net() NetStats       { return NetStats{} }
