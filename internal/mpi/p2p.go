package mpi

import (
	"fmt"
	"sync"
	"time"
)

// message is one point-to-point transfer in flight. crc is the CRC32C the
// sender computed over words before the payload touched the wire; the
// receiver re-computes and compares, so corruption in flight surfaces as a
// structured error instead of a wrong answer.
type message struct {
	src   int
	tag   int
	words []Word
	crc   uint32
}

// mailbox is a rank's unbounded incoming message queue. Sends append and
// never block (matching buffered MPI_Isend); receives scan for the first
// message matching (src, tag) and block until one arrives — or until the
// world aborts or the receive deadline passes, in which case the blocked
// receiver unwinds with an error instead of wedging on a dead or silent
// sender.
type mailbox struct {
	world *World
	mu    sync.Mutex
	cond  *sync.Cond
	q     []message
}

func newMailbox(w *World) *mailbox {
	m := &mailbox{world: w}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// recvError is why a take unblocked without a message.
type recvError struct {
	timeout bool
	abort   *ErrRankFailed // set when the world aborted under us
}

func (e *recvError) Error() string {
	if e.timeout {
		return "receive timed out"
	}
	return fmt.Sprintf("world aborted: %v", e.abort)
}

// take removes and returns the first queued message from src with tag.
// src may be AnySource. A positive timeout bounds the wait: when it expires
// with no matching message the take fails with a timeout recvError — the
// p2p arm of the watchdog, so a Recv waiting on a dropped message errors
// out instead of blocking its rank forever.
func (m *mailbox) take(src, tag int, timeout time.Duration) (message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// The timer only needs to wake the waiter; lock/unlock first so the
		// broadcast cannot slip between the waiter's deadline check and its
		// cond.Wait registration.
		t := time.AfterFunc(timeout, func() {
			m.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast after the waiter sleeps
			m.mu.Unlock()
			m.cond.Broadcast()
		})
		defer t.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.q {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.q = append(m.q[:i], m.q[i+1:]...)
				return msg, nil
			}
		}
		if rf := m.world.abort.Load(); rf != nil {
			return message{}, &recvError{abort: rf}
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return message{}, &recvError{timeout: true}
		}
		m.cond.Wait()
	}
}

// AnySource matches a receive against any sender, like MPI_ANY_SOURCE.
const AnySource = -1

// collTagBase is the floor of the tag space reserved for the runtime's own
// traffic (the point-to-point messages distributed collectives are built
// from). User tags must stay below it.
const collTagBase = 1 << 30

// validTag panics when a user-level operation uses a tag inside the
// reserved collective range.
func (c *Comm) validTag(op string, tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("mpi: %s on rank %d: tag %d outside user range [0, %d)",
			op, c.rank, tag, collTagBase))
	}
}

// transport returns the wire this rank sends through: the shared networked
// transport in distributed mode, the in-process mailbox fabric otherwise.
func (c *Comm) transport() Transport {
	if d := c.world.dist; d != nil {
		return d.tr
	}
	return memTransport{world: c.world, rank: c.rank}
}

// sendVia pushes words to dest through the transport, injecting the fault
// plan's drop/delay wire faults first. It is the shared tail of user Sends
// and the internal sends distributed collectives are made of (which skip
// the user-level fault gate and metering).
func (c *Comm) sendVia(op string, dest, tag int, words []Word) {
	if dest == c.rank && c.world.dist != nil {
		// Local hand-off never touches the networked wire.
		memTransport{world: c.world, rank: c.rank}.Send(dest, tag, words)
		return
	}
	if err := c.transport().Send(dest, tag, words); err != nil {
		c.world.checkAbort()
		rf := &ErrRankFailed{Rank: c.rank, Op: op, Iter: c.Epoch(),
			Cause: fmt.Errorf("send to rank %d failed: %w", dest, err)}
		c.world.fail(rf)
		panic(rf)
	}
	c.world.stats.addPeerSent(c.rank, dest, len(words)*WordBytes)
}

// recvVia blocks for a matching message, bounded by the watchdog timeout
// when one is configured, and verifies its integrity. On timeout the
// receiving rank fails with ErrRecvTimeout — unless a peer is parked in the
// hot-replacement window (Recovering), in which case the wait is re-armed:
// the replacement's re-admission or the transport's ReplaceTimeout decides
// whether the message eventually arrives or the world aborts. On checksum
// mismatch the world fails with ErrCorruptMessage attributed to the sender.
func (c *Comm) recvVia(op string, src, tag int, timeout time.Duration) message {
	msg, err := c.world.boxes[c.rank].take(src, tag, timeout)
	for {
		re, _ := err.(*recvError)
		if re == nil || !re.timeout || !c.world.Recovering() {
			break
		}
		msg, err = c.world.boxes[c.rank].take(src, tag, timeout)
	}
	if err != nil {
		re := err.(*recvError)
		if re.abort != nil {
			panic(abortPanic{re.abort})
		}
		rf := &ErrRankFailed{Rank: c.rank, Op: op, Iter: c.Epoch(),
			Cause: fmt.Errorf("recv from rank %d tag %d waited %v: %w", src, tag, timeout, ErrRecvTimeout)}
		c.world.fail(rf)
		panic(rf)
	}
	if ChecksumWords(msg.words) != msg.crc {
		rf := &ErrRankFailed{Rank: msg.src, Op: op, Iter: c.Epoch(), Cause: ErrCorruptMessage}
		c.world.fail(rf)
		panic(rf)
	}
	c.world.stats.addPeerRecv(c.rank, msg.src, len(msg.words)*WordBytes)
	return msg
}

// Send transmits words to dest with the given tag. It does not block: the
// runtime buffers the message (the MPI_Isend discipline the paper's
// intra-bucket communication relies on). The words slice is copied, so the
// caller may immediately reuse it. Under a fault plan the message may be
// deterministically dropped, delayed, or have one payload word corrupted —
// corruption is caught by the receiver's CRC32C check.
func (c *Comm) Send(dest, tag int, words []Word) {
	c.enter("send")
	c.validRank("send", dest)
	c.validTag("send", tag)
	seq := c.sendSeq[dest]
	c.sendSeq[dest]++
	if fs := c.world.fstate; fs != nil {
		if fs.dropNow(c.rank, dest, seq) {
			return // dropped on the wire: never metered, never delivered
		}
		if d := fs.delayNow(c.rank, dest, seq); d > 0 {
			time.Sleep(d)
		}
	}
	c.world.stats.addP2P(c.rank, dest, len(words)*WordBytes)
	c.sendVia("send", dest, tag, words)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Pass AnySource to match any sender; the actual
// sender is returned alongside the payload. With a watchdog configured the
// wait is bounded: a receive that stays unmatched past the timeout (the
// sender's message was dropped, or the sender is gone) fails the rank with
// a structured ErrRankFailed instead of wedging it forever.
func (c *Comm) Recv(src, tag int) (words []Word, from int) {
	c.enter("recv")
	if src != AnySource {
		c.validRank("recv", src)
	}
	c.validTag("recv", tag)
	msg := c.recvVia("recv", src, tag, c.world.curWatchdog())
	return msg.words, msg.src
}

// SendTuples is Send for callers holding a tuple buffer: it transmits the
// arity followed by the flat words, preserving self-describing framing.
func (c *Comm) SendTuples(dest, tag, arity int, words []Word) {
	framed := make([]Word, 0, len(words)+1)
	framed = append(framed, Word(arity))
	framed = append(framed, words...)
	c.Send(dest, tag, framed)
}

// RecvTuples receives a buffer sent with SendTuples and returns its arity
// and words.
func (c *Comm) RecvTuples(src, tag int) (arity int, words []Word, from int) {
	framed, from := c.Recv(src, tag)
	if len(framed) == 0 {
		panic(fmt.Sprintf("mpi: RecvTuples on rank %d got unframed empty message from rank %d", c.rank, from))
	}
	return int(framed[0]), framed[1:], from
}
