package mpi

import (
	"fmt"
	"sync"
	"time"
)

// message is one point-to-point transfer in flight.
type message struct {
	src   int
	tag   int
	words []Word
}

// mailbox is a rank's unbounded incoming message queue. Sends append and
// never block (matching buffered MPI_Isend); receives scan for the first
// message matching (src, tag) and block until one arrives — or until the
// world aborts, in which case the blocked receiver unwinds with the
// failure instead of deadlocking on a dead sender.
type mailbox struct {
	world *World
	mu    sync.Mutex
	cond  *sync.Cond
	q     []message
}

func newMailbox(w *World) *mailbox {
	m := &mailbox{world: w}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first queued message from src with tag.
// src may be AnySource.
func (m *mailbox) take(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.q {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.q = append(m.q[:i], m.q[i+1:]...)
				return msg
			}
		}
		m.world.checkAbort()
		m.cond.Wait()
	}
}

// AnySource matches a receive against any sender, like MPI_ANY_SOURCE.
const AnySource = -1

// Send transmits words to dest with the given tag. It does not block: the
// runtime buffers the message (the MPI_Isend discipline the paper's
// intra-bucket communication relies on). The words slice is copied, so the
// caller may immediately reuse it. Under a fault plan the message may be
// deterministically dropped, delayed, or have one payload word corrupted.
func (c *Comm) Send(dest, tag int, words []Word) {
	c.enter("send")
	c.validRank("send", dest)
	seq := c.sendSeq[dest]
	c.sendSeq[dest]++
	if fs := c.world.fstate; fs != nil {
		if fs.dropNow(c.rank, dest, seq) {
			return // dropped on the wire: never metered, never delivered
		}
		if d := fs.delayNow(c.rank, dest, seq); d > 0 {
			time.Sleep(d)
		}
	}
	cp := make([]Word, len(words))
	copy(cp, words)
	if fs := c.world.fstate; fs != nil {
		if i, mask, ok := fs.corruptNow(c.rank, c.Epoch(), len(cp)); ok {
			cp[i] ^= mask
		}
	}
	c.world.stats.addP2P(c.rank, dest, len(cp)*WordBytes)
	c.world.boxes[dest].put(message{src: c.rank, tag: tag, words: cp})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Pass AnySource to match any sender; the actual
// sender is returned alongside the payload.
func (c *Comm) Recv(src, tag int) (words []Word, from int) {
	c.enter("recv")
	if src != AnySource {
		c.validRank("recv", src)
	}
	msg := c.world.boxes[c.rank].take(src, tag)
	return msg.words, msg.src
}

// SendTuples is Send for callers holding a tuple buffer: it transmits the
// arity followed by the flat words, preserving self-describing framing.
func (c *Comm) SendTuples(dest, tag, arity int, words []Word) {
	framed := make([]Word, 0, len(words)+1)
	framed = append(framed, Word(arity))
	framed = append(framed, words...)
	c.Send(dest, tag, framed)
}

// RecvTuples receives a buffer sent with SendTuples and returns its arity
// and words.
func (c *Comm) RecvTuples(src, tag int) (arity int, words []Word, from int) {
	framed, from := c.Recv(src, tag)
	if len(framed) == 0 {
		panic(fmt.Sprintf("mpi: RecvTuples on rank %d got unframed empty message from rank %d", c.rank, from))
	}
	return int(framed[0]), framed[1:], from
}
