package mpi

import "sync"

// Stats meters every transfer in a world. Counters are per sending rank so
// that imbalance is visible; Totals sums them. The meter distinguishes
// point-to-point traffic from each collective kind because the cost model
// charges latency per collective and bandwidth per byte.
type Stats struct {
	mu    sync.Mutex
	ranks []RankStats
	// netProbe, when set (distributed worlds), samples the transport's
	// robustness counters into Snapshot's Net field.
	netProbe func() NetStats
}

// setNetProbe wires a transport's counters into snapshots.
func (s *Stats) setNetProbe(probe func() NetStats) {
	s.mu.Lock()
	s.netProbe = probe
	s.mu.Unlock()
}

// RankStats is one rank's outbound communication tally.
type RankStats struct {
	P2PMessages int
	P2PBytes    int
	Collectives map[string]CollectiveStats
	// PeerBytesSent/PeerBytesRecv are this rank's per-peer wire bytes,
	// indexed by peer rank — every point-to-point transfer plus every hop a
	// collective schedule routed through this rank. They are the input the
	// similarity schedule is built from, and how a benchmark sees traffic
	// concentration (e.g. bytes through the flat star's root). The self
	// entry stays zero: local hand-offs never touch a wire.
	PeerBytesSent []int64
	PeerBytesRecv []int64
}

// CollectiveStats counts one collective kind's calls and payload bytes for a
// rank.
type CollectiveStats struct {
	Calls int
	Bytes int
}

func newStats(size int) *Stats {
	s := &Stats{ranks: make([]RankStats, size)}
	for i := range s.ranks {
		s.ranks[i].Collectives = make(map[string]CollectiveStats)
		s.ranks[i].PeerBytesSent = make([]int64, size)
		s.ranks[i].PeerBytesRecv = make([]int64, size)
	}
	return s
}

// addPeerSent/addPeerRecv meter one wire transfer's bytes against the
// (src, dest) pair. Unlike addP2P they also see the internal hops
// collectives are composed of — per-link traffic is exactly what a
// schedule reshapes, so it is what these counters exist to show.
func (s *Stats) addPeerSent(src, dest, bytes int) {
	if src == dest {
		return
	}
	s.mu.Lock()
	s.ranks[src].PeerBytesSent[dest] += int64(bytes)
	s.mu.Unlock()
}

func (s *Stats) addPeerRecv(dst, src, bytes int) {
	if src == dst {
		return
	}
	s.mu.Lock()
	s.ranks[dst].PeerBytesRecv[src] += int64(bytes)
	s.mu.Unlock()
}

// peerMatrix snapshots the sent-bytes matrix (entry [i][j] = bytes rank i
// sent rank j), the similarity schedule's input shape.
func (s *Stats) peerMatrix() [][]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]int64, len(s.ranks))
	for i := range s.ranks {
		out[i] = append([]int64(nil), s.ranks[i].PeerBytesSent...)
	}
	return out
}

// PeerMatrix returns a copy of the per-peer sent-bytes matrix.
func (s *Stats) PeerMatrix() [][]int64 { return s.peerMatrix() }

func (s *Stats) addP2P(src, dest, bytes int) {
	if src == dest {
		return // local hand-off, never touches the wire
	}
	s.mu.Lock()
	s.ranks[src].P2PMessages++
	s.ranks[src].P2PBytes += bytes
	s.mu.Unlock()
}

func (s *Stats) addCollective(rank int, kind string, bytes int) {
	s.mu.Lock()
	cs := s.ranks[rank].Collectives[kind]
	cs.Calls++
	cs.Bytes += bytes
	s.ranks[rank].Collectives[kind] = cs
	s.mu.Unlock()
}

// Totals is a point-in-time aggregate of all ranks' counters.
type Totals struct {
	P2PMessages     int
	P2PBytes        int
	CollectiveCalls int
	CollectiveBytes int
	// Net carries the transport's robustness counters (retries, reconnects,
	// retransmits, heartbeat misses, CRC errors); all zero for in-process
	// worlds.
	Net NetStats
}

// Snapshot sums all ranks' counters. Callers diff two snapshots to meter a
// phase.
func (s *Stats) Snapshot() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t Totals
	for i := range s.ranks {
		t.P2PMessages += s.ranks[i].P2PMessages
		t.P2PBytes += s.ranks[i].P2PBytes
		for _, cs := range s.ranks[i].Collectives {
			t.CollectiveCalls += cs.Calls
			t.CollectiveBytes += cs.Bytes
		}
	}
	if s.netProbe != nil {
		t.Net = s.netProbe()
	}
	return t
}

// Sub returns t - u fieldwise.
func (t Totals) Sub(u Totals) Totals {
	return Totals{
		P2PMessages:     t.P2PMessages - u.P2PMessages,
		P2PBytes:        t.P2PBytes - u.P2PBytes,
		CollectiveCalls: t.CollectiveCalls - u.CollectiveCalls,
		CollectiveBytes: t.CollectiveBytes - u.CollectiveBytes,
		Net:             t.Net.Sub(u.Net),
	}
}

// Add returns t + u fieldwise.
func (t Totals) Add(u Totals) Totals {
	return Totals{
		P2PMessages:     t.P2PMessages + u.P2PMessages,
		P2PBytes:        t.P2PBytes + u.P2PBytes,
		CollectiveCalls: t.CollectiveCalls + u.CollectiveCalls,
		CollectiveBytes: t.CollectiveBytes + u.CollectiveBytes,
		Net:             t.Net.Add(u.Net),
	}
}

// Bytes returns the total payload bytes across P2P and collectives.
func (t Totals) Bytes() int { return t.P2PBytes + t.CollectiveBytes }

// PerRank returns a copy of the per-rank tallies, indexed by rank.
func (s *Stats) PerRank() []RankStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RankStats, len(s.ranks))
	for i := range s.ranks {
		out[i] = RankStats{
			P2PMessages:   s.ranks[i].P2PMessages,
			P2PBytes:      s.ranks[i].P2PBytes,
			Collectives:   make(map[string]CollectiveStats, len(s.ranks[i].Collectives)),
			PeerBytesSent: append([]int64(nil), s.ranks[i].PeerBytesSent...),
			PeerBytesRecv: append([]int64(nil), s.ranks[i].PeerBytesRecv...),
		}
		for k, v := range s.ranks[i].Collectives {
			out[i].Collectives[k] = v
		}
	}
	return out
}
