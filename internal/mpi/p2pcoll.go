package mpi

import "fmt"

// Distributed collectives: when a world runs one rank per process over a
// real transport there is no shared collective slot, so every collective is
// composed from point-to-point messages in the reserved tag space above
// collTagBase. Which point-to-point shape a collective takes is decided by
// the world's ScheduleKind (see schedule.go): the flat star
// (gather-to-root + broadcast, rank 0 an O(P) serialization point), a
// topology-aware binomial tree (O(log P) critical path, root traffic cut to
// its tree degree), or — for large AllreduceVec payloads — a ring
// reduce-scatter/allgather with no root at all. In-process worlds normally
// use the shared-memory collective slot, but route through these same
// functions when a non-flat schedule is configured, so every schedule is
// testable at any rank count without sockets.
//
// Tag discipline under multi-hop schedules: one reserved tag per collective
// kind is still sufficient. The matching argument is MPI's — every rank
// calls the same collectives in the same order — plus two properties of the
// schedules: (1) each (src, dst, tag) stream is FIFO, and (2) a rank sends
// its messages for collective k+1 only after locally completing collective
// k, which required consuming every collective-k message addressed to it on
// these tags. A reduce-up message and a fan-down message of the same
// collective travel opposite directions of an edge (distinct streams), and
// consecutive same-kind collectives consume a fixed per-stream message
// count, so multi-hop forwarding never cross-matches generations. The ring
// leans on the same per-stream FIFO: step s's payload to the successor is
// consumed before step s+1's arrives.
//
// Internal messages deliberately skip the user-level fault gate, the
// drop/delay injectors, and the P2P meters: faults target the collective
// operation as a whole (crash/hang at entry, wire faults at the transport),
// and the collective's logical byte count was already metered at entry, so
// in-process and distributed runs report comparable stats. Every hop is
// individually bounded by the receive watchdog (collRecv), so a depth-d
// schedule turns a dead interior rank into a structured failure within d
// deadlines rather than a wedged tree.

// Reserved tags, one per collective kind. Gather/reduce-up and
// broadcast/fan-down phases of one kind share a tag safely: the two
// directions of an edge are distinct streams.
const (
	tagBarrier = collTagBase + iota
	tagAllreduce
	tagAllgather
	tagAllgatherv
	tagAlltoallv
	tagBcast
	tagGather
	tagAllreduceVec
	tagCkptMarks
)

// collSend pushes an internal collective message.
func (c *Comm) collSend(op string, dest, tag int, words []Word) {
	if dest == c.rank {
		panic("mpi: internal collective self-send")
	}
	c.sendVia(op, dest, tag, words)
}

// collRecv blocks for an internal collective message, bounded by the
// watchdog deadline (fixed or adaptive) when one is in force — the per-hop
// deadline every schedule edge inherits.
func (c *Comm) collRecv(op string, src, tag int) []Word {
	return c.recvVia(op, src, tag, c.world.curWatchdog()).words
}

// --- Flat primitives: the original star patterns, byte-identical to the
// --- pre-schedule runtime. The flat schedule (the default) composes every
// --- collective from these two.

// distGather collects every rank's words at rank 0. Rank 0 gets the full
// vector (its own entry aliased, the rest private); other ranks get nil.
func (c *Comm) distGather(op string, tag int, words []Word) [][]Word {
	if c.rank != 0 {
		c.collSend(op, 0, tag, words)
		return nil
	}
	out := make([][]Word, c.world.size)
	out[0] = words
	for r := 1; r < c.world.size; r++ {
		out[r] = c.collRecv(op, r, tag)
	}
	return out
}

// distFan broadcasts words from rank 0 to everyone. Rank 0 passes the
// payload and gets it back; other ranks receive a private copy.
func (c *Comm) distFan(op string, tag int, words []Word) []Word {
	if c.rank == 0 {
		for r := 1; r < c.world.size; r++ {
			c.collSend(op, r, tag, words)
		}
		return words
	}
	return c.collRecv(op, 0, tag)
}

// --- Tree primitives: reduce-up and fan-down over the rank's view of the
// --- schedule tree. Children are visited in the tree's fan order both
// --- ways, keeping the hop sequence deterministic for wire replay.

// treeFanDown pushes words from the tree root to every rank: non-roots
// receive their (private) copy from the parent, then forward to children.
func (c *Comm) treeFanDown(op string, tag int, t *rankTree, words []Word) []Word {
	if t.parent >= 0 {
		words = c.collRecv(op, t.parent, tag)
	}
	for _, ch := range t.children {
		c.collSend(op, ch, tag, words)
	}
	return words
}

// treeGather collects every rank's words at the tree root by concatenating
// self-describing (rank, len, payload) triples up the tree. The root gets
// the full per-rank vector (entries alias the assembled blob); other ranks
// get nil.
func (c *Comm) treeGather(op string, tag int, t *rankTree, words []Word) [][]Word {
	blob := make([]Word, 0, 2+len(words))
	blob = append(blob, Word(c.rank), Word(len(words)))
	blob = append(blob, words...)
	for _, ch := range t.children {
		blob = append(blob, c.collRecv(op, ch, tag)...)
	}
	if t.parent >= 0 {
		c.collSend(op, t.parent, tag, blob)
		return nil
	}
	out := make([][]Word, c.world.size)
	for off := 0; off < len(blob); {
		r, l := int(blob[off]), int(blob[off+1])
		off += 2
		out[r] = blob[off : off+l : off+l]
		off += l
	}
	return out
}

// --- Schedule-dispatched collectives.

func (c *Comm) distBarrier(kind ScheduleKind) {
	if kind == ScheduleFlat {
		c.distGather("barrier", tagBarrier, nil)
		c.distFan("barrier", tagBarrier, nil)
		return
	}
	// Tree barrier (the ring has no latency advantage for empty payloads):
	// reduce-up establishes that every rank arrived, fan-down releases.
	t := c.treeFor(0)
	for _, ch := range t.children {
		c.collRecv("barrier", ch, tagBarrier)
	}
	if t.parent >= 0 {
		c.collSend("barrier", t.parent, tagBarrier, nil)
	}
	c.treeFanDown("barrier", tagBarrier, t, nil)
}

func (c *Comm) distAllreduce(v uint64, op ReduceOp, kind ScheduleKind) uint64 {
	if kind == ScheduleFlat {
		contribs := c.distGather("allreduce", tagAllreduce, []Word{v})
		var res []Word
		if c.rank == 0 {
			acc := contribs[0][0]
			for _, w := range contribs[1:] {
				acc = op.apply(acc, w[0])
			}
			res = []Word{acc}
		}
		return c.distFan("allreduce", tagAllreduce, res)[0]
	}
	// Tree reduction; the ring's bandwidth advantage is meaningless for one
	// word, so ScheduleRing reduces scalars over the tree too. The combine
	// order differs from flat, but every ReduceOp is associative and
	// commutative over uint64, so the result is bit-identical.
	t := c.treeFor(0)
	acc := v
	for _, ch := range t.children {
		acc = op.apply(acc, c.collRecv("allreduce", ch, tagAllreduce)[0])
	}
	if t.parent >= 0 {
		c.collSend("allreduce", t.parent, tagAllreduce, []Word{acc})
	}
	return c.treeFanDown("allreduce", tagAllreduce, t, []Word{acc})[0]
}

func (c *Comm) distAllreduceVec(send, recv []Word, op ReduceOp, kind ScheduleKind) []Word {
	switch kind {
	case ScheduleFlat:
		contribs := c.distGather("allreducevec", tagAllreduceVec, send)
		var res []Word
		if c.rank == 0 {
			res = make([]Word, len(send))
			copy(res, send)
			for _, w := range contribs[1:] {
				if len(w) != len(res) {
					panic(fmt.Sprintf("mpi: allreducevec length mismatch: %d vs %d words", len(w), len(res)))
				}
				for i := range res {
					res[i] = op.apply(res[i], w[i])
				}
			}
		}
		copy(recv, c.distFan("allreducevec", tagAllreduceVec, res))
		return recv
	case ScheduleRing:
		return c.ringAllreduceVec(send, recv, op)
	}
	t := c.treeFor(0)
	acc := make([]Word, len(send))
	copy(acc, send)
	for _, ch := range t.children {
		w := c.collRecv("allreducevec", ch, tagAllreduceVec)
		if len(w) != len(acc) {
			panic(fmt.Sprintf("mpi: allreducevec length mismatch: %d vs %d words", len(w), len(acc)))
		}
		for i := range acc {
			acc[i] = op.apply(acc[i], w[i])
		}
	}
	if t.parent >= 0 {
		c.collSend("allreducevec", t.parent, tagAllreduceVec, acc)
	}
	copy(recv, c.treeFanDown("allreducevec", tagAllreduceVec, t, acc))
	return recv
}

// ringAllreduceVec is the bandwidth-optimal ring: P-1 reduce-scatter steps
// leave each position owning one fully reduced block, P-1 allgather steps
// circulate the reduced blocks. Each rank moves ~2·len/P words per step
// along one ring edge — no root hotspot, total traffic 2·(P-1)/P of the
// vector per link. Block b is recv[b·n/P : (b+1)·n/P) (possibly empty when
// len < P); all arithmetic runs in ring-position space so a topology-aware
// ring order keeps most hops inside a host.
func (c *Comm) ringAllreduceVec(send, recv []Word, op ReduceOp) []Word {
	size := c.world.size
	n := len(send)
	pos, succ, pred := c.ringNeighbors()
	block := func(b int) (lo, hi int) { return b * n / size, (b + 1) * n / size }
	if n > 0 && &recv[0] != &send[0] {
		copy(recv, send)
	}
	for s := 0; s < size-1; s++ {
		olo, ohi := block((pos - s + size) % size)
		c.collSend("allreducevec", succ, tagAllreduceVec, recv[olo:ohi])
		ilo, ihi := block((pos - s - 1 + size) % size)
		w := c.collRecv("allreducevec", pred, tagAllreduceVec)
		if len(w) != ihi-ilo {
			panic(fmt.Sprintf("mpi: allreducevec length mismatch: %d vs %d words", len(w), ihi-ilo))
		}
		for i := range w {
			recv[ilo+i] = op.apply(recv[ilo+i], w[i])
		}
	}
	for s := 0; s < size-1; s++ {
		olo, ohi := block((pos + 1 - s + size) % size)
		c.collSend("allreducevec", succ, tagAllreduceVec, recv[olo:ohi])
		ilo := (pos - s + size) % size
		lo, _ := block(ilo)
		copy(recv[lo:], c.collRecv("allreducevec", pred, tagAllreduceVec))
	}
	return recv
}

func (c *Comm) distAllgather(v uint64, kind ScheduleKind) []uint64 {
	var contribs [][]Word
	var t *rankTree
	if kind == ScheduleFlat {
		contribs = c.distGather("allgather", tagAllgather, []Word{v})
	} else {
		t = c.treeFor(0)
		contribs = c.treeGather("allgather", tagAllgather, t, []Word{v})
	}
	var vec []Word
	if contribs != nil {
		vec = make([]Word, c.world.size)
		for r, w := range contribs {
			vec[r] = w[0]
		}
	}
	var shared []Word
	if kind == ScheduleFlat {
		shared = c.distFan("allgather", tagAllgather, vec)
	} else {
		shared = c.treeFanDown("allgather", tagAllgather, t, vec)
	}
	out := make([]uint64, len(shared))
	copy(out, shared)
	return out
}

func (c *Comm) distBcast(root int, words []Word, kind ScheduleKind) []Word {
	if kind == ScheduleFlat {
		if c.rank == root {
			for r := 0; r < c.world.size; r++ {
				if r != root {
					c.collSend("bcast", r, tagBcast, words)
				}
			}
			return words
		}
		return c.collRecv("bcast", root, tagBcast)
	}
	return c.treeFanDown("bcast", tagBcast, c.treeFor(root), words)
}

func (c *Comm) distAlltoallv(send [][]Word, kind ScheduleKind) [][]Word {
	if kind == ScheduleFlat {
		for j, s := range send {
			if j != c.rank {
				c.collSend("alltoallv", j, tagAlltoallv, s)
			}
		}
		recv := make([][]Word, c.world.size)
		for i := 0; i < c.world.size; i++ {
			if i == c.rank {
				recv[i] = send[i] // local hand-off, owner on both ends
				continue
			}
			recv[i] = c.collRecv("alltoallv", i, tagAlltoallv)
		}
		return recv
	}
	// Stepped pairwise exchange: step s pairs each rank with (rank+s) out
	// and (rank-s) in, so at most one message per rank is outstanding per
	// step instead of P-1 — the personalized payloads cannot be combined,
	// so a tree would only add forwarding bytes. Per-pair payloads are
	// identical to the flat schedule's, which is what keeps replay-based
	// hot replacement content-deterministic per (src, dst) stream.
	size := c.world.size
	recv := make([][]Word, size)
	recv[c.rank] = send[c.rank] // local hand-off, owner on both ends
	for s := 1; s < size; s++ {
		dst := (c.rank + s) % size
		src := (c.rank - s + size) % size
		c.collSend("alltoallv", dst, tagAlltoallv, send[dst])
		recv[src] = c.collRecv("alltoallv", src, tagAlltoallv)
	}
	return recv
}

func (c *Comm) distAllgatherV(words []Word, kind ScheduleKind) [][]Word {
	var contribs [][]Word
	var t *rankTree
	if kind == ScheduleFlat {
		contribs = c.distGather("allgatherv", tagAllgatherv, words)
	} else {
		t = c.treeFor(0)
		contribs = c.treeGather("allgatherv", tagAllgatherv, t, words)
	}
	var flat []Word
	if contribs != nil {
		// Self-describing concatenation: per-rank lengths, then payloads.
		n := c.world.size
		total := 1 + n
		for _, s := range contribs {
			total += len(s)
		}
		flat = make([]Word, 0, total)
		flat = append(flat, Word(n))
		for _, s := range contribs {
			flat = append(flat, Word(len(s)))
		}
		for _, s := range contribs {
			flat = append(flat, s...)
		}
	}
	var shared []Word
	if kind == ScheduleFlat {
		shared = c.distFan("allgatherv", tagAllgatherv, flat)
	} else {
		shared = c.treeFanDown("allgatherv", tagAllgatherv, t, flat)
	}
	n := int(shared[0])
	out := make([][]Word, n)
	off := 1 + n
	for r := 0; r < n; r++ {
		l := int(shared[1+r])
		if r == c.rank {
			out[r] = words
		} else {
			cp := make([]Word, l)
			copy(cp, shared[off:off+l])
			out[r] = cp
		}
		off += l
	}
	return out
}

func (c *Comm) distGatherWord(root int, v uint64, kind ScheduleKind) []uint64 {
	if kind == ScheduleFlat {
		if c.rank != root {
			c.collSend("gather", root, tagGather, []Word{v})
			return nil
		}
		out := make([]uint64, c.world.size)
		out[root] = v
		for r := 0; r < c.world.size; r++ {
			if r != root {
				out[r] = c.collRecv("gather", r, tagGather)[0]
			}
		}
		return out
	}
	contribs := c.treeGather("gather", tagGather, c.treeFor(root), []Word{v})
	if contribs == nil {
		return nil
	}
	out := make([]uint64, c.world.size)
	for r, w := range contribs {
		out[r] = w[0]
	}
	return out
}
