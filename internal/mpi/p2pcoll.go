package mpi

import "fmt"

// Distributed collectives: when a world runs one rank per process over a
// real transport there is no shared collective slot, so every collective is
// composed from point-to-point messages in the reserved tag space above
// collTagBase. The patterns are flat (gather-to-root + broadcast) — the
// worlds this runtime drives are small enough that tree algorithms would
// buy latency nobody measures — but the matching discipline is exactly
// MPI's: every rank calls the same collectives in the same order, and each
// (src, tag) stream is FIFO, so consecutive collectives of the same kind
// never cross-match.
//
// Internal messages deliberately skip the user-level fault gate, the
// drop/delay injectors, and the P2P meters: faults target the collective
// operation as a whole (crash/hang at entry, wire faults at the transport),
// and the collective's logical byte count was already metered at entry, so
// in-process and distributed runs report comparable stats.

// Reserved tags, one per collective kind. Gather and broadcast phases of
// one kind share a tag safely: the two directions are distinct streams.
const (
	tagBarrier = collTagBase + iota
	tagAllreduce
	tagAllgather
	tagAllgatherv
	tagAlltoallv
	tagBcast
	tagGather
	tagAllreduceVec
	tagCkptMarks
)

// collSend pushes an internal collective message.
func (c *Comm) collSend(op string, dest, tag int, words []Word) {
	if dest == c.rank {
		panic("mpi: internal collective self-send")
	}
	c.sendVia(op, dest, tag, words)
}

// collRecv blocks for an internal collective message, bounded by the
// watchdog deadline (fixed or adaptive) when one is in force.
func (c *Comm) collRecv(op string, src, tag int) []Word {
	return c.recvVia(op, src, tag, c.world.curWatchdog()).words
}

// distGather collects every rank's words at rank 0. Rank 0 gets the full
// vector (its own entry aliased, the rest private); other ranks get nil.
func (c *Comm) distGather(op string, tag int, words []Word) [][]Word {
	if c.rank != 0 {
		c.collSend(op, 0, tag, words)
		return nil
	}
	out := make([][]Word, c.world.size)
	out[0] = words
	for r := 1; r < c.world.size; r++ {
		out[r] = c.collRecv(op, r, tag)
	}
	return out
}

// distFan broadcasts words from rank 0 to everyone. Rank 0 passes the
// payload and gets it back; other ranks receive a private copy.
func (c *Comm) distFan(op string, tag int, words []Word) []Word {
	if c.rank == 0 {
		for r := 1; r < c.world.size; r++ {
			c.collSend(op, r, tag, words)
		}
		return words
	}
	return c.collRecv(op, 0, tag)
}

func (c *Comm) distBarrier() {
	c.distGather("barrier", tagBarrier, nil)
	c.distFan("barrier", tagBarrier, nil)
}

func (c *Comm) distAllreduce(v uint64, op ReduceOp) uint64 {
	contribs := c.distGather("allreduce", tagAllreduce, []Word{v})
	var res []Word
	if c.rank == 0 {
		acc := contribs[0][0]
		for _, w := range contribs[1:] {
			acc = op.apply(acc, w[0])
		}
		res = []Word{acc}
	}
	return c.distFan("allreduce", tagAllreduce, res)[0]
}

func (c *Comm) distAllreduceVec(send, recv []Word, op ReduceOp) []Word {
	contribs := c.distGather("allreducevec", tagAllreduceVec, send)
	var res []Word
	if c.rank == 0 {
		res = make([]Word, len(send))
		copy(res, send)
		for _, w := range contribs[1:] {
			if len(w) != len(res) {
				panic(fmt.Sprintf("mpi: allreducevec length mismatch: %d vs %d words", len(w), len(res)))
			}
			for i := range res {
				res[i] = op.apply(res[i], w[i])
			}
		}
	}
	copy(recv, c.distFan("allreducevec", tagAllreduceVec, res))
	return recv
}

func (c *Comm) distAllgather(v uint64) []uint64 {
	contribs := c.distGather("allgather", tagAllgather, []Word{v})
	var vec []Word
	if c.rank == 0 {
		vec = make([]Word, c.world.size)
		for r, w := range contribs {
			vec[r] = w[0]
		}
	}
	shared := c.distFan("allgather", tagAllgather, vec)
	out := make([]uint64, len(shared))
	copy(out, shared)
	return out
}

func (c *Comm) distBcast(root int, words []Word) []Word {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.collSend("bcast", r, tagBcast, words)
			}
		}
		return words
	}
	return c.collRecv("bcast", root, tagBcast)
}

func (c *Comm) distAlltoallv(send [][]Word) [][]Word {
	for j, s := range send {
		if j != c.rank {
			c.collSend("alltoallv", j, tagAlltoallv, s)
		}
	}
	recv := make([][]Word, c.world.size)
	for i := 0; i < c.world.size; i++ {
		if i == c.rank {
			recv[i] = send[i] // local hand-off, owner on both ends
			continue
		}
		recv[i] = c.collRecv("alltoallv", i, tagAlltoallv)
	}
	return recv
}

func (c *Comm) distAllgatherV(words []Word) [][]Word {
	contribs := c.distGather("allgatherv", tagAllgatherv, words)
	var flat []Word
	if c.rank == 0 {
		// Self-describing concatenation: per-rank lengths, then payloads.
		n := c.world.size
		total := 1 + n
		for _, s := range contribs {
			total += len(s)
		}
		flat = make([]Word, 0, total)
		flat = append(flat, Word(n))
		for _, s := range contribs {
			flat = append(flat, Word(len(s)))
		}
		for _, s := range contribs {
			flat = append(flat, s...)
		}
	}
	shared := c.distFan("allgatherv", tagAllgatherv, flat)
	n := int(shared[0])
	out := make([][]Word, n)
	off := 1 + n
	for r := 0; r < n; r++ {
		l := int(shared[1+r])
		if r == c.rank {
			out[r] = words
		} else {
			cp := make([]Word, l)
			copy(cp, shared[off:off+l])
			out[r] = cp
		}
		off += l
	}
	return out
}

func (c *Comm) distGatherWord(root int, v uint64) []uint64 {
	if c.rank != root {
		c.collSend("gather", root, tagGather, []Word{v})
		return nil
	}
	out := make([]uint64, c.world.size)
	out[root] = v
	for r := 0; r < c.world.size; r++ {
		if r != root {
			out[r] = c.collRecv("gather", r, tagGather)[0]
		}
	}
	return out
}
