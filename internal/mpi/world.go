// Package mpi provides a pure-Go SPMD message-passing runtime that stands in
// for MPI in this reproduction. Ranks are goroutines spawned by World.Run;
// they communicate through point-to-point sends/receives and the collectives
// the paper's algorithms use (Barrier, Allreduce, Alltoallv, Allgather,
// Bcast, Gather). Every transfer is metered so that higher layers can report
// communication volume — the quantity the paper's optimizations target.
//
// The runtime is deliberately faithful to MPI's restrictions: only flat
// word buffers travel between ranks, collectives must be called by every
// rank of the communicator in the same order, and received buffers are
// private copies (as if they had crossed a network).
package mpi

import (
	"fmt"
	"sync"
)

// Word is the unit of data movement: one 64-bit column value. It matches
// the tuple column type so relation buffers transmit without conversion.
type Word = uint64

// WordBytes is the wire size of one Word.
const WordBytes = 8

// World is a group of ranks that can communicate. It corresponds to
// MPI_COMM_WORLD: create one per program run, then Run an SPMD body on it.
type World struct {
	size  int
	boxes []*mailbox
	coll  collSlot
	stats *Stats
}

// NewWorld creates a world with the given number of ranks. Size must be at
// least 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:  size,
		boxes: make([]*mailbox, size),
		stats: newStats(size),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.coll.init(size)
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns the world's communication meter. It is valid to read after
// Run returns; snapshots may also be taken mid-run by the ranks themselves.
func (w *World) Stats() *Stats { return w.stats }

// Run executes body once per rank, each on its own goroutine, and waits for
// all of them to finish. It returns the first non-nil error any rank
// returned (by lowest rank number). A panicking rank propagates its panic
// after all other ranks have been given a chance to finish or deadlock is
// detected by the Go runtime.
func (w *World) Run(body func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's handle on the world: the receiver for all
// communication operations. A Comm is only valid on the goroutine Run
// created it for.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the shared communication meter.
func (c *Comm) Stats() *Stats { return c.world.stats }
