// Package mpi provides a pure-Go SPMD message-passing runtime that stands in
// for MPI in this reproduction. Ranks are goroutines spawned by World.Run;
// they communicate through point-to-point sends/receives and the collectives
// the paper's algorithms use (Barrier, Allreduce, Alltoallv, Allgather,
// Bcast, Gather). Every transfer is metered so that higher layers can report
// communication volume — the quantity the paper's optimizations target.
//
// The runtime is deliberately faithful to MPI's restrictions: only flat
// word buffers travel between ranks, collectives must be called by every
// rank of the communicator in the same order, and received buffers are
// private copies (as if they had crossed a network).
//
// Unlike raw MPI, the runtime has a fault story: a panicking rank becomes a
// structured ErrRankFailed delivered to every surviving rank (instead of a
// Go-runtime deadlock in whatever collective the survivors were blocked in),
// an optional watchdog declares ranks that stay absent from an in-progress
// collective dead after a timeout, and a seeded FaultPlan injects crashes,
// hangs, drops, delays, and corruption deterministically for chaos testing.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"paralagg/internal/obs"
)

// Word is the unit of data movement: one 64-bit column value. It matches
// the tuple column type so relation buffers transmit without conversion.
type Word = uint64

// WordBytes is the wire size of one Word.
const WordBytes = 8

// World is a group of ranks that can communicate. It corresponds to
// MPI_COMM_WORLD: create one per program run, then Run an SPMD body on it.
// A world is single-shot with respect to failure: once any rank fails the
// world is poisoned and further Runs return the failure immediately —
// recovery means building a fresh world and restarting from a checkpoint.
type World struct {
	size  int
	boxes []*mailbox
	coll  collSlot
	stats *Stats

	// dist is set on distributed worlds (NewDistributedWorld): this process
	// hosts exactly one rank and every off-process transfer crosses a real
	// Transport. nil means the in-process simulated runtime (memTransport).
	dist *distState

	// sched is the configured collective schedule (SetSchedule); topo the
	// optional rank placement shaping tree and ring construction
	// (SetTopology); traffic the optional observed per-peer byte matrix the
	// similarity tree is built from (SetTraffic). All fixed before Run.
	sched    ScheduleKind
	topo     *Topology
	traffic  [][]int64
	forceP2P bool

	// Fault tolerance state. watchdog is the fixed deadline (SetWatchdog);
	// wd, when non-nil, supersedes it with the EWMA-derived adaptive one.
	plan     *FaultPlan
	fstate   *faultState
	watchdog time.Duration
	wd       *adaptiveWatchdog
	epochs   []atomic.Int64

	// observer, when set, receives a live obs.KindRankFailed event the
	// moment the world is poisoned — failures become visible before the
	// collectives unwind and Run returns.
	observer obs.Observer

	// recovering counts peers the transport declared silent but replaceable
	// (hot rank replacement): while it is non-zero, receive deadlines park
	// instead of failing, so survivors wait out the replacement window. The
	// transport's ReplaceTimeout bounds the park — a peer that never comes
	// back transitions to PeerFailed, which poisons the world and unblocks
	// everything.
	recovering atomic.Int64

	// abort holds the first rank failure; it is set exactly once and then
	// read lock-free from every blocking wait. abortCh closes alongside it
	// so injected hangs (and any other channel-based waits) can unblock.
	abort     atomic.Pointer[ErrRankFailed]
	abortOnce sync.Once
	abortCh   chan struct{}

	// exitMu guards rank exit bookkeeping and the error slots. A rank the
	// watchdog abandoned may exit late (after Run returned); its error write
	// still happens under exitMu and is simply never read.
	exitMu    sync.Mutex
	exitCond  *sync.Cond
	exited    []bool
	abandoned []bool
	errs      []error
}

// NewWorld creates a world with the given number of ranks. Size must be at
// least 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:      size,
		boxes:     make([]*mailbox, size),
		stats:     newStats(size),
		epochs:    make([]atomic.Int64, size),
		abortCh:   make(chan struct{}),
		exited:    make([]bool, size),
		abandoned: make([]bool, size),
		errs:      make([]error, size),
	}
	w.exitCond = sync.NewCond(&w.exitMu)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(w)
	}
	w.coll.init(size)
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns the world's communication meter. It is valid to read after
// Run returns; snapshots may also be taken mid-run by the ranks themselves.
func (w *World) Stats() *Stats { return w.stats }

// SetFaultPlan installs a deterministic fault schedule. It must be called
// before Run.
func (w *World) SetFaultPlan(plan *FaultPlan) {
	w.plan = plan
	w.fstate = newFaultState(plan)
}

// SetWatchdog enables stuck-collective detection: a rank absent from an
// in-progress collective for longer than timeout is declared failed with
// ErrRankFailed{Cause: ErrWatchdogTimeout}, and every blocked peer receives
// the failure instead of deadlocking. Zero disables the watchdog (the
// default). It must be called before Run.
func (w *World) SetWatchdog(timeout time.Duration) { w.watchdog = timeout }

// SetObserver attaches a live event stream for world-level events (rank
// failures). It must be called before Run; nil (the default) is free.
func (w *World) SetObserver(o obs.Observer) { w.observer = o }

// SetSchedule selects the collective schedule (flat, tree, ring, auto) the
// world's collectives route through. It must be called before Run; the
// zero value is the flat star, byte-identical to the pre-schedule runtime.
func (w *World) SetSchedule(k ScheduleKind) { w.sched = k }

// SetTopology installs the rank placement the tree and ring schedules
// shape themselves around. It must be called before Run; nil (the default)
// means a uniform single-host topology.
func (w *World) SetTopology(t *Topology) { w.topo = t }

// ForceP2PCollectives routes every collective through the point-to-point
// composition even on in-process flat worlds, which normally keep the
// shared-memory slot. Benchmarks use it to compare schedule shapes over the
// identical substrate (the memTransport mailboxes, with per-peer byte
// metering); production worlds never need it. It must be called before Run.
func (w *World) ForceP2PCollectives() { w.forceP2P = true }

// SetTraffic installs an observed per-peer byte matrix (entry [i][j] is
// bytes i sent j, as exposed by the per-peer NetStats/RankStats counters of
// a previous run or iteration window): tree schedules then use the
// similarity tree — a maximum-spanning tree over pair traffic — instead of
// the topology tree. It must be called before Run: every rank must build
// the identical tree, so the matrix has to be agreed input, never a
// mid-run rank-local sample.
func (w *World) SetTraffic(m [][]int64) { w.traffic = m }

// newComm builds one rank's communicator, resolving the world's configured
// schedule into the rank's starting schedule state (auto starts on the
// tree and lets the planner's schedule vote move it).
func (w *World) newComm(rank int) *Comm {
	c := &Comm{world: w, rank: rank, sendSeq: make([]int, w.size), sched: w.sched}
	if c.sched == ScheduleAuto {
		c.sched, c.schedAuto = ScheduleTree, true
	}
	if w.traffic != nil {
		c.simMatrix = w.traffic
	}
	return c
}

// Recovering reports whether any peer is parked in the hot-replacement
// window (silent but not yet declared dead).
func (w *World) Recovering() bool { return w.recovering.Load() > 0 }

// fail records the first rank failure, poisons the world, and wakes every
// blocked wait (collective slot, mailboxes, injected hangs) so each blocked
// rank can unwind with the failure. Later failures are ignored: the run is
// already aborting.
func (w *World) fail(rf *ErrRankFailed) {
	if !w.abort.CompareAndSwap(nil, rf) {
		return
	}
	if w.observer != nil {
		e := obs.Get()
		e.Kind = obs.KindRankFailed
		if _, diverged := AsStateDivergence(rf); diverged {
			// A divergence is not a dead rank: every rank raises it together
			// and the supervisor's response is a rollback, not a degrade.
			e.Kind = obs.KindDivergence
		}
		e.Rank, e.Iter = rf.Rank, rf.Iter
		e.Name = rf.Op
		if rf.Cause != nil {
			e.Err = rf.Cause.Error()
		}
		e.End = time.Now().UnixNano()
		obs.Emit(w.observer, e)
	}
	w.abortOnce.Do(func() { close(w.abortCh) })
	w.coll.mu.Lock()
	w.coll.cond.Broadcast()
	w.coll.mu.Unlock()
	for _, box := range w.boxes {
		box.mu.Lock()
		box.cond.Broadcast()
		box.mu.Unlock()
	}
}

// abortPanic unwinds a surviving rank that observed a peer's failure. It is
// distinct from *ErrRankFailed panics, which mark the failing rank itself.
type abortPanic struct{ cause *ErrRankFailed }

// checkAbort panics out of the calling rank if the world is aborting. The
// failed rank itself never calls it (it is already unwinding).
func (w *World) checkAbort() {
	if rf := w.abort.Load(); rf != nil {
		panic(abortPanic{rf})
	}
}

// rankExited records a rank's final error and wakes Run's waiter.
func (w *World) rankExited(rank int, err error) {
	w.exitMu.Lock()
	w.errs[rank] = err
	w.exited[rank] = true
	w.exitMu.Unlock()
	w.exitCond.Broadcast()
}

// abandon marks a rank the watchdog declared dead so Run stops waiting for
// it. The goroutine may still be blocked (a genuinely wedged body cannot be
// killed); if it later unblocks its exit is recorded but no longer observed.
func (w *World) abandon(rank int) {
	w.exitMu.Lock()
	w.abandoned[rank] = true
	w.exitMu.Unlock()
	w.exitCond.Broadcast()
}

// hasExited reports whether a rank's body returned (watchdog helper).
func (w *World) hasExited(rank int) bool {
	w.exitMu.Lock()
	defer w.exitMu.Unlock()
	return w.exited[rank]
}

// Run executes body once per rank, each on its own goroutine, and waits for
// all of them to finish (or be declared dead by the watchdog). It returns
// the errors.Join of every rank's error, so no failure is shadowed by a
// lower-numbered rank's.
//
// A panicking rank no longer takes the process down or deadlocks its peers:
// the panic is recovered into an ErrRankFailed, the world aborts, and every
// rank blocked in a receive or collective unwinds with an error wrapping
// the same failure. Injected faults (SetFaultPlan) and watchdog timeouts
// (SetWatchdog) surface the same way.
func (w *World) Run(body func(c *Comm) error) error {
	if rf := w.abort.Load(); rf != nil {
		return fmt.Errorf("mpi: world already aborted: %w", rf)
	}
	for r := 0; r < w.size; r++ {
		go w.runRank(r, body)
	}

	stopWatchdog := make(chan struct{})
	if w.watchdogEnabled() {
		go w.runWatchdog(stopWatchdog)
	}

	w.exitMu.Lock()
	for {
		done := true
		for r := 0; r < w.size; r++ {
			if !w.exited[r] && !w.abandoned[r] {
				done = false
				break
			}
		}
		if done {
			break
		}
		w.exitCond.Wait()
	}
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		if w.exited[r] {
			errs[r] = w.errs[r]
		} else if w.abandoned[r] {
			if rf := w.abort.Load(); rf != nil && rf.Rank == r {
				errs[r] = rf
			} else {
				errs[r] = fmt.Errorf("mpi: rank %d abandoned by watchdog", r)
			}
		}
	}
	w.exitMu.Unlock()
	if w.watchdogEnabled() {
		close(stopWatchdog)
	}
	return errors.Join(errs...)
}

// runRank executes body as one rank, converting panics into structured
// failures: an *ErrRankFailed marks this rank as the failure, an abortPanic
// unwinds a survivor of someone else's failure, and any other panic value
// becomes a fresh rank failure. It records the rank's exit either way.
func (w *World) runRank(rank int, body func(c *Comm) error) {
	var err error
	defer func() {
		if p := recover(); p != nil {
			switch v := p.(type) {
			case *ErrRankFailed:
				// This rank is the failure (injected crash, declared
				// hang, or argument-validation panic already wrapped).
				err = v
				w.fail(v)
			case abortPanic:
				err = fmt.Errorf("mpi: rank %d aborted: %w", rank, v.cause)
			default:
				rf := &ErrRankFailed{
					Rank: rank, Op: "panic", Iter: int(w.epochs[rank].Load()),
					Cause: fmt.Errorf("panic: %v", p),
				}
				err = rf
				w.fail(rf)
			}
		}
		w.rankExited(rank, err)
	}()
	err = body(w.newComm(rank))
}

// runWatchdog polls the collective slot for ranks that stay absent from an
// in-progress collective. Two conditions declare a missing rank dead: its
// body already returned (it can never arrive), or no rank has arrived for
// longer than the timeout (it is wedged or hung). The declared failure
// aborts the world, converting what would be a permanent deadlock of every
// arrived rank into ErrRankFailed on all of them.
func (w *World) runWatchdog(stop chan struct{}) {
	tick := w.watchdogFloor() / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.abortCh:
			return
		case <-ticker.C:
		}
		s := &w.coll
		s.mu.Lock()
		arrived, kind, gen, last := s.arrived, s.kind, s.gen, s.lastArrival
		var missing []int
		if arrived > 0 && arrived < w.size {
			for r := 0; r < w.size; r++ {
				if s.contrib[r] == nil {
					missing = append(missing, r)
				}
			}
		}
		s.mu.Unlock()
		if len(missing) == 0 {
			continue
		}
		stuck := time.Since(last) > w.curWatchdog()
		for _, r := range missing {
			if !stuck && !w.hasExited(r) {
				continue
			}
			// Re-confirm under the lock that the same collective is still in
			// progress and the rank is still absent: it may have arrived (and
			// the collective completed) since the sample above.
			s.mu.Lock()
			still := s.gen == gen && s.arrived > 0 && s.contrib[r] == nil
			s.mu.Unlock()
			if !still {
				break
			}
			rf := &ErrRankFailed{Rank: r, Op: kind, Iter: int(w.epochs[r].Load()), Cause: ErrWatchdogTimeout}
			w.abandon(r)
			w.fail(rf)
			return
		}
	}
}

// Comm is one rank's handle on the world: the receiver for all
// communication operations. A Comm is only valid on the goroutine Run
// created it for.
type Comm struct {
	world   *World
	rank    int
	sendSeq []int // per-destination p2p sequence numbers (fault determinism)

	// recvRows is the reusable per-rank header for Alltoallv results: the
	// outer slice is recycled across calls (the payload rows it points at
	// are still private per call). See Alltoallv's ownership contract.
	recvRows [][]Word

	// Collective schedule state (see schedule.go). sched is the schedule in
	// force (auto resolves to a concrete kind, re-voted by the planner);
	// trees caches this rank's tree view per root; ringOrd/ringPos cache
	// the ring order; simMatrix, when set, replaces the topology tree with
	// the traffic-similarity tree; lastVecWords is the most recent
	// AllreduceVec payload length, the auto vote's ring signal.
	sched        ScheduleKind
	schedAuto    bool
	trees        map[int]*rankTree
	ringOrd      []int
	ringPos      int
	simMatrix    [][]int64
	lastVecWords int
}

// recvHeader returns the rank-private outer slice for a vector collective
// result, recycled across calls.
func (c *Comm) recvHeader(size int) [][]Word {
	if cap(c.recvRows) < size {
		c.recvRows = make([][]Word, size)
	}
	c.recvRows = c.recvRows[:size]
	return c.recvRows
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the shared communication meter.
func (c *Comm) Stats() *Stats { return c.world.stats }

// SetEpoch publishes this rank's current fixpoint iteration to the fault
// layer: injected faults can target a specific iteration, and failure
// errors report the iteration the rank had reached. The fixpoint driver
// calls it at the top of every iteration; the timekeeper rank's epoch
// transitions additionally feed the adaptive watchdog's iteration-time
// EWMA.
func (c *Comm) SetEpoch(iter int) {
	w := c.world
	prev := w.epochs[c.rank].Swap(int64(iter))
	if w.wd != nil && prev != int64(iter) && c.rank == w.timekeeper() {
		w.wd.observe(time.Now().UnixNano())
	}
}

// Epoch returns the last value passed to SetEpoch (0 before any call).
func (c *Comm) Epoch() int { return int(c.world.epochs[c.rank].Load()) }

// enter is the fault gate every communication operation passes through: it
// aborts the rank if the world is poisoned, then consults the fault plan
// for an injected crash or hang at this (rank, epoch, op) point.
func (c *Comm) enter(op string) {
	w := c.world
	w.checkAbort()
	if w.fstate == nil {
		return
	}
	iter := c.Epoch()
	if w.fstate.crashNow(c.rank, iter, op) {
		panic(&ErrRankFailed{Rank: c.rank, Op: op, Iter: iter, Cause: ErrInjectedCrash})
	}
	if w.fstate.hangNow(c.rank, iter, op) {
		// Hang until the run aborts (typically because the watchdog declares
		// this rank dead), then die with whatever failure was declared.
		<-w.abortCh
		rf := w.abort.Load()
		if rf != nil && rf.Rank == c.rank {
			panic(rf)
		}
		panic(abortPanic{rf})
	}
}

// validRank panics with a descriptive ErrRankFailed-convertible message when
// a peer/root argument is out of range. The panic names the op, the calling
// rank, and the bad value, and World.Run recovers it into an error.
func (c *Comm) validRank(op string, v int) {
	if v < 0 || v >= c.world.size {
		panic(fmt.Sprintf("mpi: %s on rank %d: peer rank %d out of range [0, %d)",
			op, c.rank, v, c.world.size))
	}
}
