package mpi

import (
	"fmt"
	"sync"
	"time"
)

// collSlot synchronizes one collective operation at a time across all ranks
// of a world. Collectives are matched by arrival order, exactly as in MPI:
// every rank must call the same collective in the same sequence. The slot is
// generation-counted so consecutive collectives reuse it safely. The
// per-arrival bookkeeping (lastArrival, contrib occupancy) doubles as the
// watchdog's view of which ranks are absent from a stuck collective.
type collSlot struct {
	mu          sync.Mutex
	cond        *sync.Cond
	gen         uint64
	arrived     int
	kind        string
	lastArrival time.Time
	contrib     []interface{}
	result      interface{}
}

func (s *collSlot) init(size int) {
	s.cond = sync.NewCond(&s.mu)
	s.contrib = make([]interface{}, size)
}

// run deposits rank's contribution and blocks until all ranks of the world
// have arrived; the last arrival computes the shared result with complete
// and wakes everyone. The same result value is returned to every rank. A
// waiting rank unwinds with the failure if the world aborts — peers of a
// crashed rank never deadlock here.
func (s *collSlot) run(w *World, rank int, kind string, contribution interface{}, complete func(contribs []interface{}) interface{}) interface{} {
	size := w.size
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arrived == 0 {
		s.kind = kind
	} else if s.kind != kind {
		panic(fmt.Sprintf("mpi: collective mismatch: rank %d called %s while %s in progress", rank, kind, s.kind))
	}
	if s.contrib[rank] != nil {
		panic(fmt.Sprintf("mpi: rank %d called %s twice in one collective generation", rank, kind))
	}
	s.contrib[rank] = contribution
	s.arrived++
	s.lastArrival = time.Now()
	if s.arrived == size {
		s.result = complete(s.contrib)
		for i := range s.contrib {
			s.contrib[i] = nil
		}
		s.arrived = 0
		s.gen++
		s.cond.Broadcast()
		return s.result
	}
	myGen := s.gen
	for s.gen == myGen {
		w.checkAbort()
		s.cond.Wait()
	}
	return s.result
}

// nonNil wraps a contribution so the double-arrival check works even for
// nil payloads (e.g. Barrier).
type unit struct{}

// p2pColl reports whether this collective call routes through the
// point-to-point composition in p2pcoll.go: always on distributed worlds
// (no shared slot exists), and on in-process worlds running a non-flat
// schedule — the memTransport mailboxes carry the same hops, so every
// schedule is exercised without sockets. In-process flat worlds keep the
// shared-memory slot, preserving the original (and allocation-lean)
// default path byte for byte.
func (c *Comm) p2pColl() bool {
	return c.world.dist != nil || (c.world.forceP2P || c.sched != ScheduleFlat) && c.world.size > 1
}

// Barrier blocks until every rank in the world has called it.
func (c *Comm) Barrier() { c.barrierVia(c.sched) }

// barrierVia is Barrier with an explicit schedule: the checkpoint path
// (CheckpointBarrier) forces the flat star regardless of the world's
// schedule because the wire-mark cut argument depends on its shape.
func (c *Comm) barrierVia(kind ScheduleKind) {
	c.enter("barrier")
	c.world.stats.addCollective(c.rank, "barrier", 0)
	if c.world.dist != nil || (c.world.forceP2P || kind != ScheduleFlat) && c.world.size > 1 {
		c.distBarrier(kind)
		return
	}
	if c.world.size == 1 {
		return
	}
	c.world.coll.run(c.world, c.rank, "barrier", unit{}, func([]interface{}) interface{} { return unit{} })
}

// ReduceOp is a binary reduction used by Allreduce.
type ReduceOp int

// The reduction operators the runtime supports, mirroring MPI_SUM and
// friends.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b uint64) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("mpi: unknown reduce op %d", int(op)))
}

// Allreduce combines one word from each rank with op and returns the result
// to all ranks. This is the paper's join-order voting primitive
// (Algorithm 1): a single small word per rank, latency-bound.
func (c *Comm) Allreduce(v uint64, op ReduceOp) uint64 {
	c.enter("allreduce")
	c.world.stats.addCollective(c.rank, "allreduce", WordBytes)
	if c.p2pColl() {
		return c.distAllreduce(v, op, c.sched)
	}
	if c.world.size == 1 {
		// Single-rank worlds skip the slot (and the interface boxing it
		// costs): the reduction of one contribution is the contribution.
		return v
	}
	res := c.world.coll.run(c.world, c.rank, "allreduce", v, func(contribs []interface{}) interface{} {
		acc := contribs[0].(uint64)
		for _, x := range contribs[1:] {
			acc = op.apply(acc, x.(uint64))
		}
		return acc
	})
	return res.(uint64)
}

// AllreduceVec combines equal-length word vectors from every rank
// elementwise with op and writes the agreed result into recv, which must
// have the same length as send (the two may alias). It returns recv.
//
// The point of the vector form is piggybacking: the integrity layer rides
// its per-relation state digests on the same agreement round the
// convergence count uses, so online divergence detection costs no extra
// collective. One round regardless of vector length.
func (c *Comm) AllreduceVec(send, recv []Word, op ReduceOp) []Word {
	c.enter("allreducevec")
	if len(send) != len(recv) {
		panic(fmt.Sprintf("mpi: allreducevec on rank %d: send %d words, recv %d",
			c.rank, len(send), len(recv)))
	}
	c.world.stats.addCollective(c.rank, "allreducevec", len(send)*WordBytes)
	// The observed payload length is the auto schedule's ring signal (see
	// ScheduleVote); recorded on every path, a plain field write.
	c.lastVecWords = len(send)
	if c.p2pColl() {
		return c.distAllreduceVec(send, recv, op, c.sched)
	}
	if c.world.size == 1 {
		// Single-rank worlds skip the slot (and the boxing it costs): the
		// hot-path alloc guarantees rely on this, exactly as in Allreduce.
		copy(recv, send)
		return recv
	}
	res := c.world.coll.run(c.world, c.rank, "allreducevec", send, func(contribs []interface{}) interface{} {
		first := contribs[0].([]Word)
		acc := make([]Word, len(first))
		copy(acc, first)
		for _, x := range contribs[1:] {
			v := x.([]Word)
			if len(v) != len(acc) {
				panic(fmt.Sprintf("mpi: allreducevec length mismatch: %d vs %d words", len(v), len(acc)))
			}
			for i := range acc {
				acc[i] = op.apply(acc[i], v[i])
			}
		}
		return acc
	})
	// Every rank copies the shared result into its private buffer before the
	// next collective can reuse the slot; senders regain ownership of their
	// send slices here, as everywhere else in the runtime.
	copy(recv, res.([]Word))
	return recv
}

// Allgather collects one word from each rank and returns the full vector,
// indexed by rank, to every rank.
func (c *Comm) Allgather(v uint64) []uint64 {
	c.enter("allgather")
	c.world.stats.addCollective(c.rank, "allgather", WordBytes)
	if c.p2pColl() {
		return c.distAllgather(v, c.sched)
	}
	if c.world.size == 1 {
		return []uint64{v}
	}
	res := c.world.coll.run(c.world, c.rank, "allgather", v, func(contribs []interface{}) interface{} {
		out := make([]uint64, len(contribs))
		for i, x := range contribs {
			out[i] = x.(uint64)
		}
		return out
	})
	return res.([]uint64)
}

// Bcast distributes root's words to every rank. Non-root ranks pass nil.
// Every rank receives a private copy.
func (c *Comm) Bcast(root int, words []Word) []Word {
	kind := "bcast"
	c.enter(kind)
	c.validRank(kind, root)
	var contribution interface{} = unit{}
	if c.rank == root {
		contribution = words
		c.world.stats.addCollective(c.rank, kind, len(words)*WordBytes*(c.world.size-1))
	} else {
		c.world.stats.addCollective(c.rank, kind, 0)
	}
	if c.p2pColl() {
		return c.distBcast(root, words, c.sched)
	}
	if c.world.size == 1 {
		return words
	}
	res := c.world.coll.run(c.world, c.rank, kind, contribution, func(contribs []interface{}) interface{} {
		w, ok := contribs[root].([]Word)
		if !ok {
			panic("mpi: Bcast root passed no data")
		}
		// Snapshot the payload: the root regains ownership of its slice as
		// soon as it returns, so the slot must hold the "on the wire" copy.
		cp := make([]Word, len(w))
		copy(cp, w)
		return cp
	})
	shared := res.([]Word)
	if c.rank == root {
		return words
	}
	cp := make([]Word, len(shared))
	copy(cp, shared)
	return cp
}

// Alltoallv performs the personalized all-to-all exchange at the heart of
// tuple redistribution: send[j] goes to rank j; the return value's entry i
// holds the words received from rank i. The diagonal (self) transfer is
// local and not metered.
//
// Ownership: off-diagonal received rows are private copies, but the outer
// slice (and, as always in MPI, the diagonal row, which is handed off from
// send) is recycled on this rank's next Alltoallv call — consume the result
// before calling again, as a real MPI receive buffer would require.
func (c *Comm) Alltoallv(send [][]Word) [][]Word {
	c.enter("alltoallv")
	if len(send) != c.world.size {
		panic(fmt.Sprintf("mpi: alltoallv on rank %d: %d destination slots in world of %d",
			c.rank, len(send), c.world.size))
	}
	bytes := 0
	for j, s := range send {
		if j != c.rank {
			bytes += len(s) * WordBytes
		}
	}
	c.world.stats.addCollective(c.rank, "alltoallv", bytes)
	if c.p2pColl() {
		return c.distAlltoallv(send, c.sched)
	}
	if c.world.size == 1 {
		recv := c.recvHeader(1)
		recv[0] = send[0] // local hand-off, as on the multi-rank diagonal
		return recv
	}
	res := c.world.coll.run(c.world, c.rank, "alltoallv", send, func(contribs []interface{}) interface{} {
		// Snapshot every off-diagonal payload at the synchronization point:
		// senders regain ownership of their buffers as soon as they return,
		// so the slot must hold "on the wire" copies. Each off-diagonal
		// entry is read by exactly one receiver, so these copies can be
		// handed out without further copying.
		matrix := make([][][]Word, len(contribs))
		for i, x := range contribs {
			row := x.([][]Word)
			cp := make([][]Word, len(row))
			for j, s := range row {
				if i == j {
					cp[j] = row[j] // local hand-off, owner on both ends
					continue
				}
				c := make([]Word, len(s))
				copy(c, s)
				cp[j] = c
			}
			matrix[i] = cp
		}
		return matrix
	})
	matrix := res.([][][]Word)
	// The last arriver has fully read every contribution (including this
	// rank's recycled header, when the caller fed a previous result back in)
	// before any rank resumes, so reusing the header here is race-free.
	recv := c.recvHeader(c.world.size)
	for i := 0; i < c.world.size; i++ {
		recv[i] = matrix[i][c.rank]
	}
	return recv
}

// AllgatherV collects a variable-length word vector from each rank and
// returns all of them, indexed by rank, to every rank. It implements the
// paper's outer-relation replication within a bucket when sub-bucket groups
// span the whole world.
func (c *Comm) AllgatherV(words []Word) [][]Word {
	c.enter("allgatherv")
	c.world.stats.addCollective(c.rank, "allgatherv", len(words)*WordBytes*(c.world.size-1))
	if c.p2pColl() {
		return c.distAllgatherV(words, c.sched)
	}
	if c.world.size == 1 {
		return [][]Word{words}
	}
	res := c.world.coll.run(c.world, c.rank, "allgatherv", words, func(contribs []interface{}) interface{} {
		// Snapshot each contribution (see Alltoallv): the owner may reuse
		// its buffer immediately after returning.
		out := make([][]Word, len(contribs))
		for i, x := range contribs {
			s := x.([]Word)
			cp := make([]Word, len(s))
			copy(cp, s)
			out[i] = cp
		}
		return out
	})
	shared := res.([][]Word)
	out := make([][]Word, len(shared))
	for i, s := range shared {
		if i == c.rank {
			out[i] = words
			continue
		}
		cp := make([]Word, len(s))
		copy(cp, s)
		out[i] = cp
	}
	return out
}

// Gather collects one word from each rank at root. Non-root ranks receive
// nil.
func (c *Comm) Gather(root int, v uint64) []uint64 {
	c.enter("gather")
	c.validRank("gather", root)
	c.world.stats.addCollective(c.rank, "gather", WordBytes)
	if c.p2pColl() {
		return c.distGatherWord(root, v, c.sched)
	}
	if c.world.size == 1 {
		return []uint64{v}
	}
	res := c.world.coll.run(c.world, c.rank, "gather", v, func(contribs []interface{}) interface{} {
		out := make([]uint64, len(contribs))
		for i, x := range contribs {
			out[i] = x.(uint64)
		}
		return out
	})
	if c.rank != root {
		return nil
	}
	return res.([]uint64)
}
