package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Satellite coverage: every collective, at 2/4/8/16 ranks, under every
// collective schedule (flat star, topology-aware tree, ring), with
// point-to-point traffic riding alongside under deterministic delay and drop
// plans. Delays must be invisible to the results; drops must surface as
// structured failures, never hangs or wrong answers.

// testSchedules are the concrete schedules every collective test sweeps.
var testSchedules = []ScheduleKind{ScheduleFlat, ScheduleTree, ScheduleRing}

// splitTopology fakes a two-host placement (first half / second half) so the
// tree tests exercise the two-level topology-aware shape, not just the plain
// binomial.
func splitTopology(n int) *Topology {
	hosts := make([]string, n)
	for i := range hosts {
		if i < n/2 {
			hosts[i] = "hostA"
		} else {
			hosts[i] = "hostB"
		}
	}
	return TopologyFromHosts(hosts)
}

// allPairDelays builds a Delay spec for every ordered rank pair.
func allPairDelays(n int, frac float64, max time.Duration) []Delay {
	var ds []Delay
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ds = append(ds, Delay{From: i, To: j, Frac: frac, Max: max})
			}
		}
	}
	return ds
}

// collectiveSuite exercises all seven collectives plus a delayed p2p ring
// and asserts every result against its closed form.
func collectiveSuite(t *testing.T, c *Comm) error {
	n, r := c.Size(), c.Rank()
	c.SetEpoch(0)

	if got, want := c.Allreduce(uint64(r+1), OpSum), uint64(n*(n+1)/2); got != want {
		return fmt.Errorf("rank %d: allreduce sum = %d, want %d", r, got, want)
	}
	if got, want := c.Allreduce(uint64(r), OpMax), uint64(n-1); got != want {
		return fmt.Errorf("rank %d: allreduce max = %d, want %d", r, got, want)
	}
	ag := c.Allgather(uint64(r * r))
	for i, v := range ag {
		if v != uint64(i*i) {
			return fmt.Errorf("rank %d: allgather[%d] = %d, want %d", r, i, v, i*i)
		}
	}
	root := n / 2
	var bpay []Word
	if r == root {
		bpay = []Word{7, 8, 9}
	}
	b := c.Bcast(root, bpay)
	if len(b) != 3 || b[0] != 7 || b[2] != 9 {
		return fmt.Errorf("rank %d: bcast got %v", r, b)
	}
	send := make([][]Word, n)
	for j := range send {
		send[j] = []Word{Word(r*100 + j)}
	}
	recv := c.Alltoallv(send)
	for i := range recv {
		if len(recv[i]) != 1 || recv[i][0] != Word(i*100+r) {
			return fmt.Errorf("rank %d: alltoallv from %d got %v", r, i, recv[i])
		}
	}
	mine := make([]Word, r+1) // ragged contribution
	for i := range mine {
		mine[i] = Word(r*10 + i)
	}
	agv := c.AllgatherV(mine)
	for i := range agv {
		if len(agv[i]) != i+1 {
			return fmt.Errorf("rank %d: allgatherv[%d] has %d words, want %d", r, i, len(agv[i]), i+1)
		}
		for k, v := range agv[i] {
			if v != Word(i*10+k) {
				return fmt.Errorf("rank %d: allgatherv[%d][%d] = %d", r, i, k, v)
			}
		}
	}
	g := c.Gather(0, uint64(r+5))
	if r == 0 {
		for i, v := range g {
			if v != uint64(i+5) {
				return fmt.Errorf("rank 0: gather[%d] = %d, want %d", i, v, i+5)
			}
		}
	}
	// A p2p ring between collectives, its messages subject to the delays.
	next, prev := (r+1)%n, (r+n-1)%n
	c.Send(next, 9, []Word{Word(r)})
	words, _ := c.Recv(prev, 9)
	if len(words) != 1 || words[0] != Word(prev) {
		return fmt.Errorf("rank %d: ring recv got %v, want [%d]", r, words, prev)
	}
	c.Barrier()
	return nil
}

func TestCollectiveSuiteUnderDelays(t *testing.T) {
	// 3 and 6 ride along: non-power-of-two sizes are where tree shapes break.
	for _, n := range []int{2, 3, 4, 6, 8, 16} {
		for _, sched := range testSchedules {
			t.Run(fmt.Sprintf("ranks=%d/%s", n, sched), func(t *testing.T) {
				w := NewWorld(n)
				w.SetSchedule(sched)
				if sched != ScheduleFlat {
					w.SetTopology(splitTopology(n))
				}
				w.SetFaultPlan(&FaultPlan{
					Seed:   31,
					Delays: allPairDelays(n, 0.8, 2*time.Millisecond),
				})
				if err := w.Run(func(c *Comm) error { return collectiveSuite(t, c) }); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestCollectiveSuiteUnderDropsFailsStructurally(t *testing.T) {
	// Drops cannot silently skew a result: the blocked receive times out
	// into an ErrRankFailed every rank observes.
	for _, n := range []int{2, 4, 8, 16} {
		for _, sched := range testSchedules {
			t.Run(fmt.Sprintf("ranks=%d/%s", n, sched), func(t *testing.T) {
				w := NewWorld(n)
				w.SetSchedule(sched)
				w.SetFaultPlan(&FaultPlan{
					Seed:  32,
					Drops: []Drop{{From: 0, To: n - 1, Frac: 1}},
				})
				w.SetWatchdog(100 * time.Millisecond)
				err := w.Run(func(c *Comm) error {
					c.Allreduce(1, OpSum) // collectives around the doomed exchange
					if c.Rank() == 0 {
						c.Send(n-1, 4, []Word{1})
					}
					if c.Rank() == n-1 {
						c.Recv(0, 4)
						t.Error("dropped message was received")
					}
					c.Barrier()
					return nil
				})
				rf, ok := AsRankFailure(err)
				if !ok {
					t.Fatalf("err = %v, want structured rank failure", err)
				}
				if !errors.Is(rf, ErrRecvTimeout) && !errors.Is(rf, ErrWatchdogTimeout) {
					t.Errorf("failure %v names neither the recv timeout nor the stalled collective", rf)
				}
			})
		}
	}
}

// fuzzWords derives a deterministic ragged payload for the (round, src,
// dst) cell: length in [0, 17), contents hashed from the coordinates.
func fuzzWords(seed int64, round, src, dst int) []Word {
	n := int(faultHash(seed, 0x77, round, src, dst) % 17)
	ws := make([]Word, n)
	for i := range ws {
		ws[i] = Word(faultHash(seed, 0x78, round*1000+i, src, dst))
	}
	return ws
}

func TestAlltoallvRoundTripFuzz(t *testing.T) {
	// Property: alltoallv is a matrix transpose. Sending the received
	// matrix back must reproduce the original send matrix exactly — for
	// ragged, hash-random per-peer payload sizes (empty rows included),
	// across several rounds, at 2/4/8/16 ranks under every schedule, with
	// message delays active.
	const rounds = 6
	for _, n := range []int{2, 4, 8, 16} {
		for _, sched := range testSchedules {
			t.Run(fmt.Sprintf("ranks=%d/%s", n, sched), func(t *testing.T) {
				w := NewWorld(n)
				w.SetSchedule(sched)
				if sched != ScheduleFlat {
					w.SetTopology(splitTopology(n))
				}
				w.SetFaultPlan(&FaultPlan{
					Seed:   33,
					Delays: allPairDelays(n, 0.5, time.Millisecond),
				})
				err := w.Run(func(c *Comm) error {
					for round := 0; round < rounds; round++ {
						c.SetEpoch(round)
						send := make([][]Word, n)
						for dst := range send {
							send[dst] = fuzzWords(33, round, c.Rank(), dst)
						}
						recv := c.Alltoallv(send)
						for src := range recv {
							want := fuzzWords(33, round, src, c.Rank())
							if len(recv[src]) != len(want) {
								return fmt.Errorf("round %d rank %d: from %d got %d words, want %d",
									round, c.Rank(), src, len(recv[src]), len(want))
							}
							for i := range want {
								if recv[src][i] != want[i] {
									return fmt.Errorf("round %d rank %d: word %d from %d = %#x, want %#x",
										round, c.Rank(), i, src, recv[src][i], want[i])
								}
							}
						}
						// The way back: return everything to its sender.
						back := c.Alltoallv(recv)
						for dst := range back {
							orig := fuzzWords(33, round, c.Rank(), dst)
							if len(back[dst]) != len(orig) {
								return fmt.Errorf("round %d rank %d: round-trip to %d lost words: %d != %d",
									round, c.Rank(), dst, len(back[dst]), len(orig))
							}
							for i := range orig {
								if back[dst][i] != orig[i] {
									return fmt.Errorf("round %d rank %d: round-trip word %d to %d corrupted",
										round, c.Rank(), i, dst)
								}
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestAllreduceVecFuzz(t *testing.T) {
	// Property: AllreduceVec over OpSum/OpMax matches the closed form every
	// rank can compute locally (contributions are hashed from (round, rank,
	// index), so every rank knows everyone's input). Vector lengths straddle
	// the ring crossover so the ring schedule's reduce-scatter/allgather path
	// runs for real, including the ragged final block.
	lengths := []int{1, 7, ringMinWords, ringMinWords + 13}
	for _, n := range []int{2, 4, 8, 16} {
		for _, sched := range testSchedules {
			t.Run(fmt.Sprintf("ranks=%d/%s", n, sched), func(t *testing.T) {
				w := NewWorld(n)
				w.SetSchedule(sched)
				if sched != ScheduleFlat {
					w.SetTopology(splitTopology(n))
				}
				w.SetFaultPlan(&FaultPlan{
					Seed:   34,
					Delays: allPairDelays(n, 0.4, time.Millisecond),
				})
				err := w.Run(func(c *Comm) error {
					for round, words := range lengths {
						c.SetEpoch(round)
						send := make([]Word, words)
						for i := range send {
							send[i] = faultHash(34, 0x7a, round*100000+i, c.Rank(), 0) >> 8
						}
						recv := make([]Word, words)
						c.AllreduceVec(send, recv, OpSum)
						for i := range recv {
							var want Word
							for r := 0; r < n; r++ {
								want += faultHash(34, 0x7a, round*100000+i, r, 0) >> 8
							}
							if recv[i] != want {
								return fmt.Errorf("round %d rank %d: sum[%d] = %#x, want %#x",
									round, c.Rank(), i, recv[i], want)
							}
						}
						c.AllreduceVec(send, recv, OpMax)
						for i := range recv {
							var want Word
							for r := 0; r < n; r++ {
								if v := faultHash(34, 0x7a, round*100000+i, r, 0) >> 8; v > want {
									want = v
								}
							}
							if recv[i] != want {
								return fmt.Errorf("round %d rank %d: max[%d] = %#x, want %#x",
									round, c.Rank(), i, recv[i], want)
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
