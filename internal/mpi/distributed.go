package mpi

import (
	"fmt"
	"time"

	"paralagg/internal/obs"
)

// Distributed execution: one OS process per rank, a real Transport between
// them. The same World/Comm surface the in-process runtime exposes runs
// unchanged — point-to-point transfers cross the transport, collectives are
// composed from point-to-point messages (p2pcoll.go), and a peer the
// transport's failure detector declares dead surfaces as the same
// structured ErrRankFailed the simulated runtime produces, so checkpoint
// recovery and supervision work identically over real sockets.

// distState is the distributed half of a World: the process-local rank and
// the wire it speaks through.
type distState struct {
	tr   Transport
	self int
}

// NewDistributedWorld builds a world that runs over t: this process hosts
// rank t.Self() of a t.Size()-rank world. The world is single-shot, exactly
// like the in-process one — recovery means a fresh transport and a fresh
// world. SetFaultPlan and SetWatchdog apply as usual; the watchdog timeout
// doubles as the per-receive deadline (there is no shared collective slot
// to poll across processes).
func NewDistributedWorld(t Transport) *World {
	w := NewWorld(t.Size())
	w.dist = &distState{tr: t, self: t.Self()}
	w.stats.setNetProbe(t.Net)
	return w
}

// Self returns the local rank of a distributed world (0 for in-process
// worlds, which host every rank).
func (w *World) Self() int {
	if w.dist == nil {
		return 0
	}
	return w.dist.self
}

// Distributed reports whether this world runs one rank per process over a
// real transport.
func (w *World) Distributed() bool { return w.dist != nil }

// distHandler adapts transport events to the world: messages land in the
// local mailbox, peer deaths poison the world so every blocked operation
// unwinds with a structured failure.
type distHandler struct{ w *World }

func (h distHandler) Deliver(src, tag int, words []Word) {
	// The transport verified frame integrity on the wire; the local checksum
	// keeps Recv's end-to-end verification uniform across transports.
	h.w.boxes[h.w.dist.self].put(message{src: src, tag: tag, words: words, crc: ChecksumWords(words)})
}

func (h distHandler) PeerFailed(rank int, cause error) {
	w := h.w
	w.fail(&ErrRankFailed{
		Rank: rank, Op: "transport", Iter: int(w.epochs[w.dist.self].Load()),
		Cause: cause,
	})
}

// PeerRecovering implements RecoveryHandler: a silent peer enters the hot
// replacement window. The world does not fail — receive deadlines park
// (Recovering) until the transport either re-admits the peer or gives up
// and calls PeerFailed.
func (h distHandler) PeerRecovering(rank int, cause error) {
	w := h.w
	w.recovering.Add(1)
	if w.observer != nil {
		e := obs.Get()
		e.Kind = obs.KindRankRecovering
		e.Rank = rank
		e.Iter = int(w.epochs[w.dist.self].Load())
		if cause != nil {
			e.Err = cause.Error()
		}
		e.End = time.Now().UnixNano()
		obs.Emit(w.observer, e)
	}
}

// PeerRecovered implements RecoveryHandler: a replacement incarnation (or
// the original peer, merely slow) was re-admitted; the park lifts.
func (h distHandler) PeerRecovered(rank int) {
	w := h.w
	w.recovering.Add(-1)
	if w.observer != nil {
		e := obs.Get()
		e.Kind = obs.KindRankRecovered
		e.Rank = rank
		e.Iter = int(w.epochs[w.dist.self].Load())
		e.End = time.Now().UnixNano()
		obs.Emit(w.observer, e)
	}
}

// RunLocal starts the transport and executes body as this process's single
// rank, blocking until it finishes. Panics and injected faults convert to
// errors exactly as in Run; a peer failure reported by the transport aborts
// the local rank with an error wrapping the peer's ErrRankFailed. The
// caller owns the transport: Close it (gracefully) after RunLocal returns,
// or Kill-style teardown on a failed run.
func (w *World) RunLocal(body func(c *Comm) error) error {
	if w.dist == nil {
		panic("mpi: RunLocal on a non-distributed world (use Run)")
	}
	if rf := w.abort.Load(); rf != nil {
		return fmt.Errorf("mpi: world already aborted: %w", rf)
	}
	if err := w.dist.tr.Start(distHandler{w}); err != nil {
		return fmt.Errorf("mpi: rank %d transport start: %w", w.dist.self, err)
	}
	rank := w.dist.self
	go w.runRank(rank, body)
	w.exitMu.Lock()
	for !w.exited[rank] {
		w.exitCond.Wait()
	}
	err := w.errs[rank]
	w.exitMu.Unlock()
	return err
}
