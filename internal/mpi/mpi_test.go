package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	w := NewWorld(8)
	var mask uint64
	err := w.Run(func(c *Comm) error {
		atomic.OrUint64(&mask, 1<<uint(c.Rank()))
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask != 0xff {
		t.Fatalf("rank mask = %#x, want 0xff", mask)
	}
}

func TestRunReturnsRankError(t *testing.T) {
	w := NewWorld(4)
	boom := errors.New("rank 2 failed")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want it to wrap %v", err, boom)
	}
}

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []Word{10, 20, 30})
			return nil
		}
		words, from := c.Recv(0, 7)
		if from != 0 {
			t.Errorf("from = %d", from)
		}
		if len(words) != 3 || words[2] != 30 {
			t.Errorf("words = %v", words)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []Word{1}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the in-flight message
			c.Barrier()
			return nil
		}
		c.Barrier()
		words, _ := c.Recv(0, 0)
		if words[0] != 1 {
			t.Errorf("payload mutated in flight: %v", words)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []Word{111})
			c.Send(1, 2, []Word{222})
			return nil
		}
		// Receive out of send order: tag 2 first.
		w2, _ := c.Recv(0, 2)
		w1, _ := c.Recv(0, 1)
		if w2[0] != 222 || w1[0] != 111 {
			t.Errorf("tag matching broken: %v %v", w1, w2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 5, []Word{Word(c.Rank())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			words, from := c.Recv(AnySource, 5)
			if int(words[0]) != from {
				t.Errorf("payload %v does not match source %d", words, from)
			}
			seen[from] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("sources seen: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTuplesFraming(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendTuples(1, 3, 2, []Word{1, 2, 3, 4})
			return nil
		}
		arity, words, from := c.RecvTuples(0, 3)
		if arity != 2 || from != 0 || len(words) != 4 {
			t.Errorf("arity=%d from=%d words=%v", arity, from, words)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(4)
	var before, after int32
	err := w.Run(func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != 4 {
			t.Errorf("barrier released before all ranks arrived")
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 4 {
		t.Fatalf("after = %d", after)
	}
}

func TestAllreduceOps(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		v := uint64(c.Rank() + 1) // 1..5
		if got := c.Allreduce(v, OpSum); got != 15 {
			t.Errorf("sum = %d", got)
		}
		if got := c.Allreduce(v, OpMax); got != 5 {
			t.Errorf("max = %d", got)
		}
		if got := c.Allreduce(v, OpMin); got != 1 {
			t.Errorf("min = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		got := c.Allgather(uint64(c.Rank() * 10))
		for i, v := range got {
			if v != uint64(i*10) {
				t.Errorf("rank %d: allgather[%d] = %d", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		var in []Word
		if c.Rank() == 2 {
			in = []Word{7, 8, 9}
		}
		out := c.Bcast(2, in)
		if len(out) != 3 || out[0] != 7 || out[2] != 9 {
			t.Errorf("rank %d: bcast = %v", c.Rank(), out)
		}
		// Mutating the received copy must not affect other ranks.
		out[0] = Word(c.Rank())
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		send := make([][]Word, n)
		for j := 0; j < n; j++ {
			// rank r sends j copies of value r*100+j to rank j
			for k := 0; k < j; k++ {
				send[j] = append(send[j], Word(c.Rank()*100+j))
			}
		}
		recv := c.Alltoallv(send)
		for i := 0; i < n; i++ {
			want := c.Rank() // we receive c.Rank() words from each rank
			if len(recv[i]) != want {
				t.Errorf("rank %d: recv[%d] has %d words, want %d", c.Rank(), i, len(recv[i]), want)
			}
			for _, v := range recv[i] {
				if v != Word(i*100+c.Rank()) {
					t.Errorf("rank %d: recv[%d] value %d", c.Rank(), i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherV(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		mine := make([]Word, c.Rank()+1)
		for i := range mine {
			mine[i] = Word(c.Rank())
		}
		all := c.AllgatherV(mine)
		for i, s := range all {
			if len(s) != i+1 {
				t.Errorf("rank %d: all[%d] len %d", c.Rank(), i, len(s))
			}
			for _, v := range s {
				if v != Word(i) {
					t.Errorf("rank %d: all[%d] value %d", c.Rank(), i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		got := c.Gather(1, uint64(c.Rank()+100))
		if c.Rank() != 1 {
			if got != nil {
				t.Errorf("non-root got %v", got)
			}
			return nil
		}
		for i, v := range got {
			if v != uint64(i+100) {
				t.Errorf("gather[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveCollectives(t *testing.T) {
	// Stress generation reuse: many collectives back to back with ranks
	// racing ahead.
	w := NewWorld(6)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 200; i++ {
			got := c.Allreduce(uint64(i), OpMax)
			if got != uint64(i) {
				t.Errorf("iter %d: %d", i, got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsMeterP2PAndCollectives(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []Word{1, 2, 3}) // 24 bytes
			c.Send(0, 0, []Word{9})       // self-send: not metered
			c.Recv(0, 0)
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
		c.Allreduce(1, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := w.Stats().Snapshot()
	if tot.P2PMessages != 1 || tot.P2PBytes != 24 {
		t.Errorf("p2p totals = %+v", tot)
	}
	// 2 ranks × (1 barrier + 1 allreduce) = 4 collective calls.
	if tot.CollectiveCalls != 4 {
		t.Errorf("collective calls = %d", tot.CollectiveCalls)
	}
	if tot.CollectiveBytes != 2*WordBytes {
		t.Errorf("collective bytes = %d", tot.CollectiveBytes)
	}
	per := w.Stats().PerRank()
	if per[1].P2PMessages != 0 {
		t.Errorf("rank 1 sent nothing but has %d messages", per[1].P2PMessages)
	}
}

func TestTotalsArithmetic(t *testing.T) {
	a := Totals{P2PMessages: 3, P2PBytes: 100, CollectiveCalls: 2, CollectiveBytes: 16}
	b := Totals{P2PMessages: 1, P2PBytes: 40, CollectiveCalls: 1, CollectiveBytes: 8}
	d := a.Sub(b)
	if d.P2PMessages != 2 || d.P2PBytes != 60 || d.CollectiveCalls != 1 || d.CollectiveBytes != 8 {
		t.Errorf("Sub = %+v", d)
	}
	s := d.Add(b)
	if s.P2PMessages != a.P2PMessages || s.P2PBytes != a.P2PBytes ||
		s.CollectiveCalls != a.CollectiveCalls || s.CollectiveBytes != a.CollectiveBytes {
		t.Errorf("Add = %+v, want %+v", s, a)
	}
	if a.Bytes() != 116 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestIsendIrecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 4, []Word{42})
			if !req.Done() {
				t.Error("Isend not immediately complete")
			}
			req.Wait()
			return nil
		}
		req := c.Irecv(0, 4)
		words, from := req.Wait()
		if from != 0 || len(words) != 1 || words[0] != 42 {
			t.Errorf("irecv got %v from %d", words, from)
		}
		if !req.Done() {
			t.Error("request not done after Wait")
		}
		// Wait must be re-callable.
		again, _ := req.Wait()
		if again[0] != 42 {
			t.Error("second Wait lost payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllGathersMultipleReceives(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 9, []Word{Word(c.Rank() * 11)})
			return nil
		}
		reqs := make([]*Request, n-1)
		for i := 1; i < n; i++ {
			reqs[i-1] = c.Irecv(i, 9)
		}
		WaitAll(reqs...)
		for i, r := range reqs {
			words, from := r.Wait()
			if from != i+1 || words[0] != Word((i+1)*11) {
				t.Errorf("req %d: %v from %d", i, words, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvAnySourceConcurrent(t *testing.T) {
	// Several outstanding AnySource receives must each claim a distinct
	// message.
	const n = 6
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 2, []Word{Word(c.Rank())})
			return nil
		}
		reqs := make([]*Request, n-1)
		for i := range reqs {
			reqs[i] = c.Irecv(AnySource, 2)
		}
		WaitAll(reqs...)
		seen := map[Word]bool{}
		for _, r := range reqs {
			words, _ := r.Wait()
			if seen[words[0]] {
				t.Errorf("message %v delivered twice", words)
			}
			seen[words[0]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
