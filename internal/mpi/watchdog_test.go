package mpi

import (
	"testing"
	"time"
)

// The adaptive watchdog starts pessimistic: until the first iteration-time
// sample exists, the deadline in force is the ceiling.
func TestAdaptiveWatchdogStartsAtCeiling(t *testing.T) {
	w := NewWorld(2)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Ceil: 3 * time.Second})
	if got := w.WatchdogDeadline(); got != 3*time.Second {
		t.Fatalf("initial deadline = %v, want the ceiling 3s", got)
	}
}

func TestAdaptiveWatchdogRequiresCeiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetAdaptiveWatchdog with Ceil=0 did not panic")
		}
	}()
	NewWorld(2).SetAdaptiveWatchdog(AdaptiveWatchdog{})
}

// Fast iterations must pull the deadline down from the ceiling toward
// clamp(Mult × EWMA, Floor, Ceil): epoch transitions microseconds apart with
// a 1ms floor land the deadline on the floor, far below the 10s ceiling.
func TestAdaptiveWatchdogDeadlineTightens(t *testing.T) {
	w := NewWorld(2)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Floor: time.Millisecond, Ceil: 10 * time.Second})
	err := w.Run(func(c *Comm) error {
		for iter := 1; iter <= 6; iter++ {
			c.SetEpoch(iter)
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := w.WatchdogDeadline()
	if got >= 10*time.Second {
		t.Fatalf("deadline stayed at the ceiling (%v) after fast iterations", got)
	}
	if got < time.Millisecond {
		t.Fatalf("deadline %v fell below the 1ms floor", got)
	}
}

// Only genuine epoch transitions feed the EWMA: republishing the same
// iteration number must not shrink the observed iteration time.
func TestAdaptiveWatchdogIgnoresRepeatedEpoch(t *testing.T) {
	w := NewWorld(1)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Floor: time.Nanosecond, Ceil: 10 * time.Second})
	err := w.Run(func(c *Comm) error {
		c.SetEpoch(1)
		time.Sleep(20 * time.Millisecond)
		c.SetEpoch(2) // one real sample: ~20ms
		for i := 0; i < 100; i++ {
			c.SetEpoch(2) // no transition, no sample
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One ~20ms sample with Mult=8 puts the deadline well above 20ms; had
	// the repeated SetEpoch(2) calls fed ~0ns samples, the EWMA would have
	// collapsed toward the floor.
	if got := w.WatchdogDeadline(); got < 20*time.Millisecond {
		t.Fatalf("deadline %v collapsed — repeated epoch publishes fed the EWMA", got)
	}
}

// AllreduceVec agrees elementwise across ranks in one round — the carrier
// the integrity digests ride on. Covers the in-process slot path (size > 1),
// the single-rank copy fast path, and aliasing send/recv.
func TestAllreduceVecSum(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		r := Word(c.Rank())
		send := []Word{1, r, 10 * r}
		recv := make([]Word, 3)
		got := c.AllreduceVec(send, recv, OpSum)
		want := []Word{4, 0 + 1 + 2 + 3, 0 + 10 + 20 + 30}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: got[%d] = %d, want %d", c.Rank(), i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecMaxAliased(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		vec := []Word{Word(c.Rank()), Word(10 - c.Rank())}
		got := c.AllreduceVec(vec, vec, OpMax) // send aliases recv
		if got[0] != 2 || got[1] != 10 {
			t.Errorf("rank %d: got %v, want [2 10]", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecSingleRank(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		send := []Word{7, 8, 9}
		recv := make([]Word, 3)
		got := c.AllreduceVec(send, recv, OpSum)
		for i, v := range send {
			if got[i] != v {
				t.Errorf("got[%d] = %d, want %d", i, got[i], v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecLengthMismatchPanics(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("mismatched send/recv lengths did not panic")
			}
		}()
		c.AllreduceVec(make([]Word, 3), make([]Word, 2), OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
