package mpi

import (
	"testing"
	"time"
)

// The adaptive watchdog starts pessimistic: until the first iteration-time
// sample exists, the deadline in force is the ceiling.
func TestAdaptiveWatchdogStartsAtCeiling(t *testing.T) {
	w := NewWorld(2)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Ceil: 3 * time.Second})
	if got := w.WatchdogDeadline(); got != 3*time.Second {
		t.Fatalf("initial deadline = %v, want the ceiling 3s", got)
	}
}

func TestAdaptiveWatchdogRequiresCeiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetAdaptiveWatchdog with Ceil=0 did not panic")
		}
	}()
	NewWorld(2).SetAdaptiveWatchdog(AdaptiveWatchdog{})
}

// Fast iterations must pull the deadline down from the ceiling toward
// clamp(Mult × EWMA, Floor, Ceil): epoch transitions microseconds apart with
// a 1ms floor land the deadline on the floor, far below the 10s ceiling.
func TestAdaptiveWatchdogDeadlineTightens(t *testing.T) {
	w := NewWorld(2)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Floor: time.Millisecond, Ceil: 10 * time.Second})
	err := w.Run(func(c *Comm) error {
		for iter := 1; iter <= 6; iter++ {
			c.SetEpoch(iter)
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := w.WatchdogDeadline()
	if got >= 10*time.Second {
		t.Fatalf("deadline stayed at the ceiling (%v) after fast iterations", got)
	}
	if got < time.Millisecond {
		t.Fatalf("deadline %v fell below the 1ms floor", got)
	}
}

// Only genuine epoch transitions feed the EWMA: republishing the same
// iteration number must not shrink the observed iteration time.
func TestAdaptiveWatchdogIgnoresRepeatedEpoch(t *testing.T) {
	w := NewWorld(1)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Floor: time.Nanosecond, Ceil: 10 * time.Second})
	err := w.Run(func(c *Comm) error {
		c.SetEpoch(1)
		time.Sleep(20 * time.Millisecond)
		c.SetEpoch(2) // one real sample: ~20ms
		for i := 0; i < 100; i++ {
			c.SetEpoch(2) // no transition, no sample
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One ~20ms sample with Mult=8 puts the deadline well above 20ms; had
	// the repeated SetEpoch(2) calls fed ~0ns samples, the EWMA would have
	// collapsed toward the floor.
	if got := w.WatchdogDeadline(); got < 20*time.Millisecond {
		t.Fatalf("deadline %v collapsed — repeated epoch publishes fed the EWMA", got)
	}
}

// A throttled-but-live world must not be declared dead: when backpressure
// (a flow-controlled sender stalling on a slow receiver) stretches
// iteration times gradually, the EWMA follows the observed pace and the
// deadline extends instead of firing a spurious ErrRankFailed. The run
// starts fast — tightening the deadline well below the ceiling — then slows
// ~2× per iteration, each step inside the Mult=8 headroom of the deadline
// the previous pace set.
func TestAdaptiveWatchdogExtendsUnderBackpressure(t *testing.T) {
	w := NewWorld(2)
	w.SetAdaptiveWatchdog(AdaptiveWatchdog{Floor: time.Millisecond, Ceil: 10 * time.Second})
	var tightened, stretched time.Duration
	err := w.Run(func(c *Comm) error {
		for iter := 1; iter <= 4; iter++ {
			c.SetEpoch(iter)
			c.Barrier()
		}
		if c.Rank() == 0 {
			tightened = w.WatchdogDeadline()
		}
		// Backpressure sets in: every iteration takes about twice the last.
		delay := 2 * time.Millisecond
		for iter := 5; iter <= 9; iter++ {
			c.SetEpoch(iter)
			time.Sleep(delay)
			c.Barrier()
			delay *= 2
		}
		if c.Rank() == 0 {
			stretched = w.WatchdogDeadline()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("throttled-but-live world was declared dead: %v", err)
	}
	if tightened >= 10*time.Second {
		t.Fatalf("deadline never tightened below the ceiling during the fast phase (%v)", tightened)
	}
	if stretched <= tightened {
		t.Fatalf("deadline did not extend under backpressure: fast-phase %v, slow-phase %v", tightened, stretched)
	}
	// The last observed iteration was ~32ms; with Mult=8 the deadline in
	// force must give at least that much headroom for the next one.
	if stretched < 32*time.Millisecond {
		t.Fatalf("slow-phase deadline %v leaves no headroom for the observed ~32ms pace", stretched)
	}
}

// The EWMA alone (no world, no goroutines) must track a slowing pace
// closely enough that each next iteration fits inside the deadline its
// predecessors set — the no-false-positive property of gradual throttling.
func TestAdaptiveWatchdogEWMATracksGradualSlowdown(t *testing.T) {
	ad := &adaptiveWatchdog{cfg: AdaptiveWatchdog{Floor: time.Millisecond, Ceil: time.Hour}.withDefaults()}
	ad.deadline.Store(int64(ad.cfg.Ceil)) // pessimistic start, as SetAdaptiveWatchdog does
	now := int64(1)
	ad.observe(now)
	gap := int64(time.Millisecond)
	for i := 0; i < 12; i++ {
		// Before each slower iteration, the deadline set by the past pace
		// must cover it: gap doubles, Mult=8 covers a 2× step with room.
		if dl := ad.deadline.Load(); dl < gap {
			t.Fatalf("step %d: deadline %v cannot cover the next %v iteration", i, time.Duration(dl), time.Duration(gap))
		}
		now += gap
		ad.observe(now)
		gap *= 2
	}
}

// AllreduceVec agrees elementwise across ranks in one round — the carrier
// the integrity digests ride on. Covers the in-process slot path (size > 1),
// the single-rank copy fast path, and aliasing send/recv.
func TestAllreduceVecSum(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		r := Word(c.Rank())
		send := []Word{1, r, 10 * r}
		recv := make([]Word, 3)
		got := c.AllreduceVec(send, recv, OpSum)
		want := []Word{4, 0 + 1 + 2 + 3, 0 + 10 + 20 + 30}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: got[%d] = %d, want %d", c.Rank(), i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecMaxAliased(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		vec := []Word{Word(c.Rank()), Word(10 - c.Rank())}
		got := c.AllreduceVec(vec, vec, OpMax) // send aliases recv
		if got[0] != 2 || got[1] != 10 {
			t.Errorf("rank %d: got %v, want [2 10]", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecSingleRank(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		send := []Word{7, 8, 9}
		recv := make([]Word, 3)
		got := c.AllreduceVec(send, recv, OpSum)
		for i, v := range send {
			if got[i] != v {
				t.Errorf("got[%d] = %d, want %d", i, got[i], v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVecLengthMismatchPanics(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("mismatched send/recv lengths did not panic")
			}
		}()
		c.AllreduceVec(make([]Word, 3), make([]Word, 2), OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
