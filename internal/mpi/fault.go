package mpi

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// This file is the runtime's fault story. Real deployments of the paper's
// system (16,384 MPI ranks on Theta) treat rank failure and stuck
// collectives as operational reality; the simulated runtime mirrors that
// with (1) a structured failure error that every surviving rank observes
// instead of a Go-runtime deadlock, and (2) a seeded, deterministic fault
// injector that can kill a rank at a chosen iteration/operation, hang it
// inside a collective, and drop, delay, or corrupt point-to-point messages.

// ErrRankFailed reports that a rank died or was declared dead: it panicked,
// was crashed by fault injection, or was absent from a collective past the
// watchdog timeout. The same value propagates (wrapped) to every surviving
// rank of the world, so callers can detect the failure with errors.As on
// the error World.Run returns and restart from a checkpoint.
type ErrRankFailed struct {
	Rank int    // the rank that failed
	Op   string // the operation during which the failure surfaced
	Iter int    // the epoch (fixpoint iteration) the failed rank had reached
	// Cause is the underlying reason: ErrInjectedCrash, the recovered panic
	// value wrapped as an error, or ErrWatchdogTimeout.
	Cause error
}

func (e *ErrRankFailed) Error() string {
	return fmt.Sprintf("mpi: rank %d failed in %s at iteration %d: %v", e.Rank, e.Op, e.Iter, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ErrRankFailed) Unwrap() error { return e.Cause }

// Sentinel causes for ErrRankFailed.
var (
	// ErrInjectedCrash marks a failure produced by a FaultPlan Crash spec.
	ErrInjectedCrash = errors.New("injected crash")
	// ErrWatchdogTimeout marks a rank the collective watchdog declared dead
	// after it stayed absent from an in-progress collective past the timeout.
	ErrWatchdogTimeout = errors.New("absent from collective past watchdog timeout")
	// ErrRecvTimeout marks a receive that stayed unmatched past the watchdog
	// timeout — the point-to-point arm of the watchdog: the sender's message
	// was dropped or the sender is gone, and the blocked rank errors out
	// instead of wedging forever.
	ErrRecvTimeout = errors.New("no matching message within the watchdog timeout")
	// ErrPeerUnreachable marks a rank a networked transport declared dead:
	// its heartbeats stopped and reconnection attempts failed, so the failure
	// detector reported it to every surviving rank.
	ErrPeerUnreachable = errors.New("peer unreachable: heartbeat lost")
)

// AsRankFailure extracts the structured rank failure from an error chain
// (including the joined error World.Run returns). It reports false for
// ordinary (non-fault) errors.
func AsRankFailure(err error) (*ErrRankFailed, bool) {
	var rf *ErrRankFailed
	ok := errors.As(err, &rf)
	return rf, ok
}

// ErrStateDiverged reports that the online integrity check caught a rank
// whose relation state no longer agrees with the collective digest: a
// silent in-memory corruption (or a logic bug) that would otherwise be
// served indefinitely. The digests ride the per-iteration convergence
// Allreduce, so every rank computes the same verdict and raises the same
// divergence in the same iteration — the supervisor can then roll all of
// them back to the last verified checkpoint together.
type ErrStateDiverged struct {
	Iter  int    // fixpoint iteration at which the mismatch was detected
	Rel   string // relation whose digests disagreed
	Rank  int    // the rank reporting (every rank reports its own)
	Check string // which invariant tripped ("replica", "delta", "history")
}

func (e *ErrStateDiverged) Error() string {
	return fmt.Sprintf("mpi: state diverged at iteration %d: relation %s failed the %s digest check (rank %d)",
		e.Iter, e.Rel, e.Check, e.Rank)
}

// AsStateDivergence extracts a divergence from an error chain (including
// the joined error World.Run returns and the ErrRankFailed values wrapping
// it). It reports false for every other failure mode.
func AsStateDivergence(err error) (*ErrStateDiverged, bool) {
	var sd *ErrStateDiverged
	ok := errors.As(err, &sd)
	return sd, ok
}

// RankFailures collects every distinct rank failure in an error tree.
// World.Run joins the failures of all ranks that died, so a multi-rank
// incident surfaces as several wrapped ErrRankFailed values; errors.As only
// finds the first. The result is deduplicated by rank (first occurrence
// wins) and sorted by rank, so supervisors can report exactly which ranks
// were lost. It returns nil for ordinary (non-fault) errors.
func RankFailures(err error) []*ErrRankFailed {
	var out []*ErrRankFailed
	seen := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if rf, ok := e.(*ErrRankFailed); ok {
			if !seen[rf.Rank] {
				seen[rf.Rank] = true
				out = append(out, rf)
			}
			// Keep walking: a watchdog failure can wrap another rank's death.
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, inner := range u.Unwrap() {
				walk(inner)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// AnyIter in a fault spec matches every epoch.
const AnyIter = -1

// Crash kills a rank deterministically: the rank panics with an
// ErrRankFailed the moment it enters the After-th communication operation
// matching (Iter, Op). Iter is the rank's current epoch (AnyIter matches
// all); Op is the operation name ("send", "recv", "barrier", "allreduce",
// "allgather", "allgatherv", "alltoallv", "bcast", "gather"), "" matching
// all.
type Crash struct {
	Rank  int
	Iter  int
	Op    string
	After int // number of matching operations to let pass first
}

// Hang blocks a rank forever inside the matching operation — the "stuck
// collective" failure mode. The rank never arrives at the collective; with
// a watchdog configured it is declared dead after the timeout and every
// peer receives ErrRankFailed instead of deadlocking. The hung goroutine
// itself unblocks (and dies with its failure) once the run aborts.
type Hang struct {
	Rank int
	Iter int
	Op   string
}

// Drop discards a fraction of the point-to-point messages from one rank to
// another. The decision is a deterministic hash of (seed, from, to,
// message sequence number), so the same plan drops the same messages on
// every run.
type Drop struct {
	From, To int
	Frac     float64 // fraction of messages dropped, in [0, 1]
}

// Delay sleeps a deterministic duration in [0, Max) before delivering a
// fraction of the point-to-point messages from one rank to another.
type Delay struct {
	From, To int
	Frac     float64
	Max      time.Duration
}

// Corrupt XORs a deterministic mask into one word of the payload of the
// After-th matching point-to-point send, modeling a bit flip on the wire.
// The flip happens after the sender's CRC32C is computed, so the receiver
// detects it and fails with ErrCorruptMessage attributed to the sender —
// corruption can no longer produce a silently wrong answer. (In-process
// transport only; the TCP transport injects wire corruption at the frame
// layer, where it is caught and repaired by retransmission.)
type Corrupt struct {
	Rank  int // sending rank
	Iter  int
	After int
}

// StateCorrupt flips one deterministically chosen word of a rank's
// in-memory relation state at the top of the matching iteration — the
// silent-corruption fault the online integrity digests exist to catch. The
// flip lands in stored state (an accumulator value word or a tuple word),
// never in a message, so no CRC sees it; only the per-iteration digest
// agreement can. A spec fires once.
type StateCorrupt struct {
	Rank int
	Iter int
	Rel  string // name of the relation to corrupt
}

// CkptCorrupt flips one payload word of the rank's newest on-disk (or
// in-memory) checkpoint generation immediately after the save at the
// matching iteration completes — the torn/bit-rotted checkpoint fault that
// LatestValid must detect, quarantine, and fall back from. A spec fires
// once.
type CkptCorrupt struct {
	Rank int
	Iter int
}

// MemPressure inflates a rank's accounted memory by Bytes phantom bytes at
// the top of the matching iteration — a deterministic stand-in for a
// co-tenant eating the budget. The resource accountant reacts exactly as it
// would to real growth: shed scratch at the soft watermark, fail the
// iteration structurally at the hard one. A spec fires once and the phantom
// charge persists for the rest of the run (until a supervisor restart).
type MemPressure struct {
	Rank  int
	Iter  int
	Bytes int64
}

// DiskFull makes the rank's next checkpoint save at the matching iteration
// fail as if the device were full — the degradation path (quarantine,
// prune, fall back to a memory sink) must absorb it without aborting the
// run. A spec fires once.
type DiskFull struct {
	Rank int
	Iter int
}

// FaultPlan is a seeded, deterministic fault schedule. Every communication
// operation of every rank consults the plan; all randomness derives from
// Seed via counter-based hashing, so a plan replays identically across
// runs — the property the chaos harness's differential tests rely on.
// A nil plan injects nothing.
type FaultPlan struct {
	Seed          int64
	Crashes       []Crash
	Hangs         []Hang
	Drops         []Drop
	Delays        []Delay
	Corrupts      []Corrupt
	StateCorrupts []StateCorrupt
	CkptCorrupts  []CkptCorrupt
	MemPressures  []MemPressure
	DiskFulls     []DiskFull
}

// faultState holds the per-run mutable matching counters for a plan. Each
// counter is touched only by the goroutine of the rank its spec names, so
// no locking is needed.
type faultState struct {
	plan        *FaultPlan
	crashHits   []int
	hangFired   []bool
	corruptHits []int
	stateFired  []bool
	ckptFired   []bool
	memFired    []bool
	diskFired   []bool
}

func newFaultState(plan *FaultPlan) *faultState {
	if plan == nil {
		return nil
	}
	return &faultState{
		plan:        plan,
		crashHits:   make([]int, len(plan.Crashes)),
		hangFired:   make([]bool, len(plan.Hangs)),
		corruptHits: make([]int, len(plan.Corrupts)),
		stateFired:  make([]bool, len(plan.StateCorrupts)),
		ckptFired:   make([]bool, len(plan.CkptCorrupts)),
		memFired:    make([]bool, len(plan.MemPressures)),
		diskFired:   make([]bool, len(plan.DiskFulls)),
	}
}

func matchIter(specIter, iter int) bool { return specIter == AnyIter || specIter == iter }
func matchOp(specOp, op string) bool    { return specOp == "" || specOp == op }

// crashNow reports whether rank must die entering op at epoch iter.
func (fs *faultState) crashNow(rank, iter int, op string) bool {
	for i, c := range fs.plan.Crashes {
		if c.Rank != rank || !matchIter(c.Iter, iter) || !matchOp(c.Op, op) {
			continue
		}
		fs.crashHits[i]++
		if fs.crashHits[i] > c.After {
			return true
		}
	}
	return false
}

// hangNow reports whether rank must hang entering op at epoch iter. A hang
// fires once.
func (fs *faultState) hangNow(rank, iter int, op string) bool {
	for i, h := range fs.plan.Hangs {
		// The rank check must come first: hangFired[i] is owned by the
		// goroutine of the rank the spec names, and only that goroutine may
		// touch it.
		if h.Rank != rank || fs.hangFired[i] || !matchIter(h.Iter, iter) || !matchOp(h.Op, op) {
			continue
		}
		fs.hangFired[i] = true
		return true
	}
	return false
}

// dropNow reports whether the seq-th message from src to dest is dropped.
func (fs *faultState) dropNow(src, dest, seq int) bool {
	for _, d := range fs.plan.Drops {
		if d.From == src && d.To == dest && faultFrac(fs.plan.Seed, 0x11, src, dest, seq) < d.Frac {
			return true
		}
	}
	return false
}

// delayNow returns the deterministic delivery delay of the seq-th message
// from src to dest (0 = none).
func (fs *faultState) delayNow(src, dest, seq int) time.Duration {
	for _, d := range fs.plan.Delays {
		if d.From == src && d.To == dest && faultFrac(fs.plan.Seed, 0x22, src, dest, seq) < d.Frac {
			return time.Duration(faultFrac(fs.plan.Seed, 0x33, src, dest, seq) * float64(d.Max))
		}
	}
	return 0
}

// corruptNow reports whether rank's current send must be corrupted, and if
// so at which payload word and with which mask.
func (fs *faultState) corruptNow(rank, iter, payloadLen int) (word int, mask Word, ok bool) {
	if payloadLen == 0 {
		return 0, 0, false
	}
	for i, c := range fs.plan.Corrupts {
		if c.Rank != rank || !matchIter(c.Iter, iter) {
			continue
		}
		fs.corruptHits[i]++
		if fs.corruptHits[i] != c.After+1 {
			continue
		}
		h := faultHash(fs.plan.Seed, 0x44, rank, i, fs.corruptHits[i])
		mask = h | 1 // never a zero mask: the flip must be observable
		return int(h>>17) % payloadLen, mask, true
	}
	return 0, 0, false
}

// stateCorruptNow reports whether rank's in-memory state must be corrupted
// at epoch iter, and if so in which relation and with which mask. Fires at
// most once per spec.
func (fs *faultState) stateCorruptNow(rank, iter int) (rel string, mask Word, ok bool) {
	for i, sc := range fs.plan.StateCorrupts {
		// The rank check must come first: stateFired[i] is owned by the
		// goroutine of the rank the spec names.
		if sc.Rank != rank || fs.stateFired[i] || !matchIter(sc.Iter, iter) {
			continue
		}
		fs.stateFired[i] = true
		return sc.Rel, faultHash(fs.plan.Seed, 0x55, rank, i, iter) | 1, true
	}
	return "", 0, false
}

// ckptCorruptNow reports whether the checkpoint rank just saved at epoch
// iter must be tampered with. Fires at most once per spec.
func (fs *faultState) ckptCorruptNow(rank, iter int) bool {
	for i, cc := range fs.plan.CkptCorrupts {
		if cc.Rank != rank || fs.ckptFired[i] || !matchIter(cc.Iter, iter) {
			continue
		}
		fs.ckptFired[i] = true
		return true
	}
	return false
}

// memPressureNow returns the phantom bytes to charge rank's accountant at
// epoch iter (0 = none). Fires at most once per spec.
func (fs *faultState) memPressureNow(rank, iter int) (bytes int64, ok bool) {
	for i, mp := range fs.plan.MemPressures {
		// The rank check must come first: memFired[i] is owned by the
		// goroutine of the rank the spec names.
		if mp.Rank != rank || fs.memFired[i] || !matchIter(mp.Iter, iter) {
			continue
		}
		fs.memFired[i] = true
		return mp.Bytes, true
	}
	return 0, false
}

// diskFullNow reports whether rank's checkpoint save at epoch iter must fail
// as if the device were full. Fires at most once per spec.
func (fs *faultState) diskFullNow(rank, iter int) bool {
	for i, df := range fs.plan.DiskFulls {
		if df.Rank != rank || fs.diskFired[i] || !matchIter(df.Iter, iter) {
			continue
		}
		fs.diskFired[i] = true
		return true
	}
	return false
}

// StateCorruptNow consults the fault plan for an in-memory state-corruption
// fault due on this rank at epoch iter. The fixpoint driver calls it at the
// top of each iteration and applies the returned mask to the named
// relation's stored state.
func (c *Comm) StateCorruptNow(iter int) (rel string, mask Word, ok bool) {
	if fs := c.world.fstate; fs != nil {
		return fs.stateCorruptNow(c.rank, iter)
	}
	return "", 0, false
}

// CkptCorruptNow consults the fault plan for a checkpoint-corruption fault
// due on this rank at epoch iter. The fixpoint driver calls it right after
// a successful save and, when it fires, tampers with the newest stored
// generation.
func (c *Comm) CkptCorruptNow(iter int) bool {
	if fs := c.world.fstate; fs != nil {
		return fs.ckptCorruptNow(c.rank, iter)
	}
	return false
}

// MemPressureNow consults the fault plan for a phantom memory charge due on
// this rank at epoch iter. The fixpoint driver calls it while feeding the
// resource accountant and adds the returned bytes as phantom usage.
func (c *Comm) MemPressureNow(iter int) (bytes int64, ok bool) {
	if fs := c.world.fstate; fs != nil {
		return fs.memPressureNow(c.rank, iter)
	}
	return 0, false
}

// DiskFullNow consults the fault plan for a checkpoint-storage fault due on
// this rank at epoch iter. The fixpoint driver calls it before a periodic
// save and, when it fires, treats the save as failed with a storage error.
func (c *Comm) DiskFullNow(iter int) bool {
	if fs := c.world.fstate; fs != nil {
		return fs.diskFullNow(c.rank, iter)
	}
	return false
}

// faultHash is a counter-based splitmix64 over the spec coordinates: the
// injector's only source of randomness.
func faultHash(seed int64, stream, a, b, c int) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [4]uint64{uint64(stream), uint64(a), uint64(b), uint64(c)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// faultFrac maps a hash to [0, 1).
func faultFrac(seed int64, stream, a, b, c int) float64 {
	return float64(faultHash(seed, stream, a, b, c)>>11) / float64(1<<53)
}
