package mpi

// Request is a handle on a nonblocking operation, mirroring MPI_Request.
// Sends complete immediately (the runtime buffers them, like a buffered
// MPI_Isend); receives complete when a matching message arrives.
type Request struct {
	done  chan struct{}
	words []Word
	from  int
}

// Wait blocks until the operation completes and returns the received
// payload and source (both zero-valued for sends). Wait may be called more
// than once.
func (r *Request) Wait() (words []Word, from int) {
	<-r.done
	return r.words, r.from
}

// Done reports whether the operation has completed without blocking.
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The runtime buffers the payload, so the
// returned request is already complete; it exists so code ported from MPI
// keeps its Isend/Wait shape.
func (c *Comm) Isend(dest, tag int, words []Word) *Request {
	c.Send(dest, tag, words)
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// Irecv starts a nonblocking receive for a message from src (or AnySource)
// with the given tag.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		msg := c.world.boxes[c.rank].take(src, tag)
		r.words = msg.words
		r.from = msg.src
		close(r.done)
	}()
	return r
}

// WaitAll blocks until every request completes.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		<-r.done
	}
}
