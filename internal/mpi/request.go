package mpi

// Request is a handle on a nonblocking operation, mirroring MPI_Request.
// Sends complete immediately (the runtime buffers them, like a buffered
// MPI_Isend); receives complete when a matching message arrives.
type Request struct {
	done  chan struct{}
	owner *Comm
	op    string
	words []Word
	from  int
	err   error // recvError when the wait ended without a message
	crcOK bool
}

// Wait blocks until the operation completes and returns the received
// payload and source (both zero-valued for sends). Wait may be called more
// than once. If the world aborted or the receive timed out while the
// request was pending, Wait unwinds the calling rank with the same
// structured failure a blocking Recv would have raised.
func (r *Request) Wait() (words []Word, from int) {
	<-r.done
	if r.err != nil {
		re := r.err.(*recvError)
		if re.abort != nil {
			panic(abortPanic{re.abort})
		}
		rf := &ErrRankFailed{Rank: r.owner.rank, Op: r.op, Iter: r.owner.Epoch(), Cause: ErrRecvTimeout}
		r.owner.world.fail(rf)
		panic(rf)
	}
	if !r.crcOK {
		rf := &ErrRankFailed{Rank: r.from, Op: r.op, Iter: r.owner.Epoch(), Cause: ErrCorruptMessage}
		r.owner.world.fail(rf)
		panic(rf)
	}
	return r.words, r.from
}

// Done reports whether the operation has completed without blocking.
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The runtime buffers the payload, so the
// returned request is already complete; it exists so code ported from MPI
// keeps its Isend/Wait shape.
func (c *Comm) Isend(dest, tag int, words []Word) *Request {
	c.Send(dest, tag, words)
	r := &Request{done: make(chan struct{}), owner: c, op: "isend", crcOK: true}
	close(r.done)
	return r
}

// Irecv starts a nonblocking receive for a message from src (or AnySource)
// with the given tag. The background wait is bounded by the watchdog
// timeout when one is configured; a timeout or world abort is surfaced by
// Wait, never by a panic on the internal goroutine.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{}), owner: c, op: "irecv"}
	go func() {
		defer close(r.done)
		msg, err := c.world.boxes[c.rank].take(src, tag, c.world.watchdog)
		if err != nil {
			r.err = err
			return
		}
		r.words = msg.words
		r.from = msg.src
		r.crcOK = ChecksumWords(msg.words) == msg.crc
	}()
	return r
}

// WaitAll blocks until every request completes and surfaces the first
// failure among them, if any.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
