package mpi

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
)

// Topology describes where ranks live relative to each other: a host (or
// rack) grouping plus optional per-host-pair link costs. Schedules use the
// grouping to keep reduction traffic inside a host before crossing the
// expensive links; the cost model uses the costs to price cross-host bytes.
//
// A gang launched by -spawn derives its topology from the peer address list
// (every rank whose peer address resolves to the same host lands in the same
// group); -topology=<file> overrides that with an explicit map. In-process
// worlds default to a uniform single-host topology, under which the
// topology-aware tree degenerates to a plain binomial tree.
type Topology struct {
	hosts []int    // per-rank host index
	names []string // host names, indexed by host id
	// costs holds the relative cross-link cost per unordered host pair,
	// keyed [min,max]. Missing pairs default to DefaultCrossHostCost.
	costs map[[2]int]float64
}

// DefaultCrossHostCost is the relative cost of a cross-host link when the
// topology names the grouping but no explicit cost line: one cross-host word
// is priced like this many same-host words.
const DefaultCrossHostCost = 4.0

// NewUniformTopology places all size ranks on one host with unit link costs
// — the correct model for in-process worlds and single-machine gangs.
func NewUniformTopology(size int) *Topology {
	t := &Topology{hosts: make([]int, size), names: []string{"local"}}
	return t
}

// TopologyFromHosts builds a topology from a per-rank host name list (entry
// r names the host rank r runs on). Host ids are assigned in first-appearance
// order, so rank 0's host is host 0.
func TopologyFromHosts(hostnames []string) *Topology {
	t := &Topology{hosts: make([]int, len(hostnames))}
	index := make(map[string]int)
	for r, name := range hostnames {
		id, ok := index[name]
		if !ok {
			id = len(t.names)
			index[name] = id
			t.names = append(t.names, name)
		}
		t.hosts[r] = id
	}
	return t
}

// Ranks returns the number of ranks the topology describes.
func (t *Topology) Ranks() int { return len(t.hosts) }

// NumHosts returns the number of distinct hosts.
func (t *Topology) NumHosts() int { return len(t.names) }

// Host returns the host index rank runs on.
func (t *Topology) Host(rank int) int { return t.hosts[rank] }

// HostName returns the name of the host rank runs on.
func (t *Topology) HostName(rank int) string { return t.names[t.hosts[rank]] }

// SameHost reports whether two ranks share a host.
func (t *Topology) SameHost(a, b int) bool { return t.hosts[a] == t.hosts[b] }

// LinkCost returns the relative per-word cost of the link between two ranks:
// 0 for a rank to itself, 1 within a host, and the configured (or default)
// cross-host cost otherwise.
func (t *Topology) LinkCost(a, b int) float64 {
	if a == b {
		return 0
	}
	ha, hb := t.hosts[a], t.hosts[b]
	if ha == hb {
		return 1
	}
	if ha > hb {
		ha, hb = hb, ha
	}
	if c, ok := t.costs[[2]int{ha, hb}]; ok {
		return c
	}
	return DefaultCrossHostCost
}

// Validate checks the topology against a world size.
func (t *Topology) Validate(size int) error {
	if len(t.hosts) != size {
		return fmt.Errorf("topology describes %d ranks, world has %d", len(t.hosts), size)
	}
	return nil
}

// ParseTopology reads the topology file format: one directive per line,
// '#' comments and blank lines ignored.
//
//	host <rank> <hostname>   places a rank; every rank in [0, size) needs one
//	cost <hostA> <hostB> <x> prices the hostA<->hostB link at x (relative to
//	                         the same-host cost of 1); optional, symmetric
func ParseTopology(r io.Reader, size int) (*Topology, error) {
	t := &Topology{hosts: make([]int, size)}
	index := make(map[string]int)
	seen := make([]bool, size)
	type costLine struct {
		a, b string
		x    float64
	}
	var costs []costLine
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "host":
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology line %d: want 'host <rank> <name>', got %q", lineno, line)
			}
			rank, err := strconv.Atoi(fields[1])
			if err != nil || rank < 0 || rank >= size {
				return nil, fmt.Errorf("topology line %d: rank %q out of range [0, %d)", lineno, fields[1], size)
			}
			if seen[rank] {
				return nil, fmt.Errorf("topology line %d: rank %d placed twice", lineno, rank)
			}
			seen[rank] = true
			name := fields[2]
			id, ok := index[name]
			if !ok {
				id = len(t.names)
				index[name] = id
				t.names = append(t.names, name)
			}
			t.hosts[rank] = id
		case "cost":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology line %d: want 'cost <hostA> <hostB> <x>', got %q", lineno, line)
			}
			x, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || x <= 0 {
				return nil, fmt.Errorf("topology line %d: link cost %q must be a positive number", lineno, fields[3])
			}
			costs = append(costs, costLine{a: fields[1], b: fields[2], x: x})
		default:
			return nil, fmt.Errorf("topology line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("topology places no host for rank %d", r)
		}
	}
	for _, c := range costs {
		ha, oka := index[c.a]
		hb, okb := index[c.b]
		if !oka || !okb {
			return nil, fmt.Errorf("topology cost line names unknown host %q/%q", c.a, c.b)
		}
		if ha > hb {
			ha, hb = hb, ha
		}
		if t.costs == nil {
			t.costs = make(map[[2]int]float64)
		}
		t.costs[[2]int{ha, hb}] = c.x
	}
	return t, nil
}

// ParseTopologyFile is ParseTopology over a file path.
func ParseTopologyFile(path string, size int) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ParseTopology(f, size)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// TopologyFromAddrs derives a host grouping from a peer address list
// ("host:port" per rank, as the -spawn gang launcher hands its children):
// ranks whose addresses share a host part share a group. Malformed entries
// each get their own group, which is the conservative (all-cross) reading.
func TopologyFromAddrs(addrs []string) *Topology {
	hosts := make([]string, len(addrs))
	for i, a := range addrs {
		if h, _, err := net.SplitHostPort(a); err == nil && h != "" {
			hosts[i] = h
		} else {
			hosts[i] = fmt.Sprintf("addr%d", i)
		}
	}
	return TopologyFromHosts(hosts)
}
