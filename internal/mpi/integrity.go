package mpi

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// End-to-end message integrity. Every point-to-point payload is covered by a
// CRC32C (Castagnoli) checksum computed at the send side and verified at the
// receive side, so a bit flip on the (simulated or real) wire surfaces as a
// structured per-rank error instead of a silently wrong answer. The same
// polynomial and helpers are shared with the TCP transport's frame format.

// castagnoli is the CRC32C table used for all integrity checks. CRC32C is
// the polynomial real transports (iSCSI, ext4, TCP offload engines) use and
// has hardware support on both amd64 and arm64 via hash/crc32.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of data. The TCP framing uses it over
// encoded frame bytes; ChecksumWords uses it over word payloads.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// UpdateCRC32C extends an in-progress CRC32C with more bytes.
func UpdateCRC32C(crc uint32, data []byte) uint32 { return crc32.Update(crc, castagnoli, data) }

// ChecksumWords returns the CRC32C of a word payload in its little-endian
// wire representation. It is the integrity check both the simulated
// (in-process) transport and the TCP frame format apply to message bodies.
func ChecksumWords(words []Word) uint32 {
	var buf [WordBytes]byte
	crc := uint32(0)
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// ErrCorruptMessage marks a received payload whose CRC32C does not match
// what the sender computed: the message was corrupted in flight. The
// receiving rank fails with an ErrRankFailed naming the sender, so
// corruption is attributed to the link it happened on and recovery can
// restart from a checkpoint instead of committing a wrong answer.
var ErrCorruptMessage = errors.New("message failed CRC32C integrity check")
