// Package btree implements the in-memory B-tree that backs local relation
// storage, mirroring the nested-BTree indexes of the paper's C++ runtime.
// Tuples are ordered lexicographically; the index columns of a relation form
// a key prefix, so a join probe is a prefix range scan with O(log n) seek —
// the access pattern the paper's inner relation benefits from.
package btree

import (
	"paralagg/internal/tuple"
)

// degree is the minimum branching factor: nodes hold between degree-1 and
// 2*degree-1 items (except the root). 16 keeps nodes around one cache line
// of tuple headers without deep trees.
const degree = 16

const (
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// Tree is a B-tree of tuples in lexicographic order. The zero value is not
// usable; call New.
type Tree struct {
	root *node
	size int
	// words is the running sum of stored tuple words, maintained on
	// Insert/Delete so the memory accountant can sample the footprint in
	// O(1) without walking nodes.
	words int64
}

// itemOverheadWords approximates per-item bookkeeping beyond the tuple
// words themselves: the tuple slice header plus an amortized share of node
// item/child slices. The accountant wants a cheap, stable estimate, not a
// byte-exact one.
const itemOverheadWords = 4

// MemWords reports the tree's accounted storage footprint in words: stored
// tuple words plus estimated node bookkeeping. O(1).
func (t *Tree) MemWords() int64 {
	return t.words + int64(t.size)*itemOverheadWords
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Reset empties the tree in place, retaining the root node's item and child
// slices for reuse so a tree that is emptied and refilled every iteration
// (the relation layer's Δ versions) settles into steady-state allocation.
// Interior nodes are released to the collector.
func (t *Tree) Reset() {
	if t.root != nil {
		t.root.items = t.root.items[:0]
		t.root.children = t.root.children[:0]
	}
	t.size = 0
	t.words = 0
}

type node struct {
	items    []tuple.Tuple
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find locates the insertion point for t in n's items. It returns the index
// and whether the item at that index equals t.
func (n *node) find(t tuple.Tuple) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].Compare(t) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && n.items[lo].Compare(t) == 0 {
		return lo, true
	}
	return lo, false
}

// Len returns the number of tuples stored.
func (t *Tree) Len() int { return t.size }

// Has reports whether the exact tuple k is present.
func (t *Tree) Has(k tuple.Tuple) bool {
	n := t.root
	for n != nil {
		i, ok := n.find(k)
		if ok {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Insert adds k to the tree if not already present, cloning it so the caller
// may reuse the slice. It reports whether an insertion happened.
func (t *Tree) Insert(k tuple.Tuple) bool {
	if t.root == nil {
		t.root = &node{items: []tuple.Tuple{k.Clone()}}
		t.size = 1
		t.words = int64(len(k))
		return true
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.root.insertNonFull(k) {
		t.size++
		t.words += int64(len(k))
		return true
	}
	return false
}

// splitChild splits n.children[i], which must be full, moving its median
// item up into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := child.items[minItems]
	right := &node{
		items: append([]tuple.Tuple(nil), child.items[minItems+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[minItems+1:]...)
		child.children = child.children[:minItems+1]
	}
	child.items = child.items[:minItems]

	n.items = append(n.items, nil)
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = mid

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(k tuple.Tuple) bool {
	i, ok := n.find(k)
	if ok {
		return false
	}
	if n.leaf() {
		n.items = append(n.items, nil)
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = k.Clone()
		return true
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		switch c := k.Compare(n.items[i]); {
		case c == 0:
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insertNonFull(k)
}

// Ascend calls fn for every tuple in order. fn returning false stops the
// scan. Tuples passed to fn are the tree's own storage and must not be
// mutated.
func (t *Tree) Ascend(fn func(tuple.Tuple) bool) {
	if t.root != nil {
		t.root.ascend(fn)
	}
}

func (n *node) ascend(fn func(tuple.Tuple) bool) bool {
	for i, item := range n.items {
		if !n.leaf() && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(item) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.items)].ascend(fn)
	}
	return true
}

// AscendPrefix calls fn, in order, for every tuple whose first len(prefix)
// columns equal prefix. This is the join probe: seek O(log n), then scan the
// matching range. fn returning false stops the scan. Tuples passed to fn
// must not be mutated.
func (t *Tree) AscendPrefix(prefix tuple.Tuple, fn func(tuple.Tuple) bool) {
	if t.root != nil {
		t.root.ascendPrefix(prefix, fn)
	}
}

// prefixCmp orders item against the prefix considering only the prefix's
// columns.
func prefixCmp(item, prefix tuple.Tuple) int {
	k := len(prefix)
	if len(item) < k {
		k = len(item)
	}
	for i := 0; i < k; i++ {
		switch {
		case item[i] < prefix[i]:
			return -1
		case item[i] > prefix[i]:
			return 1
		}
	}
	if len(item) < len(prefix) {
		return -1
	}
	return 0
}

func (n *node) ascendPrefix(prefix tuple.Tuple, fn func(tuple.Tuple) bool) bool {
	// Binary search for the first item >= prefix (on prefix columns).
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if prefixCmp(n.items[mid], prefix) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i <= len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascendPrefix(prefix, fn) {
			return false
		}
		if i == len(n.items) {
			break
		}
		c := prefixCmp(n.items[i], prefix)
		if c > 0 {
			// Past the range; nothing further matches.
			return true
		}
		if c == 0 && !fn(n.items[i]) {
			return false
		}
	}
	return true
}

// Count returns the number of tuples matching the prefix.
func (t *Tree) Count(prefix tuple.Tuple) int {
	n := 0
	t.AscendPrefix(prefix, func(tuple.Tuple) bool { n++; return true })
	return n
}

// Serialize appends every tuple, in order, to a flat word buffer of the
// given arity. This is the "outer relation" path: the tree is scanned in its
// entirety and flattened for transmission. It panics if a stored tuple's
// arity differs, which indicates a relation bookkeeping bug.
func (t *Tree) Serialize(arity int) []tuple.Value {
	out := make([]tuple.Value, 0, t.size*arity)
	t.Ascend(func(tt tuple.Tuple) bool {
		if len(tt) != arity {
			panic("btree: serialize arity mismatch")
		}
		out = append(out, tt...)
		return true
	})
	return out
}
