package btree

import "paralagg/internal/tuple"

// Delete removes the exact tuple k from the tree, reporting whether it was
// present. Aggregated relations use it to purge a stale dependent value when
// a key's accumulator improves — the paper's "collapsing" of transient
// tuples.
func (t *Tree) Delete(k tuple.Tuple) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(k)
	if deleted {
		t.size--
		t.words -= int64(len(k))
	}
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			if t.size == 0 {
				t.root = nil
			}
		} else {
			t.root = t.root.children[0]
		}
	}
	return deleted
}

// delete removes k from the subtree rooted at n. n is guaranteed by the
// caller to have more than minItems items (or to be the root), so removal
// cannot underflow it.
func (n *node) delete(k tuple.Tuple) bool {
	i, found := n.find(k)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with the predecessor (the maximum of the left child's
		// subtree) and delete that predecessor instead.
		if len(n.children[i].items) > minItems {
			pred := n.children[i].max()
			n.items[i] = pred.Clone()
			return n.children[i].delete(pred)
		}
		if len(n.children[i+1].items) > minItems {
			succ := n.children[i+1].min()
			n.items[i] = succ.Clone()
			return n.children[i+1].delete(succ)
		}
		// Both neighbors minimal: merge them around items[i], then recurse.
		n.mergeChildren(i)
		return n.children[i].delete(k)
	}
	// Not in this node: descend into children[i], topping it up first.
	child := n.children[i]
	if len(child.items) == minItems {
		i = n.fill(i)
		child = n.children[i]
	}
	return child.delete(k)
}

// max returns the largest tuple in the subtree.
func (n *node) max() tuple.Tuple {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// min returns the smallest tuple in the subtree.
func (n *node) min() tuple.Tuple {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// fill ensures children[i] has more than minItems items by borrowing from a
// sibling or merging. It returns the index of the child that now covers the
// original key range (merging with the left sibling shifts it left by one).
func (n *node) fill(i int) int {
	if i > 0 && len(n.children[i-1].items) > minItems {
		n.borrowLeft(i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		n.borrowRight(i)
		return i
	}
	if i > 0 {
		n.mergeChildren(i - 1)
		return i - 1
	}
	n.mergeChildren(i)
	return i
}

// borrowLeft rotates one item from children[i-1] through items[i-1] into
// children[i].
func (n *node) borrowLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append(child.items, nil)
	copy(child.items[1:], child.items)
	child.items[0] = n.items[i-1]
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !child.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

// borrowRight rotates one item from children[i+1] through items[i] into
// children[i].
func (n *node) borrowRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = append(right.items[:0], right.items[1:]...)
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren folds items[i] and children[i+1] into children[i].
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}
