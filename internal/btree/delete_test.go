package btree

import (
	"math/rand"
	"sort"
	"testing"

	"paralagg/internal/tuple"
)

func TestDeleteFromEmpty(t *testing.T) {
	tr := New()
	if tr.Delete(tuple.Tuple{1}) {
		t.Fatal("deleted from empty tree")
	}
}

func TestDeleteSingle(t *testing.T) {
	tr := New()
	tr.Insert(tuple.Tuple{5})
	if !tr.Delete(tuple.Tuple{5}) {
		t.Fatal("delete returned false")
	}
	if tr.Len() != 0 || tr.Has(tuple.Tuple{5}) {
		t.Fatal("tuple still present")
	}
	// Tree must remain usable.
	tr.Insert(tuple.Tuple{6})
	if !tr.Has(tuple.Tuple{6}) {
		t.Fatal("insert after emptying failed")
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New()
	tr.Insert(tuple.Tuple{1, 1})
	if tr.Delete(tuple.Tuple{1, 2}) {
		t.Fatal("deleted absent tuple")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteReplace(t *testing.T) {
	// The aggregate-maintenance pattern: delete stale (key, old) and insert
	// (key, new).
	tr := New()
	tr.Insert(tuple.Tuple{2, 1, 10})
	if !tr.Delete(tuple.Tuple{2, 1, 10}) {
		t.Fatal("delete failed")
	}
	tr.Insert(tuple.Tuple{2, 1, 7})
	got := 0
	tr.AscendPrefix(tuple.Tuple{2, 1}, func(tt tuple.Tuple) bool {
		if tt[2] != 7 {
			t.Fatalf("stale value survived: %v", tt)
		}
		got++
		return true
	})
	if got != 1 {
		t.Fatalf("matches = %d", got)
	}
}

// TestDeleteRandomizedAgainstReference performs a long random
// insert/delete/query workload mirrored against a map, then verifies a full
// ordered scan. This exercises all rebalancing paths (borrow left/right,
// merge, root collapse).
func TestDeleteRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	tr := New()
	ref := map[[2]uint64]bool{}
	for op := 0; op < 60000; op++ {
		k := [2]uint64{uint64(rng.Intn(300)), uint64(rng.Intn(10))}
		tt := tuple.Tuple{k[0], k[1]}
		switch rng.Intn(4) {
		case 0, 1: // bias toward inserts early, deletes catch up
			got := tr.Insert(tt)
			if got == ref[k] {
				t.Fatalf("op %d: Insert(%v) = %v with ref %v", op, tt, got, ref[k])
			}
			ref[k] = true
		case 2:
			got := tr.Delete(tt)
			if got != ref[k] {
				t.Fatalf("op %d: Delete(%v) = %v with ref %v", op, tt, got, ref[k])
			}
			delete(ref, k)
		case 3:
			if got := tr.Has(tt); got != ref[k] {
				t.Fatalf("op %d: Has(%v) = %v with ref %v", op, tt, got, ref[k])
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref %d", op, tr.Len(), len(ref))
		}
	}
	var keys [][2]uint64
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	i := 0
	tr.Ascend(func(tt tuple.Tuple) bool {
		if tt[0] != keys[i][0] || tt[1] != keys[i][1] {
			t.Fatalf("scan position %d: %v, want %v", i, tt, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

func TestDeleteDrainAscending(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(tuple.Tuple{uint64(i)}) {
			t.Fatalf("delete %d failed", i)
		}
		if tr.Len() != n-i-1 {
			t.Fatalf("Len after deleting %d = %d", i, tr.Len())
		}
	}
}

func TestDeleteDrainDescending(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(tuple.Tuple{uint64(i)}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
