package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"paralagg/internal/tuple"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Has(tuple.Tuple{1}) {
		t.Fatal("empty tree Has = true")
	}
	tr.Ascend(func(tuple.Tuple) bool { t.Fatal("ascend on empty tree"); return false })
	tr.AscendPrefix(tuple.Tuple{1}, func(tuple.Tuple) bool { t.Fatal("prefix scan on empty tree"); return false })
}

func TestInsertAndHas(t *testing.T) {
	tr := New()
	if !tr.Insert(tuple.Tuple{1, 2}) {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(tuple.Tuple{1, 2}) {
		t.Fatal("duplicate insert returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Has(tuple.Tuple{1, 2}) {
		t.Fatal("Has = false after insert")
	}
	if tr.Has(tuple.Tuple{1, 3}) {
		t.Fatal("Has = true for absent tuple")
	}
}

func TestInsertClonesKey(t *testing.T) {
	tr := New()
	k := tuple.Tuple{5, 6}
	tr.Insert(k)
	k[0] = 99
	if !tr.Has(tuple.Tuple{5, 6}) {
		t.Fatal("tree aliased caller's tuple")
	}
}

func TestAscendSortedLarge(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	seen := map[[2]uint64]bool{}
	for i := 0; i < 5000; i++ {
		a, b := uint64(rng.Intn(500)), uint64(rng.Intn(500))
		ins := tr.Insert(tuple.Tuple{a, b})
		if ins == seen[[2]uint64{a, b}] {
			t.Fatalf("insert (%d,%d): returned %v but seen=%v", a, b, ins, seen[[2]uint64{a, b}])
		}
		seen[[2]uint64{a, b}] = true
	}
	if tr.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(seen))
	}
	var prev tuple.Tuple
	count := 0
	tr.Ascend(func(tt tuple.Tuple) bool {
		if prev != nil && prev.Compare(tt) >= 0 {
			t.Fatalf("out of order: %v then %v", prev, tt)
		}
		prev = tt.Clone()
		count++
		return true
	})
	if count != len(seen) {
		t.Fatalf("ascend visited %d, want %d", count, len(seen))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	n := 0
	tr.Ascend(func(tuple.Tuple) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("visited %d after early stop", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	// 50 groups of 20 tuples each, inserted shuffled.
	var all []tuple.Tuple
	for g := 0; g < 50; g++ {
		for j := 0; j < 20; j++ {
			all = append(all, tuple.Tuple{uint64(g), uint64(j * 7)})
		}
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, tt := range all {
		tr.Insert(tt)
	}
	for g := 0; g < 50; g++ {
		var got []uint64
		tr.AscendPrefix(tuple.Tuple{uint64(g)}, func(tt tuple.Tuple) bool {
			if tt[0] != uint64(g) {
				t.Fatalf("prefix scan for %d returned %v", g, tt)
			}
			got = append(got, tt[1])
			return true
		})
		if len(got) != 20 {
			t.Fatalf("group %d: %d matches, want 20", g, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("group %d scan unsorted: %v", g, got)
		}
	}
	// Absent prefix.
	tr.AscendPrefix(tuple.Tuple{999}, func(tt tuple.Tuple) bool {
		t.Fatalf("absent prefix matched %v", tt)
		return false
	})
}

func TestAscendPrefixEarlyStop(t *testing.T) {
	tr := New()
	for j := 0; j < 100; j++ {
		tr.Insert(tuple.Tuple{7, uint64(j)})
	}
	n := 0
	tr.AscendPrefix(tuple.Tuple{7}, func(tuple.Tuple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("visited %d after immediate stop", n)
	}
}

func TestCount(t *testing.T) {
	tr := New()
	for j := 0; j < 13; j++ {
		tr.Insert(tuple.Tuple{3, uint64(j)})
		tr.Insert(tuple.Tuple{4, uint64(j)})
	}
	if got := tr.Count(tuple.Tuple{3}); got != 13 {
		t.Fatalf("Count(3) = %d", got)
	}
	if got := tr.Count(tuple.Tuple{5}); got != 0 {
		t.Fatalf("Count(5) = %d", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := New()
	tr.Insert(tuple.Tuple{2, 1})
	tr.Insert(tuple.Tuple{1, 9})
	words := tr.Serialize(2)
	if len(words) != 4 {
		t.Fatalf("serialized %d words", len(words))
	}
	// Lexicographic order: (1,9) before (2,1).
	want := []tuple.Value{1, 9, 2, 1}
	for i, w := range want {
		if words[i] != w {
			t.Fatalf("words = %v, want %v", words, want)
		}
	}
}

// TestAgainstReference drives the tree with random operations and checks
// every observable against a map+sort reference model.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	ref := map[[3]uint64]bool{}
	for op := 0; op < 20000; op++ {
		k := [3]uint64{uint64(rng.Intn(40)), uint64(rng.Intn(40)), uint64(rng.Intn(4))}
		tt := tuple.Tuple{k[0], k[1], k[2]}
		switch rng.Intn(3) {
		case 0:
			got := tr.Insert(tt)
			if got == ref[k] {
				t.Fatalf("op %d: Insert(%v) = %v, ref has %v", op, tt, got, ref[k])
			}
			ref[k] = true
		case 1:
			if got := tr.Has(tt); got != ref[k] {
				t.Fatalf("op %d: Has(%v) = %v, want %v", op, tt, got, ref[k])
			}
		case 2:
			// Prefix count against reference.
			p := tuple.Tuple{k[0]}
			want := 0
			for rk := range ref {
				if rk[0] == k[0] {
					want++
				}
			}
			if got := tr.Count(p); got != want {
				t.Fatalf("op %d: Count(%v) = %d, want %d", op, p, got, want)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", tr.Len(), len(ref))
	}
	// Full scan matches sorted reference.
	var keys [][3]uint64
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for c := 0; c < 3; c++ {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
	i := 0
	tr.Ascend(func(tt tuple.Tuple) bool {
		k := keys[i]
		if tt[0] != k[0] || tt[1] != k[1] || tt[2] != k[2] {
			t.Fatalf("scan position %d: %v, want %v", i, tt, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(tuple.Tuple{uint64(rng.Int63()), uint64(rng.Int63())})
	}
}

func BenchmarkAscendPrefix(b *testing.B) {
	tr := New()
	for g := 0; g < 1000; g++ {
		for j := 0; j < 32; j++ {
			tr.Insert(tuple.Tuple{uint64(g), uint64(j)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.AscendPrefix(tuple.Tuple{uint64(i % 1000)}, func(tuple.Tuple) bool { n++; return true })
		if n != 32 {
			b.Fatal("bad scan")
		}
	}
}

// TestQuickInsertHasAgainstMap drives Insert/Has with quick-generated keys
// against a map model.
func TestQuickInsertHasAgainstMap(t *testing.T) {
	f := func(keys []uint8) bool {
		tr := New()
		ref := map[uint8]bool{}
		for _, k := range keys {
			ins := tr.Insert(tuple.Tuple{uint64(k)})
			if ins == ref[k] {
				return false
			}
			ref[k] = true
		}
		for k := 0; k < 256; k++ {
			if tr.Has(tuple.Tuple{uint64(k)}) != ref[uint8(k)] {
				return false
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteAgainstMap drives interleaved Insert/Delete with
// quick-generated operations against a map model.
func TestQuickDeleteAgainstMap(t *testing.T) {
	f := func(ops []int16) bool {
		tr := New()
		ref := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op) & 0x3f
			if op >= 0 {
				ins := tr.Insert(tuple.Tuple{k})
				if ins == ref[k] {
					return false
				}
				ref[k] = true
			} else {
				del := tr.Delete(tuple.Tuple{k})
				if del != ref[k] {
					return false
				}
				delete(ref, k)
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
