package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"paralagg"
)

// TestDifferentialCrashRestart is the acceptance gate of the fault-tolerance
// work: for every scenario and rank count, a run that crashes mid-fixpoint
// and resumes from its checkpoint must reproduce the fault-free relation
// contents bit for bit.
func TestDifferentialCrashRestart(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ranks := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", sc.Name, ranks), func(t *testing.T) {
				rep, err := Differential(sc, ranks, 2, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.ResumeIters != rep.CleanIters {
					t.Errorf("resume ended at iteration %d, clean run at %d: the trajectories diverged",
						rep.ResumeIters, rep.CleanIters)
				}
				if rep.RecoverySeconds <= 0 {
					t.Error("resumed run metered no recovery phase: no checkpoint was restored")
				}
			})
		}
	}
}

// TestElasticCrashAutoRecover is the acceptance gate of the elastic-recovery
// work: for every scenario, a supervised run that crashes mid-fixpoint and
// auto-recovers — at the same size, degraded by one, and halved — must
// reproduce the fault-free relation contents bit for bit.
func TestElasticCrashAutoRecover(t *testing.T) {
	const ranks = 4
	for _, sc := range Scenarios() {
		for _, restart := range []int{ranks, ranks - 1, ranks / 2} {
			t.Run(fmt.Sprintf("%s/%d-to-%d", sc.Name, ranks, restart), func(t *testing.T) {
				rep, err := Elastic(sc, ranks, 2, 3, restart)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.RecoveryAttempts != 1 {
					t.Errorf("RecoveryAttempts = %d, want 1", rep.RecoveryAttempts)
				}
				if len(rep.RanksLost) != 1 || rep.RanksLost[0] != ranks-1 {
					t.Errorf("RanksLost = %v, want [%d]", rep.RanksLost, ranks-1)
				}
				if restart == ranks {
					if rep.RecoverySeconds <= 0 {
						t.Error("same-size recovery metered no recovery phase")
					}
				} else if rep.RemapSeconds <= 0 {
					t.Error("elastic recovery metered no remap phase")
				}
			})
		}
	}
}

// TestRepeatedCrashesAcrossRecoveries injects a second crash into the world
// built by the first recovery: the supervisor must survive both and still
// land on the fault-free answer.
func TestRepeatedCrashesAcrossRecoveries(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Repeated(sc, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Identical() {
				t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
					rep.Clean, rep.Recovered)
			}
			if len(rep.RanksLost) != 2 {
				t.Errorf("RanksLost = %v, want two incidents", rep.RanksLost)
			}
		})
	}
}

// TestStuckCollectiveSurfacesStructuredError asserts the watchdog converts
// a hung collective into ErrRankFailed on every rank instead of a deadlock.
func TestStuckCollectiveSurfacesStructuredError(t *testing.T) {
	sc := Scenarios()[0]
	for _, ranks := range []int{2, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			err := StuckCollective(sc, ranks, 200*time.Millisecond)
			if err == nil {
				t.Fatal("hung collective produced no error")
			}
			rf, ok := paralagg.AsRankFailure(err)
			if !ok {
				t.Fatalf("err = %v, want ErrRankFailed", err)
			}
			if rf.Rank != 1%ranks || !errors.Is(rf, paralagg.ErrWatchdogTimeout) {
				t.Errorf("failure = %v, want watchdog death of rank %d", rf, 1%ranks)
			}
			u, ok := err.(interface{ Unwrap() []error })
			if !ok {
				t.Fatalf("err %T is not a joined per-rank error", err)
			}
			if parts := u.Unwrap(); len(parts) != ranks {
				t.Errorf("got %d rank errors, want %d (every rank must observe the failure)", len(parts), ranks)
			}
		})
	}
}

// TestResumeWithoutCheckpointErrs pins the empty-sink behaviour.
func TestResumeWithoutCheckpointErrs(t *testing.T) {
	sc := Scenarios()[0]
	_, err := paralagg.Exec(sc.Prog(), paralagg.Config{
		Ranks:       2,
		Checkpoints: paralagg.NewMemoryCheckpointSink(),
		Resume:      true,
	}, sc.Load, nil)
	if !errors.Is(err, paralagg.ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}
