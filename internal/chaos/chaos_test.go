package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"paralagg"
)

// TestDifferentialCrashRestart is the acceptance gate of the fault-tolerance
// work: for every scenario and rank count, a run that crashes mid-fixpoint
// and resumes from its checkpoint must reproduce the fault-free relation
// contents bit for bit.
func TestDifferentialCrashRestart(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ranks := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", sc.Name, ranks), func(t *testing.T) {
				rep, err := Differential(sc, ranks, 2, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.ResumeIters != rep.CleanIters {
					t.Errorf("resume ended at iteration %d, clean run at %d: the trajectories diverged",
						rep.ResumeIters, rep.CleanIters)
				}
				if rep.RecoverySeconds <= 0 {
					t.Error("resumed run metered no recovery phase: no checkpoint was restored")
				}
			})
		}
	}
}

// TestStuckCollectiveSurfacesStructuredError asserts the watchdog converts
// a hung collective into ErrRankFailed on every rank instead of a deadlock.
func TestStuckCollectiveSurfacesStructuredError(t *testing.T) {
	sc := Scenarios()[0]
	for _, ranks := range []int{2, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			err := StuckCollective(sc, ranks, 200*time.Millisecond)
			if err == nil {
				t.Fatal("hung collective produced no error")
			}
			rf, ok := paralagg.AsRankFailure(err)
			if !ok {
				t.Fatalf("err = %v, want ErrRankFailed", err)
			}
			if rf.Rank != 1%ranks || !errors.Is(rf, paralagg.ErrWatchdogTimeout) {
				t.Errorf("failure = %v, want watchdog death of rank %d", rf, 1%ranks)
			}
			u, ok := err.(interface{ Unwrap() []error })
			if !ok {
				t.Fatalf("err %T is not a joined per-rank error", err)
			}
			if parts := u.Unwrap(); len(parts) != ranks {
				t.Errorf("got %d rank errors, want %d (every rank must observe the failure)", len(parts), ranks)
			}
		})
	}
}

// TestResumeWithoutCheckpointErrs pins the empty-sink behaviour.
func TestResumeWithoutCheckpointErrs(t *testing.T) {
	sc := Scenarios()[0]
	_, err := paralagg.Exec(sc.Prog(), paralagg.Config{
		Ranks:       2,
		Checkpoints: paralagg.NewMemoryCheckpointSink(),
		Resume:      true,
	}, sc.Load, nil)
	if !errors.Is(err, paralagg.ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}
