package chaos

import (
	"testing"
)

func TestTCPDifferentialRepairableFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPDifferential(sc, 3, RepairableFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("TCP run under repairable wire faults diverged from the in-process answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	if err := VerifyNetStats(rep.Net); err != nil {
		t.Errorf("fault plan did not exercise recovery: %v (stats %+v)", err, rep.Net)
	}
}

func TestTCPPartitionSurfacesStructuredFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos partition is not short")
	}
	if err := TCPPartition(Scenarios()[1], 3); err != nil { // cc
		t.Fatal(err)
	}
}

func TestTCPKillRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos kill-recovery is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPKillRecovery(sc, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryAttempts != 1 {
		t.Errorf("recoveries = %d, want exactly 1", rep.RecoveryAttempts)
	}
	if !rep.Identical() {
		t.Fatalf("supervised TCP recovery diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
}
