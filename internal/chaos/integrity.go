package chaos

import (
	"fmt"
	"time"

	"paralagg"
)

// State-integrity chaos: the same differential discipline as the
// crash/restart suite, applied to SILENT faults — bit flips in a relation's
// in-memory state and bit rot in checkpoint files. A crash is loud; these
// faults produce wrong answers quietly unless the integrity machinery
// catches them. The differentials prove (1) online divergence detection
// fires within the corrupted iteration on every rank, (2) the supervisor
// rolls back to the last verified checkpoint and lands bit-identical, and
// (3) a corrupted checkpoint generation is quarantined and recovery falls
// back exactly one generation.

// IntegrityReport is the outcome of one integrity differential.
type IntegrityReport struct {
	// Clean holds the fault-free fingerprints (run with integrity checking
	// ON, so it doubles as the no-false-positives check); Recovered the
	// post-corruption recovered ones.
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// Divergence is the structured report extracted from the corrupted
	// run's error (state-corruption differential only).
	Divergence *paralagg.ErrStateDiverged
	// DivergenceRollbacks and RestartsFromScratch come from the
	// supervisor's report (state-corruption differential only).
	DivergenceRollbacks int
	RestartsFromScratch int
	// QuarantinedDelta is the growth of the process-wide quarantine counter
	// across the recovery (checkpoint-corruption differential only).
	QuarantinedDelta int64
	// FallbackIter is the iteration of the checkpoint generation recovery
	// actually restored (checkpoint-corruption differential only).
	FallbackIter int
}

// Identical reports whether the recovered run reproduced the fault-free
// relation contents exactly.
func (r *IntegrityReport) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// adaptive is the watchdog config the integrity suite runs under: adaptive
// deadline with the old fixed 5s value as the ceiling.
func adaptive(cfg *paralagg.Config) {
	cfg.AdaptiveWatchdog = true
	cfg.WatchdogCeil = 5 * time.Second
}

// CorruptionDifferential proves end-to-end divergence self-healing on sc:
// a fault-free run with integrity checking on fixes the answer (and proves
// the checker raises no false positives); a run where one stored tuple of
// the scenario's computed relation is bit-flipped on rank 0 (sub-bucketed
// layouts concentrate the relation's state on sub-bucket-0 owners, and
// rank 0 holds a shard in every layout the suite runs) at the
// top of iteration corruptIter must fail on EVERY rank with a structured
// ErrStateDiverged naming that same iteration — detection within one
// iteration, no wrong answer escaping; and a supervised run with the same
// fault must roll back to the last verified checkpoint (corruptIter must
// not be the first checkpoint iteration, so one exists) and reproduce the
// fault-free relations bit for bit.
func CorruptionDifferential(sc Scenario, ranks, every, corruptIter int) (*IntegrityReport, error) {
	if corruptIter <= every {
		return nil, fmt.Errorf("chaos %s: corruptIter %d must exceed CheckpointEvery %d so a rollback target exists",
			sc.Name, corruptIter, every)
	}
	rep := &IntegrityReport{}
	cleanCfg := paralagg.Config{Ranks: ranks, Subs: sc.Subs, Integrity: true}
	clean, err := exec(sc.Prog(), cleanCfg, sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free integrity run failed (false positive?): %w", sc.Name, err)
	}
	if clean.Iterations <= corruptIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, corruption at %d would never fire",
			sc.Name, clean.Iterations, corruptIter)
	}

	// The scenario's computed relation (Rels lists inputs first).
	rel := sc.Rels[len(sc.Rels)-1]
	victim := 0
	plan := &paralagg.FaultPlan{
		Seed:          1,
		StateCorrupts: []paralagg.StateCorrupt{{Rank: victim, Iter: corruptIter, Rel: rel}},
	}

	// Unsupervised corrupted run: must abort, on every rank, within the
	// corrupted iteration.
	dirtyCfg := paralagg.Config{Ranks: ranks, Subs: sc.Subs, Integrity: true, Faults: plan}
	adaptive(&dirtyCfg)
	_, err = exec(sc.Prog(), dirtyCfg, sc.Load, nil)
	if err == nil {
		return nil, fmt.Errorf("chaos %s: injected state corruption on rank %d went undetected", sc.Name, victim)
	}
	failures := paralagg.RankFailures(err)
	if len(failures) != ranks {
		return nil, fmt.Errorf("chaos %s: divergence surfaced on %d of %d ranks: %w",
			sc.Name, len(failures), ranks, err)
	}
	for _, f := range failures {
		div, ok := paralagg.AsStateDivergence(f)
		if !ok {
			return nil, fmt.Errorf("chaos %s: rank %d failure carries no ErrStateDiverged: %w", sc.Name, f.Rank, f)
		}
		// The flip lands at corruptIter when the target shard is non-empty,
		// later otherwise (the fault retries until state exists); detection
		// is within the iteration it lands.
		if div.Iter < corruptIter {
			return nil, fmt.Errorf("chaos %s: rank %d detected divergence at iter %d, before the corruption at %d",
				sc.Name, f.Rank, div.Iter, corruptIter)
		}
		rep.Divergence = div
	}

	// Supervised corrupted run: the rollback policy must recover to the
	// fault-free answer from the last verified checkpoint.
	scfg := paralagg.SuperviseConfig{
		Config: paralagg.Config{
			Ranks:           ranks,
			Subs:            sc.Subs,
			Integrity:       true,
			CheckpointEvery: every,
			Checkpoints:     paralagg.NewMemoryCheckpointSink(),
			Faults:          plan,
		},
		RecoveryBackoff: time.Millisecond,
	}
	adaptive(&scfg.Config)
	_, srep, err := supervise(sc.Prog(), scfg, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: supervised recovery from divergence failed: %w", sc.Name, err)
	}
	if srep.DivergenceRollbacks == 0 {
		return nil, fmt.Errorf("chaos %s: supervisor recovered but classified no divergence rollback", sc.Name)
	}
	if srep.RestartsFromScratch != 0 {
		return nil, fmt.Errorf("chaos %s: recovery restarted from scratch %d times — the pre-corruption checkpoint should have been valid",
			sc.Name, srep.RestartsFromScratch)
	}
	rep.DivergenceRollbacks = srep.DivergenceRollbacks
	rep.RestartsFromScratch = srep.RestartsFromScratch
	return rep, nil
}

// CheckpointCorruptionDifferential proves checkpoint self-healing on sc:
// with checkpointing every `every` iterations, rank (ranks-1)'s SECOND
// checkpoint generation is bit-flipped on the sink right after it is
// written (simulated media rot), and the same rank crashes at crashIter.
// Recovery must quarantine the rotten generation, fall back exactly one
// generation (to the save at iteration `every`), and still reproduce the
// fault-free relations bit for bit. crashIter must satisfy
// 2*every < crashIter <= 3*every so the rotten generation is the newest
// one at crash time.
func CheckpointCorruptionDifferential(sc Scenario, ranks, every, crashIter int) (*IntegrityReport, error) {
	corruptAt := 2 * every
	if crashIter <= corruptAt || crashIter > 3*every {
		return nil, fmt.Errorf("chaos %s: crashIter %d must be in (%d, %d] so the corrupted generation is newest at crash time",
			sc.Name, crashIter, corruptAt, 3*every)
	}
	rep := &IntegrityReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs, Integrity: true},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	victim := ranks - 1
	sink := paralagg.NewMemoryCheckpointSink()
	dirtyCfg := paralagg.Config{
		Ranks:           ranks,
		Subs:            sc.Subs,
		Integrity:       true,
		CheckpointEvery: every,
		Checkpoints:     sink,
		Faults: &paralagg.FaultPlan{
			Seed:         1,
			CkptCorrupts: []paralagg.CkptCorrupt{{Rank: victim, Iter: corruptAt}},
			Crashes:      []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
		},
	}
	adaptive(&dirtyCfg)
	_, err = exec(sc.Prog(), dirtyCfg, sc.Load, nil)
	if err == nil {
		return nil, fmt.Errorf("chaos %s: injected crash of rank %d produced no error", sc.Name, victim)
	}
	if _, ok := paralagg.AsRankFailure(err); !ok {
		return nil, fmt.Errorf("chaos %s: crash error carries no ErrRankFailed: %w", sc.Name, err)
	}

	// The recovery scan must reject the rotten newest generation and agree
	// on the one before it.
	_, quarantined0 := paralagg.CheckpointIntegrityStats()
	pos, ok, err := sink.LatestValid()
	if err != nil {
		return nil, fmt.Errorf("chaos %s: LatestValid failed: %w", sc.Name, err)
	}
	if !ok {
		return nil, fmt.Errorf("chaos %s: no valid checkpoint set survived — only one generation was rotten", sc.Name)
	}
	if pos.Iter != every {
		return nil, fmt.Errorf("chaos %s: recovery agreed on iteration %d, want fallback to %d (one generation back)",
			sc.Name, pos.Iter, every)
	}
	_, quarantined1 := paralagg.CheckpointIntegrityStats()
	rep.QuarantinedDelta = quarantined1 - quarantined0
	if rep.QuarantinedDelta < 1 {
		return nil, fmt.Errorf("chaos %s: rotten generation was skipped but never quarantined", sc.Name)
	}
	rep.FallbackIter = pos.Iter

	resumeCfg := paralagg.Config{
		Ranks:           ranks,
		Subs:            sc.Subs,
		Integrity:       true,
		CheckpointEvery: every,
		Checkpoints:     sink,
		Resume:          true,
	}
	adaptive(&resumeCfg)
	if _, err := exec(sc.Prog(), resumeCfg, sc.Load, collect(sc.Rels, &rep.Recovered)); err != nil {
		return nil, fmt.Errorf("chaos %s: resume past the rotten generation failed: %w", sc.Name, err)
	}
	return rep, nil
}
