// Serving differentials: the incremental maintenance path must be
// indistinguishable from recomputation. For every mutation batch a scenario
// streams into a long-lived engine, a from-scratch execution over the same
// post-batch base facts fixes the expected answer, and the engine's resident
// relations must match it bit for bit (order-independent fingerprints over
// every rank's tuples). Insert-only batches additionally prove the
// communication saving: re-convergence from the seeded Δ must cost strictly
// fewer iterations than the from-scratch fixpoint.
package chaos

import (
	"context"
	"fmt"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// ServingBatch is one streamed mutation: edges added and removed together.
type ServingBatch struct {
	Name        string
	InsertEdges []graph.Edge
	DeleteEdges []graph.Edge
}

// ServingScenario is one serving workload: a base graph, a query program
// over it, and a sequence of mutation batches.
type ServingScenario struct {
	Name string
	// Kind selects the program: "sssp" (weighted, 3-ary edge) or "cc"
	// (undirected, 2-ary edge).
	Kind string
	Base *graph.Graph
	// Sources seeds SSSP (ignored for cc).
	Sources []uint64
	// Subs is the sub-bucket count (skew scenarios exercise sub-bucket
	// placement on the incremental path too).
	Subs    int
	Batches []ServingBatch
}

// ServingScenarios returns the standard serving workloads: insert-only,
// delete-only, and mixed batches over SSSP and connected components, plus a
// hub-skewed SSSP scenario with sub-bucketing on. Delete batches reference
// real base edges (exact tuples, weights included) sampled from the
// generated graphs.
func ServingScenarios() []ServingScenario {
	ssspIns := graph.Grid("serving-sssp-ins", 4, 4, 8, 21)
	ssspDel := graph.Grid("serving-sssp-del", 4, 4, 8, 22)
	ssspMix := graph.Grid("serving-sssp-mix", 4, 4, 8, 23)
	ccG := graph.Grid("serving-cc", 4, 4, 1, 24)
	skewG := graph.Social("serving-social", 6, 200, 3, 24, 64, 25)

	// The cc scenarios split the grid between columns 1 and 2: the base
	// starts disconnected, inserts bridge the halves (component merge), and
	// deletes re-cut bridges (component split — the hard invalidation case).
	ccCut, ccBridges := cutColumns(ccG, 4, 1, 2)

	return []ServingScenario{
		{
			Name: "sssp-insert", Kind: "sssp", Base: ssspIns, Sources: []uint64{0, 5},
			Batches: []ServingBatch{
				{Name: "shortcuts", InsertEdges: []graph.Edge{
					{U: 0, V: 15, W: 2}, {U: 0, V: 10, W: 1},
				}},
				{Name: "more-shortcuts", InsertEdges: []graph.Edge{
					{U: 5, V: 12, W: 1}, {U: 3, V: 9, W: 2}, {U: 10, V: 3, W: 1},
				}},
			},
		},
		{
			Name: "sssp-delete", Kind: "sssp", Base: ssspDel, Sources: []uint64{0, 5},
			Batches: []ServingBatch{
				{Name: "cut-a", DeleteEdges: sampleEdges(ssspDel, 0, 5)},
				{Name: "cut-b", DeleteEdges: sampleEdges(ssspDel, 2, 5)},
			},
		},
		{
			Name: "sssp-mixed", Kind: "sssp", Base: ssspMix, Sources: []uint64{0},
			Batches: []ServingBatch{
				{
					Name:        "swap",
					InsertEdges: []graph.Edge{{U: 0, V: 13, W: 1}, {U: 7, V: 2, W: 3}},
					DeleteEdges: sampleEdges(ssspMix, 1, 7),
				},
				{
					Name:        "revert",
					InsertEdges: sampleEdges(ssspMix, 1, 7),
					DeleteEdges: []graph.Edge{{U: 0, V: 13, W: 1}},
				},
			},
		},
		{
			Name: "cc", Kind: "cc", Base: ccCut,
			Batches: []ServingBatch{
				{Name: "bridge", InsertEdges: ccBridges[:1]},
				{Name: "split", DeleteEdges: ccBridges[:1]},
				{
					Name:        "churn",
					InsertEdges: ccBridges[1:3],
					DeleteEdges: sampleEdges(ccCut, 3, 9),
				},
			},
		},
		{
			Name: "sssp-skew", Kind: "sssp", Base: skewG, Sources: []uint64{0}, Subs: 4,
			Batches: []ServingBatch{
				{Name: "hub-in", InsertEdges: []graph.Edge{
					{U: 1, V: 0, W: 1}, {U: 0, V: 2, W: 2},
				}},
				{Name: "hub-out", DeleteEdges: sampleEdges(skewG, 4, 11)},
			},
		},
	}
}

// sampleEdges picks every stride-th base edge starting at off — existing
// exact tuples a delete batch can target.
func sampleEdges(g *graph.Graph, off, stride int) []graph.Edge {
	var out []graph.Edge
	for i := off; i < len(g.Edges); i += stride {
		out = append(out, g.Edges[i])
	}
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

// cutColumns removes every grid edge crossing between columns a and b
// (both directions), returning the cut graph and the removed bridge edges
// (one direction each; cc mutations mirror them).
func cutColumns(g *graph.Graph, cols, a, b int) (*graph.Graph, []graph.Edge) {
	crossing := func(u, v uint64) bool {
		cu, cv := int(u)%cols, int(v)%cols
		return (cu == a && cv == b) || (cu == b && cv == a)
	}
	cut := &graph.Graph{Name: g.Name + "-cut", Nodes: g.Nodes, MaxWeight: g.MaxWeight}
	var bridges []graph.Edge
	for _, e := range g.Edges {
		if crossing(e.U, e.V) {
			if e.U < e.V { // one direction per undirected bridge
				bridges = append(bridges, e)
			}
			continue
		}
		cut.Edges = append(cut.Edges, e)
	}
	return cut, bridges
}

// ServingBatchReport compares one batch's incremental result against the
// from-scratch control.
type ServingBatchReport struct {
	Name string
	// Engine and Scratch are the fingerprints of the resident and the
	// recomputed relations; they must be equal.
	Engine  map[string]Fingerprint
	Scratch map[string]Fingerprint
	// ApplyIters is the engine's re-convergence cost, ScratchIters the
	// from-scratch fixpoint's.
	ApplyIters   int
	ScratchIters int
	// Incremental, InvalidationRounds, Dropped echo the engine's ApplyStats.
	Incremental        bool
	InvalidationRounds int
	Dropped            uint64
	// InsertOnly marks batches eligible for the strictly-cheaper bar.
	InsertOnly bool
}

// Identical reports whether this batch's engine state matched recomputation.
func (b *ServingBatchReport) Identical() bool {
	if len(b.Engine) != len(b.Scratch) {
		return false
	}
	for rel, fp := range b.Scratch {
		if b.Engine[rel] != fp {
			return false
		}
	}
	return true
}

// ServingReport is the outcome of one serving differential: the initial
// load plus every batch.
type ServingReport struct {
	Scenario string
	Ranks    int
	Batches  []ServingBatchReport
}

// Identical reports whether every batch (and the initial load) matched.
func (r *ServingReport) Identical() bool {
	for i := range r.Batches {
		if !r.Batches[i].Identical() {
			return false
		}
	}
	return true
}

// InsertsStrictlyCheaper reports whether every incremental insert-only batch
// re-converged in strictly fewer iterations than its from-scratch control —
// the serving engine's reason to exist.
func (r *ServingReport) InsertsStrictlyCheaper() bool {
	for i := range r.Batches {
		b := &r.Batches[i]
		if b.InsertOnly && b.Incremental && b.ApplyIters >= b.ScratchIters {
			return false
		}
	}
	return true
}

// servingProg returns the program, loader, compared relations, and the
// per-batch tuple shape for a scenario kind.
func servingProg(sc ServingScenario) (prog *paralagg.Program, load func(*paralagg.Rank) error, rels []string, err error) {
	switch sc.Kind {
	case "sssp":
		return queries.SSSPProgram(), func(rk *paralagg.Rank) error {
			return queries.LoadSSSP(rk, sc.Base, sc.Sources)
		}, []string{"edge", "spath"}, nil
	case "cc":
		return queries.CCProgram(), func(rk *paralagg.Rank) error {
			return queries.LoadCC(rk, sc.Base)
		}, []string{"edge", "cc"}, nil
	}
	return nil, nil, nil, fmt.Errorf("chaos serving: unknown scenario kind %q", sc.Kind)
}

// edgeTuples converts edges to base-fact tuples: {u,v,w} for sssp, both
// directions of {u,v} for cc (matching LoadCC's undirected closure).
func edgeTuples(kind string, edges []graph.Edge) []paralagg.Tuple {
	var out []paralagg.Tuple
	for _, e := range edges {
		if kind == "cc" {
			out = append(out,
				paralagg.Tuple{paralagg.Value(e.U), paralagg.Value(e.V)},
				paralagg.Tuple{paralagg.Value(e.V), paralagg.Value(e.U)})
		} else {
			out = append(out, paralagg.Tuple{paralagg.Value(e.U), paralagg.Value(e.V), paralagg.Value(e.W)})
		}
	}
	return out
}

// ServingDifferential streams sc's batches into one long-lived engine at the
// given rank count, and after the initial load and every batch compares the
// engine's resident relations against a from-scratch execution over the same
// post-batch facts. The engine's world and the control worlds all run under
// the suite-wide collective Schedule.
func ServingDifferential(sc ServingScenario, ranks int) (*ServingReport, error) {
	prog, load, rels, err := servingProg(sc)
	if err != nil {
		return nil, err
	}
	rep := &ServingReport{Scenario: sc.Name, Ranks: ranks}

	eng, err := paralagg.Open(paralagg.Config{
		Ranks: ranks, Subs: sc.Subs, CollectiveSchedule: Schedule,
	}, prog)
	if err != nil {
		return nil, fmt.Errorf("chaos serving %s: Open failed: %w", sc.Name, err)
	}
	defer eng.Close()

	ctx := context.Background()
	stats, err := eng.Apply(ctx, paralagg.Mutation{Load: load})
	if err != nil {
		return nil, fmt.Errorf("chaos serving %s: initial Apply failed: %w", sc.Name, err)
	}

	// cur tracks the post-batch base edge set the control runs replay.
	cur := append([]graph.Edge(nil), sc.Base.Edges...)
	curSet := make(map[graph.Edge]bool, len(cur))
	for _, e := range cur {
		curSet[e] = true
	}

	check := func(name string, st paralagg.ApplyStats, insertOnly bool) error {
		br := ServingBatchReport{
			Name: name, ApplyIters: st.Iterations,
			Incremental: st.Incremental, InvalidationRounds: st.InvalidationRounds,
			Dropped: st.Dropped, InsertOnly: insertOnly,
		}
		if err := eng.Inspect(collect(rels, &br.Engine)); err != nil {
			return fmt.Errorf("chaos serving %s/%s: engine fingerprint failed: %w", sc.Name, name, err)
		}
		ctrl := &graph.Graph{
			Name: sc.Base.Name + "-" + name, Nodes: sc.Base.Nodes,
			Edges: cur, MaxWeight: sc.Base.MaxWeight,
		}
		ctrlSc := sc
		ctrlSc.Base = ctrl
		_, ctrlLoad, _, _ := servingProg(ctrlSc)
		res, err := exec(prog, paralagg.Config{Ranks: ranks, Subs: sc.Subs},
			ctrlLoad, collect(rels, &br.Scratch))
		if err != nil {
			return fmt.Errorf("chaos serving %s/%s: control run failed: %w", sc.Name, name, err)
		}
		br.ScratchIters = res.Iterations
		rep.Batches = append(rep.Batches, br)
		return nil
	}
	if err := check("initial", stats, false); err != nil {
		return nil, err
	}

	for _, batch := range sc.Batches {
		m := paralagg.Mutation{}
		if len(batch.InsertEdges) > 0 {
			m.Insert = map[string][]paralagg.Tuple{"edge": edgeTuples(sc.Kind, batch.InsertEdges)}
		}
		if len(batch.DeleteEdges) > 0 {
			m.Delete = map[string][]paralagg.Tuple{"edge": edgeTuples(sc.Kind, batch.DeleteEdges)}
		}
		st, err := eng.Apply(ctx, m)
		if err != nil {
			return nil, fmt.Errorf("chaos serving %s/%s: Apply failed: %w", sc.Name, batch.Name, err)
		}
		// Fold the batch into the tracked edge set. cc edges count both
		// directions (the control's undirected closure regenerates a deleted
		// direction from its surviving mirror otherwise).
		for _, e := range batch.InsertEdges {
			for _, d := range mirror(sc.Kind, e) {
				if !curSet[d] {
					curSet[d] = true
					cur = append(cur, d)
				}
			}
		}
		for _, e := range batch.DeleteEdges {
			for _, d := range mirror(sc.Kind, e) {
				delete(curSet, d)
			}
		}
		if len(batch.DeleteEdges) > 0 {
			kept := cur[:0:0]
			for _, e := range cur {
				if curSet[e] {
					kept = append(kept, e)
				}
			}
			cur = kept
		}
		insertOnly := len(batch.DeleteEdges) == 0 && len(batch.InsertEdges) > 0
		if err := check(batch.Name, st, insertOnly); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// mirror expands an edge into the directed tuples the base set stores for a
// scenario kind: itself for sssp, both directions for cc.
func mirror(kind string, e graph.Edge) []graph.Edge {
	if kind == "cc" {
		return []graph.Edge{e, {U: e.V, V: e.U, W: e.W}}
	}
	return []graph.Edge{e}
}
