package chaos

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"paralagg"
	"paralagg/internal/transport/tcp"
)

// Overload chaos: the differential discipline applied to resource
// exhaustion. A fault-free run fixes the answer; runs under injected
// overload — a receiver that cannot keep up, phantom memory pressure
// against a budget, a full checkpoint device — must either complete with
// bit-identical relations inside their resource bounds (flow control
// throttles, soft pressure sheds, checkpointing degrades) or fail
// structurally and recover under supervision to the identical answer
// (hard budget). Nothing may deadlock, buffer without bound, or OOM.

// OverloadReport is the outcome of one overload differential.
type OverloadReport struct {
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// Net aggregates the gang's transport counters (TCP slow-consumer
	// differential only): ThrottleStalls proves flow control engaged,
	// OutboxPeakFrames that no sender buffered past the window.
	Net paralagg.NetStats
	// Budget and MemPeakBytes describe the budgeted run (memory
	// differentials only).
	Budget       int64
	MemPeakBytes int64
	// SoftEvents / HardEvents count the pressure-ladder responses the
	// observer saw across all ranks.
	SoftEvents, HardEvents int64
	// BudgetErr is the structured violation the hard-budget run surfaced.
	BudgetErr *paralagg.ErrMemoryBudget
	// RecoveryAttempts counts supervised restarts (hard-budget run only).
	RecoveryAttempts int
	// DegradationsDelta is the growth of the process-wide checkpoint
	// degradation counter (disk-full differential only).
	DegradationsDelta int64
}

// Identical reports whether the overloaded run reproduced the fault-free
// relation contents exactly.
func (r *OverloadReport) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// overloadObserver counts pressure-ladder and degradation events across all
// rank goroutines.
type overloadObserver struct {
	soft, hard, degraded atomic.Int64
}

func (o *overloadObserver) OnEvent(e *paralagg.Event) {
	switch e.Kind {
	case paralagg.EventMemPressure:
		if e.Name == "hard" {
			o.hard.Add(1)
		} else {
			o.soft.Add(1)
		}
	case paralagg.EventCkptDegraded:
		o.degraded.Add(1)
	}
}

// TCPSlowConsumer runs sc in-process (the reference answer), then over a
// TCP gang whose endpoints carry a deliberately small send window while the
// last rank consumes slowly and advertises even less credit. The run must
// complete bit-identical — flow control rate-matches the slow receiver
// instead of losing data or buffering without bound — with every sender's
// outbox peak inside the window and at least one throttle stall recorded
// (otherwise the fault never bit). The gang runs under the adaptive
// watchdog, so a clean finish doubles as the proof that a
// throttled-but-live peer is not declared dead.
func TCPSlowConsumer(sc Scenario, ranks, window int) (*OverloadReport, error) {
	rep := &OverloadReport{}
	if _, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean)); err != nil {
		return nil, fmt.Errorf("chaos %s: in-process reference run failed: %w", sc.Name, err)
	}
	faults := &tcp.NetFaultPlan{
		SlowConsumers: []tcp.SlowConsumer{{
			Rank:   ranks - 1,
			Delay:  500 * time.Microsecond,
			Window: window / 2,
		}},
	}
	trs, err := gang(ranks, faults, func(cfg *tcp.Config) {
		cfg.SendWindow = window
		cfg.SendStallTimeout = 30 * time.Second
	})
	if err != nil {
		return nil, fmt.Errorf("chaos %s: building TCP gang: %w", sc.Name, err)
	}
	base := paralagg.Config{Subs: sc.Subs, AdaptiveWatchdog: true, WatchdogCeil: 10 * time.Second}
	errs := runGang(sc, trs, base, &rep.Recovered)
	for _, tr := range trs {
		rep.Net = rep.Net.Add(tr.Net())
		tr.Close()
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos %s: TCP rank %d failed under a slow consumer: %w", sc.Name, rank, err)
		}
	}
	if rep.Net.ThrottleStalls == 0 {
		return nil, fmt.Errorf("chaos %s: no throttle stalls recorded — the slow consumer never exhausted the window", sc.Name)
	}
	if rep.Net.OutboxPeakFrames > int64(window) {
		return nil, fmt.Errorf("chaos %s: sender outbox peaked at %d frames, past the %d-frame window",
			sc.Name, rep.Net.OutboxPeakFrames, window)
	}
	return rep, nil
}

// pressureIter is the iteration the memory differentials inject their
// phantom charge at; every chaos scenario's fixpoint runs clearly past it.
const pressureIter = 3

// probeBudget runs sc with an effectively unlimited budget to measure the
// workload's real accounted peak (the scale every budget below derives
// from) and to fix the reference fingerprints.
func probeBudget(sc Scenario, ranks int, clean *map[string]Fingerprint) (int64, error) {
	res, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs, MemBudget: 1 << 40},
		sc.Load, collect(sc.Rels, clean))
	if err != nil {
		return 0, fmt.Errorf("chaos %s: budget probe run failed: %w", sc.Name, err)
	}
	if res.MemPeakBytes <= 0 {
		return 0, fmt.Errorf("chaos %s: budget probe recorded no accounted memory", sc.Name)
	}
	if res.Iterations <= pressureIter {
		return 0, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, pressure at %d would never fire",
			sc.Name, res.Iterations, pressureIter)
	}
	return res.MemPeakBytes, nil
}

// MemPressureSoft proves the soft rung of the pressure ladder: a probe run
// measures the workload's accounted peak P, then the same workload runs
// with budget 16P and a one-time phantom charge of 0.9×budget injected on
// the last rank at iteration 3. The phantom lifts that rank into the soft
// band for the rest of the run, so every iteration from there on must shed
// scratch world-wide (the response is collective) — and the run must still
// complete with bit-identical relations and an accounted peak inside the
// budget. The hard rung must never fire.
func MemPressureSoft(sc Scenario, ranks int) (*OverloadReport, error) {
	rep := &OverloadReport{}
	peak, err := probeBudget(sc, ranks, &rep.Clean)
	if err != nil {
		return nil, err
	}
	rep.Budget = 16 * peak
	phantom := rep.Budget / 10 * 9 // soft band on its own; real usage adds < budget/16
	obs := &overloadObserver{}
	res, err := exec(sc.Prog(), paralagg.Config{
		Ranks:     ranks,
		Subs:      sc.Subs,
		MemBudget: rep.Budget,
		Observer:  obs,
		Faults: &paralagg.FaultPlan{
			Seed:         1,
			MemPressures: []paralagg.MemPressure{{Rank: ranks - 1, Iter: pressureIter, Bytes: phantom}},
		},
	}, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: run under soft memory pressure failed: %w", sc.Name, err)
	}
	rep.MemPeakBytes = res.MemPeakBytes
	rep.SoftEvents, rep.HardEvents = obs.soft.Load(), obs.hard.Load()
	if rep.SoftEvents == 0 {
		return nil, fmt.Errorf("chaos %s: injected phantom pressure raised no soft response", sc.Name)
	}
	if rep.HardEvents != 0 {
		return nil, fmt.Errorf("chaos %s: soft-band pressure escalated to %d hard responses", sc.Name, rep.HardEvents)
	}
	if rep.MemPeakBytes > rep.Budget {
		return nil, fmt.Errorf("chaos %s: accounted peak %d exceeds the %d budget", sc.Name, rep.MemPeakBytes, rep.Budget)
	}
	return rep, nil
}

// MemPressureHard proves the hard rung never becomes an OOM kill: with a
// phantom charge of a full budget injected mid-fixpoint, every rank must
// fail in the same iteration with a structured ErrMemoryBudget (inside the
// usual ErrRankFailed), and a supervised run with checkpointing on must
// recover past the (attempt-0-only) fault to the bit-identical answer.
func MemPressureHard(sc Scenario, ranks, every int) (*OverloadReport, error) {
	rep := &OverloadReport{}
	peak, err := probeBudget(sc, ranks, &rep.Clean)
	if err != nil {
		return nil, err
	}
	rep.Budget = 16 * peak
	plan := &paralagg.FaultPlan{
		Seed:         1,
		MemPressures: []paralagg.MemPressure{{Rank: ranks - 1, Iter: pressureIter, Bytes: rep.Budget}},
	}

	// Unsupervised: the violation must surface structurally on every rank
	// (the ladder's response is collective) and name the budget.
	_, err = exec(sc.Prog(), paralagg.Config{
		Ranks: ranks, Subs: sc.Subs, MemBudget: rep.Budget, Faults: plan,
	}, sc.Load, nil)
	if err == nil {
		return nil, fmt.Errorf("chaos %s: a full-budget phantom charge produced no error", sc.Name)
	}
	failures := paralagg.RankFailures(err)
	if len(failures) != ranks {
		return nil, fmt.Errorf("chaos %s: hard budget surfaced on %d of %d ranks: %w", sc.Name, len(failures), ranks, err)
	}
	mb, ok := paralagg.AsMemoryBudget(err)
	if !ok {
		return nil, fmt.Errorf("chaos %s: hard-budget failure carries no ErrMemoryBudget: %w", sc.Name, err)
	}
	if mb.Budget != rep.Budget || mb.Used < mb.Budget {
		return nil, fmt.Errorf("chaos %s: budget violation %v does not match the configured budget %d", sc.Name, mb, rep.Budget)
	}
	rep.BudgetErr = mb

	// Supervised: the default attempt-0-only fault policy drops the phantom
	// on restart, so recovery resumes from the pre-violation checkpoint and
	// must land on the fault-free answer.
	scfg := paralagg.SuperviseConfig{
		Config: paralagg.Config{
			Ranks:           ranks,
			Subs:            sc.Subs,
			MemBudget:       rep.Budget,
			CheckpointEvery: every,
			Checkpoints:     paralagg.NewMemoryCheckpointSink(),
			Faults:          plan,
		},
		RecoveryBackoff: time.Millisecond,
	}
	res, srep, err := supervise(sc.Prog(), scfg, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: supervised recovery from a hard budget failed: %w", sc.Name, err)
	}
	if srep.RecoveryAttempts == 0 {
		return nil, fmt.Errorf("chaos %s: injected hard pressure never fired — nothing was recovered", sc.Name)
	}
	rep.RecoveryAttempts = srep.RecoveryAttempts
	rep.MemPeakBytes = res.MemPeakBytes
	return rep, nil
}

// DiskFullDegradation proves checkpointing degrades instead of aborting:
// with file-backed checkpointing every `every` iterations, rank 0's save at
// iteration 2×every fails as if the device were full. The run must complete
// with bit-identical relations, the degradation must be counted and
// observed (the rank carries on against an in-memory fallback sink), and
// the generations written before the failure must survive on disk.
func DiskFullDegradation(sc Scenario, ranks, every int) (*OverloadReport, error) {
	rep := &OverloadReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= 2*every {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, disk-full at checkpoint %d would never fire",
			sc.Name, clean.Iterations, 2*every)
	}
	dir, err := os.MkdirTemp("", "paralagg-chaos-diskfull-")
	if err != nil {
		return nil, fmt.Errorf("chaos %s: temp checkpoint dir: %w", sc.Name, err)
	}
	defer os.RemoveAll(dir)

	obs := &overloadObserver{}
	before := paralagg.CheckpointDegradations()
	_, err = exec(sc.Prog(), paralagg.Config{
		Ranks:           ranks,
		Subs:            sc.Subs,
		CheckpointEvery: every,
		Checkpoints:     paralagg.NewFileCheckpointSink(dir),
		Observer:        obs,
		Faults: &paralagg.FaultPlan{
			Seed:      1,
			DiskFulls: []paralagg.DiskFull{{Rank: 0, Iter: 2 * every}},
		},
	}, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: run with a full checkpoint device aborted instead of degrading: %w", sc.Name, err)
	}
	rep.DegradationsDelta = paralagg.CheckpointDegradations() - before
	if rep.DegradationsDelta < 1 {
		return nil, fmt.Errorf("chaos %s: injected disk-full never degraded a sink", sc.Name)
	}
	if got := obs.degraded.Load(); got < 1 {
		return nil, fmt.Errorf("chaos %s: checkpoint degradation raised no observer event", sc.Name)
	}
	// The save at iteration `every` preceded the failure: the degraded
	// rank's on-disk generation must survive untouched. (A complete agreed
	// set need not: the healthy ranks keep checkpointing to disk and prune
	// past the degraded rank's last file-backed save — cross-restart
	// recovery is void after degradation, which is why it warns.)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: reading checkpoint dir: %w", sc.Name, err)
	}
	rank0Gens := 0
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "rank-0000.") && strings.HasSuffix(ent.Name(), ".ckpt") {
			rank0Gens++
		}
	}
	if rank0Gens == 0 {
		return nil, fmt.Errorf("chaos %s: the degraded rank's pre-failure generation vanished from disk", sc.Name)
	}
	return rep, nil
}
