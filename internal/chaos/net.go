package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"paralagg"
	"paralagg/internal/supervisor"
	"paralagg/internal/transport/tcp"
)

// Network chaos: the same differential discipline as the crash/restart
// suite, but over the real TCP transport. A gang of single-rank worlds —
// one per "process", connected by loopback sockets — runs each scenario
// under injected wire faults. Faults the transport repairs transparently
// (slow links, connection resets, corrupted frames) must leave the answer
// bit-identical to the in-process run; faults it cannot repair (network
// partitions, killed processes) must surface as structured rank failures on
// every survivor, and a supervised restart from the shared checkpoints must
// still land on the fault-free answer.

// gang builds n connected TCP endpoints on loopback, every one carrying the
// same deterministic wire-fault plan. customize hooks, when given, adjust
// each endpoint's config before it is opened (the overload suite shrinks
// the flow-control window this way).
func gang(n int, faults *tcp.NetFaultPlan, customize ...func(*tcp.Config)) ([]*tcp.Transport, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*tcp.Transport, n)
	for i := range trs {
		cfg := tcp.Config{
			Rank: i, Peers: addrs, Listener: lns[i],
			// Fast detection keeps the suite quick; the window (4×25ms) still
			// dwarfs loopback latency.
			HeartbeatEvery:  25 * time.Millisecond,
			HeartbeatMisses: 4,
			ConnectTimeout:  10 * time.Second,
			Seed:            42,
			Faults:          faults,
		}
		for _, c := range customize {
			c(&cfg)
		}
		tr, err := tcp.New(cfg)
		if err != nil {
			return nil, err
		}
		trs[i] = tr
	}
	return trs, nil
}

// runGang executes sc once per gang member (each member is one rank of a
// distributed world) and returns the per-rank errors. The member hosting
// rank 0 records fingerprints through fps; base configures everything
// except the transport.
func runGang(sc Scenario, trs []*tcp.Transport, base paralagg.Config, fps *map[string]Fingerprint) []error {
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *tcp.Transport) {
			defer wg.Done()
			cfg := base
			cfg.Transport = tr
			_, errs[i] = exec(sc.Prog(), cfg, sc.Load, collect(sc.Rels, fps))
		}(i, tr)
	}
	wg.Wait()
	return errs
}

// NetReport is the outcome of one TCP differential.
type NetReport struct {
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// Net aggregates every endpoint's robustness counters: the proof the
	// injected faults actually bit (reconnects, retransmits, CRC errors)
	// and were repaired below the runtime's waterline.
	Net paralagg.NetStats
	// RecoveryAttempts counts supervised restarts (kill-recovery runs only).
	RecoveryAttempts int
}

// Identical reports whether the TCP run reproduced the in-process answer
// exactly.
func (r *NetReport) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// TCPDifferential runs sc in-process (the reference answer), then over a
// TCP gang with the given wire faults. The faults must be of the kinds the
// transport repairs transparently: the gang run must succeed and produce
// bit-identical relations.
func TCPDifferential(sc Scenario, ranks int, faults *tcp.NetFaultPlan) (*NetReport, error) {
	rep := &NetReport{}
	if _, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean)); err != nil {
		return nil, fmt.Errorf("chaos %s: in-process reference run failed: %w", sc.Name, err)
	}
	trs, err := gang(ranks, faults)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: building TCP gang: %w", sc.Name, err)
	}
	errs := runGang(sc, trs, paralagg.Config{Subs: sc.Subs}, &rep.Recovered)
	for _, tr := range trs {
		rep.Net = rep.Net.Add(tr.Net())
		tr.Close()
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos %s: TCP rank %d failed under repairable faults: %w", sc.Name, rank, err)
		}
	}
	return rep, nil
}

// TCPPartition runs sc over a TCP gang that partitions rank 0 away from
// everyone after the gang has exchanged some traffic. The partition is not
// repairable: every rank must surface a structured ErrRankFailed wrapping
// ErrPeerUnreachable instead of wedging.
func TCPPartition(sc Scenario, ranks int) error {
	others := make([]int, 0, ranks-1)
	for r := 1; r < ranks; r++ {
		others = append(others, r)
	}
	faults := &tcp.NetFaultPlan{
		Partitions: []tcp.Partition{{A: []int{0}, B: others, AfterSends: 40}},
	}
	trs, err := gang(ranks, faults)
	if err != nil {
		return fmt.Errorf("chaos %s: building TCP gang: %w", sc.Name, err)
	}
	var fps map[string]Fingerprint
	errs := runGang(sc, trs, paralagg.Config{Subs: sc.Subs, AdaptiveWatchdog: true, WatchdogCeil: 10 * time.Second}, &fps)
	for _, tr := range trs {
		tr.Kill() // flushing into a partition would only wait out the timeout
	}
	for rank, err := range errs {
		if err == nil {
			return fmt.Errorf("chaos %s: rank %d finished across a network partition", sc.Name, rank)
		}
		rf, ok := paralagg.AsRankFailure(err)
		if !ok {
			return fmt.Errorf("chaos %s: rank %d partition error is unstructured: %w", sc.Name, rank, err)
		}
		if !errors.Is(rf, paralagg.ErrPeerUnreachable) && !errors.Is(rf, paralagg.ErrRecvTimeout) {
			return fmt.Errorf("chaos %s: rank %d failure %v does not name the partition", sc.Name, rank, rf)
		}
	}
	return nil
}

// TCPKillRecovery is the full robustness loop over real sockets: sc runs on
// a TCP gang with checkpointing on; rank (ranks-1)'s process is killed
// mid-fixpoint (its transport torn down exactly as a crash would); every
// survivor observes a structured failure; and the existing supervisor
// rebuilds the gang — fresh sockets, fresh worlds — resuming from the
// shared checkpoints. The recovered answer must be bit-identical to the
// in-process fault-free run.
func TCPKillRecovery(sc Scenario, ranks, every, crashIter int) (*NetReport, error) {
	rep := &NetReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: in-process reference run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	victim := ranks - 1
	sink := paralagg.NewMemoryCheckpointSink()
	srep, err := supervisor.Run(ranks, supervisor.Config{
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
	}, func(attempt, _ int, resume bool) error {
		trs, err := gang(ranks, nil)
		if err != nil {
			return err
		}
		base := paralagg.Config{
			Subs:             sc.Subs,
			CheckpointEvery:  every,
			Checkpoints:      sink,
			AdaptiveWatchdog: true,
			WatchdogCeil:     10 * time.Second,
		}
		if resume {
			if _, ok, err := sink.LatestValid(); ok && err == nil {
				base.Resume = true
			}
		}
		if attempt == 0 {
			// The victim's process crashes as it enters iteration crashIter's
			// tuple exchange: its rank dies AND its wire goes silent, so the
			// survivors' failure detectors must do the declaring.
			base.Faults = &paralagg.FaultPlan{
				Seed:    1,
				Crashes: []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
			}
		}
		var fps map[string]Fingerprint
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for i, tr := range trs {
			wg.Add(1)
			go func(i int, tr *tcp.Transport) {
				defer wg.Done()
				cfg := base
				cfg.Transport = tr
				_, errs[i] = exec(sc.Prog(), cfg, sc.Load, collect(sc.Rels, &fps))
				if i == victim && errs[i] != nil && attempt == 0 {
					tr.Kill() // the process is gone; so is its endpoint
				}
			}(i, tr)
		}
		wg.Wait()
		for i, tr := range trs {
			rep.Net = rep.Net.Add(tr.Net())
			if !(i == victim && attempt == 0) {
				tr.Close()
			}
		}
		if err := errors.Join(errs...); err != nil {
			return err
		}
		rep.Recovered = fps
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("chaos %s: supervised TCP recovery failed: %w", sc.Name, err)
	}
	if srep.RecoveryAttempts == 0 {
		return nil, fmt.Errorf("chaos %s: injected kill never fired — nothing was recovered", sc.Name)
	}
	rep.RecoveryAttempts = srep.RecoveryAttempts
	return rep, nil
}

// TCPCorruptionDetection runs sc over a TCP gang with integrity checking on
// and one stored tuple of the scenario's computed relation bit-flipped on
// rank 0 at the top of iteration corruptIter. The state digests
// ride the convergence Allreduce over the real wire, so every member — not
// just the corrupted one — must abort with a structured ErrStateDiverged
// naming that same iteration.
func TCPCorruptionDetection(sc Scenario, ranks, corruptIter int) error {
	trs, err := gang(ranks, nil)
	if err != nil {
		return fmt.Errorf("chaos %s: building TCP gang: %w", sc.Name, err)
	}
	rel := sc.Rels[len(sc.Rels)-1]
	base := paralagg.Config{
		Subs:             sc.Subs,
		Integrity:        true,
		AdaptiveWatchdog: true,
		WatchdogCeil:     10 * time.Second,
		Faults: &paralagg.FaultPlan{
			Seed:          1,
			StateCorrupts: []paralagg.StateCorrupt{{Rank: 0, Iter: corruptIter, Rel: rel}},
		},
	}
	var fps map[string]Fingerprint
	errs := runGang(sc, trs, base, &fps)
	for _, tr := range trs {
		tr.Kill() // every member aborted; flushing would only wait out timeouts
	}
	for rank, err := range errs {
		if err == nil {
			return fmt.Errorf("chaos %s: TCP rank %d finished despite injected state corruption", sc.Name, rank)
		}
		div, ok := paralagg.AsStateDivergence(err)
		if !ok {
			return fmt.Errorf("chaos %s: TCP rank %d failure carries no ErrStateDiverged: %w", sc.Name, rank, err)
		}
		if div.Iter < corruptIter {
			return fmt.Errorf("chaos %s: TCP rank %d detected divergence at iter %d, before the corruption at %d",
				sc.Name, rank, div.Iter, corruptIter)
		}
	}
	return nil
}

// RepairableFaults is the standard wire-fault plan of the network chaos
// suite: a reset and a corrupted frame early in the run plus a slow link
// throughout — every one repaired by the transport below the runtime's
// waterline.
func RepairableFaults(ranks int) *tcp.NetFaultPlan {
	plan := &tcp.NetFaultPlan{
		SlowLinks: []tcp.SlowLink{{From: 0, To: ranks - 1, Delay: 2 * time.Millisecond}},
		Resets:    []tcp.Reset{{From: ranks - 1, To: 0, AfterSends: 4}},
		CorruptFrames: []tcp.CorruptFrame{
			{From: 1 % ranks, To: 0, AfterSends: 6},
		},
	}
	return plan
}

// VerifyNetStats checks that the injected repairable faults actually
// exercised the recovery machinery (otherwise the differential proves
// nothing).
func VerifyNetStats(n paralagg.NetStats) error {
	if n.Reconnects == 0 {
		return errors.New("no reconnects recorded: the injected reset never bit")
	}
	if n.CRCErrors == 0 {
		return errors.New("no CRC rejections recorded: the injected corruption never bit")
	}
	return nil
}
