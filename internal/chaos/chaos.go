// Package chaos differentially tests the runtime's fault tolerance. For
// each query scenario a fault-free run fixes the expected answer; a run
// with an injected mid-fixpoint crash must surface a structured
// ErrRankFailed (never a deadlock or a wrong answer); and a checkpoint
// resume must reproduce the fault-free answer bit for bit. Because all
// aggregation is over lattice joins, the final relation contents are
// independent of the iteration a crash interrupts, which is what makes the
// bit-identical comparison sound.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// Scenario is one query workload the harness can exercise. Load must be
// deterministic: the harness re-runs it for every world it builds.
type Scenario struct {
	Name string
	Prog func() *paralagg.Program
	Load func(rk *paralagg.Rank) error
	// Rels lists the relations whose final contents the differential
	// compares.
	Rels []string
	// Subs is the sub-bucket count the harness runs the scenario with
	// (0 = 1 = off). Skewed scenarios set it so crashes and elastic
	// restores exercise sub-bucket placement, not just bucket hashing.
	Subs int
}

// Scenarios returns the standard workloads: SSSP and connected components
// on a small grid, transitive closure on a chain, and SSSP on a hub-heavy
// social graph with sub-bucketing on — the skew case whose remap must
// respect sub-bucket placement. The graphs are sized so the fixpoints run
// clearly past the default crash iteration.
func Scenarios() []Scenario {
	ssspG := graph.Grid("chaos-grid-sssp", 4, 4, 8, 11)
	ccG := graph.Grid("chaos-grid-cc", 4, 4, 1, 12)
	tcG := graph.Chain("chaos-chain-tc", 10, 1, 13)
	skewG := graph.Social("chaos-social-sssp", 6, 220, 3, 24, 64, 17)
	// Hub shortcuts keep the social core's diameter tiny, so on its own the
	// SSSP fixpoint converges before the harness's later crash iterations
	// ever fire. A weighted chain tail off the source guarantees depth while
	// leaving the hub-heavy degree skew (the point of this scenario) intact.
	tail := skewG.Nodes
	skewG.Nodes += 8
	for i := 0; i < 8; i++ {
		u := uint64(0)
		if i > 0 {
			u = uint64(tail + i - 1)
		}
		skewG.Edges = append(skewG.Edges, graph.Edge{U: u, V: uint64(tail + i), W: 3})
	}
	return []Scenario{
		{
			Name: "sssp",
			Prog: queries.SSSPProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, ssspG, []uint64{0, 5}) },
			Rels: []string{"edge", "spath"},
		},
		{
			Name: "cc",
			Prog: queries.CCProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadCC(rk, ccG) },
			Rels: []string{"edge", "cc"},
		},
		{
			Name: "tc",
			Prog: queries.TCProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadTC(rk, tcG) },
			Rels: []string{"edge", "path"},
		},
		{
			Name: "sssp-skew",
			Prog: queries.SSSPProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, skewG, []uint64{0}) },
			Rels: []string{"edge", "spath"},
			Subs: 4,
		},
	}
}

// Schedule is the collective schedule every world the harness builds runs
// under ("" = flat). The -chaos* suites thread -collective-schedule through
// here so the whole battery — crash/resume, wire faults, integrity,
// overload, hot replacement — can be replayed under tree or ring routing;
// the differentials' bit-identical bars then prove recovery does not depend
// on the reduction shape the collectives route through.
var Schedule string

// exec and supervise wrap the runtime entry points, stamping the suite-wide
// schedule onto every world the harness builds (gang members included:
// their configs are copied from bases that pass through here too).
func exec(prog *paralagg.Program, cfg paralagg.Config, load, inspect func(*paralagg.Rank) error) (*paralagg.Result, error) {
	cfg.CollectiveSchedule = Schedule
	return paralagg.Exec(prog, cfg, load, inspect)
}

func supervise(prog *paralagg.Program, cfg paralagg.SuperviseConfig, load, inspect func(*paralagg.Rank) error) (*paralagg.Result, *paralagg.SuperviseReport, error) {
	cfg.Config.CollectiveSchedule = Schedule
	return paralagg.Supervise(prog, cfg, load, inspect)
}

// Fingerprint is an order-independent digest of a relation's global
// contents: the tuple count plus two independently seeded hash sums. Equal
// fingerprints mean (up to hash collision) identical tuple sets.
type Fingerprint struct {
	Count uint64
	Sum1  uint64
	Sum2  uint64
}

func hashTuple(t paralagg.Tuple, seed uint64) uint64 {
	h := seed
	for _, v := range t {
		h ^= uint64(v)
		// splitmix64 finalizer: full avalanche per column.
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// collect builds an inspect callback that fingerprints rels globally
// (collective sums over every rank's local tuples) and stores the result
// through dst on rank 0.
func collect(rels []string, dst *map[string]Fingerprint) func(*paralagg.Rank) error {
	return func(rk *paralagg.Rank) error {
		fps := make(map[string]Fingerprint, len(rels))
		for _, rel := range rels {
			var cnt, s1, s2 uint64
			if err := rk.Each(rel, func(t paralagg.Tuple) {
				cnt++
				s1 += hashTuple(t, 0xa076_1d64_78bd_642f)
				s2 += hashTuple(t, 0xe703_7ed1_a0b4_28db)
			}); err != nil {
				return err
			}
			fps[rel] = Fingerprint{
				Count: rk.Reduce(cnt, paralagg.OpSum),
				Sum1:  rk.Reduce(s1, paralagg.OpSum),
				Sum2:  rk.Reduce(s2, paralagg.OpSum),
			}
		}
		if rk.ID() == 0 {
			*dst = fps
		}
		return nil
	}
}

// Report is the outcome of one Differential run.
type Report struct {
	// Clean holds the fault-free fingerprints, Recovered the
	// crash-checkpoint-resume ones; Identical compares them.
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// CrashErr is the structured error the faulted run surfaced.
	CrashErr error
	// CleanIters and ResumeIters are total fixpoint iterations of the two
	// successful runs. The resumed count includes the restored (skipped)
	// prefix, so the two must agree when the fixpoint replays the same
	// trajectory.
	CleanIters  int
	ResumeIters int
	// RecoverySeconds is the simulated time the resumed run spent restoring
	// the snapshot; positive iff a checkpoint was actually reloaded.
	RecoverySeconds float64
}

// Identical reports whether the recovered run reproduced the fault-free
// relation contents exactly.
func (r *Report) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// Differential runs sc three times on a world of the given rank count:
// fault-free; with checkpointing every `every` iterations and rank
// (ranks-1) crashing as it enters the tuple exchange of iteration
// crashIter; and resumed from the surviving checkpoint. It errors unless
// the crash surfaces as a structured ErrRankFailed and the resume
// completes; the caller compares fingerprints with Report.Identical.
func Differential(sc Scenario, ranks, every, crashIter int) (*Report, error) {
	rep := &Report{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free run failed: %w", sc.Name, err)
	}
	rep.CleanIters = clean.Iterations
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	sink := paralagg.NewMemoryCheckpointSink()
	victim := ranks - 1
	_, err = exec(sc.Prog(), paralagg.Config{
		Ranks:           ranks,
		Subs:            sc.Subs,
		CheckpointEvery: every,
		Checkpoints:     sink,
		// Adaptive deadline with the old fixed value as ceiling: the suite
		// doubles as the no-false-positives check for the EWMA watchdog.
		AdaptiveWatchdog: true,
		WatchdogCeil:     5 * time.Second,
		Faults: &paralagg.FaultPlan{
			Seed:    1,
			Crashes: []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
		},
	}, sc.Load, nil)
	if err == nil {
		return nil, fmt.Errorf("chaos %s: injected crash of rank %d produced no error", sc.Name, victim)
	}
	rep.CrashErr = err
	rf, ok := paralagg.AsRankFailure(err)
	if !ok {
		return nil, fmt.Errorf("chaos %s: crash error carries no ErrRankFailed: %w", sc.Name, err)
	}
	if rf.Rank != victim || rf.Iter != crashIter || !errors.Is(rf, paralagg.ErrInjectedCrash) {
		return nil, fmt.Errorf("chaos %s: failure %v does not match the injected crash (rank %d, iter %d)",
			sc.Name, rf, victim, crashIter)
	}

	resumed, err := exec(sc.Prog(), paralagg.Config{
		Ranks:           ranks,
		Subs:            sc.Subs,
		CheckpointEvery: every,
		Checkpoints:     sink,
		Resume:          true,
	}, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: resume after crash failed: %w", sc.Name, err)
	}
	rep.ResumeIters = resumed.Iterations
	rep.RecoverySeconds = resumed.PhaseSeconds["recovery"]
	return rep, nil
}

// ElasticReport is the outcome of one supervised differential: a fault-free
// run fixes the answer, then a single supervised run crashes mid-fixpoint
// and recovers automatically — possibly more than once, possibly into a
// different world size — and must land on the identical relation contents.
type ElasticReport struct {
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// RecoveryAttempts and RanksLost come from the supervisor's report.
	RecoveryAttempts int
	RanksLost        []int
	// FinalRanks is the world size the run finished on.
	FinalRanks int
	// RemapSeconds and RecoverySeconds are the simulated time the final
	// world spent in the elastic remap / same-size restore phases.
	RemapSeconds    float64
	RecoverySeconds float64
}

// Identical reports whether the supervised run reproduced the fault-free
// relation contents exactly.
func (r *ElasticReport) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// elastic is the shared body of Elastic and Repeated: run sc fault-free at
// ranks, then once under supervision with the given config, and compare.
func elastic(sc Scenario, ranks, minIters int, cfg paralagg.SuperviseConfig) (*ElasticReport, error) {
	rep := &ElasticReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= minIters {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, minIters)
	}

	res, srep, err := supervise(sc.Prog(), cfg, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: supervised run failed: %w", sc.Name, err)
	}
	if srep.RecoveryAttempts == 0 {
		return nil, fmt.Errorf("chaos %s: injected crash never fired — nothing was recovered", sc.Name)
	}
	rep.RecoveryAttempts = srep.RecoveryAttempts
	rep.RanksLost = srep.RanksLost
	rep.FinalRanks = srep.FinalRanks
	rep.RemapSeconds = res.PhaseSeconds["remap"]
	rep.RecoverySeconds = res.PhaseSeconds["recovery"]
	return rep, nil
}

// Elastic runs sc fault-free at ranks, then once under supervision with
// rank (ranks-1) crashing as it enters iteration crashIter's tuple
// exchange; the supervisor rebuilds the world at restartRanks (same size,
// degraded, halved — the caller picks) and restores through the remap path
// when the size changed. The recovered relations must be bit-identical to
// the fault-free ones.
func Elastic(sc Scenario, ranks, every, crashIter, restartRanks int) (*ElasticReport, error) {
	cfg := paralagg.SuperviseConfig{
		Config: paralagg.Config{
			Ranks:            ranks,
			Subs:             sc.Subs,
			CheckpointEvery:  every,
			Checkpoints:      paralagg.NewMemoryCheckpointSink(),
			AdaptiveWatchdog: true,
			WatchdogCeil:     5 * time.Second,
			Faults: &paralagg.FaultPlan{
				Seed:    1,
				Crashes: []paralagg.Crash{{Rank: ranks - 1, Iter: crashIter, Op: "alltoallv"}},
			},
		},
		RecoveryBackoff: time.Millisecond,
	}
	if restartRanks != ranks {
		cfg.RanksFor = func(restart, prev int, lost []int) int { return restartRanks }
	}
	rep, err := elastic(sc, ranks, crashIter, cfg)
	if err != nil {
		return nil, err
	}
	if rep.FinalRanks != restartRanks {
		return nil, fmt.Errorf("chaos %s: recovered world has %d ranks, want %d", sc.Name, rep.FinalRanks, restartRanks)
	}
	return rep, nil
}

// Repeated runs sc fault-free, then under supervision with TWO crashes
// across successive recoveries: rank (ranks-1) dies at iteration 3 of the
// initial world, and after that recovery rank 0 dies at iteration 5 of the
// restarted world. The second recovery must still reproduce the fault-free
// answer bit for bit.
func Repeated(sc Scenario, ranks, every int) (*ElasticReport, error) {
	const firstCrash, secondCrash = 3, 5
	plans := []*paralagg.FaultPlan{
		{Seed: 1, Crashes: []paralagg.Crash{{Rank: ranks - 1, Iter: firstCrash, Op: "alltoallv"}}},
		{Seed: 2, Crashes: []paralagg.Crash{{Rank: 0, Iter: secondCrash, Op: "alltoallv"}}},
	}
	cfg := paralagg.SuperviseConfig{
		Config: paralagg.Config{
			Ranks:            ranks,
			Subs:             sc.Subs,
			CheckpointEvery:  every,
			Checkpoints:      paralagg.NewMemoryCheckpointSink(),
			AdaptiveWatchdog: true,
			WatchdogCeil:     5 * time.Second,
		},
		RecoveryBackoff: time.Millisecond,
		FaultsFor: func(attempt int) *paralagg.FaultPlan {
			if attempt < len(plans) {
				return plans[attempt]
			}
			return nil
		},
	}
	rep, err := elastic(sc, ranks, secondCrash, cfg)
	if err != nil {
		return nil, err
	}
	if rep.RecoveryAttempts != 2 {
		return nil, fmt.Errorf("chaos %s: expected 2 recoveries (two injected crashes), got %d",
			sc.Name, rep.RecoveryAttempts)
	}
	return rep, nil
}

// StuckCollective runs sc with rank (1 mod ranks) hanging forever inside
// iteration 2's tuple exchange and the ADAPTIVE watchdog armed with timeout
// as its ceiling, returning the run's error: without a watchdog this
// schedule deadlocks the world; with it every rank must observe a
// structured ErrRankFailed — and because two healthy iterations have
// already fed the EWMA, the conversion happens near the deadline floor,
// well inside the ceiling.
func StuckCollective(sc Scenario, ranks int, timeout time.Duration) error {
	_, err := exec(sc.Prog(), paralagg.Config{
		Ranks:            ranks,
		Subs:             sc.Subs,
		AdaptiveWatchdog: true,
		WatchdogCeil:     timeout,
		Faults: &paralagg.FaultPlan{
			Seed:  1,
			Hangs: []paralagg.Hang{{Rank: 1 % ranks, Iter: 2, Op: "alltoallv"}},
		},
	}, sc.Load, nil)
	return err
}
