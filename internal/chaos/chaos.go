// Package chaos differentially tests the runtime's fault tolerance. For
// each query scenario a fault-free run fixes the expected answer; a run
// with an injected mid-fixpoint crash must surface a structured
// ErrRankFailed (never a deadlock or a wrong answer); and a checkpoint
// resume must reproduce the fault-free answer bit for bit. Because all
// aggregation is over lattice joins, the final relation contents are
// independent of the iteration a crash interrupts, which is what makes the
// bit-identical comparison sound.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// Scenario is one query workload the harness can exercise. Load must be
// deterministic: the harness re-runs it for every world it builds.
type Scenario struct {
	Name string
	Prog func() *paralagg.Program
	Load func(rk *paralagg.Rank) error
	// Rels lists the relations whose final contents the differential
	// compares.
	Rels []string
}

// Scenarios returns the standard workloads: SSSP and connected components
// on a small grid, transitive closure on a chain. The graphs are sized so
// the fixpoints run clearly past the default crash iteration.
func Scenarios() []Scenario {
	ssspG := graph.Grid("chaos-grid-sssp", 4, 4, 8, 11)
	ccG := graph.Grid("chaos-grid-cc", 4, 4, 1, 12)
	tcG := graph.Chain("chaos-chain-tc", 10, 1, 13)
	return []Scenario{
		{
			Name: "sssp",
			Prog: queries.SSSPProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, ssspG, []uint64{0, 5}) },
			Rels: []string{"edge", "spath"},
		},
		{
			Name: "cc",
			Prog: queries.CCProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadCC(rk, ccG) },
			Rels: []string{"edge", "cc"},
		},
		{
			Name: "tc",
			Prog: queries.TCProgram,
			Load: func(rk *paralagg.Rank) error { return queries.LoadTC(rk, tcG) },
			Rels: []string{"edge", "path"},
		},
	}
}

// Fingerprint is an order-independent digest of a relation's global
// contents: the tuple count plus two independently seeded hash sums. Equal
// fingerprints mean (up to hash collision) identical tuple sets.
type Fingerprint struct {
	Count uint64
	Sum1  uint64
	Sum2  uint64
}

func hashTuple(t paralagg.Tuple, seed uint64) uint64 {
	h := seed
	for _, v := range t {
		h ^= uint64(v)
		// splitmix64 finalizer: full avalanche per column.
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// collect builds an inspect callback that fingerprints rels globally
// (collective sums over every rank's local tuples) and stores the result
// through dst on rank 0.
func collect(rels []string, dst *map[string]Fingerprint) func(*paralagg.Rank) error {
	return func(rk *paralagg.Rank) error {
		fps := make(map[string]Fingerprint, len(rels))
		for _, rel := range rels {
			var cnt, s1, s2 uint64
			rk.Each(rel, func(t paralagg.Tuple) {
				cnt++
				s1 += hashTuple(t, 0xa076_1d64_78bd_642f)
				s2 += hashTuple(t, 0xe703_7ed1_a0b4_28db)
			})
			fps[rel] = Fingerprint{
				Count: rk.Reduce(cnt, paralagg.OpSum),
				Sum1:  rk.Reduce(s1, paralagg.OpSum),
				Sum2:  rk.Reduce(s2, paralagg.OpSum),
			}
		}
		if rk.ID() == 0 {
			*dst = fps
		}
		return nil
	}
}

// Report is the outcome of one Differential run.
type Report struct {
	// Clean holds the fault-free fingerprints, Recovered the
	// crash-checkpoint-resume ones; Identical compares them.
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// CrashErr is the structured error the faulted run surfaced.
	CrashErr error
	// CleanIters and ResumeIters are total fixpoint iterations of the two
	// successful runs. The resumed count includes the restored (skipped)
	// prefix, so the two must agree when the fixpoint replays the same
	// trajectory.
	CleanIters  int
	ResumeIters int
	// RecoverySeconds is the simulated time the resumed run spent restoring
	// the snapshot; positive iff a checkpoint was actually reloaded.
	RecoverySeconds float64
}

// Identical reports whether the recovered run reproduced the fault-free
// relation contents exactly.
func (r *Report) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// Differential runs sc three times on a world of the given rank count:
// fault-free; with checkpointing every `every` iterations and rank
// (ranks-1) crashing as it enters the tuple exchange of iteration
// crashIter; and resumed from the surviving checkpoint. It errors unless
// the crash surfaces as a structured ErrRankFailed and the resume
// completes; the caller compares fingerprints with Report.Identical.
func Differential(sc Scenario, ranks, every, crashIter int) (*Report, error) {
	rep := &Report{}
	clean, err := paralagg.Exec(sc.Prog(), paralagg.Config{Ranks: ranks},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: fault-free run failed: %w", sc.Name, err)
	}
	rep.CleanIters = clean.Iterations
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	sink := paralagg.NewMemoryCheckpointSink()
	victim := ranks - 1
	_, err = paralagg.Exec(sc.Prog(), paralagg.Config{
		Ranks:           ranks,
		CheckpointEvery: every,
		Checkpoints:     sink,
		Watchdog:        5 * time.Second,
		Faults: &paralagg.FaultPlan{
			Seed:    1,
			Crashes: []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
		},
	}, sc.Load, nil)
	if err == nil {
		return nil, fmt.Errorf("chaos %s: injected crash of rank %d produced no error", sc.Name, victim)
	}
	rep.CrashErr = err
	rf, ok := paralagg.AsRankFailure(err)
	if !ok {
		return nil, fmt.Errorf("chaos %s: crash error carries no ErrRankFailed: %w", sc.Name, err)
	}
	if rf.Rank != victim || rf.Iter != crashIter || !errors.Is(rf, paralagg.ErrInjectedCrash) {
		return nil, fmt.Errorf("chaos %s: failure %v does not match the injected crash (rank %d, iter %d)",
			sc.Name, rf, victim, crashIter)
	}

	resumed, err := paralagg.Exec(sc.Prog(), paralagg.Config{
		Ranks:           ranks,
		CheckpointEvery: every,
		Checkpoints:     sink,
		Resume:          true,
	}, sc.Load, collect(sc.Rels, &rep.Recovered))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: resume after crash failed: %w", sc.Name, err)
	}
	rep.ResumeIters = resumed.Iterations
	rep.RecoverySeconds = resumed.PhaseSeconds["recovery"]
	return rep, nil
}

// StuckCollective runs sc with rank (1 mod ranks) hanging forever inside
// iteration 2's tuple exchange and the watchdog armed, returning the run's
// error: without the watchdog this schedule deadlocks the world, with it
// every rank must observe a structured ErrRankFailed.
func StuckCollective(sc Scenario, ranks int, timeout time.Duration) error {
	_, err := paralagg.Exec(sc.Prog(), paralagg.Config{
		Ranks:    ranks,
		Watchdog: timeout,
		Faults: &paralagg.FaultPlan{
			Seed:  1,
			Hangs: []paralagg.Hang{{Rank: 1 % ranks, Iter: 2, Op: "alltoallv"}},
		},
	}, sc.Load, nil)
	return err
}
