package chaos

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"paralagg"
	"paralagg/internal/supervisor"
	"paralagg/internal/transport/tcp"
)

// Hot-replacement chaos: the partial-restart recovery loop over real
// sockets. Where TCPKillRecovery tears the whole gang down and rebuilds it,
// TCPHotReplace keeps the survivors alive: the victim's process dies
// mid-fixpoint, the survivors park at the transport's recovery barrier with
// their in-memory state intact, a replacement process is spawned at the
// next membership epoch, restores only the victim's shard from the shared
// checkpoints, and replays forward off the survivors' retained send
// histories until the gang is in lockstep again. The recovered answer must
// be bit-identical to the in-process fault-free run — the same differential
// bar the full-restart path clears — and the repair must be cheaper, which
// is what BENCH_recovery.json records.

// recoveryHeartbeat / recoveryPeerTimeout tune the failure detector for the
// suite: detection must land well inside the runtime's receive watchdog so
// the survivors park (recvVia re-arms while the world is recovering)
// instead of timing out, and the timeout must still dwarf loopback jitter.
const (
	recoveryHeartbeat   = 25 * time.Millisecond
	recoveryPeerTimeout = 150 * time.Millisecond
	// recoveryReplaceTimeout bounds how long survivors hold the barrier for
	// a replacement before declaring the rank failed outright. Generous: a
	// spawn here is a goroutine, not a scheduler round-trip, but a wedged
	// replacement must still turn terminal before the suite's own deadline.
	recoveryReplaceTimeout = 20 * time.Second
)

// RecoveryReport is the outcome of one timed recovery differential.
type RecoveryReport struct {
	Clean     map[string]Fingerprint
	Recovered map[string]Fingerprint
	// Repairs counts hot replacements (TCPHotReplace) or supervised full
	// restarts (TCPFullRestart) — the differential demands exactly one.
	Repairs int
	// MTTR is the wall clock from the victim's death to the whole
	// computation completing — the repair cost the two strategies compete on.
	MTTR time.Duration
}

// Identical reports whether the recovered run reproduced the fault-free
// relation contents exactly.
func (r *RecoveryReport) Identical() bool {
	if len(r.Clean) != len(r.Recovered) {
		return false
	}
	for rel, fp := range r.Clean {
		if r.Recovered[rel] != fp {
			return false
		}
	}
	return true
}

// goMember adapts one rank's goroutine to the supervisor's gang Member.
type goMember struct {
	done chan error
	kill func()
}

func (m *goMember) Wait() error { return <-m.done }
func (m *goMember) Kill()       { m.kill() }

// TCPHotReplace runs sc in-process (the reference answer), then over a TCP
// gang with hot replacement enabled and rank (ranks-1) crashed as it enters
// iteration crashIter's tuple exchange. The gang must repair itself with
// exactly one hot replacement — survivors never torn down — and land on the
// bit-identical answer.
func TCPHotReplace(sc Scenario, ranks, every, crashIter int) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: in-process reference run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	victim := ranks - 1
	sink := paralagg.NewMemoryCheckpointSink()

	// The peer address list is fixed for the gang's whole lifetime: a
	// replacement rebinds the dead rank's port so the survivors' redial
	// loops and the shared Peers slice stay valid across the epoch bump.
	addrs := make([]string, ranks)
	lns := make([]net.Listener, ranks)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	newTransport := func(rank int, epoch int, ln net.Listener, sendSeqs, recvSeqs []uint64) (*tcp.Transport, error) {
		return tcp.New(tcp.Config{
			Rank: rank, Peers: addrs, Listener: ln,
			HeartbeatEvery:  recoveryHeartbeat,
			HeartbeatMisses: 4,
			ConnectTimeout:  10 * time.Second,
			Seed:            42,
			PeerTimeout:     recoveryPeerTimeout,
			ReplaceTimeout:  recoveryReplaceTimeout,
			Epoch:           uint64(epoch),
			InitialSendSeqs: sendSeqs,
			InitialRecvSeqs: recvSeqs,
		})
	}

	base := paralagg.Config{
		Subs:            sc.Subs,
		CheckpointEvery: every,
		Checkpoints:     sink,
		// The recovery park only engages if the transport's failure detector
		// (PeerTimeout) declares the dead rank before a survivor's receive
		// watchdog expires: a survivor blocked on a rank that is itself
		// blocked on the victim must still be parked, not timed out. Floor
		// the adaptive deadline well above PeerTimeout to fix the race.
		AdaptiveWatchdog: true,
		WatchdogFloor:    time.Second,
		WatchdogCeil:     10 * time.Second,
	}
	var (
		fps     map[string]Fingerprint
		crashed atomic.Int64 // unix nanos of the victim's death
	)
	spawn := func(rank, epoch int) (supervisor.Member, error) {
		var tr *tcp.Transport
		if epoch == 0 {
			var err error
			tr, err = newTransport(rank, 0, lns[rank], nil, nil)
			if err != nil {
				return nil, err
			}
		} else {
			// The dead transport's Kill released the port; rebind it. The OS
			// may briefly hold the address, so retry within the replace window.
			var ln net.Listener
			var err error
			for try := 0; ; try++ {
				if ln, err = net.Listen("tcp", addrs[rank]); err == nil {
					break
				}
				if try >= 40 {
					return nil, fmt.Errorf("rebinding %s for rank %d's replacement: %w", addrs[rank], rank, err)
				}
				time.Sleep(25 * time.Millisecond)
			}
			// Restore is rank-local: only the victim's shard is read back,
			// and its wire-mark vectors seed the replacement's frame counters
			// so the survivors' dedup/replay machinery lines up.
			send, recv, err := paralagg.RejoinSeeds(sink, rank)
			if err != nil {
				ln.Close()
				return nil, err
			}
			if tr, err = newTransport(rank, epoch, ln, send, recv); err != nil {
				ln.Close()
				return nil, err
			}
		}
		m := &goMember{done: make(chan error, 1), kill: tr.Kill}
		go func() {
			cfg := base
			cfg.Transport = tr
			cfg.Rejoin = epoch > 0
			if rank == victim && epoch == 0 {
				// The victim crashes as it enters iteration crashIter's tuple
				// exchange; the replacement (epoch > 0) runs fault-free or it
				// would replay the same crash forever.
				cfg.Faults = &paralagg.FaultPlan{
					Seed:    1,
					Crashes: []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
				}
			}
			_, err := exec(sc.Prog(), cfg, sc.Load, collect(sc.Rels, &fps))
			if err != nil {
				tr.Kill() // the process is gone; so is its endpoint
				crashed.CompareAndSwap(0, time.Now().UnixNano())
			} else {
				tr.Close()
			}
			m.done <- err
		}()
		return m, nil
	}
	grep, err := supervisor.RunGang(supervisor.GangConfig{Ranks: ranks, Spawn: spawn})
	done := time.Now()
	if err != nil {
		return nil, fmt.Errorf("chaos %s: hot-replace gang failed: %w", sc.Name, err)
	}
	if grep.Replacements != 1 {
		return nil, fmt.Errorf("chaos %s: %d hot replacements, want exactly 1 (replaced %v)",
			sc.Name, grep.Replacements, grep.Replaced)
	}
	rep.Repairs = grep.Replacements
	rep.Recovered = fps
	rep.MTTR = done.Sub(time.Unix(0, crashed.Load()))
	return rep, nil
}

// TCPFullRestart is the timed control arm: the same crash repaired by the
// whole-world restart path (every survivor torn down, fresh sockets, every
// rank re-executing from the shared checkpoints). Its MTTR is the baseline
// hot replacement must beat.
func TCPFullRestart(sc Scenario, ranks, every, crashIter int) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	clean, err := exec(sc.Prog(), paralagg.Config{Ranks: ranks, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &rep.Clean))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: in-process reference run failed: %w", sc.Name, err)
	}
	if clean.Iterations <= crashIter {
		return nil, fmt.Errorf("chaos %s: fixpoint ran only %d iterations, crash at %d would never fire",
			sc.Name, clean.Iterations, crashIter)
	}

	victim := ranks - 1
	sink := paralagg.NewMemoryCheckpointSink()
	var crashed atomic.Int64
	srep, err := supervisor.Run(ranks, supervisor.Config{
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
	}, func(attempt, _ int, resume bool) error {
		trs, err := gang(ranks, nil)
		if err != nil {
			return err
		}
		base := paralagg.Config{
			Subs:             sc.Subs,
			CheckpointEvery:  every,
			Checkpoints:      sink,
			AdaptiveWatchdog: true,
			WatchdogCeil:     10 * time.Second,
		}
		if resume {
			if _, ok, err := sink.LatestValid(); ok && err == nil {
				base.Resume = true
			}
		}
		if attempt == 0 {
			base.Faults = &paralagg.FaultPlan{
				Seed:    1,
				Crashes: []paralagg.Crash{{Rank: victim, Iter: crashIter, Op: "alltoallv"}},
			}
		}
		var fps map[string]Fingerprint
		errs := make([]error, ranks)
		done := make(chan int, ranks)
		for i, tr := range trs {
			go func(i int, tr *tcp.Transport) {
				cfg := base
				cfg.Transport = tr
				_, errs[i] = exec(sc.Prog(), cfg, sc.Load, collect(sc.Rels, &fps))
				if i == victim && errs[i] != nil && attempt == 0 {
					tr.Kill() // the process is gone; so is its endpoint
					crashed.CompareAndSwap(0, time.Now().UnixNano())
				}
				done <- i
			}(i, tr)
		}
		for range trs {
			<-done
		}
		for i, tr := range trs {
			if !(i == victim && attempt == 0) {
				tr.Close()
			}
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		rep.Recovered = fps
		return nil
	})
	doneAt := time.Now()
	if err != nil {
		return nil, fmt.Errorf("chaos %s: supervised TCP full restart failed: %w", sc.Name, err)
	}
	if srep.RecoveryAttempts != 1 {
		return nil, fmt.Errorf("chaos %s: %d full restarts, want exactly 1", sc.Name, srep.RecoveryAttempts)
	}
	rep.Repairs = srep.RecoveryAttempts
	rep.MTTR = doneAt.Sub(time.Unix(0, crashed.Load()))
	return rep, nil
}
