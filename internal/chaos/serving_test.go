package chaos

import "testing"

// TestServingDifferentials streams every serving scenario's mutation batches
// into a long-lived engine at 1, 2, and 4 ranks and requires the resident
// relations to be bit-identical to a from-scratch recomputation after the
// initial load and after every batch — the serving engine's correctness bar.
func TestServingDifferentials(t *testing.T) {
	for _, sc := range ServingScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, ranks := range []int{1, 2, 4} {
				rep, err := ServingDifferential(sc, ranks)
				if err != nil {
					t.Fatalf("ranks=%d: %v", ranks, err)
				}
				for i := range rep.Batches {
					b := &rep.Batches[i]
					if !b.Identical() {
						t.Errorf("ranks=%d batch %s: engine state diverged from recomputation\nengine:  %v\nscratch: %v",
							ranks, b.Name, b.Engine, b.Scratch)
					}
				}
			}
		})
	}
}

// TestServingInsertsStrictlyCheaper pins the communication saving: an
// insert-only batch continues the fixpoint from its seeded Δ, so it must
// re-converge in strictly fewer iterations than recomputing from zero.
func TestServingInsertsStrictlyCheaper(t *testing.T) {
	for _, sc := range ServingScenarios() {
		sc := sc
		for _, ranks := range []int{1, 2, 4} {
			rep, err := ServingDifferential(sc, ranks)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", sc.Name, ranks, err)
			}
			for i := range rep.Batches {
				b := &rep.Batches[i]
				if b.InsertOnly && b.Incremental && b.ApplyIters >= b.ScratchIters {
					t.Errorf("%s ranks=%d batch %s: incremental insert took %d iterations, from-scratch %d — not cheaper",
						sc.Name, ranks, b.Name, b.ApplyIters, b.ScratchIters)
				}
			}
		}
	}
}

// TestServingDeletesInvalidate pins that delete batches actually exercise
// the invalidation path (rounds and drops nonzero) rather than silently
// degenerating to a no-op.
func TestServingDeletesInvalidate(t *testing.T) {
	for _, sc := range ServingScenarios() {
		rep, err := ServingDifferential(sc, 2)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		hasDelete := false
		for _, b := range sc.Batches {
			if len(b.DeleteEdges) > 0 {
				hasDelete = true
			}
		}
		if !hasDelete {
			continue
		}
		sawRounds := false
		for i := range rep.Batches {
			if rep.Batches[i].InvalidationRounds > 0 && rep.Batches[i].Dropped > 0 {
				sawRounds = true
			}
		}
		if !sawRounds {
			t.Errorf("%s: no batch reported invalidation rounds — delete path untested", sc.Name)
		}
	}
}
