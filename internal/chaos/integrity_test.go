package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestCorruptionDifferential is the acceptance gate of the state-integrity
// work: for every scenario and rank count, a silent in-memory bit flip must
// be detected within the corrupted iteration on every rank, and a supervised
// run must roll back to the last verified checkpoint and reproduce the
// fault-free relation contents bit for bit.
func TestCorruptionDifferential(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ranks := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", sc.Name, ranks), func(t *testing.T) {
				rep, err := CorruptionDifferential(sc, ranks, 2, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.DivergenceRollbacks < 1 {
					t.Errorf("DivergenceRollbacks = %d, want >= 1", rep.DivergenceRollbacks)
				}
				if rep.RestartsFromScratch != 0 {
					t.Errorf("RestartsFromScratch = %d, want 0 (a pre-corruption checkpoint existed)",
						rep.RestartsFromScratch)
				}
				if rep.Divergence == nil {
					t.Fatal("no structured divergence report was extracted")
				}
			})
		}
	}
}

// TestCheckpointCorruptionDifferential proves recovery degrades by exactly
// one generation under checkpoint bit rot: the rotten newest generation is
// quarantined, the previous one restores, and the answer stays bit-identical.
func TestCheckpointCorruptionDifferential(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ranks := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", sc.Name, ranks), func(t *testing.T) {
				rep, err := CheckpointCorruptionDifferential(sc, ranks, 2, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("recovered relations diverge from the fault-free run:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.QuarantinedDelta < 1 {
					t.Errorf("QuarantinedDelta = %d, want >= 1", rep.QuarantinedDelta)
				}
				if rep.FallbackIter != 2 {
					t.Errorf("FallbackIter = %d, want 2 (one generation back)", rep.FallbackIter)
				}
			})
		}
	}
}

// TestTCPCorruptionDetection proves the divergence digests work over the
// real transport: every gang member must abort with a structured
// ErrStateDiverged naming the corrupted iteration.
func TestTCPCorruptionDetection(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			if err := TCPCorruptionDetection(sc, 2, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAdaptiveWatchdogConvertsHangWithinCeiling pins the latency claim: with
// healthy iterations feeding the EWMA before the hang, the adaptive deadline
// has tightened toward the floor, so the stuck collective converts to a
// structured failure in a small fraction of the ceiling.
func TestAdaptiveWatchdogConvertsHangWithinCeiling(t *testing.T) {
	sc := Scenarios()[0]
	const ceiling = 30 * time.Second
	start := time.Now()
	err := StuckCollective(sc, 2, ceiling)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stuck collective produced no error")
	}
	if elapsed >= ceiling {
		t.Fatalf("conversion took %v, not within the %v ceiling", elapsed, ceiling)
	}
	// Floor (100ms) + slack: far below the ceiling proves the EWMA deadline,
	// not the ceiling, did the converting.
	if elapsed > 5*time.Second {
		t.Errorf("conversion took %v; the adaptive deadline should fire near the floor", elapsed)
	}
}
