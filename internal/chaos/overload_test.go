package chaos

import (
	"fmt"
	"testing"
)

// TestTCPSlowConsumerBoundedAndIdentical is the flow-control acceptance
// gate: a receiver that consumes slowly and advertises little credit must
// throttle its senders (stalls recorded, outboxes inside the window) while
// the answer stays bit-identical to the in-process run — and the adaptive
// watchdog must not mistake the throttled-but-live peer for a dead one.
func TestTCPSlowConsumerBoundedAndIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("network overload differential is not short")
	}
	sc := Scenarios()[0] // sssp
	const window = 8
	rep, err := TCPSlowConsumer(sc, 3, window)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("TCP run under a slow consumer diverged from the in-process answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	t.Logf("stalls=%d outboxPeak=%d/%d", rep.Net.ThrottleStalls, rep.Net.OutboxPeakFrames, window)
}

// TestMemPressureSoftShedsAndCompletes is the soft-rung acceptance gate:
// phantom pressure into the soft band must raise collective shed responses,
// never escalate to the hard rung, and leave the answer bit-identical with
// the accounted peak inside the budget.
func TestMemPressureSoftShedsAndCompletes(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ranks := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", sc.Name, ranks), func(t *testing.T) {
				rep, err := MemPressureSoft(sc, ranks)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Identical() {
					t.Errorf("run under soft pressure diverged from the fault-free answer:\nclean:     %v\nrecovered: %v",
						rep.Clean, rep.Recovered)
				}
				if rep.MemPeakBytes < rep.Budget*85/100 {
					t.Errorf("accounted peak %d never reached the soft band of budget %d — the phantom never bit",
						rep.MemPeakBytes, rep.Budget)
				}
			})
		}
	}
}

// TestMemPressureHardFailsStructurallyAndRecovers is the hard-rung
// acceptance gate: a budget violation must surface as ErrMemoryBudget on
// every rank (no OOM kill, no deadlock) and a supervised run must recover
// to the bit-identical answer.
func TestMemPressureHardFailsStructurallyAndRecovers(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := MemPressureHard(sc, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Identical() {
				t.Errorf("supervised recovery from a hard budget diverged:\nclean:     %v\nrecovered: %v",
					rep.Clean, rep.Recovered)
			}
			if rep.BudgetErr == nil {
				t.Fatal("no structured budget violation was extracted")
			}
			if rep.RecoveryAttempts != 1 {
				t.Errorf("RecoveryAttempts = %d, want exactly 1", rep.RecoveryAttempts)
			}
		})
	}
}

// TestDiskFullDegradesCheckpointing is the storage-degradation acceptance
// gate: a full checkpoint device mid-run must degrade that rank to
// in-memory checkpointing — run completes, answer bit-identical,
// degradation counted and observed, earlier on-disk generations intact.
func TestDiskFullDegradesCheckpointing(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := DiskFullDegradation(sc, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Identical() {
				t.Errorf("run under a full checkpoint device diverged:\nclean:     %v\nrecovered: %v",
					rep.Clean, rep.Recovered)
			}
			if rep.DegradationsDelta < 1 {
				t.Errorf("DegradationsDelta = %d, want >= 1", rep.DegradationsDelta)
			}
		})
	}
}
