package chaos

import (
	"testing"

	"paralagg"
)

func TestTCPHotReplaceBitIdentical4(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPHotReplace(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	if rep.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", rep.MTTR)
	}
}

func TestTCPHotReplaceBitIdentical8(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPHotReplace(sc, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
}

func TestTCPHotReplaceSkewSubBuckets(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[3] // sssp-skew, Subs=4: restore must respect sub-bucket placement
	rep, err := TCPHotReplace(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced skewed gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
}

func TestTCPFullRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-restart chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPFullRestart(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("fully-restarted gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	if rep.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", rep.MTTR)
	}
}

// TestTCPHotReplaceTreeSchedule is the schedule-aware recovery differential:
// the whole gang — victim, survivors, and the replacement — routes its
// collectives through the binomial tree schedule while rank 3 is killed
// mid-exchange and hot-replaced. The recovered answer must be bit-identical
// not only to the tree-scheduled reference TCPHotReplace computes itself,
// but also to a flat-scheduled in-process run: one bar proving both that
// recovery works under multi-hop routing and that the routing shape never
// changes the answer.
func TestTCPHotReplaceTreeSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	old := Schedule
	Schedule = "tree"
	defer func() { Schedule = old }()

	sc := Scenarios()[0] // sssp
	rep, err := TCPHotReplace(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("tree-scheduled hot-replaced gang diverged from the tree reference:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}

	Schedule = "" // flat reference for the cross-schedule comparison
	var flat map[string]Fingerprint
	if _, err := exec(sc.Prog(), paralagg.Config{Ranks: 4, Subs: sc.Subs},
		sc.Load, collect(sc.Rels, &flat)); err != nil {
		t.Fatal(err)
	}
	for rel, fp := range flat {
		if rep.Recovered[rel] != fp {
			t.Fatalf("tree-scheduled recovery diverged from the flat-scheduled answer for %q:\n got %v\nwant %v",
				rel, rep.Recovered[rel], fp)
		}
	}
	if len(flat) != len(rep.Recovered) {
		t.Fatalf("relation sets differ: flat %v vs tree %v", flat, rep.Recovered)
	}
}
