package chaos

import (
	"testing"
)

func TestTCPHotReplaceBitIdentical4(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPHotReplace(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	if rep.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", rep.MTTR)
	}
}

func TestTCPHotReplaceBitIdentical8(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPHotReplace(sc, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
}

func TestTCPHotReplaceSkewSubBuckets(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-replace chaos differential is not short")
	}
	sc := Scenarios()[3] // sssp-skew, Subs=4: restore must respect sub-bucket placement
	rep, err := TCPHotReplace(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("hot-replaced skewed gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
}

func TestTCPFullRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-restart chaos differential is not short")
	}
	sc := Scenarios()[0] // sssp
	rep, err := TCPFullRestart(sc, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("fully-restarted gang diverged from the fault-free answer:\n got %v\nwant %v",
			rep.Recovered, rep.Clean)
	}
	if rep.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", rep.MTTR)
	}
}
