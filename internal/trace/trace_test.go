package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"paralagg/internal/obs"
)

type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func emit(r *Recorder, fill func(*obs.Event)) {
	e := obs.Get()
	fill(e)
	obs.Emit(r, e)
}

func render(t *testing.T, r *Recorder) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON did not produce valid JSON: %v", err)
	}
	return doc
}

func TestRecorderTracksAndAnchors(t *testing.T) {
	r := NewRecorder()
	base := int64(1_000_000_000_000)
	for rank := 0; rank < 2; rank++ {
		emit(r, func(e *obs.Event) {
			e.Kind = obs.KindPhase
			e.Rank, e.Iter = rank, 0
			e.Name = "local-join"
			e.Start, e.End = base+int64(rank)*1000, base+int64(rank)*1000+500
			e.CPUNanos = 500
		})
	}
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindIteration
		e.Rank, e.Iter = 0, 0
		e.Changed = 17
		e.Start, e.End = base, base+3000
	})

	doc := render(t, r)
	var spanTIDs []int
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spanTIDs = append(spanTIDs, ev.TID)
			names = append(names, ev.Name)
			// First stamp anchors at zero: every timestamp is a small
			// offset, never an absolute UnixNano.
			if ev.TS < 0 || ev.TS > 1e6 {
				t.Fatalf("span %q ts=%v not anchored to run start", ev.Name, ev.TS)
			}
		}
	}
	if len(spanTIDs) != 3 {
		t.Fatalf("want 3 X spans, got %d (%v)", len(spanTIDs), names)
	}
	threadNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames[ev.TID], _ = ev.Args["name"].(string)
		}
	}
	if threadNames[0] != "rank 0" || threadNames[1] != "rank 1" {
		t.Fatalf("thread names = %v", threadNames)
	}
}

func TestRecorderUnstampedEventsReuseLastStamp(t *testing.T) {
	r := NewRecorder()
	base := int64(5_000_000_000_000)
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindPhase
		e.Name = "planning"
		e.Start, e.End = base, base+100
		e.CPUNanos = 100
	})
	// An unstamped instant (End == 0) must not drag the anchor to zero and
	// blow up every later timestamp; it reuses the latest stamp instead.
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindPlan
		e.Name = "j"
	})
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindPhase
		e.Name = "local-agg"
		e.Start, e.End = base+2000, base+2100
		e.CPUNanos = 100
	})
	doc := render(t, r)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < 0 || ev.TS > 1e6 {
			t.Fatalf("event %q ts=%v: zero-stamp corrupted the time anchor", ev.Name, ev.TS)
		}
	}
}

func TestRecorderAttemptGroups(t *testing.T) {
	r := NewRecorder()
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindPhase
		e.Name = "local-join"
		e.Start, e.End, e.CPUNanos = 10, 20, 10
	})
	r.OnAttempt(1)
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindPhase
		e.Name = "local-join"
		e.Start, e.End, e.CPUNanos = 30, 40, 10
	})
	doc := render(t, r)
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.PID] = true
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("want spans in attempt groups 0 and 1, got %v", pids)
	}
	procNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.PID], _ = ev.Args["name"].(string)
		}
	}
	if procNames[1] != "attempt 1" {
		t.Fatalf("process names = %v", procNames)
	}
}

func TestRecorderRelationCounterAndInstants(t *testing.T) {
	r := NewRecorder()
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindRelation
		e.Rank, e.Name = 1, "spath"
		e.Count, e.Changed = 100, 7
		e.PerRank = append(e.PerRank, 40, 60)
		e.End = 1000
	})
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindRankFailed
		e.Rank, e.Name, e.Err = 1, "allreduce", "killed"
		e.End = 2000
	})
	emit(r, func(e *obs.Event) {
		e.Kind = obs.KindRecovery
		e.Name = "remap"
		e.End = 3000
	})
	doc := render(t, r)
	var counter, failed, recovery bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "C" && ev.Name == "spath tuples":
			counter = true
			if ev.Args["local"].(float64) != 60 {
				t.Fatalf("local count = %v, want the emitting rank's share 60", ev.Args["local"])
			}
		case ev.Ph == "i" && ev.Name == "rank failed":
			failed = true
		case ev.Ph == "i" && ev.Name == "remap":
			recovery = true
		}
	}
	if !counter || !failed || !recovery {
		t.Fatalf("missing events: counter=%v failed=%v recovery=%v", counter, failed, recovery)
	}
}
