// Package trace renders the live observability event stream as a Chrome
// trace file (the JSON Array / Trace Event format chrome://tracing and
// Perfetto load): one thread track per rank, one complete-event span per
// metered phase sample, nested inside per-iteration spans, with relation
// sizes as counter tracks and failures/checkpoints as instant events. The
// result makes the paper's Fig. 1 phase pipeline and Fig. 7 per-iteration
// structure visible for any run, live or post-hoc.
//
// A Recorder is an obs.Observer: attach it via Config.Observer, run, then
// WriteFile. It is safe for concurrent emission from every rank goroutine.
// Under supervision it is AttemptAware: each restart opens a new process
// group ("attempt N") so recoveries are visually separate.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"paralagg/internal/obs"
)

// span is one Chrome trace event. Fields follow the Trace Event Format
// field names (ph "X" = complete, "i" = instant, "C" = counter, "M" =
// metadata).
type span struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Recorder accumulates trace events from the live stream.
type Recorder struct {
	mu      sync.Mutex
	attempt int
	base    int64 // first-seen wall-clock nanos; all timestamps are relative
	last    int64 // latest stamp seen, substituted for unstamped events
	spans   []span
	ranks   map[[2]int]bool // (attempt, rank) tracks seen
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder {
	return &Recorder{ranks: map[[2]int]bool{}}
}

// OnAttempt implements obs.AttemptAware: spans recorded after this call land
// in a new "attempt n" process group.
func (r *Recorder) OnAttempt(n int) {
	r.mu.Lock()
	r.attempt = n
	r.mu.Unlock()
}

// ts converts an absolute UnixNano stamp to trace microseconds, anchoring
// the run's first event at zero. Unstamped events (ns <= 0) reuse the
// latest stamp, ordering them by arrival.
func (r *Recorder) ts(ns int64) float64 {
	if ns <= 0 {
		ns = r.last
	}
	if ns <= 0 {
		return 0
	}
	if r.base == 0 || ns < r.base {
		r.base = ns
	}
	if ns > r.last {
		r.last = ns
	}
	return float64(ns-r.base) / 1e3
}

// OnEvent implements obs.Observer.
func (r *Recorder) OnEvent(e *obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pid := r.attempt
	r.ranks[[2]int{pid, e.Rank}] = true
	switch e.Kind {
	case obs.KindPhase:
		r.spans = append(r.spans, span{
			Name: e.Name, Ph: "X", PID: pid, TID: e.Rank,
			TS: r.ts(e.Start), Dur: float64(e.CPUNanos) / 1e3,
			Args: map[string]any{"work": e.Work, "bytes": e.Bytes, "msgs": e.Msgs, "iter": e.Iter, "stratum": e.Stratum},
		})
	case obs.KindIteration:
		r.spans = append(r.spans, span{
			Name: fmt.Sprintf("iter %d", e.Iter), Ph: "X", PID: pid, TID: e.Rank,
			TS: r.ts(e.Start), Dur: float64(e.End-e.Start) / 1e3,
			Args: map[string]any{"changed": e.Changed, "bytes": e.Bytes, "msgs": e.Msgs, "retransmits": e.Net.Retransmits},
		})
	case obs.KindRelation:
		r.spans = append(r.spans, span{
			Name: e.Name + " tuples", Ph: "C", PID: pid, TID: e.Rank,
			TS:   r.ts(e.End),
			Args: map[string]any{"total": e.Count, "delta": e.Changed, "local": localCount(e)},
		})
	case obs.KindPlan:
		r.spans = append(r.spans, span{
			Name: "plan", Ph: "i", S: "t", PID: pid, TID: e.Rank, TS: r.ts(e.End),
			Args: map[string]any{"join": e.Name, "votesLeft": e.VotesFor, "outerLeft": e.OuterLeft},
		})
	case obs.KindCheckpoint:
		r.spans = append(r.spans, span{
			Name: "checkpoint", Ph: "i", S: "t", PID: pid, TID: e.Rank, TS: r.ts(e.End),
			Args: map[string]any{"iter": e.Iter, "bytes": e.Bytes},
		})
	case obs.KindRecovery:
		r.spans = append(r.spans, span{
			Name: e.Name, Ph: "i", S: "p", PID: pid, TID: e.Rank, TS: r.ts(e.End),
			Args: map[string]any{"iter": e.Iter, "bytes": e.Bytes},
		})
	case obs.KindRankFailed:
		r.spans = append(r.spans, span{
			Name: "rank failed", Ph: "i", S: "g", PID: pid, TID: e.Rank, TS: r.ts(e.End),
			Args: map[string]any{"op": e.Name, "iter": e.Iter, "cause": e.Err},
		})
	case obs.KindStratumStart:
		r.spans = append(r.spans, span{
			Name: fmt.Sprintf("stratum %d", e.Stratum), Ph: "i", S: "t",
			PID: pid, TID: e.Rank, TS: r.ts(e.End),
		})
	}
}

// localCount returns the emitting rank's own tuple count from a relation
// event's distribution.
func localCount(e *obs.Event) int {
	if e.Rank >= 0 && e.Rank < len(e.PerRank) {
		return e.PerRank[e.Rank]
	}
	return 0
}

// Spans returns the number of events recorded so far.
func (r *Recorder) Spans() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// WriteJSON renders the trace in Chrome's JSON Object Format, including
// thread-name metadata so each track is labeled "rank N" (and each process
// group "attempt N" when a supervised run restarted).
func (r *Recorder) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]span, 0, len(r.spans)+2*len(r.ranks))
	for key := range r.ranks {
		pid, tid := key[0], key[1]
		if tid < 0 {
			continue
		}
		events = append(events, span{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", tid)},
		})
		events = append(events, span{
			Name: "process_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("attempt %d", pid)},
		})
	}
	events = append(events, r.spans...)
	doc := map[string]any{"traceEvents": events, "displayTimeUnit": "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace to path (0644), ready for chrome://tracing.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
