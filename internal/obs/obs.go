// Package obs defines the streaming observability event model: a small,
// allocation-pooled Event struct emitted live by the runtime (fixpoint
// iterations, phase samples, join-plan votes, checkpoint/recovery activity,
// rank failures) and the Observer interface consumers implement.
//
// The package sits below every runtime layer — it imports nothing but the
// standard library — so internal/metrics, internal/ra, internal/mpi and the
// public paralagg surface can all share one event vocabulary without import
// cycles.
//
// The disabled path is free: every emitter guards with a nil check before
// touching the pool, so a run with no observer performs zero observability
// work and zero allocations. With an observer attached, events are recycled
// through a sync.Pool: an Event is only valid for the duration of the
// OnEvent call, and observers that need to retain data must copy it out
// (Clone does a deep copy).
package obs

import "sync"

// Kind discriminates Event payloads.
type Kind uint8

// Event kinds, in roughly the order a run produces them.
const (
	// KindRunStart opens a run: Ranks carries the world size.
	KindRunStart Kind = iota
	// KindRunEnd closes a run; Err is non-empty when the run failed.
	KindRunEnd
	// KindStratumStart marks a stratum's fixpoint beginning on this rank.
	KindStratumStart
	// KindPhase is one metered phase sample: Phase/Name identify it, Start
	// and End bound it in wall-clock nanoseconds, and Work/Bytes/Msgs/
	// CPUNanos carry the sample's counters. Emitted by the metrics
	// collector on every Record call, so it reflects the exact accounting
	// the post-hoc report is built from — just live.
	KindPhase
	// KindPlan reports one dynamic join-plan vote (Algorithm 1): VotesFor
	// is the number of ranks that voted the left side smaller, OuterLeft
	// the collective outcome, Name the join.
	KindPlan
	// KindIteration closes one fixpoint iteration: Changed is the global
	// changed-tuple count, Bytes/Msgs the communication delta of the
	// iteration, Net the transport robustness delta.
	KindIteration
	// KindRelation reports one head relation's distribution at the end of
	// an iteration: Name, Count (global tuples), Changed (global Δ), and
	// PerRank (per-rank tuple counts, Fig. 3's skew signal).
	KindRelation
	// KindCheckpoint marks a completed periodic snapshot (Bytes = payload).
	KindCheckpoint
	// KindRecovery marks a checkpoint restore; Name is "recovery" for the
	// same-size path and "remap" for the elastic path.
	KindRecovery
	// KindRankFailed reports a structured rank failure: Rank is the failed
	// rank, Name the operation, Err the cause.
	KindRankFailed
	// KindDivergence reports an online integrity failure: a relation's
	// collective state digest disagreed. Rank/Iter locate the detection,
	// Err carries the structured cause. Emitted instead of KindRankFailed
	// when the world aborts on a divergence.
	KindDivergence
	// KindCkptScan reports the outcome of a checkpoint validation scan:
	// Failures and Quarantined carry the cumulative validation-failure and
	// quarantined-generation counts.
	KindCkptScan
	// KindMemPressure reports a memory-budget pressure response: Name is the
	// level ("soft" or "hard"), Work the accounted bytes, Bytes the budget.
	KindMemPressure
	// KindCkptDegraded reports checkpoint storage degradation: persistent
	// saves failed (ENOSPC, short write) and the run fell back to an
	// in-memory sink. Err carries the storage error.
	KindCkptDegraded
	// KindRankRecovering reports that a peer went silent and the world is
	// parked awaiting its hot replacement: Rank is the silent peer, Err the
	// detector's cause. KindRankRecovered follows when a replacement (or
	// the original, merely slow) is re-admitted.
	KindRankRecovering
	// KindRankRecovered reports a peer's re-admission after recovery.
	KindRankRecovered
	// KindSupervisor reports one supervisor lifecycle decision: Name is
	// the action ("restart", "rollback", "degrade", "scratch", "replace",
	// "replace-failed", "gave-up"), Count the recovery attempt ordinal,
	// Rank the lost rank (-1 when not rank-specific), Ranks the world size
	// the next attempt runs at.
	KindSupervisor
)

var kindNames = [...]string{
	KindRunStart:       "run-start",
	KindRunEnd:         "run-end",
	KindStratumStart:   "stratum-start",
	KindPhase:          "phase",
	KindPlan:           "plan",
	KindIteration:      "iteration",
	KindRelation:       "relation",
	KindCheckpoint:     "checkpoint",
	KindRecovery:       "recovery",
	KindRankFailed:     "rank-failed",
	KindDivergence:     "divergence",
	KindCkptScan:       "ckpt-scan",
	KindMemPressure:    "mem-pressure",
	KindCkptDegraded:   "ckpt-degraded",
	KindRankRecovering: "rank-recovering",
	KindRankRecovered:  "rank-recovered",
	KindSupervisor:     "supervisor",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// NetStats mirrors the transport robustness counters (mpi.NetStats) without
// importing the mpi package. Fields are deltas for the event's window.
type NetStats struct {
	FramesSent      int64
	FramesRecv      int64
	DialRetries     int64
	Reconnects      int64
	Retransmits     int64
	DupsDropped     int64
	HeartbeatMisses int64
	CRCErrors       int64
	// ThrottleStalls is the window's count of sends blocked by flow
	// control; OutboxPeakFrames is the running high-water mark of
	// unacknowledged frames buffered for any single peer (a gauge).
	ThrottleStalls   int64
	OutboxPeakFrames int64
	// PeerBytesSent/PeerBytesRecv are the window's per-peer payload byte
	// deltas, indexed by rank (nil when the transport does not track them).
	// They feed the /metrics per-peer gauges — the observation a
	// similarity-aware collective schedule is built from.
	PeerBytesSent []int64
	PeerBytesRecv []int64
}

// Event is one observability record. Which fields are meaningful depends on
// Kind (see the Kind constants). Events are pooled: they are valid only for
// the duration of Observer.OnEvent, and must be Cloned to be retained.
type Event struct {
	Kind    Kind
	Rank    int // emitting rank; -1 for world-level events
	Stratum int
	Iter    int

	Phase int    // metrics.Phase ordinal (KindPhase)
	Name  string // phase / relation / join / op name

	Start, End int64 // wall-clock UnixNano span (KindPhase, KindIteration)

	Work     int64
	Bytes    int64
	Msgs     int64
	CPUNanos int64
	Allocs   int64

	Changed uint64 // global changed-tuple count
	Count   uint64 // global tuple count (KindRelation)
	PerRank []int  // per-rank tuple counts (KindRelation); pooled backing

	VotesFor  uint64 // ranks voting left-outer (KindPlan)
	OuterLeft bool   // plan outcome (KindPlan)

	Ranks int    // world size (KindRunStart)
	Err   string // failure cause (KindRankFailed, KindDivergence, KindRunEnd)

	Failures    int64 // cumulative checkpoint validation failures (KindCkptScan)
	Quarantined int64 // cumulative quarantined generations (KindCkptScan)

	Net NetStats // transport robustness delta (KindIteration)
}

// Clone deep-copies the event so it may outlive OnEvent.
func (e *Event) Clone() *Event {
	c := *e
	c.PerRank = append([]int(nil), e.PerRank...)
	c.Net.PeerBytesSent = append([]int64(nil), e.Net.PeerBytesSent...)
	c.Net.PeerBytesRecv = append([]int64(nil), e.Net.PeerBytesRecv...)
	return &c
}

// Observer receives runtime events. Implementations must be safe for
// concurrent use: with an in-process world every rank goroutine emits, and
// events arrive interleaved. OnEvent must not retain e (Clone to keep it)
// and should return quickly — it runs inline on the rank's critical path.
//
// Observation can change the collective schedule (per-rank distribution
// events perform an allgather), so every rank of a world must agree on
// whether an observer is attached — Exec guarantees this for in-process
// worlds; distributed processes must pass consistent configs.
type Observer interface {
	OnEvent(e *Event)
}

// Func adapts a function to the Observer interface.
type Func func(e *Event)

// OnEvent implements Observer.
func (f Func) OnEvent(e *Event) { f(e) }

// AttemptAware is implemented by observers that track supervised restarts:
// the supervisor calls OnAttempt before each attempt (0 = initial run) so
// the observer can re-register counters or open a new trace track cleanly.
type AttemptAware interface {
	OnAttempt(attempt int)
}

var pool = sync.Pool{New: func() any { return new(Event) }}

// Get returns a zeroed Event from the pool. Callers fill it and hand it to
// Emit, which recycles it after delivery.
func Get() *Event {
	e := pool.Get().(*Event)
	per := e.PerRank[:0]
	*e = Event{PerRank: per}
	return e
}

// Emit delivers e to o (when o is non-nil) and returns e to the pool. The
// observer must not retain e past OnEvent.
func Emit(o Observer, e *Event) {
	if o != nil {
		o.OnEvent(e)
	}
	pool.Put(e)
}

// Tee fans events out to several observers in order; nil entries are
// skipped. A Tee of zero or one live observers collapses to that observer.
func Tee(os ...Observer) Observer {
	var live []Observer
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Observer

// OnEvent implements Observer.
func (t tee) OnEvent(e *Event) {
	for _, o := range t {
		o.OnEvent(e)
	}
}

// OnAttempt implements AttemptAware by forwarding to every member that
// implements it.
func (t tee) OnAttempt(attempt int) {
	for _, o := range t {
		if aa, ok := o.(AttemptAware); ok {
			aa.OnAttempt(attempt)
		}
	}
}
