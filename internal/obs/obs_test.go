package obs

import (
	"reflect"
	"testing"
)

func TestGetReturnsZeroedEvent(t *testing.T) {
	e := Get()
	e.Kind = KindRankFailed
	e.Rank, e.Iter, e.Stratum = 7, 3, 1
	e.Name, e.Err = "allgather", "boom"
	e.PerRank = append(e.PerRank, 1, 2, 3)
	e.Net.Retransmits = 9
	e.Net.PeerBytesSent = []int64{1, 2}
	Emit(nil, e)

	// The pooled event must come back fully zeroed — stale fields would
	// leak one emission's payload into the next.
	e2 := Get()
	if e2.Kind != KindRunStart || e2.Rank != 0 || e2.Name != "" || e2.Err != "" {
		t.Fatalf("recycled event not zeroed: %+v", e2)
	}
	if len(e2.PerRank) != 0 {
		t.Fatalf("recycled event has stale PerRank: %v", e2.PerRank)
	}
	if !reflect.DeepEqual(e2.Net, NetStats{}) {
		t.Fatalf("recycled event has stale NetStats: %+v", e2.Net)
	}
	Emit(nil, e2)
}

func TestEmitDeliversThenRecycles(t *testing.T) {
	var got *Event
	o := Func(func(e *Event) { got = e.Clone() })
	e := Get()
	e.Kind = KindIteration
	e.Changed = 42
	e.PerRank = append(e.PerRank, 5, 6)
	Emit(o, e)
	if got == nil || got.Changed != 42 {
		t.Fatalf("observer did not receive the event: %+v", got)
	}
	if len(got.PerRank) != 2 || got.PerRank[0] != 5 {
		t.Fatalf("Clone lost PerRank: %v", got.PerRank)
	}
	// Clone must be a deep copy: mutating the original (now recycled)
	// backing array must not reach the clone.
	e2 := Get()
	e2.PerRank = append(e2.PerRank, 99, 99)
	if got.PerRank[0] == 99 {
		t.Fatal("Clone shares the pooled PerRank backing array")
	}
	Emit(nil, e2)
}

func TestTeeCollapsesAndSkipsNil(t *testing.T) {
	if Tee() != nil {
		t.Fatal("empty Tee should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Fatal("all-nil Tee should be nil")
	}
	one := Func(func(*Event) {})
	if got := Tee(nil, one, nil); got == nil {
		t.Fatal("single live observer dropped")
	}
	var a, b int
	ta := Func(func(*Event) { a++ })
	tb := Func(func(*Event) { b++ })
	tee := Tee(ta, nil, tb)
	e := Get()
	Emit(tee, e)
	if a != 1 || b != 1 {
		t.Fatalf("tee fanout: a=%d b=%d, want 1/1", a, b)
	}
}

type attemptSpy struct {
	Func
	attempts []int
}

func (s *attemptSpy) OnAttempt(n int) { s.attempts = append(s.attempts, n) }

func TestTeeForwardsOnAttempt(t *testing.T) {
	spy := &attemptSpy{Func: func(*Event) {}}
	plain := Func(func(*Event) {})
	tee := Tee(plain, spy)
	aa, ok := tee.(AttemptAware)
	if !ok {
		t.Fatal("tee of an AttemptAware member should be AttemptAware")
	}
	aa.OnAttempt(1)
	aa.OnAttempt(2)
	if len(spy.attempts) != 2 || spy.attempts[0] != 1 || spy.attempts[1] != 2 {
		t.Fatalf("attempts = %v, want [1 2]", spy.attempts)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindRunStart; k <= KindRankFailed; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := Get()
		e.Kind = KindPhase
		e.Rank = 1
		Emit(nil, e)
	}
}
