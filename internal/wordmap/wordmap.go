// Package wordmap provides an allocation-free hash table keyed on
// fixed-width sequences of 64-bit words — the storage primitive behind the
// relation layer's aggregate accumulators, tuple-identity maps, and
// pre-aggregation scratch tables.
//
// The design goal is zero allocator traffic on the hot path: probing an
// existing key allocates nothing, and inserting amortizes to nothing. The
// table is open-addressing with linear probing over a power-of-two slot
// array; keys and values live contiguously in a single flat arena
// ([]tuple.Value), so there are no per-entry slice headers, no string
// conversions, and no boxed values. Entries are never deleted (the relation
// layer rebuilds tables wholesale on the cold redistribution path), which
// keeps growth tombstone-free: a rehash just re-seats live entries.
//
// Entry references returned by Get/Upsert/Each alias the arena and stay
// valid only until the next Upsert (which may grow the arena) or Reset.
// Callers that retain a key or value must copy it out.
package wordmap

import (
	"fmt"

	"paralagg/internal/tuple"
)

// Map is a hash table from keyWidth-word keys to valWidth-word values. The
// zero value is not usable; call New. A Map holds at most 2³²−1 entries
// (slot references are 32-bit to halve index memory).
type Map struct {
	keyW   int
	valW   int
	stride int
	// slots holds 1-based entry references; 0 marks an empty slot. Length
	// is always a power of two.
	slots []uint32
	mask  uint64
	// arena stores entry e at arena[e*stride : (e+1)*stride]: key words
	// first, value words after.
	arena []tuple.Value
	n     int
}

// New returns an empty map for keyWidth-word keys and valWidth-word values.
// valWidth may be zero (a set of keys).
func New(keyWidth, valWidth int) *Map {
	return NewWithCapacity(keyWidth, valWidth, 0)
}

// NewWithCapacity pre-sizes the table for n entries.
func NewWithCapacity(keyWidth, valWidth, n int) *Map {
	if keyWidth < 1 || valWidth < 0 {
		panic(fmt.Sprintf("wordmap: bad widths key=%d val=%d", keyWidth, valWidth))
	}
	m := &Map{keyW: keyWidth, valW: valWidth, stride: keyWidth + valWidth}
	if n > 0 {
		m.rehash(slotsFor(n))
		m.arena = make([]tuple.Value, 0, n*m.stride)
	}
	return m
}

// slotsFor returns the power-of-two slot count that keeps n entries under
// the ¾ load-factor ceiling.
func slotsFor(n int) int {
	c := 16
	for c*3 < n*4 {
		c *= 2
	}
	return c
}

// KeyWidth returns the number of key words per entry.
func (m *Map) KeyWidth() int { return m.keyW }

// ValWidth returns the number of value words per entry.
func (m *Map) ValWidth() int { return m.valW }

// Len returns the number of entries.
func (m *Map) Len() int { return m.n }

// MemWords reports the map's retained storage footprint in words: the
// arena's capacity plus the slot array (two uint32 references per word).
// Capacities, not lengths — a Reset map still holds its backing memory, and
// that is what a memory budget must account. O(1).
func (m *Map) MemWords() int64 {
	return int64(cap(m.arena)) + int64(cap(m.slots))/2
}

// Reset empties the map, keeping its arena and slot storage for reuse.
func (m *Map) Reset() {
	m.n = 0
	m.arena = m.arena[:0]
	clear(m.slots)
}

// hashWords mixes a key word by word: an FNV-style multiply-xor pass with a
// splitmix64 finalizer so that dense key spaces (sequential vertex ids)
// spread across slots instead of clustering the linear probe.
func hashWords(key []tuple.Value) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range key {
		h ^= v
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// keyEqual compares a stored key against a probe key of the same width.
func keyEqual(a, b []tuple.Value) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// Get returns the value words for key, or nil if absent. The returned slice
// aliases the arena (see the package comment for its lifetime); for
// valWidth 0 a present key yields a non-nil empty slice.
func (m *Map) Get(key []tuple.Value) []tuple.Value {
	if m.n == 0 {
		return nil
	}
	i := hashWords(key) & m.mask
	for {
		s := m.slots[i]
		if s == 0 {
			return nil
		}
		off := int(s-1) * m.stride
		if keyEqual(m.arena[off:off+m.keyW:off+m.keyW], key) {
			return m.arena[off+m.keyW : off+m.stride : off+m.stride]
		}
		i = (i + 1) & m.mask
	}
}

// Upsert locates key, inserting it with a zeroed value if absent, and
// returns the entry's value words plus whether an insertion happened. The
// value slice aliases the arena and may be written in place; it stays valid
// until the next Upsert or Reset.
func (m *Map) Upsert(key []tuple.Value) ([]tuple.Value, bool) {
	if len(key) != m.keyW {
		panic(fmt.Sprintf("wordmap: upsert key width %d, map key width %d", len(key), m.keyW))
	}
	if (m.n+1)*4 > len(m.slots)*3 {
		m.grow()
	}
	i := hashWords(key) & m.mask
	for {
		s := m.slots[i]
		if s == 0 {
			break
		}
		off := int(s-1) * m.stride
		if keyEqual(m.arena[off:off+m.keyW:off+m.keyW], key) {
			return m.arena[off+m.keyW : off+m.stride : off+m.stride], false
		}
		i = (i + 1) & m.mask
	}
	if m.n == int(^uint32(0))-1 {
		panic("wordmap: table full (2^32-1 entries)")
	}
	off := len(m.arena)
	m.arena = append(m.arena, key...)
	for j := 0; j < m.valW; j++ {
		m.arena = append(m.arena, 0)
	}
	m.n++
	m.slots[i] = uint32(m.n)
	return m.arena[off+m.keyW : off+m.stride : off+m.stride], true
}

// grow doubles the slot array (or seeds it) and re-seats every live entry.
// Entries are append-only, so no tombstone compaction is needed and arena
// offsets are untouched.
func (m *Map) grow() {
	c := 16
	if len(m.slots) > 0 {
		c = len(m.slots) * 2
	}
	m.rehash(c)
}

func (m *Map) rehash(capacity int) {
	m.slots = make([]uint32, capacity)
	m.mask = uint64(capacity - 1)
	for e := 0; e < m.n; e++ {
		off := e * m.stride
		i := hashWords(m.arena[off:off+m.keyW]) & m.mask
		for m.slots[i] != 0 {
			i = (i + 1) & m.mask
		}
		m.slots[i] = uint32(e + 1)
	}
}

// Each calls fn for every entry in insertion order until fn returns false.
// Both slices alias the arena; fn must not Upsert into or Reset the map.
func (m *Map) Each(fn func(key, val []tuple.Value) bool) {
	for e := 0; e < m.n; e++ {
		off := e * m.stride
		if !fn(m.arena[off:off+m.keyW:off+m.keyW],
			m.arena[off+m.keyW:off+m.stride:off+m.stride]) {
			return
		}
	}
}

// At returns entry e's key and value words in insertion order (0 ≤ e <
// Len). It is the index-based twin of Each for callers that interleave
// iteration with other work.
func (m *Map) At(e int) (key, val []tuple.Value) {
	off := e * m.stride
	return m.arena[off : off+m.keyW : off+m.keyW],
		m.arena[off+m.keyW : off+m.stride : off+m.stride]
}

// TamperValueWord XORs mask into one value word of a middle entry — the
// chaos harness's deterministic in-memory bit flip. It never touches key
// words, so the table's probing invariants stay intact while the stored
// state becomes silently wrong: exactly the fault the integrity digests
// must catch. It reports false when the map has no entries, no value
// words, or a zero mask.
func (m *Map) TamperValueWord(mask tuple.Value) bool {
	if m.n == 0 || m.valW == 0 || mask == 0 {
		return false
	}
	off := (m.n/2)*m.stride + m.keyW
	m.arena[off] ^= mask
	return true
}
