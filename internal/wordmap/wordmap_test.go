package wordmap

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"paralagg/internal/tuple"
)

// refKey encodes a word key the way the retired keyString helper did, so the
// reference model is exactly the map the production code used before.
func refKey(key []tuple.Value) string {
	b := make([]byte, 8*len(key))
	for i, v := range key {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return string(b)
}

func TestBasicUpsertGet(t *testing.T) {
	m := New(2, 1)
	if m.Len() != 0 {
		t.Fatalf("new map Len = %d", m.Len())
	}
	if got := m.Get([]tuple.Value{1, 2}); got != nil {
		t.Fatalf("Get on empty map = %v", got)
	}
	v, ins := m.Upsert([]tuple.Value{1, 2})
	if !ins || len(v) != 1 || v[0] != 0 {
		t.Fatalf("first Upsert = %v, %v", v, ins)
	}
	v[0] = 42
	v2, ins := m.Upsert([]tuple.Value{1, 2})
	if ins || v2[0] != 42 {
		t.Fatalf("second Upsert = %v, %v", v2, ins)
	}
	if got := m.Get([]tuple.Value{1, 2}); len(got) != 1 || got[0] != 42 {
		t.Fatalf("Get = %v", got)
	}
	if got := m.Get([]tuple.Value{2, 1}); got != nil {
		t.Fatalf("Get of absent permuted key = %v", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestZeroValWidthSet(t *testing.T) {
	m := New(3, 0)
	for i := 0; i < 100; i++ {
		k := []tuple.Value{tuple.Value(i), tuple.Value(i * 7), 5}
		if _, ins := m.Upsert(k); !ins {
			t.Fatalf("key %d reported duplicate on first insert", i)
		}
		if _, ins := m.Upsert(k); ins {
			t.Fatalf("key %d reported fresh on second insert", i)
		}
		if got := m.Get(k); got == nil || len(got) != 0 {
			t.Fatalf("Get(%d) = %v, want present empty", i, got)
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestInsertionOrderIteration(t *testing.T) {
	m := New(1, 1)
	const n = 1000 // crosses several resize boundaries
	for i := 0; i < n; i++ {
		v, _ := m.Upsert([]tuple.Value{tuple.Value(i * 31)})
		v[0] = tuple.Value(i)
	}
	next := 0
	m.Each(func(key, val []tuple.Value) bool {
		if key[0] != tuple.Value(next*31) || val[0] != tuple.Value(next) {
			t.Fatalf("entry %d: key=%v val=%v", next, key, val)
		}
		k2, v2 := m.At(next)
		if k2[0] != key[0] || v2[0] != val[0] {
			t.Fatalf("At(%d) = %v,%v disagrees with Each", next, k2, v2)
		}
		next++
		return true
	})
	if next != n {
		t.Fatalf("Each visited %d entries, want %d", next, n)
	}
	// Early termination.
	count := 0
	m.Each(func(key, val []tuple.Value) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("Each with early stop visited %d", count)
	}
}

func TestResetReuse(t *testing.T) {
	m := New(2, 2)
	fill := func(tag tuple.Value) {
		for i := 0; i < 300; i++ {
			v, ins := m.Upsert([]tuple.Value{tuple.Value(i), tag})
			if !ins {
				t.Fatalf("tag %d key %d: duplicate after Reset", tag, i)
			}
			v[0], v[1] = tag, tuple.Value(i)
		}
	}
	fill(1)
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if got := m.Get([]tuple.Value{0, 1}); got != nil {
		t.Fatalf("stale entry survived Reset: %v", got)
	}
	fill(2)
	if m.Len() != 300 {
		t.Fatalf("Len after refill = %d", m.Len())
	}
	if got := m.Get([]tuple.Value{7, 2}); got == nil || got[0] != 2 || got[1] != 7 {
		t.Fatalf("refill entry = %v", got)
	}
}

// TestDifferentialFuzz drives random insert/lookup/merge/iterate sequences
// against a map[string][]tuple.Value reference model — the exact structure
// wordmap replaced — across several key/value widths and enough volume to
// cross multiple resize boundaries.
func TestDifferentialFuzz(t *testing.T) {
	type shape struct{ keyW, valW int }
	shapes := []shape{{1, 1}, {2, 1}, {2, 0}, {3, 2}, {5, 4}}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(0xC0FFEE + sh.keyW*100 + sh.valW)))
		m := New(sh.keyW, sh.valW)
		ref := map[string][]tuple.Value{}
		var refOrder []string

		randKey := func() []tuple.Value {
			k := make([]tuple.Value, sh.keyW)
			for i := range k {
				// Small domain so lookups hit existing keys often.
				k[i] = tuple.Value(rng.Intn(40))
			}
			return k
		}

		const ops = 20000
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert/overwrite
				k := randKey()
				v, ins := m.Upsert(k)
				rk := refKey(k)
				_, present := ref[rk]
				if ins == present {
					t.Fatalf("%v op %d: Upsert(%v) inserted=%v, ref present=%v", sh, op, k, ins, present)
				}
				if !present {
					ref[rk] = make([]tuple.Value, sh.valW)
					refOrder = append(refOrder, rk)
				}
				for i := range v {
					nv := tuple.Value(rng.Uint64())
					v[i] = nv
					ref[rk][i] = nv
				}
			case 4, 5, 6: // lookup
				k := randKey()
				got := m.Get(k)
				want, present := ref[refKey(k)]
				if present != (got != nil) {
					t.Fatalf("%v op %d: Get(%v) present=%v, ref=%v", sh, op, k, got != nil, present)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v op %d: Get(%v) = %v, ref %v", sh, op, k, got, want)
					}
				}
			case 7, 8: // merge: lattice-style min-join into the value in place
				if sh.valW == 0 {
					continue
				}
				k := randKey()
				nv := tuple.Value(rng.Intn(1000))
				v, ins := m.Upsert(k)
				rk := refKey(k)
				if ins {
					v[0] = nv
					ref[rk] = make([]tuple.Value, sh.valW)
					copy(ref[rk], v)
					refOrder = append(refOrder, rk)
				} else if nv < v[0] {
					v[0] = nv
					ref[rk][0] = nv
				}
			case 9: // full iteration: order, widths, contents
				i := 0
				m.Each(func(key, val []tuple.Value) bool {
					if len(key) != sh.keyW || len(val) != sh.valW {
						t.Fatalf("%v op %d: entry widths %d/%d", sh, op, len(key), len(val))
					}
					rk := refKey(key)
					if rk != refOrder[i] {
						t.Fatalf("%v op %d: entry %d out of insertion order", sh, op, i)
					}
					want := ref[rk]
					for j := range want {
						if val[j] != want[j] {
							t.Fatalf("%v op %d: entry %d val %v, ref %v", sh, op, i, val, want)
						}
					}
					i++
					return true
				})
				if i != len(ref) || m.Len() != len(ref) {
					t.Fatalf("%v op %d: iterated %d, Len %d, ref %d", sh, op, i, m.Len(), len(ref))
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("%v: final Len %d, ref %d", sh, m.Len(), len(ref))
		}
	}
}

// TestGrowthBoundaries inserts exactly up to and past each resize threshold
// and verifies every prior entry survives the rehash.
func TestGrowthBoundaries(t *testing.T) {
	m := New(1, 1)
	for i := 0; i < 4000; i++ {
		v, ins := m.Upsert([]tuple.Value{tuple.Value(i)})
		if !ins {
			t.Fatalf("key %d duplicate", i)
		}
		v[0] = tuple.Value(i * 3)
		// After each insert that may have grown the table, spot-check the
		// oldest, newest, and a middle entry.
		for _, probe := range []int{0, i / 2, i} {
			got := m.Get([]tuple.Value{tuple.Value(probe)})
			if got == nil || got[0] != tuple.Value(probe*3) {
				t.Fatalf("after insert %d: Get(%d) = %v", i, probe, got)
			}
		}
	}
}

func TestUpsertExistingAllocFree(t *testing.T) {
	m := NewWithCapacity(2, 1, 256)
	keys := make([][]tuple.Value, 256)
	for i := range keys {
		keys[i] = []tuple.Value{tuple.Value(i), tuple.Value(i * 17)}
		v, _ := m.Upsert(keys[i])
		v[0] = tuple.Value(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			if v, ins := m.Upsert(k); ins || v[0] >= 256 {
				t.Fatal("unexpected insert")
			}
			if m.Get(k) == nil {
				t.Fatal("missing key")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Upsert/Get of existing keys: %v allocs/run, want 0", allocs)
	}
}
