// Serving endpoints: a long-lived engine attaches itself to the live server
// and the mux gains three more surfaces —
//
//	/query   GET  ?rel=NAME[&key=1,2][&count=1]      point lookup / prefix scan
//	/topk    GET  ?rel=NAME&k=N[&by=COL][&desc=1]    top-k by column
//	/apply   POST {"insert": {...}, "delete": {...}} mutation batch
//
// The handlers are registered unconditionally in Start — before a backend is
// attached (and between supervised restarts, exactly like /metrics) they
// answer 503 rather than 404, so dashboards and probes never lose the
// target. OnAttempt keeps the attached backends: a supervised restart swaps
// the world underneath, not the serving surface.
package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// QueryAnswer is the wire form of one query result.
type QueryAnswer struct {
	Found  bool       `json:"found"`
	Value  []uint64   `json:"value,omitempty"`
	Count  uint64     `json:"count"`
	Tuples [][]uint64 `json:"tuples,omitempty"`
}

// QueryBackend answers point queries from resident converged state. Engine
// implements it; the indirection keeps this package free of the root
// package (which imports it).
type QueryBackend interface {
	LiveQuery(relation string, key []uint64, limit, orderBy int, desc, countOnly bool) (QueryAnswer, error)
}

// ApplyBackend applies one mutation batch of base facts.
type ApplyBackend interface {
	LiveApply(insert, del map[string][][]uint64) (iterations int, incremental bool, err error)
}

// queryBox/applyBox keep the atomic.Value concrete type stable across
// different backend implementations.
type queryBox struct{ b QueryBackend }
type applyBox struct{ b ApplyBackend }

// AttachQuerier publishes the query backend; /query and /topk serve from it
// on the next request. Safe to call at any time, including after supervised
// restarts.
func (s *Server) AttachQuerier(b QueryBackend) { s.querier.Store(queryBox{b}) }

// AttachApplier publishes the mutation backend for /apply.
func (s *Server) AttachApplier(b ApplyBackend) { s.applier.Store(applyBox{b}) }

func (s *Server) queryBackend() QueryBackend {
	if v, ok := s.querier.Load().(queryBox); ok {
		return v.b
	}
	return nil
}

func (s *Server) applyBackend() ApplyBackend {
	if v, ok := s.applier.Load().(applyBox); ok {
		return v.b
	}
	return nil
}

// parseKey parses "1,2,3" (or "") into column values.
func parseKey(raw string) ([]uint64, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	key := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad key column %q: %v", p, err)
		}
		key = append(key, v)
	}
	return key, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleQuery serves GET /query: ?rel=NAME is required; &key=1,2 filters by
// canonical prefix (the full independent key of an aggregated relation is an
// O(1) lookup); &count=1 returns only the cardinality.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	b := s.queryBackend()
	if b == nil {
		http.Error(w, "no engine attached", http.StatusServiceUnavailable)
		return
	}
	rel := r.URL.Query().Get("rel")
	if rel == "" {
		http.Error(w, "missing ?rel=", http.StatusBadRequest)
		return
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	countOnly := r.URL.Query().Get("count") == "1"
	ans, err := b.LiveQuery(rel, key, 0, 0, false, countOnly)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, ans)
}

// handleTopK serves GET /topk: ?rel=NAME&k=N with optional &by=COL (order
// column, default 0), &desc=1, &key=prefix.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	b := s.queryBackend()
	if b == nil {
		http.Error(w, "no engine attached", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	rel := q.Get("rel")
	if rel == "" {
		http.Error(w, "missing ?rel=", http.StatusBadRequest)
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 1 {
		http.Error(w, "missing or bad ?k=", http.StatusBadRequest)
		return
	}
	by := 0
	if raw := q.Get("by"); raw != "" {
		if by, err = strconv.Atoi(raw); err != nil {
			http.Error(w, "bad ?by=", http.StatusBadRequest)
			return
		}
	}
	key, err := parseKey(q.Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ans, err := b.LiveQuery(rel, key, k, by, q.Get("desc") == "1", false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, ans)
}

// applyRequest is the POST /apply body.
type applyRequest struct {
	Insert map[string][][]uint64 `json:"insert,omitempty"`
	Delete map[string][][]uint64 `json:"delete,omitempty"`
}

// applyResponse reports what the batch cost.
type applyResponse struct {
	Iterations  int  `json:"iterations"`
	Incremental bool `json:"incremental"`
}

// handleApply serves POST /apply: a JSON mutation batch, answered after the
// engine re-converges.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	b := s.applyBackend()
	if b == nil {
		http.Error(w, "no engine attached", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	iters, incr, err := b.LiveApply(req.Insert, req.Delete)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, applyResponse{Iterations: iters, Incremental: incr})
}
