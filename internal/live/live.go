// Package live serves a running world's observability counters over HTTP —
// the endpoint a long-lived distributed run exposes so operators can watch
// it instead of waiting for Exec to return. Three surfaces on one mux:
//
//	/metrics      Prometheus text exposition: iterations, Δ cardinality,
//	              per-relation tuple counts, comm bytes/msgs, transport
//	              retransmits/reconnects/heartbeat misses, checkpoint age,
//	              rank failures, supervised attempt number.
//	/vars         the same counters as one JSON document (expvar-style).
//	/debug/pprof  the standard net/http/pprof handlers.
//	/query        point lookups against an attached serving engine.
//	/topk         top-k reads against an attached serving engine.
//	/apply        streaming base-fact mutation batches (POST).
//
// The serving endpoints answer 503 until AttachQuerier/AttachApplier
// publish an engine (see query.go).
//
// A Server is an obs.Observer: attach Server to Config.Observer (or Tee it
// with a trace recorder) and the counters update live from the event
// stream. It is AttemptAware — each supervised restart re-registers
// cleanly: the attempt gauge advances, per-run counters reset, and the
// listener stays up across attempts so dashboards never lose the target.
package live

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paralagg/internal/obs"
)

// Server exposes live counters over HTTP and updates them from the
// observability event stream.
type Server struct {
	ln  net.Listener
	srv *http.Server

	// Serving backends (see query.go). Attached after Start, swapped
	// atomically, deliberately NOT reset by OnAttempt: the /query, /topk,
	// and /apply endpoints must keep serving across supervised restarts
	// exactly like /metrics does.
	querier atomic.Value // queryBox
	applier atomic.Value // applyBox

	attempt        atomic.Int64
	runsStarted    atomic.Int64
	runsEnded      atomic.Int64
	ranks          atomic.Int64
	stratum        atomic.Int64
	iterations     atomic.Int64 // completed fixpoint iterations this attempt
	lastChanged    atomic.Int64 // global changed count of the latest iteration
	commBytes      atomic.Int64
	commMsgs       atomic.Int64
	checkpoints    atomic.Int64
	lastCkptUnixNS atomic.Int64
	recoveries     atomic.Int64
	rankFailures   atomic.Int64
	planVotes      atomic.Int64

	// Supervisor lifecycle counters, one per decision kind, plus the hot-
	// replacement peer states surfaced by the transport.
	supRestarts     atomic.Int64
	supRollbacks    atomic.Int64
	supDegrades     atomic.Int64
	supScratch      atomic.Int64
	supReplacements atomic.Int64
	supReplaceFails atomic.Int64
	ranksRecovering atomic.Int64 // peers currently parked awaiting replacement
	rankRecoveries  atomic.Int64 // re-admissions completed

	// State-integrity counters.
	divergences      atomic.Int64 // divergence detections (world aborts)
	ckptValFailures  atomic.Int64 // checkpoint generations failing validation
	ckptQuarantined  atomic.Int64 // generations quarantined as a result
	fingerprintNanos atomic.Int64 // CPU nanos spent fingerprinting state

	// Transport robustness totals, accumulated from iteration deltas.
	netRetransmits atomic.Int64
	netReconnects  atomic.Int64
	netHBMisses    atomic.Int64
	netCRCErrors   atomic.Int64
	netFramesSent  atomic.Int64
	netFramesRecv  atomic.Int64

	// Overload-resilience counters: flow-control stalls (cumulative), the
	// outbox high-water mark (gauge), memory-pressure responses by level,
	// accounted bytes at the latest pressure event, and checkpoint storage
	// degradations.
	netThrottleStalls atomic.Int64
	netOutboxPeak     atomic.Int64
	memSoftEvents     atomic.Int64
	memHardEvents     atomic.Int64
	memAccounted      atomic.Int64
	memBudget         atomic.Int64
	ckptDegradations  atomic.Int64

	// relations tracks per-relation global totals and Δ cardinality;
	// peerSent/peerRecv accumulate this process's per-peer wire bytes
	// (nil until a transport that tracks them reports a delta).
	mu        sync.Mutex
	relTotal  map[string]uint64
	relDelta  map[string]uint64
	peerSent  []int64
	peerRecv  []int64
	lastError string
}

// addPeer accumulates a per-peer byte delta into acc, growing it as needed.
func addPeer(acc []int64, delta []int64) []int64 {
	if len(delta) > len(acc) {
		acc = append(acc, make([]int64, len(delta)-len(acc))...)
	}
	for i, v := range delta {
		acc[i] += v
	}
	return acc
}

// Start listens on addr (host:port; port 0 picks a free one) and serves the
// endpoints until Close. The returned Server is ready to use as an
// obs.Observer immediately.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, relTotal: map[string]uint64{}, relDelta: map[string]uint64{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	// Serving endpoints: registered unconditionally so they 503 (not 404)
	// until an engine attaches, and keep serving across restarts.
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/apply", s.handleApply)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the address the server actually listens on (useful with
// port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// OnAttempt implements obs.AttemptAware: a supervised restart advances the
// attempt gauge and resets the per-run counters so the new world's numbers
// are not conflated with the dead one's. The HTTP listener persists.
func (s *Server) OnAttempt(n int) {
	s.attempt.Store(int64(n))
	s.iterations.Store(0)
	s.lastChanged.Store(0)
	s.commBytes.Store(0)
	s.commMsgs.Store(0)
	s.mu.Lock()
	s.relTotal = map[string]uint64{}
	s.relDelta = map[string]uint64{}
	s.peerSent, s.peerRecv = nil, nil
	s.mu.Unlock()
}

// OnEvent implements obs.Observer.
func (s *Server) OnEvent(e *obs.Event) {
	switch e.Kind {
	case obs.KindRunStart:
		s.runsStarted.Add(1)
		s.ranks.Store(int64(e.Ranks))
	case obs.KindRunEnd:
		s.runsEnded.Add(1)
		if e.Err != "" {
			s.mu.Lock()
			s.lastError = e.Err
			s.mu.Unlock()
		}
	case obs.KindStratumStart:
		s.stratum.Store(int64(e.Stratum))
	case obs.KindIteration:
		// Rank 0 speaks for the world: changed counts and comm deltas are
		// collective-derived and identical on every rank, so counting each
		// rank's copy would multiply them by the world size.
		if e.Rank != 0 {
			return
		}
		s.iterations.Add(1)
		s.lastChanged.Store(int64(e.Changed))
		s.commBytes.Add(e.Bytes)
		s.commMsgs.Add(e.Msgs)
		s.netRetransmits.Add(e.Net.Retransmits)
		s.netReconnects.Add(e.Net.Reconnects)
		s.netHBMisses.Add(e.Net.HeartbeatMisses)
		s.netCRCErrors.Add(e.Net.CRCErrors)
		s.netFramesSent.Add(e.Net.FramesSent)
		s.netFramesRecv.Add(e.Net.FramesRecv)
		s.netThrottleStalls.Add(e.Net.ThrottleStalls)
		if p := e.Net.OutboxPeakFrames; p > s.netOutboxPeak.Load() {
			s.netOutboxPeak.Store(p)
		}
		if e.Net.PeerBytesSent != nil || e.Net.PeerBytesRecv != nil {
			s.mu.Lock()
			s.peerSent = addPeer(s.peerSent, e.Net.PeerBytesSent)
			s.peerRecv = addPeer(s.peerRecv, e.Net.PeerBytesRecv)
			s.mu.Unlock()
		}
	case obs.KindRelation:
		if e.Rank != 0 {
			return
		}
		s.mu.Lock()
		s.relTotal[e.Name] = e.Count
		s.relDelta[e.Name] = e.Changed
		s.mu.Unlock()
	case obs.KindPlan:
		s.planVotes.Add(1)
	case obs.KindCheckpoint:
		s.checkpoints.Add(1)
		s.lastCkptUnixNS.Store(e.End)
	case obs.KindRecovery:
		s.recoveries.Add(1)
	case obs.KindRankFailed:
		s.rankFailures.Add(1)
		s.mu.Lock()
		s.lastError = fmt.Sprintf("rank %d failed in %s at iter %d: %s", e.Rank, e.Name, e.Iter, e.Err)
		s.mu.Unlock()
	case obs.KindDivergence:
		s.divergences.Add(1)
		s.mu.Lock()
		s.lastError = fmt.Sprintf("state diverged at iter %d on rank %d: %s", e.Iter, e.Rank, e.Err)
		s.mu.Unlock()
	case obs.KindCkptScan:
		// Cumulative process-wide totals, not deltas: store, don't add.
		s.ckptValFailures.Store(e.Failures)
		s.ckptQuarantined.Store(e.Quarantined)
	case obs.KindMemPressure:
		if e.Name == "hard" {
			s.memHardEvents.Add(1)
		} else {
			s.memSoftEvents.Add(1)
		}
		s.memAccounted.Store(e.Work)
		s.memBudget.Store(e.Bytes)
	case obs.KindSupervisor:
		switch e.Name {
		case "rollback":
			s.supRollbacks.Add(1)
		case "degrade":
			s.supDegrades.Add(1)
		case "scratch":
			s.supScratch.Add(1)
		case "replace":
			s.supReplacements.Add(1)
		case "replace-failed", "gave-up":
			s.supReplaceFails.Add(1)
		default: // "restart"
			s.supRestarts.Add(1)
		}
	case obs.KindRankRecovering:
		s.ranksRecovering.Add(1)
		s.mu.Lock()
		s.lastError = fmt.Sprintf("rank %d silent at iter %d, awaiting replacement: %s", e.Rank, e.Iter, e.Err)
		s.mu.Unlock()
	case obs.KindRankRecovered:
		s.ranksRecovering.Add(-1)
		s.rankRecoveries.Add(1)
	case obs.KindCkptDegraded:
		s.ckptDegradations.Add(1)
		s.mu.Lock()
		s.lastError = fmt.Sprintf("checkpoint storage degraded at iter %d on rank %d: %s", e.Iter, e.Rank, e.Err)
		s.mu.Unlock()
	case obs.KindPhase:
		if e.Name == "integrity" {
			s.fingerprintNanos.Add(e.CPUNanos)
		}
	}
}

// snapshot gathers every counter under one lock for rendering.
func (s *Server) snapshot() (num map[string]int64, rels map[string][2]uint64, peerSent, peerRecv []int64, lastErr string) {
	num = map[string]int64{
		"attempt":                     s.attempt.Load(),
		"runs_started":                s.runsStarted.Load(),
		"runs_ended":                  s.runsEnded.Load(),
		"ranks":                       s.ranks.Load(),
		"stratum":                     s.stratum.Load(),
		"iterations":                  s.iterations.Load(),
		"delta_changed":               s.lastChanged.Load(),
		"comm_bytes":                  s.commBytes.Load(),
		"comm_msgs":                   s.commMsgs.Load(),
		"checkpoints":                 s.checkpoints.Load(),
		"recoveries":                  s.recoveries.Load(),
		"rank_failures":               s.rankFailures.Load(),
		"plan_votes":                  s.planVotes.Load(),
		"net_retransmits":             s.netRetransmits.Load(),
		"net_reconnects":              s.netReconnects.Load(),
		"net_heartbeat_misses":        s.netHBMisses.Load(),
		"net_crc_errors":              s.netCRCErrors.Load(),
		"net_frames_sent":             s.netFramesSent.Load(),
		"net_frames_recv":             s.netFramesRecv.Load(),
		"net_throttle_stalls":         s.netThrottleStalls.Load(),
		"net_outbox_peak_frames":      s.netOutboxPeak.Load(),
		"mem_pressure_soft":           s.memSoftEvents.Load(),
		"mem_pressure_hard":           s.memHardEvents.Load(),
		"mem_accounted_bytes":         s.memAccounted.Load(),
		"mem_budget_bytes":            s.memBudget.Load(),
		"ckpt_degradations":           s.ckptDegradations.Load(),
		"divergences":                 s.divergences.Load(),
		"ckpt_validation_failures":    s.ckptValFailures.Load(),
		"ckpt_quarantined":            s.ckptQuarantined.Load(),
		"fingerprint_nanos":           s.fingerprintNanos.Load(),
		"supervisor_restarts":         s.supRestarts.Load(),
		"supervisor_rollbacks":        s.supRollbacks.Load(),
		"supervisor_degrades":         s.supDegrades.Load(),
		"supervisor_scratch_restarts": s.supScratch.Load(),
		"supervisor_replacements":     s.supReplacements.Load(),
		"supervisor_replace_failures": s.supReplaceFails.Load(),
		"ranks_recovering":            s.ranksRecovering.Load(),
		"rank_recoveries":             s.rankRecoveries.Load(),
		"checkpoint_age_millis":       -1,
	}
	if ts := s.lastCkptUnixNS.Load(); ts > 0 {
		num["checkpoint_age_millis"] = (time.Now().UnixNano() - ts) / 1e6
	}
	rels = map[string][2]uint64{}
	s.mu.Lock()
	for n, c := range s.relTotal {
		rels[n] = [2]uint64{c, s.relDelta[n]}
	}
	peerSent = append([]int64(nil), s.peerSent...)
	peerRecv = append([]int64(nil), s.peerRecv...)
	lastErr = s.lastError
	s.mu.Unlock()
	return num, rels, peerSent, peerRecv, lastErr
}

// gaugeNames lists the counters that are gauges (point-in-time values);
// everything else is exposed as a counter.
var gaugeNames = map[string]bool{
	"attempt": true, "ranks": true, "stratum": true, "delta_changed": true,
	"checkpoint_age_millis": true, "net_outbox_peak_frames": true,
	"mem_accounted_bytes": true, "mem_budget_bytes": true,
	"ranks_recovering": true,
}

// handleMetrics renders Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	num, rels, peerSent, peerRecv, _ := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	names := make([]string, 0, len(num))
	for n := range num {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		kind := "counter"
		if gaugeNames[n] {
			kind = "gauge"
		}
		fmt.Fprintf(w, "# TYPE paralagg_%s %s\nparalagg_%s %d\n", n, kind, n, num[n])
	}
	relNames := make([]string, 0, len(rels))
	for n := range rels {
		relNames = append(relNames, n)
	}
	sort.Strings(relNames)
	fmt.Fprintf(w, "# TYPE paralagg_relation_tuples gauge\n")
	for _, n := range relNames {
		fmt.Fprintf(w, "paralagg_relation_tuples{relation=%q} %d\n", n, rels[n][0])
	}
	fmt.Fprintf(w, "# TYPE paralagg_relation_delta gauge\n")
	for _, n := range relNames {
		fmt.Fprintf(w, "paralagg_relation_delta{relation=%q} %d\n", n, rels[n][1])
	}
	// Per-peer wire traffic: how the active collective schedule concentrates
	// or spreads this process's bytes across the gang.
	if len(peerSent) > 0 || len(peerRecv) > 0 {
		fmt.Fprintf(w, "# TYPE paralagg_peer_bytes_sent counter\n")
		for peer, v := range peerSent {
			fmt.Fprintf(w, "paralagg_peer_bytes_sent{peer=\"%d\"} %d\n", peer, v)
		}
		fmt.Fprintf(w, "# TYPE paralagg_peer_bytes_recv counter\n")
		for peer, v := range peerRecv {
			fmt.Fprintf(w, "paralagg_peer_bytes_recv{peer=\"%d\"} %d\n", peer, v)
		}
	}
}

// handleVars renders every counter as one JSON document (expvar-style).
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	num, rels, peerSent, peerRecv, lastErr := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n")
	names := make([]string, 0, len(num))
	for n := range num {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %q: %d,\n", n, num[n])
	}
	relNames := make([]string, 0, len(rels))
	for n := range rels {
		relNames = append(relNames, n)
	}
	sort.Strings(relNames)
	fmt.Fprintf(w, "  \"relations\": {")
	for i, n := range relNames {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%q: {\"tuples\": %d, \"delta\": %d}", n, rels[n][0], rels[n][1])
	}
	fmt.Fprintf(w, "},\n")
	fmt.Fprintf(w, "  \"peer_bytes_sent\": [")
	for i, v := range peerSent {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%d", v)
	}
	fmt.Fprintf(w, "],\n")
	fmt.Fprintf(w, "  \"peer_bytes_recv\": [")
	for i, v := range peerRecv {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%d", v)
	}
	fmt.Fprintf(w, "],\n")
	fmt.Fprintf(w, "  \"last_error\": %q\n}\n", lastErr)
}
