package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"paralagg/internal/obs"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func emit(s *Server, fill func(*obs.Event)) {
	e := obs.Get()
	fill(e)
	obs.Emit(s, e)
}

func feedRun(s *Server) {
	emit(s, func(e *obs.Event) { e.Kind = obs.KindRunStart; e.Ranks = 4 })
	for iter := 1; iter <= 3; iter++ {
		it := iter
		// Every rank reports the collective-derived numbers; only rank 0's
		// copy may be counted.
		for rank := 0; rank < 4; rank++ {
			rk := rank
			emit(s, func(e *obs.Event) {
				e.Kind = obs.KindIteration
				e.Rank, e.Iter = rk, it
				e.Changed = 100
				e.Bytes, e.Msgs = 1000, 10
				e.Net.Retransmits = 2
				e.Net.PeerBytesSent = []int64{0, 40, 8, 8}
				e.Net.PeerBytesRecv = []int64{0, 16, 16, 24}
			})
			emit(s, func(e *obs.Event) {
				e.Kind = obs.KindRelation
				e.Rank, e.Name = rk, "spath"
				e.Count, e.Changed = 500, 100
			})
		}
	}
	emit(s, func(e *obs.Event) { e.Kind = obs.KindCheckpoint; e.Iter = 2; e.End = 1 })
	emit(s, func(e *obs.Event) { e.Kind = obs.KindRunEnd })
}

func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"paralagg_ranks 4",
		"paralagg_iterations 3",    // rank 0 only — not 12
		"paralagg_comm_bytes 3000", // 3 iterations × 1000, not ×4 ranks
		"paralagg_net_retransmits 6",
		"paralagg_delta_changed 100",
		"paralagg_checkpoints 1",
		"paralagg_runs_started 1",
		"paralagg_runs_ended 1",
		`paralagg_relation_tuples{relation="spath"} 500`,
		`paralagg_relation_delta{relation="spath"} 100`,
		`paralagg_peer_bytes_sent{peer="1"} 120`, // rank 0 only: 3 iterations × 40
		`paralagg_peer_bytes_recv{peer="3"} 72`,
		"# TYPE paralagg_peer_bytes_sent counter",
		"# TYPE paralagg_ranks gauge",
		"# TYPE paralagg_iterations counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestVarsEndpointIsValidJSON(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	emit(s, func(e *obs.Event) {
		e.Kind = obs.KindRankFailed
		e.Rank, e.Iter, e.Name, e.Err = 2, 3, "allgather", "watchdog"
	})
	code, body := get(t, "http://"+s.Addr()+"/vars")
	if code != 200 {
		t.Fatalf("/vars status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/vars is not valid JSON: %v\n%s", err, body)
	}
	if doc["iterations"].(float64) != 3 {
		t.Fatalf("iterations = %v", doc["iterations"])
	}
	rels := doc["relations"].(map[string]any)
	sp := rels["spath"].(map[string]any)
	if sp["tuples"].(float64) != 500 || sp["delta"].(float64) != 100 {
		t.Fatalf("relations = %v", rels)
	}
	lastErr, _ := doc["last_error"].(string)
	if !strings.Contains(lastErr, "rank 2 failed in allgather") {
		t.Fatalf("last_error = %q", lastErr)
	}
	if doc["rank_failures"].(float64) != 1 {
		t.Fatalf("rank_failures = %v", doc["rank_failures"])
	}
}

func TestPprofMounted(t *testing.T) {
	s := startServer(t)
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestOnAttemptResetsPerRunCounters(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	s.OnAttempt(1)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"paralagg_attempt 1",
		"paralagg_iterations 0", // per-run counters reset
		"paralagg_comm_bytes 0",
		"paralagg_checkpoints 1", // lifetime counters survive
		"paralagg_runs_started 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("after OnAttempt, /metrics missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, `relation="spath"`) {
		t.Error("relation gauges should reset on a new attempt")
	}
}

func TestCheckpointAgeGauge(t *testing.T) {
	s := startServer(t)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "paralagg_checkpoint_age_millis -1") {
		t.Fatalf("no checkpoint yet should read -1:\n%s", body)
	}
}
