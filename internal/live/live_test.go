package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"paralagg/internal/obs"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func emit(s *Server, fill func(*obs.Event)) {
	e := obs.Get()
	fill(e)
	obs.Emit(s, e)
}

func feedRun(s *Server) {
	emit(s, func(e *obs.Event) { e.Kind = obs.KindRunStart; e.Ranks = 4 })
	for iter := 1; iter <= 3; iter++ {
		it := iter
		// Every rank reports the collective-derived numbers; only rank 0's
		// copy may be counted.
		for rank := 0; rank < 4; rank++ {
			rk := rank
			emit(s, func(e *obs.Event) {
				e.Kind = obs.KindIteration
				e.Rank, e.Iter = rk, it
				e.Changed = 100
				e.Bytes, e.Msgs = 1000, 10
				e.Net.Retransmits = 2
				e.Net.PeerBytesSent = []int64{0, 40, 8, 8}
				e.Net.PeerBytesRecv = []int64{0, 16, 16, 24}
			})
			emit(s, func(e *obs.Event) {
				e.Kind = obs.KindRelation
				e.Rank, e.Name = rk, "spath"
				e.Count, e.Changed = 500, 100
			})
		}
	}
	emit(s, func(e *obs.Event) { e.Kind = obs.KindCheckpoint; e.Iter = 2; e.End = 1 })
	emit(s, func(e *obs.Event) { e.Kind = obs.KindRunEnd })
}

func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"paralagg_ranks 4",
		"paralagg_iterations 3",    // rank 0 only — not 12
		"paralagg_comm_bytes 3000", // 3 iterations × 1000, not ×4 ranks
		"paralagg_net_retransmits 6",
		"paralagg_delta_changed 100",
		"paralagg_checkpoints 1",
		"paralagg_runs_started 1",
		"paralagg_runs_ended 1",
		`paralagg_relation_tuples{relation="spath"} 500`,
		`paralagg_relation_delta{relation="spath"} 100`,
		`paralagg_peer_bytes_sent{peer="1"} 120`, // rank 0 only: 3 iterations × 40
		`paralagg_peer_bytes_recv{peer="3"} 72`,
		"# TYPE paralagg_peer_bytes_sent counter",
		"# TYPE paralagg_ranks gauge",
		"# TYPE paralagg_iterations counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestVarsEndpointIsValidJSON(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	emit(s, func(e *obs.Event) {
		e.Kind = obs.KindRankFailed
		e.Rank, e.Iter, e.Name, e.Err = 2, 3, "allgather", "watchdog"
	})
	code, body := get(t, "http://"+s.Addr()+"/vars")
	if code != 200 {
		t.Fatalf("/vars status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/vars is not valid JSON: %v\n%s", err, body)
	}
	if doc["iterations"].(float64) != 3 {
		t.Fatalf("iterations = %v", doc["iterations"])
	}
	rels := doc["relations"].(map[string]any)
	sp := rels["spath"].(map[string]any)
	if sp["tuples"].(float64) != 500 || sp["delta"].(float64) != 100 {
		t.Fatalf("relations = %v", rels)
	}
	lastErr, _ := doc["last_error"].(string)
	if !strings.Contains(lastErr, "rank 2 failed in allgather") {
		t.Fatalf("last_error = %q", lastErr)
	}
	if doc["rank_failures"].(float64) != 1 {
		t.Fatalf("rank_failures = %v", doc["rank_failures"])
	}
}

func TestPprofMounted(t *testing.T) {
	s := startServer(t)
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestOnAttemptResetsPerRunCounters(t *testing.T) {
	s := startServer(t)
	feedRun(s)
	s.OnAttempt(1)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"paralagg_attempt 1",
		"paralagg_iterations 0", // per-run counters reset
		"paralagg_comm_bytes 0",
		"paralagg_checkpoints 1", // lifetime counters survive
		"paralagg_runs_started 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("after OnAttempt, /metrics missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, `relation="spath"`) {
		t.Error("relation gauges should reset on a new attempt")
	}
}

func TestCheckpointAgeGauge(t *testing.T) {
	s := startServer(t)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "paralagg_checkpoint_age_millis -1") {
		t.Fatalf("no checkpoint yet should read -1:\n%s", body)
	}
}

// fakeQuerier/fakeApplier stand in for an attached engine.
type fakeQuerier struct{ calls int }

func (f *fakeQuerier) LiveQuery(rel string, key []uint64, limit, orderBy int, desc, countOnly bool) (QueryAnswer, error) {
	f.calls++
	return QueryAnswer{Found: true, Count: 1, Value: []uint64{7}}, nil
}

type fakeApplier struct{ calls int }

func (f *fakeApplier) LiveApply(insert, del map[string][][]uint64) (int, bool, error) {
	f.calls++
	return 3, true, nil
}

func TestQueryEndpointsUnavailableUntilAttached(t *testing.T) {
	s := startServer(t)
	for _, path := range []string{"/query?rel=spath", "/topk?rel=spath&k=5"} {
		if code, _ := get(t, "http://"+s.Addr()+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before attach: status %d, want 503", path, code)
		}
	}
	resp, err := http.Post("http://"+s.Addr()+"/apply", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/apply before attach: status %d, want 503", resp.StatusCode)
	}
}

func TestQueryEndpointsServeAndSurviveRestart(t *testing.T) {
	s := startServer(t)
	q, a := &fakeQuerier{}, &fakeApplier{}
	s.AttachQuerier(q)
	s.AttachApplier(a)

	code, body := get(t, "http://"+s.Addr()+"/query?rel=spath&key=1,5")
	if code != 200 {
		t.Fatalf("/query status %d: %s", code, body)
	}
	var ans QueryAnswer
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatalf("/query not JSON: %v", err)
	}
	if !ans.Found || ans.Value[0] != 7 {
		t.Fatalf("/query answer = %+v", ans)
	}

	// Regression: a supervised restart (OnAttempt) must not detach the
	// serving backends — /query and /apply keep answering, exactly like
	// /metrics keeps scraping. The original per-run reset path only touched
	// counters; this pins that the query handlers ride the same persistent
	// registration.
	feedRun(s)
	s.OnAttempt(2)
	code, _ = get(t, "http://"+s.Addr()+"/query?rel=spath&key=1,5")
	if code != 200 {
		t.Fatalf("/query after OnAttempt: status %d, want 200", code)
	}
	if code, _ = get(t, "http://"+s.Addr()+"/topk?rel=spath&k=3&by=2&desc=1"); code != 200 {
		t.Fatalf("/topk after OnAttempt: status %d, want 200", code)
	}
	resp, err := http.Post("http://"+s.Addr()+"/apply", "application/json",
		strings.NewReader(`{"insert": {"edge": [[1,2,3]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/apply after OnAttempt: status %d: %s", resp.StatusCode, raw)
	}
	var ar struct {
		Iterations  int  `json:"iterations"`
		Incremental bool `json:"incremental"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil || ar.Iterations != 3 || !ar.Incremental {
		t.Fatalf("/apply answer = %s (err %v)", raw, err)
	}
	if q.calls != 3 || a.calls != 1 {
		t.Fatalf("backend calls: query %d apply %d", q.calls, a.calls)
	}
}

func TestQueryEndpointBadRequests(t *testing.T) {
	s := startServer(t)
	s.AttachQuerier(&fakeQuerier{})
	for _, path := range []string{"/query", "/query?rel=x&key=abc", "/topk?rel=x", "/topk?rel=x&k=0"} {
		if code, _ := get(t, "http://"+s.Addr()+path); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
}
