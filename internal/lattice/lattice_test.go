package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paralagg/internal/tuple"
)

// semilattices are the aggregators whose Join must satisfy the full
// semilattice laws: idempotent, commutative, associative.
var semilattices = []Aggregator{Min{}, Max{}, BitOr{}, LexMin2{}}

// monotoneStreams must still be commutative and associative (delivery order
// is nondeterministic) but not idempotent.
var monotoneStreams = []Aggregator{MSum{}, MCount{}}

// genValue produces a dependent value of the aggregator's width. Floats are
// kept small and finite so float association error cannot trip the tests.
func genValue(agg Aggregator, rng *rand.Rand) []tuple.Value {
	v := make([]tuple.Value, agg.Width())
	for i := range v {
		switch agg.(type) {
		case FMin, MSum:
			v[i] = math.Float64bits(float64(rng.Intn(1 << 20)))
		default:
			v[i] = tuple.Value(rng.Intn(1 << 20))
		}
	}
	return v
}

func eq(agg Aggregator, a, b []tuple.Value) bool { return agg.Compare(a, b) == Equal }

func TestSemilatticeLaws(t *testing.T) {
	for _, agg := range semilattices {
		agg := agg
		t.Run(agg.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				a, b, c := genValue(agg, rng), genValue(agg, rng), genValue(agg, rng)
				if !eq(agg, agg.Join(a, a), a) {
					t.Fatalf("not idempotent at %v", a)
				}
				if !eq(agg, agg.Join(a, b), agg.Join(b, a)) {
					t.Fatalf("not commutative at %v %v", a, b)
				}
				l := agg.Join(agg.Join(a, b), c)
				r := agg.Join(a, agg.Join(b, c))
				if !eq(agg, l, r) {
					t.Fatalf("not associative at %v %v %v", a, b, c)
				}
			}
		})
	}
}

func TestMonotoneStreamLaws(t *testing.T) {
	for _, agg := range monotoneStreams {
		agg := agg
		t.Run(agg.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 3000; i++ {
				a, b, c := genValue(agg, rng), genValue(agg, rng), genValue(agg, rng)
				if !eq(agg, agg.Join(a, b), agg.Join(b, a)) {
					t.Fatalf("not commutative at %v %v", a, b)
				}
				l := agg.Join(agg.Join(a, b), c)
				r := agg.Join(a, agg.Join(b, c))
				if !eq(agg, l, r) {
					t.Fatalf("not associative at %v %v %v", a, b, c)
				}
			}
		})
	}
}

// TestJoinIsUpperBound checks that a ⊑ a⊔b and b ⊑ a⊔b in the aggregate's
// own order (Compare never reports the join below an argument).
func TestJoinIsUpperBound(t *testing.T) {
	for _, agg := range semilattices {
		agg := agg
		t.Run(agg.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 3000; i++ {
				a, b := genValue(agg, rng), genValue(agg, rng)
				j := agg.Join(a, b)
				if o := agg.Compare(j, a); o == Less || o == Incomparable {
					t.Fatalf("join %v below argument %v (order %v)", j, a, o)
				}
				if o := agg.Compare(j, b); o == Less || o == Incomparable {
					t.Fatalf("join %v below argument %v (order %v)", j, b, o)
				}
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	all := append(append([]Aggregator{}, semilattices...), FMin{})
	for _, agg := range all {
		agg := agg
		t.Run(agg.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(19))
			flip := map[Order]Order{Less: Greater, Greater: Less, Equal: Equal, Incomparable: Incomparable}
			for i := 0; i < 2000; i++ {
				a, b := genValue(agg, rng), genValue(agg, rng)
				if agg.Compare(a, b) != flip[agg.Compare(b, a)] {
					t.Fatalf("asymmetric compare at %v %v", a, b)
				}
			}
		})
	}
}

func TestMinSemantics(t *testing.T) {
	m := Min{}
	if got := m.Join([]tuple.Value{5}, []tuple.Value{3}); got[0] != 3 {
		t.Fatalf("Join(5,3) = %v", got)
	}
	// Numerically smaller = lattice-greater (more information).
	if o := m.Compare([]tuple.Value{3}, []tuple.Value{5}); o != Greater {
		t.Fatalf("Compare(3,5) = %v, want Greater", o)
	}
	if o := m.Compare([]tuple.Value{5}, []tuple.Value{3}); o != Less {
		t.Fatalf("Compare(5,3) = %v, want Less", o)
	}
}

func TestMaxSemantics(t *testing.T) {
	m := Max{}
	if got := m.Join([]tuple.Value{5}, []tuple.Value{9}); got[0] != 9 {
		t.Fatalf("Join(5,9) = %v", got)
	}
	if o := m.Compare([]tuple.Value{9}, []tuple.Value{5}); o != Greater {
		t.Fatalf("Compare(9,5) = %v", o)
	}
}

func TestBitOrIncomparable(t *testing.T) {
	b := BitOr{}
	if o := b.Compare([]tuple.Value{0b01}, []tuple.Value{0b10}); o != Incomparable {
		t.Fatalf("disjoint sets compare as %v", o)
	}
	if o := b.Compare([]tuple.Value{0b01}, []tuple.Value{0b11}); o != Less {
		t.Fatalf("subset compares as %v", o)
	}
	if got := b.Join([]tuple.Value{0b01}, []tuple.Value{0b10}); got[0] != 0b11 {
		t.Fatalf("Join = %v", got)
	}
}

func TestFMinOnFloats(t *testing.T) {
	m := FMin{}
	a := []tuple.Value{math.Float64bits(2.5)}
	b := []tuple.Value{math.Float64bits(1.25)}
	if got := math.Float64frombits(m.Join(a, b)[0]); got != 1.25 {
		t.Fatalf("Join = %v", got)
	}
	if o := m.Compare(b, a); o != Greater {
		t.Fatalf("smaller float should be lattice-Greater, got %v", o)
	}
}

func TestLexMin2(t *testing.T) {
	m := LexMin2{}
	a := []tuple.Value{3, 100}
	b := []tuple.Value{3, 7}
	if got := m.Join(a, b); got[0] != 3 || got[1] != 7 {
		t.Fatalf("Join = %v", got)
	}
	c := []tuple.Value{2, 999}
	if got := m.Join(a, c); got[0] != 2 {
		t.Fatalf("Join = %v", got)
	}
}

func TestMSumAccumulates(t *testing.T) {
	s := MSum{}
	acc := []tuple.Value{math.Float64bits(0)}
	for i := 1; i <= 4; i++ {
		acc = s.Join(acc, []tuple.Value{math.Float64bits(float64(i))})
	}
	if got := math.Float64frombits(acc[0]); got != 10 {
		t.Fatalf("sum = %v", got)
	}
}

func TestMCountAccumulates(t *testing.T) {
	c := MCount{}
	acc := []tuple.Value{0}
	for i := 0; i < 7; i++ {
		acc = c.Join(acc, []tuple.Value{1})
	}
	if acc[0] != 7 {
		t.Fatalf("count = %d", acc[0])
	}
}

func TestIdempotentClassification(t *testing.T) {
	for _, agg := range semilattices {
		if !Idempotent(agg) {
			t.Errorf("%s misclassified as monotone-stream", agg.Name())
		}
	}
	if !Idempotent(FMin{}) {
		t.Errorf("FMin misclassified")
	}
	for _, agg := range monotoneStreams {
		if Idempotent(agg) {
			t.Errorf("%s misclassified as idempotent", agg.Name())
		}
	}
}

// Property: for Min, folding Join over any permutation of a set of values
// yields the same result as the plain minimum.
func TestMinFoldEqualsMinimum(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		agg := Min{}
		acc := []tuple.Value{vals[0]}
		min := vals[0]
		for _, v := range vals[1:] {
			acc = agg.Join(acc, []tuple.Value{v})
			if v < min {
				min = v
			}
		}
		return acc[0] == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderString(t *testing.T) {
	if Less.String() != "Less" || Incomparable.String() != "Incomparable" {
		t.Error("Order.String broken")
	}
	if Order(42).String() != "Order(42)" {
		t.Error("unknown order string")
	}
}
