// Package lattice defines the recursive-aggregate interface of the paper
// (Listing 1) and the standard aggregators built on it. An aggregator views
// the dependent column(s) of a relation as elements of a join-semilattice;
// the fused deduplication/aggregation pass merges dependent values with the
// lattice join (the paper's partial_agg), and a tuple only enters Δ when its
// merged value strictly increases in the lattice order — which is what
// guarantees the ascending-chain termination argument of §III.
package lattice

import (
	"fmt"
	"math"

	"paralagg/internal/tuple"
)

// Order is the result of comparing two dependent values in the aggregate's
// partial order (the paper's partial_cmp).
type Order int

// The possible outcomes of a partial-order comparison.
const (
	Less         Order = iota // a strictly below b: Join(a,b) == b
	Equal                     // a == b
	Greater                   // a strictly above b: Join(a,b) == a
	Incomparable              // neither bounds the other; Join is a new value
)

func (o Order) String() string {
	switch o {
	case Less:
		return "Less"
	case Equal:
		return "Equal"
	case Greater:
		return "Greater"
	case Incomparable:
		return "Incomparable"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Aggregator is the recursive-aggregate contract (the paper's
// RecursiveAggregator). Width is the number of dependent columns
// (dependent_column in the C++ API returns a vector of that length); Join is
// partial_agg, the least upper bound; Compare is partial_cmp.
//
// Join must be commutative and associative, and for true semilattice
// aggregates (Min, Max, BitOr, LexMin2) also idempotent. Monotone-stream
// aggregates (MSum, MCount) relax idempotence and instead rely on the
// runtime's exactly-once delivery of contributions; see their docs.
type Aggregator interface {
	// Name identifies the aggregate in diagnostics and plan dumps, e.g.
	// "$MIN".
	Name() string
	// Width is the number of dependent columns the aggregate consumes.
	Width() int
	// Join returns a ⊔ b. Arguments have Width columns; they must not be
	// mutated. The result may alias either argument.
	Join(a, b []tuple.Value) []tuple.Value
	// Compare orders a against b in the aggregate's partial order.
	Compare(a, b []tuple.Value) Order
}

// Idempotent reports whether agg's Join is idempotent (a true semilattice).
// The runtime uses this to decide whether re-delivered tuples are harmless.
func Idempotent(agg Aggregator) bool {
	_, monotoneStream := agg.(interface{ monotoneStream() })
	return !monotoneStream
}

// equal1 compares single-word dependent values.
func cmp1(a, b tuple.Value) Order {
	switch {
	case a == b:
		return Equal
	case a < b:
		return Less
	default:
		return Greater
	}
}

// Min is the $MIN aggregate: the dependent value decreases toward the
// lattice top. Smaller is "better": Join returns the minimum, and Compare
// reports a value with a *smaller* payload as Greater (higher in the
// lattice), because it carries more information about the final answer.
type Min struct{}

// Name implements Aggregator.
func (Min) Name() string { return "$MIN" }

// Width implements Aggregator.
func (Min) Width() int { return 1 }

// Join implements Aggregator: the numeric minimum.
func (Min) Join(a, b []tuple.Value) []tuple.Value {
	if b[0] < a[0] {
		return b
	}
	return a
}

// Compare implements Aggregator. Numerically smaller values are Greater in
// the lattice order.
func (Min) Compare(a, b []tuple.Value) Order { return cmp1(b[0], a[0]) }

// Max is the $MAX aggregate: Join returns the numeric maximum.
type Max struct{}

// Name implements Aggregator.
func (Max) Name() string { return "$MAX" }

// Width implements Aggregator.
func (Max) Width() int { return 1 }

// Join implements Aggregator: the numeric maximum.
func (Max) Join(a, b []tuple.Value) []tuple.Value {
	if b[0] > a[0] {
		return b
	}
	return a
}

// Compare implements Aggregator.
func (Max) Compare(a, b []tuple.Value) Order { return cmp1(a[0], b[0]) }

// BitOr accumulates a 64-bit set union; it is the power-set lattice on a
// fixed universe of 64 elements and is useful for small reachability
// summaries.
type BitOr struct{}

// Name implements Aggregator.
func (BitOr) Name() string { return "$BOR" }

// Width implements Aggregator.
func (BitOr) Width() int { return 1 }

// Join implements Aggregator: bitwise union.
func (BitOr) Join(a, b []tuple.Value) []tuple.Value {
	return []tuple.Value{a[0] | b[0]}
}

// Compare implements Aggregator: subset order.
func (BitOr) Compare(a, b []tuple.Value) Order {
	switch {
	case a[0] == b[0]:
		return Equal
	case a[0]|b[0] == b[0]:
		return Less
	case a[0]|b[0] == a[0]:
		return Greater
	default:
		return Incomparable
	}
}

// FMin is $MIN over IEEE-754 doubles stored as their bit patterns
// (math.Float64bits). Only finite, non-NaN values are meaningful.
type FMin struct{}

// Name implements Aggregator.
func (FMin) Name() string { return "$FMIN" }

// Width implements Aggregator.
func (FMin) Width() int { return 1 }

// Join implements Aggregator.
func (FMin) Join(a, b []tuple.Value) []tuple.Value {
	if math.Float64frombits(b[0]) < math.Float64frombits(a[0]) {
		return b
	}
	return a
}

// Compare implements Aggregator.
func (FMin) Compare(a, b []tuple.Value) Order {
	fa, fb := math.Float64frombits(a[0]), math.Float64frombits(b[0])
	switch {
	case fa == fb:
		return Equal
	case fb < fa:
		return Less
	default:
		return Greater
	}
}

// LexMin2 is a two-column lexicographic minimum: it demonstrates multi-word
// dependent values (dep_val_t as a vector in the paper's API). The pair
// (a0, a1) is better than (b0, b1) when it is lexicographically smaller.
type LexMin2 struct{}

// Name implements Aggregator.
func (LexMin2) Name() string { return "$LEXMIN2" }

// Width implements Aggregator.
func (LexMin2) Width() int { return 2 }

// Join implements Aggregator: the lexicographic minimum of the two pairs.
func (LexMin2) Join(a, b []tuple.Value) []tuple.Value {
	if b[0] < a[0] || (b[0] == a[0] && b[1] < a[1]) {
		return b
	}
	return a
}

// Compare implements Aggregator.
func (LexMin2) Compare(a, b []tuple.Value) Order {
	if a[0] == b[0] && a[1] == b[1] {
		return Equal
	}
	if b[0] < a[0] || (b[0] == a[0] && b[1] < a[1]) {
		return Less
	}
	return Greater
}

// MSum is the monotonic-sum aggregate used by PageRank-style queries: the
// accumulator is the running sum of all delivered contributions. It is
// monotone for non-negative contributions but *not* idempotent, so it is
// only sound under the runtime's exactly-once delivery of generated tuples
// (each join output reaches the accumulator exactly once). Floating-point
// contributions use Float64bits encoding.
type MSum struct{}

func (MSum) monotoneStream() {}

// Name implements Aggregator.
func (MSum) Name() string { return "$MSUM" }

// Width implements Aggregator.
func (MSum) Width() int { return 1 }

// Join implements Aggregator: float64 addition of the encoded values.
func (MSum) Join(a, b []tuple.Value) []tuple.Value {
	s := math.Float64frombits(a[0]) + math.Float64frombits(b[0])
	return []tuple.Value{math.Float64bits(s)}
}

// Compare implements Aggregator: numeric order of the running sums.
func (MSum) Compare(a, b []tuple.Value) Order {
	fa, fb := math.Float64frombits(a[0]), math.Float64frombits(b[0])
	switch {
	case fa == fb:
		return Equal
	case fa < fb:
		return Less
	default:
		return Greater
	}
}

// MCount is the monotonic count ($MCOUNT): the accumulator counts delivered
// contributions. Like MSum it is not idempotent and relies on exactly-once
// delivery.
type MCount struct{}

func (MCount) monotoneStream() {}

// Name implements Aggregator.
func (MCount) Name() string { return "$MCOUNT" }

// Width implements Aggregator.
func (MCount) Width() int { return 1 }

// Join implements Aggregator: integer addition (each contribution carries
// its own partial count, usually 1).
func (MCount) Join(a, b []tuple.Value) []tuple.Value {
	return []tuple.Value{a[0] + b[0]}
}

// Compare implements Aggregator.
func (MCount) Compare(a, b []tuple.Value) Order { return cmp1(a[0], b[0]) }
