// Package baseline implements the comparison engines of the paper's Table I
// on the same simulated-MPI substrate as PARALAGG, so the architectural
// differences the paper attributes to them are isolated and measurable:
//
//   - RaSQL-sim models RaSQL/BigDatalog on Spark: recursive aggregates are
//     ordinary tuples partitioned *including* their value columns, so a
//     key's candidates scatter and each partition prunes against only its
//     own partial best — intermediate results "leak" (§III-A) and a final
//     global aggregation pass is needed. Join order is planned (Catalyst),
//     but every iteration pays a stage-scheduling overhead proportional to
//     the partition count, which is what flattens its scaling in Table I.
//
//   - SociaLite-sim models distributed SociaLite: the same leaky
//     distribution, a static join order fixed by the indexby declaration,
//     and per-derived-tuple message overhead from its worker runtime.
//
// Both engines produce exact answers (validated against the references) —
// they are slower by architecture, not rigged: the extra tuples, extra
// bytes, and extra latency are measured by the same cost model as
// PARALAGG's.
package baseline

import (
	"fmt"

	"paralagg/internal/graph"
	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// System selects which comparator architecture to model.
type System int

// The modeled systems.
const (
	RaSQLSim System = iota
	SociaLiteSim
)

func (s System) String() string {
	if s == RaSQLSim {
		return "rasql-sim"
	}
	return "socialite-sim"
}

// Result summarizes a baseline run.
type Result struct {
	System     System
	Ranks      int
	Iterations int
	// SimSeconds is the simulated parallel runtime under the shared cost
	// model.
	SimSeconds float64
	// CommBytes is the total payload moved.
	CommBytes int64
	// Answers is the exact aggregate count after the final global
	// aggregation pass (spath pairs for SSSP, labeled nodes for CC).
	Answers uint64
	// Materialized counts the tuples the leaky relation accumulated —
	// the §III-A overhead (always ≥ Answers).
	Materialized uint64
}

// options per system.
func (s System) plan() ra.PlanMode {
	if s == RaSQLSim {
		return ra.PlanDynamic
	}
	// SociaLite's join order is pinned by the user's indexby declaration;
	// the edge relation sits on the serialized side.
	return ra.PlanStaticRight
}

// stageOverhead models each system's per-iteration runtime cost, recorded
// into PhaseOther: Spark schedules O(partitions) tasks per stage; the
// SociaLite worker runtime pays per-derived-tuple messaging.
func (s System) stageOverhead(size int, changed uint64) metrics.Sample {
	if s == RaSQLSim {
		// Two stages (join, aggregate) of size tasks each, serialized
		// through the driver.
		return metrics.Sample{Msgs: int64(2 * size)}
	}
	perRank := int64(changed)/int64(size) + 1
	return metrics.Sample{Msgs: perRank / 4}
}

// RunSSSP evaluates multi-source SSSP with the modeled architecture and
// returns exact answers.
func RunSSSP(sys System, g *graph.Graph, sources []uint64, ranks int) (*Result, error) {
	res := &Result{System: sys, Ranks: ranks}
	world := mpi.NewWorld(ranks)
	mc := metrics.NewCollector(ranks)
	err := world.Run(func(c *mpi.Comm) error {
		edge, err := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1},
			c, mc, relation.Config{})
		if err != nil {
			return err
		}
		// The leaky aggregate: partitioned by the full tuple (value column
		// included), pruned per-rank against partial bests only.
		sp, err := relation.New(relation.Schema{Name: "spath", Arity: 3, Indep: 3, Key: 3},
			c, mc, relation.Config{Leaky: &relation.LeakySpec{Agg: lattice.Min{}, Indep: 2}})
		if err != nil {
			return err
		}
		spMid, err := sp.AddIndex([]int{1, 0, 2}, 1)
		if err != nil {
			return err
		}
		edge.LoadShare(len(g.Edges), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{g.Edges[i].U, g.Edges[i].V, g.Edges[i].W})
		})
		sp.LoadShare(len(sources), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{sources[i], sources[i], 0})
		})

		// Mapper-side combine: the emitting rank prunes candidates against
		// its own best-known value per key (RaSQL's partial pre-aggregation
		// before shuffle).
		mapperBest := map[[2]uint64]uint64{}
		join := &ra.Join{
			Name: "spath(f,t,l+w) <- spath(f,m,l), edge(m,t,w) [leaky]",
			Left: spMid, LeftRel: sp,
			Right: edge.Canonical(), RightRel: edge,
			Head: sp, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				f, t, d := l[1], r[1], l[2]+r[2]
				k := [2]uint64{f, t}
				if best, ok := mapperBest[k]; ok && best <= d {
					return
				}
				mapperBest[k] = d
				out(tuple.Tuple{f, t, d})
			},
		}
		fx := ra.NewFixpoint(c, mc, join)
		iters := fx.Run(ra.Options{
			Plan: sys.plan(),
			AfterIteration: func(iter int, changed uint64) {
				mc.Record(c.Rank(), iter, metrics.PhaseOther, sys.stageOverhead(c.Size(), changed))
			},
		})

		// Final global aggregation: exact per-key minimum across the leaked
		// partials (the stratum-end MIN these systems execute).
		answers := finalAggregate(c, mc, sp.Canonical(), 2, lattice.Min{}, iters)
		if c.Rank() == 0 {
			res.Iterations = iters
			res.Answers = answers
		}
		mat := sp.GlobalFullCount()
		if c.Rank() == 0 {
			res.Materialized = mat
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	report := mc.BuildReport(metrics.DefaultCostModel)
	res.SimSeconds = report.SimSeconds()
	res.CommBytes = int64(world.Stats().Snapshot().Bytes())
	return res, nil
}

// RunCC evaluates connected components with the modeled architecture.
func RunCC(sys System, g *graph.Graph, ranks int) (*Result, error) {
	res := &Result{System: sys, Ranks: ranks}
	world := mpi.NewWorld(ranks)
	mc := metrics.NewCollector(ranks)
	und := g.Undirected()
	err := world.Run(func(c *mpi.Comm) error {
		edge, err := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1},
			c, mc, relation.Config{})
		if err != nil {
			return err
		}
		cc, err := relation.New(relation.Schema{Name: "cc", Arity: 2, Indep: 2, Key: 2},
			c, mc, relation.Config{Leaky: &relation.LeakySpec{Agg: lattice.Min{}, Indep: 1}})
		if err != nil {
			return err
		}
		ccByNode, err := cc.AddIndex([]int{0, 1}, 1)
		if err != nil {
			return err
		}
		edge.LoadShare(len(und), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{und[i].U, und[i].V})
		})
		cc.LoadShare(g.Nodes, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{uint64(i), uint64(i)})
		})

		mapperBest := map[uint64]uint64{}
		join := &ra.Join{
			Name: "cc(y,z) <- cc(x,z), edge(x,y) [leaky]",
			Left: ccByNode, LeftRel: cc,
			Right: edge.Canonical(), RightRel: edge,
			Head: cc, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				y, z := r[1], l[1]
				if best, ok := mapperBest[y]; ok && best <= z {
					return
				}
				mapperBest[y] = z
				out(tuple.Tuple{y, z})
			},
		}
		fx := ra.NewFixpoint(c, mc, join)
		iters := fx.Run(ra.Options{
			Plan: sys.plan(),
			AfterIteration: func(iter int, changed uint64) {
				mc.Record(c.Rank(), iter, metrics.PhaseOther, sys.stageOverhead(c.Size(), changed))
			},
		})
		answers := finalAggregate(c, mc, cc.Canonical(), 1, lattice.Min{}, iters)
		if c.Rank() == 0 {
			res.Iterations = iters
			res.Answers = answers
		}
		mat := cc.GlobalFullCount()
		if c.Rank() == 0 {
			res.Materialized = mat
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	report := mc.BuildReport(metrics.DefaultCostModel)
	res.SimSeconds = report.SimSeconds()
	res.CommBytes = int64(world.Stats().Snapshot().Bytes())
	return res, nil
}

// finalAggregate shuffles every kept tuple by its independent-key hash and
// reduces exactly, returning the global number of aggregated answers. This
// is the end-of-stratum aggregation the compared systems run over their
// leaked partials; its cost is metered as an extra all-to-all plus local
// aggregation in the iteration after the fixpoint.
func finalAggregate(c *mpi.Comm, mc *metrics.Collector, ix *relation.Index, indep int, agg lattice.Aggregator, iter int) uint64 {
	size := c.Size()
	timer := metrics.StartTimer()
	send := make([][]mpi.Word, size)
	arity := len(ix.Perm)
	scanned := int64(0)
	ix.Full.Ascend(func(t tuple.Tuple) bool {
		scanned++
		dest := int(t.HashPrefix(indep) % uint64(size))
		send[dest] = append(send[dest], t...)
		return true
	})
	pre := c.Stats().Snapshot()
	recv := c.Alltoallv(send)
	d := c.Stats().Snapshot().Sub(pre)
	mc.Record(c.Rank(), iter, metrics.PhaseAllToAll,
		timer.Done(scanned, int64(d.Bytes()), 1))

	timer = metrics.StartTimer()
	best := map[string][]tuple.Value{}
	var work int64
	for _, words := range recv {
		for off := 0; off+arity <= len(words); off += arity {
			t := tuple.Tuple(words[off : off+arity])
			k := keyOf(t[:indep])
			dep := append([]tuple.Value(nil), t[indep:]...)
			if cur, ok := best[k]; ok {
				best[k] = agg.Join(cur, dep)
			} else {
				best[k] = dep
			}
			work++
		}
	}
	mc.Record(c.Rank(), iter, metrics.PhaseLocalAgg, timer.Done(work, 0, 0))
	return c.Allreduce(uint64(len(best)), mpi.OpSum)
}

func keyOf(vals []tuple.Value) string {
	b := make([]byte, 0, len(vals)*20)
	for _, v := range vals {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// Validate confirms a baseline result against the exact answer count.
func (r *Result) Validate(wantAnswers uint64) error {
	if r.Answers != wantAnswers {
		return fmt.Errorf("%s produced %d answers, want %d", r.System, r.Answers, wantAnswers)
	}
	if r.Materialized < r.Answers {
		return fmt.Errorf("%s materialized %d < answers %d", r.System, r.Materialized, r.Answers)
	}
	return nil
}
