package baseline

import (
	"testing"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

func TestBaselineSSSPExactAnswers(t *testing.T) {
	g := graph.Uniform("t", 120, 700, 6, 3)
	sources := g.Sources(3, 9)
	_, wantPairs := queries.RefSSSPMulti(g, sources)
	for _, sys := range []System{RaSQLSim, SociaLiteSim} {
		res, err := RunSSSP(sys, g, sources, 4)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if err := res.Validate(uint64(wantPairs)); err != nil {
			t.Fatal(err)
		}
		if res.Iterations < 2 || res.SimSeconds <= 0 || res.CommBytes <= 0 {
			t.Fatalf("%v: degenerate result %+v", sys, res)
		}
	}
}

func TestBaselineCCExactAnswers(t *testing.T) {
	g := graph.Uniform("t", 200, 260, 1, 5)
	for _, sys := range []System{RaSQLSim, SociaLiteSim} {
		res, err := RunCC(sys, g, 4)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if err := res.Validate(uint64(g.Nodes)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLeakExceedsParalagg verifies the architectural claim: the leaky
// engines materialize strictly more tuples and move more bytes than
// PARALAGG on the same workload.
func TestLeakExceedsParalagg(t *testing.T) {
	g := graph.Uniform("t", 120, 700, 6, 3)
	sources := g.Sources(3, 9)
	_, wantPairs := queries.RefSSSPMulti(g, sources)

	pl, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Counts["spath"] != uint64(wantPairs) {
		t.Fatalf("paralagg wrong: %d pairs, want %d", pl.Counts["spath"], wantPairs)
	}
	bl, err := RunSSSP(RaSQLSim, g, sources, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Materialized <= pl.Counts["spath"] {
		t.Fatalf("leaky engine materialized %d, expected more than paralagg's %d",
			bl.Materialized, pl.Counts["spath"])
	}
	if bl.CommBytes <= pl.CommBytes {
		t.Fatalf("leaky engine moved %d bytes, paralagg %d — expected more",
			bl.CommBytes, pl.CommBytes)
	}
}

// TestStageOverheadGrowsWithRanks captures Table I's flat scaling: the
// RaSQL-sim per-iteration overhead grows with the partition count.
func TestStageOverheadGrowsWithRanks(t *testing.T) {
	a := RaSQLSim.stageOverhead(32, 1000)
	b := RaSQLSim.stageOverhead(128, 1000)
	if b.Msgs <= a.Msgs {
		t.Fatalf("stage overhead did not grow: %d vs %d", a.Msgs, b.Msgs)
	}
	// SociaLite's overhead tracks derived tuples, not ranks.
	s1 := SociaLiteSim.stageOverhead(32, 32000)
	s2 := SociaLiteSim.stageOverhead(32, 64000)
	if s2.Msgs <= s1.Msgs {
		t.Fatalf("per-tuple overhead did not grow: %d vs %d", s1.Msgs, s2.Msgs)
	}
}

func TestSystemString(t *testing.T) {
	if RaSQLSim.String() != "rasql-sim" || SociaLiteSim.String() != "socialite-sim" {
		t.Fatal("system names")
	}
}
