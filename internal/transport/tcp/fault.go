package tcp

import (
	"sync"
	"time"
)

// Deterministic network fault injection. Unlike the mpi-level FaultPlan
// (which targets logical operations), these faults act on the wire itself:
// frames are delayed, corrupted, or discarded and connections are severed
// at the write path, exactly where a real network fails. The chaos harness
// gives every rank's transport the same plan; each endpoint applies the
// specs naming it as the writing side, counting its own data frames, so a
// scenario replays identically across runs.

// Partition cuts the network between rank sets A and B: once this endpoint
// has written AfterSends data frames (to anyone), every frame crossing the
// cut — heartbeats included — is silently discarded and dials across it are
// refused. Heartbeat loss then surfaces the partitioned peers as failed on
// both sides.
type Partition struct {
	A, B       []int
	AfterSends int
}

// SlowLink delays every frame write from From to To by Delay — a straggler
// link. Delivery still happens; the test asserts results are unaffected.
type SlowLink struct {
	From, To int
	Delay    time.Duration
}

// Reset severs the connection from From to To immediately after the
// AfterSends-th data frame write (once). The transport must reconnect and
// retransmit without the upper layers noticing.
type Reset struct {
	From, To   int
	AfterSends int
}

// CorruptFrame flips one bit inside the CRC-covered region of the
// AfterSends-th data frame from From to To (once). The receiver must
// detect the corruption, reject the frame, and recover it by
// reconnect + retransmission — never deliver it.
type CorruptFrame struct {
	From, To   int
	AfterSends int
}

// SlowConsumer throttles rank Rank's receive side: the endpoint hosting
// that rank sleeps Delay before consuming each incoming data frame (which
// delays its cumulative acks — a receiver that cannot keep up) and
// advertises at most Window credits in its heartbeats. Well-behaved
// senders must rate-match it through the flow-control window instead of
// buffering without bound; the differential asserts results are unchanged
// and sender outboxes stayed within the window.
type SlowConsumer struct {
	Rank   int
	Delay  time.Duration
	Window int
}

// NetFaultPlan is a deterministic schedule of wire faults.
type NetFaultPlan struct {
	Partitions    []Partition
	SlowLinks     []SlowLink
	Resets        []Reset
	CorruptFrames []CorruptFrame
	SlowConsumers []SlowConsumer
}

// faultState holds one endpoint's matching counters for a plan.
type faultState struct {
	plan *NetFaultPlan
	self int

	mu           sync.Mutex
	sentTo       map[int]int // data frames written per destination
	sentTotal    int         // data frames written to anyone
	resetFired   []bool
	corruptFired []bool
}

func newFaultState(plan *NetFaultPlan, self int) *faultState {
	if plan == nil {
		return nil
	}
	return &faultState{
		plan:         plan,
		self:         self,
		sentTo:       map[int]int{},
		resetFired:   make([]bool, len(plan.Resets)),
		corruptFired: make([]bool, len(plan.CorruptFrames)),
	}
}

func inSet(set []int, r int) bool {
	for _, v := range set {
		if v == r {
			return true
		}
	}
	return false
}

// crossesCut reports whether traffic between self and peer crosses p's cut.
func (p Partition) crossesCut(self, peer int) bool {
	return (inSet(p.A, self) && inSet(p.B, peer)) || (inSet(p.B, self) && inSet(p.A, peer))
}

// partitioned reports whether the link self->peer is currently cut.
func (fs *faultState) partitioned(peer int) bool {
	if fs == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.partitionedLocked(peer)
}

func (fs *faultState) partitionedLocked(peer int) bool {
	for _, p := range fs.plan.Partitions {
		if p.crossesCut(fs.self, peer) && fs.sentTotal >= p.AfterSends {
			return true
		}
	}
	return false
}

// recvDelay returns how long this endpoint's read loops sleep before
// consuming a data frame (the SlowConsumer throttle; 0 = none). The plan is
// immutable, so no lock is needed.
func (fs *faultState) recvDelay() time.Duration {
	if fs == nil {
		return 0
	}
	var d time.Duration
	for _, s := range fs.plan.SlowConsumers {
		if s.Rank == fs.self && s.Delay > d {
			d = s.Delay
		}
	}
	return d
}

// slowConsumerWindow returns the receive window a SlowConsumer spec forces
// this endpoint to advertise (0 = no override).
func (fs *faultState) slowConsumerWindow() int {
	if fs == nil {
		return 0
	}
	w := 0
	for _, s := range fs.plan.SlowConsumers {
		if s.Rank == fs.self && s.Window > 0 && (w == 0 || s.Window < w) {
			w = s.Window
		}
	}
	return w
}

// writeVerdict is what the fault layer decided about one frame write.
type writeVerdict struct {
	drop       bool          // discard the frame silently
	delay      time.Duration // sleep before writing
	corruptAt  int           // byte offset to flip a bit at (-1 = none)
	resetAfter bool          // sever the connection after this write
}

// onWrite consults the plan for one frame write to peer. Data frames
// advance the matching counters; control frames (hello/heartbeat/bye) are
// subject to partitions and slow links only.
func (fs *faultState) onWrite(peer int, isData bool, frameLen int) writeVerdict {
	v := writeVerdict{corruptAt: -1}
	if fs == nil {
		return v
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.partitionedLocked(peer) {
		v.drop = true
		return v
	}
	if isData {
		fs.sentTo[peer]++
		fs.sentTotal++
	}
	for _, s := range fs.plan.SlowLinks {
		if s.From == fs.self && s.To == peer && s.Delay > v.delay {
			v.delay = s.Delay
		}
	}
	if !isData {
		return v
	}
	n := fs.sentTo[peer]
	for i, r := range fs.plan.Resets {
		if r.From == fs.self && r.To == peer && !fs.resetFired[i] && n >= r.AfterSends {
			fs.resetFired[i] = true
			v.resetAfter = true
		}
	}
	for i, c := range fs.plan.CorruptFrames {
		if c.From == fs.self && c.To == peer && !fs.corruptFired[i] && n >= c.AfterSends {
			fs.corruptFired[i] = true
			// Flip a bit in the CRC-covered region: past the 4-byte length
			// prefix (which must stay intact so framing never desyncs), inside
			// the header/payload the checksum protects.
			v.corruptAt = 4 + (frameLen-8)/2
		}
	}
	return v
}
