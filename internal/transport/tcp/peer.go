package tcp

import (
	"net"
	"sync"
	"time"

	"paralagg/internal/mpi"
)

// peer is one remote rank's connection state: the (single, duplex) TCP
// connection shared by the pair, the outbox of unacknowledged frames that
// makes delivery survive reconnects, and the liveness clock the failure
// detector reads. The higher rank of a pair dials; the lower accepts.
type peer struct {
	t      *Transport
	rank   int
	dialer bool

	firstConn chan struct{} // closed once the first connection is up
	firstOnce sync.Once

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	// gen numbers connection incarnations: reader/writer goroutines are
	// bound to the gen they were spawned for and exit when it moves on.
	gen int

	// out is the retransmission queue: every data frame since the last
	// cumulative ack, in seq order — plus, with hot replacement enabled,
	// acked history back to the hold floor (the replay inventory a rejoining
	// replacement is fed). next indexes the first not-yet-written frame; a
	// reconnect rewinds next to 0 (after pruning the releasable prefix) so
	// the undelivered tail is sent again.
	out  []frame
	next int
	// seq numbers outgoing data frames (1-based); lastRecv is the highest
	// in-order seq received from the peer — the cumulative ack we advertise
	// in hellos and heartbeats, and the dedup horizon for retransmits.
	seq, lastRecv uint64
	// acked is the highest cumulative ack the peer ever sent us: the flow
	// control horizon. Distinct from the prune position once history is
	// held back for replacement replay.
	acked uint64
	// mark is the send position recorded at the latest checkpoint; holdFloor
	// is the previous checkpoint's mark — frames above it are retained even
	// when acked, so a replacement restoring either of the two newest
	// checkpoint generations can be replayed its lost tail.
	mark, holdFloor uint64
	// maxWritten is the highest seq ever put on the wire; rewriting at or
	// below it counts as a retransmission.
	maxWritten uint64
	// advertised is the receive window the peer last piggybacked on a
	// heartbeat (0 until the first one arrives). Senders honor the smaller
	// of it and the local configured window.
	advertised int64
	// epoch is the peer's membership incarnation as last admitted. Hellos
	// from a lower epoch are rejected; a higher epoch resurrects the peer.
	epoch uint64

	lastAlive time.Time
	departed  bool // peer said bye: a clean exit, not a crash
	failed    bool // failure detector declared the peer dead
	// recovering parks the peer between failure detection and the admission
	// of a higher-epoch replacement (or the ReplaceTimeout fallback to
	// failed). Senders suspend their stall deadlines while it is set.
	recovering   bool
	recoverSince time.Time

	everConn bool
	// writeMu serializes frame writes on the connection (the writer loop
	// and the heartbeat beacon share it).
	writeMu sync.Mutex
}

func newPeer(t *Transport, rank int) *peer {
	p := &peer{
		t:         t,
		rank:      rank,
		dialer:    t.self > rank,
		firstConn: make(chan struct{}),
		lastAlive: time.Now(),
	}
	// A rejoining replacement resumes the dead incarnation's wire position:
	// sends continue its exact frame numbering (survivors dedup the replayed
	// prefix) and the receive horizon rewinds to what the restored state
	// consumed (survivor history replay is accepted above it).
	if len(t.cfg.InitialSendSeqs) == t.size {
		p.seq = t.cfg.InitialSendSeqs[rank]
		p.mark = p.seq
	}
	if len(t.cfg.InitialRecvSeqs) == t.size {
		p.lastRecv = t.cfg.InitialRecvSeqs[rank]
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// connectLoop is the dialer side: attempt, back off (exponentially, capped,
// with deterministic jitter), retry — until connected, stopped, or the peer
// is gone. The acceptor side has no loop; it just waits for the next dial.
func (p *peer) connectLoop() {
	t := p.t
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		done := p.failed || p.departed
		p.mu.Unlock()
		if done || t.isStopped() {
			return
		}
		if !t.fs.partitioned(p.rank) {
			if conn := p.dialOnce(); conn != nil {
				if p.attach(conn.c, conn.ack, conn.epoch) {
					return
				}
			}
		}
		if attempt > 0 {
			t.ctr.dialRetries.Add(1)
		}
		select {
		case <-t.stop:
			return
		case <-time.After(p.backoff(attempt)):
		}
	}
}

// backoff computes the delay before dial attempt n: DialBackoff doubled per
// attempt, capped at DialBackoffMax, jittered to [50%, 150%) by a
// deterministic hash so retry storms desynchronize reproducibly.
func (p *peer) backoff(attempt int) time.Duration {
	d := p.t.cfg.DialBackoff
	for i := 0; i < attempt && d < p.t.cfg.DialBackoffMax; i++ {
		d *= 2
	}
	if d > p.t.cfg.DialBackoffMax {
		d = p.t.cfg.DialBackoffMax
	}
	h := jitterHash(p.t.cfg.Seed, p.t.self, p.rank, attempt)
	frac := float64(h>>11) / float64(1<<53) // [0, 1)
	return d/2 + time.Duration(frac*float64(d))
}

// jitterHash is a splitmix64-style counter hash: the backoff's only source
// of randomness, so runs under the same seed retry at the same instants.
func jitterHash(seed int64, a, b, c int) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(a), uint64(b), uint64(c)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

type handshook struct {
	c     net.Conn
	ack   uint64
	epoch uint64
}

// dialOnce makes one connection attempt including the hello handshake:
// send our rank, receive position, and membership epoch; read the peer's.
// nil means try again.
func (p *peer) dialOnce() *handshook {
	t := p.t
	conn, err := net.DialTimeout("tcp", t.cfg.Peers[p.rank], t.cfg.DialAttemptTimeout)
	if err != nil {
		return nil
	}
	conn.SetDeadline(time.Now().Add(t.cfg.DialAttemptTimeout))
	p.mu.Lock()
	ack := p.lastRecv
	p.mu.Unlock()
	hello := encodeFrame(nil, frame{typ: ftHello, src: uint32(t.self), tag: helloMagic, seq: ack,
		words: []mpi.Word{t.cfg.Epoch}})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil
	}
	var scratch []byte
	reply, err := readFrame(conn, &scratch)
	if err != nil || reply.typ != ftHello || reply.tag != helloMagic || int(reply.src) != p.rank {
		conn.Close()
		return nil
	}
	conn.SetDeadline(time.Time{})
	return &handshook{c: conn, ack: reply.seq, epoch: frameEpoch(reply)}
}

// attach installs a freshly handshaken connection: admit the peer's
// membership epoch (rejecting stale incarnations, resurrecting on a higher
// one), prune the outbox's releasable prefix, rewind the write cursor so
// the retained tail retransmits, and spawn this incarnation's reader and
// writer.
func (p *peer) attach(conn net.Conn, peerAck, epoch uint64) bool {
	t := p.t
	p.mu.Lock()
	if t.isStopped() || p.failed || epoch < p.epoch {
		p.mu.Unlock()
		conn.Close()
		return false
	}
	// Admit the epoch (a higher one is a replacement incarnation; the same
	// one reconnecting is a peer that was merely slow) and lift any recovery
	// park. lastRecv survives — a replacement replays the dead incarnation's
	// exact frame numbering, so the dedup horizon must not regress.
	if epoch > p.epoch {
		p.epoch = epoch
	}
	resurrected := p.recovering
	p.recovering = false
	if p.conn != nil {
		// A stale connection the dialer already replaced: retire it.
		p.conn.Close()
	}
	p.ackLocked(peerAck)
	p.next = 0
	p.conn = conn
	p.gen++
	gen := p.gen
	p.lastAlive = time.Now()
	reconnect := p.everConn
	p.everConn = true
	p.mu.Unlock()
	if resurrected {
		if rh, ok := t.handler.(mpi.RecoveryHandler); ok {
			rh.PeerRecovered(p.rank)
		}
	}
	if reconnect {
		t.ctr.reconnects.Add(1)
	}
	t.wg.Add(2)
	go func() {
		defer t.wg.Done()
		p.readLoop(conn, gen)
	}()
	go func() {
		defer t.wg.Done()
		p.writeLoop(conn, gen)
	}()
	p.firstOnce.Do(func() { close(p.firstConn) })
	p.cond.Broadcast()
	return true
}

// windowLocked returns the effective send window toward this peer: the
// smaller of the configured window and the peer's advertised credit.
// Requires p.mu held.
func (p *peer) windowLocked() int {
	w := p.t.cfg.SendWindow
	if p.advertised > 0 && int(p.advertised) < w {
		w = int(p.advertised)
	}
	return w
}

// ackLocked records a cumulative ack and drops the releasable outbox
// prefix: everything acked, except that with hot replacement enabled frames
// above the hold floor are retained as replay history for a rejoining
// replacement. Requires p.mu held.
func (p *peer) ackLocked(ack uint64) {
	if ack > p.acked {
		p.acked = ack
	}
	limit := p.acked
	if p.t.HotReplace() && p.holdFloor < limit {
		limit = p.holdFloor
	}
	p.dropLocked(limit)
}

// unackedLocked counts outbox frames above the flow-control horizon (the
// outbox is seq-contiguous, so this is arithmetic, not a scan). Requires
// p.mu held.
func (p *peer) unackedLocked() int {
	if len(p.out) == 0 {
		return 0
	}
	first := p.out[0].seq
	if p.acked < first {
		return len(p.out)
	}
	n := len(p.out) - int(p.acked-first+1)
	if n < 0 {
		n = 0
	}
	return n
}

// dropLocked discards outbox frames at or below limit, releasing their
// accounted words. Requires p.mu held.
func (p *peer) dropLocked(limit uint64) {
	drop := 0
	var freed int64
	for drop < len(p.out) && p.out[drop].seq <= limit {
		freed += int64(len(p.out[drop].words)) + frameOverheadWords
		drop++
	}
	if drop > 0 {
		p.out = append(p.out[:0:0], p.out[drop:]...)
		p.next -= drop
		if p.next < 0 {
			p.next = 0
		}
		p.t.acct().AddOutboxWords(-freed)
	}
}

// connLost retires connection incarnation gen after an IO error. Whoever
// notices first (reader, writer, heartbeat) wins; the dialer side then
// starts reconnecting.
func (p *peer) connLost(gen int, _ error) {
	t := p.t
	p.mu.Lock()
	if p.gen != gen {
		p.mu.Unlock() // a newer incarnation is already up
		return
	}
	conn := p.conn
	p.conn = nil
	p.gen++
	redial := p.dialer && !p.failed && !p.departed
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	p.cond.Broadcast()
	if redial && !t.isStopped() {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			p.connectLoop()
		}()
	}
}

// readLoop consumes frames for one connection incarnation. Every frame —
// data, heartbeat, bye — refreshes the peer's liveness clock. A CRC failure
// tears the connection down; the retransmission protocol then recovers the
// frame instead of ever delivering corrupt bits.
func (p *peer) readLoop(conn net.Conn, gen int) {
	t := p.t
	var scratch []byte
	for {
		f, err := readFrame(conn, &scratch)
		if err != nil {
			if err == errCRC {
				t.ctr.crcErrors.Add(1)
			}
			p.connLost(gen, err)
			return
		}
		if f.typ == ftData {
			// A chaos SlowConsumer throttles here, ahead of the ack horizon:
			// the delayed consumption delays the cumulative ack too, exactly
			// like a receiver that cannot keep up.
			if d := t.fs.recvDelay(); d > 0 {
				time.Sleep(d)
			}
		}
		p.mu.Lock()
		if p.gen != gen {
			p.mu.Unlock() // stale incarnation still draining its buffer
			return
		}
		if f.typ == ftHeartbeat && frameEpoch(f) < p.epoch {
			// A beacon from a dead incarnation that raced the epoch
			// admission: its ack and credit are stale, and it must not
			// refresh liveness.
			p.mu.Unlock()
			continue
		}
		p.lastAlive = time.Now()
		deliver := false
		switch f.typ {
		case ftData:
			if f.seq <= p.lastRecv {
				t.ctr.dupsDropped.Add(1) // retransmit of something delivered
			} else {
				p.lastRecv = f.seq
				deliver = true
			}
		case ftHeartbeat:
			p.ackLocked(f.seq)
			p.advertised = f.tag
		case ftBye:
			p.departed = true
		}
		p.mu.Unlock()
		t.ctr.framesRecv.Add(1)
		if deliver {
			t.peerRecv[f.src].Add(int64(len(f.words)) * mpi.WordBytes)
			t.handler.Deliver(int(f.src), int(f.tag), f.words)
		}
		if f.typ == ftBye || f.typ == ftHeartbeat {
			// Acks and credit updates wake senders blocked on the window.
			p.cond.Broadcast()
		}
	}
}

// writeLoop drains the outbox onto one connection incarnation, in seq
// order, starting from the rewound cursor (which makes reconnects
// retransmit the unacknowledged tail).
func (p *peer) writeLoop(conn net.Conn, gen int) {
	t := p.t
	for {
		p.mu.Lock()
		for p.gen == gen && p.next >= len(p.out) {
			if t.isStopped() {
				// Close sets stopped before its flush wait: drain what is
				// queued, exit only once idle (teardown retires gen).
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		if p.gen != gen {
			p.mu.Unlock()
			return
		}
		f := p.out[p.next]
		p.next++
		retransmit := f.seq <= p.maxWritten
		if !retransmit {
			p.maxWritten = f.seq
		}
		p.mu.Unlock()
		if retransmit {
			t.ctr.retransmits.Add(1)
		}
		if err := p.write(conn, f); err != nil {
			p.connLost(gen, err)
			return
		}
	}
}

// write puts one frame on the wire, applying the fault plan's verdict for
// it (drop, delay, bit flip, sever-after). It is the single funnel every
// outgoing frame passes through.
func (p *peer) write(conn net.Conn, f frame) error {
	t := p.t
	buf := encodeFrame(nil, f)
	v := t.fs.onWrite(p.rank, f.typ == ftData, len(buf))
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.drop {
		return nil // the network ate it; heartbeat loss will tell
	}
	if v.corruptAt >= 4 && v.corruptAt < len(buf) {
		buf[v.corruptAt] ^= 0x10 // bit flip inside the CRC-covered region
	}
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	_, err := conn.Write(buf)
	if err == nil {
		t.ctr.framesSent.Add(1)
	}
	if v.resetAfter {
		conn.Close() // sever: both ends see the loss and reconnect
	}
	return err
}
