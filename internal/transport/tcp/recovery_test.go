package tcp

import (
	"errors"
	"net"
	"testing"
	"time"

	"paralagg/internal/mpi"
)

// Hot-replacement protocol tests: epoch'd membership admission, the
// recovering park between failure detection and replacement arrival, and
// the seeded-mark replay that splices a replacement into the survivors'
// retained send histories.

// recCapture extends capture with the RecoveryHandler callbacks.
type recCapture struct {
	*capture
	recovering chan capturedFail
	recovered  chan int
}

func newRecCapture() *recCapture {
	return &recCapture{
		capture:    newCapture(),
		recovering: make(chan capturedFail, 16),
		recovered:  make(chan int, 16),
	}
}

func (c *recCapture) PeerRecovering(rank int, cause error) {
	c.recovering <- capturedFail{rank: rank, cause: cause}
}

func (c *recCapture) PeerRecovered(rank int) { c.recovered <- rank }

// replaceConfig is fastConfig with the replacement protocol enabled.
func replaceConfig() Config {
	cfg := fastConfig()
	cfg.PeerTimeout = 120 * time.Millisecond
	cfg.ReplaceTimeout = 10 * time.Second
	return cfg
}

func TestNewRejectsBadSeedVectorLengths(t *testing.T) {
	peers := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}
	if _, err := New(Config{Rank: 0, Peers: peers, InitialSendSeqs: []uint64{1}}); err == nil {
		t.Error("New accepted a send-seq vector shorter than the world")
	}
	if _, err := New(Config{Rank: 0, Peers: peers, InitialRecvSeqs: make([]uint64, 5)}); err == nil {
		t.Error("New accepted a recv-seq vector longer than the world")
	}
}

// TestReplacementResurrectsRecoveringPeer is the protocol's happy path: a
// killed rank turns recovering (not failed), senders park, and a
// higher-epoch incarnation on the same address lifts the park and carries
// traffic again.
func TestReplacementResurrectsRecoveringPeer(t *testing.T) {
	trs := newMesh(t, 2, func(_ int, cfg *Config) { *cfg = withAddrs(replaceConfig(), *cfg) })
	caps := []*recCapture{newRecCapture(), newRecCapture()}
	startRecMesh(t, trs, caps)
	defer trs[0].Close()

	addr1 := trs[1].Addr()
	trs[1].Kill()

	select {
	case f := <-caps[0].recovering:
		if f.rank != 1 {
			t.Fatalf("rank %d recovering, want 1", f.rank)
		}
	case f := <-caps[0].fails:
		t.Fatalf("peer went straight to failed (%v), want recovering first", f.cause)
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerRecovering within 5s of the kill")
	}

	// A parked sender must hold, not error: queue a frame toward the dead
	// rank before the replacement exists.
	sendErr := make(chan error, 1)
	go func() { sendErr <- trs[0].Send(1, 7, []mpi.Word{42}) }()

	ln := rebind(t, addr1)
	cfg := replaceConfig()
	cfg.Rank = 1
	cfg.Peers = []string{trs[0].Addr(), addr1}
	cfg.Listener = ln
	cfg.Epoch = 1
	repl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replCap := newRecCapture()
	if err := repl.Start(replCap); err != nil {
		t.Fatalf("replacement start: %v", err)
	}
	defer repl.Close()

	select {
	case r := <-caps[0].recovered:
		if r != 1 {
			t.Fatalf("rank %d recovered, want 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerRecovered within 5s of the replacement's start")
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send queued during the park failed: %v", err)
	}
	got := recvN(t, replCap.capture, 1, 5*time.Second)
	if got[0].tag != 7 || got[0].words[0] != 42 {
		t.Fatalf("replacement received tag=%d words=%v, want tag=7 words=[42]", got[0].tag, got[0].words)
	}

	// And the reverse direction: the replacement's fresh frames reach the
	// survivor (its receive horizon for rank 1 never advanced).
	if err := repl.Send(0, 8, []mpi.Word{43}); err != nil {
		t.Fatal(err)
	}
	back := recvN(t, caps[0].capture, 1, 5*time.Second)
	if back[0].src != 1 || back[0].tag != 8 {
		t.Fatalf("survivor received src=%d tag=%d, want src=1 tag=8", back[0].src, back[0].tag)
	}
}

// TestStaleEpochHelloRejected: once a higher-epoch replacement is admitted,
// hellos from the dead incarnation's epoch must be refused — its Start
// cannot establish a mesh — while the live pair is undisturbed.
func TestStaleEpochHelloRejected(t *testing.T) {
	trs := newMesh(t, 2, func(_ int, cfg *Config) { *cfg = withAddrs(replaceConfig(), *cfg) })
	caps := []*recCapture{newRecCapture(), newRecCapture()}
	startRecMesh(t, trs, caps)
	defer trs[0].Close()

	addr1 := trs[1].Addr()
	trs[1].Kill()
	select {
	case <-caps[0].recovering:
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerRecovering within 5s of the kill")
	}

	ln := rebind(t, addr1)
	cfg := replaceConfig()
	cfg.Rank = 1
	cfg.Peers = []string{trs[0].Addr(), addr1}
	cfg.Listener = ln
	cfg.Epoch = 2
	repl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replCap := newRecCapture()
	if err := repl.Start(replCap); err != nil {
		t.Fatalf("replacement start: %v", err)
	}
	defer repl.Close()
	select {
	case <-caps[0].recovered:
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerRecovered within 5s of the replacement's start")
	}

	// The zombie: the dead incarnation's epoch, dialing from a throwaway
	// address (its own listen port is occupied by the replacement, exactly
	// as in a real respawn race). The survivor must refuse its hello.
	zln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	zcfg := replaceConfig()
	zcfg.Rank = 1
	zcfg.Peers = []string{trs[0].Addr(), zln.Addr().String()}
	zcfg.Listener = zln
	zcfg.Epoch = 1
	zcfg.ConnectTimeout = 400 * time.Millisecond
	zombie, err := New(zcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()
	if err := zombie.Start(newRecCapture()); !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("stale-epoch start: %v, want ErrPeerUnreachable", err)
	}

	// The admitted pair still carries traffic.
	if err := trs[0].Send(1, 9, []mpi.Word{1}); err != nil {
		t.Fatal(err)
	}
	recvN(t, replCap.capture, 1, 5*time.Second)
}

// TestSeededMarksSpliceReplayExactly: the survivor's retained history is
// replayed on attach, the replacement's seeded receive horizon drops the
// already-consumed prefix, and only the post-mark tail is delivered.
func TestSeededMarksSpliceReplayExactly(t *testing.T) {
	trs := newMesh(t, 2, func(_ int, cfg *Config) { *cfg = withAddrs(replaceConfig(), *cfg) })
	caps := []*recCapture{newRecCapture(), newRecCapture()}
	startRecMesh(t, trs, caps)
	defer trs[0].Close()

	// Pre-mark traffic: frames 1..5, then the checkpoint rendezvous's mark.
	for i := 1; i <= 5; i++ {
		if err := trs[0].Send(1, i, []mpi.Word{mpi.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, caps[1].capture, 5, 5*time.Second)
	_, recvMarks := trs[1].WireMarks()
	if recvMarks[0] != 5 {
		t.Fatalf("recv mark %d after 5 frames, want 5", recvMarks[0])
	}
	sendMarks, _ := trs[1].WireMarks()
	trs[0].MarkCheckpoint()
	trs[1].MarkCheckpoint()

	// Post-mark traffic the replacement must be replayed: frames 6..10.
	for i := 6; i <= 10; i++ {
		if err := trs[0].Send(1, i, []mpi.Word{mpi.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, caps[1].capture, 5, 5*time.Second)

	addr1 := trs[1].Addr()
	trs[1].Kill()
	select {
	case <-caps[0].recovering:
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerRecovering within 5s of the kill")
	}

	ln := rebind(t, addr1)
	cfg := replaceConfig()
	cfg.Rank = 1
	cfg.Peers = []string{trs[0].Addr(), addr1}
	cfg.Listener = ln
	cfg.Epoch = 1
	cfg.InitialSendSeqs = sendMarks
	cfg.InitialRecvSeqs = recvMarks
	repl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replCap := newRecCapture()
	if err := repl.Start(replCap); err != nil {
		t.Fatalf("replacement start: %v", err)
	}
	defer repl.Close()

	// Exactly the post-mark tail arrives, in order; the pre-mark prefix is
	// deduplicated below the seeded horizon.
	tail := recvN(t, replCap.capture, 5, 5*time.Second)
	for i, m := range tail {
		if want := 6 + i; m.tag != want || m.words[0] != mpi.Word(want) {
			t.Fatalf("replayed frame %d: tag=%d words=%v, want tag=%d", i, m.tag, m.words, want)
		}
	}
	if dups := repl.Net().DupsDropped; dups != 5 {
		t.Errorf("replacement dropped %d duplicate frames, want 5 (the pre-mark prefix)", dups)
	}
	select {
	case m := <-replCap.msgs:
		t.Fatalf("unexpected extra frame after the tail: tag=%d words=%v", m.tag, m.words)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestMarkCheckpointHoldsOneAckedGeneration: frames acked before the newest
// mark must survive pruning for one more generation, so a replacement
// restoring the previous checkpoint can still be replayed its tail. Frames
// below the hold floor (two generations old) are released.
func TestMarkCheckpointHoldsOneAckedGeneration(t *testing.T) {
	trs := newMesh(t, 2, func(_ int, cfg *Config) { *cfg = withAddrs(replaceConfig(), *cfg) })
	caps := []*recCapture{newRecCapture(), newRecCapture()}
	startRecMesh(t, trs, caps)
	defer trs[0].Close()
	defer trs[1].Close()

	p := trs[0].peers[1]
	waitAcked := func(n uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			p.mu.Lock()
			acked := p.acked
			p.mu.Unlock()
			if acked >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer acked %d of %d frames within 5s", acked, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Generation 1: frames 1..3, acked, marked. The hold floor is still 0,
	// so everything is retained despite the acks.
	for i := 1; i <= 3; i++ {
		if err := trs[0].Send(1, i, []mpi.Word{mpi.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, caps[1].capture, 3, 5*time.Second)
	waitAcked(3)
	trs[0].MarkCheckpoint()
	p.mu.Lock()
	retained := len(p.out)
	p.mu.Unlock()
	if retained != 3 {
		t.Fatalf("outbox retains %d frames after the first mark, want 3 (acked history held back)", retained)
	}

	// Generation 2: frames 4..6, acked, marked. The hold floor advances to
	// the first mark (seq 3): generation 1 is releasable, generation 2 held.
	for i := 4; i <= 6; i++ {
		if err := trs[0].Send(1, i, []mpi.Word{mpi.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, caps[1].capture, 3, 5*time.Second)
	waitAcked(6)
	trs[0].MarkCheckpoint()
	p.mu.Lock()
	retained = len(p.out)
	var first uint64
	if retained > 0 {
		first = p.out[0].seq
	}
	p.mu.Unlock()
	if retained != 3 || first != 4 {
		t.Fatalf("outbox retains %d frames starting at seq %d after the second mark, want 3 starting at 4", retained, first)
	}
}

// withAddrs grafts cfg's identity fields (rank, peers, listener) onto a
// fresh template — newMesh fills identity in, templates carry tuning.
func withAddrs(tmpl, id Config) Config {
	tmpl.Rank = id.Rank
	tmpl.Peers = id.Peers
	tmpl.Listener = id.Listener
	return tmpl
}

// rebind re-listens on a fixed address the dead incarnation just released,
// retrying briefly while the OS frees it.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startRecMesh mirrors startMesh for RecoveryHandler captures.
func startRecMesh(t *testing.T, trs []*Transport, caps []*recCapture) {
	t.Helper()
	hs := make([]mpi.Handler, len(caps))
	for i := range caps {
		hs[i] = caps[i]
	}
	startMesh(t, trs, hs)
}
