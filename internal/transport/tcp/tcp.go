package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"paralagg/internal/mpi"
	"paralagg/internal/resource"
)

// DefaultSendWindow bounds the per-peer outbox of unacknowledged frames
// when Config.SendWindow is unset. Acks ride heartbeats, so a sender can
// have at most a window of frames buffered per heartbeat interval — bounded
// memory however slow (or silent) the receiver is.
const DefaultSendWindow = 1024

// frameOverheadWords approximates the per-frame bookkeeping beyond payload
// words (header fields, slice headers) for outbox accounting.
const frameOverheadWords = 8

// Config describes one rank's endpoint of the mesh.
type Config struct {
	// Rank is this process's rank; Peers[Rank] is its own listen address.
	Rank int
	// Peers lists every rank's address (host:port), indexed by rank.
	Peers []string
	// Listener optionally injects a pre-bound listener for Peers[Rank]
	// (tests bind :0 first to avoid port races). New listens itself when nil.
	Listener net.Listener

	// HeartbeatEvery is the liveness beacon interval (default 100ms).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many silent intervals declare a peer dead
	// (default 5).
	HeartbeatMisses int
	// DialBackoff is the first retry delay after a failed connection attempt
	// (default 5ms), doubling up to DialBackoffMax (default 500ms) with
	// deterministic ±50% jitter seeded by Seed.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// DialAttemptTimeout bounds one TCP connect (default 1s).
	DialAttemptTimeout time.Duration
	// ConnectTimeout bounds full mesh establishment in Start (default 10s).
	ConnectTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s); an expired
	// write severs the connection and retransmission takes over.
	WriteTimeout time.Duration
	// FlushTimeout bounds how long a graceful Close waits for queued frames
	// to drain (default 5s).
	FlushTimeout time.Duration
	// SendWindow bounds the per-peer outbox of unacknowledged frames
	// (default DefaultSendWindow). A Send finding the window exhausted
	// blocks until acks free credit — credit-based flow control — instead
	// of buffering without limit. The window also caps what this endpoint
	// advertises to its peers in heartbeats; a peer under memory pressure
	// or chaos throttling advertises less and senders honor the smaller of
	// the two.
	SendWindow int
	// SendStallTimeout bounds how long one Send may block on an exhausted
	// window (default 10s). Past it the peer is treated as unreachable and
	// the send fails structurally — backpressure must never become a
	// silent wedge.
	SendStallTimeout time.Duration
	// PeerTimeout is the failure-detector deadline: a peer silent (no
	// frames of any kind) for longer is declared dead. It defaults to
	// HeartbeatEvery × HeartbeatMisses and must be at least 2×HeartbeatEvery
	// to survive ordinary jitter.
	PeerTimeout time.Duration
	// Epoch is this endpoint's membership incarnation. The first process to
	// host a rank runs epoch 0; a hot replacement for a dead rank rejoins
	// with a strictly higher epoch. Epochs ride hello and heartbeat frames:
	// a hello from a lower epoch than the one already admitted is rejected
	// (stale traffic from a dead incarnation), a higher epoch resurrects the
	// peer instead of leaving it permanently failed.
	Epoch uint64
	// ReplaceTimeout > 0 enables hot rank replacement: a peer the failure
	// detector would declare dead is instead marked recovering — senders
	// park instead of failing, send-side history is retained back to the
	// previous checkpoint mark (see MarkCheckpoint) so a rejoining
	// replacement can be replayed the post-checkpoint tail — and only if no
	// higher-epoch incarnation is admitted within ReplaceTimeout does the
	// peer fail for real (the full-restart fallback). Every member of a gang
	// must agree on whether replacement is enabled.
	ReplaceTimeout time.Duration
	// InitialSendSeqs/InitialRecvSeqs seed the per-peer data-frame counters
	// of a rejoining endpoint from its checkpoint's wire marks (indexed by
	// rank; own entry ignored): sends resume the dead incarnation's exact
	// numbering so survivors dedup the replayed prefix, and the receive
	// horizon is rewound to what the restored state actually consumed so
	// survivors' history replay is accepted. len must be 0 or Size.
	InitialSendSeqs []uint64
	InitialRecvSeqs []uint64
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// Faults injects deterministic wire faults (chaos testing). nil = clean.
	Faults *NetFaultPlan
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.HeartbeatEvery, 100*time.Millisecond)
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 5
	}
	def(&c.DialBackoff, 5*time.Millisecond)
	def(&c.DialBackoffMax, 500*time.Millisecond)
	def(&c.DialAttemptTimeout, time.Second)
	def(&c.ConnectTimeout, 10*time.Second)
	def(&c.WriteTimeout, 10*time.Second)
	def(&c.FlushTimeout, 5*time.Second)
	if c.SendWindow <= 0 {
		c.SendWindow = DefaultSendWindow
	}
	def(&c.SendStallTimeout, 10*time.Second)
	def(&c.PeerTimeout, c.HeartbeatEvery*time.Duration(c.HeartbeatMisses))
	return c
}

// netCounters are the transport's robustness meters (lock-free, monotonic
// totals except outboxPeak, a high-water gauge).
type netCounters struct {
	framesSent, framesRecv     atomic.Int64
	dialRetries, reconnects    atomic.Int64
	retransmits, dupsDropped   atomic.Int64
	heartbeatMisses, crcErrors atomic.Int64
	throttleStalls             atomic.Int64
	outboxPeak                 atomic.Int64
}

// observeMax lifts g to at least v (lock-free running maximum).
func observeMax(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Transport is one rank's endpoint of a TCP-connected world. It implements
// mpi.Transport; build one per rank per run (like worlds, transports are
// single-shot).
type Transport struct {
	cfg     Config
	self    int
	size    int
	ln      net.Listener
	fs      *faultState
	ctr     netCounters
	handler mpi.Handler

	// peerSent/peerRecv count payload bytes per peer rank (self stays
	// zero) — the per-peer view NetStats and /metrics expose and the
	// similarity schedule consumes.
	peerSent []atomic.Int64
	peerRecv []atomic.Int64

	peers []*peer // nil at self index

	// acctp optionally charges the outbox to a memory accountant and lets
	// local pressure shrink the advertised receive window. Set before Start.
	acctp atomic.Pointer[resource.Accountant]

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New builds (and binds) a transport endpoint. Connections are established
// by Start.
func New(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	size := len(cfg.Peers)
	if size < 1 {
		return nil, fmt.Errorf("tcp: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcp: rank %d out of range [0, %d)", cfg.Rank, size)
	}
	if cfg.PeerTimeout < 2*cfg.HeartbeatEvery {
		return nil, fmt.Errorf("tcp: peer timeout %v below 2× heartbeat interval %v", cfg.PeerTimeout, cfg.HeartbeatEvery)
	}
	if n := len(cfg.InitialSendSeqs); n != 0 && n != size {
		return nil, fmt.Errorf("tcp: %d initial send seqs for a %d-rank world", n, size)
	}
	if n := len(cfg.InitialRecvSeqs); n != 0 && n != size {
		return nil, fmt.Errorf("tcp: %d initial recv seqs for a %d-rank world", n, size)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: rank %d listen %s: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
		}
	}
	t := &Transport{
		cfg:      cfg,
		self:     cfg.Rank,
		size:     size,
		ln:       ln,
		fs:       newFaultState(cfg.Faults, cfg.Rank),
		peers:    make([]*peer, size),
		peerSent: make([]atomic.Int64, size),
		peerRecv: make([]atomic.Int64, size),
		stop:     make(chan struct{}),
	}
	for r := 0; r < size; r++ {
		if r != t.self {
			t.peers[r] = newPeer(t, r)
		}
	}
	return t, nil
}

// Self implements mpi.Transport.
func (t *Transport) Self() int { return t.self }

// Size implements mpi.Transport.
func (t *Transport) Size() int { return t.size }

// Addr returns the bound listen address (useful with :0 listeners).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Net implements mpi.Transport.
func (t *Transport) Net() mpi.NetStats {
	return mpi.NetStats{
		FramesSent:       t.ctr.framesSent.Load(),
		FramesRecv:       t.ctr.framesRecv.Load(),
		DialRetries:      t.ctr.dialRetries.Load(),
		Reconnects:       t.ctr.reconnects.Load(),
		Retransmits:      t.ctr.retransmits.Load(),
		DupsDropped:      t.ctr.dupsDropped.Load(),
		HeartbeatMisses:  t.ctr.heartbeatMisses.Load(),
		CRCErrors:        t.ctr.crcErrors.Load(),
		ThrottleStalls:   t.ctr.throttleStalls.Load(),
		OutboxPeakFrames: t.ctr.outboxPeak.Load(),
		PeerBytesSent:    loadPeerBytes(t.peerSent),
		PeerBytesRecv:    loadPeerBytes(t.peerRecv),
	}
}

// loadPeerBytes snapshots a per-peer atomic counter row.
func loadPeerBytes(ctrs []atomic.Int64) []int64 {
	out := make([]int64, len(ctrs))
	for i := range ctrs {
		out[i] = ctrs[i].Load()
	}
	return out
}

// SetAccountant attaches a memory accountant: the outbox charges its
// buffered words to it, and local pressure shrinks the receive window this
// endpoint advertises. Call before Start.
func (t *Transport) SetAccountant(a *resource.Accountant) { t.acctp.Store(a) }

func (t *Transport) acct() *resource.Accountant { return t.acctp.Load() }

// HotReplace implements mpi.WireRecovery: whether this endpoint runs the
// hot-replacement membership protocol (Config.ReplaceTimeout > 0).
func (t *Transport) HotReplace() bool { return t.cfg.ReplaceTimeout > 0 }

// WireMarks implements mpi.WireRecovery: a point-in-time snapshot of the
// per-peer data-frame counters — how many frames this endpoint has sent to
// and received from each rank (own entry zero). Captured inside the
// checkpoint rendezvous, the vectors are globally consistent and name the
// exact wire position a replacement must resume from.
func (t *Transport) WireMarks() (send, recv []uint64) {
	send = make([]uint64, t.size)
	recv = make([]uint64, t.size)
	for r, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		send[r], recv[r] = p.seq, p.lastRecv
		p.mu.Unlock()
	}
	return send, recv
}

// MarkCheckpoint implements mpi.WireRecovery: record the current send
// position toward every peer as this checkpoint generation's history mark
// and advance the hold-back floor to the previous generation's mark. The
// one-generation lag means a replacement whose newest checkpoint file was
// torn can still restore the generation before it and be replayed the full
// tail — history retention is bounded by one checkpoint interval per
// generation, i.e. by CheckpointEvery iterations of traffic.
func (t *Transport) MarkCheckpoint() {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.holdFloor = p.mark
		p.mark = p.seq
		limit := p.acked
		if p.holdFloor < limit {
			limit = p.holdFloor
		}
		p.dropLocked(limit)
		p.mu.Unlock()
	}
}

// advertWindow computes the receive window this endpoint piggybacks on its
// heartbeats: the configured window, narrowed by a chaos SlowConsumer spec
// and by local memory pressure — a pressured rank rate-limits its senders
// instead of letting their frames pile into its mailboxes.
func (t *Transport) advertWindow() int64 {
	w := t.cfg.SendWindow
	if sc := t.fs.slowConsumerWindow(); sc > 0 && sc < w {
		w = sc
	}
	switch t.acct().Level() {
	case resource.LevelSoft:
		w = max(8, w/4)
	case resource.LevelHard:
		w = max(4, w/16)
	}
	return int64(w)
}

func (t *Transport) isStopped() bool { return t.stopped.Load() }

// Start implements mpi.Transport: it spins up the accept loop, dials every
// lower-ranked peer (higher ranks dial, lower ranks accept — one duplex
// connection per pair), and blocks until the full mesh is up or
// ConnectTimeout expires. Heartbeats and the failure monitor start once the
// mesh is established.
func (t *Transport) Start(h mpi.Handler) error {
	if h == nil {
		return errors.New("tcp: Start needs a handler")
	}
	t.handler = h
	t.wg.Add(1)
	go t.acceptLoop()
	for _, p := range t.peers {
		if p != nil && p.dialer {
			t.wg.Add(1)
			go func(p *peer) {
				defer t.wg.Done()
				p.connectLoop()
			}(p)
		}
	}
	deadline := time.NewTimer(t.cfg.ConnectTimeout)
	defer deadline.Stop()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.firstConn:
		case <-t.stop:
			return errors.New("tcp: transport closed during mesh establishment")
		case <-deadline.C:
			return fmt.Errorf("tcp: rank %d: peer %d unreachable after %v: %w",
				t.self, p.rank, t.cfg.ConnectTimeout, mpi.ErrPeerUnreachable)
		}
	}
	t.wg.Add(2)
	go t.heartbeatLoop()
	go t.monitorLoop()
	return nil
}

// Send implements mpi.Transport: the frame is queued in the destination's
// outbox (retained until acknowledged, so reconnects can retransmit it)
// and written asynchronously. The outbox is bounded by the send window —
// the smaller of our configured window and the peer's advertised credit —
// so a Send finding it exhausted blocks until acks free space, bounded by
// SendStallTimeout (credit-based flow control; a never-acking peer cannot
// grow sender memory past the window). Sends to a cleanly departed peer
// are dropped; sends to a failed or stalled-past-deadline peer error.
func (t *Transport) Send(dest, tag int, words []mpi.Word) error {
	if dest < 0 || dest >= t.size || dest == t.self {
		return fmt.Errorf("tcp: send to invalid rank %d", dest)
	}
	if t.isStopped() {
		return errors.New("tcp: transport closed")
	}
	p := t.peers[dest]
	cp := make([]mpi.Word, len(words))
	copy(cp, words)
	var wake *time.Timer // allocated only on the stall path
	var stallBy time.Time
	p.mu.Lock()
	for {
		if p.failed {
			p.mu.Unlock()
			stopTimer(wake)
			return fmt.Errorf("tcp: rank %d is dead: %w", dest, mpi.ErrPeerUnreachable)
		}
		if p.departed {
			// The peer finished its run and said goodbye; by the collective
			// ordering discipline it cannot need anything more from us.
			p.mu.Unlock()
			stopTimer(wake)
			return nil
		}
		if t.isStopped() {
			p.mu.Unlock()
			stopTimer(wake)
			return errors.New("tcp: transport closed")
		}
		// Flow control is over unacknowledged frames, not outbox length:
		// with hot replacement enabled the outbox also retains acked history
		// back to the hold floor, and replay inventory must not consume
		// window credit.
		if p.unackedLocked() < p.windowLocked() {
			break
		}
		if wake == nil {
			// First blocked pass: count the stall and arm a periodic wake so
			// the deadline check runs even if no ack ever arrives.
			t.ctr.throttleStalls.Add(1)
			stallBy = time.Now().Add(t.cfg.SendStallTimeout)
			wake = time.AfterFunc(t.cfg.HeartbeatEvery, p.cond.Broadcast)
		} else {
			if p.recovering {
				// The peer is awaiting a hot replacement: parking here is the
				// recovery barrier, bounded by ReplaceTimeout (expiry marks
				// the peer failed, which exits this loop with an error).
				stallBy = time.Now().Add(t.cfg.SendStallTimeout)
			}
			if time.Now().After(stallBy) {
				n := p.unackedLocked()
				p.mu.Unlock()
				wake.Stop()
				return fmt.Errorf("tcp: send window to rank %d stalled for %v (%d unacked frames): %w",
					dest, t.cfg.SendStallTimeout, n, mpi.ErrPeerUnreachable)
			}
			wake.Reset(t.cfg.HeartbeatEvery)
		}
		p.cond.Wait()
	}
	p.seq++
	p.out = append(p.out, frame{typ: ftData, src: uint32(t.self), tag: int64(tag), seq: p.seq, words: cp})
	t.peerSent[dest].Add(int64(len(cp)) * mpi.WordBytes)
	observeMax(&t.ctr.outboxPeak, int64(p.unackedLocked()))
	p.mu.Unlock()
	stopTimer(wake)
	t.acct().AddOutboxWords(int64(len(cp)) + frameOverheadWords)
	p.cond.Broadcast()
	return nil
}

func stopTimer(tm *time.Timer) {
	if tm != nil {
		tm.Stop()
	}
}

// acceptLoop admits incoming connections and routes them to their peer
// after the hello handshake.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func(conn net.Conn) {
			defer t.wg.Done()
			t.serveConn(conn)
		}(conn)
	}
}

// serveConn performs the acceptor half of the handshake: read the dialer's
// hello (rank + its receive position), answer with ours, and attach.
func (t *Transport) serveConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(t.cfg.ConnectTimeout))
	var scratch []byte
	hello, err := readFrame(conn, &scratch)
	if err != nil || hello.typ != ftHello || hello.tag != helloMagic ||
		int(hello.src) >= t.size || int(hello.src) == t.self {
		conn.Close()
		return
	}
	p := t.peers[hello.src]
	if t.fs.partitioned(p.rank) {
		conn.Close() // a partitioned peer cannot complete a handshake
		return
	}
	epoch := frameEpoch(hello)
	p.mu.Lock()
	stale := epoch < p.epoch
	ack := p.lastRecv
	p.mu.Unlock()
	if stale {
		conn.Close() // hello from a dead incarnation: reject its traffic
		return
	}
	reply := encodeFrame(nil, frame{typ: ftHello, src: uint32(t.self), tag: helloMagic, seq: ack,
		words: []mpi.Word{t.cfg.Epoch}})
	if _, err := conn.Write(reply); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	p.attach(conn, hello.seq, epoch)
}

// frameEpoch extracts the membership epoch a hello or heartbeat carries in
// its first payload word (0 for frames from pre-epoch endpoints).
func frameEpoch(f frame) uint64 {
	if len(f.words) > 0 {
		return f.words[0]
	}
	return 0
}

// heartbeatLoop beacons liveness (and the cumulative ack) to every
// connected peer.
func (t *Transport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			conn, gen, ack := p.conn, p.gen, p.lastRecv
			skip := p.departed || p.failed
			p.mu.Unlock()
			if conn == nil || skip {
				continue
			}
			// The heartbeat carries the cumulative ack in seq, the
			// advertised receive window in tag (0 would mean "no credit
			// protocol" to old peers; advertWindow never returns 0), and the
			// membership epoch as its payload word so stale-epoch beacons
			// from a dead incarnation are rejectable.
			hb := frame{typ: ftHeartbeat, src: uint32(t.self), tag: t.advertWindow(), seq: ack,
				words: []mpi.Word{t.cfg.Epoch}}
			if err := p.write(conn, hb); err != nil {
				p.connLost(gen, err)
			}
		}
	}
}

// monitorLoop is the failure detector: a peer silent (no frames of any
// kind) for longer than PeerTimeout is declared dead, once, to the handler
// — the same structured failure path the in-process watchdog feeds. With
// hot replacement enabled (ReplaceTimeout > 0) the declaration is softened
// to a recovering state first: senders park, history is held, and only a
// replacement that fails to appear within ReplaceTimeout turns the peer
// into a real PeerFailed (the full-restart fallback).
func (t *Transport) monitorLoop() {
	defer t.wg.Done()
	window := t.cfg.PeerTimeout
	replace := t.HotReplace()
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			silent := now.Sub(p.lastAlive)
			live := !p.departed && !p.failed
			miss := live && !p.recovering && silent > t.cfg.HeartbeatEvery
			var dead, recovering bool
			if live && silent > window {
				switch {
				case replace && !p.recovering:
					p.recovering = true
					p.recoverSince = now
					recovering = true
				case !replace:
					dead = true
				}
			}
			if live && p.recovering && now.Sub(p.recoverSince) > t.cfg.ReplaceTimeout {
				p.recovering = false
				dead = true
			}
			if dead {
				p.failed = true
			}
			conn := p.conn
			p.mu.Unlock()
			if miss {
				t.ctr.heartbeatMisses.Add(1)
			}
			if recovering {
				if conn != nil {
					conn.Close()
				}
				p.cond.Broadcast()
				if rh, ok := t.handler.(mpi.RecoveryHandler); ok {
					rh.PeerRecovering(p.rank, fmt.Errorf(
						"tcp: rank %d silent for %v (> %v), awaiting replacement: %w",
						p.rank, silent.Round(time.Millisecond), window, mpi.ErrPeerUnreachable))
				}
			}
			if dead {
				if conn != nil {
					conn.Close()
				}
				p.cond.Broadcast()
				t.handler.PeerFailed(p.rank, fmt.Errorf(
					"tcp: rank %d silent for %v (> %v): %w",
					p.rank, silent.Round(time.Millisecond), window, mpi.ErrPeerUnreachable))
			}
		}
	}
}

// Close implements mpi.Transport: drain queued frames (bounded by
// FlushTimeout), tell every peer this rank departed cleanly, then tear
// everything down. Use Kill to model a crash instead.
func (t *Transport) Close() error {
	if !t.stopped.CompareAndSwap(false, true) {
		return nil
	}
	// Drain: wait until every live peer's outbox is fully written.
	deadline := time.Now().Add(t.cfg.FlushTimeout)
	for time.Now().Before(deadline) {
		drained := true
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if !p.departed && !p.failed && p.next < len(p.out) {
				drained = false
			}
			p.mu.Unlock()
		}
		if drained {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Say goodbye so closed connections are not mistaken for a crash.
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		conn, ack := p.conn, p.lastRecv
		p.mu.Unlock()
		if conn != nil {
			p.write(conn, frame{typ: ftBye, src: uint32(t.self), seq: ack})
		}
	}
	t.teardown()
	return nil
}

// Kill tears the endpoint down abruptly — no flush, no goodbye — exactly
// what a crashed process looks like from the outside: peers lose the
// connection, fail to reconnect, and declare this rank dead by heartbeat.
func (t *Transport) Kill() {
	if !t.stopped.CompareAndSwap(false, true) {
		return
	}
	t.teardown()
}

func (t *Transport) teardown() {
	close(t.stop)
	t.ln.Close()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		conn := p.conn
		p.conn = nil
		p.gen++
		p.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		p.cond.Broadcast()
	}
	t.wg.Wait()
}
