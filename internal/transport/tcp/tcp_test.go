package tcp

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"paralagg/internal/mpi"
)

// --- frame layer ---

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{typ: ftHello, src: 3, tag: helloMagic, seq: 17},
		{typ: ftData, src: 0, tag: -42, seq: 1, words: []mpi.Word{0, 1, ^mpi.Word(0), 0xdeadbeef}},
		{typ: ftHeartbeat, src: 7, seq: 999},
		{typ: ftBye, src: 1},
	}
	var wire []byte
	for _, f := range frames {
		wire = encodeFrame(wire, f)
	}
	r := bytes.NewReader(wire)
	var scratch []byte
	for i, want := range frames {
		got, err := readFrame(r, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.typ != want.typ || got.src != want.src || got.tag != want.tag || got.seq != want.seq {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
		if len(got.words) != len(want.words) {
			t.Fatalf("frame %d: %d words, want %d", i, len(got.words), len(want.words))
		}
		for j := range want.words {
			if got.words[j] != want.words[j] {
				t.Errorf("frame %d word %d: got %#x, want %#x", i, j, got.words[j], want.words[j])
			}
		}
	}
}

func TestFrameCRCDetectsEveryBitFlip(t *testing.T) {
	wire := encodeFrame(nil, frame{typ: ftData, src: 2, tag: 5, seq: 9, words: []mpi.Word{1, 2, 3}})
	// Flip one bit anywhere past the length prefix: the CRC must catch it.
	for off := 4; off < len(wire); off++ {
		bad := append([]byte(nil), wire...)
		bad[off] ^= 1
		var scratch []byte
		if _, err := readFrame(bytes.NewReader(bad), &scratch); !errors.Is(err, errCRC) {
			t.Fatalf("flip at byte %d: err = %v, want CRC failure", off, err)
		}
	}
}

func TestFrameLengthOutOfRangeRejected(t *testing.T) {
	wire := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	var scratch []byte
	if _, err := readFrame(bytes.NewReader(wire), &scratch); err == nil || errors.Is(err, errCRC) {
		t.Fatalf("err = %v, want a length-range error before any allocation", err)
	}
}

// --- mesh helpers ---

// capture is a test Handler recording deliveries and failures on channels.
type capture struct {
	msgs  chan capturedMsg
	fails chan capturedFail
}

type capturedMsg struct {
	src, tag int
	words    []mpi.Word
}

type capturedFail struct {
	rank  int
	cause error
}

func newCapture() *capture {
	return &capture{msgs: make(chan capturedMsg, 1024), fails: make(chan capturedFail, 16)}
}

func (c *capture) Deliver(src, tag int, words []mpi.Word) {
	c.msgs <- capturedMsg{src: src, tag: tag, words: append([]mpi.Word(nil), words...)}
}

func (c *capture) PeerFailed(rank int, cause error) {
	c.fails <- capturedFail{rank: rank, cause: cause}
}

// fastConfig keeps failure-detection tests quick.
func fastConfig() Config {
	return Config{
		HeartbeatEvery:  20 * time.Millisecond,
		HeartbeatMisses: 4,
		ConnectTimeout:  5 * time.Second,
		Seed:            42,
	}
}

// newMesh binds n loopback listeners and builds one transport per rank.
// customize tweaks each rank's config (may be nil).
func newMesh(t *testing.T, n int, customize func(rank int, cfg *Config)) []*Transport {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*Transport, n)
	for i := range trs {
		cfg := fastConfig()
		cfg.Rank = i
		cfg.Peers = addrs
		cfg.Listener = lns[i]
		if customize != nil {
			customize(i, &cfg)
		}
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	return trs
}

// startMesh starts every transport concurrently (Start blocks on the full
// mesh) and fails the test if any endpoint cannot establish it.
func startMesh(t *testing.T, trs []*Transport, hs []mpi.Handler) {
	t.Helper()
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = trs[i].Start(hs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", i, err)
		}
	}
}

func handlers(caps []*capture) []mpi.Handler {
	hs := make([]mpi.Handler, len(caps))
	for i := range caps {
		hs[i] = caps[i]
	}
	return hs
}

func newCaptures(n int) []*capture {
	caps := make([]*capture, n)
	for i := range caps {
		caps[i] = newCapture()
	}
	return caps
}

func recvN(t *testing.T, c *capture, n int, within time.Duration) []capturedMsg {
	t.Helper()
	out := make([]capturedMsg, 0, n)
	deadline := time.After(within)
	for len(out) < n {
		select {
		case m := <-c.msgs:
			out = append(out, m)
		case f := <-c.fails:
			t.Fatalf("unexpected peer failure while receiving: rank %d: %v", f.rank, f.cause)
		case <-deadline:
			t.Fatalf("received %d of %d messages within %v", len(out), n, within)
		}
	}
	return out
}

// --- transport behaviour ---

func TestMeshDeliversAllPairs(t *testing.T) {
	const n = 3
	trs := newMesh(t, n, nil)
	caps := newCaptures(n)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if err := trs[src].Send(dst, src*10+dst, []mpi.Word{mpi.Word(src), mpi.Word(dst)}); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		got := recvN(t, caps[dst], n-1, 5*time.Second)
		seen := map[int]bool{}
		for _, m := range got {
			if m.tag != m.src*10+dst || len(m.words) != 2 || m.words[0] != mpi.Word(m.src) || m.words[1] != mpi.Word(dst) {
				t.Errorf("rank %d got mangled message %+v", dst, m)
			}
			seen[m.src] = true
		}
		if len(seen) != n-1 {
			t.Errorf("rank %d heard from %d peers, want %d", dst, len(seen), n-1)
		}
	}
}

func TestDialBackoffUntilListenerAppears(t *testing.T) {
	// Rank 1 starts dialing before rank 0 exists; it must retry with backoff
	// and succeed once rank 0 finally listens.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := ln0.Addr().String()
	ln0.Close() // rank 0 is "not up yet"
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{addr0, ln1.Addr().String()}

	cfg1 := fastConfig()
	cfg1.Rank, cfg1.Peers, cfg1.Listener = 1, addrs, ln1
	tr1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	caps := newCaptures(2)
	startErr := make(chan error, 1)
	go func() { startErr <- tr1.Start(caps[1]) }()

	time.Sleep(150 * time.Millisecond) // let several dial attempts fail

	lnRe, err := net.Listen("tcp", addr0)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr0, err)
	}
	cfg0 := fastConfig()
	cfg0.Rank, cfg0.Peers, cfg0.Listener = 0, addrs, lnRe
	tr0, err := New(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr0.Close()
	defer tr1.Close()
	if err := tr0.Start(caps[0]); err != nil {
		t.Fatalf("rank 0 start: %v", err)
	}
	if err := <-startErr; err != nil {
		t.Fatalf("rank 1 start: %v", err)
	}
	if got := tr1.Net().DialRetries; got == 0 {
		t.Error("rank 1 connected without any recorded dial retries")
	}
	// The late mesh still works.
	if err := tr1.Send(0, 7, []mpi.Word{123}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, caps[0], 1, 5*time.Second)
	if got[0].src != 1 || got[0].tag != 7 || got[0].words[0] != 123 {
		t.Errorf("got %+v", got[0])
	}
}

func TestConnectionResetRecoversByRetransmission(t *testing.T) {
	const msgs = 10
	plan := &NetFaultPlan{Resets: []Reset{{From: 1, To: 0, AfterSends: 3}}}
	trs := newMesh(t, 2, func(rank int, cfg *Config) { cfg.Faults = plan })
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for i := 0; i < msgs; i++ {
		if err := trs[1].Send(0, i, []mpi.Word{mpi.Word(i * i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := recvN(t, caps[0], msgs, 10*time.Second)
	for i, m := range got {
		if m.tag != i || m.words[0] != mpi.Word(i*i) {
			t.Errorf("message %d: got tag %d words %v — delivery must stay ordered and exactly-once", i, m.tag, m.words)
		}
	}
	select {
	case m := <-caps[0].msgs:
		t.Errorf("duplicate delivery after reset: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
	if r := trs[1].Net().Reconnects; r == 0 {
		t.Error("no reconnect recorded despite the injected reset")
	}
}

func TestCorruptedFrameRejectedAndRecovered(t *testing.T) {
	const msgs = 5
	plan := &NetFaultPlan{CorruptFrames: []CorruptFrame{{From: 1, To: 0, AfterSends: 2}}}
	trs := newMesh(t, 2, func(rank int, cfg *Config) { cfg.Faults = plan })
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for i := 0; i < msgs; i++ {
		if err := trs[1].Send(0, i, []mpi.Word{mpi.Word(1000 + i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := recvN(t, caps[0], msgs, 10*time.Second)
	for i, m := range got {
		if m.tag != i || m.words[0] != mpi.Word(1000+i) {
			t.Errorf("message %d arrived corrupted or out of order: %+v", i, m)
		}
	}
	if c := trs[0].Net().CRCErrors; c == 0 {
		t.Error("receiver recorded no CRC error despite the injected bit flip")
	}
}

func TestHeartbeatDeclaresKilledPeerDead(t *testing.T) {
	trs := newMesh(t, 2, nil)
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer trs[0].Close()

	trs[1].Kill() // crash: no flush, no goodbye

	select {
	case f := <-caps[0].fails:
		if f.rank != 1 {
			t.Errorf("rank %d declared dead, want 1", f.rank)
		}
		if !errors.Is(f.cause, mpi.ErrPeerUnreachable) {
			t.Errorf("cause = %v, want ErrPeerUnreachable", f.cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("killed peer was never declared dead")
	}
	if m := trs[0].Net().HeartbeatMisses; m == 0 {
		t.Error("no heartbeat misses recorded on the way to the declaration")
	}
	// Sends to a declared-dead peer fail fast with the structured cause.
	if err := trs[0].Send(1, 0, []mpi.Word{1}); !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Errorf("send to dead peer: err = %v, want ErrPeerUnreachable", err)
	}
}

func TestGracefulCloseIsNotACrash(t *testing.T) {
	trs := newMesh(t, 2, nil)
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer trs[0].Close()

	// A queued message must still flush before the goodbye.
	if err := trs[1].Send(0, 3, []mpi.Word{77}); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Close(); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, caps[0], 1, 5*time.Second)
	if got[0].words[0] != 77 {
		t.Errorf("got %+v", got[0])
	}
	// Well past the failure-detection window: the departed peer must not be
	// declared dead, and sends to it must be silently dropped, not errors.
	time.Sleep(8 * fastConfig().HeartbeatEvery)
	select {
	case f := <-caps[0].fails:
		t.Fatalf("clean departure misdetected as failure: %+v", f)
	default:
	}
	if err := trs[0].Send(1, 0, []mpi.Word{1}); err != nil {
		t.Errorf("send to departed peer: %v, want silent drop", err)
	}
}

func TestPartitionSurfacesOnBothSides(t *testing.T) {
	plan := &NetFaultPlan{Partitions: []Partition{{A: []int{0}, B: []int{1}, AfterSends: 1}}}
	trs := newMesh(t, 2, func(rank int, cfg *Config) { cfg.Faults = plan })
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Kill() // the partition would make graceful flushes time out
		}
	}()
	// Each side's first data frame passes and arms its side of the cut.
	if err := trs[0].Send(1, 0, []mpi.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Send(0, 0, []mpi.Word{2}); err != nil {
		t.Fatal(err)
	}
	for rank, c := range caps {
		select {
		case f := <-c.fails:
			if f.rank != 1-rank || !errors.Is(f.cause, mpi.ErrPeerUnreachable) {
				t.Errorf("rank %d: failure %+v, want peer %d unreachable", rank, f, 1-rank)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("rank %d never declared its partitioned peer dead", rank)
		}
	}
}

func TestSlowLinkDelaysButDelivers(t *testing.T) {
	plan := &NetFaultPlan{SlowLinks: []SlowLink{{From: 1, To: 0, Delay: 30 * time.Millisecond}}}
	trs := newMesh(t, 2, func(rank int, cfg *Config) {
		cfg.Faults = plan
		// Keep the detector from tripping on heartbeats sharing the slow link.
		cfg.HeartbeatEvery = 50 * time.Millisecond
	})
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	start := time.Now()
	if err := trs[1].Send(0, 0, []mpi.Word{5}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, caps[0], 1, 5*time.Second)
	if got[0].words[0] != 5 {
		t.Errorf("got %+v", got[0])
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, the slow link should add ~30ms", elapsed)
	}
}

// --- the full mpi runtime over TCP ---

// runWorldOverTCP executes body on n single-rank worlds connected by real
// loopback TCP, returning each rank's error.
func runWorldOverTCP(t *testing.T, n int, customize func(rank int, cfg *Config), body func(c *mpi.Comm) error) ([]*mpi.World, []error) {
	t.Helper()
	trs := newMesh(t, n, customize)
	worlds := make([]*mpi.World, n)
	for i, tr := range trs {
		worlds[i] = mpi.NewDistributedWorld(tr)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range worlds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = worlds[i].RunLocal(body)
		}(i)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}
	return worlds, errs
}

func TestCollectivesOverTCPMatchInProcess(t *testing.T) {
	const n = 4
	type result struct {
		sum    mpi.Word
		gather []mpi.Word
		bcast  mpi.Word
		a2a    []mpi.Word
		ragged [][]mpi.Word
		p2p    mpi.Word
	}
	body := func(c *mpi.Comm) (result, error) {
		var r result
		r.sum = c.Allreduce(mpi.Word(c.Rank()+1), mpi.OpSum)
		r.gather = c.Allgather(mpi.Word(c.Rank() * 3))
		seed := mpi.Word(0)
		if c.Rank() == 2 {
			seed = 99
		}
		r.bcast = c.Bcast(2, []mpi.Word{seed})[0]
		out := make([][]mpi.Word, c.Size())
		for d := range out {
			out[d] = []mpi.Word{mpi.Word(c.Rank()*10 + d)}
		}
		in := c.Alltoallv(out)
		for s := range in {
			r.a2a = append(r.a2a, in[s]...)
		}
		mine := make([]mpi.Word, c.Rank()+1) // ragged: rank r contributes r+1 words
		for i := range mine {
			mine[i] = mpi.Word(c.Rank()*100 + i)
		}
		r.ragged = c.AllgatherV(mine)
		c.Barrier()
		// A p2p ring rides alongside the collectives.
		next, prev := (c.Rank()+1)%c.Size(), (c.Rank()+c.Size()-1)%c.Size()
		c.Send(next, 5, []mpi.Word{mpi.Word(c.Rank() * 7)})
		words, _ := c.Recv(prev, 5)
		r.p2p = words[0]
		return r, nil
	}

	// Reference run on the in-process transport.
	ref := make([]result, n)
	w := mpi.NewWorld(n)
	if err := w.Run(func(c *mpi.Comm) error {
		r, err := body(c)
		ref[c.Rank()] = r
		return err
	}); err != nil {
		t.Fatal(err)
	}

	got := make([]result, n)
	_, errs := runWorldOverTCP(t, n, nil, func(c *mpi.Comm) error {
		r, err := body(c)
		got[c.Rank()] = r
		return err
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := range got {
		if fmt.Sprintf("%+v", got[rank]) != fmt.Sprintf("%+v", ref[rank]) {
			t.Errorf("rank %d diverged over TCP:\n got %+v\nwant %+v", rank, got[rank], ref[rank])
		}
	}
}

func TestWorldOverTCPSurvivesResetsAndCorruption(t *testing.T) {
	// Wire faults that the transport repairs transparently must leave the
	// computation bit-identical: same allreduce results as a clean run.
	const n, rounds = 3, 20
	plan := &NetFaultPlan{
		Resets:        []Reset{{From: 1, To: 0, AfterSends: 5}, {From: 2, To: 0, AfterSends: 9}},
		CorruptFrames: []CorruptFrame{{From: 2, To: 1, AfterSends: 3}},
	}
	sums := make([]mpi.Word, n)
	_, errs := runWorldOverTCP(t, n, func(rank int, cfg *Config) { cfg.Faults = plan }, func(c *mpi.Comm) error {
		var acc mpi.Word
		for i := 0; i < rounds; i++ {
			c.SetEpoch(i)
			acc += c.Allreduce(mpi.Word(c.Rank()+i), mpi.OpSum)
		}
		sums[c.Rank()] = acc
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	var want mpi.Word
	for i := 0; i < rounds; i++ {
		var round mpi.Word
		for r := 0; r < n; r++ {
			round += mpi.Word(r + i)
		}
		want += round
	}
	for rank, got := range sums {
		if got != want {
			t.Errorf("rank %d accumulated %d, want %d (faults must be invisible to the computation)", rank, got, want)
		}
	}
}

func TestWorldOverTCPKilledRankFailsSurvivors(t *testing.T) {
	// One process dies mid-run (transport killed, its rank wedged): every
	// surviving rank's RunLocal must return a structured ErrRankFailed
	// naming the dead rank — the contract supervised recovery builds on.
	const n = 3
	trs := newMesh(t, n, nil)
	worlds := make([]*mpi.World, n)
	for i, tr := range trs {
		worlds[i] = mpi.NewDistributedWorld(tr)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range worlds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = worlds[i].RunLocal(func(c *mpi.Comm) error {
				for round := 0; ; round++ {
					c.SetEpoch(round)
					if c.Rank() == 2 && round == 3 {
						trs[2].Kill() // crash this process's wire mid-fixpoint
						return errors.New("rank 2 crashed")
					}
					c.Allreduce(1, mpi.OpSum)
				}
			})
		}(i)
	}
	wg.Wait()
	for rank := 0; rank < 2; rank++ {
		rf, ok := mpi.AsRankFailure(errs[rank])
		if !ok {
			t.Fatalf("rank %d: err = %v, want ErrRankFailed", rank, errs[rank])
		}
		if rf.Rank != 2 || !errors.Is(rf, mpi.ErrPeerUnreachable) {
			t.Errorf("rank %d: failure %+v, want rank 2 unreachable", rank, rf)
		}
	}
	trs[0].Close()
	trs[1].Close()
}
