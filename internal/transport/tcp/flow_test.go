package tcp

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"paralagg/internal/mpi"
	"paralagg/internal/resource"
)

// Flow-control regression tests: the per-peer outbox of unacknowledged
// frames must stay within the send window no matter how the receiver
// behaves, and the receiver-advertised credit must throttle senders.

// fakeSilentPeer acts rank 0 of a two-rank mesh at the wire level: it
// completes the hello handshake, keeps reading (so TCP itself never pushes
// back), but never acks — no heartbeats, nothing. The pathological receiver
// the outbox bound exists for.
func fakeSilentPeer(t *testing.T, ln net.Listener, stop <-chan struct{}) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	go func() {
		<-stop
		conn.Close()
	}()
	var scratch []byte
	hello, err := readFrame(conn, &scratch)
	if err != nil || hello.typ != ftHello {
		t.Errorf("fake peer: bad hello: %+v err=%v", hello, err)
		conn.Close()
		return
	}
	reply := encodeFrame(nil, frame{typ: ftHello, src: 0, tag: helloMagic, seq: 0})
	if _, err := conn.Write(reply); err != nil {
		conn.Close()
		return
	}
	for {
		if _, err := readFrame(conn, &scratch); err != nil {
			return
		}
	}
}

func TestNeverAckingPeerCannotGrowOutboxPastWindow(t *testing.T) {
	const window = 8
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	stop := make(chan struct{})
	defer close(stop)
	go fakeSilentPeer(t, ln0, stop)

	cfg := fastConfig()
	cfg.Rank, cfg.Peers, cfg.Listener = 1, addrs, ln1
	cfg.SendWindow = window
	cfg.SendStallTimeout = 250 * time.Millisecond
	// Keep the failure detector out of the way: the stall deadline, not
	// heartbeat loss, must be what unblocks the sender.
	cfg.HeartbeatMisses = 1000
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := newCaptures(2)
	if err := tr.Start(caps[1]); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer tr.Kill()

	acct := resource.NewAccountant(0)
	tr.SetAccountant(acct)

	// The first `window` sends must queue freely; the next one must block
	// and eventually fail structurally instead of growing the outbox.
	for i := 0; i < window; i++ {
		if err := tr.Send(0, 7, []mpi.Word{mpi.Word(i)}); err != nil {
			t.Fatalf("send %d within the window: %v", i, err)
		}
	}
	start := time.Now()
	err = tr.Send(0, 7, []mpi.Word{99})
	if err == nil {
		t.Fatal("send past the window against a never-acking peer succeeded")
	}
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("stalled send error %v does not wrap ErrPeerUnreachable", err)
	}
	if d := time.Since(start); d < cfg.SendStallTimeout/2 {
		t.Fatalf("stalled send returned after %v, before the stall deadline could fire", d)
	}
	n := tr.Net()
	if n.OutboxPeakFrames > window {
		t.Fatalf("outbox peak %d frames exceeds window %d", n.OutboxPeakFrames, window)
	}
	if n.ThrottleStalls == 0 {
		t.Fatal("no throttle stall recorded for a blocked send")
	}
	// The outbox accountant must hold exactly the retained window, not the
	// attempted traffic (the stalled frame was never queued).
	if got, want := acct.UsedBytes(), int64(window*(1+frameOverheadWords)*resource.WordBytes); got != want {
		t.Fatalf("accounted outbox %d bytes, want %d", got, want)
	}
}

func TestAdvertisedWindowThrottlesSender(t *testing.T) {
	const (
		recvWindow = 4
		msgs       = 40
	)
	trs := newMesh(t, 2, func(rank int, cfg *Config) {
		if rank == 0 {
			cfg.SendWindow = recvWindow // rank 0's receive capacity
		}
		cfg.SendStallTimeout = 5 * time.Second
	})
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()

	// Let a heartbeat deliver rank 0's advertised credit before bursting.
	time.Sleep(4 * trs[0].cfg.HeartbeatEvery)

	var wg sync.WaitGroup
	wg.Add(1)
	var sendErr error
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := trs[1].Send(0, 3, []mpi.Word{mpi.Word(i)}); err != nil {
				sendErr = err
				return
			}
		}
	}()
	got := recvN(t, caps[0], msgs, 10*time.Second)
	wg.Wait()
	if sendErr != nil {
		t.Fatalf("send: %v", sendErr)
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	n := trs[1].Net()
	if n.OutboxPeakFrames > recvWindow {
		t.Fatalf("sender outbox peaked at %d frames despite advertised window %d", n.OutboxPeakFrames, recvWindow)
	}
	if n.ThrottleStalls == 0 {
		t.Fatal("a burst 10x the advertised window never stalled — flow control not engaging")
	}
}

func TestSlowConsumerFaultThrottlesButDelivers(t *testing.T) {
	const msgs = 24
	faults := &NetFaultPlan{SlowConsumers: []SlowConsumer{{Rank: 0, Delay: time.Millisecond, Window: 4}}}
	trs := newMesh(t, 2, func(rank int, cfg *Config) {
		cfg.Faults = faults
		cfg.SendStallTimeout = 5 * time.Second
	})
	caps := newCaptures(2)
	startMesh(t, trs, handlers(caps))
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	time.Sleep(4 * trs[0].cfg.HeartbeatEvery) // let the narrowed advert arrive

	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := trs[1].Send(0, 5, []mpi.Word{mpi.Word(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := recvN(t, caps[0], msgs, 10*time.Second)
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	if n := trs[1].Net(); n.OutboxPeakFrames > 4 {
		t.Fatalf("sender outbox peaked at %d frames despite slow-consumer window 4", n.OutboxPeakFrames)
	}
}
