// Package tcp is the real wire under the mpi runtime: one OS process per
// rank, a full mesh of TCP connections, length-prefixed CRC32C-checked
// frames. It implements mpi.Transport with the robustness a real network
// demands — connection establishment with capped exponential backoff and
// jitter, per-operation deadlines, automatic reconnect with sequence-based
// retransmission and duplicate suppression (so idempotent delivery survives
// connection resets and corrupted frames), heartbeat-based failure
// detection feeding the runtime's watchdog, and a deterministic network
// fault injector (partitions, slow links, resets, frame corruption) for
// chaos testing.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"paralagg/internal/mpi"
)

// Frame types. hello opens (and re-opens) a connection, carrying the
// speaker's rank and its cumulative receive position so the other side can
// prune its outbox and retransmit exactly the undelivered tail. data
// carries one mpi message. heartbeat proves liveness and piggybacks the
// cumulative ack. bye announces a clean departure, so closed connections
// from a finished rank are not mistaken for a crash.
const (
	ftHello byte = iota + 1
	ftData
	ftHeartbeat
	ftBye
)

// helloMagic guards against stray connections: a hello whose tag field does
// not carry it is rejected.
const helloMagic int64 = 0x50_41_52_41_4c_41_47 // "PARALAG"

// frame is one unit on the wire.
//
// Encoding (little-endian):
//
//	u32  length of everything after this field
//	u8   type
//	u32  src rank
//	i64  tag (helloMagic for hello frames)
//	u64  seq (data: message sequence; hello/heartbeat: cumulative ack)
//	u64* payload words
//	u32  CRC32C over type..payload
//
// The CRC is shared with the in-process runtime's message checksums
// (mpi.CRC32C), so integrity is end to end regardless of transport.
type frame struct {
	typ   byte
	src   uint32
	tag   int64
	seq   uint64
	words []mpi.Word
}

// frameHeaderBytes is the encoded size of type+src+tag+seq.
const frameHeaderBytes = 1 + 4 + 8 + 8

// maxFrameBytes bounds a frame's declared length so a corrupted or hostile
// length prefix cannot make the reader allocate unboundedly.
const maxFrameBytes = 1 << 30

// errCRC marks a frame whose checksum did not match: it was corrupted in
// flight. The connection is torn down and the frame retransmitted.
var errCRC = errors.New("tcp: frame failed CRC32C check")

// encodeFrame appends f's wire encoding (including the length prefix) to
// buf and returns the extended slice.
func encodeFrame(buf []byte, f frame) []byte {
	body := frameHeaderBytes + len(f.words)*8
	total := body + 4 // + trailing CRC
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	start := len(buf)
	buf = append(buf, f.typ)
	buf = binary.LittleEndian.AppendUint32(buf, f.src)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.tag))
	buf = binary.LittleEndian.AppendUint64(buf, f.seq)
	for _, w := range f.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	crc := mpi.CRC32C(buf[start:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// readFrame reads one frame from r. It returns errCRC (wrapped) when the
// checksum does not match and io errors verbatim.
func readFrame(r io.Reader, scratch *[]byte) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < frameHeaderBytes+4 || total > maxFrameBytes {
		return frame{}, fmt.Errorf("tcp: frame length %d out of range", total)
	}
	if cap(*scratch) < int(total) {
		*scratch = make([]byte, total)
	}
	buf := (*scratch)[:total]
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	body := buf[:total-4]
	wantCRC := binary.LittleEndian.Uint32(buf[total-4:])
	if mpi.CRC32C(body) != wantCRC {
		return frame{}, errCRC
	}
	f := frame{
		typ: body[0],
		src: binary.LittleEndian.Uint32(body[1:5]),
		tag: int64(binary.LittleEndian.Uint64(body[5:13])),
		seq: binary.LittleEndian.Uint64(body[13:21]),
	}
	nwords := (len(body) - frameHeaderBytes) / 8
	if nwords > 0 {
		f.words = make([]mpi.Word, nwords)
		for i := range f.words {
			f.words[i] = binary.LittleEndian.Uint64(body[frameHeaderBytes+i*8:])
		}
	}
	return f, nil
}
