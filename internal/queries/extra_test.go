package queries

import (
	"fmt"
	"testing"

	"paralagg"
	"paralagg/internal/graph"
)

func TestWidestPathMatchesReference(t *testing.T) {
	g := graph.Uniform("t", 80, 500, 20, 31)
	sources := g.Sources(3, 2)
	want := map[[2]uint64]uint64{}
	reach := 0
	for _, s := range sources {
		for n, c := range RefWidestPath(g, s) {
			want[[2]uint64{s, n}] = c
			reach++
		}
	}
	res, err := paralagg.Exec(WidestPathProgram(), paralagg.Config{Ranks: 4},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				e := g.Edges[i]
				emit(paralagg.Tuple{e.U, e.V, e.W})
			}); err != nil {
				return err
			}
			return rk.LoadShare("wp", len(sources), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{sources[i], sources[i], infCapacity})
			})
		},
		func(rk *paralagg.Rank) error {
			var wrong uint64
			if err := rk.Each("wp", func(tt paralagg.Tuple) {
				if want[[2]uint64{tt[0], tt[1]}] != tt[2] {
					wrong++
				}
			}); err != nil {
				return err
			}
			if w := rk.Reduce(wrong, paralagg.OpSum); w != 0 {
				return fmt.Errorf("%d wrong capacities", w)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["wp"] != uint64(reach) {
		t.Fatalf("reached %d, want %d", res.Counts["wp"], reach)
	}
}

func TestReachLabelsMatchesReference(t *testing.T) {
	g := graph.Uniform("t", 120, 300, 1, 35)
	sources := g.Sources(6, 11)
	want := RefReachLabels(g, sources)
	_, err := paralagg.Exec(ReachLabelsProgram(), paralagg.Config{Ranks: 5, Subs: 2},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{g.Edges[i].U, g.Edges[i].V})
			}); err != nil {
				return err
			}
			return rk.LoadShare("lab", len(sources), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{sources[i], 1 << uint(i)})
			})
		},
		func(rk *paralagg.Rank) error {
			var wrong, count uint64
			if err := rk.Each("lab", func(tt paralagg.Tuple) {
				count++
				if want[tt[0]] != tt[1] {
					wrong++
				}
			}); err != nil {
				return err
			}
			if w := rk.Reduce(wrong, paralagg.OpSum); w != 0 {
				return fmt.Errorf("%d wrong label masks", w)
			}
			if c := rk.Reduce(count, paralagg.OpSum); c != uint64(len(want)) {
				return fmt.Errorf("labeled %d nodes, want %d", c, len(want))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := graph.Uniform("t", 40, 300, 1, 17)
	want := RefTriangleCount(g)
	if want == 0 {
		t.Fatal("test graph has no triangles; pick a denser seed")
	}
	got, err := RunTriangleCount(g, paralagg.Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestRunWidestPathHelper(t *testing.T) {
	g := graph.Uniform("t", 30, 120, 9, 5)
	sources := g.Sources(2, 3)
	res, err := RunWidestPath(g, sources, paralagg.Config{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["wp"] == 0 {
		t.Fatal("widest path reached nothing")
	}
	res2, err := RunReachLabels(g, sources, paralagg.Config{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counts["lab"] == 0 {
		t.Fatal("labels reached nothing")
	}
}
