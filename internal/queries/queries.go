// Package queries provides the paper's evaluation queries as PARALAGG
// programs — SSSP, connected components (§V-A), transitive closure,
// PageRank, and longest-shortest-path (§III-A) — together with loaders for
// graph inputs and sequential reference implementations used to validate
// every distributed run.
package queries

import (
	"fmt"
	"math"

	"paralagg"
	"paralagg/internal/graph"
)

// SSSPProgram builds the recursive-aggregation SSSP query of §II-C:
//
//	Spath(n, n, 0)              ← Start(n).
//	Spath(f, t, $MIN(l + w))    ← Spath(f, m, l), Edge(m, t, w).
//
// Multi-source runs (the paper uses 5–30 simultaneous sources) share the
// same relation: the independent columns (from, to) keep sources separate.
func SSSPProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 3, 1))
	mustDecl(p.DeclareAgg("spath", 2, paralagg.MinAgg))
	p.Add(paralagg.R(
		paralagg.A("spath", paralagg.Var("f"), paralagg.Var("t"),
			paralagg.Add(paralagg.Var("l"), paralagg.Var("w"))),
		paralagg.A("spath", paralagg.Var("f"), paralagg.Var("m"), paralagg.Var("l")),
		paralagg.A("edge", paralagg.Var("m"), paralagg.Var("t"), paralagg.Var("w")),
	))
	return p
}

// LoadSSSP feeds a weighted graph and the start-node seeds into an
// instantiated SSSP program.
func LoadSSSP(rk *paralagg.Rank, g *graph.Graph, sources []uint64) error {
	if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
		e := g.Edges[i]
		emit(paralagg.Tuple{e.U, e.V, e.W})
	}); err != nil {
		return err
	}
	return rk.LoadShare("spath", len(sources), func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{sources[i], sources[i], 0})
	})
}

// RunSSSP executes SSSP over the graph from the given sources.
func RunSSSP(g *graph.Graph, sources []uint64, cfg paralagg.Config) (*paralagg.Result, error) {
	return paralagg.Exec(SSSPProgram(), cfg, func(rk *paralagg.Rank) error {
		return LoadSSSP(rk, g, sources)
	}, nil)
}

// CCProgram builds the connected-components query of §V-A (with the
// standard label-propagation rule):
//
//	cc(n, n)          ← node(n).
//	cc(y, $MIN(z))    ← cc(x, z), edge(x, y).
func CCProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 2, 1))
	mustDecl(p.DeclareAgg("cc", 1, paralagg.MinAgg))
	p.Add(paralagg.R(
		paralagg.A("cc", paralagg.Var("y"), paralagg.Var("z")),
		paralagg.A("cc", paralagg.Var("x"), paralagg.Var("z")),
		paralagg.A("edge", paralagg.Var("x"), paralagg.Var("y")),
	))
	return p
}

// LoadCC feeds the undirected form of the graph plus self-label seeds.
func LoadCC(rk *paralagg.Rank, g *graph.Graph) error {
	und := g.Undirected()
	if err := rk.LoadShare("edge", len(und), func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{und[i].U, und[i].V})
	}); err != nil {
		return err
	}
	return rk.LoadShare("cc", g.Nodes, func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{uint64(i), uint64(i)})
	})
}

// RunCC executes connected components over the graph.
func RunCC(g *graph.Graph, cfg paralagg.Config) (*paralagg.Result, error) {
	return paralagg.Exec(CCProgram(), cfg, func(rk *paralagg.Rank) error {
		return LoadCC(rk, g)
	}, nil)
}

// TCProgram builds plain transitive closure (§II-A), the vanilla-Datalog
// workload without aggregation:
//
//	path(x, y) ← edge(x, y).
//	path(x, z) ← path(x, y), edge(y, z).
func TCProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 2, 1))
	mustDecl(p.DeclareSet("path", 2, 1))
	p.Add(
		paralagg.R(paralagg.A("path", paralagg.Var("x"), paralagg.Var("y")),
			paralagg.A("edge", paralagg.Var("x"), paralagg.Var("y"))),
		paralagg.R(paralagg.A("path", paralagg.Var("x"), paralagg.Var("z")),
			paralagg.A("path", paralagg.Var("x"), paralagg.Var("y")),
			paralagg.A("edge", paralagg.Var("y"), paralagg.Var("z"))),
	)
	return p
}

// LoadTC feeds a directed graph.
func LoadTC(rk *paralagg.Rank, g *graph.Graph) error {
	return rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{g.Edges[i].U, g.Edges[i].V})
	})
}

// LspProgram extends SSSP with a second stratum computing the longest
// shortest path (the §III-A example): because the copy into spNorm runs in
// its own stratum, only converged shortest paths flow in — no transient
// tuple "leak".
//
//	SpNorm(f, t, v) ← Spath(f, t, v).
//	Lsp($MAX(v))    ← SpNorm(_, _, v).
func LspProgram() *paralagg.Program {
	p := SSSPProgram()
	mustDecl(p.DeclareSet("spnorm", 3, 1))
	mustDecl(p.DeclareAgg("lsp", 1, paralagg.MaxAgg))
	p.Add(
		paralagg.R(paralagg.A("spnorm", paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("v")),
			paralagg.A("spath", paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("v"))),
		paralagg.R(paralagg.A("lsp", paralagg.Const(0), paralagg.Var("v")),
			paralagg.A("spnorm", paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("v"))),
	)
	return p
}

// PageRankProgram builds damped PageRank as iteration-stratified recursive
// aggregation (the RaSQL/DeALS formulation): ranks for iteration i+1 sum a
// teleport term plus damped contributions along edges. The edgeInv relation
// carries 1/outdeg(x) as float bits; teleportBits and dampBits encode
// (1-d)/N and d.
//
//	pr(i+1, y, $MSUM(teleport))       ← pr(i, y, r),            i < K.
//	pr(i+1, y, $MSUM(d · r · inv))    ← pr(i, x, r), edgeInv(x, y, inv), i < K.
func PageRankProgram(iters int, nodes int, damping float64) *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edgeinv", 3, 1))
	mustDecl(p.DeclareAgg("pr", 2, paralagg.MSumAgg))
	teleport := paralagg.Const(math.Float64bits((1 - damping) / float64(nodes)))
	damp := paralagg.Const(math.Float64bits(damping))
	k := paralagg.Const(uint64(iters))
	p.Add(
		paralagg.R(
			paralagg.A("pr", paralagg.Add(paralagg.Var("i"), paralagg.Const(1)), paralagg.Var("y"), teleport),
			paralagg.A("pr", paralagg.Var("i"), paralagg.Var("y"), paralagg.Var("r")),
		).Where(paralagg.Lt(paralagg.Var("i"), k)),
		paralagg.R(
			paralagg.A("pr", paralagg.Add(paralagg.Var("i"), paralagg.Const(1)), paralagg.Var("y"),
				paralagg.FMul(damp, paralagg.FMul(paralagg.Var("r"), paralagg.Var("inv")))),
			paralagg.A("pr", paralagg.Var("i"), paralagg.Var("x"), paralagg.Var("r")),
			paralagg.A("edgeinv", paralagg.Var("x"), paralagg.Var("y"), paralagg.Var("inv")),
		).Where(paralagg.Lt(paralagg.Var("i"), k)),
	)
	return p
}

// LoadPageRank feeds edge/inverse-degree facts and the uniform iteration-0
// distribution.
func LoadPageRank(rk *paralagg.Rank, g *graph.Graph) error {
	deg := g.OutDegrees()
	if err := rk.LoadShare("edgeinv", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
		e := g.Edges[i]
		emit(paralagg.Tuple{e.U, e.V, math.Float64bits(1 / float64(deg[e.U]))})
	}); err != nil {
		return err
	}
	return rk.LoadShare("pr", g.Nodes, func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{0, uint64(i), math.Float64bits(1 / float64(g.Nodes))})
	})
}

// RunPageRank executes PageRank for the given iteration count.
func RunPageRank(g *graph.Graph, iters int, damping float64, cfg paralagg.Config) (*paralagg.Result, error) {
	return paralagg.Exec(PageRankProgram(iters, g.Nodes, damping), cfg, func(rk *paralagg.Rank) error {
		return LoadPageRank(rk, g)
	}, nil)
}

// StratifiedSSSPProgram builds the *stratified-aggregation* SSSP of §II-B —
// the formulation whose "poor asymptotic performance" motivates recursive
// aggregates: a full Path enumeration to fixpoint, then a MIN in a second
// stratum. Path lengths are capped (hop count) so the enumeration stays
// finite on cyclic graphs; even so it materializes every distinct path
// length, which is the overhead the paper's Figure 2 baseline discussion
// describes. Use small graphs only.
//
//	Path(n, n, 0)      ← Start(n).
//	Path(f, t, l + w)  ← Path(f, m, l), Edge(m, t, w), l + w ≤ cap.
//	Spath(f, t, MIN l) ← Path(f, t, l).
func StratifiedSSSPProgram(lengthCap uint64) *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 3, 1))
	mustDecl(p.DeclareSet("path", 3, 1))
	mustDecl(p.DeclareAgg("spath", 2, paralagg.MinAgg))
	p.Add(
		paralagg.R(
			paralagg.A("path", paralagg.Var("f"), paralagg.Var("t"),
				paralagg.Add(paralagg.Var("l"), paralagg.Var("w"))),
			paralagg.A("path", paralagg.Var("f"), paralagg.Var("m"), paralagg.Var("l")),
			paralagg.A("edge", paralagg.Var("m"), paralagg.Var("t"), paralagg.Var("w")),
		).Where(paralagg.Where("cap", func(v []paralagg.Value) bool {
			return v[0]+v[1] <= lengthCap
		}, paralagg.Var("l"), paralagg.Var("w"))),
		paralagg.R(
			paralagg.A("spath", paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("l")),
			paralagg.A("path", paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("l")),
		),
	)
	return p
}

// LoadStratifiedSSSP mirrors LoadSSSP for the stratified program.
func LoadStratifiedSSSP(rk *paralagg.Rank, g *graph.Graph, sources []uint64) error {
	if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
		e := g.Edges[i]
		emit(paralagg.Tuple{e.U, e.V, e.W})
	}); err != nil {
		return err
	}
	return rk.LoadShare("path", len(sources), func(i int, emit func(paralagg.Tuple)) {
		emit(paralagg.Tuple{sources[i], sources[i], 0})
	})
}

func mustDecl(err error) {
	if err != nil {
		panic(fmt.Sprintf("queries: %v", err))
	}
}
