package queries

import (
	"paralagg"
	"paralagg/internal/graph"
)

// The queries in this file go beyond the paper's evaluation set and
// exercise the remaining aggregates the library ships — $MAX as a widest
// path, $BOR as multi-source reachability labels, $MCOUNT as triangle
// counting — demonstrating the "plethora of recursive aggregates" the
// paper implements on the same API (§IV-B).

// infCapacity seeds widest-path sources: effectively unbounded bottleneck.
const infCapacity = uint64(1) << 62

// WidestPathProgram computes single-source widest (maximum-bottleneck)
// paths: the dependent value is the best achievable minimum edge weight
// along a path, aggregated with $MAX.
//
//	wp(s, s, ∞)               ← Start(s).
//	wp(f, t, $MAX(min(c, w))) ← wp(f, m, c), edge(m, t, w).
func WidestPathProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 3, 1))
	mustDecl(p.DeclareAgg("wp", 2, paralagg.MaxAgg))
	minFn := func(v []paralagg.Value) paralagg.Value {
		if v[0] < v[1] {
			return v[0]
		}
		return v[1]
	}
	p.Add(paralagg.R(
		paralagg.A("wp", paralagg.Var("f"), paralagg.Var("t"),
			paralagg.Compute("min", minFn, paralagg.Var("c"), paralagg.Var("w"))),
		paralagg.A("wp", paralagg.Var("f"), paralagg.Var("m"), paralagg.Var("c")),
		paralagg.A("edge", paralagg.Var("m"), paralagg.Var("t"), paralagg.Var("w")),
	))
	return p
}

// RunWidestPath executes widest path from the given sources.
func RunWidestPath(g *graph.Graph, sources []uint64, cfg paralagg.Config) (*paralagg.Result, error) {
	return paralagg.Exec(WidestPathProgram(), cfg, func(rk *paralagg.Rank) error {
		if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
			e := g.Edges[i]
			emit(paralagg.Tuple{e.U, e.V, e.W})
		}); err != nil {
			return err
		}
		return rk.LoadShare("wp", len(sources), func(i int, emit func(paralagg.Tuple)) {
			emit(paralagg.Tuple{sources[i], sources[i], infCapacity})
		})
	}, nil)
}

// RefWidestPath computes maximum-bottleneck capacities from src with a
// Dijkstra variant (maximize the minimum edge weight).
func RefWidestPath(g *graph.Graph, src uint64) map[uint64]uint64 {
	adj := make([][]graph.Edge, g.Nodes)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e)
	}
	cap := make([]uint64, g.Nodes)
	cap[src] = infCapacity
	done := make([]bool, g.Nodes)
	for {
		u, best := -1, uint64(0)
		for i, c := range cap {
			if !done[i] && c > best {
				u, best = i, c
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range adj[u] {
			c := cap[u]
			if e.W < c {
				c = e.W
			}
			if c > cap[e.V] {
				cap[e.V] = c
			}
		}
	}
	out := map[uint64]uint64{}
	for i, c := range cap {
		if c > 0 {
			out[uint64(i)] = c
		}
	}
	return out
}

// ReachLabelsProgram assigns every node the bitmask of source labels that
// reach it — multi-source reachability over the 64-element power-set
// lattice ($BOR).
//
//	lab(s_i, 1<<i)    ← Source(i, s_i).
//	lab(y, $BOR(m))   ← lab(x, m), edge(x, y).
func ReachLabelsProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 2, 1))
	mustDecl(p.DeclareAgg("lab", 1, paralagg.BitOrAgg))
	p.Add(paralagg.R(
		paralagg.A("lab", paralagg.Var("y"), paralagg.Var("m")),
		paralagg.A("lab", paralagg.Var("x"), paralagg.Var("m")),
		paralagg.A("edge", paralagg.Var("x"), paralagg.Var("y")),
	))
	return p
}

// RunReachLabels executes multi-source reachability labeling; sources[i]
// carries label bit i (at most 64 sources).
func RunReachLabels(g *graph.Graph, sources []uint64, cfg paralagg.Config) (*paralagg.Result, error) {
	return paralagg.Exec(ReachLabelsProgram(), cfg, func(rk *paralagg.Rank) error {
		if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
			emit(paralagg.Tuple{g.Edges[i].U, g.Edges[i].V})
		}); err != nil {
			return err
		}
		return rk.LoadShare("lab", len(sources), func(i int, emit func(paralagg.Tuple)) {
			emit(paralagg.Tuple{sources[i], 1 << uint(i)})
		})
	}, nil)
}

// RefReachLabels computes the same bitmasks by BFS from each source.
func RefReachLabels(g *graph.Graph, sources []uint64) map[uint64]uint64 {
	adj := make([][]uint64, g.Nodes)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
	}
	out := map[uint64]uint64{}
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		visited := make([]bool, g.Nodes)
		visited[s] = true
		out[s] |= bit
		queue := []uint64{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					out[v] |= bit
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}

// TriangleCountProgram counts directed triangles x→y→z→x with x<y and x<z
// (each triangle counted once per its smallest vertex's orientation) via a
// three-atom body — exercising the compiler's n-ary chaining — into an
// $MCOUNT accumulator.
//
//	tri(0, $MCOUNT(1)) ← edge(x,y), edge(y,z), edge(z,x), x<y, x<z.
func TriangleCountProgram() *paralagg.Program {
	p := paralagg.NewProgram()
	mustDecl(p.DeclareSet("edge", 2, 1))
	mustDecl(p.DeclareAgg("tri", 1, paralagg.MCountAgg))
	p.Add(paralagg.R(
		paralagg.A("tri", paralagg.Const(0), paralagg.Const(1)),
		paralagg.A("edge", paralagg.Var("x"), paralagg.Var("y")),
		paralagg.A("edge", paralagg.Var("y"), paralagg.Var("z")),
		paralagg.A("edge", paralagg.Var("z"), paralagg.Var("x")),
	).Where(
		paralagg.Lt(paralagg.Var("x"), paralagg.Var("y")),
		paralagg.Lt(paralagg.Var("x"), paralagg.Var("z")),
	))
	return p
}

// RunTriangleCount executes the triangle count and returns the total.
func RunTriangleCount(g *graph.Graph, cfg paralagg.Config) (uint64, error) {
	var count uint64
	_, err := paralagg.Exec(TriangleCountProgram(), cfg,
		func(rk *paralagg.Rank) error {
			return rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{g.Edges[i].U, g.Edges[i].V})
			})
		},
		func(rk *paralagg.Rank) error {
			var local uint64
			if err := rk.Each("tri", func(t paralagg.Tuple) { local = t[1] }); err != nil {
				return err
			}
			total := rk.Reduce(local, paralagg.OpMax)
			if rk.ID() == 0 {
				count = total
			}
			return nil
		})
	return count, err
}

// RefTriangleCount counts directed triangles x→y→z→x with x < y and x < z
// by brute force.
func RefTriangleCount(g *graph.Graph) uint64 {
	has := make(map[[2]uint64]bool, len(g.Edges))
	adj := make([][]uint64, g.Nodes)
	for _, e := range g.Edges {
		has[[2]uint64{e.U, e.V}] = true
		adj[e.U] = append(adj[e.U], e.V)
	}
	var n uint64
	for _, e := range g.Edges {
		x, y := e.U, e.V
		if x >= y {
			continue
		}
		for _, z := range adj[y] {
			if x < z && has[[2]uint64{z, x}] {
				n++
			}
		}
	}
	return n
}
