package queries

import (
	"container/heap"

	"paralagg/internal/graph"
)

// RefSSSP computes exact shortest-path distances from src with Dijkstra's
// algorithm (binary heap). Unreachable nodes are absent from the result.
func RefSSSP(g *graph.Graph, src uint64) map[uint64]uint64 {
	adj := make([][]graph.Edge, g.Nodes)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e)
	}
	const inf = ^uint64(0)
	dist := make([]uint64, g.Nodes)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			if nd := it.d + e.W; nd < dist[e.V] {
				dist[e.V] = nd
				heap.Push(pq, distItem{node: e.V, d: nd})
			}
		}
	}
	out := make(map[uint64]uint64)
	for i, d := range dist {
		if d != inf {
			out[uint64(i)] = d
		}
	}
	return out
}

type distItem struct {
	node uint64
	d    uint64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RefSSSPMulti runs RefSSSP from every source and returns the union keyed
// (src, node), plus the total reachable-pair count (the paper's "Paths"
// column in Table II).
func RefSSSPMulti(g *graph.Graph, sources []uint64) (map[[2]uint64]uint64, int) {
	out := make(map[[2]uint64]uint64)
	for _, s := range sources {
		for n, d := range RefSSSP(g, s) {
			out[[2]uint64{s, n}] = d
		}
	}
	return out, len(out)
}

// RefCC labels every node with the smallest node id in its weakly connected
// component (union-find with path compression).
func RefCC(g *graph.Graph) map[uint64]uint64 {
	parent := make([]int, g.Nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(int(e.U)), find(int(e.V))
		if a != b {
			parent[a] = b
		}
	}
	min := make(map[int]uint64)
	for i := 0; i < g.Nodes; i++ {
		r := find(i)
		if m, ok := min[r]; !ok || uint64(i) < m {
			min[r] = uint64(i)
		}
	}
	out := make(map[uint64]uint64, g.Nodes)
	for i := 0; i < g.Nodes; i++ {
		out[uint64(i)] = min[find(i)]
	}
	return out
}

// RefComponents counts connected components (the paper's "Comp" column).
func RefComponents(g *graph.Graph) int {
	labels := RefCC(g)
	distinct := make(map[uint64]bool)
	for _, l := range labels {
		distinct[l] = true
	}
	return len(distinct)
}

// RefClosureSize computes |transitive closure| by BFS from every node.
func RefClosureSize(g *graph.Graph) int {
	adj := make([][]uint64, g.Nodes)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
	}
	total := 0
	visited := make([]int, g.Nodes)
	for i := range visited {
		visited[i] = -1
	}
	queue := make([]uint64, 0, g.Nodes)
	for s := 0; s < g.Nodes; s++ {
		queue = queue[:0]
		queue = append(queue, uint64(s))
		// The source is not pre-marked: path(s, s) belongs to the closure
		// exactly when a cycle returns to s.
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if visited[v] != s {
					visited[v] = s
					total++
					queue = append(queue, v)
				}
			}
		}
	}
	return total
}

// RefPageRank runs damped power iteration with uniform start, matching
// PageRankProgram's semantics (dangling mass is dropped, as in the
// program).
func RefPageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.Nodes
	deg := g.OutDegrees()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			next[e.V] += damping * rank[e.U] / float64(deg[e.U])
		}
		rank = next
	}
	return rank
}
