package queries

import (
	"fmt"
	"math"
	"testing"

	"paralagg"
	"paralagg/internal/graph"
)

func TestSSSPMatchesDijkstraMultiSource(t *testing.T) {
	g := graph.Uniform("t", 150, 900, 8, 3)
	sources := g.Sources(5, 10)
	want, wantPairs := RefSSSPMulti(g, sources)

	res, err := paralagg.Exec(SSSPProgram(), paralagg.Config{Ranks: 4},
		func(rk *paralagg.Rank) error { return LoadSSSP(rk, g, sources) },
		func(rk *paralagg.Rank) error {
			var wrong, count uint64
			if err := rk.Each("spath", func(tt paralagg.Tuple) {
				count++
				if d, ok := want[[2]uint64{tt[0], tt[1]}]; !ok || d != tt[2] {
					wrong++
				}
			}); err != nil {
				return err
			}
			w := rk.Reduce(wrong, paralagg.OpSum)
			c := rk.Reduce(count, paralagg.OpSum)
			if w != 0 {
				return fmt.Errorf("%d wrong distances", w)
			}
			if c != uint64(wantPairs) {
				return fmt.Errorf("pairs %d, want %d", c, wantPairs)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["spath"] != uint64(wantPairs) {
		t.Fatalf("spath count %d, want %d", res.Counts["spath"], wantPairs)
	}
}

func TestSSSPOnSkewedCatalogGraph(t *testing.T) {
	g, err := graph.Load("flickr-sim")
	if err != nil {
		t.Fatal(err)
	}
	sources := g.Sources(3, 1)
	_, wantPairs := RefSSSPMulti(g, sources)
	for _, subs := range []int{1, 8} {
		res, err := RunSSSP(g, sources, paralagg.Config{Ranks: 8, Subs: subs})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts["spath"] != uint64(wantPairs) {
			t.Fatalf("subs=%d: pairs %d, want %d", subs, res.Counts["spath"], wantPairs)
		}
	}
}

func TestCCMatchesUnionFind(t *testing.T) {
	g := graph.Uniform("t", 300, 360, 1, 5)
	want := RefCC(g)
	res, err := paralagg.Exec(CCProgram(), paralagg.Config{Ranks: 4},
		func(rk *paralagg.Rank) error { return LoadCC(rk, g) },
		func(rk *paralagg.Rank) error {
			var wrong uint64
			if err := rk.Each("cc", func(tt paralagg.Tuple) {
				if want[tt[0]] != tt[1] {
					wrong++
				}
			}); err != nil {
				return err
			}
			if w := rk.Reduce(wrong, paralagg.OpSum); w != 0 {
				return fmt.Errorf("%d wrong labels", w)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["cc"] != uint64(g.Nodes) {
		t.Fatalf("cc count %d, want %d", res.Counts["cc"], g.Nodes)
	}
	if got := RefComponents(g); got < 1 {
		t.Fatalf("components = %d", got)
	}
}

func TestTCMatchesClosureSize(t *testing.T) {
	g := graph.Uniform("t", 70, 200, 1, 7)
	want := RefClosureSize(g)
	res, err := paralagg.Exec(TCProgram(), paralagg.Config{Ranks: 3},
		func(rk *paralagg.Rank) error { return LoadTC(rk, g) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != uint64(want) {
		t.Fatalf("closure %d, want %d", res.Counts["path"], want)
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := graph.PrefAttach("t", 200, 4, 1, 9)
	// Remove dangling nodes' absence problem: PrefAttach node 0 has no
	// out-edges; RefPageRank replicates the same dropped-mass semantics, so
	// the comparison is still exact.
	const iters = 12
	want := RefPageRank(g, iters, 0.85)

	var maxErr float64
	_, err := paralagg.Exec(PageRankProgram(iters, g.Nodes, 0.85), paralagg.Config{Ranks: 4},
		func(rk *paralagg.Rank) error { return LoadPageRank(rk, g) },
		func(rk *paralagg.Rank) error {
			var localMax float64
			if err := rk.Each("pr", func(tt paralagg.Tuple) {
				if tt[0] != iters {
					return
				}
				got := math.Float64frombits(tt[2])
				if d := math.Abs(got - want[tt[1]]); d > localMax {
					localMax = d
				}
			}); err != nil {
				return err
			}
			bits := rk.Reduce(math.Float64bits(localMax), paralagg.OpMax)
			// Max over float bit patterns is order-preserving for
			// non-negative floats.
			localMax = math.Float64frombits(bits)
			if rk.ID() == 0 {
				maxErr = localMax
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-12 {
		t.Fatalf("max PageRank error %g", maxErr)
	}
}

func TestLspMatchesReference(t *testing.T) {
	g := graph.Uniform("t", 80, 400, 6, 13)
	sources := g.Sources(2, 3)
	want, _ := RefSSSPMulti(g, sources)
	wantMax := uint64(0)
	for _, d := range want {
		if d > wantMax {
			wantMax = d
		}
	}
	var got uint64
	_, err := paralagg.Exec(LspProgram(), paralagg.Config{Ranks: 3},
		func(rk *paralagg.Rank) error { return LoadSSSP(rk, g, sources) },
		func(rk *paralagg.Rank) error {
			var local uint64
			if err := rk.Each("lsp", func(tt paralagg.Tuple) { local = tt[1] }); err != nil {
				return err
			}
			g := rk.Reduce(local, paralagg.OpMax)
			if rk.ID() == 0 {
				got = g
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantMax {
		t.Fatalf("lsp = %d, want %d", got, wantMax)
	}
}

// TestStratifiedSSSPAgreesButMaterializesMore demonstrates §II-B: the
// stratified formulation reaches the same answers while materializing far
// more tuples (every distinct path length, not just the minimum).
func TestStratifiedSSSPAgreesButMaterializesMore(t *testing.T) {
	g := graph.Uniform("t", 40, 160, 4, 17)
	sources := g.Sources(2, 7)
	want, wantPairs := RefSSSPMulti(g, sources)

	// Cap comfortably above the largest true distance.
	wantMax := uint64(0)
	for _, d := range want {
		if d > wantMax {
			wantMax = d
		}
	}
	res, err := paralagg.Exec(StratifiedSSSPProgram(wantMax+4), paralagg.Config{Ranks: 3},
		func(rk *paralagg.Rank) error { return LoadStratifiedSSSP(rk, g, sources) },
		func(rk *paralagg.Rank) error {
			var wrong uint64
			if err := rk.Each("spath", func(tt paralagg.Tuple) {
				if d, ok := want[[2]uint64{tt[0], tt[1]}]; !ok || d != tt[2] {
					wrong++
				}
			}); err != nil {
				return err
			}
			if w := rk.Reduce(wrong, paralagg.OpSum); w != 0 {
				return fmt.Errorf("%d wrong stratified distances", w)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["spath"] != uint64(wantPairs) {
		t.Fatalf("spath %d, want %d", res.Counts["spath"], wantPairs)
	}
	// The materialization overhead the paper describes: path holds many
	// more tuples than spath.
	if res.Counts["path"] <= res.Counts["spath"] {
		t.Fatalf("expected path (%d) to materialize more than spath (%d)",
			res.Counts["path"], res.Counts["spath"])
	}
}

// TestRecursiveBeatsStratifiedOnWork confirms the asymptotic claim of §II-C
// by comparing simulated cost on the same workload.
func TestRecursiveBeatsStratifiedOnWork(t *testing.T) {
	g := graph.Uniform("t", 40, 160, 4, 17)
	sources := g.Sources(2, 7)
	rec, err := RunSSSP(g, sources, paralagg.Config{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := paralagg.Exec(StratifiedSSSPProgram(200), paralagg.Config{Ranks: 3},
		func(rk *paralagg.Rank) error { return LoadStratifiedSSSP(rk, g, sources) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SimSeconds >= strat.SimSeconds {
		t.Fatalf("recursive aggregation (%.4fs) should beat stratified (%.4fs)",
			rec.SimSeconds, strat.SimSeconds)
	}
}

func TestReferencesSanity(t *testing.T) {
	// A 3-node path 0→1→2 with weights 2 and 3.
	g := &graph.Graph{Name: "p", Nodes: 3, MaxWeight: 3,
		Edges: []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}}
	d := RefSSSP(g, 0)
	if d[0] != 0 || d[1] != 2 || d[2] != 5 {
		t.Fatalf("dijkstra = %v", d)
	}
	if got := RefClosureSize(g); got != 3 { // (0,1),(0,2),(1,2)
		t.Fatalf("closure = %d", got)
	}
	cc := RefCC(g)
	if cc[0] != 0 || cc[2] != 0 {
		t.Fatalf("cc = %v", cc)
	}
	if RefComponents(g) != 1 {
		t.Fatalf("components = %d", RefComponents(g))
	}
	// Cycle: closure includes self-pairs.
	c := &graph.Graph{Name: "c", Nodes: 2, MaxWeight: 1,
		Edges: []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}}}
	if got := RefClosureSize(c); got != 4 {
		t.Fatalf("cycle closure = %d, want 4", got)
	}
	pr := RefPageRank(g, 1, 0.85)
	if len(pr) != 3 || pr[1] <= pr[0] {
		t.Fatalf("pagerank = %v", pr)
	}
}
