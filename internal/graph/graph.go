// Package graph provides deterministic graph generation and the named
// dataset catalog the benchmark harness uses as stand-ins for the paper's
// inputs (Twitter-2010, SNAP LiveJournal/Orkut/Topcats, and eight
// SuiteSparse matrices). Real traces are not redistributable at this scale,
// so each catalog entry is a synthetic graph whose *character* matches the
// original — power-law degree skew for the social networks and web crawls,
// low-skew/high-diameter structure for the circuit and CFD meshes — because
// those are the properties (key skew, iteration count) the paper's
// experiments exercise.
package graph

import (
	"fmt"
	"math/rand"
)

// Edge is one directed, optionally weighted edge.
type Edge struct {
	U, V uint64
	W    uint64
}

// Graph is a directed graph as a deterministic edge list.
type Graph struct {
	Name  string
	Nodes int
	Edges []Edge
	// MaxWeight is the largest edge weight (1 for unweighted graphs).
	MaxWeight uint64
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutDegrees returns each node's out-degree.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, g.Nodes)
	for _, e := range g.Edges {
		deg[e.U]++
	}
	return deg
}

// MaxOutDegree returns the largest out-degree — the skew statistic that
// drives sub-bucket balancing.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for _, d := range g.OutDegrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// dedup keys an edge ignoring weight.
type edgeKey struct{ u, v uint64 }

// assignWeights gives every edge a deterministic weight in [1, maxW].
func assignWeights(edges []Edge, maxW uint64, rng *rand.Rand) {
	for i := range edges {
		if maxW <= 1 {
			edges[i].W = 1
		} else {
			edges[i].W = uint64(rng.Intn(int(maxW))) + 1
		}
	}
}

// RMAT generates a recursive-matrix graph with the standard skewed
// partition (a, b, c, d) = (0.57, 0.19, 0.19, 0.05): a synthetic stand-in
// for social networks like Twitter, whose heavy-tailed out-degrees cause
// exactly the rank imbalance the paper's Figure 3 documents. scale sets the
// node count to 2^scale; self-loops and duplicate edges are dropped.
func RMAT(name string, scale, edges int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	g := &Graph{Name: name, Nodes: n, MaxWeight: maxW}
	seen := make(map[edgeKey]bool, edges)
	attempts := 0
	for len(g.Edges) < edges && attempts < edges*20 {
		attempts++
		var u, v uint64
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < 0.57:
				// top-left: neither bit set
			case r < 0.76:
				v |= 1 << uint(bit)
			case r < 0.95:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		k := edgeKey{u, v}
		if u == v || seen[k] {
			continue
		}
		seen[k] = true
		g.Edges = append(g.Edges, Edge{U: u, V: v})
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// Uniform generates an Erdős–Rényi-style graph: edges chosen uniformly at
// random without duplicates or self-loops. Low skew; a stand-in for
// balanced inputs.
func Uniform(name string, nodes, edges int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: nodes, MaxWeight: maxW}
	seen := make(map[edgeKey]bool, edges)
	for len(g.Edges) < edges {
		u, v := uint64(rng.Intn(nodes)), uint64(rng.Intn(nodes))
		k := edgeKey{u, v}
		if u == v || seen[k] {
			continue
		}
		seen[k] = true
		g.Edges = append(g.Edges, Edge{U: u, V: v})
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// Grid generates a rows×cols mesh with right and down neighbors (both
// directions): a high-diameter, perfectly balanced graph standing in for
// the circuit-simulation and CFD matrices (Freescale1, ML_Geer, HV15R,
// stokes) whose SSSP runs take hundreds of iterations in the paper's
// Table II.
func Grid(name string, rows, cols int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: rows * cols, MaxWeight: maxW}
	id := func(r, c int) uint64 { return uint64(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r, c+1)})
				g.Edges = append(g.Edges, Edge{U: id(r, c+1), V: id(r, c)})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r+1, c)})
				g.Edges = append(g.Edges, Edge{U: id(r+1, c), V: id(r, c)})
			}
		}
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// Grid3D generates an x×y×z mesh with the six axis neighbors in both
// directions: the dense, compact structure of 3-D CFD matrices like HV15R,
// whose SSSP converges in few iterations despite a very large edge count.
func Grid3D(name string, nx, ny, nz int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: nx * ny * nz, MaxWeight: maxW}
	id := func(x, y, z int) uint64 { return uint64((x*ny+y)*nz + z) }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				if x+1 < nx {
					g.Edges = append(g.Edges, Edge{U: id(x, y, z), V: id(x+1, y, z)})
					g.Edges = append(g.Edges, Edge{U: id(x+1, y, z), V: id(x, y, z)})
				}
				if y+1 < ny {
					g.Edges = append(g.Edges, Edge{U: id(x, y, z), V: id(x, y+1, z)})
					g.Edges = append(g.Edges, Edge{U: id(x, y+1, z), V: id(x, y, z)})
				}
				if z+1 < nz {
					g.Edges = append(g.Edges, Edge{U: id(x, y, z), V: id(x, y, z+1)})
					g.Edges = append(g.Edges, Edge{U: id(x, y, z+1), V: id(x, y, z)})
				}
			}
		}
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// PrefAttach generates a preferential-attachment graph: each new node
// attaches m out-edges to targets sampled from the existing endpoint
// multiset (Barabási–Albert flavor). Moderate skew; a stand-in for
// middle-of-the-road social graphs like LiveJournal and Orkut.
func PrefAttach(name string, nodes, m int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: nodes, MaxWeight: maxW}
	if nodes < 2 {
		return g
	}
	endpoints := []uint64{0}
	seen := map[edgeKey]bool{}
	for v := 1; v < nodes; v++ {
		for j := 0; j < m; j++ {
			t := endpoints[rng.Intn(len(endpoints))]
			k := edgeKey{uint64(v), t}
			if t == uint64(v) || seen[k] {
				continue
			}
			seen[k] = true
			g.Edges = append(g.Edges, Edge{U: uint64(v), V: t})
			endpoints = append(endpoints, t)
		}
		endpoints = append(endpoints, uint64(v))
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// Social generates an RMAT background plus a handful of hub nodes with very
// large out-degree — the "users with millions of followers" whose edges all
// hash to one bucket and cause the 10× rank imbalance of the paper's
// Figure 3. RMAT alone reproduces a heavy tail only at full Twitter scale;
// at this reproduction's scale the explicit hubs restore the
// max-degree-to-mean ratio that drives sub-bucket balancing.
func Social(name string, scale, edges, hubs, hubDeg int, maxW uint64, seed int64) *Graph {
	base := RMAT(name, scale, edges-hubs*hubDeg, maxW, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	n := base.Nodes
	seen := make(map[edgeKey]bool, len(base.Edges))
	for _, e := range base.Edges {
		seen[edgeKey{e.U, e.V}] = true
	}
	for h := 0; h < hubs; h++ {
		hub := uint64(rng.Intn(n))
		added, attempts := 0, 0
		for added < hubDeg && attempts < hubDeg*20 {
			attempts++
			v := uint64(rng.Intn(n))
			k := edgeKey{hub, v}
			if v == hub || seen[k] {
				continue
			}
			seen[k] = true
			w := uint64(1)
			if maxW > 1 {
				w = uint64(rng.Intn(int(maxW))) + 1
			}
			base.Edges = append(base.Edges, Edge{U: hub, V: v, W: w})
			added++
		}
	}
	return base
}

// Chain generates a simple directed path 0→1→…→n-1: the worst-case
// diameter used by iteration-bound tests.
func Chain(name string, nodes int, maxW uint64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: nodes, MaxWeight: maxW}
	for i := 0; i+1 < nodes; i++ {
		g.Edges = append(g.Edges, Edge{U: uint64(i), V: uint64(i + 1)})
	}
	assignWeights(g.Edges, maxW, rng)
	return g
}

// Sources picks k deterministic, distinct start nodes that have at least
// one outgoing edge (the paper selects arbitrary start nodes per graph).
func (g *Graph) Sources(k int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	deg := g.OutDegrees()
	var out []uint64
	seen := map[uint64]bool{}
	attempts := 0
	for len(out) < k && attempts < g.Nodes*20 {
		attempts++
		n := uint64(rng.Intn(g.Nodes))
		if seen[n] || deg[n] == 0 {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// Undirected returns the edge list with every edge mirrored (deduplicated),
// which CC queries load.
func (g *Graph) Undirected() []Edge {
	seen := make(map[edgeKey]bool, 2*len(g.Edges))
	out := make([]Edge, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		if !seen[edgeKey{e.U, e.V}] {
			seen[edgeKey{e.U, e.V}] = true
			out = append(out, e)
		}
		if !seen[edgeKey{e.V, e.U}] {
			seen[edgeKey{e.V, e.U}] = true
			out = append(out, Edge{U: e.V, V: e.U, W: e.W})
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d edges, maxdeg %d, maxw %d",
		g.Name, g.Nodes, len(g.Edges), g.MaxOutDegree(), g.MaxWeight)
}
