package graph

import (
	"bytes"
	"testing"
)

func TestRMATDeterministicAndSkewed(t *testing.T) {
	a := RMAT("r", 12, 20000, 1, 5)
	b := RMAT("r", 12, 20000, 1, 5)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("nondeterministic sizes: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	if len(a.Edges) < 19000 {
		t.Fatalf("generated only %d of 20000 edges", len(a.Edges))
	}
	// RMAT must be skewed: max out-degree far above the mean.
	mean := float64(len(a.Edges)) / float64(a.Nodes)
	if float64(a.MaxOutDegree()) < 8*mean {
		t.Fatalf("rmat not skewed: maxdeg %d, mean %.1f", a.MaxOutDegree(), mean)
	}
	// No self-loops or duplicates.
	seen := map[[2]uint64]bool{}
	for _, e := range a.Edges {
		if e.U == e.V {
			t.Fatalf("self loop %v", e)
		}
		k := [2]uint64{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
	}
}

func TestUniformLowSkew(t *testing.T) {
	g := Uniform("u", 2000, 20000, 1, 9)
	if len(g.Edges) != 20000 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	mean := float64(len(g.Edges)) / float64(g.Nodes)
	if float64(g.MaxOutDegree()) > 5*mean {
		t.Fatalf("uniform too skewed: maxdeg %d, mean %.1f", g.MaxOutDegree(), mean)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid("g", 4, 5, 3, 1)
	if g.Nodes != 20 {
		t.Fatalf("nodes = %d", g.Nodes)
	}
	// 4x5 grid: horizontal 4*4=16, vertical 3*5=15, both directions.
	if want := 2 * (16 + 15); len(g.Edges) != want {
		t.Fatalf("edges = %d, want %d", len(g.Edges), want)
	}
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 3 {
			t.Fatalf("weight %d out of range", e.W)
		}
	}
}

func TestPrefAttachConnectedAndSkewed(t *testing.T) {
	g := PrefAttach("p", 3000, 5, 1, 3)
	if g.MaxOutDegree() > 5 {
		t.Fatalf("out-degree exceeds m: %d", g.MaxOutDegree())
	}
	// In-degree skew is the point of preferential attachment.
	in := make([]int, g.Nodes)
	for _, e := range g.Edges {
		in[e.V]++
	}
	max := 0
	for _, d := range in {
		if d > max {
			max = d
		}
	}
	mean := float64(len(g.Edges)) / float64(g.Nodes)
	if float64(max) < 5*mean {
		t.Fatalf("prefattach in-degrees not skewed: max %d, mean %.1f", max, mean)
	}
}

func TestChain(t *testing.T) {
	g := Chain("c", 10, 1, 1)
	if len(g.Edges) != 9 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	for i, e := range g.Edges {
		if e.U != uint64(i) || e.V != uint64(i+1) {
			t.Fatalf("edge %d = %v", i, e)
		}
	}
}

func TestSources(t *testing.T) {
	g := Chain("c", 100, 1, 1)
	srcs := g.Sources(10, 5)
	if len(srcs) != 10 {
		t.Fatalf("sources = %d", len(srcs))
	}
	deg := g.OutDegrees()
	seen := map[uint64]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
		if deg[s] == 0 {
			t.Fatalf("source %d has no out-edges", s)
		}
	}
	// Deterministic.
	srcs2 := g.Sources(10, 5)
	for i := range srcs {
		if srcs[i] != srcs2[i] {
			t.Fatal("sources not deterministic")
		}
	}
}

func TestUndirectedMirrors(t *testing.T) {
	g := &Graph{Name: "m", Nodes: 3, MaxWeight: 1,
		Edges: []Edge{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}}}
	und := g.Undirected()
	if len(und) != 4 { // 0-1 both present already, plus 1-2 and 2-1
		t.Fatalf("undirected edges = %d, want 4", len(und))
	}
}

func TestCatalogAllEntriesBuild(t *testing.T) {
	for _, name := range Names() {
		g, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Nodes == 0 || len(g.Edges) == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		e, ok := Entry(name)
		if !ok || e.StandsFor == "" || e.PaperEdges == "" {
			t.Fatalf("%s: missing stand-in metadata", name)
		}
	}
}

func TestCatalogTableOrders(t *testing.T) {
	if len(TableI()) != 4 || len(TableII()) != 8 {
		t.Fatalf("table lists: %d, %d", len(TableI()), len(TableII()))
	}
	for _, n := range append(TableI(), TableII()...) {
		if _, ok := Entry(n); !ok {
			t.Fatalf("table references unknown entry %s", n)
		}
	}
}

func TestCatalogUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown entry loaded")
	}
}

func TestCatalogSizeOrderingMatchesPaper(t *testing.T) {
	// Table II's stand-ins should preserve the rough size ordering of the
	// originals: arabic (largest) > flickr (smallest).
	big, _ := Load("arabic-sim")
	small, _ := Load("flickr-sim")
	if len(big.Edges) <= len(small.Edges) {
		t.Fatalf("size ordering inverted: arabic %d <= flickr %d", len(big.Edges), len(small.Edges))
	}
	tw, _ := Load("twitter-sim")
	mean := float64(len(tw.Edges)) / float64(tw.Nodes)
	if float64(tw.MaxOutDegree()) < 8*mean {
		t.Fatalf("twitter-sim lacks the skew that drives Fig. 3: maxdeg %d mean %.1f",
			tw.MaxOutDegree(), mean)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := Uniform("rt", 100, 500, 7, 21)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.Nodes != 100 || got.MaxWeight != 7 {
		t.Fatalf("header: %s %d %d", got.Name, got.Nodes, got.MaxWeight)
	}
	if len(got.Edges) != len(g.Edges) {
		t.Fatalf("edges = %d, want %d", len(got.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d: %v vs %v", i, g.Edges[i], got.Edges[i])
		}
	}
}

func TestReadWeightlessEdges(t *testing.T) {
	in := bytes.NewBufferString("# g 0 0\n1 2\n3 4\n")
	g, err := Read(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 || g.Edges[0].W != 1 {
		t.Fatalf("edges = %v", g.Edges)
	}
	if g.Nodes != 5 {
		t.Fatalf("nodes grew to %d, want 5", g.Nodes)
	}
}

func TestGrid3DShape(t *testing.T) {
	g := Grid3D("g3", 3, 4, 5, 2, 1)
	if g.Nodes != 60 {
		t.Fatalf("nodes = %d", g.Nodes)
	}
	// Axis edges: x: 2*4*5, y: 3*3*5, z: 3*4*4 — times two directions.
	want := 2 * (2*4*5 + 3*3*5 + 3*4*4)
	if len(g.Edges) != want {
		t.Fatalf("edges = %d, want %d", len(g.Edges), want)
	}
	// Every node should have degree <= 6.
	for _, d := range g.OutDegrees() {
		if d > 6 {
			t.Fatalf("3d grid degree %d > 6", d)
		}
	}
}

func TestSocialHubSkew(t *testing.T) {
	g := Social("s", 13, 40000, 3, 5000, 5, 9)
	if g.MaxOutDegree() < 4500 {
		t.Fatalf("hub degree %d, want ~5000", g.MaxOutDegree())
	}
	if len(g.Edges) < 38000 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	// No duplicates even between the RMAT part and hub edges.
	seen := map[[2]uint64]bool{}
	for _, e := range g.Edges {
		k := [2]uint64{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
	}
	// Deterministic.
	g2 := Social("s", 13, 40000, 3, 5000, 5, 9)
	if len(g2.Edges) != len(g.Edges) || g2.Edges[len(g2.Edges)-1] != g.Edges[len(g.Edges)-1] {
		t.Fatal("social generator not deterministic")
	}
}
