package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Write streams the graph as a text edge list: a header line
// "# name nodes maxweight" followed by "u v w" lines.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s %d %d\n", g.Name, g.Nodes, g.MaxWeight); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the graph to a path.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a graph written by Write. Lines starting with '#' after the
// header are skipped, so SNAP-style comments load too; nodes grows to cover
// any endpoint seen.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{Name: "loaded", MaxWeight: 1}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first {
				var name string
				var nodes int
				var maxw uint64
				if n, _ := fmt.Sscanf(line, "# %s %d %d", &name, &nodes, &maxw); n == 3 {
					g.Name, g.Nodes, g.MaxWeight = name, nodes, maxw
				}
				first = false
			}
			continue
		}
		first = false
		var u, v, w uint64
		n, err := fmt.Sscanf(line, "%d %d %d", &u, &v, &w)
		if err != nil && n < 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		if n < 3 {
			w = 1
		}
		g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
		for _, x := range []uint64{u, v} {
			if int(x) >= g.Nodes {
				g.Nodes = int(x) + 1
			}
		}
		if w > g.MaxWeight {
			g.MaxWeight = w
		}
	}
	return g, sc.Err()
}

// ReadFile loads a graph from a path.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
