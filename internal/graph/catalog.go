package graph

import (
	"fmt"
	"sort"
)

// CatalogEntry describes one named dataset: which paper input it stands in
// for, how it is generated, and the paper-reported scale for context in the
// experiment output.
type CatalogEntry struct {
	Name string
	// Stands For / PaperEdges document the original input.
	StandsFor  string
	PaperEdges string
	// Kind is the generator family: rmat, uniform, grid, prefattach.
	Kind string
	// Generation parameters (interpretation depends on Kind).
	Scale, Nodes, Edges, Rows, Cols, M int
	NX, NY, NZ                         int
	Hubs, HubDeg                       int
	MaxWeight                          uint64
	Seed                               int64
}

// Build generates the entry's graph.
func (e CatalogEntry) Build() *Graph {
	switch e.Kind {
	case "rmat":
		return RMAT(e.Name, e.Scale, e.Edges, e.MaxWeight, e.Seed)
	case "social":
		return Social(e.Name, e.Scale, e.Edges, e.Hubs, e.HubDeg, e.MaxWeight, e.Seed)
	case "grid3d":
		return Grid3D(e.Name, e.NX, e.NY, e.NZ, e.MaxWeight, e.Seed)
	case "uniform":
		return Uniform(e.Name, e.Nodes, e.Edges, e.MaxWeight, e.Seed)
	case "grid":
		return Grid(e.Name, e.Rows, e.Cols, e.MaxWeight, e.Seed)
	case "prefattach":
		return PrefAttach(e.Name, e.Nodes, e.M, e.MaxWeight, e.Seed)
	}
	panic(fmt.Sprintf("graph: unknown generator kind %q", e.Kind))
}

// catalog maps the paper's evaluation inputs to deterministic synthetic
// stand-ins. Edge counts are scaled down ~10^4× from the originals (the
// originals need a supercomputer's memory); the *relative* ordering of
// sizes and the skew/diameter character of each family are preserved, which
// is what Table I, Table II, and Figures 2–7 exercise.
var catalog = map[string]CatalogEntry{
	// §V: Twitter-2010, 1.47B edges, extreme out-degree skew. The paper's
	// strong-scaling and RQ1 workload.
	"twitter-sim": {
		Name: "twitter-sim", StandsFor: "Twitter-2010 snapshot", PaperEdges: "1.47B",
		Kind: "social", Scale: 13, Edges: 140000, Hubs: 5, HubDeg: 12000, MaxWeight: 10, Seed: 42,
	},
	// Table I: SNAP graphs.
	"livejournal-sim": {
		Name: "livejournal-sim", StandsFor: "SNAP soc-LiveJournal1", PaperEdges: "~100M",
		Kind: "prefattach", Nodes: 12000, M: 7, MaxWeight: 10, Seed: 7,
	},
	"orkut-sim": {
		Name: "orkut-sim", StandsFor: "SNAP com-Orkut", PaperEdges: "~100M",
		Kind: "prefattach", Nodes: 9000, M: 9, MaxWeight: 10, Seed: 11,
	},
	"topcats-sim": {
		Name: "topcats-sim", StandsFor: "SNAP wiki-topcats", PaperEdges: "25M",
		Kind: "uniform", Nodes: 5000, Edges: 20000, MaxWeight: 10, Seed: 13,
	},
	// Table II: SuiteSparse graphs, ordered by paper edge count.
	"flickr-sim": {
		Name: "flickr-sim", StandsFor: "SuiteSparse flickr", PaperEdges: "9.8M",
		Kind: "rmat", Scale: 11, Edges: 8000, MaxWeight: 10, Seed: 17,
	},
	"freescale1-sim": {
		Name: "freescale1-sim", StandsFor: "SuiteSparse Freescale1 (circuit)", PaperEdges: "19.0M",
		Kind: "grid", Rows: 55, Cols: 70, MaxWeight: 10, Seed: 19,
	},
	"wiki-sim": {
		Name: "wiki-sim", StandsFor: "SuiteSparse wikipedia", PaperEdges: "37.2M",
		Kind: "rmat", Scale: 12, Edges: 30000, MaxWeight: 100, Seed: 23,
	},
	"wb-edu-sim": {
		Name: "wb-edu-sim", StandsFor: "SuiteSparse wb-edu (web crawl)", PaperEdges: "57.2M",
		Kind: "rmat", Scale: 13, Edges: 46000, MaxWeight: 60, Seed: 29,
	},
	"ml-geer-sim": {
		Name: "ml-geer-sim", StandsFor: "SuiteSparse ML_Geer (CFD mesh)", PaperEdges: "110.8M",
		Kind: "grid", Rows: 100, Cols: 160, MaxWeight: 10, Seed: 31,
	},
	"hv15r-sim": {
		Name: "hv15r-sim", StandsFor: "SuiteSparse HV15R (CFD)", PaperEdges: "283.1M",
		Kind: "grid3d", NX: 25, NY: 25, NZ: 35, MaxWeight: 10, Seed: 37,
	},
	"arabic-sim": {
		Name: "arabic-sim", StandsFor: "SuiteSparse arabic-2005 (web crawl)", PaperEdges: "640.0M",
		Kind: "rmat", Scale: 14, Edges: 130000, MaxWeight: 10, Seed: 41,
	},
	"stokes-sim": {
		Name: "stokes-sim", StandsFor: "SuiteSparse stokes", PaperEdges: "349.3M",
		Kind: "grid", Rows: 105, Cols: 150, MaxWeight: 10, Seed: 43,
	},
}

// Load builds a catalog graph by name.
func Load(name string) (*Graph, error) {
	e, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("graph: unknown catalog entry %q (have %v)", name, Names())
	}
	return e.Build(), nil
}

// Entry returns a catalog entry's metadata.
func Entry(name string) (CatalogEntry, bool) {
	e, ok := catalog[name]
	return e, ok
}

// Names lists the catalog in sorted order.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableII lists the Table II graphs in the paper's row order.
func TableII() []string {
	return []string{
		"flickr-sim", "freescale1-sim", "wiki-sim", "wb-edu-sim",
		"ml-geer-sim", "hv15r-sim", "arabic-sim", "stokes-sim",
	}
}

// TableI lists the Table I graphs in the paper's row order.
func TableI() []string {
	return []string{"livejournal-sim", "orkut-sim", "topcats-sim", "twitter-sim"}
}
