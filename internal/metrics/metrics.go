// Package metrics collects per-rank, per-iteration, per-phase accounting for
// the runtime and turns it into the quantities the paper reports: phase
// breakdowns (Fig. 2), per-iteration profiles (Fig. 7), and strong-scaling
// series (Figs. 4–6).
//
// Because this reproduction runs all ranks on one host, wall-clock time does
// not reflect parallel execution. Instead every kernel records deterministic
// work counters (tuples scanned, tree probes, tuples inserted) and the
// communication substrate records bytes and messages; a configurable cost
// model converts them to simulated time, and the simulated *parallel* time
// of a phase is the maximum over ranks (the critical path), summed over
// iterations. Real CPU time is recorded too and reported alongside.
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"paralagg/internal/obs"
)

// TrackAllocs enables per-phase heap-allocation accounting: when set before
// a run, every Timer captures runtime.MemStats.Mallocs at start and finish
// and the delta lands in Sample.Allocs. It is off by default because
// ReadMemStats briefly stops the world — enable it only for allocation
// profiling runs, never while timing. The counter is process-wide, so with
// more than one rank goroutine the per-phase attribution is approximate
// (totals remain exact).
var TrackAllocs bool

// Phase identifies one stage of an iteration, in the order the paper's
// Figure 1 presents them.
type Phase int

// The iteration phases. Other covers fixpoint bookkeeping such as the
// changed-count reduction and, at high rank counts, the sub-bucket
// rebalancing traffic the paper's Figure 6 attributes to "Other".
// Checkpoint, Recovery, and Remap meter the fault-tolerance overheads:
// periodic relation snapshots during the fixpoint, same-size snapshot reload
// on restart, and the re-hash/re-merge pass that restores a checkpoint into
// a world of a different size. Integrity meters the per-iteration state
// fingerprinting behind online divergence detection.
const (
	PhaseRebalance Phase = iota
	PhasePlanning
	PhaseIntraBucket
	PhaseLocalJoin
	PhaseAllToAll
	PhaseLocalAgg
	PhaseOther
	PhaseCheckpoint
	PhaseRecovery
	PhaseRemap
	PhaseIntegrity
	numPhases
)

// PhaseNames lists the display names in Phase order.
var PhaseNames = [...]string{
	PhaseRebalance:   "rebalance",
	PhasePlanning:    "planning",
	PhaseIntraBucket: "intra-bucket",
	PhaseLocalJoin:   "local-join",
	PhaseAllToAll:    "all-to-all",
	PhaseLocalAgg:    "local-agg",
	PhaseOther:       "other",
	PhaseCheckpoint:  "checkpoint",
	PhaseRecovery:    "recovery",
	PhaseRemap:       "remap",
	PhaseIntegrity:   "integrity",
}

func (p Phase) String() string {
	if p >= 0 && int(p) < len(PhaseNames) {
		return PhaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Sample is one rank's accounting for one phase of one iteration.
type Sample struct {
	Work   int64         // abstract work units: probes, comparisons, inserts
	Bytes  int64         // payload bytes this rank moved in the phase
	Msgs   int64         // messages / collective participations
	CPU    time.Duration // measured host time in the phase
	Allocs int64         // heap allocations in the phase (TrackAllocs only)
	// CrossBytes and CrossMsgs are the subset of Bytes/Msgs that crossed a
	// host boundary under the run's topology. They are already included in
	// Bytes/Msgs; the cost model prices them with an additional surcharge.
	CrossBytes int64
	CrossMsgs  int64
}

// Add accumulates s2 into s.
func (s *Sample) Add(s2 Sample) {
	s.Work += s2.Work
	s.Bytes += s2.Bytes
	s.Msgs += s2.Msgs
	s.CPU += s2.CPU
	s.Allocs += s2.Allocs
	s.CrossBytes += s2.CrossBytes
	s.CrossMsgs += s2.CrossMsgs
}

// CostModel converts a Sample to simulated nanoseconds. The defaults model a
// commodity cluster: 40 ns per work unit (one B-tree descent level or tuple
// merge is a cache-missy pointer chase, not an ALU op), 0.25 ns per byte
// (~4 GB/s effective per-rank bandwidth), and 2 µs per message (injection +
// software latency).
//
// CrossByteNS and CrossMsgNS price non-uniform links: they are surcharges
// added on top of ByteNS/MsgNS for the bytes/messages a Sample reports as
// crossing a host boundary. The defaults are zero (a uniform fabric), so
// runs without a topology are costed exactly as before.
type CostModel struct {
	WorkUnitNS  float64
	ByteNS      float64
	MsgNS       float64
	CrossByteNS float64
	CrossMsgNS  float64
}

// DefaultCostModel is used by all experiments unless overridden.
var DefaultCostModel = CostModel{WorkUnitNS: 40, ByteNS: 0.25, MsgNS: 2000}

// Cost returns the simulated nanoseconds s takes under m.
func (m CostModel) Cost(s Sample) float64 {
	return m.WorkUnitNS*float64(s.Work) + m.ByteNS*float64(s.Bytes) + m.MsgNS*float64(s.Msgs) +
		m.CrossByteNS*float64(s.CrossBytes) + m.CrossMsgNS*float64(s.CrossMsgs)
}

// Collector accumulates samples for one run. Each rank writes only its own
// slot from its own goroutine; reports are built after the SPMD body
// completes (World.Run's return synchronizes the memory).
type Collector struct {
	ranks []rankSeries

	// observer, when set, receives a live obs.KindPhase event for every
	// Record call — the same accounting the post-hoc report reduces, but
	// streamed as it happens. nil (the default) adds no work and no
	// allocations to the hot path.
	observer obs.Observer
	// stratum is the currently running stratum, published by the program
	// driver so phase events carry it. Ranks run strata in lockstep, so a
	// single atomic shared by all rank goroutines stays consistent.
	stratum atomic.Int32
}

type rankSeries struct {
	iters []iterSamples
}

type iterSamples [numPhases]Sample

// NewCollector returns a collector for a world of the given size.
func NewCollector(size int) *Collector {
	return &Collector{ranks: make([]rankSeries, size)}
}

// Ranks returns the world size the collector was created for.
func (c *Collector) Ranks() int { return len(c.ranks) }

// SetObserver attaches a live event stream to the collector: every Record
// call additionally emits an obs.KindPhase event. Set it before the run
// starts; nil detaches.
func (c *Collector) SetObserver(o obs.Observer) { c.observer = o }

// Observer returns the attached live event stream (nil when disabled). The
// runtime's other emitters (fixpoint loop, join planner) route their events
// through it so one attachment observes everything.
func (c *Collector) Observer() obs.Observer { return c.observer }

// SetStratum publishes the currently running stratum for event attribution.
// Every rank calls it with the same value at each stratum boundary.
func (c *Collector) SetStratum(s int) { c.stratum.Store(int32(s)) }

// Stratum returns the last published stratum.
func (c *Collector) Stratum() int { return int(c.stratum.Load()) }

// Iterations returns the number of iterations recorded (the maximum across
// ranks; ranks always agree because iterations are collectively
// synchronized).
func (c *Collector) Iterations() int {
	n := 0
	for i := range c.ranks {
		if len(c.ranks[i].iters) > n {
			n = len(c.ranks[i].iters)
		}
	}
	return n
}

// Record adds a sample for (rank, iter, phase). Iterations may be recorded
// out of order but are usually appended; the series grows as needed. Only
// rank's own goroutine may call Record for that rank.
func (c *Collector) Record(rank, iter int, phase Phase, s Sample) {
	rs := &c.ranks[rank]
	for len(rs.iters) <= iter {
		rs.iters = append(rs.iters, iterSamples{})
	}
	rs.iters[iter][phase].Add(s)
	if c.observer != nil {
		e := obs.Get()
		e.Kind = obs.KindPhase
		e.Rank, e.Stratum, e.Iter = rank, c.Stratum(), iter
		e.Phase, e.Name = int(phase), PhaseNames[phase]
		e.End = time.Now().UnixNano()
		e.Start = e.End - s.CPU.Nanoseconds()
		e.Work, e.Bytes, e.Msgs = s.Work, s.Bytes, s.Msgs
		e.CPUNanos, e.Allocs = s.CPU.Nanoseconds(), s.Allocs
		obs.Emit(c.observer, e)
	}
}

// Timer helps a rank meter a phase: t := StartTimer(); ... ;
// c.Record(rank, iter, phase, t.Done(work, bytes, msgs)).
type Timer struct {
	start   time.Time
	mallocs uint64 // MemStats.Mallocs at start (TrackAllocs only)
}

// mallocCount reads the process-wide cumulative allocation counter.
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// StartTimer begins timing a phase.
func StartTimer() Timer {
	t := Timer{start: time.Now()}
	if TrackAllocs {
		t.mallocs = mallocCount()
	}
	return t
}

// Done finishes the timer and packages the counters into a Sample.
func (t Timer) Done(work, bytes, msgs int64) Sample {
	s := Sample{Work: work, Bytes: bytes, Msgs: msgs, CPU: time.Since(t.start)}
	if TrackAllocs {
		s.Allocs = int64(mallocCount() - t.mallocs)
	}
	return s
}

// PhaseTotal is a phase's aggregate across a run.
type PhaseTotal struct {
	Phase Phase
	// CriticalNS is the simulated parallel time: sum over iterations of the
	// per-iteration maximum over ranks.
	CriticalNS float64
	// SumNS is the total simulated work across all ranks (the "resource"
	// view); SumNS / (ranks × CriticalNS) is the phase's efficiency.
	SumNS float64
	// CPU is total measured host time across ranks.
	CPU time.Duration
	// Bytes and Msgs total the communication in the phase; CrossBytes and
	// CrossMsgs are the cross-host subset.
	Bytes      int64
	Msgs       int64
	CrossBytes int64
	CrossMsgs  int64
	// Allocs totals heap allocations attributed to the phase across ranks
	// (zero unless the run had TrackAllocs set).
	Allocs int64
}

// Report is the run-level summary derived from a Collector.
type Report struct {
	Ranks      int
	Iterations int
	Phases     [numPhases]PhaseTotal
	// CriticalNS is total simulated parallel time: the sum of phase
	// critical paths.
	CriticalNS float64
	// IterCriticalNS breaks the critical path down per iteration and phase
	// (Fig. 7's series).
	IterCriticalNS [][numPhases]float64
}

// BuildReport reduces the collector under the cost model. It must only be
// called after the SPMD run completes.
func (c *Collector) BuildReport(m CostModel) *Report {
	iters := c.Iterations()
	r := &Report{Ranks: len(c.ranks), Iterations: iters}
	r.IterCriticalNS = make([][numPhases]float64, iters)
	for p := Phase(0); p < numPhases; p++ {
		r.Phases[p].Phase = p
	}
	for it := 0; it < iters; it++ {
		for p := Phase(0); p < numPhases; p++ {
			maxCost := 0.0
			for rank := range c.ranks {
				if it >= len(c.ranks[rank].iters) {
					continue
				}
				s := c.ranks[rank].iters[it][p]
				cost := m.Cost(s)
				if cost > maxCost {
					maxCost = cost
				}
				pt := &r.Phases[p]
				pt.SumNS += cost
				pt.CPU += s.CPU
				pt.Bytes += s.Bytes
				pt.Msgs += s.Msgs
				pt.CrossBytes += s.CrossBytes
				pt.CrossMsgs += s.CrossMsgs
				pt.Allocs += s.Allocs
			}
			r.Phases[p].CriticalNS += maxCost
			r.IterCriticalNS[it][p] = maxCost
			r.CriticalNS += maxCost
		}
	}
	return r
}

// SimSeconds returns the simulated parallel runtime in seconds.
func (r *Report) SimSeconds() float64 { return r.CriticalNS / 1e9 }

// PhaseSeconds returns the simulated parallel seconds spent in phase p.
func (r *Report) PhaseSeconds(p Phase) float64 { return r.Phases[p].CriticalNS / 1e9 }

// String renders a compact phase-breakdown table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranks=%d iters=%d sim=%.3fs\n", r.Ranks, r.Iterations, r.SimSeconds())
	for p := Phase(0); p < numPhases; p++ {
		pt := r.Phases[p]
		if pt.SumNS == 0 && pt.Bytes == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s crit=%9.3fms sum=%9.3fms bytes=%d msgs=%d",
			pt.Phase, pt.CriticalNS/1e6, pt.SumNS/1e6, pt.Bytes, pt.Msgs)
		if pt.CrossBytes > 0 || pt.CrossMsgs > 0 {
			fmt.Fprintf(&b, " cross-bytes=%d cross-msgs=%d", pt.CrossBytes, pt.CrossMsgs)
		}
		if pt.Allocs > 0 {
			fmt.Fprintf(&b, " allocs=%d", pt.Allocs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CDF computes the cumulative distribution of a per-rank quantity (used for
// the paper's Figure 3 tuple-distribution plot): the returned slice is the
// sorted values, so that point i is the (i+1)/len quantile.
func CDF(perRank []int) []int {
	out := append([]int(nil), perRank...)
	sort.Ints(out)
	return out
}

// ImbalanceRatio returns max/min over the per-rank values, the paper's
// headline skew statistic ("the largest rank had ten times more tuples than
// the smallest"). Zero minima are clamped to 1 to keep the ratio finite.
func ImbalanceRatio(perRank []int) float64 {
	if len(perRank) == 0 {
		return 1
	}
	min, max := perRank[0], perRank[0]
	for _, v := range perRank[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 1 {
		min = 1
	}
	return float64(max) / float64(min)
}
