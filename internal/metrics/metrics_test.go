package metrics

import (
	"math"
	"testing"
	"time"
)

func TestRecordAndReportCriticalPath(t *testing.T) {
	c := NewCollector(2)
	m := CostModel{WorkUnitNS: 1, ByteNS: 0, MsgNS: 0}
	// Iteration 0: rank 0 does 10 units, rank 1 does 30 in local-join.
	c.Record(0, 0, PhaseLocalJoin, Sample{Work: 10})
	c.Record(1, 0, PhaseLocalJoin, Sample{Work: 30})
	// Iteration 1: balanced 20/20.
	c.Record(0, 1, PhaseLocalJoin, Sample{Work: 20})
	c.Record(1, 1, PhaseLocalJoin, Sample{Work: 20})
	r := c.BuildReport(m)
	if r.Iterations != 2 || r.Ranks != 2 {
		t.Fatalf("iters=%d ranks=%d", r.Iterations, r.Ranks)
	}
	// Critical path = max(10,30) + max(20,20) = 50; sum = 80.
	lj := r.Phases[PhaseLocalJoin]
	if lj.CriticalNS != 50 {
		t.Errorf("critical = %v", lj.CriticalNS)
	}
	if lj.SumNS != 80 {
		t.Errorf("sum = %v", lj.SumNS)
	}
	if r.CriticalNS != 50 {
		t.Errorf("total critical = %v", r.CriticalNS)
	}
	if r.IterCriticalNS[0][PhaseLocalJoin] != 30 || r.IterCriticalNS[1][PhaseLocalJoin] != 20 {
		t.Errorf("iter breakdown: %v", r.IterCriticalNS)
	}
}

func TestRecordAccumulatesWithinPhase(t *testing.T) {
	c := NewCollector(1)
	c.Record(0, 0, PhaseAllToAll, Sample{Bytes: 100, Msgs: 1})
	c.Record(0, 0, PhaseAllToAll, Sample{Bytes: 50, Msgs: 2})
	r := c.BuildReport(CostModel{ByteNS: 1, MsgNS: 10})
	at := r.Phases[PhaseAllToAll]
	if at.Bytes != 150 || at.Msgs != 3 {
		t.Fatalf("bytes=%d msgs=%d", at.Bytes, at.Msgs)
	}
	want := 150.0 + 30.0
	if math.Abs(at.CriticalNS-want) > 1e-9 {
		t.Fatalf("critical = %v, want %v", at.CriticalNS, want)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{WorkUnitNS: 2, ByteNS: 0.5, MsgNS: 1000}
	got := m.Cost(Sample{Work: 10, Bytes: 100, Msgs: 2})
	want := 20 + 50 + 2000.0
	if got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestTimerProducesCPU(t *testing.T) {
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	s := tm.Done(5, 6, 7)
	if s.Work != 5 || s.Bytes != 6 || s.Msgs != 7 {
		t.Fatalf("sample = %+v", s)
	}
	if s.CPU < 500*time.Microsecond {
		t.Fatalf("CPU = %v, expected >= ~1ms", s.CPU)
	}
}

func TestIterationsRaggedRanks(t *testing.T) {
	c := NewCollector(3)
	c.Record(0, 0, PhaseLocalJoin, Sample{Work: 1})
	c.Record(2, 4, PhaseLocalJoin, Sample{Work: 1})
	if c.Iterations() != 5 {
		t.Fatalf("Iterations = %d", c.Iterations())
	}
	// Ranks with fewer recorded iterations contribute zero to later ones.
	r := c.BuildReport(CostModel{WorkUnitNS: 1})
	if r.Phases[PhaseLocalJoin].CriticalNS != 2 {
		t.Fatalf("critical = %v", r.Phases[PhaseLocalJoin].CriticalNS)
	}
}

func TestCDF(t *testing.T) {
	got := CDF([]int{5, 1, 3})
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v", got)
		}
	}
	// Input must not be mutated.
	in := []int{9, 2}
	CDF(in)
	if in[0] != 9 {
		t.Fatal("CDF mutated input")
	}
}

func TestImbalanceRatio(t *testing.T) {
	if got := ImbalanceRatio([]int{10, 100, 50}); got != 10 {
		t.Fatalf("ratio = %v", got)
	}
	if got := ImbalanceRatio([]int{0, 7}); got != 7 {
		t.Fatalf("zero-clamped ratio = %v", got)
	}
	if got := ImbalanceRatio(nil); got != 1 {
		t.Fatalf("empty ratio = %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseLocalJoin.String() != "local-join" {
		t.Error("phase name wrong")
	}
	if Phase(99).String() != "phase(99)" {
		t.Error("unknown phase name wrong")
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(1)
	c.Record(0, 0, PhaseLocalJoin, Sample{Work: 100})
	s := c.BuildReport(DefaultCostModel).String()
	if len(s) == 0 {
		t.Fatal("empty report string")
	}
}
