package metrics

import "testing"

// TestTrackAllocsCountsPhaseAllocations verifies the gated allocation
// counter: with TrackAllocs set, a phase that allocates reports a positive
// Sample.Allocs that flows through Record into the report totals; with it
// unset, Allocs stays zero.
func TestTrackAllocsCountsPhaseAllocations(t *testing.T) {
	defer func() { TrackAllocs = false }()

	TrackAllocs = false
	timer := StartTimer()
	sink = make([]byte, 4096)
	if s := timer.Done(1, 0, 0); s.Allocs != 0 {
		t.Fatalf("Allocs=%d with TrackAllocs off, want 0", s.Allocs)
	}

	TrackAllocs = true
	timer = StartTimer()
	for i := 0; i < 8; i++ {
		sink = make([]byte, 4096)
	}
	s := timer.Done(1, 0, 0)
	if s.Allocs <= 0 {
		t.Fatalf("Allocs=%d with TrackAllocs on, want > 0", s.Allocs)
	}

	c := NewCollector(1)
	c.Record(0, 0, PhaseLocalAgg, s)
	r := c.BuildReport(DefaultCostModel)
	if r.Phases[PhaseLocalAgg].Allocs != s.Allocs {
		t.Fatalf("report Allocs=%d, want %d", r.Phases[PhaseLocalAgg].Allocs, s.Allocs)
	}
}

// sink defeats dead-store elimination of the measured allocations.
var sink []byte
