package core

import (
	"fmt"
	"sort"
	"time"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/obs"
	"paralagg/internal/ra"
	"paralagg/internal/relation"
	"paralagg/internal/resource"
	"paralagg/internal/tuple"
)

// Config tunes an instantiated program.
type Config struct {
	// Subs is the default sub-bucket count per relation (spatial load
	// balancing); 1 disables it.
	Subs int
	// SubsFor overrides Subs for specific relations.
	SubsFor map[string]int
	// Plan selects the join-layout strategy.
	Plan ra.PlanMode
	// MaxIters bounds each stratum's fixpoint (0 = run to fixpoint).
	MaxIters int
	// Adaptive enables per-iteration spatial rebalancing (Fig. 1's
	// balancing phase): skewed relations double their sub-bucket count on
	// the fly instead of relying on a static Subs setting.
	Adaptive bool
	// CheckpointEvery, with Checkpoints set, snapshots every relation of
	// the program every CheckpointEvery fixpoint iterations so a crashed
	// run can Resume. 0 disables checkpointing.
	CheckpointEvery int
	// Checkpoints stores the per-rank snapshots.
	Checkpoints ra.CheckpointSink
	// Integrity turns on online divergence detection: every relation
	// fingerprints its state each iteration and the digests ride on the
	// convergence agreement. Must be identical on all ranks.
	Integrity bool
	// Acct is this rank's memory accountant; with a positive budget every
	// stratum's fixpoint runs the pressure ladder (see ra.Options.Acct).
	// Whether it is set must be identical on all ranks.
	Acct *resource.Accountant
}

// Instance is one rank's executable form of a Program: relations created,
// rules stratified and compiled onto kernels. Every rank of the world must
// Instantiate the identical program with the identical config, then perform
// the same Load and Run calls.
type Instance struct {
	comm   *mpi.Comm
	mc     *metrics.Collector
	rels   map[string]*relation.Relation
	strata []*stratum
}

type stratum struct {
	fix *ra.Fixpoint
	// inputs are the relations read but not written by this stratum, in
	// name order; their Δ is re-seeded before the stratum runs.
	inputs []*relation.Relation
}

// Instantiate validates, rewrites, stratifies, and compiles the program for
// this rank. It registers every index the rules need, so it must run before
// facts are loaded.
func (p *Program) Instantiate(comm *mpi.Comm, mc *metrics.Collector, cfg Config) (*Instance, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rules, extraDecls, err := rewriteRules(p.rules)
	if err != nil {
		return nil, err
	}
	decls := make(map[string]*Decl, len(p.decls)+len(extraDecls))
	var names []string
	for n, d := range p.decls {
		decls[n] = d
		names = append(names, n)
	}
	for _, d := range extraDecls {
		decls[d.Name] = d
		names = append(names, d.Name)
	}
	sort.Strings(names)

	in := &Instance{comm: comm, mc: mc, rels: make(map[string]*relation.Relation, len(names))}
	for _, n := range names {
		d := decls[n]
		subs := cfg.Subs
		if s, ok := cfg.SubsFor[n]; ok {
			subs = s
		}
		rel, err := relation.New(relation.Schema{
			Name: d.Name, Arity: d.Arity, Indep: d.Indep, Key: d.Key, Agg: d.Agg,
		}, comm, mc, relation.Config{Subs: subs, Integrity: cfg.Integrity})
		if err != nil {
			return nil, err
		}
		in.rels[n] = rel
	}

	strata := p.stratify(rules)
	for _, ruleSet := range strata {
		kernels := make([]ra.Rule, 0, len(ruleSet))
		heads := map[string]bool{}
		bodies := map[string]bool{}
		for _, r := range ruleSet {
			k, err := compileRule(r, decls, in.rels)
			if err != nil {
				return nil, err
			}
			kernels = append(kernels, k)
			heads[r.Head.Rel] = true
			for _, a := range r.Body {
				bodies[a.Rel] = true
			}
		}
		st := &stratum{fix: ra.NewFixpoint(comm, mc, kernels...)}
		var inputNames []string
		for b := range bodies {
			if !heads[b] {
				inputNames = append(inputNames, b)
			}
		}
		sort.Strings(inputNames)
		for _, n := range inputNames {
			st.inputs = append(st.inputs, in.rels[n])
		}
		in.strata = append(in.strata, st)
	}
	return in, nil
}

// Relation returns this rank's handle on a relation, or nil if undeclared.
func (in *Instance) Relation(name string) *relation.Relation { return in.rels[name] }

// Load feeds base facts (canonical column order) into a relation through
// the collective materialization path. Each rank passes its own share; the
// union across ranks is loaded.
func (in *Instance) Load(name string, facts *tuple.Buffer) error {
	rel := in.rels[name]
	if rel == nil {
		return fmt.Errorf("core: load into undeclared relation %s", name)
	}
	rel.LoadFacts(facts)
	return nil
}

// LoadShare deterministically splits n generated facts across ranks and
// loads them; gen must be identical on every rank.
func (in *Instance) LoadShare(name string, n int, gen func(i int, emit func(tuple.Tuple))) error {
	rel := in.rels[name]
	if rel == nil {
		return fmt.Errorf("core: load into undeclared relation %s", name)
	}
	rel.LoadShare(n, gen)
	return nil
}

// RunStats summarizes a program run.
type RunStats struct {
	// StratumIters is the iteration count of each stratum's fixpoint.
	StratumIters []int
	// TotalIters sums them.
	TotalIters int
}

// options builds the fixpoint options for one stratum, wiring checkpoint
// settings through when configured.
func (in *Instance) options(cfg Config, stratum int) ra.Options {
	opts := ra.Options{Plan: cfg.Plan, MaxIters: cfg.MaxIters, AdaptiveBalance: cfg.Adaptive, Stratum: stratum, Acct: cfg.Acct}
	if cfg.Checkpoints != nil {
		// CheckpointEvery only gates periodic saves; a sink alone still
		// supports Resume (restore without further checkpointing).
		opts.CheckpointEvery = cfg.CheckpointEvery
		opts.Sink = cfg.Checkpoints
		opts.Stratum = stratum
		opts.SnapshotRels = in.snapshotRels()
	}
	return opts
}

// snapshotRels returns every relation of the program in name order — the
// set a checkpoint captures. Snapshotting the whole program (not just the
// running stratum's relations) lets Resume skip completed strata outright
// and wipe any partially mutated later state.
func (in *Instance) snapshotRels() []*relation.Relation {
	names := make([]string, 0, len(in.rels))
	for n := range in.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	rels := make([]*relation.Relation, len(names))
	for i, n := range names {
		rels[i] = in.rels[n]
	}
	return rels
}

// Run executes every stratum in dependency order, re-seeding Δ of each
// stratum's input relations so rules see previously computed tuples as
// fresh. It is collective.
func (in *Instance) Run(cfg Config) RunStats {
	var stats RunStats
	for i, st := range in.strata {
		in.enterStratum(i)
		for _, input := range st.inputs {
			ra.ResetDelta(input)
		}
		n := st.fix.Run(in.options(cfg, i))
		stats.StratumIters = append(stats.StratumIters, n)
		stats.TotalIters += n
	}
	return stats
}

// Resume restarts a crashed run from the latest agreed checkpoint: strata
// before the checkpoint's are skipped (their results are inside the
// snapshot), the checkpointed stratum continues from its saved iteration —
// restoring every relation wholesale, so base facts may be reloaded (or
// not) before calling Resume — and later strata run normally. Skipped
// strata report 0 iterations in the returned stats. The restore is
// world-size independent: a checkpoint written by a different rank count is
// remapped through the current layout (see ra.Fixpoint.Resume). It is
// collective and returns ra.ErrNoCheckpoint when the sink is empty.
func (in *Instance) Resume(cfg Config) (RunStats, error) {
	var stats RunStats
	if cfg.Checkpoints == nil {
		return stats, fmt.Errorf("core: Resume needs Config.Checkpoints")
	}
	pos, ok, err := ra.AgreedPosition(in.comm, cfg.Checkpoints)
	if err != nil {
		return stats, err
	}
	if !ok {
		return stats, ra.ErrNoCheckpoint
	}
	if pos.Stratum < 0 || pos.Stratum >= len(in.strata) {
		return stats, fmt.Errorf("core: checkpoint names stratum %d, program has %d strata", pos.Stratum, len(in.strata))
	}
	for s := 0; s < pos.Stratum; s++ {
		stats.StratumIters = append(stats.StratumIters, 0)
	}
	// The restored snapshot carries the correct Δ state for every relation,
	// so the resumed stratum must not ResetDelta its inputs.
	in.enterStratum(pos.Stratum)
	n, err := in.strata[pos.Stratum].fix.Resume(in.options(cfg, pos.Stratum))
	if err != nil {
		return stats, err
	}
	stats.StratumIters = append(stats.StratumIters, n)
	stats.TotalIters += n
	for s := pos.Stratum + 1; s < len(in.strata); s++ {
		st := in.strata[s]
		in.enterStratum(s)
		for _, input := range st.inputs {
			ra.ResetDelta(input)
		}
		n := st.fix.Run(in.options(cfg, s))
		stats.StratumIters = append(stats.StratumIters, n)
		stats.TotalIters += n
	}
	return stats, nil
}

// Rejoin re-enters a crashed-and-replaced rank into a still-running gang
// (hot replacement). cp is this rank's own checkpoint, read rank-locally
// with ra.PeekRejoin before the transport was built so its wire marks could
// seed the frame counters. No collective agreement runs — the survivors
// never tore down, so the only valid position is the one this rank saved —
// and the restored stratum must not ResetDelta its inputs (the snapshot
// carries the correct Δ). Strata before the checkpoint's report 0
// iterations; the replayed stratum and any later ones run as usual.
func (in *Instance) Rejoin(cfg Config, cp ra.Checkpoint) (RunStats, error) {
	var stats RunStats
	if cfg.Checkpoints == nil {
		return stats, fmt.Errorf("core: Rejoin needs Config.Checkpoints")
	}
	if cp.Stratum < 0 || cp.Stratum >= len(in.strata) {
		return stats, fmt.Errorf("core: checkpoint names stratum %d, program has %d strata", cp.Stratum, len(in.strata))
	}
	for s := 0; s < cp.Stratum; s++ {
		stats.StratumIters = append(stats.StratumIters, 0)
	}
	in.enterStratum(cp.Stratum)
	n, err := in.strata[cp.Stratum].fix.Rejoin(in.options(cfg, cp.Stratum), cp)
	if err != nil {
		return stats, err
	}
	stats.StratumIters = append(stats.StratumIters, n)
	stats.TotalIters += n
	for s := cp.Stratum + 1; s < len(in.strata); s++ {
		st := in.strata[s]
		in.enterStratum(s)
		for _, input := range st.inputs {
			ra.ResetDelta(input)
		}
		n := st.fix.Run(in.options(cfg, s))
		stats.StratumIters = append(stats.StratumIters, n)
		stats.TotalIters += n
	}
	return stats, nil
}

// enterStratum publishes the stratum about to run so live events are
// attributed to it, and streams an obs.KindStratumStart event.
func (in *Instance) enterStratum(s int) {
	in.mc.SetStratum(s)
	if o := in.mc.Observer(); o != nil {
		e := obs.Get()
		e.Kind = obs.KindStratumStart
		e.Rank, e.Stratum = in.comm.Rank(), s
		e.End = time.Now().UnixNano()
		obs.Emit(o, e)
	}
}

// Strata returns the number of strata the program compiled to.
func (in *Instance) Strata() int { return len(in.strata) }
