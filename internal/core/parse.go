package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"paralagg/internal/lattice"
	"paralagg/internal/tuple"
)

// Parse builds a Program from PARALAGG's textual Datalog dialect. The
// grammar, line oriented with '%' comments:
//
//	.set  edge 3 key=1            declare a set relation (arity 3)
//	.agg  spath 2 min             declare an aggregated relation: 2
//	                              independent columns + the aggregate's
//	                              dependent column(s)
//	spath(F, F, 0)     :- start(F).
//	spath(F, T, add(L, W)) :- spath(F, M, L), edge(M, T, W).
//	up(X, Y) :- edge(X, Y), lt(X, Y).
//
// Identifiers starting with a letter are variables inside rule bodies and
// heads; integer literals are constants; literals with a decimal point are
// encoded as IEEE-754 bits (for float aggregates). Head terms may apply the
// built-in functions add, sub, mul, fadd, fmul (nestable). Body atoms named
// lt, le, ne, eq with two arguments compile to filter conditions rather
// than relations. Aggregator names: min, max, fmin, bitor, lexmin2, msum,
// mcount.
func Parse(src string) (*Program, error) {
	p := NewProgram()
	// Rules may span lines; a statement ends with '.' at end of line.
	var pending strings.Builder
	lineNo := 0
	flushAt := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.Index(line, "%"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if pending.Len() > 0 {
				return nil, fmt.Errorf("line %d: declaration inside unterminated rule started at line %d", lineNo, flushAt)
			}
			if err := parseDecl(p, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if pending.Len() == 0 {
			flushAt = lineNo
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if strings.HasSuffix(line, ".") {
			stmt := strings.TrimSpace(pending.String())
			pending.Reset()
			rule, err := parseRule(strings.TrimSuffix(stmt, "."), flushAt)
			if err != nil {
				return nil, err
			}
			p.Add(rule)
		}
	}
	if pending.Len() > 0 {
		return nil, fmt.Errorf("line %d: rule not terminated with '.'", flushAt)
	}
	return p, nil
}

// aggregators names the built-in aggregates for .agg declarations.
var aggregators = map[string]lattice.Aggregator{
	"min":     lattice.Min{},
	"max":     lattice.Max{},
	"fmin":    lattice.FMin{},
	"bitor":   lattice.BitOr{},
	"lexmin2": lattice.LexMin2{},
	"msum":    lattice.MSum{},
	"mcount":  lattice.MCount{},
}

func parseDecl(p *Program, line string, lineNo int) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".set":
		if len(fields) < 3 {
			return fmt.Errorf("line %d: .set needs a name and an arity", lineNo)
		}
		arity, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("line %d: bad arity %q", lineNo, fields[2])
		}
		key := 1
		for _, f := range fields[3:] {
			if v, ok := strings.CutPrefix(f, "key="); ok {
				key, err = strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("line %d: bad key %q", lineNo, v)
				}
			} else {
				return fmt.Errorf("line %d: unknown .set option %q", lineNo, f)
			}
		}
		return p.DeclareSet(fields[1], arity, key)
	case ".agg":
		if len(fields) != 4 {
			return fmt.Errorf("line %d: .agg needs a name, independent-column count, and aggregator", lineNo)
		}
		indep, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("line %d: bad independent-column count %q", lineNo, fields[2])
		}
		agg, ok := aggregators[fields[3]]
		if !ok {
			return fmt.Errorf("line %d: unknown aggregator %q (have min, max, fmin, bitor, lexmin2, msum, mcount)", lineNo, fields[3])
		}
		return p.DeclareAgg(fields[1], indep, agg)
	}
	return fmt.Errorf("line %d: unknown declaration %q", lineNo, fields[0])
}

// builtin condition constructors keyed by atom name.
var condBuiltins = map[string]func(a, b Term) Cond{
	"lt": Lt,
	"le": Le,
	"ne": Ne,
	"eq": func(a, b Term) Cond {
		return Cond{Name: "eq", Args: []Term{a, b},
			Pred: func(v []tuple.Value) bool { return v[0] == v[1] }}
	},
}

// head function constructors keyed by name.
var fnBuiltins = map[string]func(a, b Term) Apply{
	"add":  Add,
	"sub":  Sub,
	"mul":  Mul,
	"fadd": FAdd,
	"fmul": FMul,
}

func parseRule(stmt string, lineNo int) (*Rule, error) {
	parts := strings.SplitN(stmt, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("line %d: rule needs ':-' (facts are loaded via the API, not source text)", lineNo)
	}
	head, err := parseAtom(strings.TrimSpace(parts[0]), lineNo)
	if err != nil {
		return nil, err
	}
	bodyAtoms, err := splitAtoms(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("line %d: %v", lineNo, err)
	}
	rule := &Rule{Head: head}
	for _, s := range bodyAtoms {
		a, err := parseAtom(s, lineNo)
		if err != nil {
			return nil, err
		}
		if mk, ok := condBuiltins[a.Rel]; ok {
			if len(a.Terms) != 2 {
				return nil, fmt.Errorf("line %d: builtin %s needs two arguments", lineNo, a.Rel)
			}
			rule.Conds = append(rule.Conds, mk(a.Terms[0], a.Terms[1]))
			continue
		}
		for _, t := range a.Terms {
			if _, isApply := t.(Apply); isApply {
				return nil, fmt.Errorf("line %d: body atom %s contains a computed term", lineNo, a.Rel)
			}
		}
		rule.Body = append(rule.Body, a)
	}
	if len(rule.Body) == 0 {
		return nil, fmt.Errorf("line %d: rule body has only builtins", lineNo)
	}
	return rule, nil
}

// splitAtoms splits "a(x, y), b(y, z)" on top-level commas.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '(' in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

// parseAtom parses "name(term, term, ...)".
func parseAtom(s string, lineNo int) (Atom, error) {
	open := strings.Index(s, "(")
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("line %d: malformed atom %q", lineNo, s)
	}
	name := strings.TrimSpace(s[:open])
	args, err := splitAtoms(s[open+1 : len(s)-1])
	if err != nil {
		return Atom{}, fmt.Errorf("line %d: %v", lineNo, err)
	}
	atom := Atom{Rel: name}
	if len(args) == 1 && args[0] == "" {
		return Atom{}, fmt.Errorf("line %d: atom %s has no arguments", lineNo, name)
	}
	for _, a := range args {
		t, err := parseTerm(a, lineNo)
		if err != nil {
			return Atom{}, err
		}
		atom.Terms = append(atom.Terms, t)
	}
	return atom, nil
}

// parseTerm parses a variable, numeric constant, or head function
// application.
func parseTerm(s string, lineNo int) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("line %d: empty term", lineNo)
	}
	if open := strings.Index(s, "("); open > 0 && strings.HasSuffix(s, ")") {
		name := strings.TrimSpace(s[:open])
		mk, ok := fnBuiltins[name]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown function %q (have add, sub, mul, fadd, fmul)", lineNo, name)
		}
		args, err := splitAtoms(s[open+1 : len(s)-1])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("line %d: function %s needs two arguments", lineNo, name)
		}
		a, err := parseTerm(args[0], lineNo)
		if err != nil {
			return nil, err
		}
		b, err := parseTerm(args[1], lineNo)
		if err != nil {
			return nil, err
		}
		return mk(a, b), nil
	}
	c := s[0]
	if c >= '0' && c <= '9' || c == '-' {
		if strings.ContainsRune(s, '.') {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad float literal %q", lineNo, s)
			}
			return Const(math.Float64bits(f)), nil
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad integer literal %q", lineNo, s)
		}
		return Const(v), nil
	}
	if !isIdent(s) {
		return nil, fmt.Errorf("line %d: malformed term %q", lineNo, s)
	}
	return Var(s), nil
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
