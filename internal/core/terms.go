// Package core is the declarative layer of the library — the Go counterpart
// of the paper's PARALAGG C++ API. Users declare relations (optionally with
// a recursive aggregator on their dependent columns), write Horn-clause
// rules whose heads may compute arithmetic over body variables, and run the
// program; the compiler stratifies the rules, derives the B-tree indexes
// each join needs, enforces the paper's restriction that aggregated columns
// are never joined upon inside a fixpoint, and lowers everything onto the
// parallel relational-algebra kernels of internal/ra.
package core

import (
	"fmt"
	"math"

	"paralagg/internal/tuple"
)

// Term is a position in an atom: a variable, a constant, or (in rule heads
// only) an applied function of body variables.
type Term interface{ term() }

// Var is a named logic variable.
type Var string

func (Var) term() {}

// Const is a literal column value.
type Const tuple.Value

func (Const) term() {}

// Apply computes a head column from body variables. It may only appear in
// rule heads.
type Apply struct {
	// Name appears in diagnostics and plan dumps.
	Name string
	// Fn receives the evaluated Args in order.
	Fn func(args []tuple.Value) tuple.Value
	// Args are the inputs; each must be a Var bound in the body or a Const.
	Args []Term
}

func (Apply) term() {}

// Add returns a head term computing integer a + b.
func Add(a, b Term) Apply {
	return Apply{Name: "add", Args: []Term{a, b},
		Fn: func(v []tuple.Value) tuple.Value { return v[0] + v[1] }}
}

// Sub returns a head term computing integer a - b.
func Sub(a, b Term) Apply {
	return Apply{Name: "sub", Args: []Term{a, b},
		Fn: func(v []tuple.Value) tuple.Value { return v[0] - v[1] }}
}

// Mul returns a head term computing integer a * b.
func Mul(a, b Term) Apply {
	return Apply{Name: "mul", Args: []Term{a, b},
		Fn: func(v []tuple.Value) tuple.Value { return v[0] * v[1] }}
}

// FMul returns a head term multiplying two Float64bits-encoded values.
func FMul(a, b Term) Apply {
	return Apply{Name: "fmul", Args: []Term{a, b},
		Fn: func(v []tuple.Value) tuple.Value {
			return math.Float64bits(math.Float64frombits(v[0]) * math.Float64frombits(v[1]))
		}}
}

// FAdd returns a head term adding two Float64bits-encoded values.
func FAdd(a, b Term) Apply {
	return Apply{Name: "fadd", Args: []Term{a, b},
		Fn: func(v []tuple.Value) tuple.Value {
			return math.Float64bits(math.Float64frombits(v[0]) + math.Float64frombits(v[1]))
		}}
}

// Compute wraps an arbitrary function as a named head term.
func Compute(name string, fn func([]tuple.Value) tuple.Value, args ...Term) Apply {
	return Apply{Name: name, Fn: fn, Args: args}
}

// Atom is one literal: a relation applied to terms.
type Atom struct {
	Rel   string
	Terms []Term
}

// A builds an atom.
func A(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

// Cond is a body-level filter (σ) over bound variables and constants.
type Cond struct {
	Name string
	Args []Term
	Pred func(args []tuple.Value) bool
}

// Lt filters bindings where a < b (integer order).
func Lt(a, b Term) Cond {
	return Cond{Name: "lt", Args: []Term{a, b},
		Pred: func(v []tuple.Value) bool { return v[0] < v[1] }}
}

// Le filters bindings where a <= b (integer order).
func Le(a, b Term) Cond {
	return Cond{Name: "le", Args: []Term{a, b},
		Pred: func(v []tuple.Value) bool { return v[0] <= v[1] }}
}

// Ne filters bindings where a != b.
func Ne(a, b Term) Cond {
	return Cond{Name: "ne", Args: []Term{a, b},
		Pred: func(v []tuple.Value) bool { return v[0] != v[1] }}
}

// Where wraps an arbitrary predicate as a named condition.
func Where(name string, pred func([]tuple.Value) bool, args ...Term) Cond {
	return Cond{Name: name, Args: args, Pred: pred}
}

// Rule is one Horn clause: Head ← Body[0], Body[1], ..., Conds. Bodies with
// three or more atoms are chained through intermediate relations by the
// compiler.
type Rule struct {
	Head  Atom
	Body  []Atom
	Conds []Cond
}

// R builds a rule.
func R(head Atom, body ...Atom) *Rule { return &Rule{Head: head, Body: body} }

// Where attaches filter conditions and returns the rule for chaining.
func (r *Rule) Where(conds ...Cond) *Rule {
	r.Conds = append(r.Conds, conds...)
	return r
}

// String renders the rule Datalog-style for diagnostics.
func (r *Rule) String() string {
	s := atomString(r.Head) + " <- "
	for i, a := range r.Body {
		if i > 0 {
			s += ", "
		}
		s += atomString(a)
	}
	for _, c := range r.Conds {
		s += fmt.Sprintf(", %s(...)", c.Name)
	}
	return s
}

func atomString(a Atom) string {
	s := a.Rel + "("
	for i, t := range a.Terms {
		if i > 0 {
			s += ", "
		}
		switch tt := t.(type) {
		case Var:
			s += string(tt)
		case Const:
			s += fmt.Sprintf("%d", uint64(tt))
		case Apply:
			s += tt.Name + "(...)"
		}
	}
	return s + ")"
}
