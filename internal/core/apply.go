package core

import (
	"fmt"
	"sort"

	"paralagg/internal/lattice"
	"paralagg/internal/ra"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// ApplyInput carries one mutation batch into an instantiated program. The
// engine constructs it identically on every rank: the map key sets are the
// uniform signal of which relations mutate (a rank whose share of a batch
// is empty still passes an empty buffer under the key), while each buffer
// holds only this rank's share of the global batch.
type ApplyInput struct {
	// Initial marks the first batch: relations are freshly loaded and the
	// full fixpoint runs from zero, exactly like Instance.Run.
	Initial bool
	// Inserts maps relation name → this rank's share of inserted base facts.
	Inserts map[string]*tuple.Buffer
	// Deletes maps relation name → this rank's share of deleted base facts.
	Deletes map[string]*tuple.Buffer
	// Reload returns this rank's share of the post-batch base-fact journal
	// for a relation (nil when the relation never received base facts). The
	// deletion path and the from-scratch fallback re-derive from it; its
	// nil-ness per relation must be identical on every rank.
	Reload func(name string) *tuple.Buffer
}

// ApplyStats reports what one mutation batch cost.
type ApplyStats struct {
	RunStats
	// InvalidationRounds counts the over-approximate invalidation rounds a
	// deletion batch ran (0 for insert-only batches).
	InvalidationRounds int
	// Dropped is the global number of tuples invalidated (base-fact seeds
	// plus cascaded head drops).
	Dropped uint64
	// Incremental reports whether the batch was maintained incrementally
	// (false = from-scratch fallback or initial load).
	Incremental bool
}

// Incrementalizable reports whether the program can be maintained
// incrementally under mutation: a single stratum whose aggregators are all
// idempotent. Multi-stratum programs leak converged-only tuples across the
// stratum boundary, and non-idempotent aggregates (MSum, MCount) double
// count when a seeded Δ re-delivers already-absorbed values — both fall
// back to a from-scratch replay of the base-fact journal.
func (in *Instance) Incrementalizable() bool {
	if len(in.strata) != 1 {
		return false
	}
	for _, r := range in.rels {
		if r.Agg != nil && !lattice.Idempotent(r.Agg) {
			return false
		}
	}
	return true
}

// ApplyDelta applies one mutation batch to converged relations and re-runs
// the fixpoint to re-convergence. Collective; every rank passes an input
// with identical map-key sets and Initial/Reload shape.
//
// Inserts are the cheap monotone path: the new facts enter through the
// ordinary materialization (⊔-merging into the accumulators and seeding Δ
// with exactly what changed) and the stratum's fixpoint continues from that
// Δ — no reset, so re-convergence costs only the iterations the new facts
// actually cause. Deletions run over-approximate invalidation first (drop
// every tuple that might depend on a deleted fact, see ra.Invalidate), then
// re-derive from the surviving supports by replaying the base-fact journal
// and re-seeding the EDB Δ from FULL — one full-join round plus however
// many iterations the repair cascade needs. Programs that are not
// Incrementalizable clear all state and replay the journal from scratch.
func (in *Instance) ApplyDelta(cfg Config, inp ApplyInput) (ApplyStats, error) {
	var stats ApplyStats
	if inp.Initial {
		stats.RunStats = in.Run(cfg)
		return stats, nil
	}
	for _, names := range [][]string{sortedKeys(inp.Inserts), sortedKeys(inp.Deletes)} {
		for _, n := range names {
			if in.rels[n] == nil {
				return stats, fmt.Errorf("core: mutation targets undeclared relation %s", n)
			}
		}
	}
	if !in.Incrementalizable() {
		if inp.Reload == nil {
			return stats, fmt.Errorf("core: program needs the from-scratch fallback but no base-fact journal was provided")
		}
		rels := in.snapshotRels()
		for _, rel := range rels {
			rel.Clear()
		}
		for _, rel := range rels {
			if buf := inp.Reload(rel.Name); buf != nil {
				rel.LoadFacts(buf)
			}
		}
		stats.RunStats = in.Run(cfg)
		return stats, nil
	}

	st := in.strata[0]
	in.enterStratum(0)
	if len(inp.Deletes) > 0 {
		if inp.Reload == nil {
			return stats, fmt.Errorf("core: deletions need a base-fact journal to re-derive from")
		}
		rels := in.snapshotRels()
		for _, rel := range rels {
			rel.BeginDelete()
		}
		seed := uint64(0)
		for _, n := range sortedKeys(inp.Deletes) {
			seed += in.rels[n].DeleteBatch(inp.Deletes[n])
		}
		stats.Dropped = seed
		if seed > 0 {
			rounds, dropped := st.fix.Invalidate(in.options(cfg, 0))
			stats.InvalidationRounds = rounds
			stats.Dropped += dropped
		}
		for _, rel := range rels {
			rel.EndDelete()
		}
		// Re-derive: replay the post-batch journal (it already contains this
		// batch's inserts) and re-seed the EDB Δ from FULL so the first
		// iteration re-examines every pair with a surviving support.
		for _, rel := range rels {
			if buf := inp.Reload(rel.Name); buf != nil {
				rel.LoadFacts(buf)
			}
		}
		for _, input := range st.inputs {
			ra.ResetDelta(input)
		}
	} else {
		// Monotone inserts: seed Δ through the ordinary materialization and
		// let the fixpoint continue from it.
		for _, n := range sortedKeys(inp.Inserts) {
			in.rels[n].LoadFacts(inp.Inserts[n])
		}
	}
	n := st.fix.Run(in.options(cfg, 0))
	stats.StratumIters = []int{n}
	stats.TotalIters = n
	stats.Incremental = true
	return stats, nil
}

// SnapshotRelations exposes the checkpoint relation set (every relation of
// the program, name order) for engine-level snapshots.
func (in *Instance) SnapshotRelations() []*relation.Relation { return in.snapshotRels() }

// sortedKeys returns the map's keys in sorted order (the uniform iteration
// order collectives need).
func sortedKeys(m map[string]*tuple.Buffer) []string {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
