package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"paralagg/internal/lattice"
	"paralagg/internal/tuple"
)

// EvalNaive evaluates a program sequentially with textbook naïve iteration:
// every stratum loops over all rules, enumerating all body bindings, until
// nothing changes. It exists as an executable semantics — the distributed
// engine is differential-tested against it — and doubles as a handy local
// evaluator for tiny inputs. Facts map relation names to canonical-order
// tuples; the result maps every declared relation to its final sorted
// tuples.
func EvalNaive(p *Program, facts map[string][]tuple.Tuple) (map[string][]tuple.Tuple, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rules, extraDecls, err := rewriteRules(p.rules)
	if err != nil {
		return nil, err
	}
	decls := make(map[string]*Decl, len(p.decls)+len(extraDecls))
	for n, d := range p.decls {
		decls[n] = d
	}
	for _, d := range extraDecls {
		decls[d.Name] = d
	}

	db := newNaiveDB(decls)
	for name, ts := range facts {
		d, ok := decls[name]
		if !ok {
			return nil, fmt.Errorf("core: facts for undeclared relation %s", name)
		}
		for _, t := range ts {
			if len(t) != d.Arity {
				return nil, fmt.Errorf("core: fact %v has arity %d, %s wants %d", t, len(t), name, d.Arity)
			}
			db.merge(d, t)
		}
	}

	for _, stratumRules := range p.stratify(rules) {
		for {
			changed := false
			for _, r := range stratumRules {
				if db.applyRule(decls, r) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	out := make(map[string][]tuple.Tuple, len(p.decls))
	for name := range p.decls {
		out[name] = db.dump(decls[name])
	}
	return out, nil
}

// naiveDB stores set relations as tuple sets and aggregated relations as
// independent-key → dependent-value maps.
type naiveDB struct {
	sets map[string]map[string]bool
	aggs map[string]map[string][]tuple.Value
	// seen tracks which body bindings each rule has already contributed,
	// so non-idempotent aggregates accumulate each binding exactly once —
	// the same guarantee the distributed engine's disjoint semi-naïve
	// variants provide.
	seen map[*Rule]map[string]bool
}

func newNaiveDB(decls map[string]*Decl) *naiveDB {
	db := &naiveDB{sets: map[string]map[string]bool{}, aggs: map[string]map[string][]tuple.Value{}}
	for n, d := range decls {
		if d.Agg == nil {
			db.sets[n] = map[string]bool{}
		} else {
			db.aggs[n] = map[string][]tuple.Value{}
		}
	}
	return db
}

// merge inserts a tuple with the relation's semantics, reporting change.
func (db *naiveDB) merge(d *Decl, t tuple.Tuple) bool {
	if d.Agg == nil {
		k := keyString(t)
		if db.sets[d.Name][k] {
			return false
		}
		db.sets[d.Name][k] = true
		return true
	}
	k := keyString(t[:d.Indep])
	dep := append([]tuple.Value(nil), t[d.Indep:]...)
	cur, ok := db.aggs[d.Name][k]
	if !ok {
		db.aggs[d.Name][k] = dep
		return true
	}
	merged := d.Agg.Join(cur, dep)
	if d.Agg.Compare(merged, cur) == lattice.Equal {
		return false
	}
	db.aggs[d.Name][k] = append([]tuple.Value(nil), merged...)
	return true
}

// tuples lists a relation's current contents (unsorted).
func (db *naiveDB) tuples(d *Decl) []tuple.Tuple {
	var out []tuple.Tuple
	if d.Agg == nil {
		for k := range db.sets[d.Name] {
			out = append(out, keyValues(k))
		}
		return out
	}
	for k, dep := range db.aggs[d.Name] {
		t := append(tuple.Tuple(nil), keyValues(k)...)
		out = append(out, append(t, dep...))
	}
	return out
}

// dump returns sorted contents.
func (db *naiveDB) dump(d *Decl) []tuple.Tuple {
	out := db.tuples(d)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// applyRule enumerates all bindings of a (binary or unary) rule and merges
// head tuples, reporting whether anything changed. Aggregated body atoms
// read the current best per key, matching the distributed engine's
// semantics. Non-idempotent aggregates in heads are accumulated exactly
// once per distinct binding by tracking seen bindings per rule.
func (db *naiveDB) applyRule(decls map[string]*Decl, r *Rule) bool {
	head := decls[r.Head.Rel]
	changed := false

	emit := func(env map[Var]tuple.Value, sig string) {
		for _, c := range r.Conds {
			args := make([]tuple.Value, len(c.Args))
			for i, a := range c.Args {
				args[i] = evalNaiveTerm(a, env)
			}
			if !c.Pred(args) {
				return
			}
		}
		t := make(tuple.Tuple, len(r.Head.Terms))
		for i, ht := range r.Head.Terms {
			t[i] = evalNaiveTerm(ht, env)
		}
		if db.mergeOnce(head, r, sig, t) {
			changed = true
		}
	}

	var walk func(i int, env map[Var]tuple.Value, sig string)
	walk = func(i int, env map[Var]tuple.Value, sig string) {
		if i == len(r.Body) {
			emit(env, sig)
			return
		}
		atom := r.Body[i]
		d := decls[atom.Rel]
		for _, t := range db.tuples(d) {
			bound := map[Var]tuple.Value{}
			for v, val := range env {
				bound[v] = val
			}
			if unify(atom, t, bound) {
				walk(i+1, bound, sig+"|"+keyString(t))
			}
		}
	}
	walk(0, map[Var]tuple.Value{}, "")
	return changed
}

// mergeOnce merges a head tuple; for non-idempotent aggregates it suppresses
// re-accumulation of a body binding already folded in (keyed by the exact
// body tuples that produced it), matching the runtime's exactly-once
// delivery of generated tuples.
func (db *naiveDB) mergeOnce(d *Decl, r *Rule, sig string, t tuple.Tuple) bool {
	if d.Agg != nil && !lattice.Idempotent(d.Agg) {
		if db.seen == nil {
			db.seen = map[*Rule]map[string]bool{}
		}
		if db.seen[r] == nil {
			db.seen[r] = map[string]bool{}
		}
		if db.seen[r][sig] {
			return false
		}
		db.seen[r][sig] = true
	}
	return db.merge(d, t)
}

func unify(atom Atom, t tuple.Tuple, env map[Var]tuple.Value) bool {
	for i, term := range atom.Terms {
		switch tt := term.(type) {
		case Const:
			if t[i] != tuple.Value(tt) {
				return false
			}
		case Var:
			if v, ok := env[tt]; ok {
				if v != t[i] {
					return false
				}
			} else {
				env[tt] = t[i]
			}
		}
	}
	return true
}

func evalNaiveTerm(t Term, env map[Var]tuple.Value) tuple.Value {
	switch tt := t.(type) {
	case Const:
		return tuple.Value(tt)
	case Var:
		return env[tt]
	case Apply:
		args := make([]tuple.Value, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = evalNaiveTerm(a, env)
		}
		return tt.Fn(args)
	}
	panic(fmt.Sprintf("core: unknown term %T", t))
}

// keyString and keyValues encode tuples as map keys (8 bytes per column,
// little endian).
func keyString(vals []tuple.Value) string {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return string(b)
}

func keyValues(s string) tuple.Tuple {
	out := make(tuple.Tuple, len(s)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64([]byte(s[i*8 : i*8+8]))
	}
	return out
}
