package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/tuple"
)

func TestParseDeclarations(t *testing.T) {
	p, err := Parse(`
% a comment
.set edge 3 key=1
.agg spath 2 min
`)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Decl("edge"); d == nil || d.Arity != 3 || d.Key != 1 || d.Agg != nil {
		t.Fatalf("edge decl = %+v", d)
	}
	if d := p.Decl("spath"); d == nil || d.Arity != 3 || d.Indep != 2 || d.Agg == nil {
		t.Fatalf("spath decl = %+v", d)
	}
}

func TestParseRuleShapes(t *testing.T) {
	p, err := Parse(`
.set edge 2 key=1
.set up 2 key=1
up(X, Y) :- edge(X, Y), lt(X, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if r.Head.Rel != "up" || len(r.Body) != 1 || len(r.Conds) != 1 || r.Conds[0].Name != "lt" {
		t.Fatalf("rule = %s (%d conds)", r, len(r.Conds))
	}
}

func TestParseMultilineRule(t *testing.T) {
	p, err := Parse(`
.agg spath 2 min
.set edge 3 key=1
spath(F, T, add(L, W)) :-
    spath(F, M, L),
    edge(M, T, W).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules()) != 1 {
		t.Fatalf("rules = %d", len(p.Rules()))
	}
	head := p.Rules()[0].Head
	if _, ok := head.Terms[2].(Apply); !ok {
		t.Fatalf("head term 2 = %T", head.Terms[2])
	}
}

func TestParseLiterals(t *testing.T) {
	p, err := Parse(`
.set r 3 key=1
.set s 1 key=1
r(X, 7, 1.5) :- s(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	terms := p.Rules()[0].Head.Terms
	if c, ok := terms[1].(Const); !ok || uint64(c) != 7 {
		t.Fatalf("int literal = %#v", terms[1])
	}
	if c, ok := terms[2].(Const); !ok || math.Float64frombits(uint64(c)) != 1.5 {
		t.Fatalf("float literal = %#v", terms[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown decl", ".foo bar 1", "unknown declaration"},
		{"bad arity", ".set e x", "bad arity"},
		{"unknown agg", ".agg a 1 weird", "unknown aggregator"},
		{"bad set option", ".set e 2 nope=1", "unknown .set option"},
		{"fact text", ".set e 2 key=1\ne(1, 2).", "facts are loaded via the API"},
		{"unterminated", ".set e 2 key=1\nh(X) :- e(X, Y)", "not terminated"},
		{"decl in rule", ".set e 2 key=1\nh(X) :- e(X, Y),\n.set q 1", "unterminated rule"},
		{"unbalanced", ".set e 2 key=1\nh(X :- e(X, Y).", "malformed atom"},
		{"unknown fn", ".set e 2 key=1\nh(q(X)) :- e(X, Y).", "unknown function"},
		{"builtin arity", ".set e 2 key=1\nh(X) :- e(X, Y), lt(X).", "two arguments"},
		{"only builtins", ".set e 2 key=1\nh(X) :- lt(X, X).", "only builtins"},
		{"apply in body", ".set e 2 key=1\nh(X) :- e(add(X, X), Y).", "computed term"},
		{"empty args", ".set e 2 key=1\nh() :- e(X, Y).", "no arguments"},
		{"bad term", ".set e 2 key=1\nh(X) :- e(X, 9y).", "bad integer literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestParsedSSSPExecutes runs the canonical SSSP program from source text
// and checks a known distance.
func TestParsedSSSPExecutes(t *testing.T) {
	p, err := Parse(`
% the paper's SSSP (section II-C)
.set edge 3 key=1
.agg spath 2 min
spath(F, T, add(L, W)) :- spath(F, M, L), edge(M, T, W).
`)
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(3)
	err = w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(3)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		// 0 -2-> 1 -3-> 2 and a worse direct edge 0 -9-> 2.
		edges := [][3]uint64{{0, 1, 2}, {1, 2, 3}, {0, 2, 9}}
		in.LoadShare("edge", len(edges), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{edges[i][0], edges[i][1], edges[i][2]})
		})
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{0, 0, 0})
		}
		in.Load("spath", seed)
		in.Run(cfg)

		var local uint64
		if v, ok := in.Relation("spath").Lookup(tuple.Tuple{0, 2}); ok {
			local = v[0]
		}
		if g := c.Allreduce(local, mpi.OpMax); g != 5 {
			return fmt.Errorf("dist(0,2) = %d, want 5", g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExplain(t *testing.T) {
	p, err := Parse(`
.set edge 3 key=1
.agg spath 2 min
.agg lsp 1 max
spath(F, T, add(L, W)) :- spath(F, M, L), edge(M, T, W).
lsp(0, V) :- spath(F, T, V).
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stratum 0", "stratum 1", "join, recursive", "copy",
		"join on [M]", "spath cols [1]", "edge cols [0]",
		"agg $MIN", "agg $MAX", "perm=[1 0 2] jk=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRejectsInvalid(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("e", 2, 1)
	p.Add(R(A("e", Var("x"), Var("q")), A("e", Var("x"), Var("y"))))
	if _, err := p.Explain(); err == nil {
		t.Fatal("Explain accepted an invalid program")
	}
}

// TestShippedProgramsParse compiles every .dl file shipped under
// examples/programs.
func TestShippedProgramsParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/programs/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("expected shipped programs, found %v", files)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if _, err := p.Explain(); err != nil {
			t.Fatalf("%s: explain: %v", f, err)
		}
	}
}
