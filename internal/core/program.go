package core

import (
	"fmt"
	"sort"

	"paralagg/internal/lattice"
)

// Decl is a relation declaration.
type Decl struct {
	Name  string
	Arity int
	// Indep is the number of independent columns (== Arity for set
	// relations).
	Indep int
	// Key is the canonical index's join-key length.
	Key int
	// Agg aggregates the dependent columns, or nil for set semantics.
	Agg lattice.Aggregator
}

// Program is a declarative rule set over declared relations. Build it once,
// then Instantiate it on every rank of a world.
type Program struct {
	decls     map[string]*Decl
	declOrder []string
	rules     []*Rule
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{decls: map[string]*Decl{}}
}

// DeclareSet declares a set-semantics relation with the given arity whose
// canonical index keys on the first key columns.
func (p *Program) DeclareSet(name string, arity, key int) error {
	return p.declare(&Decl{Name: name, Arity: arity, Indep: arity, Key: key})
}

// DeclareAgg declares an aggregated relation: indep independent columns
// followed by agg.Width() dependent columns merged with agg. The canonical
// index keys on all independent columns.
func (p *Program) DeclareAgg(name string, indep int, agg lattice.Aggregator) error {
	if agg == nil {
		return fmt.Errorf("core: relation %s declared with nil aggregator", name)
	}
	return p.declare(&Decl{Name: name, Arity: indep + agg.Width(), Indep: indep, Key: indep, Agg: agg})
}

func (p *Program) declare(d *Decl) error {
	if d.Name == "" {
		return fmt.Errorf("core: empty relation name")
	}
	if _, dup := p.decls[d.Name]; dup {
		return fmt.Errorf("core: relation %s declared twice", d.Name)
	}
	if d.Arity < 1 || d.Key < 1 || d.Key > d.Indep {
		return fmt.Errorf("core: relation %s: bad shape (arity %d, indep %d, key %d)", d.Name, d.Arity, d.Indep, d.Key)
	}
	p.decls[d.Name] = d
	p.declOrder = append(p.declOrder, d.Name)
	return nil
}

// Decl returns a declaration by name, or nil.
func (p *Program) Decl(name string) *Decl { return p.decls[name] }

// Add appends rules to the program.
func (p *Program) Add(rules ...*Rule) { p.rules = append(p.rules, rules...) }

// Rules returns the program's rules in insertion order.
func (p *Program) Rules() []*Rule { return p.rules }

// validate checks every rule against the declarations: known relations,
// matching arities, body terms restricted to variables and constants, head
// variables bound in the body.
func (p *Program) validate() error {
	for _, r := range p.rules {
		hd, ok := p.decls[r.Head.Rel]
		if !ok {
			return fmt.Errorf("core: rule %s: undeclared head relation %s", r, r.Head.Rel)
		}
		if len(r.Head.Terms) != hd.Arity {
			return fmt.Errorf("core: rule %s: head arity %d, declared %d", r, len(r.Head.Terms), hd.Arity)
		}
		if len(r.Body) == 0 {
			return fmt.Errorf("core: rule %s: empty body", r)
		}
		bound := map[Var]bool{}
		for _, a := range r.Body {
			bd, ok := p.decls[a.Rel]
			if !ok {
				return fmt.Errorf("core: rule %s: undeclared body relation %s", r, a.Rel)
			}
			if len(a.Terms) != bd.Arity {
				return fmt.Errorf("core: rule %s: body atom %s arity %d, declared %d", r, a.Rel, len(a.Terms), bd.Arity)
			}
			for _, t := range a.Terms {
				switch tt := t.(type) {
				case Var:
					bound[tt] = true
				case Const:
				default:
					return fmt.Errorf("core: rule %s: body atom %s contains a computed term", r, a.Rel)
				}
			}
		}
		var check func(t Term) error
		check = func(t Term) error {
			switch tt := t.(type) {
			case Var:
				if !bound[tt] {
					return fmt.Errorf("core: rule %s: variable %s unbound in body", r, tt)
				}
			case Apply:
				// Applies nest: arguments may themselves be computed.
				for _, arg := range tt.Args {
					if err := check(arg); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for _, t := range r.Head.Terms {
			if err := check(t); err != nil {
				return err
			}
		}
		for _, c := range r.Conds {
			for _, t := range c.Args {
				if _, isApply := t.(Apply); isApply {
					return fmt.Errorf("core: rule %s: condition %s has a computed argument", r, c.Name)
				}
				if err := check(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// stratify groups rules into strata using the strongly connected components
// of the head→body dependency graph, in topological (dependencies-first)
// order. Rules whose heads share an SCC land in the same stratum and are
// evaluated in one semi-naïve fixpoint.
func (p *Program) stratify(rules []*Rule) [][]*Rule {
	// Dependency adjacency: head relation depends on body relations.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, r := range rules {
		nodes[r.Head.Rel] = true
		for _, a := range r.Body {
			nodes[a.Rel] = true
			adj[r.Head.Rel] = append(adj[r.Head.Rel], a.Rel)
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	// Iterative Tarjan SCC. Components are emitted dependencies-first.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order []map[string]bool // SCCs in emission order
	sccOf := map[string]int{}
	next := 0

	type frame struct {
		node string
		ci   int // child index
	}
	var strongconnect func(root string)
	strongconnect = func(root string) {
		frames := []frame{{node: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			children := adj[f.node]
			advanced := false
			for f.ci < len(children) {
				ch := children[f.ci]
				f.ci++
				if _, seen := index[ch]; !seen {
					index[ch] = next
					low[ch] = next
					next++
					stack = append(stack, ch)
					onStack[ch] = true
					frames = append(frames, frame{node: ch})
					advanced = true
					break
				} else if onStack[ch] {
					if index[ch] < low[f.node] {
						low[f.node] = index[ch]
					}
				}
			}
			if advanced {
				continue
			}
			// Node finished.
			if low[f.node] == index[f.node] {
				comp := map[string]bool{}
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = true
					sccOf[top] = len(order)
					if top == f.node {
						break
					}
				}
				order = append(order, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	// Assign rules to the stratum of their head's SCC; emit non-empty
	// strata in SCC order.
	byScc := make([][]*Rule, len(order))
	for _, r := range rules {
		s := sccOf[r.Head.Rel]
		byScc[s] = append(byScc[s], r)
	}
	var strata [][]*Rule
	for _, rs := range byScc {
		if len(rs) > 0 {
			strata = append(strata, rs)
		}
	}
	return strata
}

// RelationNames lists every declared relation in declaration order.
func (p *Program) RelationNames() []string {
	return append([]string(nil), p.declOrder...)
}
