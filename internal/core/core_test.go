package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/tuple"
)

func run(t *testing.T, ranks int, body func(c *mpi.Comm) error) {
	t.Helper()
	w := mpi.NewWorld(ranks)
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

// instantiate is a test helper: build the program on one rank and return
// the first error (validation does not need a world).
func compileErr(t *testing.T, build func(p *Program)) error {
	t.Helper()
	var got error
	run(t, 1, func(c *mpi.Comm) error {
		p := NewProgram()
		build(p)
		_, got = p.Instantiate(c, metrics.NewCollector(1), Config{})
		return nil
	})
	return got
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(p *Program)
	}{
		{"undeclared head", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.Add(R(A("zz", Var("x"), Var("y")), A("e", Var("x"), Var("y"))))
		}},
		{"undeclared body", func(p *Program) {
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("y")), A("zz", Var("x"), Var("y"))))
		}},
		{"head arity", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x")), A("e", Var("x"), Var("y"))))
		}},
		{"body arity", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("y")), A("e", Var("x"), Var("y"), Var("z"))))
		}},
		{"empty body", func(p *Program) {
			p.DeclareSet("h", 2, 1)
			p.Add(&Rule{Head: A("h", Var("x"), Var("y"))})
		}},
		{"apply in body", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("y")), A("e", Var("x"), Add(Var("y"), Const(1)))))
		}},
		{"unbound head var", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("q")), A("e", Var("x"), Var("y"))))
		}},
		{"unbound apply arg", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Add(Var("q"), Const(1))), A("e", Var("x"), Var("y"))))
		}},
		{"cartesian product", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("f", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("a")), A("e", Var("x"), Var("y")), A("f", Var("a"), Var("b"))))
		}},
		{"join on aggregated column", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareAgg("sp", 1, lattice.Min{})
			p.DeclareSet("h", 1, 1)
			// sp's column 2 is the aggregated value; joining e on it is the
			// paper's forbidden pattern.
			p.Add(R(A("h", Var("x")), A("sp", Var("x"), Var("d")), A("e", Var("d"), Var("y"))))
		}},
		{"cond on unbound var", func(p *Program) {
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("h", 2, 1)
			p.Add(R(A("h", Var("x"), Var("y")), A("e", Var("x"), Var("y"))).Where(Lt(Var("q"), Const(3))))
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := compileErr(t, c.build); err == nil {
				t.Fatalf("expected a compile error")
			}
		})
	}
}

func TestDeclarationErrors(t *testing.T) {
	p := NewProgram()
	if err := p.DeclareSet("e", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareSet("e", 2, 1); err == nil {
		t.Error("duplicate declaration accepted")
	}
	if err := p.DeclareSet("", 2, 1); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.DeclareSet("bad", 0, 1); err == nil {
		t.Error("zero arity accepted")
	}
	if err := p.DeclareSet("bad2", 2, 3); err == nil {
		t.Error("key > indep accepted")
	}
	if err := p.DeclareAgg("bad3", 1, nil); err == nil {
		t.Error("nil aggregator accepted")
	}
}

func TestStratification(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("edge", 2, 1)
	p.DeclareSet("path", 2, 1)
	p.DeclareAgg("lsp", 1, lattice.Max{})
	p.Add(
		R(A("path", Var("x"), Var("y")), A("edge", Var("x"), Var("y"))),
		R(A("path", Var("x"), Var("z")), A("path", Var("x"), Var("y")), A("edge", Var("y"), Var("z"))),
		R(A("lsp", Const(0), Var("y")), A("path", Var("x"), Var("y"))),
	)
	strata := p.stratify(p.rules)
	if len(strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(strata))
	}
	if strata[0][0].Head.Rel != "path" || len(strata[0]) != 2 {
		t.Fatalf("stratum 0 = %v", strata[0])
	}
	if strata[1][0].Head.Rel != "lsp" {
		t.Fatalf("stratum 1 = %v", strata[1])
	}
}

func TestStratificationMutualRecursion(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("e", 2, 1)
	p.DeclareSet("a", 2, 1)
	p.DeclareSet("b", 2, 1)
	p.Add(
		R(A("a", Var("x"), Var("y")), A("e", Var("x"), Var("y"))),
		R(A("b", Var("x"), Var("z")), A("a", Var("x"), Var("y")), A("e", Var("y"), Var("z"))),
		R(A("a", Var("x"), Var("z")), A("b", Var("x"), Var("y")), A("e", Var("y"), Var("z"))),
	)
	strata := p.stratify(p.rules)
	if len(strata) != 1 {
		t.Fatalf("mutually recursive rules split into %d strata", len(strata))
	}
	if len(strata[0]) != 3 {
		t.Fatalf("stratum holds %d rules", len(strata[0]))
	}
}

// declTC builds the transitive-closure program.
func declTC(p *Program) {
	p.DeclareSet("edge", 2, 1)
	p.DeclareSet("path", 2, 1)
	p.Add(
		R(A("path", Var("x"), Var("y")), A("edge", Var("x"), Var("y"))),
		R(A("path", Var("x"), Var("z")), A("path", Var("x"), Var("y")), A("edge", Var("y"), Var("z"))),
	)
}

type tedge struct{ u, v, w uint64 }

func trandGraph(nodes, edges int, seed int64, maxW uint64) []tedge {
	rng := rand.New(rand.NewSource(seed))
	var out []tedge
	seen := map[[2]uint64]bool{}
	for len(out) < edges {
		u, v := uint64(rng.Intn(nodes)), uint64(rng.Intn(nodes))
		if u == v || seen[[2]uint64{u, v}] {
			continue
		}
		seen[[2]uint64{u, v}] = true
		w := uint64(1)
		if maxW > 1 {
			w = uint64(rng.Intn(int(maxW))) + 1
		}
		out = append(out, tedge{u, v, w})
	}
	return out
}

func TestDeclarativeTransitiveClosure(t *testing.T) {
	es := trandGraph(40, 120, 5, 1)
	// Reference closure size by BFS.
	adj := map[uint64][]uint64{}
	for _, e := range es {
		adj[e.u] = append(adj[e.u], e.v)
	}
	want := 0
	for s := uint64(0); s < 40; s++ {
		vis := map[uint64]bool{}
		q := []uint64{s}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range adj[u] {
				if !vis[v] {
					vis[v] = true
					want++
					q = append(q, v)
				}
			}
		}
	}
	run(t, 4, func(c *mpi.Comm) error {
		p := NewProgram()
		declTC(p)
		mc := metrics.NewCollector(4)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		in.LoadShare("edge", len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v})
		})
		stats := in.Run(cfg)
		if stats.TotalIters < 2 {
			return fmt.Errorf("suspiciously few iterations: %d", stats.TotalIters)
		}
		if got := in.Relation("path").GlobalFullCount(); got != uint64(want) {
			return fmt.Errorf("closure size %d, want %d", got, want)
		}
		return nil
	})
}

func TestDeclarativeSSSPWithArithmetic(t *testing.T) {
	es := trandGraph(60, 300, 11, 7)
	// Dijkstra reference from node 4.
	const src = 4
	const inf = ^uint64(0)
	dist := make([]uint64, 60)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	done := make([]bool, 60)
	for {
		u, best := -1, inf
		for i, d := range dist {
			if !done[i] && d < best {
				u, best = i, d
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range es {
			if e.u == uint64(u) && dist[u]+e.w < dist[e.v] {
				dist[e.v] = dist[u] + e.w
			}
		}
	}
	reached := uint64(0)
	for _, d := range dist {
		if d != inf {
			reached++
		}
	}

	run(t, 3, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("edge", 3, 1)
		p.DeclareAgg("spath", 2, lattice.Min{})
		p.Add(R(
			A("spath", Var("f"), Var("t"), Add(Var("l"), Var("w"))),
			A("spath", Var("f"), Var("m"), Var("l")),
			A("edge", Var("m"), Var("t"), Var("w")),
		))
		mc := metrics.NewCollector(3)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		in.LoadShare("edge", len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v, es[i].w})
		})
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{src, src, 0})
		}
		in.Load("spath", seed)
		in.Run(cfg)

		sp := in.Relation("spath")
		var wrong, count uint64
		sp.EachAcc(func(tt tuple.Tuple) {
			count++
			if tt[0] != src || dist[tt[1]] != tt[2] {
				wrong++
			}
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d wrong distances", g)
		}
		if g := c.Allreduce(count, mpi.OpSum); g != reached {
			return fmt.Errorf("reached %d, want %d", g, reached)
		}
		return nil
	})
}

func TestConstantsAndDuplicateVarsInBody(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("e", 2, 1)
		p.DeclareSet("self", 1, 1)  // nodes with a self-loop
		p.DeclareSet("from7", 1, 1) // successors of node 7
		p.Add(
			R(A("self", Var("x")), A("e", Var("x"), Var("x"))),
			R(A("from7", Var("y")), A("e", Const(7), Var("y"))),
		)
		mc := metrics.NewCollector(2)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		in.LoadShare("e", 6, func(i int, emit func(tuple.Tuple)) {
			facts := [][2]uint64{{1, 1}, {2, 3}, {7, 9}, {7, 7}, {5, 5}, {7, 2}}
			emit(tuple.Tuple{facts[i][0], facts[i][1]})
		})
		in.Run(cfg)
		if got := in.Relation("self").GlobalFullCount(); got != 3 { // 1,7,5
			return fmt.Errorf("self count = %d, want 3", got)
		}
		if got := in.Relation("from7").GlobalFullCount(); got != 3 { // 9,7,2
			return fmt.Errorf("from7 count = %d, want 3", got)
		}
		return nil
	})
}

func TestConditionsFilter(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("e", 2, 1)
		p.DeclareSet("up", 2, 1) // edges that go strictly upward
		p.Add(R(A("up", Var("x"), Var("y")), A("e", Var("x"), Var("y"))).Where(Lt(Var("x"), Var("y"))))
		mc := metrics.NewCollector(2)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		in.LoadShare("e", 100, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{uint64(i % 10), uint64(i / 10)})
		})
		in.Run(cfg)
		// Pairs (i%10, i/10) for i in 0..99 with x < y: count them.
		want := uint64(0)
		for i := 0; i < 100; i++ {
			if uint64(i%10) < uint64(i/10) {
				want++
			}
		}
		if got := in.Relation("up").GlobalFullCount(); got != want {
			return fmt.Errorf("up count = %d, want %d", got, want)
		}
		return nil
	})
}

func TestThreeAtomBodyChaining(t *testing.T) {
	// Two-hop reachability through a middle node below a threshold:
	// hop2(x,z) <- e(x,y), e(y,z), e(z,w), with w as witness of outdegree.
	run(t, 3, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("e", 2, 1)
		p.DeclareSet("hop3", 2, 1)
		p.Add(R(
			A("hop3", Var("x"), Var("w")),
			A("e", Var("x"), Var("y")),
			A("e", Var("y"), Var("z")),
			A("e", Var("z"), Var("w")),
		))
		mc := metrics.NewCollector(3)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		// A ring of 10 nodes: hop3 from x reaches exactly x+3.
		in.LoadShare("e", 10, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{uint64(i), uint64((i + 1) % 10)})
		})
		in.Run(cfg)
		h := in.Relation("hop3")
		if got := h.GlobalFullCount(); got != 10 {
			return fmt.Errorf("hop3 count = %d, want 10", got)
		}
		var wrong uint64
		h.Canonical().Full.Ascend(func(tt tuple.Tuple) bool {
			if tt[1] != (tt[0]+3)%10 {
				wrong++
			}
			return true
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d wrong hop3 tuples", g)
		}
		return nil
	})
}

func TestTwoStratumLongestShortestPath(t *testing.T) {
	es := trandGraph(40, 200, 17, 5)
	run(t, 3, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("edge", 3, 1)
		p.DeclareAgg("spath", 2, lattice.Min{})
		p.DeclareAgg("lsp", 1, lattice.Max{})
		p.Add(
			R(A("spath", Var("f"), Var("t"), Add(Var("l"), Var("w"))),
				A("spath", Var("f"), Var("m"), Var("l")),
				A("edge", Var("m"), Var("t"), Var("w"))),
			// Second stratum: aggregate the longest shortest path. Only
			// converged spath values flow in, so no transient "leak".
			R(A("lsp", Const(0), Var("l")), A("spath", Var("f"), Var("t"), Var("l"))),
		)
		mc := metrics.NewCollector(3)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		if in.Strata() != 2 {
			return fmt.Errorf("strata = %d, want 2", in.Strata())
		}
		in.LoadShare("edge", len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v, es[i].w})
		})
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{0, 0, 0})
		}
		in.Load("spath", seed)
		in.Run(cfg)

		// Reference: Dijkstra from 0, take the max distance.
		const inf = ^uint64(0)
		dist := make([]uint64, 40)
		for i := range dist {
			dist[i] = inf
		}
		dist[0] = 0
		done := make([]bool, 40)
		for {
			u, best := -1, inf
			for i, d := range dist {
				if !done[i] && d < best {
					u, best = i, d
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for _, e := range es {
				if e.u == uint64(u) && dist[u]+e.w < dist[e.v] {
					dist[e.v] = dist[u] + e.w
				}
			}
		}
		want := uint64(0)
		for _, d := range dist {
			if d != inf && d > want {
				want = d
			}
		}
		var local uint64
		in.Relation("lsp").EachAcc(func(tt tuple.Tuple) { local = tt[1] })
		if got := c.Allreduce(local, mpi.OpMax); got != want {
			return fmt.Errorf("lsp = %d, want %d", got, want)
		}
		return nil
	})
}

// TestPageRankMassConservation runs 10 undamped power iterations on a ring;
// the distribution must stay uniform, and total mass must stay 1.
func TestPageRankMassConservation(t *testing.T) {
	const n = 8
	const iters = 10
	run(t, 2, func(c *mpi.Comm) error {
		p := NewProgram()
		p.DeclareSet("edgeInv", 3, 1) // (x, y, 1/outdeg(x) as float bits)
		p.DeclareAgg("pr", 2, lattice.MSum{})
		p.Add(R(
			A("pr", Add(Var("i"), Const(1)), Var("y"), FMul(Var("r"), Var("inv"))),
			A("pr", Var("i"), Var("x"), Var("r")),
			A("edgeInv", Var("x"), Var("y"), Var("inv")),
		).Where(Lt(Var("i"), Const(iters))))
		mc := metrics.NewCollector(2)
		cfg := Config{Plan: ra.PlanDynamic}
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		// Ring: each node has outdegree 1.
		in.LoadShare("edgeInv", n, func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{uint64(i), uint64((i + 1) % n), math.Float64bits(1.0)})
		})
		seed := tuple.NewBuffer(3, n)
		for i := c.Rank(); i < n; i += c.Size() {
			seed.Append(tuple.Tuple{0, uint64(i), math.Float64bits(1.0 / n)})
		}
		in.Load("pr", seed)
		in.Run(cfg)

		pr := in.Relation("pr")
		// Sum the final iteration's mass and check each entry is 1/n.
		var localBad uint64
		localMass := 0.0
		pr.EachAcc(func(tt tuple.Tuple) {
			if tt[0] != iters {
				return
			}
			v := math.Float64frombits(tt[2])
			if math.Abs(v-1.0/n) > 1e-12 {
				localBad++
			}
			localMass += v
		})
		if g := c.Allreduce(localBad, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d non-uniform entries at final iteration", g)
		}
		// Float bit patterns don't sum through an integer Allreduce; gather
		// per-rank masses and add as floats.
		masses := c.AllgatherV([]mpi.Word{math.Float64bits(localMass)})
		total := 0.0
		for _, m := range masses {
			total += math.Float64frombits(m[0])
		}
		if math.Abs(total-1.0) > 1e-9 {
			return fmt.Errorf("mass = %v, want 1", total)
		}
		return nil
	})
}

func TestRuleString(t *testing.T) {
	r := R(A("h", Var("x"), Const(3), Add(Var("y"), Const(1))), A("b", Var("x"), Var("y"))).Where(Lt(Var("x"), Const(9)))
	s := r.String()
	if s == "" {
		t.Fatal("empty rule string")
	}
	for _, want := range []string{"h(", "b(", "x", "3", "add(...)", "lt(...)"} {
		if !contains(s, want) {
			t.Errorf("rule string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
