package core

import (
	"math/rand"
	"sort"
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/tuple"
)

// diffProgram is one differential-testing scenario: a program plus a fact
// generator.
type diffProgram struct {
	name  string
	build func() *Program
	facts func(rng *rand.Rand) map[string][]tuple.Tuple
}

// randEdges2 produces random binary facts.
func randEdges2(rng *rand.Rand, nodes, n int) []tuple.Tuple {
	seen := map[[2]uint64]bool{}
	var out []tuple.Tuple
	for len(out) < n {
		u, v := uint64(rng.Intn(nodes)), uint64(rng.Intn(nodes))
		if seen[[2]uint64{u, v}] {
			continue
		}
		seen[[2]uint64{u, v}] = true
		out = append(out, tuple.Tuple{u, v})
	}
	return out
}

// randEdges3 produces random weighted facts.
func randEdges3(rng *rand.Rand, nodes, n int, maxW uint64) []tuple.Tuple {
	seen := map[[2]uint64]bool{}
	var out []tuple.Tuple
	for len(out) < n {
		u, v := uint64(rng.Intn(nodes)), uint64(rng.Intn(nodes))
		if u == v || seen[[2]uint64{u, v}] {
			continue
		}
		seen[[2]uint64{u, v}] = true
		out = append(out, tuple.Tuple{u, v, uint64(rng.Intn(int(maxW))) + 1})
	}
	return out
}

var diffSuite = []diffProgram{
	{
		name: "transitive-closure",
		build: func() *Program {
			p := NewProgram()
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("t", 2, 1)
			p.Add(
				R(A("t", Var("x"), Var("y")), A("e", Var("x"), Var("y"))),
				R(A("t", Var("x"), Var("z")), A("t", Var("x"), Var("y")), A("e", Var("y"), Var("z"))),
			)
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{"e": randEdges2(rng, 14, 30)}
		},
	},
	{
		name: "same-generation",
		build: func() *Program {
			// sg(x,y) <- e(p,x), e(p,y); sg(x,y) <- e(a,x), sg(a,b), e(b,y).
			p := NewProgram()
			p.DeclareSet("e", 2, 1)
			p.DeclareSet("sg", 2, 1)
			p.Add(
				R(A("sg", Var("x"), Var("y")), A("e", Var("p"), Var("x")), A("e", Var("p"), Var("y"))),
				R(A("sg", Var("x"), Var("y")),
					A("e", Var("a"), Var("x")), A("sg", Var("a"), Var("b")), A("e", Var("b"), Var("y"))),
			)
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{"e": randEdges2(rng, 10, 18)}
		},
	},
	{
		name: "sssp-min",
		build: func() *Program {
			p := NewProgram()
			p.DeclareSet("e", 3, 1)
			p.DeclareAgg("sp", 2, lattice.Min{})
			p.Add(R(
				A("sp", Var("f"), Var("t"), Add(Var("l"), Var("w"))),
				A("sp", Var("f"), Var("m"), Var("l")),
				A("e", Var("m"), Var("t"), Var("w")),
			))
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{
				"e":  randEdges3(rng, 16, 50, 8),
				"sp": {{0, 0, 0}, {3, 3, 0}},
			}
		},
	},
	{
		name: "widest-path-max",
		build: func() *Program {
			// Bottleneck capacity: wp(f,t,MAX(min(c, w))) — widest path via
			// the Max aggregate and a min() head function.
			p := NewProgram()
			p.DeclareSet("e", 3, 1)
			p.DeclareAgg("wp", 2, lattice.Max{})
			minFn := func(v []tuple.Value) tuple.Value {
				if v[0] < v[1] {
					return v[0]
				}
				return v[1]
			}
			p.Add(R(
				A("wp", Var("f"), Var("t"), Compute("min", minFn, Var("c"), Var("w"))),
				A("wp", Var("f"), Var("m"), Var("c")),
				A("e", Var("m"), Var("t"), Var("w")),
			))
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{
				"e":  randEdges3(rng, 12, 40, 9),
				"wp": {{1, 1, 1 << 30}},
			}
		},
	},
	{
		name: "cc-with-conds",
		build: func() *Program {
			p := NewProgram()
			p.DeclareSet("e", 2, 1)
			p.DeclareAgg("cc", 1, lattice.Min{})
			p.Add(
				R(A("cc", Var("y"), Var("z")), A("cc", Var("x"), Var("z")), A("e", Var("x"), Var("y"))),
				R(A("cc", Var("x"), Var("z")), A("cc", Var("y"), Var("z")), A("e", Var("x"), Var("y"))),
			)
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			seeds := make([]tuple.Tuple, 12)
			for i := range seeds {
				seeds[i] = tuple.Tuple{uint64(i), uint64(i)}
			}
			return map[string][]tuple.Tuple{
				"e":  randEdges2(rng, 12, 14),
				"cc": seeds,
			}
		},
	},
	{
		name: "bounded-hops-with-filter",
		build: func() *Program {
			// Paths of weight at most 12, as a set relation with a filter —
			// exercises conditions inside recursion.
			p := NewProgram()
			p.DeclareSet("e", 3, 1)
			p.DeclareSet("ph", 3, 1)
			p.Add(
				R(A("ph", Var("x"), Var("y"), Var("w")), A("e", Var("x"), Var("y"), Var("w"))).
					Where(Le(Var("w"), Const(12))),
				R(A("ph", Var("x"), Var("z"), Add(Var("a"), Var("b"))),
					A("ph", Var("x"), Var("y"), Var("a")),
					A("e", Var("y"), Var("z"), Var("b"))).
					Where(Where("cap", func(v []tuple.Value) bool { return v[0]+v[1] <= 12 },
						Var("a"), Var("b"))),
			)
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{"e": randEdges3(rng, 10, 25, 5)}
		},
	},
	{
		name: "mcount-degrees",
		build: func() *Program {
			// deg(x, MCOUNT(1)) over edges: non-idempotent aggregate fed by
			// a copy rule.
			p := NewProgram()
			p.DeclareSet("e", 2, 1)
			p.DeclareAgg("deg", 1, lattice.MCount{})
			p.Add(R(A("deg", Var("x"), Const(1)), A("e", Var("x"), Var("y"))))
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{"e": randEdges2(rng, 9, 30)}
		},
	},
	{
		name: "bitor-reachable-labels",
		build: func() *Program {
			// Each node accumulates the bitmask of source labels that reach
			// it: the power-set lattice in action.
			p := NewProgram()
			p.DeclareSet("e", 2, 1)
			p.DeclareAgg("lab", 1, lattice.BitOr{})
			p.Add(R(A("lab", Var("y"), Var("m")), A("lab", Var("x"), Var("m")), A("e", Var("x"), Var("y"))))
			return p
		},
		facts: func(rng *rand.Rand) map[string][]tuple.Tuple {
			return map[string][]tuple.Tuple{
				"e":   randEdges2(rng, 12, 24),
				"lab": {{0, 1}, {1, 2}, {2, 4}},
			}
		},
	},
}

// TestDifferentialAgainstNaive runs every scenario with several seeds and
// engine configurations and compares the full relation contents against the
// naive evaluator.
func TestDifferentialAgainstNaive(t *testing.T) {
	configs := []Config{
		{Plan: ra.PlanDynamic},
		{Plan: ra.PlanStaticRight, Subs: 4},
		{Plan: ra.PlanAntiDynamic, Subs: 2},
		{Plan: ra.PlanDynamic, Adaptive: true},
	}
	for _, sc := range diffSuite {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				facts := sc.facts(rand.New(rand.NewSource(seed)))
				want, err := EvalNaive(sc.build(), facts)
				if err != nil {
					t.Fatalf("seed %d: naive: %v", seed, err)
				}
				cfg := configs[int(seed)%len(configs)]
				ranks := []int{1, 3, 5}[int(seed)%3]
				got, err := runDistributed(sc.build(), facts, ranks, cfg)
				if err != nil {
					t.Fatalf("seed %d: distributed: %v", seed, err)
				}
				for rel, wt := range want {
					gt := got[rel]
					if len(gt) != len(wt) {
						t.Fatalf("seed %d cfg %+v: %s has %d tuples, naive %d",
							seed, cfg, rel, len(gt), len(wt))
					}
					for i := range wt {
						if !gt[i].Equal(wt[i]) {
							t.Fatalf("seed %d: %s[%d] = %v, naive %v", seed, rel, i, gt[i], wt[i])
						}
					}
				}
			}
		})
	}
}

// runDistributed executes the program on a world and gathers every
// relation's full contents to compare with the naive evaluator.
func runDistributed(p *Program, facts map[string][]tuple.Tuple, ranks int, cfg Config) (map[string][]tuple.Tuple, error) {
	out := map[string][]tuple.Tuple{}
	collect := make(chan struct {
		rel string
		t   tuple.Tuple
	}, 4096)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		in, err := p.Instantiate(c, mc, cfg)
		if err != nil {
			return err
		}
		names := p.RelationNames()
		for _, name := range names {
			rel := in.Relation(name)
			ts := facts[name]
			buf := tuple.NewBuffer(rel.Arity, len(ts)/ranks+1)
			for i := c.Rank(); i < len(ts); i += ranks {
				buf.Append(ts[i])
			}
			if err := in.Load(name, buf); err != nil {
				return err
			}
		}
		in.Run(cfg)
		for _, name := range names {
			rel := in.Relation(name)
			if rel.Agg != nil {
				rel.EachAcc(func(t tuple.Tuple) {
					collect <- struct {
						rel string
						t   tuple.Tuple
					}{name, t.Clone()}
				})
				continue
			}
			rel.Canonical().Full.Ascend(func(t tuple.Tuple) bool {
				collect <- struct {
					rel string
					t   tuple.Tuple
				}{name, t.Clone()}
				return true
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	close(collect)
	for item := range collect {
		out[item.rel] = append(out[item.rel], item.t)
	}
	for rel := range out {
		ts := out[rel]
		sortTuples(ts)
		out[rel] = ts
	}
	// Relations that ended empty still need an entry for comparison.
	for _, name := range p.RelationNames() {
		if _, ok := out[name]; !ok {
			out[name] = nil
		}
	}
	return out, nil
}

func sortTuples(ts []tuple.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
