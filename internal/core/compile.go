package core

import (
	"fmt"
	"sort"

	"paralagg/internal/ra"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// binding locates a variable in the stored-order tuples of a compiled rule:
// side 0 is the left (or only) atom, side 1 the right.
type binding struct {
	side int
	pos  int
}

// check is an emit-time filter: the stored column must equal either a
// constant or another bound column (duplicate-variable equality).
type check struct {
	side, pos int
	isConst   bool
	val       tuple.Value
	other     binding
}

// argEval evaluates one resolved term against the matched pair.
type argEval func(l, r tuple.Tuple) tuple.Value

// compiled is the output of compiling one rule.
type compiled struct {
	rule ra.Rule
}

// atomBindings scans an atom's terms, returning the first-occurrence
// binding of each variable (in source positions) and the emit-time checks
// for constants and duplicate variables.
func atomBindings(a Atom, side int, bound map[Var]binding) (checks []check) {
	for pos, t := range a.Terms {
		switch tt := t.(type) {
		case Const:
			checks = append(checks, check{side: side, pos: pos, isConst: true, val: tuple.Value(tt)})
		case Var:
			if prev, ok := bound[tt]; ok {
				checks = append(checks, check{side: side, pos: pos, other: prev})
			} else {
				bound[tt] = binding{side: side, pos: pos}
			}
		}
	}
	return checks
}

// resolveTerm compiles a head or condition term to an evaluator against
// stored-order tuples.
func resolveTerm(t Term, bound map[Var]binding, stored func(binding) binding) (argEval, error) {
	switch tt := t.(type) {
	case Const:
		v := tuple.Value(tt)
		return func(l, r tuple.Tuple) tuple.Value { return v }, nil
	case Var:
		b, ok := bound[tt]
		if !ok {
			return nil, fmt.Errorf("core: unbound variable %s", tt)
		}
		sb := stored(b)
		if sb.side == 0 {
			pos := sb.pos
			return func(l, r tuple.Tuple) tuple.Value { return l[pos] }, nil
		}
		pos := sb.pos
		return func(l, r tuple.Tuple) tuple.Value { return r[pos] }, nil
	case Apply:
		evals := make([]argEval, len(tt.Args))
		for i, arg := range tt.Args {
			e, err := resolveTerm(arg, bound, stored)
			if err != nil {
				return nil, err
			}
			evals[i] = e
		}
		fn := tt.Fn
		return func(l, r tuple.Tuple) tuple.Value {
			args := make([]tuple.Value, len(evals))
			for i, e := range evals {
				args[i] = e(l, r)
			}
			return fn(args)
		}, nil
	}
	return nil, fmt.Errorf("core: unknown term type %T", t)
}

// indexFor finds or registers the index a join side needs: join-variable
// source positions first (in join order), then the remaining columns in
// ascending source order.
func indexFor(rel *relation.Relation, joinPos []int) (*relation.Index, error) {
	used := map[int]bool{}
	perm := append([]int(nil), joinPos...)
	for _, p := range joinPos {
		used[p] = true
	}
	for c := 0; c < rel.Arity; c++ {
		if !used[c] {
			perm = append(perm, c)
		}
	}
	if ix := rel.FindIndex(perm, len(joinPos)); ix != nil {
		return ix, nil
	}
	return rel.AddIndex(perm, len(joinPos))
}

// compileRule lowers a validated 1- or 2-atom rule onto a kernel. rels maps
// relation names to this rank's handles.
func compileRule(r *Rule, decls map[string]*Decl, rels map[string]*relation.Relation) (ra.Rule, error) {
	switch len(r.Body) {
	case 1:
		return compileCopy(r, rels)
	case 2:
		return compileJoin(r, decls, rels)
	}
	return nil, fmt.Errorf("core: rule %s not rewritten to binary form", r)
}

// compileCopy lowers a single-atom rule to a Δ-scan kernel over the source's
// canonical index (identity permutation, so stored order equals source
// order).
func compileCopy(r *Rule, rels map[string]*relation.Relation) (ra.Rule, error) {
	src := rels[r.Body[0].Rel]
	head := rels[r.Head.Rel]
	bound := map[Var]binding{}
	checks := atomBindings(r.Body[0], 0, bound)
	ident := func(b binding) binding { return b }

	headEvals, condEvals, err := compileEmit(r, bound, ident)
	if err != nil {
		return nil, err
	}
	arity := head.Arity
	return &ra.Copy{
		Name:   r.String(),
		Src:    src.Canonical(),
		SrcRel: src,
		Head:   head,
		Emit: func(s tuple.Tuple, out func(tuple.Tuple)) {
			if !passChecks(checks, s, nil) || !passConds(condEvals, s, nil) {
				return
			}
			t := make(tuple.Tuple, arity)
			for i, e := range headEvals {
				t[i] = e(s, nil)
			}
			out(t)
		},
	}, nil
}

// compileJoin lowers a two-atom rule to a distributed binary-join kernel,
// deriving (and registering) the index each side needs and enforcing the
// paper's restriction that aggregated columns are never join columns.
func compileJoin(r *Rule, decls map[string]*Decl, rels map[string]*relation.Relation) (ra.Rule, error) {
	left, right := r.Body[0], r.Body[1]
	lrel, rrel := rels[left.Rel], rels[right.Rel]

	lbound := map[Var]binding{}
	lchecks := atomBindings(left, 0, lbound)
	rbound := map[Var]binding{}
	rchecks := atomBindings(right, 1, rbound)

	// Join variables: bound on both sides, ordered by left position.
	type jv struct {
		v    Var
		lpos int
		rpos int
	}
	var joins []jv
	for v, lb := range lbound {
		if rb, ok := rbound[v]; ok {
			joins = append(joins, jv{v: v, lpos: lb.pos, rpos: rb.pos})
		}
	}
	sort.Slice(joins, func(i, j int) bool { return joins[i].lpos < joins[j].lpos })
	if len(joins) == 0 {
		return nil, fmt.Errorf("core: rule %s: atoms %s and %s share no variable (cartesian products are not supported)",
			r, left.Rel, right.Rel)
	}

	// The paper's restriction (§III-A): aggregated columns are never joined
	// upon within a fixpoint.
	for _, d := range []struct {
		decl *Decl
		pos  func(jv) int
		atom Atom
	}{
		{decls[left.Rel], func(j jv) int { return j.lpos }, left},
		{decls[right.Rel], func(j jv) int { return j.rpos }, right},
	} {
		if d.decl.Agg == nil {
			continue
		}
		for _, j := range joins {
			if d.pos(j) >= d.decl.Indep {
				return nil, fmt.Errorf("core: rule %s: variable %s joins on an aggregated column of %s; "+
					"recursive aggregates may not be joined on their dependent columns", r, j.v, d.atom.Rel)
			}
		}
	}

	lpos := make([]int, len(joins))
	rpos := make([]int, len(joins))
	for i, j := range joins {
		lpos[i] = j.lpos
		rpos[i] = j.rpos
	}
	lix, err := indexFor(lrel, lpos)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s: %v", r, err)
	}
	rix, err := indexFor(rrel, rpos)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s: %v", r, err)
	}

	// Translate source positions to stored positions through each side's
	// permutation.
	linv := invert(lix.Perm)
	rinv := invert(rix.Perm)
	stored := func(b binding) binding {
		if b.side == 0 {
			return binding{side: 0, pos: linv[b.pos]}
		}
		return binding{side: 1, pos: rinv[b.pos]}
	}
	merged := map[Var]binding{}
	for v, b := range lbound {
		merged[v] = b
	}
	for v, b := range rbound {
		if _, dup := merged[v]; !dup {
			merged[v] = b
		}
	}
	var checks []check
	for _, c := range lchecks {
		checks = append(checks, storedCheck(c, stored))
	}
	for _, c := range rchecks {
		checks = append(checks, storedCheck(c, stored))
	}

	headEvals, condEvals, err := compileEmit(r, merged, stored)
	if err != nil {
		return nil, err
	}
	head := rels[r.Head.Rel]
	arity := head.Arity
	return &ra.Join{
		Name:     r.String(),
		Left:     lix,
		Right:    rix,
		LeftRel:  lrel,
		RightRel: rrel,
		Head:     head,
		JK:       len(joins),
		Emit: func(l, rr tuple.Tuple, out func(tuple.Tuple)) {
			if !passChecks(checks, l, rr) || !passConds(condEvals, l, rr) {
				return
			}
			t := make(tuple.Tuple, arity)
			for i, e := range headEvals {
				t[i] = e(l, rr)
			}
			out(t)
		},
	}, nil
}

// compileEmit resolves the head terms and conditions of a rule.
func compileEmit(r *Rule, bound map[Var]binding, stored func(binding) binding) (heads []argEval, conds []condEval, err error) {
	for _, t := range r.Head.Terms {
		e, err := resolveTerm(t, bound, stored)
		if err != nil {
			return nil, nil, fmt.Errorf("core: rule %s: %v", r, err)
		}
		heads = append(heads, e)
	}
	for _, c := range r.Conds {
		evals := make([]argEval, len(c.Args))
		for i, arg := range c.Args {
			e, err := resolveTerm(arg, bound, stored)
			if err != nil {
				return nil, nil, fmt.Errorf("core: rule %s: condition %s: %v", r, c.Name, err)
			}
			evals[i] = e
		}
		conds = append(conds, condEval{pred: c.Pred, args: evals})
	}
	return heads, conds, nil
}

type condEval struct {
	pred func([]tuple.Value) bool
	args []argEval
}

func storedCheck(c check, stored func(binding) binding) check {
	sb := stored(binding{side: c.side, pos: c.pos})
	out := check{side: sb.side, pos: sb.pos, isConst: c.isConst, val: c.val}
	if !c.isConst {
		out.other = stored(c.other)
	}
	return out
}

func passChecks(checks []check, l, r tuple.Tuple) bool {
	at := func(b int, pos int) tuple.Value {
		if b == 0 {
			return l[pos]
		}
		return r[pos]
	}
	for _, c := range checks {
		got := at(c.side, c.pos)
		if c.isConst {
			if got != c.val {
				return false
			}
		} else if got != at(c.other.side, c.other.pos) {
			return false
		}
	}
	return true
}

func passConds(conds []condEval, l, r tuple.Tuple) bool {
	for _, c := range conds {
		args := make([]tuple.Value, len(c.args))
		for i, e := range c.args {
			args[i] = e(l, r)
		}
		if !c.pred(args) {
			return false
		}
	}
	return true
}

func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for i, c := range perm {
		inv[c] = i
	}
	return inv
}

// rewriteRules chains every rule with three or more body atoms through
// intermediate set relations, returning the binary/unary rule list and the
// intermediate declarations. Conditions attach to the earliest stage where
// all their variables are bound; later stages carry exactly the variables
// still needed.
func rewriteRules(rules []*Rule) ([]*Rule, []*Decl, error) {
	var out []*Rule
	var extra []*Decl
	tmpN := 0
	for _, r := range rules {
		if len(r.Body) <= 2 {
			out = append(out, r)
			continue
		}
		// Variables needed by the head or conditions (Applies may nest).
		needed := map[Var]bool{}
		var collect func(t Term)
		collect = func(t Term) {
			switch tt := t.(type) {
			case Var:
				needed[tt] = true
			case Apply:
				for _, a := range tt.Args {
					collect(a)
				}
			}
		}
		for _, t := range r.Head.Terms {
			collect(t)
		}
		for _, c := range r.Conds {
			for _, t := range c.Args {
				collect(t)
			}
		}
		atomVars := func(a Atom) map[Var]bool {
			m := map[Var]bool{}
			for _, t := range a.Terms {
				if v, ok := t.(Var); ok {
					m[v] = true
				}
			}
			return m
		}
		condReady := make([]bool, len(r.Conds))

		cur := r.Body[0]
		bound := atomVars(cur)
		for k := 1; k < len(r.Body); k++ {
			next := r.Body[k]
			for v := range atomVars(next) {
				bound[v] = true
			}
			// Conditions evaluable after joining `next`.
			var conds []Cond
			for ci, c := range r.Conds {
				if condReady[ci] {
					continue
				}
				ready := true
				for _, t := range c.Args {
					if v, ok := t.(Var); ok && !bound[v] {
						ready = false
						break
					}
				}
				if ready {
					condReady[ci] = true
					conds = append(conds, c)
				}
			}
			if k == len(r.Body)-1 {
				out = append(out, &Rule{Head: r.Head, Body: []Atom{cur, next}, Conds: conds})
				break
			}
			// Keep variables needed later: by the head/conds or by
			// remaining atoms.
			keep := map[Var]bool{}
			for v := range needed {
				if bound[v] {
					keep[v] = true
				}
			}
			for kk := k + 1; kk < len(r.Body); kk++ {
				for v := range atomVars(r.Body[kk]) {
					if bound[v] {
						keep[v] = true
					}
				}
			}
			vars := make([]Var, 0, len(keep))
			for v := range keep {
				vars = append(vars, v)
			}
			sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
			if len(vars) == 0 {
				return nil, nil, fmt.Errorf("core: rule %s: intermediate stage binds no needed variables", r)
			}
			name := fmt.Sprintf("__tmp%d", tmpN)
			tmpN++
			d := &Decl{Name: name, Arity: len(vars), Indep: len(vars), Key: 1}
			extra = append(extra, d)
			terms := make([]Term, len(vars))
			for i, v := range vars {
				terms[i] = v
			}
			out = append(out, &Rule{Head: Atom{Rel: name, Terms: terms}, Body: []Atom{cur, next}, Conds: conds})
			cur = Atom{Rel: name, Terms: terms}
			bound = atomVars(cur)
		}
	}
	return out, extra, nil
}
