package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the compiled execution plan of a program without running
// it: the strata in evaluation order, each rule's kernel kind, the join
// keys, and every B-tree index the joins require. It validates and rewrites
// exactly like Instantiate, so a program that Explains cleanly will
// instantiate cleanly.
func (p *Program) Explain() (string, error) {
	if err := p.validate(); err != nil {
		return "", err
	}
	rules, extraDecls, err := rewriteRules(p.rules)
	if err != nil {
		return "", err
	}
	decls := make(map[string]*Decl, len(p.decls)+len(extraDecls))
	for n, d := range p.decls {
		decls[n] = d
	}
	for _, d := range extraDecls {
		decls[d.Name] = d
	}

	// Track which indexes each relation needs, mirroring compileJoin's
	// derivation.
	type indexReq struct {
		perm []int
		jk   int
	}
	indexes := map[string][]indexReq{}
	needIndex := func(rel string, joinPos []int) {
		d := decls[rel]
		used := map[int]bool{}
		perm := append([]int(nil), joinPos...)
		for _, p := range joinPos {
			used[p] = true
		}
		for c := 0; c < d.Arity; c++ {
			if !used[c] {
				perm = append(perm, c)
			}
		}
		for _, r := range indexes[rel] {
			if r.jk == len(joinPos) && equalInts(r.perm, perm) {
				return
			}
		}
		indexes[rel] = append(indexes[rel], indexReq{perm: perm, jk: len(joinPos)})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "program: %d relations, %d rules", len(p.decls), len(p.rules))
	if len(extraDecls) > 0 {
		fmt.Fprintf(&b, " (+%d intermediates from n-ary bodies)", len(extraDecls))
	}
	b.WriteByte('\n')

	for si, stratumRules := range p.stratify(rules) {
		heads := map[string]bool{}
		for _, r := range stratumRules {
			heads[r.Head.Rel] = true
		}
		var headNames []string
		for h := range heads {
			headNames = append(headNames, h)
		}
		sort.Strings(headNames)
		fmt.Fprintf(&b, "stratum %d: computes %s\n", si, strings.Join(headNames, ", "))
		for _, r := range stratumRules {
			recursive := false
			for _, a := range r.Body {
				if heads[a.Rel] {
					recursive = true
				}
			}
			tag := "copy"
			if len(r.Body) == 2 {
				tag = "join"
			}
			if recursive {
				tag += ", recursive"
			}
			fmt.Fprintf(&b, "  rule (%s): %s\n", tag, r)
			if len(r.Body) == 2 {
				joins := sharedVars(r.Body[0], r.Body[1])
				if len(joins) > 0 {
					var lpos, rpos []int
					for _, v := range joins {
						lpos = append(lpos, firstPos(r.Body[0], v))
						rpos = append(rpos, firstPos(r.Body[1], v))
					}
					fmt.Fprintf(&b, "    join on %v: %s cols %v ⋈ %s cols %v\n",
						joins, r.Body[0].Rel, lpos, r.Body[1].Rel, rpos)
					needIndex(r.Body[0].Rel, lpos)
					needIndex(r.Body[1].Rel, rpos)
				}
			}
		}
	}

	var relNames []string
	for n := range decls {
		relNames = append(relNames, n)
	}
	sort.Strings(relNames)
	b.WriteString("indexes:\n")
	for _, n := range relNames {
		d := decls[n]
		kind := "set"
		if d.Agg != nil {
			kind = "agg " + d.Agg.Name()
		}
		fmt.Fprintf(&b, "  %s (%s, arity %d): canonical jk=%d", n, kind, d.Arity, d.Key)
		for _, r := range indexes[n] {
			fmt.Fprintf(&b, "; perm=%v jk=%d", r.perm, r.jk)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// sharedVars lists variables bound in both atoms, ordered by left position
// (matching compileJoin).
func sharedVars(l, r Atom) []Var {
	inRight := map[Var]bool{}
	for _, t := range r.Terms {
		if v, ok := t.(Var); ok {
			inRight[v] = true
		}
	}
	var out []Var
	seen := map[Var]bool{}
	for _, t := range l.Terms {
		if v, ok := t.(Var); ok && inRight[v] && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func firstPos(a Atom, v Var) int {
	for i, t := range a.Terms {
		if tv, ok := t.(Var); ok && tv == v {
			return i
		}
	}
	return -1
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
