// Package resource implements the per-rank memory accountant behind the
// runtime's overload defenses. The engine's storage is concentrated in a
// handful of arena-backed structures (wordmap arenas, B-tree nodes, the TCP
// retransmission outbox), so instead of instrumenting every allocation the
// accountant samples cheap O(1) capacity accessors once per fixpoint
// iteration and folds in a delta-maintained outbox gauge. Against a
// configured budget it derives a pressure level, and the fixpoint driver
// turns that level into a ladder of responses: shrink scratch pools and
// checkpoint early under soft pressure, fail the iteration with a
// structured, supervisor-recoverable error under hard pressure — never an
// uncontrolled OOM kill.
//
// "Processing Database Joins over a Shared-Nothing System of Multicore
// Machines" (PAPERS.md) makes the same argument for memory-constrained
// shared-nothing execution: a rank that knows its budget can degrade or
// shed; a rank that discovers the limit from the kernel's OOM killer
// cannot.
package resource

import (
	"fmt"
	"sync/atomic"
)

// WordBytes is the size of one tuple word; the storage hooks report words,
// the accountant and its budget speak bytes.
const WordBytes = 8

// Level is a pressure reading against the budget.
type Level int32

const (
	// LevelNone: usage is comfortably under budget.
	LevelNone Level = iota
	// LevelSoft: usage crossed the soft watermark (85% of budget). The
	// driver should shed reclaimable memory (scratch pools) and bring the
	// next checkpoint forward so a later hard failure loses little work.
	LevelSoft
	// LevelHard: usage reached the budget. The driver must stop growing
	// state: fail the iteration with ErrMemoryBudget and let the
	// supervisor recover from the last checkpoint.
	LevelHard
)

func (l Level) String() string {
	switch l {
	case LevelSoft:
		return "soft"
	case LevelHard:
		return "hard"
	default:
		return "none"
	}
}

// softNum/softDen place the soft watermark at 85% of the budget.
const (
	softNum = 85
	softDen = 100
)

// Accountant tracks one rank's accounted memory against a byte budget. All
// methods are safe on a nil receiver (accounting disabled) and safe for
// concurrent use: the transport's outbox hooks run on socket goroutines
// while the fixpoint driver samples compute state.
type Accountant struct {
	budget int64
	soft   int64

	// compute is the last sampled resident-structure footprint (relation
	// arenas, trees, scratch), republished absolutely each iteration.
	compute atomic.Int64
	// outbox is the delta-maintained footprint of unacknowledged transport
	// frames across all peers.
	outbox atomic.Int64
	// phantom is chaos-injected synthetic usage (the MemPressure fault):
	// deterministic pressure without actually burning host memory.
	phantom atomic.Int64

	peak       atomic.Int64
	softEvents atomic.Int64
	hardEvents atomic.Int64
}

// NewAccountant returns an accountant enforcing the given byte budget.
// budget <= 0 means "account but never pressure" (useful for peak
// measurement).
func NewAccountant(budget int64) *Accountant {
	if budget < 0 {
		budget = 0
	}
	return &Accountant{budget: budget, soft: budget / softDen * softNum}
}

// Budget returns the configured byte budget (0 = unlimited).
func (a *Accountant) Budget() int64 {
	if a == nil {
		return 0
	}
	return a.budget
}

// SetComputeWords republishes the sampled footprint of the rank's resident
// compute structures, in words.
func (a *Accountant) SetComputeWords(w int64) {
	if a == nil {
		return
	}
	a.compute.Store(w * WordBytes)
	a.observePeak()
}

// AddOutboxWords adjusts the transport outbox gauge by delta words
// (negative on ack/prune).
func (a *Accountant) AddOutboxWords(delta int64) {
	if a == nil {
		return
	}
	if a.outbox.Add(delta*WordBytes) < 0 {
		// A release raced a reset; clamp rather than go negative.
		a.outbox.Store(0)
	}
	a.observePeak()
}

// SetPhantomBytes publishes chaos-injected synthetic usage.
func (a *Accountant) SetPhantomBytes(b int64) {
	if a == nil {
		return
	}
	a.phantom.Store(b)
	a.observePeak()
}

// AddPhantomBytes accumulates chaos-injected synthetic usage (a fired
// MemPressure fault persists for the rest of the run).
func (a *Accountant) AddPhantomBytes(b int64) {
	if a == nil {
		return
	}
	a.phantom.Add(b)
	a.observePeak()
}

// UsedBytes returns the current accounted total.
func (a *Accountant) UsedBytes() int64 {
	if a == nil {
		return 0
	}
	return a.compute.Load() + a.outbox.Load() + a.phantom.Load()
}

// PeakBytes returns the high-water mark of UsedBytes.
func (a *Accountant) PeakBytes() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

func (a *Accountant) observePeak() {
	u := a.UsedBytes()
	for {
		p := a.peak.Load()
		if u <= p || a.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// Level reads the current pressure level against the budget.
func (a *Accountant) Level() Level {
	if a == nil || a.budget <= 0 {
		return LevelNone
	}
	u := a.UsedBytes()
	switch {
	case u >= a.budget:
		return LevelHard
	case u >= a.soft:
		return LevelSoft
	default:
		return LevelNone
	}
}

// CountPressure records that the driver acted on a pressure level;
// observability reads the totals back.
func (a *Accountant) CountPressure(l Level) {
	if a == nil {
		return
	}
	switch l {
	case LevelSoft:
		a.softEvents.Add(1)
	case LevelHard:
		a.hardEvents.Add(1)
	}
}

// PressureEvents returns how many soft and hard pressure responses fired.
func (a *Accountant) PressureEvents() (soft, hard int64) {
	if a == nil {
		return 0, 0
	}
	return a.softEvents.Load(), a.hardEvents.Load()
}

// ErrMemoryBudget is the structured hard-pressure failure: a rank's
// accounted usage reached the configured budget and the world shed the
// iteration rather than letting the rank OOM. The response is collective —
// every rank fails with one of these, Rank naming the reporting rank and
// Used the world's worst accounted usage (the number that tripped the
// budget). It travels inside mpi.ErrRankFailed, so the supervisor's normal
// recover-from-checkpoint machinery applies.
type ErrMemoryBudget struct {
	Rank   int
	Iter   int
	Used   int64
	Budget int64
}

func (e *ErrMemoryBudget) Error() string {
	return fmt.Sprintf("resource: memory budget exhausted at iteration %d: worst rank holds %d of %d budgeted bytes (reported by rank %d)",
		e.Iter, e.Used, e.Budget, e.Rank)
}
