package resource

import (
	"sync"
	"testing"
)

// The pressure ladder against a 1000-byte budget: none below 850 (the 85%
// soft watermark), soft in [850, 1000), hard at and past 1000.
func TestLevelLadder(t *testing.T) {
	a := NewAccountant(1000)
	cases := []struct {
		bytes int64
		want  Level
	}{
		{0, LevelNone},
		{849, LevelNone},
		{850, LevelSoft},
		{999, LevelSoft},
		{1000, LevelHard},
		{5000, LevelHard},
	}
	for _, tc := range cases {
		a.SetPhantomBytes(tc.bytes)
		if got := a.Level(); got != tc.want {
			t.Errorf("Level() at %d bytes = %v, want %v", tc.bytes, got, tc.want)
		}
	}
}

// Usage is the sum of the three gauges; the peak is a high-water mark that
// survives gauges falling back down.
func TestUsedAndPeak(t *testing.T) {
	a := NewAccountant(0)
	a.SetComputeWords(10) // 80 bytes
	a.AddOutboxWords(5)   // +40 bytes
	a.AddPhantomBytes(7)  // +7 bytes
	if got := a.UsedBytes(); got != 127 {
		t.Fatalf("UsedBytes() = %d, want 127", got)
	}
	a.AddOutboxWords(-5)
	a.SetComputeWords(1)
	if got := a.UsedBytes(); got != 15 {
		t.Fatalf("UsedBytes() after release = %d, want 15", got)
	}
	if got := a.PeakBytes(); got != 127 {
		t.Fatalf("PeakBytes() = %d, want the 127 high-water mark", got)
	}
}

// An over-released outbox (a release racing a reset) clamps to zero instead
// of going negative and corrupting the total.
func TestOutboxClampsAtZero(t *testing.T) {
	a := NewAccountant(0)
	a.AddOutboxWords(3)
	a.AddOutboxWords(-10)
	if got := a.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes() after over-release = %d, want 0", got)
	}
}

// A zero (or negative) budget accounts but never pressures — the peak-
// measurement mode Exec uses for Result.MemPeakBytes.
func TestZeroBudgetNeverPressures(t *testing.T) {
	a := NewAccountant(0)
	a.SetPhantomBytes(1 << 40)
	if got := a.Level(); got != LevelNone {
		t.Fatalf("Level() with no budget = %v, want none", got)
	}
	if NewAccountant(-5).Budget() != 0 {
		t.Fatal("negative budget did not normalize to 0")
	}
}

// Every method is a safe no-op on a nil accountant (accounting disabled).
func TestNilAccountantIsSafe(t *testing.T) {
	var a *Accountant
	a.SetComputeWords(10)
	a.AddOutboxWords(10)
	a.SetPhantomBytes(10)
	a.AddPhantomBytes(10)
	a.CountPressure(LevelHard)
	if a.UsedBytes() != 0 || a.PeakBytes() != 0 || a.Budget() != 0 {
		t.Fatal("nil accountant reported nonzero state")
	}
	if a.Level() != LevelNone {
		t.Fatal("nil accountant reported pressure")
	}
	if s, h := a.PressureEvents(); s != 0 || h != 0 {
		t.Fatal("nil accountant reported pressure events")
	}
}

// CountPressure/PressureEvents tally the driver's responses by level.
func TestPressureEventCounters(t *testing.T) {
	a := NewAccountant(100)
	a.CountPressure(LevelSoft)
	a.CountPressure(LevelSoft)
	a.CountPressure(LevelHard)
	a.CountPressure(LevelNone) // not an event
	if s, h := a.PressureEvents(); s != 2 || h != 1 {
		t.Fatalf("PressureEvents() = (%d, %d), want (2, 1)", s, h)
	}
}

// The outbox gauge is charged from socket goroutines while the fixpoint
// samples compute state: concurrent use must neither race nor lose deltas.
func TestConcurrentCharging(t *testing.T) {
	a := NewAccountant(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.AddOutboxWords(1)
				a.AddOutboxWords(-1)
			}
		}()
	}
	wg.Wait()
	if got := a.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes() after balanced concurrent charges = %d, want 0", got)
	}
	if a.PeakBytes() < int64(WordBytes) {
		t.Fatalf("PeakBytes() = %d, want at least one word", a.PeakBytes())
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelNone.String() != "none" || LevelSoft.String() != "soft" || LevelHard.String() != "hard" {
		t.Fatal("Level strings changed — observability consumers key on none/soft/hard")
	}
}
