package ra

import (
	"paralagg/internal/metrics"
	"paralagg/internal/tuple"
)

// This file implements the deletion half of incremental maintenance: the
// over-approximate invalidation pass. Base-fact deletions are seeded into
// the affected relations' Δ (relation.DeleteBatch leaves exactly the
// dropped tuples there); Invalidate then chases dependents through the
// stratum's rules, dropping every head tuple that *might* have been derived
// from a dropped support, until no rule produces a new candidate. The pass
// over-approximates — a dropped tuple may still be derivable from surviving
// supports — which is sound because the caller re-runs the fixpoint
// afterwards with the EDB Δ re-seeded from FULL, re-deriving everything the
// survivors still justify. Monotone convergence of the re-fixpoint then
// lands on exactly the least model of the post-deletion database.

// invalidationRule is implemented by kernels that can enumerate the head
// candidates derivable from dropped body tuples.
type invalidationRule interface {
	runInvalidation(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer)
}

// runInvalidation derives every head candidate with at least one dropped
// body tuple. Unlike the semi-naïve insert variants, Δ here holds tuples
// *removed from* FULL, so FULL∩Δ = ∅ and three variants are needed: Δ⋈FULL
// and FULL⋈Δ cover pairs with one dropped side, Δ⋈Δ covers pairs where both
// supports fell in the same round (the standard two variants would miss
// them because neither side is in FULL any more). Duplicate candidates
// across variants are harmless — DeleteBatch deduplicates at the owner.
func (j *Join) runInvalidation(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	lc := j.LeftRel.ChangedLast() > 0
	rc := j.RightRel.ChangedLast() > 0
	if lc {
		j.Run(iter, VDelta, VFull, mode, mc, pending)
	}
	if rc {
		j.Run(iter, VFull, VDelta, mode, mc, pending)
	}
	if lc && rc {
		j.Run(iter, VDelta, VDelta, mode, mc, pending)
	}
}

// runInvalidation for copies: a dropped source tuple invalidates its
// projection in the head.
func (cp *Copy) runInvalidation(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	if cp.SrcRel.ChangedLast() > 0 {
		cp.Run(iter, mc, pending)
	}
}

// Invalidate runs invalidation rounds until no relation drops a tuple,
// returning the number of rounds and the total tuples dropped (heads only —
// the caller already counted its base-fact seed drops). Collective. On
// entry the deleted base facts must have been seeded via DeleteBatch (their
// relations' Δ holds the drops and ChangedLast gates the variants); every
// aggregated relation of the stratum must be inside a BeginDelete/EndDelete
// bracket spanning the seed, this call, and the compaction. On exit every
// relation's Δ is empty and its changed count is zero, ready for the
// caller's re-seeding.
func (f *Fixpoint) Invalidate(opts Options) (rounds int, dropped uint64) {
	f.prepare()
	iter := 0
	for {
		f.Comm.SetEpoch(iter)
		for _, h := range f.heads {
			f.pending[h].Reset()
		}
		for _, r := range f.Rules {
			if inv, ok := r.(invalidationRule); ok {
				inv.runInvalidation(iter, opts.Plan, f.MC, f.pending[r.HeadRel()])
			}
		}
		n := uint64(0)
		for _, h := range f.heads {
			n += h.DeleteBatch(f.pending[h])
		}
		// The seed Δ on body-only relations has been consumed once; clear it
		// so the next round only chases this round's head drops.
		for _, b := range f.bodyOnly {
			if b.ChangedLast() > 0 {
				b.ClearDelta()
			}
		}
		rounds++
		dropped += n
		iter++
		if n == 0 {
			return rounds, dropped
		}
	}
}
