package ra

// Checkpoint cross-version compatibility. The files under
// testdata/golden-2rank were written by the string-keyed-map snapshot
// encoder that predates the wordmap storage refactor (PR 4); the tests here
// restore them through the current decode paths — same-size and elastic
// remap — and require the restored relations to match a live twin loaded
// through the normal materialization path. Any change to the snapshot
// word layout breaks these tests, which is the point: checkpoints written
// by released binaries must keep resuming.
//
// To regenerate the fixture after an INTENTIONAL format change (requires a
// matching format-version bump and migration story):
//
//	PARALAGG_WRITE_GOLDEN=1 go test ./internal/ra -run TestGoldenCheckpoint -v

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

const (
	goldenDir     = "testdata/golden-2rank"
	goldenRanks   = 2
	goldenStratum = 0
	goldenIter    = 2
)

// buildGoldenRels constructs the fixture's three relations — aggregated,
// set, and leaky — identically on every rank.
func buildGoldenRels(t *testing.T, c *mpi.Comm, mc *metrics.Collector) []*relation.Relation {
	t.Helper()
	sp, err := relation.New(relation.Schema{Name: "g_sp", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}},
		c, mc, relation.Config{Subs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.AddIndex([]int{1, 0, 2}, 1); err != nil {
		t.Fatal(err)
	}
	edge, err := relation.New(relation.Schema{Name: "g_edge", Arity: 2, Indep: 2, Key: 1},
		c, mc, relation.Config{Subs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := edge.AddIndex([]int{1, 0}, 1); err != nil {
		t.Fatal(err)
	}
	leaky, err := relation.New(relation.Schema{Name: "g_leaky", Arity: 3, Indep: 3, Key: 2},
		c, mc, relation.Config{Leaky: &relation.LeakySpec{Agg: lattice.Min{}, Indep: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return []*relation.Relation{sp, edge, leaky}
}

// loadGoldenRels drives two materialization rounds so the snapshot captures
// a mid-fixpoint state: non-empty Δ, improved accumulator values, stale-free
// secondary indexes, and assigned tuple ids.
func loadGoldenRels(c *mpi.Comm, rels []*relation.Relation) {
	sp, edge, leaky := rels[0], rels[1], rels[2]
	rank, size := c.Rank(), c.Size()

	buf := tuple.NewBuffer(3, 64)
	for i := rank; i < 120; i += size {
		buf.Append(tuple.Tuple{tuple.Value(i % 11), tuple.Value(i % 7), tuple.Value(200 - i)})
	}
	sp.Materialize(0, buf, false)
	buf.Reset()
	for i := rank; i < 120; i += size {
		if i%3 == 0 { // improvements for a third of the keys
			buf.Append(tuple.Tuple{tuple.Value(i % 11), tuple.Value(i % 7), tuple.Value(40 + i%5)})
		}
	}
	sp.Materialize(1, buf, false)

	ebuf := tuple.NewBuffer(2, 64)
	for i := rank; i < 90; i += size {
		ebuf.Append(tuple.Tuple{tuple.Value(i % 13), tuple.Value(i)})
	}
	edge.Materialize(0, ebuf, false)
	ebuf.Reset()
	for i := rank; i < 30; i += size {
		ebuf.Append(tuple.Tuple{tuple.Value(i % 13), tuple.Value(1000 + i)})
	}
	edge.Materialize(1, ebuf, false)

	lbuf := tuple.NewBuffer(3, 64)
	for i := rank; i < 60; i += size {
		lbuf.Append(tuple.Tuple{tuple.Value(i % 5), tuple.Value(i % 3), tuple.Value(100 - i)})
	}
	leaky.Materialize(0, lbuf, false)
	lbuf.Reset()
	for i := rank; i < 60; i += size {
		lbuf.Append(tuple.Tuple{tuple.Value(i % 5), tuple.Value(i % 3), tuple.Value(80 - i)})
	}
	leaky.Materialize(1, lbuf, false)
}

// relFingerprint digests one relation's global contents order-independently:
// canonical FULL, canonical Δ, every secondary index, the accumulator view,
// and the id population.
type relFingerprint struct {
	Full, Delta, Acc, Sec, IDs uint64
	Count                      uint64
}

func fpHash(t tuple.Tuple) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range t {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	return h
}

func fingerprint(c *mpi.Comm, r *relation.Relation) relFingerprint {
	var fp relFingerprint
	canon := r.Canonical()
	canon.Full.Ascend(func(t tuple.Tuple) bool { fp.Full += fpHash(t); fp.Count++; return true })
	canon.Delta.Ascend(func(t tuple.Tuple) bool { fp.Delta += fpHash(t); return true })
	for _, ix := range r.Indexes()[1:] {
		ix.Full.Ascend(func(t tuple.Tuple) bool { fp.Sec += fpHash(t); return true })
	}
	r.EachAcc(func(t tuple.Tuple) { fp.Acc += fpHash(t) })
	fp.IDs = uint64(r.LocalIDCount())
	return relFingerprint{
		Full:  c.Allreduce(fp.Full, mpi.OpSum),
		Delta: c.Allreduce(fp.Delta, mpi.OpSum),
		Acc:   c.Allreduce(fp.Acc, mpi.OpSum),
		Sec:   c.Allreduce(fp.Sec, mpi.OpSum),
		IDs:   c.Allreduce(fp.IDs, mpi.OpSum),
		Count: c.Allreduce(fp.Count, mpi.OpSum),
	}
}

// TestGoldenCheckpointWrite regenerates the fixture; it is a no-op unless
// PARALAGG_WRITE_GOLDEN=1 is set (see the file comment for when that is
// legitimate).
func TestGoldenCheckpointWrite(t *testing.T) {
	if os.Getenv("PARALAGG_WRITE_GOLDEN") != "1" {
		t.Skip("set PARALAGG_WRITE_GOLDEN=1 to regenerate the golden checkpoint")
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	sink := FileCheckpointSink{Dir: goldenDir}
	w := mpi.NewWorld(goldenRanks)
	mc := metrics.NewCollector(goldenRanks)
	err := w.Run(func(c *mpi.Comm) error {
		rels := buildGoldenRels(t, c, mc)
		loadGoldenRels(c, rels)
		f := &Fixpoint{Comm: c, MC: mc}
		f.checkpoint(Options{Sink: sink, Stratum: goldenStratum, SnapshotRels: rels}, goldenIter)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 0; rk < goldenRanks; rk++ {
		// Regeneration writes the current (versioned) format into the next
		// generation slot; the committed fixture keeps the legacy names.
		matches, err := filepath.Glob(filepath.Join(goldenDir, fmt.Sprintf("rank-%04d*.ckpt", rk)))
		if err != nil || len(matches) == 0 {
			t.Fatalf("golden file for rank %d missing: %v %v", rk, matches, err)
		}
	}
}

// TestGoldenCheckpointSameSizeRestore restores the pre-refactor fixture on a
// world of the size that wrote it and requires the result to match a live
// twin loaded through the normal materialization path.
func TestGoldenCheckpointSameSizeRestore(t *testing.T) {
	sink := FileCheckpointSink{Dir: goldenDir}
	w := mpi.NewWorld(goldenRanks)
	mc := metrics.NewCollector(goldenRanks)
	err := w.Run(func(c *mpi.Comm) error {
		restored := buildGoldenRels(t, c, mc)
		f := &Fixpoint{Comm: c, MC: mc}
		cp, ok, err := LatestAgreed(c, sink)
		if err != nil {
			return err
		}
		if !ok {
			t.Fatal("golden checkpoint missing")
		}
		if cp.Ranks != goldenRanks || cp.Stratum != goldenStratum || cp.Iter != goldenIter {
			t.Fatalf("golden position = (%d,%d,%d)", cp.Ranks, cp.Stratum, cp.Iter)
		}
		if err := f.restoreSnapshot(Options{SnapshotRels: restored}, cp.Words); err != nil {
			return err
		}

		live := buildGoldenRels(t, c, mc)
		loadGoldenRels(c, live)
		for i, r := range restored {
			got, want := fingerprint(c, r), fingerprint(c, live[i])
			if got != want {
				t.Errorf("relation %s: restored fingerprint %+v, live %+v", r.Name, got, want)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Errorf("relation %s after golden restore: %v", r.Name, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCheckpointElasticRestore remaps the 2-rank fixture into a 3-rank
// world: every tuple re-hashes through the new layout and the union must
// still match a live twin loaded at 3 ranks.
func TestGoldenCheckpointElasticRestore(t *testing.T) {
	sink := FileCheckpointSink{Dir: goldenDir}
	const newRanks = 3
	w := mpi.NewWorld(newRanks)
	mc := metrics.NewCollector(newRanks)
	err := w.Run(func(c *mpi.Comm) error {
		restored := buildGoldenRels(t, c, mc)
		f := &Fixpoint{Comm: c, MC: mc}
		pos, ok, err := AgreedPosition(c, sink)
		if err != nil {
			return err
		}
		if !ok {
			t.Fatal("golden checkpoint missing")
		}
		cps, err := CollectRemap(sink, pos)
		if err != nil {
			return err
		}
		// Decode a second copy of the set to compute the snapshot union each
		// relation must come back with (remapSnapshots consumes its inputs).
		unions := make([]relFingerprint, len(restored))
		payloads := make([][]mpi.Word, len(cps))
		for i := range cps {
			payloads[i] = cps[i].Words
		}
		for ri, r := range restored {
			for i := range payloads {
				n := int(payloads[i][0])
				s, err := r.DecodeSnapshotWords(payloads[i][1 : 1+n])
				if err != nil {
					return err
				}
				payloads[i] = payloads[i][1+n:]
				for _, tt := range s.Trees[0][0] {
					unions[ri].Full += fpHash(tt)
					unions[ri].Count++
				}
				for _, tt := range s.Trees[0][1] {
					unions[ri].Delta += fpHash(tt)
				}
				for _, tr := range s.Trees[1:] {
					for _, tt := range tr[0] {
						unions[ri].Sec += fpHash(tt)
					}
				}
				for _, tt := range s.Acc {
					unions[ri].Acc += fpHash(tt)
				}
				unions[ri].IDs += uint64(len(s.IDs))
			}
		}
		if _, err := f.remapSnapshots(Options{SnapshotRels: restored}, cps); err != nil {
			return err
		}

		// Every relation must come back with exactly the snapshot union (the
		// remap may not lose or duplicate a single tuple)...
		for i, r := range restored {
			got := fingerprint(c, r)
			if got != unions[i] {
				t.Errorf("relation %s: remapped fingerprint %+v, snapshot union %+v", r.Name, got, unions[i])
			}
			if err := r.CheckInvariants(); err != nil {
				t.Errorf("relation %s after golden remap: %v", r.Name, err)
			}
		}
		// ...and the placement-canonical relations (not leaky: its per-rank
		// pruning caches are world-size dependent by design) must also match a
		// live twin loaded directly at the new size.
		live := buildGoldenRels(t, c, mc)
		loadGoldenRels(c, live)
		for i, r := range restored[:2] {
			got, want := fingerprint(c, r), fingerprint(c, live[i])
			if got != want {
				t.Errorf("relation %s: remapped fingerprint %+v, live %+v", r.Name, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
