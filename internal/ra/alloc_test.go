package ra

// Steady-state allocation regression: once a fixpoint has converged, running
// one more iteration — rule-variant dispatch, head materialization (empty
// pending still exchanges, flips Δ versions, and agrees on the changed
// count), and the fixpoint decision — must not allocate at all on a
// single-rank world. This pins the whole reuse chain: the Fixpoint's
// prepared pending buffers, the relation exchange scratch, the word-map
// accumulator, and the single-rank collective fast paths.

import (
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

func TestSteadyStateIterationAllocFree(t *testing.T) {
	steadyStateAllocFree(t, false)
}

// The integrity path must preserve the zero-alloc property: fingerprinting
// reuses the relation's digest scratch and the 6-word Allreduce vectors, so
// turning detection on costs hashing time but no steady-state garbage.
func TestSteadyStateIterationAllocFreeIntegrity(t *testing.T) {
	steadyStateAllocFree(t, true)
}

func steadyStateAllocFree(t *testing.T, integrity bool) {
	es := randGraph(40, 160, 17, 5)
	w := mpi.NewWorld(1)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(1)
		rcfg := relation.Config{Subs: 1, Integrity: integrity}
		edgeRel, err := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1}, c, mc, rcfg)
		if err != nil {
			return err
		}
		sp, err := relation.New(relation.Schema{Name: "spath", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}}, c, mc, rcfg)
		if err != nil {
			return err
		}
		spMid, err := sp.AddIndex([]int{1, 0, 2}, 1)
		if err != nil {
			return err
		}
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v, es[i].w})
		})
		seed := tuple.NewBuffer(3, 1)
		seed.Append(tuple.Tuple{0, 0, 0})
		sp.LoadFacts(seed)

		join := &Join{
			Name: "spath(f,t,min(l+w)) <- spath(f,m,l), edge(m,t,w)",
			Left: spMid, LeftRel: sp,
			Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: sp, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{l[1], r[1], l[2] + r[2]})
			},
		}
		fx := NewFixpoint(c, mc, join)
		opts := Options{Plan: PlanDynamic}
		fx.Run(opts) // converge; scratch is warm from the live iterations

		// At the fixpoint, another Run performs exactly one (empty)
		// iteration and stops: nothing changed, so nothing may allocate.
		allocs := testing.AllocsPerRun(50, func() {
			fx.Run(opts)
		})
		if allocs != 0 {
			t.Errorf("steady-state fixpoint iteration: %v allocs/op, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
