package ra

import (
	"fmt"
	"math/rand"
	"testing"

	"paralagg/internal/lattice"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// --- tiny deterministic graphs and sequential references ---

type edge struct{ u, v, w uint64 }

func randGraph(nodes, edges int, seed int64, maxW uint64) []edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]edge, 0, edges)
	seen := map[[2]uint64]bool{}
	for len(out) < edges {
		u, v := uint64(rng.Intn(nodes)), uint64(rng.Intn(nodes))
		if u == v || seen[[2]uint64{u, v}] {
			continue
		}
		seen[[2]uint64{u, v}] = true
		w := uint64(1)
		if maxW > 1 {
			w = uint64(rng.Intn(int(maxW))) + 1
		}
		out = append(out, edge{u, v, w})
	}
	return out
}

// refClosure computes reachability pairs by BFS from every node.
func refClosure(nodes int, es []edge) map[[2]uint64]bool {
	adj := make([][]uint64, nodes)
	for _, e := range es {
		adj[e.u] = append(adj[e.u], e.v)
	}
	out := map[[2]uint64]bool{}
	for s := 0; s < nodes; s++ {
		visited := make([]bool, nodes)
		queue := []uint64{uint64(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					out[[2]uint64{uint64(s), v}] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}

// refSSSP is Dijkstra from src (O(V^2), fine for tests).
func refSSSP(nodes int, es []edge, src uint64) map[uint64]uint64 {
	const inf = ^uint64(0)
	adj := make([][]edge, nodes)
	for _, e := range es {
		adj[e.u] = append(adj[e.u], e)
	}
	dist := make([]uint64, nodes)
	done := make([]bool, nodes)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for {
		u, best := -1, inf
		for i, d := range dist {
			if !done[i] && d < best {
				u, best = i, d
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range adj[u] {
			if d := dist[u] + e.w; d < dist[e.v] {
				dist[e.v] = d
			}
		}
	}
	out := map[uint64]uint64{}
	for i, d := range dist {
		if d != inf {
			out[uint64(i)] = d
		}
	}
	return out
}

// refCC labels every node with the minimum node id of its weakly connected
// component.
func refCC(nodes int, es []edge) map[uint64]uint64 {
	parent := make([]int, nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range es {
		a, b := find(int(e.u)), find(int(e.v))
		if a != b {
			parent[a] = b
		}
	}
	min := map[int]uint64{}
	for i := 0; i < nodes; i++ {
		r := find(i)
		if m, ok := min[r]; !ok || uint64(i) < m {
			min[r] = uint64(i)
		}
	}
	out := map[uint64]uint64{}
	for i := 0; i < nodes; i++ {
		out[uint64(i)] = min[find(i)]
	}
	return out
}

// --- hand-compiled pipelines (the declarative layer does this in core) ---

// runTC computes transitive closure over the kernel layer and verifies it
// against the BFS reference, returning the iteration count.
func runTC(t *testing.T, ranks, nodes int, es []edge, subs int, mode PlanMode) {
	t.Helper()
	want := refClosure(nodes, es)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		edgeRel, err := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		pathRel, err := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		// path joined on its second column: reversed replica.
		pathRev, err := pathRel.AddIndex([]int{1, 0}, 1)
		if err != nil {
			return err
		}
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v})
		})

		copyRule := &Copy{
			Name: "path(x,y) <- edge(x,y)", Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
			Emit: func(src tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{src[0], src[1]})
			},
		}
		joinRule := &Join{
			Name: "path(x,z) <- path(x,y), edge(y,z)",
			Left: pathRev, LeftRel: pathRel,
			Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: pathRel, JK: 1,
			// left stored as (y,x), right as (y,z) -> head (x,z).
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{l[1], r[1]})
			},
		}
		fx := NewFixpoint(c, mc, copyRule, joinRule)
		fx.Run(Options{Plan: mode})

		// Validate: count matches and every local tuple is in the reference.
		var local, wrong uint64
		pathRel.Canonical().Full.Ascend(func(tt tuple.Tuple) bool {
			local++
			if !want[[2]uint64{tt[0], tt[1]}] {
				wrong++
			}
			return true
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d tuples not in reference closure", g)
		}
		if g := c.Allreduce(local, mpi.OpSum); g != uint64(len(want)) {
			return fmt.Errorf("closure size %d, want %d", g, len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveClosureChain(t *testing.T) {
	var es []edge
	for i := 0; i < 20; i++ {
		es = append(es, edge{uint64(i), uint64(i + 1), 1})
	}
	runTC(t, 4, 21, es, 1, PlanDynamic)
}

func TestTransitiveClosureRandomAllModes(t *testing.T) {
	es := randGraph(60, 180, 7, 1)
	for _, mode := range []PlanMode{PlanDynamic, PlanStaticLeft, PlanStaticRight, PlanAntiDynamic} {
		runTC(t, 3, 60, es, 1, mode)
	}
}

func TestTransitiveClosureSubBuckets(t *testing.T) {
	es := randGraph(50, 150, 9, 1)
	for _, subs := range []int{1, 2, 8} {
		runTC(t, 4, 50, es, subs, PlanDynamic)
	}
	// Also with a single rank.
	runTC(t, 1, 50, es, 4, PlanDynamic)
}

// runSSSP computes single-source shortest paths via recursive aggregation
// and verifies against Dijkstra.
func runSSSP(t *testing.T, ranks, nodes int, es []edge, src uint64, subs int, mode PlanMode) int {
	t.Helper()
	want := refSSSP(nodes, es, src)
	iters := 0
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		edgeRel, err := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		sp, err := relation.New(relation.Schema{Name: "spath", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		// spath joined on its "to" column (used as mid).
		spMid, err := sp.AddIndex([]int{1, 0, 2}, 1)
		if err != nil {
			return err
		}
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v, es[i].w})
		})
		// Seed fact spath(src, src, 0) offered by rank 0.
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{src, src, 0})
		}
		sp.LoadFacts(seed)

		join := &Join{
			Name: "spath(f,t,min(l+w)) <- spath(f,m,l), edge(m,t,w)",
			Left: spMid, LeftRel: sp,
			Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: sp, JK: 1,
			// left stored (m,f,l), right (m,t,w) -> head (f,t,l+w).
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{l[1], r[1], l[2] + r[2]})
			},
		}
		fx := NewFixpoint(c, mc, join)
		n := fx.Run(Options{Plan: mode})
		if c.Rank() == 0 {
			iters = n
		}

		// Validate against Dijkstra.
		var local, wrong uint64
		sp.EachAcc(func(tt tuple.Tuple) {
			local++
			d, ok := want[tt[1]]
			if tt[0] != src || !ok || d != tt[2] {
				wrong++
			}
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d wrong distances", g)
		}
		if g := c.Allreduce(local, mpi.OpSum); g != uint64(len(want)) {
			return fmt.Errorf("reached %d nodes, want %d", g, len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return iters
}

func TestSSSPLine(t *testing.T) {
	var es []edge
	for i := 0; i < 15; i++ {
		es = append(es, edge{uint64(i), uint64(i + 1), uint64(i + 1)})
	}
	runSSSP(t, 3, 16, es, 0, 1, PlanDynamic)
}

func TestSSSPRandomWeighted(t *testing.T) {
	es := randGraph(80, 400, 21, 9)
	for _, ranks := range []int{1, 2, 5} {
		runSSSP(t, ranks, 80, es, 3, 1, PlanDynamic)
	}
}

func TestSSSPAllPlanModesAgree(t *testing.T) {
	es := randGraph(50, 250, 33, 5)
	for _, mode := range []PlanMode{PlanDynamic, PlanStaticLeft, PlanStaticRight, PlanAntiDynamic} {
		runSSSP(t, 4, 50, es, 7, 1, mode)
	}
}

func TestSSSPSubBucketsAgree(t *testing.T) {
	es := randGraph(50, 250, 35, 5)
	for _, subs := range []int{1, 2, 8} {
		runSSSP(t, 4, 50, es, 2, subs, PlanDynamic)
	}
}

// TestSSSPShorterPathWins uses a graph where the direct edge is worse than
// a two-hop path, confirming aggregation collapses to the minimum.
func TestSSSPShorterPathWins(t *testing.T) {
	es := []edge{{0, 1, 10}, {0, 2, 1}, {2, 1, 2}}
	runSSSP(t, 2, 3, es, 0, 1, PlanDynamic)
}

// runCC computes connected components (min label propagation) over
// undirected edges and verifies against union-find.
func runCC(t *testing.T, ranks, nodes int, es []edge, subs int, mode PlanMode) {
	t.Helper()
	want := refCC(nodes, es)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		edgeRel, err := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		cc, err := relation.New(relation.Schema{Name: "cc", Arity: 2, Indep: 1, Key: 1, Agg: lattice.Min{}}, c, mc, relation.Config{Subs: subs})
		if err != nil {
			return err
		}
		// Undirected: load both directions.
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v})
			emit(tuple.Tuple{es[i].v, es[i].u})
		})
		// Seed: every node labels itself.
		seed := tuple.NewBuffer(2, nodes/ranks+1)
		for n := c.Rank(); n < nodes; n += c.Size() {
			seed.Append(tuple.Tuple{uint64(n), uint64(n)})
		}
		cc.LoadFacts(seed)

		join := &Join{
			Name: "cc(y,min(z)) <- cc(x,z), edge(x,y)",
			Left: cc.Canonical(), LeftRel: cc,
			Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: cc, JK: 1,
			// left (x,z), right (x,y) -> head (y,z).
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{r[1], l[1]})
			},
		}
		fx := NewFixpoint(c, mc, join)
		fx.Run(Options{Plan: mode})

		var local, wrong uint64
		cc.EachAcc(func(tt tuple.Tuple) {
			local++
			if want[tt[0]] != tt[1] {
				wrong++
			}
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d wrong labels", g)
		}
		if g := c.Allreduce(local, mpi.OpSum); g != uint64(nodes) {
			return fmt.Errorf("labeled %d nodes, want %d", g, nodes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCCTwoComponents(t *testing.T) {
	es := []edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}
	runCC(t, 3, 5, es, 1, PlanDynamic)
}

func TestCCRandom(t *testing.T) {
	es := randGraph(100, 140, 55, 1)
	for _, ranks := range []int{1, 4} {
		runCC(t, ranks, 100, es, 1, PlanDynamic)
	}
}

func TestCCSubBuckets(t *testing.T) {
	es := randGraph(60, 90, 77, 1)
	runCC(t, 4, 60, es, 8, PlanDynamic)
}

// TestFixpointMaxIters confirms the iteration bound halts a divergent-ish
// (long) computation early.
func TestFixpointMaxIters(t *testing.T) {
	var es []edge
	for i := 0; i < 50; i++ {
		es = append(es, edge{uint64(i), uint64(i + 1), 1})
	}
	w := mpi.NewWorld(2)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(2)
		edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
		pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
		pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v})
		})
		fx := NewFixpoint(c, mc,
			&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
				Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
			&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
				Head: pathRel, JK: 1,
				Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
		)
		n := fx.Run(Options{Plan: PlanDynamic, MaxIters: 5})
		if n != 5 {
			return fmt.Errorf("ran %d iterations, want 5", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResetDeltaEnablesNextStratum checks the stratum hand-off: a second
// stratum copies a finished relation into a fresh one.
func TestResetDeltaEnablesNextStratum(t *testing.T) {
	es := randGraph(30, 60, 99, 4)
	w := mpi.NewWorld(3)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(3)
		edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1}, c, mc, relation.Config{})
		sp, _ := relation.New(relation.Schema{Name: "spath", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}}, c, mc, relation.Config{})
		spMid, _ := sp.AddIndex([]int{1, 0, 2}, 1)
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v, es[i].w})
		})
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{0, 0, 0})
		}
		sp.LoadFacts(seed)
		fx := NewFixpoint(c, mc, &Join{
			Left: spMid, LeftRel: sp, Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: sp, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{l[1], r[1], l[2] + r[2]})
			}})
		fx.Run(Options{Plan: PlanDynamic})

		// Stratum 2: lsp(MAX d) over all spath tuples.
		lsp, _ := relation.New(relation.Schema{Name: "lsp", Arity: 2, Indep: 1, Key: 1, Agg: lattice.Max{}}, c, mc, relation.Config{})
		ResetDelta(sp)
		if sp.ChangedLast() == 0 {
			return fmt.Errorf("ResetDelta left changed count at zero")
		}
		fx2 := NewFixpoint(c, mc, &Copy{
			Src: sp.Canonical(), SrcRel: sp, Head: lsp,
			Emit: func(s tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{0, s[2]})
			}})
		fx2.Run(Options{Plan: PlanDynamic})

		// Reference: max over Dijkstra distances.
		want := uint64(0)
		for _, d := range refSSSP(30, es, 0) {
			if d > want {
				want = d
			}
		}
		var local uint64
		lsp.EachAcc(func(tt tuple.Tuple) { local = uint64(tt[1]) })
		if g := c.Allreduce(local, mpi.OpMax); g != want {
			return fmt.Errorf("lsp = %d, want %d", g, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveBalanceCorrectAndBalancing runs SSSP on a hub-skewed graph
// with adaptive rebalancing: answers must stay exact, the edge relation's
// sub-bucket count must grow, and the final distribution must be flatter
// than the static subs=1 run.
func TestAdaptiveBalanceCorrectAndBalancing(t *testing.T) {
	// Star-heavy graph: node 0 fans out to all others plus a random mesh.
	var es []edge
	for i := 1; i <= 60; i++ {
		es = append(es, edge{0, uint64(i), uint64(i%5 + 1)})
	}
	es = append(es, randGraph(61, 120, 3, 5)...)
	want := refSSSP(61, es, 0)

	const ranks = 8
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		edgeRel, err := relation.New(relation.Schema{Name: "edge", Arity: 3, Indep: 3, Key: 1}, c, mc, relation.Config{Subs: 1})
		if err != nil {
			return err
		}
		sp, err := relation.New(relation.Schema{Name: "spath", Arity: 3, Indep: 2, Key: 2, Agg: lattice.Min{}}, c, mc, relation.Config{Subs: 1})
		if err != nil {
			return err
		}
		spMid, err := sp.AddIndex([]int{1, 0, 2}, 1)
		if err != nil {
			return err
		}
		// Dedup edges: randGraph may duplicate a star edge.
		seen := map[[2]uint64]bool{}
		var uniq []edge
		for _, e := range es {
			if !seen[[2]uint64{e.u, e.v}] {
				seen[[2]uint64{e.u, e.v}] = true
				uniq = append(uniq, e)
			}
		}
		edgeRel.LoadShare(len(uniq), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{uniq[i].u, uniq[i].v, uniq[i].w})
		})
		seed := tuple.NewBuffer(3, 1)
		if c.Rank() == 0 {
			seed.Append(tuple.Tuple{0, 0, 0})
		}
		sp.LoadFacts(seed)

		fx := NewFixpoint(c, mc, &Join{
			Left: spMid, LeftRel: sp, Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: sp, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) {
				out(tuple.Tuple{l[1], r[1], l[2] + r[2]})
			}})
		fx.Run(Options{Plan: PlanDynamic, AdaptiveBalance: true, BalanceThreshold: 1.5, MaxSubs: 8})

		if edgeRel.Subs() == 1 {
			return fmt.Errorf("adaptive balancing never split the skewed edge relation")
		}
		var wrong, count uint64
		sp.EachAcc(func(tt tuple.Tuple) {
			count++
			if d, ok := want[tt[1]]; !ok || d != tt[2] {
				wrong++
			}
		})
		if g := c.Allreduce(wrong, mpi.OpSum); g != 0 {
			return fmt.Errorf("%d wrong distances under adaptive balancing", g)
		}
		if g := c.Allreduce(count, mpi.OpSum); g != uint64(len(want)) {
			return fmt.Errorf("reached %d, want %d", g, len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAfterIterationHook counts iterations through the hook.
func TestAfterIterationHook(t *testing.T) {
	var es []edge
	for i := 0; i < 10; i++ {
		es = append(es, edge{uint64(i), uint64(i + 1), 1})
	}
	w := mpi.NewWorld(2)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(2)
		edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
		pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
		pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
		edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{es[i].u, es[i].v})
		})
		hookCalls := 0
		fx := NewFixpoint(c, mc,
			&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
				Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
			&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
				Head: pathRel, JK: 1,
				Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
		)
		n := fx.Run(Options{Plan: PlanDynamic, AfterIteration: func(iter int, changed uint64) {
			if iter != hookCalls {
				t.Errorf("hook iter %d, want %d", iter, hookCalls)
			}
			hookCalls++
		}})
		if hookCalls != n {
			return fmt.Errorf("hook ran %d times for %d iterations", hookCalls, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
