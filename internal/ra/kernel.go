// Package ra implements the parallel relational-algebra kernels of the
// paper: the BPRA-style binary join with intra-bucket communication and
// per-iteration dynamic join planning (Algorithm 1), copy/projection
// kernels, and the semi-naïve fixpoint driver that ties them together.
package ra

import (
	"math/bits"
	"time"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/obs"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// Version selects which relation version a kernel side reads.
type Version int

// The semi-naïve relation versions. VFullMinusDelta reads FULL while
// skipping tuples present in Δ; pairing it with the other side's Δ makes
// the two join variants exactly disjoint, so every (left, right) pair is
// delivered exactly once — which non-idempotent aggregates (MSum, MCount)
// require.
const (
	VFull Version = iota
	VDelta
	VFullMinusDelta
)

// versionLen returns the number of tuples the version exposes on this rank.
func versionLen(ix *relation.Index, v Version) int {
	switch v {
	case VDelta:
		return ix.Delta.Len()
	case VFullMinusDelta:
		n := ix.Full.Len() - ix.Delta.Len()
		if n < 0 {
			n = 0
		}
		return n
	}
	return ix.Full.Len()
}

// scanVersion iterates the version's tuples in order.
func scanVersion(ix *relation.Index, v Version, fn func(tuple.Tuple) bool) {
	switch v {
	case VDelta:
		ix.Delta.Ascend(fn)
	case VFullMinusDelta:
		ix.Full.Ascend(func(t tuple.Tuple) bool {
			if ix.Delta.Len() > 0 && ix.Delta.Has(t) {
				return true
			}
			return fn(t)
		})
	default:
		ix.Full.Ascend(fn)
	}
}

// probeVersion scans the version's tuples matching the join-key prefix.
func probeVersion(ix *relation.Index, v Version, prefix tuple.Tuple, fn func(tuple.Tuple) bool) {
	switch v {
	case VDelta:
		ix.Delta.AscendPrefix(prefix, fn)
	case VFullMinusDelta:
		ix.Full.AscendPrefix(prefix, func(t tuple.Tuple) bool {
			if ix.Delta.Len() > 0 && ix.Delta.Has(t) {
				return true
			}
			return fn(t)
		})
	default:
		ix.Full.AscendPrefix(prefix, fn)
	}
}

// PlanMode selects how the join's outer relation is chosen.
type PlanMode int

// Planning modes. PlanDynamic is the paper's voting algorithm; the static
// modes pin the outer side (the baseline of Fig. 2 uses PlanStaticRight);
// PlanAntiDynamic inverts the vote and exists for the ablation study.
const (
	PlanDynamic PlanMode = iota
	PlanStaticLeft
	PlanStaticRight
	PlanAntiDynamic
)

// Emitter produces head tuples (canonical column order of the head
// relation) from a matched pair of stored-order body tuples. Returning
// without calling out filters the pair (σ).
type Emitter func(left, right tuple.Tuple, out func(tuple.Tuple))

// Join is a compiled binary-join kernel: Left ⋈ Right on their shared JK
// leading columns, writing into Head.
type Join struct {
	Name        string
	Left, Right *relation.Index
	LeftRel     *relation.Relation
	RightRel    *relation.Relation
	Head        *relation.Relation
	JK          int
	Emit        Emitter

	// sendScratch holds the per-destination replication buffers, reused
	// across variants and iterations (rank-private, like the Join itself).
	sendScratch [][]mpi.Word
}

// sendBuf returns the per-destination buffers with every lane emptied.
func (j *Join) sendBuf(size int) [][]mpi.Word {
	if cap(j.sendScratch) < size {
		j.sendScratch = make([][]mpi.Word, size)
	}
	j.sendScratch = j.sendScratch[:size]
	for i := range j.sendScratch {
		j.sendScratch[i] = j.sendScratch[i][:0]
	}
	return j.sendScratch
}

// nonEmptyLanes counts destinations that will actually receive data; it is
// the per-rank message count an Alltoallv costs.
func nonEmptyLanes(send [][]mpi.Word, self int) int64 {
	n := int64(0)
	for i, s := range send {
		if i != self && len(s) > 0 {
			n++
		}
	}
	return n
}

// crossTraffic tallies the bytes and messages in send that leave this
// rank's host under the world's topology (zero when no topology is set —
// a uniform fabric has no cross-host links to surcharge).
func crossTraffic(topo *mpi.Topology, self int, send [][]mpi.Word) (bytes, msgs int64) {
	if topo == nil {
		return 0, 0
	}
	for dest, s := range send {
		if dest != self && len(s) > 0 && !topo.SameHost(self, dest) {
			bytes += int64(len(s)) * mpi.WordBytes
			msgs++
		}
	}
	return bytes, msgs
}

// Run executes one variant of the join — versions vl and vr select the
// semi-naïve sides — and appends head tuples to pending. It is collective.
//
// Phases, as in Fig. 1: dynamic join planning (a one-word vote per rank,
// Algorithm 1), intra-bucket communication (the outer relation's selected
// version is serialized and replicated to the inner's sub-bucket homes),
// and the highly parallel local join (received outer tuples probe the
// inner B-tree).
func (j *Join) Run(iter int, vl, vr Version, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	comm := j.LeftRel.Comm()
	rank, size := comm.Rank(), comm.Size()

	// Dynamic join planning (Algorithm 1): each rank votes with one word;
	// an Allreduce tallies. If a majority finds the left side smaller, the
	// left relation is serialized (outer). Under the auto collective
	// schedule the same word carries a second vote in its high half: each
	// rank's tree-vs-ring preference from the payload sizes it observed,
	// applied by every rank against the same tally so next iteration's
	// collectives agree on their shape without an extra round.
	outerIsLeft := false
	switch mode {
	case PlanStaticLeft:
		outerIsLeft = true
	case PlanStaticRight:
		outerIsLeft = false
	case PlanDynamic, PlanAntiDynamic:
		timer := metrics.StartTimer()
		localOuter := uint64(0)
		if versionLen(j.Left, vl) < versionLen(j.Right, vr) {
			localOuter = 1
		}
		vote := localOuter
		if comm.ScheduleAuto() {
			vote |= comm.ScheduleVote() << 32
		}
		tally := comm.Allreduce(vote, mpi.OpSum)
		ranksWantLeft := tally & 0xffffffff
		outerIsLeft = ranksWantLeft >= uint64((size+1)/2)
		if mode == PlanAntiDynamic {
			outerIsLeft = !outerIsLeft
		}
		comm.ApplyScheduleVote(int(tally >> 32))
		mc.Record(rank, iter, metrics.PhasePlanning,
			timer.Done(1, mpi.WordBytes, int64(comm.ScheduleDepth())))
		if o := mc.Observer(); o != nil {
			e := obs.Get()
			e.Kind = obs.KindPlan
			e.Rank, e.Stratum, e.Iter = rank, mc.Stratum(), iter
			e.Name = j.Name
			e.VotesFor, e.OuterLeft = ranksWantLeft, outerIsLeft
			e.End = time.Now().UnixNano()
			obs.Emit(o, e)
		}
	}

	outerIx, innerIx := j.Left, j.Right
	outerV, innerV := vl, vr
	if !outerIsLeft {
		outerIx, innerIx = j.Right, j.Left
		outerV, innerV = vr, vl
	}

	// Intra-bucket communication: serialize the outer version and
	// replicate each tuple to every rank holding a sub-bucket of the
	// inner's matching bucket.
	timer := metrics.StartTimer()
	send := j.sendBuf(size)
	scanned := int64(0)
	scanVersion(outerIx, outerV, func(t tuple.Tuple) bool {
		scanned++
		b := int(t.HashPrefix(j.JK) % uint64(size))
		for _, dest := range innerIx.HomeRanks(b) {
			send[dest] = append(send[dest], t...)
		}
		return true
	})
	pre := comm.Stats().Snapshot()
	recv := comm.Alltoallv(send)
	d := comm.Stats().Snapshot().Sub(pre)
	exch := timer.Done(scanned, int64(d.Bytes()), nonEmptyLanes(send, rank)+1)
	exch.CrossBytes, exch.CrossMsgs = crossTraffic(comm.Topology(), rank, send)
	mc.Record(rank, iter, metrics.PhaseIntraBucket, exch)

	// Local join: probe the inner B-tree with each received outer tuple.
	timer = metrics.StartTimer()
	var work int64
	arity := len(outerIx.Perm)
	innerLen := versionLen(innerIx, innerV)
	emitTo := func(t tuple.Tuple) { pending.Append(t) }
	for _, words := range recv {
		for off := 0; off+arity <= len(words); off += arity {
			t := tuple.Tuple(words[off : off+arity])
			work += int64(bits.Len64(uint64(innerLen)) + 1)
			probeVersion(innerIx, innerV, t[:j.JK], func(match tuple.Tuple) bool {
				work++
				if outerIsLeft {
					j.Emit(t, match, emitTo)
				} else {
					j.Emit(match, t, emitTo)
				}
				return true
			})
		}
	}
	mc.Record(rank, iter, metrics.PhaseLocalJoin, timer.Done(work, 0, 0))
}

// CopyEmitter produces head tuples from a single stored-order source tuple.
type CopyEmitter func(src tuple.Tuple, out func(tuple.Tuple))

// Copy is a compiled single-atom rule (projection/selection/arithmetic): it
// scans the source index's Δ and emits head tuples. It is rank-local — the
// routing cost is paid at materialization, as in the paper.
type Copy struct {
	Name   string
	Src    *relation.Index
	SrcRel *relation.Relation
	Head   *relation.Relation
	Emit   CopyEmitter
}

// Run scans Δ of the source and appends head tuples to pending.
func (cp *Copy) Run(iter int, mc *metrics.Collector, pending *tuple.Buffer) {
	comm := cp.SrcRel.Comm()
	timer := metrics.StartTimer()
	var work int64
	emitTo := func(t tuple.Tuple) { pending.Append(t) }
	cp.Src.Delta.Ascend(func(t tuple.Tuple) bool {
		work++
		cp.Emit(t, emitTo)
		return true
	})
	mc.Record(comm.Rank(), iter, metrics.PhaseLocalJoin, timer.Done(work, 0, 0))
}
