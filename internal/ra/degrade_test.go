package ra

import (
	"errors"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"

	"paralagg/internal/mpi"
)

// Storage-degradation tests for FileCheckpointSink: a full device (ENOSPC)
// or a short write must produce a structured *ErrCheckpointStorage with the
// partial file quarantined aside — never a partial generation a later scan
// could load, and never a crash.

// enospcFile wraps the real temp file but refuses the payload: it writes a
// short prefix (leaving a partial file on disk, as a full device would) and
// fails with ENOSPC.
type enospcFile struct{ ckptFile }

func (e enospcFile) Write(p []byte) (int, error) {
	if len(p) > 4 {
		e.ckptFile.Write(p[:4])
	}
	return 0, syscall.ENOSPC
}

// shortFile accepts the write but reports fewer bytes than given with a nil
// error — the lying-device case writeFileSync must convert to
// io.ErrShortWrite.
type shortFile struct{ ckptFile }

func (s shortFile) Write(p []byte) (int, error) {
	n, err := s.ckptFile.Write(p[:len(p)/2])
	if err != nil {
		return n, err
	}
	return n, nil
}

// withFailingOpens swaps the save path's file-open hook so the first fail
// opens go through wrap, then restores the real hook.
func withFailingOpens(t *testing.T, fail int, wrap func(ckptFile) ckptFile) {
	t.Helper()
	real := openCkptFile
	n := 0
	openCkptFile = func(path string) (ckptFile, error) {
		f, err := real(path)
		if err != nil {
			return nil, err
		}
		if n++; n <= fail {
			return wrap(f), nil
		}
		return f, nil
	}
	t.Cleanup(func() { openCkptFile = real })
}

func testCkpt(iter int) Checkpoint {
	return Checkpoint{Ranks: 1, Stratum: 0, Iter: iter, Words: []mpi.Word{7, 8, 9, uint64(iter)}}
}

func countSuffix(t *testing.T, dir, suffix string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}

func TestSaveENOSPCReturnsStructuredStorageError(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir, Keep: 2}
	for i := 1; i <= 2; i++ {
		if err := sink.Save(0, testCkpt(i)); err != nil {
			t.Fatalf("seeding save %d: %v", i, err)
		}
	}

	withFailingOpens(t, 2, func(f ckptFile) ckptFile { return enospcFile{f} }) // first try + retry
	err := sink.Save(0, testCkpt(3))
	if err == nil {
		t.Fatal("save on a full device succeeded")
	}
	cs, ok := AsCheckpointStorage(err)
	if !ok {
		t.Fatalf("save error %T (%v) is not *ErrCheckpointStorage", err, err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("storage error %v does not unwrap to ENOSPC", err)
	}
	if cs.Path == "" {
		t.Fatal("storage error carries no path")
	}
	if n := countSuffix(t, dir, ".tmp"); n != 0 {
		t.Fatalf("%d partial .tmp files left behind", n)
	}
	if n := countSuffix(t, dir, ".bad"); n == 0 {
		t.Fatal("partial file was not quarantined to .bad")
	}
	// The retry path freed space by pruning to the newest old generation.
	if n := countSuffix(t, dir, ".ckpt"); n != 1 {
		t.Fatalf("%d generations remain after the degraded save, want 1", n)
	}
	// Degraded, not destroyed: the surviving generation still restores.
	cp, ok, lerr := sink.Latest(0)
	if lerr != nil || !ok {
		t.Fatalf("latest after degradation: ok=%v err=%v", ok, lerr)
	}
	if cp.Iter != 2 {
		t.Fatalf("latest after degradation is iter %d, want 2", cp.Iter)
	}
}

func TestSaveShortWriteIsStructuredAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir}
	withFailingOpens(t, 2, func(f ckptFile) ckptFile { return shortFile{f} })
	err := sink.Save(0, testCkpt(1))
	if _, ok := AsCheckpointStorage(err); !ok {
		t.Fatalf("short-write save error %T (%v) is not *ErrCheckpointStorage", err, err)
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("storage error %v does not unwrap to io.ErrShortWrite", err)
	}
	if n := countSuffix(t, dir, ".bad"); n == 0 {
		t.Fatal("short-written partial was not quarantined to .bad")
	}
	if _, ok, _ := sink.Latest(0); ok {
		t.Fatal("a short-written checkpoint validated as latest")
	}
}

func TestSaveRetriesAfterFreeingSpace(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir, Keep: 3}
	for i := 1; i <= 3; i++ {
		if err := sink.Save(0, testCkpt(i)); err != nil {
			t.Fatalf("seeding save %d: %v", i, err)
		}
	}
	// Only the first attempt hits ENOSPC; the retry (after pruning old
	// generations to free space) must succeed silently.
	withFailingOpens(t, 1, func(f ckptFile) ckptFile { return enospcFile{f} })
	if err := sink.Save(0, testCkpt(4)); err != nil {
		t.Fatalf("save with a successful retry still errored: %v", err)
	}
	cp, ok, err := sink.Latest(0)
	if err != nil || !ok {
		t.Fatalf("latest after recovered save: ok=%v err=%v", ok, err)
	}
	if cp.Iter != 4 {
		t.Fatalf("latest after recovered save is iter %d, want 4", cp.Iter)
	}
	// The first attempt's partial stayed quarantined for inspection.
	if n := countSuffix(t, dir, ".bad"); n == 0 {
		t.Fatal("failed first attempt left no quarantine file")
	}
}
