package ra

import (
	"path/filepath"
	"strings"
	"testing"

	"paralagg/internal/mpi"
)

// Rejoin-path checkpoint tests: the v3 wire-mark format round-trips, the
// rank-local PeekRejoin entry point enforces its preconditions, and keep-K
// retention sweeps quarantined (.bad) husks out with their generation.

func TestCheckpointV3MarksRoundTrip(t *testing.T) {
	sinks := map[string]CheckpointSink{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	}
	want := Checkpoint{
		Ranks: 3, Stratum: 1, Iter: 4,
		Words:    []mpi.Word{7, 8, 9},
		SendSeqs: []uint64{0, 12, 34},
		RecvSeqs: []uint64{0, 56, 78},
	}
	for name, sink := range sinks {
		t.Run(name, func(t *testing.T) {
			if err := sink.Save(1, want); err != nil {
				t.Fatal(err)
			}
			cp, ok, err := sink.Latest(1)
			if err != nil || !ok {
				t.Fatalf("Latest: ok=%v err=%v", ok, err)
			}
			if cp.Iter != want.Iter || len(cp.Words) != 3 || cp.Words[2] != 9 {
				t.Errorf("payload damaged: %+v", cp)
			}
			if len(cp.SendSeqs) != 3 || cp.SendSeqs[1] != 12 || cp.SendSeqs[2] != 34 {
				t.Errorf("SendSeqs = %v, want %v", cp.SendSeqs, want.SendSeqs)
			}
			if len(cp.RecvSeqs) != 3 || cp.RecvSeqs[1] != 56 || cp.RecvSeqs[2] != 78 {
				t.Errorf("RecvSeqs = %v, want %v", cp.RecvSeqs, want.RecvSeqs)
			}
		})
	}
}

func TestPeekRejoinPreconditions(t *testing.T) {
	sink := NewMemoryCheckpointSink()

	// Empty sink: no checkpoint is not an error, just ok=false.
	if _, ok, err := PeekRejoin(sink, 0); ok || err != nil {
		t.Errorf("PeekRejoin on empty sink: ok=%v err=%v, want false/nil", ok, err)
	}

	// A markless checkpoint (saved without hot replacement enabled) cannot
	// seed a transport: surfacing it as usable would splice a replacement in
	// at an unknown wire position.
	if err := sink.Save(0, Checkpoint{Ranks: 2, Iter: 4, Words: []mpi.Word{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := PeekRejoin(sink, 0); ok || err == nil {
		t.Errorf("PeekRejoin on markless checkpoint: ok=%v err=%v, want false/error", ok, err)
	} else if !strings.Contains(err.Error(), "wire marks") {
		t.Errorf("error does not name the missing marks: %v", err)
	}

	// With marks present the read is rank-local and complete.
	want := Checkpoint{Ranks: 2, Iter: 6, Words: []mpi.Word{2},
		SendSeqs: []uint64{0, 9}, RecvSeqs: []uint64{0, 8}}
	if err := sink.Save(0, want); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := PeekRejoin(sink, 0)
	if err != nil || !ok {
		t.Fatalf("PeekRejoin with marks: ok=%v err=%v", ok, err)
	}
	if cp.Iter != 6 || cp.SendSeqs[1] != 9 || cp.RecvSeqs[1] != 8 {
		t.Errorf("PeekRejoin returned %+v, want iter=6 marks intact", cp)
	}
}

// TestFileSinkPrunesOrphanedQuarantineFiles: a quarantined generation no
// longer appears in the healthy scan, so without the .bad sweep its husk
// would survive keep-K retention forever. Once retention's floor passes the
// quarantined generation, the husk must go with it.
func TestFileSinkPrunesOrphanedQuarantineFiles(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir, Keep: 2}
	for i := 1; i <= 2; i++ {
		if err := sink.Save(0, Checkpoint{Ranks: 1, Iter: 2 * i, Words: []mpi.Word{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest generation; the next scan quarantines it aside.
	if !sink.TamperNewest(0) {
		t.Fatal("TamperNewest found nothing to corrupt")
	}
	if _, ok, err := sink.Latest(0); err != nil || !ok {
		t.Fatalf("Latest after tamper: ok=%v err=%v", ok, err)
	}
	bads, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bads) != 1 {
		t.Fatalf("quarantine files after tamper: %v, want exactly one", bads)
	}

	// Newer saves advance retention past the quarantined generation: the
	// healthy victims of keep-K pruning AND the .bad husk must both go.
	for i := 3; i <= 6; i++ {
		if err := sink.Save(0, Checkpoint{Ranks: 1, Iter: 2 * i, Words: []mpi.Word{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	bads, _ = filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bads) != 0 {
		t.Errorf("orphaned quarantine files escaped retention: %v", bads)
	}
	healthy, _ := filepath.Glob(filepath.Join(dir, "rank-0000*.ckpt"))
	if len(healthy) != 2 {
		t.Errorf("%d healthy generations retained with Keep=2: %v", len(healthy), healthy)
	}
	if cp, ok, err := sink.Latest(0); err != nil || !ok || cp.Iter != 12 {
		t.Errorf("Latest after pruning: iter=%d ok=%v err=%v, want 12", cp.Iter, ok, err)
	}
}
