package ra

import (
	"fmt"
	"time"

	"paralagg/internal/btree"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/obs"
	"paralagg/internal/relation"
	"paralagg/internal/resource"
	"paralagg/internal/tuple"
)

// Rule is one compiled kernel in a stratum. Joins contribute up to two
// semi-naïve variants per iteration; copies contribute one.
type Rule interface {
	// Heads returns the relation the rule writes.
	HeadRel() *relation.Relation
	// Bodies returns the relations the rule reads.
	BodyRels() []*relation.Relation
	// RunVariants executes every semi-naïve variant whose Δ side changed
	// in the previous iteration, appending head tuples to pending.
	RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer)
}

// HeadRel implements Rule.
func (j *Join) HeadRel() *relation.Relation { return j.Head }

// BodyRels implements Rule.
func (j *Join) BodyRels() []*relation.Relation {
	return []*relation.Relation{j.LeftRel, j.RightRel}
}

// RunVariants implements Rule: it runs Δ⋈FULL when the left side changed
// and (FULL−Δ)⋈Δ when the right side changed. The two variants partition
// the new pairs exactly — every (left, right) pair involving at least one Δ
// tuple is produced exactly once — so even non-idempotent aggregates
// (MSum, MCount) accumulate correctly.
func (j *Join) RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	if j.LeftRel.ChangedLast() > 0 {
		j.Run(iter, VDelta, VFull, mode, mc, pending)
	}
	if j.RightRel.ChangedLast() > 0 {
		j.Run(iter, VFullMinusDelta, VDelta, mode, mc, pending)
	}
}

// HeadRel implements Rule.
func (cp *Copy) HeadRel() *relation.Relation { return cp.Head }

// BodyRels implements Rule.
func (cp *Copy) BodyRels() []*relation.Relation {
	return []*relation.Relation{cp.SrcRel}
}

// RunVariants implements Rule: copies scan Δ of their source when it
// changed.
func (cp *Copy) RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	if cp.SrcRel.ChangedLast() > 0 {
		cp.Run(iter, mc, pending)
	}
}

// Documented Options defaults. The zero-value Options behaves identically
// to Options{BalanceThreshold: DefaultBalanceThreshold, MaxSubs:
// DefaultMaxSubs}; the effective* accessors are the single place the
// fallback logic lives.
const (
	// DefaultBalanceThreshold is the skew trigger used when
	// Options.BalanceThreshold is unset (<= 1): a relation rebalances when
	// its largest per-rank tuple count exceeds twice the mean.
	DefaultBalanceThreshold = 2.0
	// DefaultMaxSubs caps adaptive sub-bucket doubling when Options.MaxSubs
	// is unset (< 1).
	DefaultMaxSubs = 16
)

// Options tunes a fixpoint run.
type Options struct {
	// Plan selects the join-layout strategy (§IV-D).
	Plan PlanMode
	// MaxIters bounds the number of iterations (0 = until fixpoint).
	MaxIters int
	// AdaptiveBalance turns on the per-iteration balancing phase of
	// Fig. 1: when a relation's per-rank tuple counts exceed
	// BalanceThreshold × mean, its sub-bucket count doubles (up to
	// MaxSubs) and storage redistributes. The check costs one allgather
	// per relation per iteration; redistribution traffic is metered as
	// PhaseRebalance.
	AdaptiveBalance  bool
	BalanceThreshold float64 // <= 1 means DefaultBalanceThreshold
	MaxSubs          int     // < 1 means DefaultMaxSubs
	// AfterIteration, if set, runs on every rank at the end of each
	// iteration (after materialization, before the fixpoint decision). The
	// baseline engines use it to model per-iteration runtime overheads of
	// the systems the paper compares against.
	AfterIteration func(iter int, changed uint64)

	// CheckpointEvery, with Sink set, snapshots the stratum's relations
	// every CheckpointEvery completed iterations so a failed run can Resume
	// instead of restarting from scratch. 0 disables checkpointing. The
	// serialization cost is metered as metrics.PhaseCheckpoint.
	CheckpointEvery int
	// Sink stores the per-rank snapshots.
	Sink CheckpointSink
	// Stratum labels the checkpoints this run writes (multi-stratum
	// programs resume into the right stratum).
	Stratum int
	// SnapshotRels overrides the set of relations captured per checkpoint.
	// Defaults to the stratum's heads plus its body-only inputs; callers
	// coordinating several strata (core.Instance) pass every relation of
	// the program so one snapshot restores the whole computation.
	SnapshotRels []*relation.Relation

	// Acct, when set with a positive budget, turns on the memory-pressure
	// ladder: once per iteration the driver samples the stratum's resident
	// footprint into the accountant and collectively agrees on the pressure
	// level. Soft pressure sheds scratch pools and brings the next
	// checkpoint forward; hard pressure fails the iteration with a
	// structured resource.ErrMemoryBudget (inside mpi.ErrRankFailed), which
	// the supervisor recovers like any rank death. The ladder adds one
	// Allreduce per iteration, so every rank of a world must configure the
	// same Acct non-nilness.
	Acct *resource.Accountant
}

// effectiveBalanceThreshold applies the documented default.
func (o Options) effectiveBalanceThreshold() float64 {
	if o.BalanceThreshold <= 1 {
		return DefaultBalanceThreshold
	}
	return o.BalanceThreshold
}

// effectiveMaxSubs applies the documented default.
func (o Options) effectiveMaxSubs() int {
	if o.MaxSubs < 1 {
		return DefaultMaxSubs
	}
	return o.MaxSubs
}

// Fixpoint runs a stratum's rules to fixpoint with semi-naïve evaluation.
type Fixpoint struct {
	Comm  *mpi.Comm
	MC    *metrics.Collector
	Rules []Rule

	heads []*relation.Relation

	// Iteration scratch, built lazily by prepare() and reused across every
	// iteration and every Run/Resume call: the body-only (EDB) relation
	// list, the full relation list rebalancing scans, and one pending
	// tuple buffer per head. Hoisting these out of the loop keeps the
	// steady-state iteration allocation-free.
	prepared bool
	bodyOnly []*relation.Relation
	allRels  []*relation.Relation
	pending  map[*relation.Relation]*tuple.Buffer

	// Pending injected state corruption (chaos): a fault whose target shard
	// was still empty when it fired is retried each iteration until it
	// lands on real state. tamperMask == 0 means none pending.
	tamperRel  string
	tamperMask mpi.Word

	// fallbackSink replaces Options.Sink for the rest of the run after
	// persistent checkpoint storage failed (ENOSPC, short write): the run
	// degrades to in-memory snapshots instead of aborting. Rank-local —
	// fault-tolerance across process restarts is void once degraded, which
	// the KindCkptDegraded event and CheckpointDegradations() surface.
	fallbackSink CheckpointSink
}

// NewFixpoint assembles a stratum from compiled rules.
func NewFixpoint(comm *mpi.Comm, mc *metrics.Collector, rules ...Rule) *Fixpoint {
	f := &Fixpoint{Comm: comm, MC: mc, Rules: rules}
	seen := map[*relation.Relation]bool{}
	for _, r := range rules {
		h := r.HeadRel()
		if !seen[h] {
			seen[h] = true
			f.heads = append(f.heads, h)
		}
	}
	return f
}

// Heads returns the relations written by the stratum, in first-rule order.
func (f *Fixpoint) Heads() []*relation.Relation { return f.heads }

// bodyOnlyRels returns the relations read but never written in this
// stratum (EDBs), in first-appearance order.
func (f *Fixpoint) bodyOnlyRels() []*relation.Relation {
	headSet := map[*relation.Relation]bool{}
	for _, h := range f.heads {
		headSet[h] = true
	}
	var bodyOnly []*relation.Relation
	seenBody := map[*relation.Relation]bool{}
	for _, r := range f.Rules {
		for _, b := range r.BodyRels() {
			if !headSet[b] && !seenBody[b] {
				seenBody[b] = true
				bodyOnly = append(bodyOnly, b)
			}
		}
	}
	return bodyOnly
}

// snapshotSet returns the relations a checkpoint captures.
func (f *Fixpoint) snapshotSet(opts Options) []*relation.Relation {
	if opts.SnapshotRels != nil {
		return opts.SnapshotRels
	}
	return append(append([]*relation.Relation(nil), f.heads...), f.bodyOnlyRels()...)
}

// Run iterates the stratum until no relation changes (or opts.MaxIters is
// reached), returning the number of iterations executed. It is collective.
//
// Each iteration runs every applicable kernel variant, then materializes
// every head relation — routing new tuples, fusing deduplication with local
// aggregation, flipping Δ versions — and finally agrees on the global
// changed count. Body-only relations (EDBs) have their Δ flipped so copy
// rules fire exactly once on loaded facts.
//
// Calling Run again after a MaxIters truncation continues the fixpoint from
// the relations' current state (Δ and changed counts persist), eventually
// reaching the same fixpoint as an unbounded run. With opts.CheckpointEvery
// set, periodic snapshots additionally allow Resume after a failure.
func (f *Fixpoint) Run(opts Options) int {
	return f.run(opts, 0)
}

// Resume restores the latest checkpoint (which must agree across ranks)
// and continues the fixpoint from the iteration it captured, returning the
// total number of iterations the stratum has executed including the
// pre-crash ones. The restore is world-size independent: a checkpoint
// written by a world of the same size reloads each rank's own shard
// directly (metered as metrics.PhaseRecovery); one written by a different
// world size is remapped — every rank reads the complete old shard set,
// re-hashes each tuple through the current bucket/sub-bucket layout, and
// ⊔-merges dependent values, metered as metrics.PhaseRemap. It is
// collective.
func (f *Fixpoint) Resume(opts Options) (int, error) {
	if opts.Sink == nil {
		return 0, fmt.Errorf("ra: Resume needs Options.Sink")
	}
	pos, ok, err := AgreedPosition(f.Comm, opts.Sink)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, ErrNoCheckpoint
	}
	if pos.Stratum != opts.Stratum {
		return 0, fmt.Errorf("ra: checkpoint belongs to stratum %d, resuming stratum %d", pos.Stratum, opts.Stratum)
	}
	f.emitCkptScan(opts, pos.Iter)
	if pos.Ranks == f.Comm.Size() {
		cp, ok, err := LatestAgreed(f.Comm, opts.Sink)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, ErrNoCheckpoint
		}
		timer := metrics.StartTimer()
		restoreErr := f.restoreSnapshot(opts, cp.Words)
		if err := agreeOutcome(f.Comm, restoreErr); err != nil {
			return 0, err
		}
		f.MC.Record(f.Comm.Rank(), cp.Iter, metrics.PhaseRecovery,
			timer.Done(int64(len(cp.Words)), int64(len(cp.Words)*mpi.WordBytes), 0))
		f.emitRecovery(opts, "recovery", cp.Iter, len(cp.Words)*mpi.WordBytes)
		return f.run(opts, cp.Iter), nil
	}

	// Elastic path: the snapshot was taken at pos.Ranks ≠ Size ranks. Each
	// rank loads the union of old shards and keeps what the new layout
	// assigns to it. The collection is rank-local — like checkpointing
	// itself, the remap moves no bytes between ranks — so only the outcome
	// agreement is collective.
	timer := metrics.StartTimer()
	words := 0
	cps, remapErr := CollectRemap(opts.Sink, pos)
	if remapErr == nil {
		words, remapErr = f.remapSnapshots(opts, cps)
	}
	if err := agreeOutcome(f.Comm, remapErr); err != nil {
		return 0, err
	}
	f.MC.Record(f.Comm.Rank(), pos.Iter, metrics.PhaseRemap,
		timer.Done(int64(words), int64(words*mpi.WordBytes), 0))
	f.emitRecovery(opts, "remap", pos.Iter, words*mpi.WordBytes)
	return f.run(opts, pos.Iter), nil
}

// Rejoin re-enters the fixpoint on a hot-replacement rank. cp is this
// rank's own checkpoint (PeekRejoin), already used to seed the transport's
// frame counters before the world existed. Unlike Resume there is no
// collective agreement — the survivors never left, so the position is
// whatever this rank saved last — and the restore is strictly rank-local.
// After restoring the shard, the rank replays the original run's
// post-capture checkpoint sequence (marks fanout, barrier, history mark) so
// its frame stream re-aligns with the dead incarnation's, then re-executes
// iterations from cp.Iter: frames the survivors already consumed are
// dropped as duplicates on their side, frames this rank needs are
// retransmitted from their held-back history, and the frames the crash
// lost are regenerated. Deterministic re-execution makes the splice exact.
func (f *Fixpoint) Rejoin(opts Options, cp Checkpoint) (int, error) {
	if cp.Stratum != opts.Stratum {
		return 0, fmt.Errorf("ra: checkpoint belongs to stratum %d, rejoining stratum %d", cp.Stratum, opts.Stratum)
	}
	if cp.Ranks != f.Comm.Size() {
		return 0, fmt.Errorf("ra: checkpoint was written by a %d-rank world, cannot rejoin a %d-rank world", cp.Ranks, f.Comm.Size())
	}
	timer := metrics.StartTimer()
	if err := f.restoreSnapshot(opts, cp.Words); err != nil {
		return 0, err
	}
	f.MC.Record(f.Comm.Rank(), cp.Iter, metrics.PhaseRecovery,
		timer.Done(int64(len(cp.Words)), int64(len(cp.Words)*mpi.WordBytes), 0))
	f.emitRecovery(opts, "rejoin", cp.Iter, len(cp.Words)*mpi.WordBytes)
	f.Comm.RejoinMarks()
	f.Comm.CheckpointBarrier()
	f.Comm.WireMarkCheckpoint()
	return f.run(opts, cp.Iter), nil
}

// emitCkptScan streams the recovery scan's integrity outcome: the
// process-wide cumulative validation-failure and quarantine counters after
// LatestValid settled on a position. A supervisor or live exporter diffs
// successive events to see how much corruption each recovery stepped over.
func (f *Fixpoint) emitCkptScan(opts Options, iter int) {
	o := f.MC.Observer()
	if o == nil {
		return
	}
	fails, quar := CheckpointIntegrityStats()
	e := obs.Get()
	e.Kind = obs.KindCkptScan
	e.Rank, e.Stratum, e.Iter = f.Comm.Rank(), opts.Stratum, iter
	e.Failures, e.Quarantined = fails, quar
	e.End = time.Now().UnixNano()
	obs.Emit(o, e)
}

// emitRecovery streams a checkpoint-restore event: path is "recovery" for a
// same-size reload, "remap" for the elastic re-hash.
func (f *Fixpoint) emitRecovery(opts Options, path string, iter, bytes int) {
	o := f.MC.Observer()
	if o == nil {
		return
	}
	e := obs.Get()
	e.Kind = obs.KindRecovery
	e.Rank, e.Stratum, e.Iter = f.Comm.Rank(), opts.Stratum, iter
	e.Name = path
	e.Bytes = int64(bytes)
	e.End = time.Now().UnixNano()
	obs.Emit(o, e)
}

// remapSnapshots decodes every old rank's checkpoint payload and restores
// each relation of the snapshot set from the union, re-hashed through the
// current world's layout. It returns the total number of payload words
// processed (the remap's work measure).
func (f *Fixpoint) remapSnapshots(opts Options, cps []Checkpoint) (int, error) {
	rels := f.snapshotSet(opts)
	payloads := make([][]mpi.Word, len(cps))
	for i := range cps {
		payloads[i] = cps[i].Words
	}
	total := 0
	for _, rel := range rels {
		snaps := make([]*relation.Snapshot, len(cps))
		for i := range payloads {
			if len(payloads[i]) < 1 {
				return total, fmt.Errorf("ra: original rank %d's snapshot truncated before relation %s", i, rel.Name)
			}
			n := int(payloads[i][0])
			if len(payloads[i]) < 1+n {
				return total, fmt.Errorf("ra: original rank %d's snapshot truncated inside relation %s", i, rel.Name)
			}
			s, err := rel.DecodeSnapshotWords(payloads[i][1 : 1+n])
			if err != nil {
				return total, err
			}
			snaps[i] = s
			payloads[i] = payloads[i][1+n:]
			total += n
		}
		if err := rel.RestoreRemapped(snaps); err != nil {
			return total, err
		}
	}
	for i := range payloads {
		if len(payloads[i]) != 0 {
			return total, fmt.Errorf("ra: original rank %d's snapshot has %d trailing words: relation set mismatch",
				i, len(payloads[i]))
		}
	}
	return total, nil
}

// checkpoint snapshots the stratum's relations after `iter` completed
// iterations. A structured storage failure (*ErrCheckpointStorage: the
// device is full or lying) degrades the run to an in-memory fallback sink
// with a warning event instead of failing the rank; any other sink error
// fails this rank (the panic is recovered into an ErrRankFailed by the
// runtime), because continuing without the promised checkpoint would
// silently void the fault-tolerance contract.
func (f *Fixpoint) checkpoint(opts Options, iter int) {
	timer := metrics.StartTimer()
	// Hot replacement: agree on a consistent cut of the wire's frame
	// counters first (a no-op rendezvous otherwise), so the saved state and
	// the saved wire position describe the same instant. The trailing
	// Barrier below keeps history release ordered after every rank's save.
	sendMarks, recvMarks, marked := f.Comm.CheckpointMarks()
	var words []mpi.Word
	var sums []uint64
	for _, rel := range f.snapshotSet(opts) {
		sub := rel.SnapshotWords()
		sums = append(sums, ckptSum(sub))
		words = append(words, mpi.Word(len(sub)))
		words = append(words, sub...)
	}
	rank := f.Comm.Rank()
	cp := Checkpoint{Ranks: f.Comm.Size(), Stratum: opts.Stratum, Iter: iter, Words: words, SectionSums: sums,
		SendSeqs: sendMarks, RecvSeqs: recvMarks}
	sink := opts.Sink
	if f.fallbackSink != nil {
		sink = f.fallbackSink
	}
	var err error
	if f.Comm.DiskFullNow(iter) {
		// Injected storage fault: the device reports full before any byte
		// lands, exactly like a real ENOSPC on the temp-file write.
		err = &ErrCheckpointStorage{Path: "(injected disk-full)",
			Cause: fmt.Errorf("no space left on device (injected at iteration %d)", iter)}
	} else {
		err = sink.Save(rank, cp)
	}
	if err != nil {
		if _, ok := AsCheckpointStorage(err); !ok {
			panic(fmt.Sprintf("ra: rank %d checkpoint save at iteration %d failed: %v", rank, iter, err))
		}
		// Degrade: persistent checkpointing is gone for this run. Keep the
		// computation alive on in-memory snapshots (still good for in-process
		// supervisor recovery, void across a process restart) and surface
		// the loss loudly instead of aborting.
		f.fallbackSink = NewMemoryCheckpointSink()
		countCkptDegradation()
		f.emitCkptDegraded(opts, iter, err)
		if serr := f.fallbackSink.Save(rank, cp); serr != nil {
			panic(fmt.Sprintf("ra: rank %d fallback checkpoint save at iteration %d failed: %v", rank, iter, serr))
		}
	}
	if f.Comm.CkptCorruptNow(iter) {
		// Injected checkpoint-corruption fault: flip bits of the generation
		// just written so the next recovery scan must quarantine it and fall
		// back one generation. Post-degradation the fallback sink holds the
		// newest generation.
		target := sink
		if f.fallbackSink != nil {
			target = f.fallbackSink
		}
		if tp, ok := target.(Tamperer); ok {
			tp.TamperNewest(rank)
		}
	}
	if marked {
		// No rank may start next-iteration sends before every rank captured
		// and saved; only then may retained send history roll forward. The
		// star-shaped CheckpointBarrier keeps the cut consistent under tree
		// and ring schedules (see mpi.CheckpointBarrier).
		f.Comm.CheckpointBarrier()
		f.Comm.WireMarkCheckpoint()
	}
	f.MC.Record(rank, iter-1, metrics.PhaseCheckpoint,
		timer.Done(int64(len(words)), int64(len(words)*mpi.WordBytes), 0))
	if o := f.MC.Observer(); o != nil {
		e := obs.Get()
		e.Kind = obs.KindCheckpoint
		e.Rank, e.Stratum, e.Iter = rank, opts.Stratum, iter
		e.Bytes = int64(len(words) * mpi.WordBytes)
		e.End = time.Now().UnixNano()
		obs.Emit(o, e)
	}
}

// pressure feeds the accountant one iteration's footprint sample and
// applies the collective budget ladder, returning true when soft pressure
// asks for the next checkpoint to happen now. Hard pressure does not
// return: the iteration fails with a structured resource.ErrMemoryBudget
// inside mpi.ErrRankFailed, recoverable by the supervisor. The level is
// agreed by Allreduce(OpMax), so every rank responds uniformly even when
// only one is over budget. Collective when enabled; no-op otherwise.
func (f *Fixpoint) pressure(opts Options, iter int) (forceCkpt bool) {
	acct := opts.Acct
	if acct == nil || acct.Budget() <= 0 {
		return false
	}
	words := int64(0)
	for _, r := range f.allRels {
		words += r.MemWords()
	}
	acct.SetComputeWords(words)
	if b, ok := f.Comm.MemPressureNow(iter); ok {
		// Injected pressure fault: synthetic usage, real ladder response.
		acct.AddPhantomBytes(b)
	}
	// One collective agrees on both the worst level and the worst usage:
	// the level rides the top byte so OpMax picks the most pressured rank
	// first, its accounted bytes as the tie-break. Every rank then responds
	// uniformly — and a hard failure's error names the violating usage even
	// on ranks that were individually under budget.
	used := acct.UsedBytes()
	if used > levelPackMask {
		used = levelPackMask
	}
	agreed := f.Comm.Allreduce(uint64(acct.Level())<<levelPackShift|uint64(used), mpi.OpMax)
	lvl := resource.Level(agreed >> levelPackShift)
	worstUsed := int64(agreed & levelPackMask)
	switch lvl {
	case resource.LevelSoft:
		// Shed what is reclaimable (scratch pools, lazily rebuilt on
		// demand) and bring the next checkpoint forward so a later hard
		// failure loses little work.
		for _, r := range f.allRels {
			r.ReleaseScratch()
		}
		acct.CountPressure(lvl)
		f.emitMemPressure(opts, iter, lvl, acct)
		return true
	case resource.LevelHard:
		acct.CountPressure(lvl)
		f.emitMemPressure(opts, iter, lvl, acct)
		panic(&mpi.ErrRankFailed{
			Rank: f.Comm.Rank(), Op: "mem-budget", Iter: iter,
			Cause: &resource.ErrMemoryBudget{
				Rank: f.Comm.Rank(), Iter: iter,
				Used: worstUsed, Budget: acct.Budget(),
			},
		})
	}
	return false
}

// levelPackShift/levelPackMask pack a pressure level above 56 bits of
// accounted usage for the single-word pressure Allreduce.
const (
	levelPackShift = 56
	levelPackMask  = 1<<levelPackShift - 1
)

// emitMemPressure streams one budget-ladder response: Name carries the
// level, Work the accounted bytes, Bytes the budget.
func (f *Fixpoint) emitMemPressure(opts Options, iter int, lvl resource.Level, acct *resource.Accountant) {
	o := f.MC.Observer()
	if o == nil {
		return
	}
	e := obs.Get()
	e.Kind = obs.KindMemPressure
	e.Rank, e.Stratum, e.Iter = f.Comm.Rank(), opts.Stratum, iter
	e.Name = lvl.String()
	e.Work, e.Bytes = acct.UsedBytes(), acct.Budget()
	e.End = time.Now().UnixNano()
	obs.Emit(o, e)
}

// emitCkptDegraded streams the storage-degradation warning: persistent
// checkpointing failed and the run fell back to in-memory snapshots.
func (f *Fixpoint) emitCkptDegraded(opts Options, iter int, cause error) {
	o := f.MC.Observer()
	if o == nil {
		return
	}
	e := obs.Get()
	e.Kind = obs.KindCkptDegraded
	e.Rank, e.Stratum, e.Iter = f.Comm.Rank(), opts.Stratum, iter
	e.Err = cause.Error()
	e.End = time.Now().UnixNano()
	obs.Emit(o, e)
}

// restoreSnapshot decodes a checkpoint payload into the snapshot set.
func (f *Fixpoint) restoreSnapshot(opts Options, words []mpi.Word) error {
	rels := f.snapshotSet(opts)
	for _, rel := range rels {
		if len(words) < 1 {
			return fmt.Errorf("ra: snapshot truncated before relation %d of %d", 0, len(rels))
		}
		n := int(words[0])
		if len(words) < 1+n {
			return fmt.Errorf("ra: snapshot truncated inside a relation payload (%d of %d words)", len(words)-1, n)
		}
		if err := rel.RestoreWords(words[1 : 1+n]); err != nil {
			return err
		}
		words = words[1+n:]
	}
	if len(words) != 0 {
		return fmt.Errorf("ra: snapshot has %d trailing words: relation set mismatch", len(words))
	}
	return nil
}

// prepare builds the loop-invariant iteration scratch once per Fixpoint.
// It is lazy (not folded into NewFixpoint) because tests and tools build
// Fixpoint values directly with struct literals.
func (f *Fixpoint) prepare() {
	if f.prepared {
		return
	}
	f.prepared = true
	f.bodyOnly = f.bodyOnlyRels()
	f.allRels = append(append([]*relation.Relation(nil), f.heads...), f.bodyOnly...)
	f.pending = make(map[*relation.Relation]*tuple.Buffer, len(f.heads))
	for _, h := range f.heads {
		f.pending[h] = tuple.NewBuffer(h.Arity, 64)
	}
}

// step executes one fixpoint iteration: run every applicable kernel
// variant, materialize every head, flip Δ of consumed EDBs, and return the
// global changed count. Collective; prepare must have run.
func (f *Fixpoint) step(opts Options, iter int) uint64 {
	// Publish the iteration to the fault layer: injected faults target
	// it and failure reports carry it.
	f.Comm.SetEpoch(iter)
	if rel, mask, ok := f.Comm.StateCorruptNow(iter); ok {
		// Injected in-memory corruption fault: silently flip one stored word
		// of the named relation's shard before the iteration's rules run.
		// The Materialize of the iteration the flip lands in must detect it
		// (Config.Integrity). An empty target shard (nothing to flip yet)
		// keeps the fault pending for the next iteration.
		f.tamperRel, f.tamperMask = rel, mask
	}
	if f.tamperMask != 0 {
		for _, r := range f.allRels {
			if r.Name == f.tamperRel {
				if r.TamperState(f.tamperMask) {
					f.tamperMask = 0
				}
				break
			}
		}
	}
	// Live observability: snapshot wall time and communication counters so
	// the iteration event carries the iteration's deltas. The nil path does
	// no work (the steady-state iteration stays allocation-free).
	o := f.MC.Observer()
	var iterStart int64
	var pre mpi.Totals
	if o != nil {
		iterStart = time.Now().UnixNano()
		pre = f.Comm.Stats().Snapshot()
	}
	if opts.AdaptiveBalance {
		f.rebalance(iter, f.allRels, opts)
	}
	for _, h := range f.heads {
		f.pending[h].Reset()
	}
	for _, r := range f.Rules {
		r.RunVariants(iter, opts.Plan, f.MC, f.pending[r.HeadRel()])
	}
	changed := uint64(0)
	for _, h := range f.heads {
		changed += h.Materialize(iter, f.pending[h], true)
	}
	// Flip Δ of body-only relations after their facts have been
	// consumed once.
	for _, b := range f.bodyOnly {
		if b.ChangedLast() > 0 {
			b.Materialize(iter, nil, false)
		}
	}
	if opts.AfterIteration != nil {
		opts.AfterIteration(iter, changed)
	}
	if o != nil {
		f.emitIteration(o, opts, iter, changed, iterStart, pre)
	}
	return changed
}

// emitIteration streams the end-of-iteration events: one obs.KindRelation
// event per head (global size, global Δ, per-rank distribution — Fig. 3's
// skew signal, live) and one obs.KindIteration event carrying the changed
// count plus the iteration's communication and transport-robustness deltas.
// The per-rank distribution performs one allgather per head, so observation
// must be enabled uniformly across ranks (Exec guarantees it in-process).
func (f *Fixpoint) emitIteration(o obs.Observer, opts Options, iter int, changed uint64, startNS int64, pre mpi.Totals) {
	rank, stratum := f.Comm.Rank(), f.MC.Stratum()
	for _, h := range f.heads {
		counts := h.PerRankCounts()
		total := uint64(0)
		for _, c := range counts {
			total += uint64(c)
		}
		e := obs.Get()
		e.Kind = obs.KindRelation
		e.Rank, e.Stratum, e.Iter = rank, stratum, iter
		e.Name = h.Name
		e.Count, e.Changed = total, h.ChangedLast()
		e.PerRank = append(e.PerRank, counts...)
		e.End = time.Now().UnixNano()
		obs.Emit(o, e)
	}
	d := f.Comm.Stats().Snapshot().Sub(pre)
	e := obs.Get()
	e.Kind = obs.KindIteration
	e.Rank, e.Stratum, e.Iter = rank, stratum, iter
	e.Changed = changed
	e.Start, e.End = startNS, time.Now().UnixNano()
	e.Bytes = int64(d.Bytes())
	e.Msgs = int64(d.P2PMessages + d.CollectiveCalls)
	e.Net = obs.NetStats{
		FramesSent:      d.Net.FramesSent,
		FramesRecv:      d.Net.FramesRecv,
		DialRetries:     d.Net.DialRetries,
		Reconnects:      d.Net.Reconnects,
		Retransmits:     d.Net.Retransmits,
		DupsDropped:     d.Net.DupsDropped,
		HeartbeatMisses: d.Net.HeartbeatMisses,
		CRCErrors:       d.Net.CRCErrors,
		ThrottleStalls:  d.Net.ThrottleStalls,
		// The outbox peak is a gauge, not a delta: Sub passes it through.
		OutboxPeakFrames: d.Net.OutboxPeakFrames,
		PeerBytesSent:    d.Net.PeerBytesSent,
		PeerBytesRecv:    d.Net.PeerBytesRecv,
	}
	obs.Emit(o, e)
}

// run is the shared fixpoint loop, entered at startIter (0 for a fresh run,
// the checkpoint's completed-iteration count for a resume).
func (f *Fixpoint) run(opts Options, startIter int) int {
	f.prepare()
	iter := startIter
	for {
		changed := f.step(opts, iter)
		iter++
		forceCkpt := f.pressure(opts, iter)
		if changed == 0 {
			return iter
		}
		if opts.CheckpointEvery > 0 && opts.Sink != nil &&
			(forceCkpt || iter%opts.CheckpointEvery == 0) {
			f.checkpoint(opts, iter)
		}
		if opts.MaxIters > 0 && iter >= opts.MaxIters {
			return iter
		}
	}
}

// rebalance is the spatial load-balancing phase of Fig. 1: for every
// relation of the stratum, gather per-rank tuple counts and, when the
// maximum exceeds the threshold times the mean, double the relation's
// sub-bucket count and redistribute its storage. Decisions derive from
// collectively identical data, so every rank acts uniformly.
func (f *Fixpoint) rebalance(iter int, rels []*relation.Relation, opts Options) {
	threshold := opts.effectiveBalanceThreshold()
	maxSubs := opts.effectiveMaxSubs()
	rank := f.Comm.Rank()
	for _, rel := range rels {
		timer := metrics.StartTimer()
		counts := rel.PerRankCounts()
		total, max := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		mean := float64(total) / float64(len(counts))
		shipped := 0
		if mean > 0 && float64(max) > threshold*mean && rel.Subs()*2 <= maxSubs {
			shipped = rel.SetSubs(rel.Subs() * 2)
		}
		f.MC.Record(rank, iter, metrics.PhaseRebalance,
			timer.Done(1, int64(shipped), int64(f.Comm.ScheduleDepth())))
	}
}

// ResetDelta re-seeds a relation's Δ with its entire FULL contents and
// refreshes its changed count, so a later stratum's rules see previously
// computed tuples as fresh. Collective.
func ResetDelta(r *relation.Relation) {
	for _, ix := range r.Indexes() {
		fresh := btree.New()
		ix.Full.Ascend(func(t tuple.Tuple) bool {
			fresh.Insert(t)
			return true
		})
		ix.Delta = fresh
	}
	r.SetChangedLast(r.GlobalFullCount())
}
