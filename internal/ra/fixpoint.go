package ra

import (
	"paralagg/internal/btree"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// Rule is one compiled kernel in a stratum. Joins contribute up to two
// semi-naïve variants per iteration; copies contribute one.
type Rule interface {
	// Heads returns the relation the rule writes.
	HeadRel() *relation.Relation
	// Bodies returns the relations the rule reads.
	BodyRels() []*relation.Relation
	// RunVariants executes every semi-naïve variant whose Δ side changed
	// in the previous iteration, appending head tuples to pending.
	RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer)
}

// HeadRel implements Rule.
func (j *Join) HeadRel() *relation.Relation { return j.Head }

// BodyRels implements Rule.
func (j *Join) BodyRels() []*relation.Relation {
	return []*relation.Relation{j.LeftRel, j.RightRel}
}

// RunVariants implements Rule: it runs Δ⋈FULL when the left side changed
// and (FULL−Δ)⋈Δ when the right side changed. The two variants partition
// the new pairs exactly — every (left, right) pair involving at least one Δ
// tuple is produced exactly once — so even non-idempotent aggregates
// (MSum, MCount) accumulate correctly.
func (j *Join) RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	if j.LeftRel.ChangedLast() > 0 {
		j.Run(iter, VDelta, VFull, mode, mc, pending)
	}
	if j.RightRel.ChangedLast() > 0 {
		j.Run(iter, VFullMinusDelta, VDelta, mode, mc, pending)
	}
}

// HeadRel implements Rule.
func (cp *Copy) HeadRel() *relation.Relation { return cp.Head }

// BodyRels implements Rule.
func (cp *Copy) BodyRels() []*relation.Relation {
	return []*relation.Relation{cp.SrcRel}
}

// RunVariants implements Rule: copies scan Δ of their source when it
// changed.
func (cp *Copy) RunVariants(iter int, mode PlanMode, mc *metrics.Collector, pending *tuple.Buffer) {
	if cp.SrcRel.ChangedLast() > 0 {
		cp.Run(iter, mc, pending)
	}
}

// Options tunes a fixpoint run.
type Options struct {
	// Plan selects the join-layout strategy (§IV-D).
	Plan PlanMode
	// MaxIters bounds the number of iterations (0 = until fixpoint).
	MaxIters int
	// AdaptiveBalance turns on the per-iteration balancing phase of
	// Fig. 1: when a relation's per-rank tuple counts exceed
	// BalanceThreshold × mean, its sub-bucket count doubles (up to
	// MaxSubs) and storage redistributes. The check costs one allgather
	// per relation per iteration; redistribution traffic is metered as
	// PhaseRebalance.
	AdaptiveBalance  bool
	BalanceThreshold float64 // default 2.0
	MaxSubs          int     // default 16
	// AfterIteration, if set, runs on every rank at the end of each
	// iteration (after materialization, before the fixpoint decision). The
	// baseline engines use it to model per-iteration runtime overheads of
	// the systems the paper compares against.
	AfterIteration func(iter int, changed uint64)
}

// Fixpoint runs a stratum's rules to fixpoint with semi-naïve evaluation.
type Fixpoint struct {
	Comm  *mpi.Comm
	MC    *metrics.Collector
	Rules []Rule

	heads []*relation.Relation
}

// NewFixpoint assembles a stratum from compiled rules.
func NewFixpoint(comm *mpi.Comm, mc *metrics.Collector, rules ...Rule) *Fixpoint {
	f := &Fixpoint{Comm: comm, MC: mc, Rules: rules}
	seen := map[*relation.Relation]bool{}
	for _, r := range rules {
		h := r.HeadRel()
		if !seen[h] {
			seen[h] = true
			f.heads = append(f.heads, h)
		}
	}
	return f
}

// Heads returns the relations written by the stratum, in first-rule order.
func (f *Fixpoint) Heads() []*relation.Relation { return f.heads }

// Run iterates the stratum until no relation changes (or opts.MaxIters is
// reached), returning the number of iterations executed. It is collective.
//
// Each iteration runs every applicable kernel variant, then materializes
// every head relation — routing new tuples, fusing deduplication with local
// aggregation, flipping Δ versions — and finally agrees on the global
// changed count. Body-only relations (EDBs) have their Δ flipped so copy
// rules fire exactly once on loaded facts.
func (f *Fixpoint) Run(opts Options) int {
	iter := 0
	// Body-only relations: read but never written in this stratum.
	headSet := map[*relation.Relation]bool{}
	for _, h := range f.heads {
		headSet[h] = true
	}
	var bodyOnly []*relation.Relation
	seenBody := map[*relation.Relation]bool{}
	for _, r := range f.Rules {
		for _, b := range r.BodyRels() {
			if !headSet[b] && !seenBody[b] {
				seenBody[b] = true
				bodyOnly = append(bodyOnly, b)
			}
		}
	}
	allRels := append(append([]*relation.Relation(nil), f.heads...), bodyOnly...)

	for {
		if opts.AdaptiveBalance {
			f.rebalance(iter, allRels, opts)
		}
		pending := make(map[*relation.Relation]*tuple.Buffer, len(f.heads))
		for _, h := range f.heads {
			pending[h] = tuple.NewBuffer(h.Arity, 64)
		}
		for _, r := range f.Rules {
			r.RunVariants(iter, opts.Plan, f.MC, pending[r.HeadRel()])
		}
		changed := uint64(0)
		for _, h := range f.heads {
			changed += h.Materialize(iter, pending[h], true)
		}
		// Flip Δ of body-only relations after their facts have been
		// consumed once.
		for _, b := range bodyOnly {
			if b.ChangedLast() > 0 {
				b.Materialize(iter, nil, false)
			}
		}
		if opts.AfterIteration != nil {
			opts.AfterIteration(iter, changed)
		}
		iter++
		if changed == 0 {
			return iter
		}
		if opts.MaxIters > 0 && iter >= opts.MaxIters {
			return iter
		}
	}
}

// rebalance is the spatial load-balancing phase of Fig. 1: for every
// relation of the stratum, gather per-rank tuple counts and, when the
// maximum exceeds the threshold times the mean, double the relation's
// sub-bucket count and redistribute its storage. Decisions derive from
// collectively identical data, so every rank acts uniformly.
func (f *Fixpoint) rebalance(iter int, rels []*relation.Relation, opts Options) {
	threshold := opts.BalanceThreshold
	if threshold <= 1 {
		threshold = 2.0
	}
	maxSubs := opts.MaxSubs
	if maxSubs < 1 {
		maxSubs = 16
	}
	rank := f.Comm.Rank()
	for _, rel := range rels {
		timer := metrics.StartTimer()
		counts := rel.PerRankCounts()
		total, max := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		mean := float64(total) / float64(len(counts))
		shipped := 0
		if mean > 0 && float64(max) > threshold*mean && rel.Subs()*2 <= maxSubs {
			shipped = rel.SetSubs(rel.Subs() * 2)
		}
		f.MC.Record(rank, iter, metrics.PhaseRebalance,
			timer.Done(1, int64(shipped), logRanks(f.Comm.Size())))
	}
}

// ResetDelta re-seeds a relation's Δ with its entire FULL contents and
// refreshes its changed count, so a later stratum's rules see previously
// computed tuples as fresh. Collective.
func ResetDelta(r *relation.Relation) {
	for _, ix := range r.Indexes() {
		fresh := btree.New()
		ix.Full.Ascend(func(t tuple.Tuple) bool {
			fresh.Insert(t)
			return true
		})
		ix.Delta = fresh
	}
	r.SetChangedLast(r.GlobalFullCount())
}
