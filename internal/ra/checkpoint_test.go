package ra

import (
	"fmt"
	"testing"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// chainTC builds the 50-node-chain transitive-closure fixpoint used by the
// truncation and checkpoint tests; full closure is 50·51/2 = 1275 paths.
func chainTC(c *mpi.Comm, mc *metrics.Collector) (*Fixpoint, *relation.Relation) {
	edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
	edgeRel.LoadShare(50, func(i int, emit func(tuple.Tuple)) {
		emit(tuple.Tuple{tuple.Value(i), tuple.Value(i + 1)})
	})
	fx := NewFixpoint(c, mc,
		&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
			Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
		&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: pathRel, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
	)
	return fx, pathRel
}

const chainTCPaths = 50 * 51 / 2

func TestEffectiveOptionDefaults(t *testing.T) {
	zero := Options{}
	if got := zero.effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("zero-value threshold = %v, want DefaultBalanceThreshold", got)
	}
	if got := zero.effectiveMaxSubs(); got != DefaultMaxSubs {
		t.Errorf("zero-value max subs = %v, want DefaultMaxSubs", got)
	}
	set := Options{BalanceThreshold: 3.5, MaxSubs: 4}
	if got := set.effectiveBalanceThreshold(); got != 3.5 {
		t.Errorf("explicit threshold overridden to %v", got)
	}
	if got := set.effectiveMaxSubs(); got != 4 {
		t.Errorf("explicit max subs overridden to %v", got)
	}
	// Sub-threshold values fall back too (a threshold at or below 1 would
	// rebalance constantly).
	if got := (Options{BalanceThreshold: 0.5}).effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("threshold 0.5 accepted as %v", got)
	}
}

// TestZeroValueOptionsBehaveAsDocumentedDefaults runs the same skewed
// adaptive-balance workload with zero-value knobs and with the documented
// defaults spelled out: the runs must make identical rebalancing decisions
// and identical answers.
func TestZeroValueOptionsBehaveAsDocumentedDefaults(t *testing.T) {
	var es []edge
	for i := 1; i <= 60; i++ {
		es = append(es, edge{0, uint64(i), 1})
	}
	run := func(opts Options) (subs int, paths uint64) {
		const ranks = 4
		w := mpi.NewWorld(ranks)
		err := w.Run(func(c *mpi.Comm) error {
			mc := metrics.NewCollector(ranks)
			edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
			edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
				emit(tuple.Tuple{es[i].u, es[i].v})
			})
			fx := NewFixpoint(c, mc,
				&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
					Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
				&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
					Head: pathRel, JK: 1,
					Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
			)
			fx.Run(opts)
			if c.Rank() == 0 {
				subs = edgeRel.Subs()
				paths = pathRel.GlobalFullCount()
			} else {
				pathRel.GlobalFullCount()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return subs, paths
	}
	zeroSubs, zeroPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true})
	defSubs, defPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true,
		BalanceThreshold: DefaultBalanceThreshold, MaxSubs: DefaultMaxSubs})
	if zeroSubs != defSubs || zeroPaths != defPaths {
		t.Errorf("zero-value Options diverged from documented defaults: subs %d vs %d, paths %d vs %d",
			zeroSubs, defSubs, zeroPaths, defPaths)
	}
}

// TestMaxItersTruncationThenContinue confirms a truncated Run leaves the
// relations in a state a second Run continues from, reaching the same
// fixpoint as an unbounded run.
func TestMaxItersTruncationThenContinue(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		n1 := fx.Run(Options{Plan: PlanDynamic, MaxIters: 3})
		if n1 != 3 {
			return fmt.Errorf("truncated run did %d iterations, want 3", n1)
		}
		partial := pathRel.GlobalFullCount()
		if partial == 0 || partial >= chainTCPaths {
			return fmt.Errorf("after 3 iterations closure has %d paths, expected a strict partial result", partial)
		}
		n2 := fx.Run(Options{Plan: PlanDynamic})
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("continued run reached %d paths, want %d", got, chainTCPaths)
		}
		if n2 < 2 {
			return fmt.Errorf("continuation did only %d iterations from a 3-iteration truncation", n2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFixpointCheckpointResume drives the ra-level checkpoint machinery
// directly: a truncated checkpointing run, then Resume, must reach the same
// fixpoint an uninterrupted run reaches — even after the relations are
// dirtied past the snapshot.
func TestFixpointCheckpointResume(t *testing.T) {
	const ranks = 3
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		opts := Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink}
		truncated := opts
		truncated.MaxIters = 5 // checkpoints at iterations 2 and 4
		fx.Run(truncated)
		dirty := pathRel.GlobalFullCount()

		total, err := fx.Resume(opts)
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("resumed fixpoint reached %d paths, want %d (had %d at truncation)",
				got, chainTCPaths, dirty)
		}
		if total <= 5 {
			return fmt.Errorf("resumed run reported %d total iterations, expected to continue past the truncation", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted run's iteration count must match the
	// resumed total.
	wantIters := 0
	w2 := mpi.NewWorld(ranks)
	if err := w2.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		n := fx.Run(Options{Plan: PlanDynamic})
		if c.Rank() == 0 {
			wantIters = n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// And resuming in a FRESH world (the crash/restart path: new goroutines,
	// reloaded base facts) must also reach the fixpoint.
	w3 := mpi.NewWorld(ranks)
	if err := w3.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("fresh-world resume reached %d paths, want %d", got, chainTCPaths)
		}
		if total != wantIters {
			return fmt.Errorf("fresh-world resume ended at iteration %d, uninterrupted run at %d", total, wantIters)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestResumeErrorsWithoutSinkOrCheckpoint pins the failure modes.
func TestResumeErrorsWithoutSinkOrCheckpoint(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		if _, err := fx.Resume(Options{Plan: PlanDynamic}); err == nil {
			return fmt.Errorf("Resume without a sink did not error")
		}
		if _, err := fx.Resume(Options{Plan: PlanDynamic, Sink: NewMemoryCheckpointSink()}); err != ErrNoCheckpoint {
			return fmt.Errorf("Resume from an empty sink returned %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
