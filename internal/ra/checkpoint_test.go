package ra

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// chainTC builds the 50-node-chain transitive-closure fixpoint used by the
// truncation and checkpoint tests; full closure is 50·51/2 = 1275 paths.
func chainTC(c *mpi.Comm, mc *metrics.Collector) (*Fixpoint, *relation.Relation) {
	edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
	edgeRel.LoadShare(50, func(i int, emit func(tuple.Tuple)) {
		emit(tuple.Tuple{tuple.Value(i), tuple.Value(i + 1)})
	})
	fx := NewFixpoint(c, mc,
		&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
			Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
		&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: pathRel, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
	)
	return fx, pathRel
}

const chainTCPaths = 50 * 51 / 2

func TestEffectiveOptionDefaults(t *testing.T) {
	zero := Options{}
	if got := zero.effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("zero-value threshold = %v, want DefaultBalanceThreshold", got)
	}
	if got := zero.effectiveMaxSubs(); got != DefaultMaxSubs {
		t.Errorf("zero-value max subs = %v, want DefaultMaxSubs", got)
	}
	set := Options{BalanceThreshold: 3.5, MaxSubs: 4}
	if got := set.effectiveBalanceThreshold(); got != 3.5 {
		t.Errorf("explicit threshold overridden to %v", got)
	}
	if got := set.effectiveMaxSubs(); got != 4 {
		t.Errorf("explicit max subs overridden to %v", got)
	}
	// Sub-threshold values fall back too (a threshold at or below 1 would
	// rebalance constantly).
	if got := (Options{BalanceThreshold: 0.5}).effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("threshold 0.5 accepted as %v", got)
	}
}

// TestZeroValueOptionsBehaveAsDocumentedDefaults runs the same skewed
// adaptive-balance workload with zero-value knobs and with the documented
// defaults spelled out: the runs must make identical rebalancing decisions
// and identical answers.
func TestZeroValueOptionsBehaveAsDocumentedDefaults(t *testing.T) {
	var es []edge
	for i := 1; i <= 60; i++ {
		es = append(es, edge{0, uint64(i), 1})
	}
	run := func(opts Options) (subs int, paths uint64) {
		const ranks = 4
		w := mpi.NewWorld(ranks)
		err := w.Run(func(c *mpi.Comm) error {
			mc := metrics.NewCollector(ranks)
			edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
			edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
				emit(tuple.Tuple{es[i].u, es[i].v})
			})
			fx := NewFixpoint(c, mc,
				&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
					Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
				&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
					Head: pathRel, JK: 1,
					Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
			)
			fx.Run(opts)
			if c.Rank() == 0 {
				subs = edgeRel.Subs()
				paths = pathRel.GlobalFullCount()
			} else {
				pathRel.GlobalFullCount()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return subs, paths
	}
	zeroSubs, zeroPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true})
	defSubs, defPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true,
		BalanceThreshold: DefaultBalanceThreshold, MaxSubs: DefaultMaxSubs})
	if zeroSubs != defSubs || zeroPaths != defPaths {
		t.Errorf("zero-value Options diverged from documented defaults: subs %d vs %d, paths %d vs %d",
			zeroSubs, defSubs, zeroPaths, defPaths)
	}
}

// TestMaxItersTruncationThenContinue confirms a truncated Run leaves the
// relations in a state a second Run continues from, reaching the same
// fixpoint as an unbounded run.
func TestMaxItersTruncationThenContinue(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		n1 := fx.Run(Options{Plan: PlanDynamic, MaxIters: 3})
		if n1 != 3 {
			return fmt.Errorf("truncated run did %d iterations, want 3", n1)
		}
		partial := pathRel.GlobalFullCount()
		if partial == 0 || partial >= chainTCPaths {
			return fmt.Errorf("after 3 iterations closure has %d paths, expected a strict partial result", partial)
		}
		n2 := fx.Run(Options{Plan: PlanDynamic})
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("continued run reached %d paths, want %d", got, chainTCPaths)
		}
		if n2 < 2 {
			return fmt.Errorf("continuation did only %d iterations from a 3-iteration truncation", n2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFixpointCheckpointResume drives the ra-level checkpoint machinery
// directly: a truncated checkpointing run, then Resume, must reach the same
// fixpoint an uninterrupted run reaches — even after the relations are
// dirtied past the snapshot.
func TestFixpointCheckpointResume(t *testing.T) {
	const ranks = 3
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		opts := Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink}
		truncated := opts
		truncated.MaxIters = 5 // checkpoints at iterations 2 and 4
		fx.Run(truncated)
		dirty := pathRel.GlobalFullCount()

		total, err := fx.Resume(opts)
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("resumed fixpoint reached %d paths, want %d (had %d at truncation)",
				got, chainTCPaths, dirty)
		}
		if total <= 5 {
			return fmt.Errorf("resumed run reported %d total iterations, expected to continue past the truncation", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted run's iteration count must match the
	// resumed total.
	wantIters := 0
	w2 := mpi.NewWorld(ranks)
	if err := w2.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		n := fx.Run(Options{Plan: PlanDynamic})
		if c.Rank() == 0 {
			wantIters = n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// And resuming in a FRESH world (the crash/restart path: new goroutines,
	// reloaded base facts) must also reach the fixpoint.
	w3 := mpi.NewWorld(ranks)
	if err := w3.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("fresh-world resume reached %d paths, want %d", got, chainTCPaths)
		}
		if total != wantIters {
			return fmt.Errorf("fresh-world resume ended at iteration %d, uninterrupted run at %d", total, wantIters)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestElasticResumeAcrossWorldSizes is the heart of the elastic-recovery
// contract: a checkpoint taken by an N-rank world must restore into a world
// of M ≠ N ranks — shrunk or grown — re-hashing every tuple through the new
// layout, and still reach the identical fixpoint.
func TestElasticResumeAcrossWorldSizes(t *testing.T) {
	const oldRanks = 3
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(oldRanks)
	if err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(oldRanks)
		fx, _ := chainTC(c, mc)
		fx.Run(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink, MaxIters: 5})
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, newRanks := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("into-%d-ranks", newRanks), func(t *testing.T) {
			mc := metrics.NewCollector(newRanks)
			w2 := mpi.NewWorld(newRanks)
			if err := w2.Run(func(c *mpi.Comm) error {
				fx, pathRel := chainTC(c, mc)
				total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
				if err != nil {
					return err
				}
				if got := pathRel.GlobalFullCount(); got != chainTCPaths {
					return fmt.Errorf("remapped resume at %d ranks reached %d paths, want %d", newRanks, got, chainTCPaths)
				}
				if total <= 4 {
					return fmt.Errorf("remapped resume reported %d total iterations, expected to continue past the checkpoint", total)
				}
				// Every shard must live where the new layout places it: the
				// rank-local invariant checker would have caught misplaced
				// tuples during the fixpoint, but assert emptiness of the
				// foreign shards directly via per-rank counts.
				counts := pathRel.PerRankCounts()
				sum := 0
				for _, n := range counts {
					sum += n
				}
				if sum != chainTCPaths {
					return fmt.Errorf("per-rank counts %v sum to %d, want %d (duplicated or lost shards)", counts, sum, chainTCPaths)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if rep := mc.BuildReport(metrics.DefaultCostModel); rep.PhaseSeconds(metrics.PhaseRemap) <= 0 {
				t.Error("remapped resume metered no PhaseRemap time")
			}
		})
	}
}

// TestAgreedPositionEmptyAndElastic pins AgreedPosition's contract: empty
// sink means ok=false everywhere; a populated sink reports the writing
// world's size even from a differently sized world.
func TestAgreedPositionEmptyAndElastic(t *testing.T) {
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(2)
	if err := w.Run(func(c *mpi.Comm) error {
		if _, ok, err := AgreedPosition(c, sink); err != nil || ok {
			return fmt.Errorf("empty sink: ok=%v err=%v, want false/nil", ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for r := 0; r < 3; r++ {
		if err := sink.Save(r, Checkpoint{Ranks: 3, Stratum: 1, Iter: 4, Words: []mpi.Word{uint64(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	w2 := mpi.NewWorld(2)
	if err := w2.Run(func(c *mpi.Comm) error {
		pos, ok, err := AgreedPosition(c, sink)
		if err != nil || !ok {
			return fmt.Errorf("AgreedPosition: ok=%v err=%v", ok, err)
		}
		if pos != (Position{Ranks: 3, Stratum: 1, Iter: 4}) {
			return fmt.Errorf("pos = %+v, want {3 1 4}", pos)
		}
		cps, err := CollectRemap(sink, pos)
		if err != nil {
			return err
		}
		if len(cps) != 3 {
			return fmt.Errorf("collected %d checkpoints, want 3", len(cps))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectRemapRejectsTornSets pins the torn-set failure modes: a
// missing shard and a position mismatch must both error.
func TestCollectRemapRejectsTornSets(t *testing.T) {
	pos := Position{Ranks: 3, Stratum: 0, Iter: 4}
	sink := NewMemoryCheckpointSink()
	sink.Save(0, Checkpoint{Ranks: 3, Iter: 4})
	sink.Save(1, Checkpoint{Ranks: 3, Iter: 4})
	if _, err := CollectRemap(sink, pos); err == nil {
		t.Error("missing rank-2 checkpoint not rejected")
	}
	sink.Save(2, Checkpoint{Ranks: 3, Iter: 2}) // stale iteration
	if _, err := CollectRemap(sink, pos); err == nil {
		t.Error("stale rank-2 checkpoint not rejected")
	}
	sink.Save(2, Checkpoint{Ranks: 3, Iter: 4})
	if _, err := CollectRemap(sink, pos); err != nil {
		t.Errorf("complete set rejected: %v", err)
	}
}

// TestCheckpointSinkConcurrentSaveLatest hammers both sink implementations
// from many goroutines under the race detector (make verify runs -race):
// concurrent Save and Latest on overlapping ranks must never tear — every
// observed checkpoint is one that some Save wrote in full.
func TestCheckpointSinkConcurrentSaveLatest(t *testing.T) {
	sinks := map[string]CheckpointSink{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	}
	for name, sink := range sinks {
		t.Run(name, func(t *testing.T) {
			const ranks, rounds = 4, 25
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(2)
				go func(rank int) { // writer: monotone iterations
					defer wg.Done()
					for i := 1; i <= rounds; i++ {
						words := make([]mpi.Word, i)
						for j := range words {
							words[j] = uint64(i) // payload encodes the version
						}
						if err := sink.Save(rank, Checkpoint{Ranks: ranks, Iter: i, Words: words}); err != nil {
							t.Errorf("rank %d save %d: %v", rank, i, err)
							return
						}
					}
				}(r)
				go func(rank int) { // reader: every observation must be intact
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						cp, ok, err := sink.Latest(rank)
						if err != nil {
							t.Errorf("rank %d latest: %v", rank, err)
							return
						}
						if !ok {
							continue
						}
						if len(cp.Words) != cp.Iter {
							t.Errorf("rank %d: torn checkpoint: iter %d with %d words", rank, cp.Iter, len(cp.Words))
							return
						}
						for _, w := range cp.Words {
							if w != uint64(cp.Iter) {
								t.Errorf("rank %d: payload word %d in an iter-%d checkpoint", rank, w, cp.Iter)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestFileSinkTornWriteKeepsPreviousCheckpoint simulates a crash mid-save:
// after a good checkpoint, a truncated temporary file (the write died before
// the atomic rename) and junk overwriting a tmp path must both leave the
// previous checkpoint fully readable.
func TestFileSinkTornWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir}
	want := Checkpoint{Ranks: 2, Stratum: 1, Iter: 6, Words: []mpi.Word{7, 8, 9}}
	if err := sink.Save(0, want); err != nil {
		t.Fatal(err)
	}

	// A torn write: half of a newer checkpoint's bytes sitting in a tmp
	// file, never renamed into place.
	tmp := filepath.Join(dir, "rank-0000.gen-000002.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("partial checkpoint bytes that never finished"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := sink.Latest(0)
	if err != nil || !ok {
		t.Fatalf("Latest after torn tmp write: ok=%v err=%v", ok, err)
	}
	if cp.Iter != want.Iter || len(cp.Words) != len(want.Words) || cp.Words[2] != 9 {
		t.Errorf("previous checkpoint damaged by torn write: %+v", cp)
	}

	// A subsequent complete Save must still go through over the junk tmp.
	want2 := Checkpoint{Ranks: 2, Stratum: 1, Iter: 8, Words: []mpi.Word{1}}
	if err := sink.Save(0, want2); err != nil {
		t.Fatal(err)
	}
	if cp, _, _ := sink.Latest(0); cp.Iter != 8 {
		t.Errorf("save after torn write produced iter %d, want 8", cp.Iter)
	}
}

// TestFileSinkCorruptNewestFallsBackOneGeneration is the degradation
// contract: bit rot in the newest generation quarantines it (renamed
// .bad, counted) and recovery proceeds from the previous generation;
// only when every generation is corrupt does the sink report nothing.
func TestFileSinkCorruptNewestFallsBackOneGeneration(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir}
	if err := sink.Save(0, Checkpoint{Ranks: 1, Stratum: 1, Iter: 6, Words: []mpi.Word{7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Save(0, Checkpoint{Ranks: 1, Stratum: 1, Iter: 8, Words: []mpi.Word{1, 2}}); err != nil {
		t.Fatal(err)
	}
	failsBefore, quarBefore := CheckpointIntegrityStats()
	if !sink.TamperNewest(0) {
		t.Fatal("TamperNewest found nothing to corrupt")
	}

	cp, ok, err := sink.Latest(0)
	if err != nil || !ok {
		t.Fatalf("Latest after corrupting newest: ok=%v err=%v", ok, err)
	}
	if cp.Iter != 6 {
		t.Errorf("fallback loaded iter %d, want the previous generation's 6", cp.Iter)
	}
	fails, quar := CheckpointIntegrityStats()
	if fails-failsBefore < 1 || quar-quarBefore < 1 {
		t.Errorf("corruption not counted: validation failures +%d, quarantined +%d", fails-failsBefore, quar-quarBefore)
	}
	bads, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bads) != 1 {
		t.Errorf("quarantined files on disk: %v, want exactly one", bads)
	}
	// The quarantined generation is never retried: a second scan reads the
	// survivor without re-counting.
	fails2Before, _ := CheckpointIntegrityStats()
	if cp, ok, err := sink.Latest(0); err != nil || !ok || cp.Iter != 6 {
		t.Fatalf("second Latest after quarantine: iter=%d ok=%v err=%v", cp.Iter, ok, err)
	}
	if fails2, _ := CheckpointIntegrityStats(); fails2 != fails2Before {
		t.Errorf("quarantined generation was revalidated (%d new failures)", fails2-fails2Before)
	}

	// Corrupt the survivor too: nothing valid remains.
	if !sink.TamperNewest(0) {
		t.Fatal("second TamperNewest found nothing")
	}
	if _, ok, err := sink.Latest(0); err != nil || ok {
		t.Errorf("Latest with every generation corrupt: ok=%v err=%v, want false/nil", ok, err)
	}
}

// TestLatestValidRequiresCompleteSet pins the cross-rank half of the scan:
// a generation whose set is torn — any rank's member corrupt — is skipped
// in favor of the newest complete one, on both sink implementations.
func TestLatestValidRequiresCompleteSet(t *testing.T) {
	sinks := map[string]interface {
		CheckpointSink
		Tamperer
	}{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	}
	for name, sink := range sinks {
		t.Run(name, func(t *testing.T) {
			for _, iter := range []int{2, 4} {
				for r := 0; r < 2; r++ {
					if err := sink.Save(r, Checkpoint{Ranks: 2, Iter: iter, Words: []mpi.Word{uint64(10*iter + r)}}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if pos, ok, err := sink.LatestValid(); err != nil || !ok || pos.Iter != 4 {
				t.Fatalf("clean LatestValid: %+v ok=%v err=%v", pos, ok, err)
			}
			if !sink.TamperNewest(1) {
				t.Fatal("TamperNewest(1) found nothing")
			}
			pos, ok, err := sink.LatestValid()
			if err != nil || !ok {
				t.Fatalf("LatestValid after tamper: ok=%v err=%v", ok, err)
			}
			if pos.Iter != 2 {
				t.Errorf("LatestValid settled on iter %d, want fallback to 2", pos.Iter)
			}
			if cp, ok, err := sink.Load(1, pos); err != nil || !ok || cp.Words[0] != 21 {
				t.Errorf("Load(1) at fallback: %+v ok=%v err=%v", cp, ok, err)
			}
		})
	}
}

// TestFileSinkKeepPrunesOldGenerations bounds the disk footprint: with
// Keep=2, four saves leave exactly the two newest generations.
func TestFileSinkKeepPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir, Keep: 2}
	for i := 1; i <= 4; i++ {
		if err := sink.Save(0, Checkpoint{Ranks: 1, Iter: 2 * i, Words: []mpi.Word{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "rank-0000*.ckpt"))
	if len(files) != 2 {
		t.Errorf("after 4 saves with Keep=2, %d files remain: %v", len(files), files)
	}
	if cp, ok, err := sink.Latest(0); err != nil || !ok || cp.Iter != 8 {
		t.Errorf("Latest after pruning: iter=%d ok=%v err=%v, want 8", cp.Iter, ok, err)
	}
}

// TestFileSinkReadsLegacyFormat pins cross-version compatibility at the
// sink level: a pre-versioning rank-%04d.ckpt file loads as the oldest
// generation, and newer v2 saves shadow it without deleting it until
// retention pushes it out.
func TestFileSinkReadsLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	legacy := Checkpoint{Ranks: 1, Stratum: 2, Iter: 4, Words: []mpi.Word{11, 12}}
	writeLegacyCkpt(t, filepath.Join(dir, "rank-0000.ckpt"), legacy)

	sink := FileCheckpointSink{Dir: dir}
	cp, ok, err := sink.Latest(0)
	if err != nil || !ok {
		t.Fatalf("Latest on legacy file: ok=%v err=%v", ok, err)
	}
	if cp.Iter != 4 || len(cp.Words) != 2 || cp.Words[1] != 12 {
		t.Errorf("legacy checkpoint decoded as %+v", cp)
	}
	if pos, ok, err := sink.LatestValid(); err != nil || !ok || pos.Iter != 4 {
		t.Fatalf("LatestValid on legacy file: %+v ok=%v err=%v", pos, ok, err)
	}

	if err := sink.Save(0, Checkpoint{Ranks: 1, Stratum: 2, Iter: 6, Words: []mpi.Word{1}}); err != nil {
		t.Fatal(err)
	}
	if cp, _, _ := sink.Latest(0); cp.Iter != 6 {
		t.Errorf("v2 save did not shadow the legacy file: Latest at iter %d", cp.Iter)
	}
	// The legacy generation still serves as the fallback position.
	if cp, ok, err := sink.Load(0, Position{Ranks: 1, Stratum: 2, Iter: 4}); err != nil || !ok || cp.Words[0] != 11 {
		t.Errorf("legacy generation unavailable after a v2 save: %+v ok=%v err=%v", cp, ok, err)
	}
}

// writeLegacyCkpt encodes cp in the pre-versioning single-generation
// format (magic "paLCkpt2", 6-word header, payload checksum).
func writeLegacyCkpt(t *testing.T, path string, cp Checkpoint) {
	t.Helper()
	buf := make([]byte, 8*(ckptHeaderWords+len(cp.Words)))
	binary.LittleEndian.PutUint64(buf[0:], ckptMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(cp.Ranks))
	binary.LittleEndian.PutUint64(buf[16:], uint64(cp.Stratum))
	binary.LittleEndian.PutUint64(buf[24:], uint64(cp.Iter))
	binary.LittleEndian.PutUint64(buf[32:], ckptSum(cp.Words))
	binary.LittleEndian.PutUint64(buf[40:], uint64(len(cp.Words)))
	for i, w := range cp.Words {
		binary.LittleEndian.PutUint64(buf[8*(ckptHeaderWords+i):], uint64(w))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFallsBackPastCorruptGeneration drives the whole recovery
// degradation end to end: a checkpointing run leaves generations at
// iterations 2 and 4; corrupting every rank's newest generation must make
// a fresh world resume from iteration 2 — and still reach the identical
// fixpoint. With BOTH generations corrupt, Resume reports ErrNoCheckpoint
// (the restart-from-scratch signal).
func TestResumeFallsBackPastCorruptGeneration(t *testing.T) {
	const ranks = 2
	for name, sink := range map[string]interface {
		CheckpointSink
		Tamperer
	}{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	} {
		t.Run(name, func(t *testing.T) {
			w := mpi.NewWorld(ranks)
			if err := w.Run(func(c *mpi.Comm) error {
				mc := metrics.NewCollector(ranks)
				fx, _ := chainTC(c, mc)
				fx.Run(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink, MaxIters: 5})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ranks; r++ {
				if !sink.TamperNewest(r) {
					t.Fatalf("rank %d: nothing to tamper", r)
				}
			}
			w2 := mpi.NewWorld(ranks)
			if err := w2.Run(func(c *mpi.Comm) error {
				mc := metrics.NewCollector(ranks)
				fx, pathRel := chainTC(c, mc)
				total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
				if err != nil {
					return err
				}
				if got := pathRel.GlobalFullCount(); got != chainTCPaths {
					return fmt.Errorf("resume past corrupt generation reached %d paths, want %d", got, chainTCPaths)
				}
				if total <= 2 {
					return fmt.Errorf("resume reported %d total iterations, expected to continue from iteration 2", total)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResumeWithEveryGenerationCorruptReportsNoCheckpoint: when the sink
// holds a single generation and it is corrupt on every rank, recovery has
// nothing left and must say so explicitly — the restart-from-scratch
// signal the supervisor reports upward.
func TestResumeWithEveryGenerationCorruptReportsNoCheckpoint(t *testing.T) {
	const ranks = 2
	for name, sink := range map[string]interface {
		CheckpointSink
		Tamperer
	}{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	} {
		t.Run(name, func(t *testing.T) {
			w := mpi.NewWorld(ranks)
			if err := w.Run(func(c *mpi.Comm) error {
				mc := metrics.NewCollector(ranks)
				fx, _ := chainTC(c, mc)
				fx.Run(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink, MaxIters: 3})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ranks; r++ {
				if !sink.TamperNewest(r) {
					t.Fatalf("rank %d: nothing to tamper", r)
				}
			}
			w2 := mpi.NewWorld(ranks)
			if err := w2.Run(func(c *mpi.Comm) error {
				mc := metrics.NewCollector(ranks)
				fx, _ := chainTC(c, mc)
				if _, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink}); err != ErrNoCheckpoint {
					return fmt.Errorf("Resume with every generation corrupt returned %v, want ErrNoCheckpoint", err)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResumeErrorsWithoutSinkOrCheckpoint pins the failure modes.
func TestResumeErrorsWithoutSinkOrCheckpoint(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		if _, err := fx.Resume(Options{Plan: PlanDynamic}); err == nil {
			return fmt.Errorf("Resume without a sink did not error")
		}
		if _, err := fx.Resume(Options{Plan: PlanDynamic, Sink: NewMemoryCheckpointSink()}); err != ErrNoCheckpoint {
			return fmt.Errorf("Resume from an empty sink returned %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
