package ra

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// chainTC builds the 50-node-chain transitive-closure fixpoint used by the
// truncation and checkpoint tests; full closure is 50·51/2 = 1275 paths.
func chainTC(c *mpi.Comm, mc *metrics.Collector) (*Fixpoint, *relation.Relation) {
	edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
	pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
	edgeRel.LoadShare(50, func(i int, emit func(tuple.Tuple)) {
		emit(tuple.Tuple{tuple.Value(i), tuple.Value(i + 1)})
	})
	fx := NewFixpoint(c, mc,
		&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
			Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
		&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
			Head: pathRel, JK: 1,
			Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
	)
	return fx, pathRel
}

const chainTCPaths = 50 * 51 / 2

func TestEffectiveOptionDefaults(t *testing.T) {
	zero := Options{}
	if got := zero.effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("zero-value threshold = %v, want DefaultBalanceThreshold", got)
	}
	if got := zero.effectiveMaxSubs(); got != DefaultMaxSubs {
		t.Errorf("zero-value max subs = %v, want DefaultMaxSubs", got)
	}
	set := Options{BalanceThreshold: 3.5, MaxSubs: 4}
	if got := set.effectiveBalanceThreshold(); got != 3.5 {
		t.Errorf("explicit threshold overridden to %v", got)
	}
	if got := set.effectiveMaxSubs(); got != 4 {
		t.Errorf("explicit max subs overridden to %v", got)
	}
	// Sub-threshold values fall back too (a threshold at or below 1 would
	// rebalance constantly).
	if got := (Options{BalanceThreshold: 0.5}).effectiveBalanceThreshold(); got != DefaultBalanceThreshold {
		t.Errorf("threshold 0.5 accepted as %v", got)
	}
}

// TestZeroValueOptionsBehaveAsDocumentedDefaults runs the same skewed
// adaptive-balance workload with zero-value knobs and with the documented
// defaults spelled out: the runs must make identical rebalancing decisions
// and identical answers.
func TestZeroValueOptionsBehaveAsDocumentedDefaults(t *testing.T) {
	var es []edge
	for i := 1; i <= 60; i++ {
		es = append(es, edge{0, uint64(i), 1})
	}
	run := func(opts Options) (subs int, paths uint64) {
		const ranks = 4
		w := mpi.NewWorld(ranks)
		err := w.Run(func(c *mpi.Comm) error {
			mc := metrics.NewCollector(ranks)
			edgeRel, _ := relation.New(relation.Schema{Name: "edge", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRel, _ := relation.New(relation.Schema{Name: "path", Arity: 2, Indep: 2, Key: 1}, c, mc, relation.Config{})
			pathRev, _ := pathRel.AddIndex([]int{1, 0}, 1)
			edgeRel.LoadShare(len(es), func(i int, emit func(tuple.Tuple)) {
				emit(tuple.Tuple{es[i].u, es[i].v})
			})
			fx := NewFixpoint(c, mc,
				&Copy{Src: edgeRel.Canonical(), SrcRel: edgeRel, Head: pathRel,
					Emit: func(s tuple.Tuple, out func(tuple.Tuple)) { out(s.Clone()) }},
				&Join{Left: pathRev, LeftRel: pathRel, Right: edgeRel.Canonical(), RightRel: edgeRel,
					Head: pathRel, JK: 1,
					Emit: func(l, r tuple.Tuple, out func(tuple.Tuple)) { out(tuple.Tuple{l[1], r[1]}) }},
			)
			fx.Run(opts)
			if c.Rank() == 0 {
				subs = edgeRel.Subs()
				paths = pathRel.GlobalFullCount()
			} else {
				pathRel.GlobalFullCount()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return subs, paths
	}
	zeroSubs, zeroPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true})
	defSubs, defPaths := run(Options{Plan: PlanDynamic, AdaptiveBalance: true,
		BalanceThreshold: DefaultBalanceThreshold, MaxSubs: DefaultMaxSubs})
	if zeroSubs != defSubs || zeroPaths != defPaths {
		t.Errorf("zero-value Options diverged from documented defaults: subs %d vs %d, paths %d vs %d",
			zeroSubs, defSubs, zeroPaths, defPaths)
	}
}

// TestMaxItersTruncationThenContinue confirms a truncated Run leaves the
// relations in a state a second Run continues from, reaching the same
// fixpoint as an unbounded run.
func TestMaxItersTruncationThenContinue(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		n1 := fx.Run(Options{Plan: PlanDynamic, MaxIters: 3})
		if n1 != 3 {
			return fmt.Errorf("truncated run did %d iterations, want 3", n1)
		}
		partial := pathRel.GlobalFullCount()
		if partial == 0 || partial >= chainTCPaths {
			return fmt.Errorf("after 3 iterations closure has %d paths, expected a strict partial result", partial)
		}
		n2 := fx.Run(Options{Plan: PlanDynamic})
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("continued run reached %d paths, want %d", got, chainTCPaths)
		}
		if n2 < 2 {
			return fmt.Errorf("continuation did only %d iterations from a 3-iteration truncation", n2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFixpointCheckpointResume drives the ra-level checkpoint machinery
// directly: a truncated checkpointing run, then Resume, must reach the same
// fixpoint an uninterrupted run reaches — even after the relations are
// dirtied past the snapshot.
func TestFixpointCheckpointResume(t *testing.T) {
	const ranks = 3
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		opts := Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink}
		truncated := opts
		truncated.MaxIters = 5 // checkpoints at iterations 2 and 4
		fx.Run(truncated)
		dirty := pathRel.GlobalFullCount()

		total, err := fx.Resume(opts)
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("resumed fixpoint reached %d paths, want %d (had %d at truncation)",
				got, chainTCPaths, dirty)
		}
		if total <= 5 {
			return fmt.Errorf("resumed run reported %d total iterations, expected to continue past the truncation", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted run's iteration count must match the
	// resumed total.
	wantIters := 0
	w2 := mpi.NewWorld(ranks)
	if err := w2.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		n := fx.Run(Options{Plan: PlanDynamic})
		if c.Rank() == 0 {
			wantIters = n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// And resuming in a FRESH world (the crash/restart path: new goroutines,
	// reloaded base facts) must also reach the fixpoint.
	w3 := mpi.NewWorld(ranks)
	if err := w3.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, pathRel := chainTC(c, mc)
		total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
		if err != nil {
			return err
		}
		if got := pathRel.GlobalFullCount(); got != chainTCPaths {
			return fmt.Errorf("fresh-world resume reached %d paths, want %d", got, chainTCPaths)
		}
		if total != wantIters {
			return fmt.Errorf("fresh-world resume ended at iteration %d, uninterrupted run at %d", total, wantIters)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestElasticResumeAcrossWorldSizes is the heart of the elastic-recovery
// contract: a checkpoint taken by an N-rank world must restore into a world
// of M ≠ N ranks — shrunk or grown — re-hashing every tuple through the new
// layout, and still reach the identical fixpoint.
func TestElasticResumeAcrossWorldSizes(t *testing.T) {
	const oldRanks = 3
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(oldRanks)
	if err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(oldRanks)
		fx, _ := chainTC(c, mc)
		fx.Run(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink, MaxIters: 5})
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, newRanks := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("into-%d-ranks", newRanks), func(t *testing.T) {
			mc := metrics.NewCollector(newRanks)
			w2 := mpi.NewWorld(newRanks)
			if err := w2.Run(func(c *mpi.Comm) error {
				fx, pathRel := chainTC(c, mc)
				total, err := fx.Resume(Options{Plan: PlanDynamic, CheckpointEvery: 2, Sink: sink})
				if err != nil {
					return err
				}
				if got := pathRel.GlobalFullCount(); got != chainTCPaths {
					return fmt.Errorf("remapped resume at %d ranks reached %d paths, want %d", newRanks, got, chainTCPaths)
				}
				if total <= 4 {
					return fmt.Errorf("remapped resume reported %d total iterations, expected to continue past the checkpoint", total)
				}
				// Every shard must live where the new layout places it: the
				// rank-local invariant checker would have caught misplaced
				// tuples during the fixpoint, but assert emptiness of the
				// foreign shards directly via per-rank counts.
				counts := pathRel.PerRankCounts()
				sum := 0
				for _, n := range counts {
					sum += n
				}
				if sum != chainTCPaths {
					return fmt.Errorf("per-rank counts %v sum to %d, want %d (duplicated or lost shards)", counts, sum, chainTCPaths)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if rep := mc.BuildReport(metrics.DefaultCostModel); rep.PhaseSeconds(metrics.PhaseRemap) <= 0 {
				t.Error("remapped resume metered no PhaseRemap time")
			}
		})
	}
}

// TestAgreedPositionEmptyAndElastic pins AgreedPosition's contract: empty
// sink means ok=false everywhere; a populated sink reports the writing
// world's size even from a differently sized world.
func TestAgreedPositionEmptyAndElastic(t *testing.T) {
	sink := NewMemoryCheckpointSink()
	w := mpi.NewWorld(2)
	if err := w.Run(func(c *mpi.Comm) error {
		if _, ok, err := AgreedPosition(c, sink); err != nil || ok {
			return fmt.Errorf("empty sink: ok=%v err=%v, want false/nil", ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for r := 0; r < 3; r++ {
		if err := sink.Save(r, Checkpoint{Ranks: 3, Stratum: 1, Iter: 4, Words: []mpi.Word{uint64(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	w2 := mpi.NewWorld(2)
	if err := w2.Run(func(c *mpi.Comm) error {
		pos, ok, err := AgreedPosition(c, sink)
		if err != nil || !ok {
			return fmt.Errorf("AgreedPosition: ok=%v err=%v", ok, err)
		}
		if pos != (Position{Ranks: 3, Stratum: 1, Iter: 4}) {
			return fmt.Errorf("pos = %+v, want {3 1 4}", pos)
		}
		cps, err := CollectRemap(sink, pos)
		if err != nil {
			return err
		}
		if len(cps) != 3 {
			return fmt.Errorf("collected %d checkpoints, want 3", len(cps))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectRemapRejectsTornSets pins the torn-set failure modes: a
// missing shard and a position mismatch must both error.
func TestCollectRemapRejectsTornSets(t *testing.T) {
	pos := Position{Ranks: 3, Stratum: 0, Iter: 4}
	sink := NewMemoryCheckpointSink()
	sink.Save(0, Checkpoint{Ranks: 3, Iter: 4})
	sink.Save(1, Checkpoint{Ranks: 3, Iter: 4})
	if _, err := CollectRemap(sink, pos); err == nil {
		t.Error("missing rank-2 checkpoint not rejected")
	}
	sink.Save(2, Checkpoint{Ranks: 3, Iter: 2}) // stale iteration
	if _, err := CollectRemap(sink, pos); err == nil {
		t.Error("stale rank-2 checkpoint not rejected")
	}
	sink.Save(2, Checkpoint{Ranks: 3, Iter: 4})
	if _, err := CollectRemap(sink, pos); err != nil {
		t.Errorf("complete set rejected: %v", err)
	}
}

// TestCheckpointSinkConcurrentSaveLatest hammers both sink implementations
// from many goroutines under the race detector (make verify runs -race):
// concurrent Save and Latest on overlapping ranks must never tear — every
// observed checkpoint is one that some Save wrote in full.
func TestCheckpointSinkConcurrentSaveLatest(t *testing.T) {
	sinks := map[string]CheckpointSink{
		"memory": NewMemoryCheckpointSink(),
		"file":   FileCheckpointSink{Dir: t.TempDir()},
	}
	for name, sink := range sinks {
		t.Run(name, func(t *testing.T) {
			const ranks, rounds = 4, 25
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(2)
				go func(rank int) { // writer: monotone iterations
					defer wg.Done()
					for i := 1; i <= rounds; i++ {
						words := make([]mpi.Word, i)
						for j := range words {
							words[j] = uint64(i) // payload encodes the version
						}
						if err := sink.Save(rank, Checkpoint{Ranks: ranks, Iter: i, Words: words}); err != nil {
							t.Errorf("rank %d save %d: %v", rank, i, err)
							return
						}
					}
				}(r)
				go func(rank int) { // reader: every observation must be intact
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						cp, ok, err := sink.Latest(rank)
						if err != nil {
							t.Errorf("rank %d latest: %v", rank, err)
							return
						}
						if !ok {
							continue
						}
						if len(cp.Words) != cp.Iter {
							t.Errorf("rank %d: torn checkpoint: iter %d with %d words", rank, cp.Iter, len(cp.Words))
							return
						}
						for _, w := range cp.Words {
							if w != uint64(cp.Iter) {
								t.Errorf("rank %d: payload word %d in an iter-%d checkpoint", rank, w, cp.Iter)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestFileSinkTornWriteKeepsPreviousCheckpoint simulates a crash mid-save:
// after a good checkpoint, a truncated temporary file (the write died before
// the atomic rename) and junk overwriting the tmp path must both leave the
// previous checkpoint fully readable.
func TestFileSinkTornWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sink := FileCheckpointSink{Dir: dir}
	want := Checkpoint{Ranks: 2, Stratum: 1, Iter: 6, Words: []mpi.Word{7, 8, 9}}
	if err := sink.Save(0, want); err != nil {
		t.Fatal(err)
	}

	// A torn write: half of a newer checkpoint's bytes sitting in the tmp
	// file, never renamed into place.
	tmp := filepath.Join(dir, "rank-0000.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("partial checkpoint bytes that never finished"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := sink.Latest(0)
	if err != nil || !ok {
		t.Fatalf("Latest after torn tmp write: ok=%v err=%v", ok, err)
	}
	if cp.Iter != want.Iter || len(cp.Words) != len(want.Words) || cp.Words[2] != 9 {
		t.Errorf("previous checkpoint damaged by torn write: %+v", cp)
	}

	// A subsequent complete Save must still go through over the junk tmp.
	want2 := Checkpoint{Ranks: 2, Stratum: 1, Iter: 8, Words: []mpi.Word{1}}
	if err := sink.Save(0, want2); err != nil {
		t.Fatal(err)
	}
	if cp, _, _ := sink.Latest(0); cp.Iter != 8 {
		t.Errorf("save after torn write produced iter %d, want 8", cp.Iter)
	}

	// Corruption of the real file (bit rot) is detected, not silently
	// restored: flip a payload byte and expect a checksum error.
	path := filepath.Join(dir, "rank-0000.ckpt")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sink.Latest(0); err == nil {
		t.Error("bit-rotted checkpoint loaded without error")
	}
}

// TestResumeErrorsWithoutSinkOrCheckpoint pins the failure modes.
func TestResumeErrorsWithoutSinkOrCheckpoint(t *testing.T) {
	const ranks = 2
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) error {
		mc := metrics.NewCollector(ranks)
		fx, _ := chainTC(c, mc)
		if _, err := fx.Resume(Options{Plan: PlanDynamic}); err == nil {
			return fmt.Errorf("Resume without a sink did not error")
		}
		if _, err := fx.Resume(Options{Plan: PlanDynamic, Sink: NewMemoryCheckpointSink()}); err != ErrNoCheckpoint {
			return fmt.Errorf("Resume from an empty sink returned %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
